file(REMOVE_RECURSE
  "CMakeFiles/hauberk_common.dir/bitops.cpp.o"
  "CMakeFiles/hauberk_common.dir/bitops.cpp.o.d"
  "CMakeFiles/hauberk_common.dir/cli.cpp.o"
  "CMakeFiles/hauberk_common.dir/cli.cpp.o.d"
  "CMakeFiles/hauberk_common.dir/rng.cpp.o"
  "CMakeFiles/hauberk_common.dir/rng.cpp.o.d"
  "CMakeFiles/hauberk_common.dir/stats.cpp.o"
  "CMakeFiles/hauberk_common.dir/stats.cpp.o.d"
  "CMakeFiles/hauberk_common.dir/table.cpp.o"
  "CMakeFiles/hauberk_common.dir/table.cpp.o.d"
  "libhauberk_common.a"
  "libhauberk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hauberk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
