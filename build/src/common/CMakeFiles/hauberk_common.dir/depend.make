# Empty dependencies file for hauberk_common.
# This may be replaced when dependencies are built.
