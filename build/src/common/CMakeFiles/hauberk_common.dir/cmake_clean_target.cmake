file(REMOVE_RECURSE
  "libhauberk_common.a"
)
