# Empty compiler generated dependencies file for hauberk_swifi.
# This may be replaced when dependencies are built.
