file(REMOVE_RECURSE
  "libhauberk_swifi.a"
)
