file(REMOVE_RECURSE
  "CMakeFiles/hauberk_swifi.dir/baselines.cpp.o"
  "CMakeFiles/hauberk_swifi.dir/baselines.cpp.o.d"
  "CMakeFiles/hauberk_swifi.dir/campaign.cpp.o"
  "CMakeFiles/hauberk_swifi.dir/campaign.cpp.o.d"
  "libhauberk_swifi.a"
  "libhauberk_swifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hauberk_swifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
