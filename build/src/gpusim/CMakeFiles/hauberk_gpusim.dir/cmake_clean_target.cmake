file(REMOVE_RECURSE
  "libhauberk_gpusim.a"
)
