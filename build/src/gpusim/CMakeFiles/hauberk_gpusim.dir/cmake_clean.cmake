file(REMOVE_RECURSE
  "CMakeFiles/hauberk_gpusim.dir/device.cpp.o"
  "CMakeFiles/hauberk_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/hauberk_gpusim.dir/memory.cpp.o"
  "CMakeFiles/hauberk_gpusim.dir/memory.cpp.o.d"
  "libhauberk_gpusim.a"
  "libhauberk_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hauberk_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
