# Empty dependencies file for hauberk_gpusim.
# This may be replaced when dependencies are built.
