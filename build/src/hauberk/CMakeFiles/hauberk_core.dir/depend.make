# Empty dependencies file for hauberk_core.
# This may be replaced when dependencies are built.
