
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hauberk/bist.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/bist.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/bist.cpp.o.d"
  "/root/repo/src/hauberk/control_block.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/control_block.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/control_block.cpp.o.d"
  "/root/repo/src/hauberk/device_pool.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/device_pool.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/device_pool.cpp.o.d"
  "/root/repo/src/hauberk/pipeline.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/pipeline.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/hauberk/posix_guardian.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/posix_guardian.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/posix_guardian.cpp.o.d"
  "/root/repo/src/hauberk/ranges.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/ranges.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/ranges.cpp.o.d"
  "/root/repo/src/hauberk/recovery.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/recovery.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/recovery.cpp.o.d"
  "/root/repo/src/hauberk/runtime.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/runtime.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/runtime.cpp.o.d"
  "/root/repo/src/hauberk/translator.cpp" "src/hauberk/CMakeFiles/hauberk_core.dir/translator.cpp.o" "gcc" "src/hauberk/CMakeFiles/hauberk_core.dir/translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kir/CMakeFiles/hauberk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hauberk_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hauberk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
