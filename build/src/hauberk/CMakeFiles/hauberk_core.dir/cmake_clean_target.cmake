file(REMOVE_RECURSE
  "libhauberk_core.a"
)
