file(REMOVE_RECURSE
  "CMakeFiles/hauberk_core.dir/bist.cpp.o"
  "CMakeFiles/hauberk_core.dir/bist.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/control_block.cpp.o"
  "CMakeFiles/hauberk_core.dir/control_block.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/device_pool.cpp.o"
  "CMakeFiles/hauberk_core.dir/device_pool.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/pipeline.cpp.o"
  "CMakeFiles/hauberk_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/posix_guardian.cpp.o"
  "CMakeFiles/hauberk_core.dir/posix_guardian.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/ranges.cpp.o"
  "CMakeFiles/hauberk_core.dir/ranges.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/recovery.cpp.o"
  "CMakeFiles/hauberk_core.dir/recovery.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/runtime.cpp.o"
  "CMakeFiles/hauberk_core.dir/runtime.cpp.o.d"
  "CMakeFiles/hauberk_core.dir/translator.cpp.o"
  "CMakeFiles/hauberk_core.dir/translator.cpp.o.d"
  "libhauberk_core.a"
  "libhauberk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hauberk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
