
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cp.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/cp.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/cp.cpp.o.d"
  "/root/repo/src/workloads/cpu_programs.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/cpu_programs.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/cpu_programs.cpp.o.d"
  "/root/repo/src/workloads/histo_eq.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/histo_eq.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/histo_eq.cpp.o.d"
  "/root/repo/src/workloads/mri_fhd.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/mri_fhd.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/mri_fhd.cpp.o.d"
  "/root/repo/src/workloads/mri_q.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/mri_q.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/mri_q.cpp.o.d"
  "/root/repo/src/workloads/ocean.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/ocean.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/ocean.cpp.o.d"
  "/root/repo/src/workloads/pns.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/pns.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/pns.cpp.o.d"
  "/root/repo/src/workloads/raytrace.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/raytrace.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/raytrace.cpp.o.d"
  "/root/repo/src/workloads/rpes.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/rpes.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/rpes.cpp.o.d"
  "/root/repo/src/workloads/sad.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/sad.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/sad.cpp.o.d"
  "/root/repo/src/workloads/tpacf.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/tpacf.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/tpacf.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/hauberk_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hauberk_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hauberk/CMakeFiles/hauberk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hauberk_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/hauberk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hauberk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
