# Empty dependencies file for hauberk_workloads.
# This may be replaced when dependencies are built.
