file(REMOVE_RECURSE
  "libhauberk_workloads.a"
)
