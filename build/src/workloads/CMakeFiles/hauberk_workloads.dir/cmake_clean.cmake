file(REMOVE_RECURSE
  "CMakeFiles/hauberk_workloads.dir/cp.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/cp.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/cpu_programs.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/cpu_programs.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/histo_eq.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/histo_eq.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/mri_fhd.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/mri_fhd.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/mri_q.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/mri_q.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/ocean.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/ocean.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/pns.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/pns.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/raytrace.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/raytrace.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/rpes.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/rpes.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/sad.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/sad.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/tpacf.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/tpacf.cpp.o.d"
  "CMakeFiles/hauberk_workloads.dir/workload.cpp.o"
  "CMakeFiles/hauberk_workloads.dir/workload.cpp.o.d"
  "libhauberk_workloads.a"
  "libhauberk_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hauberk_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
