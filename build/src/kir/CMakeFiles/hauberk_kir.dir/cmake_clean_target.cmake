file(REMOVE_RECURSE
  "libhauberk_kir.a"
)
