
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kir/analysis.cpp" "src/kir/CMakeFiles/hauberk_kir.dir/analysis.cpp.o" "gcc" "src/kir/CMakeFiles/hauberk_kir.dir/analysis.cpp.o.d"
  "/root/repo/src/kir/ast.cpp" "src/kir/CMakeFiles/hauberk_kir.dir/ast.cpp.o" "gcc" "src/kir/CMakeFiles/hauberk_kir.dir/ast.cpp.o.d"
  "/root/repo/src/kir/builder.cpp" "src/kir/CMakeFiles/hauberk_kir.dir/builder.cpp.o" "gcc" "src/kir/CMakeFiles/hauberk_kir.dir/builder.cpp.o.d"
  "/root/repo/src/kir/lower.cpp" "src/kir/CMakeFiles/hauberk_kir.dir/lower.cpp.o" "gcc" "src/kir/CMakeFiles/hauberk_kir.dir/lower.cpp.o.d"
  "/root/repo/src/kir/printer.cpp" "src/kir/CMakeFiles/hauberk_kir.dir/printer.cpp.o" "gcc" "src/kir/CMakeFiles/hauberk_kir.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hauberk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
