file(REMOVE_RECURSE
  "CMakeFiles/hauberk_kir.dir/analysis.cpp.o"
  "CMakeFiles/hauberk_kir.dir/analysis.cpp.o.d"
  "CMakeFiles/hauberk_kir.dir/ast.cpp.o"
  "CMakeFiles/hauberk_kir.dir/ast.cpp.o.d"
  "CMakeFiles/hauberk_kir.dir/builder.cpp.o"
  "CMakeFiles/hauberk_kir.dir/builder.cpp.o.d"
  "CMakeFiles/hauberk_kir.dir/lower.cpp.o"
  "CMakeFiles/hauberk_kir.dir/lower.cpp.o.d"
  "CMakeFiles/hauberk_kir.dir/printer.cpp.o"
  "CMakeFiles/hauberk_kir.dir/printer.cpp.o.d"
  "libhauberk_kir.a"
  "libhauberk_kir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hauberk_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
