# Empty dependencies file for hauberk_kir.
# This may be replaced when dependencies are built.
