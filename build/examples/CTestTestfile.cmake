# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataflow_graph "/root/repo/build/examples/dataflow_graph" "--program=CP")
set_tests_properties(example_dataflow_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_campaign "/root/repo/build/examples/fault_campaign" "--program=MRI-Q" "--scale=tiny" "--vars=6" "--masks=3" "--protected")
set_tests_properties(example_fault_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_guardian_demo "/root/repo/build/examples/guardian_demo")
set_tests_properties(example_guardian_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_controller "/root/repo/build/examples/controller" "--program=CP" "--scale=tiny")
set_tests_properties(example_controller PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_demo "/root/repo/build/examples/pipeline_demo")
set_tests_properties(example_pipeline_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect "/root/repo/build/examples/inspect" "--program=TPACF")
set_tests_properties(example_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
