# Empty dependencies file for guardian_demo.
# This may be replaced when dependencies are built.
