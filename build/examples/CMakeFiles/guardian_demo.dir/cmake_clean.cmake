file(REMOVE_RECURSE
  "CMakeFiles/guardian_demo.dir/guardian_demo.cpp.o"
  "CMakeFiles/guardian_demo.dir/guardian_demo.cpp.o.d"
  "guardian_demo"
  "guardian_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
