# Empty compiler generated dependencies file for controller.
# This may be replaced when dependencies are built.
