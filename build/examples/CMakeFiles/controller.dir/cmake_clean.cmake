file(REMOVE_RECURSE
  "CMakeFiles/controller.dir/controller.cpp.o"
  "CMakeFiles/controller.dir/controller.cpp.o.d"
  "controller"
  "controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
