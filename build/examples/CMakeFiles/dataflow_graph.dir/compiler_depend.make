# Empty compiler generated dependencies file for dataflow_graph.
# This may be replaced when dependencies are built.
