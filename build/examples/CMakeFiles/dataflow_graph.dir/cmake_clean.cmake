file(REMOVE_RECURSE
  "CMakeFiles/dataflow_graph.dir/dataflow_graph.cpp.o"
  "CMakeFiles/dataflow_graph.dir/dataflow_graph.cpp.o.d"
  "dataflow_graph"
  "dataflow_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
