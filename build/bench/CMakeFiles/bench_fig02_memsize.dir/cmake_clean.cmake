file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_memsize.dir/bench_fig02_memsize.cpp.o"
  "CMakeFiles/bench_fig02_memsize.dir/bench_fig02_memsize.cpp.o.d"
  "bench_fig02_memsize"
  "bench_fig02_memsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_memsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
