# Empty compiler generated dependencies file for bench_fig02_memsize.
# This may be replaced when dependencies are built.
