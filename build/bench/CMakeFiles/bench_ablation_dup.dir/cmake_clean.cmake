file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dup.dir/bench_ablation_dup.cpp.o"
  "CMakeFiles/bench_ablation_dup.dir/bench_ablation_dup.cpp.o.d"
  "bench_ablation_dup"
  "bench_ablation_dup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
