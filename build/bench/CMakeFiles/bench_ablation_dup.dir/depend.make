# Empty dependencies file for bench_ablation_dup.
# This may be replaced when dependencies are built.
