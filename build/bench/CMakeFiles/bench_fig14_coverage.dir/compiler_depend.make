# Empty compiler generated dependencies file for bench_fig14_coverage.
# This may be replaced when dependencies are built.
