file(REMOVE_RECURSE
  "CMakeFiles/bench_interp_throughput.dir/bench_interp_throughput.cpp.o"
  "CMakeFiles/bench_interp_throughput.dir/bench_interp_throughput.cpp.o.d"
  "bench_interp_throughput"
  "bench_interp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
