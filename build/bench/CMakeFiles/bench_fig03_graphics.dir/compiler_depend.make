# Empty compiler generated dependencies file for bench_fig03_graphics.
# This may be replaced when dependencies are built.
