file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_graphics.dir/bench_fig03_graphics.cpp.o"
  "CMakeFiles/bench_fig03_graphics.dir/bench_fig03_graphics.cpp.o.d"
  "bench_fig03_graphics"
  "bench_fig03_graphics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_graphics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
