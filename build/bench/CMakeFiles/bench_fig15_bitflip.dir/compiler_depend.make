# Empty compiler generated dependencies file for bench_fig15_bitflip.
# This may be replaced when dependencies are built.
