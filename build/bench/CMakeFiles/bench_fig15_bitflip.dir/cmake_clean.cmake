file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_bitflip.dir/bench_fig15_bitflip.cpp.o"
  "CMakeFiles/bench_fig15_bitflip.dir/bench_fig15_bitflip.cpp.o.d"
  "bench_fig15_bitflip"
  "bench_fig15_bitflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_bitflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
