# Empty dependencies file for bench_fig01_sensitivity.
# This may be replaced when dependencies are built.
