file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_breakdown.dir/bench_overhead_breakdown.cpp.o"
  "CMakeFiles/bench_overhead_breakdown.dir/bench_overhead_breakdown.cpp.o.d"
  "bench_overhead_breakdown"
  "bench_overhead_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
