# Empty compiler generated dependencies file for bench_overhead_breakdown.
# This may be replaced when dependencies are built.
