file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_valueranges.dir/bench_fig10_valueranges.cpp.o"
  "CMakeFiles/bench_fig10_valueranges.dir/bench_fig10_valueranges.cpp.o.d"
  "bench_fig10_valueranges"
  "bench_fig10_valueranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_valueranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
