# Empty compiler generated dependencies file for bench_fig10_valueranges.
# This may be replaced when dependencies are built.
