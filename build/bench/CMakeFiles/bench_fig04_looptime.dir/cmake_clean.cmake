file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_looptime.dir/bench_fig04_looptime.cpp.o"
  "CMakeFiles/bench_fig04_looptime.dir/bench_fig04_looptime.cpp.o.d"
  "bench_fig04_looptime"
  "bench_fig04_looptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_looptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
