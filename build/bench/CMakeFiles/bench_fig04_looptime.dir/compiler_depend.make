# Empty compiler generated dependencies file for bench_fig04_looptime.
# This may be replaced when dependencies are built.
