file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_maxvar.dir/bench_ablation_maxvar.cpp.o"
  "CMakeFiles/bench_ablation_maxvar.dir/bench_ablation_maxvar.cpp.o.d"
  "bench_ablation_maxvar"
  "bench_ablation_maxvar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maxvar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
