# Empty dependencies file for bench_ablation_maxvar.
# This may be replaced when dependencies are built.
