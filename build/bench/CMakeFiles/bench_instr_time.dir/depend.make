# Empty dependencies file for bench_instr_time.
# This may be replaced when dependencies are built.
