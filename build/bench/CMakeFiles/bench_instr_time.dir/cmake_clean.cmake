file(REMOVE_RECURSE
  "CMakeFiles/bench_instr_time.dir/bench_instr_time.cpp.o"
  "CMakeFiles/bench_instr_time.dir/bench_instr_time.cpp.o.d"
  "bench_instr_time"
  "bench_instr_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instr_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
