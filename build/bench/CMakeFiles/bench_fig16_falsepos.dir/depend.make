# Empty dependencies file for bench_fig16_falsepos.
# This may be replaced when dependencies are built.
