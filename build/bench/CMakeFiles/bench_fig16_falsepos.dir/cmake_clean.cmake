file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_falsepos.dir/bench_fig16_falsepos.cpp.o"
  "CMakeFiles/bench_fig16_falsepos.dir/bench_fig16_falsepos.cpp.o.d"
  "bench_fig16_falsepos"
  "bench_fig16_falsepos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_falsepos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
