# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_check_costmodel "/root/repo/build/bench/bench_ablation_costmodel" "--scale=small")
set_tests_properties(bench_check_costmodel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_check_fig04 "/root/repo/build/bench/bench_fig04_looptime" "--scale=small")
set_tests_properties(bench_check_fig04 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_check_fig02 "/root/repo/build/bench/bench_fig02_memsize" "--scale=small")
set_tests_properties(bench_check_fig02 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_check_divergence "/root/repo/build/bench/bench_divergence" "--scale=small")
set_tests_properties(bench_check_divergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
