file(REMOVE_RECURSE
  "CMakeFiles/test_ranges.dir/test_ranges.cpp.o"
  "CMakeFiles/test_ranges.dir/test_ranges.cpp.o.d"
  "test_ranges"
  "test_ranges.pdb"
  "test_ranges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
