file(REMOVE_RECURSE
  "CMakeFiles/test_device_pool.dir/test_device_pool.cpp.o"
  "CMakeFiles/test_device_pool.dir/test_device_pool.cpp.o.d"
  "test_device_pool"
  "test_device_pool.pdb"
  "test_device_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
