# Empty compiler generated dependencies file for test_device_pool.
# This may be replaced when dependencies are built.
