# Empty dependencies file for test_posix_guardian.
# This may be replaced when dependencies are built.
