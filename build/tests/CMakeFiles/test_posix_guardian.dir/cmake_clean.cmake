file(REMOVE_RECURSE
  "CMakeFiles/test_posix_guardian.dir/test_posix_guardian.cpp.o"
  "CMakeFiles/test_posix_guardian.dir/test_posix_guardian.cpp.o.d"
  "test_posix_guardian"
  "test_posix_guardian.pdb"
  "test_posix_guardian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posix_guardian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
