file(REMOVE_RECURSE
  "CMakeFiles/test_bytecode.dir/test_bytecode.cpp.o"
  "CMakeFiles/test_bytecode.dir/test_bytecode.cpp.o.d"
  "test_bytecode"
  "test_bytecode.pdb"
  "test_bytecode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
