file(REMOVE_RECURSE
  "CMakeFiles/test_control_block.dir/test_control_block.cpp.o"
  "CMakeFiles/test_control_block.dir/test_control_block.cpp.o.d"
  "test_control_block"
  "test_control_block.pdb"
  "test_control_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
