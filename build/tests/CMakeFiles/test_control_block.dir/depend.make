# Empty dependencies file for test_control_block.
# This may be replaced when dependencies are built.
