file(REMOVE_RECURSE
  "CMakeFiles/test_swifi.dir/test_swifi.cpp.o"
  "CMakeFiles/test_swifi.dir/test_swifi.cpp.o.d"
  "test_swifi"
  "test_swifi.pdb"
  "test_swifi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
