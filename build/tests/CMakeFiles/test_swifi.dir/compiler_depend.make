# Empty compiler generated dependencies file for test_swifi.
# This may be replaced when dependencies are built.
