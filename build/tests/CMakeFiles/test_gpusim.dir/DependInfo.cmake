
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gpusim.cpp" "tests/CMakeFiles/test_gpusim.dir/test_gpusim.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_gpusim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hauberk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/hauberk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hauberk_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/hauberk/CMakeFiles/hauberk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hauberk_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/swifi/CMakeFiles/hauberk_swifi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
