# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_ranges[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_translator[1]_include.cmake")
include("/root/repo/build/tests/test_swifi[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_posix_guardian[1]_include.cmake")
include("/root/repo/build/tests/test_bytecode[1]_include.cmake")
include("/root/repo/build/tests/test_control_block[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_device_pool[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_kir[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
