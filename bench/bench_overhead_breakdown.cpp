// Overhead decomposition: where do Hauberk's extra cycles go?  Using the
// interpreter's per-instruction execution counts, the FT build's cycles are
// attributed to
//   program        the original kernel computation,
//   dup-recompute  the duplicated non-loop computations (Fig. 8(c) step ii),
//   runtime-checks the detector library calls (checksum XOR/validate,
//                  dup compare, range check, iteration check),
//   detector-aux   loop-detector bookkeeping (accumulator/counter adds,
//                  post-loop guards),
// giving the per-program anatomy behind Fig. 13's Hauberk bars.
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using kir::OpCode;

namespace {

struct Breakdown {
  std::uint64_t program = 0, dup = 0, checks = 0, aux = 0;
  [[nodiscard]] std::uint64_t total() const { return program + dup + checks + aux; }
};

bool is_check_op(OpCode op) {
  switch (op) {
    case OpCode::ChkXor:
    case OpCode::ChkValidate:
    case OpCode::DupCmp:
    case OpCode::RangeCheck:
    case OpCode::EqualCheck:
      return true;
    default:
      return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Hauberk overhead anatomy: FT-build cycles by category (%)");
  common::Table t({"Program", "Original", "Dup recompute", "Runtime checks", "Detector aux",
                   "Overhead vs baseline"});

  for (auto& w : workloads::hpc_suite()) {
    gpusim::Device dev;
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);

    const auto baseline = kir::lower(src);
    auto bargs = job->setup(dev);
    const auto base = dev.launch(baseline, job->config(), bargs);

    core::TranslateOptions opt;
    opt.mode = core::LibMode::FT;
    const auto prog = kir::lower(core::translate(src, opt));
    core::ControlBlock cb(prog);

    std::vector<std::uint64_t> counts;
    auto fargs = job->setup(dev);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    opts.instr_exec_counts = &counts;
    const auto res = dev.launch(prog, job->config(), fargs, opts);
    if (res.status != gpusim::LaunchStatus::Ok) {
      std::fprintf(stderr, "breakdown: %s failed\n", w->name().c_str());
      continue;
    }

    // Attribute executed instructions to categories via opcode and the
    // translator's instruction flags.
    Breakdown bd;
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
      const auto& in = prog.code[i];
      if (is_check_op(in.op)) bd.checks += counts[i];
      else if (in.flags & kir::kInstrHauberkDup) bd.dup += counts[i];
      else if (in.flags & kir::kInstrDetectorAux) bd.aux += counts[i];
      else if (in.op != OpCode::FIHook && in.op != OpCode::CountExec &&
               in.op != OpCode::ProfileVal)
        bd.program += counts[i];
    }

    const double total = static_cast<double>(bd.total());
    const double overhead =
        100.0 * (static_cast<double>(res.cycles) - static_cast<double>(base.cycles)) /
        static_cast<double>(base.cycles);
    t.add_row({w->name(), common::Table::pct_cell(100.0 * bd.program / total),
               common::Table::pct_cell(100.0 * bd.dup / total),
               common::Table::pct_cell(100.0 * bd.checks / total),
               common::Table::pct_cell(100.0 * bd.aux / total),
               common::Table::pct_cell(overhead)});
  }
  t.print();
  std::printf("\n(category shares are fractions of executed instructions in the FT build;\n"
              "the overhead column is the measured cycle overhead of Fig. 13)\n");
  return 0;
}
