// Overhead decomposition: where do Hauberk's extra cycles go?  Using the
// interpreter's per-instruction execution counts, the FT build's cycles are
// attributed to
//   program        the original kernel computation,
//   dup-recompute  the duplicated non-loop computations (Fig. 8(c) step ii),
//   runtime-checks the detector library calls (checksum XOR/validate,
//                  dup compare, range check, iteration check),
//   detector-aux   loop-detector bookkeeping (accumulator/counter adds,
//                  post-loop guards),
// giving the per-program anatomy behind Fig. 13's Hauberk bars.
//
// Classification and pricing come from the shared gpusim cost layer
// (gpusim/cost.hpp) — the same classify()/weighted_breakdown() every layer
// uses — so this bench can never drift from the device's own accounting.
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const bool by_cycles = args.has("cycles");

  print_header("Hauberk overhead anatomy: FT-build cycles by category (%)");
  common::Table t({"Program", "Original", "Dup recompute", "Runtime checks", "Detector aux",
                   "Overhead vs baseline"});

  for (auto& w : workloads::hpc_suite()) {
    gpusim::Device dev;
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);

    const auto baseline = kir::lower(src);
    auto bargs = job->setup(dev);
    const auto base = dev.launch(baseline, job->config(), bargs);

    core::TranslateOptions opt;
    opt.mode = core::LibMode::FT;
    const auto prog = kir::lower(core::translate(src, opt));
    core::ControlBlock cb(prog);

    std::vector<std::uint64_t> counts;
    auto fargs = job->setup(dev);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    opts.instr_exec_counts = &counts;
    const auto res = dev.launch(prog, job->config(), fargs, opts);
    if (res.status != gpusim::LaunchStatus::Ok) {
      std::fprintf(stderr, "breakdown: %s failed\n", w->name().c_str());
      continue;
    }

    // Attribute executed work to categories via the shared cost layer
    // (execution-count weighted; --cycles weights by per-class cycles under
    // the device's pricing instead).
    const gpusim::CostBreakdown bd = gpusim::weighted_breakdown(
        prog, dev.cost_model(), dev.props().regs_per_thread,
        dev.props().protection != gpusim::ecc::Scheme::None, counts);
    const auto share = [&](gpusim::CostClass c) {
      const std::uint64_t total =
          by_cycles ? bd.total_cycles() : bd.total_instructions();
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(bd.at(c, by_cycles)) /
                              static_cast<double>(total);
    };

    const double overhead =
        100.0 * (static_cast<double>(res.cycles) - static_cast<double>(base.cycles)) /
        static_cast<double>(base.cycles);
    t.add_row({w->name(), common::Table::pct_cell(share(gpusim::CostClass::Program)),
               common::Table::pct_cell(share(gpusim::CostClass::Dup)),
               common::Table::pct_cell(share(gpusim::CostClass::Check)),
               common::Table::pct_cell(share(gpusim::CostClass::DetectorAux)),
               common::Table::pct_cell(overhead)});
  }
  t.print();
  std::printf("\n(category shares are fractions of executed %s in the FT build;\n"
              "the overhead column is the measured cycle overhead of Fig. 13)\n",
              by_cycles ? "cycles" : "instructions");
  return 0;
}
