// Section IX.D — Hauberk instrumentation time.  The paper reports 0.7 s
// average for the translator passes proper (81 s end-to-end including C
// preprocessing on 2009 hardware).  This google-benchmark binary times the
// translate() pass (all four library modes) for every benchmark kernel.
#include <benchmark/benchmark.h>

#include "hauberk/translator.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;

namespace {

std::unique_ptr<Workload> workload_at(int index) {
  auto suite = hpc_suite();
  return std::move(suite[static_cast<std::size_t>(index)]);
}

void BM_TranslateFT(benchmark::State& state) {
  auto w = workload_at(static_cast<int>(state.range(0)));
  const auto k = w->build_kernel(Scale::Small);
  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  for (auto _ : state) {
    auto out = core::translate(k, opt);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(w->name());
}

void BM_TranslateFIFT(benchmark::State& state) {
  auto w = workload_at(static_cast<int>(state.range(0)));
  const auto k = w->build_kernel(Scale::Small);
  core::TranslateOptions opt;
  opt.mode = core::LibMode::FIFT;
  for (auto _ : state) {
    auto out = core::translate(k, opt);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(w->name());
}

void BM_LowerInstrumented(benchmark::State& state) {
  auto w = workload_at(static_cast<int>(state.range(0)));
  core::TranslateOptions opt;
  opt.mode = core::LibMode::FIFT;
  const auto k = core::translate(w->build_kernel(Scale::Small), opt);
  for (auto _ : state) {
    auto p = kir::lower(k);
    benchmark::DoNotOptimize(p);
  }
  state.SetLabel(w->name());
}

}  // namespace

BENCHMARK(BM_TranslateFT)->DenseRange(0, 6);
BENCHMARK(BM_TranslateFIFT)->DenseRange(0, 6);
BENCHMARK(BM_LowerInstrumented)->DenseRange(0, 6);

BENCHMARK_MAIN();
