// Fig. 10 — value-range distributions of integer and FP variables in MRI-Q:
// values computed for the same variable cluster in a few powers of ten, and
// FP variables typically show three correlation points (negative / ~zero /
// positive).  We capture every virtual-variable definition through the FI
// hooks (recording instead of injecting) and print decade histograms.
#include <map>

#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

/// Hooks that record variable values at FI sites instead of corrupting them.
class RecordingHooks final : public gpusim::LaunchHooks {
 public:
  explicit RecordingHooks(const kir::BytecodeProgram& prog) : prog_(&prog) {
    hists_.reserve(prog.fi_sites.size());
    for (std::size_t i = 0; i < prog.fi_sites.size(); ++i)
      hists_.emplace_back(-21, 21, 1e-21);
  }

  bool fi_hook(std::uint32_t site_index, std::uint32_t, std::uint32_t& bits) override {
    const auto& site = prog_->fi_sites[site_index];
    const kir::Value v{site.type, bits};
    std::lock_guard<std::mutex> lk(mu_);
    hists_[site_index].add(v.as_double());
    return false;
  }

  const kir::BytecodeProgram* prog_;
  std::vector<common::DecadeHistogram> hists_;
  std::mutex mu_;
};

void print_variable(const kir::FISite& site, const common::DecadeHistogram& h) {
  std::printf("  %-10s (%s, %llu samples): peak decade mass %.0f%%  ", site.var_name.c_str(),
              kir::dtype_name(site.type), static_cast<unsigned long long>(h.total()),
              100.0 * h.peak_probability());
  // Print the populated buckets as "label:probability".
  int printed = 0;
  for (std::size_t b = 0; b < h.num_buckets() && printed < 6; ++b) {
    if (h.probability(b) < 0.02) continue;
    std::printf("%s:%.2f  ", h.bucket_label(b).c_str(), h.probability(b));
    ++printed;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  auto w = workloads::make_mri_q();
  auto v = core::build_variants(w->build_kernel(scale));
  const auto ds = w->make_dataset(seed, scale);
  auto job = w->make_job(ds);
  gpusim::Device dev;

  RecordingHooks rec(v.fi);
  const auto a = job->setup(dev);
  gpusim::LaunchOptions opts;
  opts.hooks = &rec;
  const auto res = dev.launch(v.fi, job->config(), a, opts);
  if (res.status != gpusim::LaunchStatus::Ok) {
    std::fprintf(stderr, "fig10: MRI-Q run failed\n");
    return 1;
  }

  print_header("Fig. 10(a): value ranges of integer variables in MRI-Q");
  int int_peaked = 0, int_total = 0;
  for (std::size_t i = 0; i < v.fi.fi_sites.size(); ++i) {
    const auto& site = v.fi.fi_sites[i];
    if (site.type != kir::DType::I32 || rec.hists_[i].total() == 0) continue;
    print_variable(site, rec.hists_[i]);
    ++int_total;
    int_peaked += rec.hists_[i].peak_probability() > 0.5;
  }

  print_header("Fig. 10(b): value ranges of FP variables in MRI-Q");
  int fp_three_points = 0, fp_total = 0, fp_peaked = 0;
  for (std::size_t i = 0; i < v.fi.fi_sites.size(); ++i) {
    const auto& site = v.fi.fi_sites[i];
    if (site.type != kir::DType::F32 || rec.hists_[i].total() == 0) continue;
    print_variable(site, rec.hists_[i]);
    ++fp_total;
    fp_peaked += rec.hists_[i].peak_probability() > 0.5;
    // Three correlation points: mass on both signs plus a near-zero band.
    const auto& h = rec.hists_[i];
    double neg = 0, zero = 0, pos = 0;
    const std::size_t zi = h.bucket_index(0.0);
    for (std::size_t b = 0; b < h.num_buckets(); ++b) {
      const double p = h.probability(b);
      if (b < zi) neg += p;
      else if (b == zi) zero += p;
      else pos += p;
    }
    // Count the near-zero decades (|v| < 1e-3) as part of the zero point.
    fp_three_points += (neg > 0.05 && pos > 0.05);
  }

  std::printf("\nPaper's finding: most variables put >50%% of their values in one power of\n"
              "ten, and FP variables cluster around up to three correlation points.\n"
              "Measured: %d/%d int and %d/%d FP variables have a >50%% decade peak;\n"
              "%d/%d FP variables have both negative and positive correlation points.\n",
              int_peaked, int_total, fp_peaked, fp_total, fp_three_points, fp_total);
  return 0;
}
