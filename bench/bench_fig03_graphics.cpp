// Fig. 3 — impact of transient vs. intermittent faults on a 3D graphics
// program (ocean-flow):
//   (a) a transient fault corrupting one value -> one corrupted pixel in
//       one frame: not user-noticeable;
//   (b) an intermittent fault corrupting ~10,000 values -> a prominent
//       corruption pattern: user-noticeable SDC.
// An ASCII rendering of the corruption mask is printed for the intermittent
// case (the paper's "stripe" image).
#include <cmath>

#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

struct FrameResult {
  std::size_t corrupted_pixels = 0;
  bool noticeable = false;
  core::ProgramOutput frame;
};

FrameResult render_with_fault(workloads::Workload& w, const workloads::Dataset& ds,
                              const core::ProgramOutput& golden,
                              const gpusim::DeviceFaultModel* fm) {
  gpusim::Device dev;
  if (fm) dev.install_fault(*fm);
  auto job = w.make_job(ds);
  const auto prog = kir::lower(w.build_kernel(workloads::Scale::Small));
  const auto args = job->setup(dev);
  const auto res = dev.launch(prog, job->config(), args);
  FrameResult fr;
  if (res.status != gpusim::LaunchStatus::Ok) return fr;
  fr.frame = job->read_output(dev);
  const auto req = w.requirement();
  for (std::size_t i = 0; i < fr.frame.size(); ++i) {
    const double d = std::fabs(fr.frame.element(i) - golden.element(i));
    if (!(d <= req.pixel_delta)) ++fr.corrupted_pixels;
  }
  fr.noticeable = !req.satisfied(fr.frame, golden);
  return fr;
}

void print_corruption_map(const core::ProgramOutput& frame, const core::ProgramOutput& golden,
                          int width, double delta) {
  const int height = static_cast<int>(frame.size()) / width;
  for (int y = 0; y < height; y += 2) {  // 2 rows per text line
    std::string line;
    for (int x = 0; x < width; ++x) {
      bool bad = false;
      for (int dy = 0; dy < 2 && y + dy < height; ++dy) {
        const std::size_t i = static_cast<std::size_t>(y + dy) * width + x;
        if (!(std::fabs(frame.element(i) - golden.element(i)) <= delta)) bad = true;
      }
      line += bad ? '#' : '.';
    }
    std::printf("  %s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::uint64_t burst = args.get_u64("burst", 10000);

  auto w = workloads::make_ocean();
  const auto ds = w->make_dataset(seed, workloads::Scale::Small);
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto prog = kir::lower(w->build_kernel(workloads::Scale::Small));
  const auto a = job->setup(dev);
  (void)dev.launch(prog, job->config(), a);
  const auto gold = job->read_output(dev);

  print_header("Fig. 3: fault impact on the ocean-flow graphics program");

  gpusim::DeviceFaultModel transient;
  transient.kind = gpusim::DeviceFaultModel::Kind::Transient;
  transient.component = gpusim::DeviceFaultModel::Component::FPU;
  transient.mask = 0x3f800000;  // exponent pattern: visible even on a zero value
  transient.duration_ops = 1;
  const auto t = render_with_fault(*w, ds, gold, &transient);
  std::printf("(a) transient fault (1 corrupted value): %zu corrupted pixel(s) of %zu; "
              "user-noticeable SDC: %s (paper: no)\n",
              t.corrupted_pixels, gold.size(), t.noticeable ? "YES" : "no");

  gpusim::DeviceFaultModel intermittent = transient;
  intermittent.kind = gpusim::DeviceFaultModel::Kind::Intermittent;
  intermittent.duration_ops = burst;  // ~80us on a 250MHz FPU in the paper
  const auto i = render_with_fault(*w, ds, gold, &intermittent);
  std::printf("(b) intermittent fault (%llu corrupted values): %zu corrupted pixel(s); "
              "user-noticeable SDC: %s (paper: yes, stripe pattern)\n",
              static_cast<unsigned long long>(burst), i.corrupted_pixels,
              i.noticeable ? "YES" : "no");

  std::printf("\ncorruption map of the intermittent-fault frame ('#' = corrupted):\n");
  print_corruption_map(i.frame, gold, static_cast<int>(std::lround(std::sqrt(gold.size()))),
                       w->requirement().pixel_delta);
  return 0;
}
