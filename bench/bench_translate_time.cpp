// Section IX.D — translation throughput of the pass-manager pipeline, with
// the analysis-cache behavior behind it.
//
// For every workload kernel this harness times translate() for the FT and
// FI&FT pipelines over --repeats runs, and reports kernels/second plus the
// AnalysisManager's cache accounting (hits, misses, invalidations).  The
// paper reports ~0.7 s of translator-pass time per kernel on 2009 hardware;
// the reproduction's budget is the campaign-startup path, so the harness
// exits nonzero if any kernel's average translation exceeds a generous
// ceiling or if the cache accounting is inconsistent — which makes it usable
// as a CTest regression guard.  The campaign-startup integration (pipeline
// time ahead of the first trial on the launch-plan path) is printed by
// bench_campaign_throughput.
//
// Flags: --scale=tiny|small|medium  --repeats=N (default 25)
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "hauberk/translator.hpp"
#include "kir/bytecode.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

std::vector<std::unique_ptr<workloads::Workload>> all_workloads() {
  std::vector<std::unique_ptr<workloads::Workload>> out;
  for (auto& w : workloads::hpc_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::graphics_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::cpu_suite()) out.push_back(std::move(w));
  out.push_back(workloads::make_cpu_matmul());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const int repeats = static_cast<int>(args.get_int("repeats", 25));
  if (report_flag_errors(args)) return 2;

  print_header("Translation throughput and analysis-cache hit rate (pass pipeline)");
  std::printf("%-14s %-8s %10s %12s %7s %7s %7s %9s\n", "Program", "Mode", "avg ms",
              "kernels/s", "hits", "misses", "inval", "hit rate");

  int failures = 0;
  double worst_ms = 0.0;
  for (const auto& w : all_workloads()) {
    const auto kernel = w->build_kernel(scale);
    for (const core::LibMode mode : {core::LibMode::FT, core::LibMode::FIFT}) {
      core::TranslateOptions opt;
      opt.mode = mode;
      core::TranslateReport rep;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        rep = {};
        (void)core::translate(kernel, opt, &rep);
      }
      const double total_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const double avg_ms = 1e3 * total_s / repeats;
      worst_ms = std::max(worst_ms, avg_ms);

      const auto& cs = rep.analysis_cache;
      std::printf("%-14s %-8s %10.3f %12.0f %7llu %7llu %7llu %8.0f%%\n", w->name().c_str(),
                  core::lib_mode_name(mode), avg_ms, repeats / total_s,
                  static_cast<unsigned long long>(cs.hits),
                  static_cast<unsigned long long>(cs.misses),
                  static_cast<unsigned long long>(cs.invalidations), 100.0 * cs.hit_rate());

      // Accounting sanity: every pipeline consults at least one analysis,
      // and a mutating pipeline must have invalidated the cache.
      if (cs.hits + cs.misses == 0) {
        std::fprintf(stderr, "FAIL %s %s: no analysis requests recorded\n", w->name().c_str(),
                     core::lib_mode_name(mode));
        ++failures;
      }
      if (cs.invalidations == 0) {
        std::fprintf(stderr, "FAIL %s %s: mutating pipeline never invalidated the cache\n",
                     w->name().c_str(), core::lib_mode_name(mode));
        ++failures;
      }
    }
  }

  // Regression ceiling: the paper's translator spent ~0.7 s per kernel; the
  // reproduction must stay far below that so campaign startup is not
  // translation-bound even with hundreds of variants.
  constexpr double kCeilingMs = 700.0;
  std::printf("\nworst average translation: %.3f ms (ceiling %.0f ms)\n", worst_ms, kCeilingMs);
  if (worst_ms > kCeilingMs) {
    std::fprintf(stderr, "FAIL: translation time regressed past the ceiling\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
