// Warp-divergence analysis (Section V.A step (iii)): the Hauberk translator
// inserts if-statements (duplication compares, checksum validation), which
// are control-flow divergence points — but "because all threads in a same
// warp make the same control-flow decision if there is no fault, this does
// not introduce a large performance or scheduling overhead".
//
// Using the SIMT warp-serialized cost model (an instruction issues once per
// warp; divergent paths serialize), this harness shows:
//   1. Hauberk's fault-free overhead under SIMT costing matches the
//      per-thread costing of Fig. 13 — the added branches are warp-uniform;
//   2. a control kernel with genuinely divergent branches pays the
//      serialization penalty the model would charge if they weren't.
#include "bench_common.hpp"
#include "kir/builder.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using namespace hauberk::kir;

namespace {

struct Cycles {
  std::uint64_t thread = 0, simt = 0;
};

Cycles run(gpusim::Device& dev, const BytecodeProgram& prog, core::KernelJob& job,
           bool charge_cb = false) {
  const auto args = job.setup(dev);
  gpusim::LaunchOptions opts;
  opts.simt_cost = true;
  opts.charge_control_block = charge_cb;
  const auto res = dev.launch(prog, job.config(), args, opts);
  return {res.cycles, res.simt_cycles};
}

/// Control experiment: per-thread divergent branch (odd/even lanes take
/// different sides) vs warp-uniform branch over the same arithmetic.
Kernel divergence_kernel(bool divergent) {
  KernelBuilder kb(divergent ? "divergent" : "uniform");
  auto n = kb.param_i32("n");
  auto out = kb.param_ptr("out");
  auto tid = kb.let("tid", kb.thread_linear());
  // Uniform: whole warps agree (tid/64 is warp-constant for 32-wide warps).
  auto sel = kb.let("sel", divergent ? (tid & i32c(1)) : ((tid / i32c(64)) & i32c(1)));
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH i) {
    kb.if_then_else(sel == i32c(0),
                    [&] { kb.assign(acc, acc + to_f32(i) * f32c(1.5f) + sqrt_(abs_(acc))); },
                    [&] { kb.assign(acc, acc - to_f32(i) * f32c(0.5f) + sqrt_(abs_(acc))); });
  });
  kb.store(out + tid, acc);
  return kb.build();
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Hauberk detector branches are warp-uniform (fault-free SIMT cost)");
  common::Table t({"Program", "Overhead (per-thread)", "Overhead (SIMT warps)", "Delta"});
  double sum_delta = 0;
  int n = 0;
  for (auto& w : workloads::hpc_suite()) {
    gpusim::Device dev;
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    const auto base = run(dev, kir::lower(src), *job);
    core::TranslateOptions opt;
    opt.mode = core::LibMode::FT;
    const auto ft = run(dev, kir::lower(core::translate(src, opt)), *job, true);
    const double ovh_t = 100.0 * (static_cast<double>(ft.thread) - base.thread) / base.thread;
    const double ovh_s = 100.0 * (static_cast<double>(ft.simt) - base.simt) / base.simt;
    t.add_row({w->name(), common::Table::pct_cell(ovh_t), common::Table::pct_cell(ovh_s),
               common::Table::pct_cell(ovh_s - ovh_t)});
    sum_delta += ovh_s - ovh_t;
    ++n;
  }
  t.print();
  std::printf("\naverage SIMT-vs-thread overhead delta: %.2f%% — the detector branches cost\n"
              "no extra warp serialization when fault-free (paper Section V.A(iii)).\n",
              sum_delta / n);

  print_header("Control: genuinely divergent branches DO pay warp serialization");
  gpusim::Device dev;
  struct DivJob final : core::KernelJob {
    std::uint32_t out = 0;
    std::vector<Value> setup(gpusim::Device& d) override {
      d.reset_memory();
      out = d.mem().alloc(256, gpusim::AllocClass::F32Data);
      return {Value::i32(64), Value::ptr(out)};
    }
    gpusim::LaunchConfig config() const override { return {2, 1, 128, 1}; }
    core::ProgramOutput read_output(const gpusim::Device&) const override { return {}; }
  } job;
  const auto uni = run(dev, kir::lower(divergence_kernel(false)), job);
  const auto div = run(dev, kir::lower(divergence_kernel(true)), job);
  std::printf("uniform-branch kernel:   per-thread %10llu cycles, SIMT %10llu warp-cycles\n",
              static_cast<unsigned long long>(uni.thread),
              static_cast<unsigned long long>(uni.simt));
  std::printf("divergent-branch kernel: per-thread %10llu cycles, SIMT %10llu warp-cycles\n",
              static_cast<unsigned long long>(div.thread),
              static_cast<unsigned long long>(div.simt));
  std::printf("=> divergence inflates warp cost by %.0f%% while per-thread cost is unchanged\n",
              100.0 * (static_cast<double>(div.simt) / uni.simt - 1.0));
  return 0;
}
