// Campaign-engine throughput: trials/second of the sequential run_campaign
// baseline versus the parallel CampaignExecutor at increasing worker counts,
// plus the effect of the device's launch-plan cache (spill analysis and the
// per-instruction cost vector are computed once per program instead of once
// per launch).
//
// The worker sweep reports speedup relative to the sequential baseline; on a
// single-core host the parallel engine matches the baseline (within pool
// overhead) and the gains appear with the cores.  Outcomes are checked to be
// identical across all engines before anything is printed.
//
// Knobs: --program (default CP), --vars (default 16), --masks (default 8),
// --workers-list=1,2,4,0 (0 = hardware concurrency), --sanitize (run the
// baseline/executor/cache campaigns under the sanitizer engine — measures
// the shadow's overhead; the engine-sweep rows stay unsanitized and their
// outcome comparison is skipped, since sanitized trials may legitimately
// reclassify), --engine=reference|fast|sanitizer|threaded (engine for the
// baseline and executor campaigns; default fast), --protection=none|hamming|
// hsiao (hardware ECC on every campaign device; the dedicated protected-mode
// section below always measures none-vs-hsiao regardless), --json=FILE
// (write the engine sweep + executor + protection rows as JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "swifi/service.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

template <typename Fn>
double seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<int> parse_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::atoi(tok.c_str()));
  return out;
}

bool same_outcomes(const swifi::CampaignResult& a, const swifi::CampaignResult& b) {
  return a.per_fault == b.per_fault;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::string name = args.get("program", "CP");
  const int max_vars = static_cast<int>(args.get_int("vars", 16));
  const int masks = static_cast<int>(args.get_int("masks", 8));
  const auto worker_list = parse_list(args.get("workers-list", "1,2,4,0"));
  const std::string json_path = args.get("json");
  const auto cflags = campaign_flags_from(args);
  if (report_flag_errors(args)) return 2;
  const bool sanitize = cflags.sanitize;
  gpusim::DeviceProps props;
  props.protection = protection_from(cflags);
  swifi::CampaignConfig cfg;
  cfg.engine = engine_from(cflags);
  cfg.sanitize = sanitize;
  cfg.sanitize_cap = static_cast<std::size_t>(cflags.sanitize_cap);
  cfg.protection = props.protection;

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }

  auto ctx = make_context(std::move(w), seed, scale, 1.0, props);
  cfg.pipeline = swifi::PipelineSpec::from_report(ctx.variants.fift_report);
  swifi::PlanOptions opt;
  opt.max_vars = max_vars;
  opt.masks_per_var = masks;
  opt.error_bits = 3;
  opt.seed = seed + 7;
  const auto specs = swifi::plan_faults(ctx.variants.fift, ctx.profile, opt);
  const auto n = static_cast<double>(specs.size());
  const auto factory = context_factory(*ctx.workload, ctx.dataset, props, &ctx.variants.fift,
                                       &ctx.profile);

  print_header("Campaign throughput: sequential baseline vs parallel executor");
  std::printf("program %s, %zu trials, host concurrency %u%s\n", ctx.workload->name().c_str(),
              specs.size(), common::WorkerPool::default_workers(),
              sanitize ? ", sanitizer ON" : "");

  // Sequential baseline: run_campaign on one device (launch-plan cache on).
  swifi::CampaignResult base_res;
  const double base_s = seconds([&] {
    base_res = swifi::run_campaign(*ctx.device, ctx.variants.fift, *ctx.job, ctx.cb.get(),
                                   specs, ctx.workload->requirement(), cfg);
  });

  common::Table t({"Engine", "Workers", "Seconds", "Trials/sec", "Speedup"});
  t.add_row({"run_campaign", "1", common::Table::num(base_s, 3),
             common::Table::num(n / base_s, 1), "1.00x"});

  bool deterministic = true;
  for (const int workers : worker_list) {
    swifi::CampaignExecutor ex(workers);
    swifi::CampaignResult res;
    const double s = seconds([&] {
      res = ex.run(ctx.variants.fift, factory, specs, ctx.workload->requirement(), cfg);
    });
    deterministic = deterministic && same_outcomes(base_res, res);
    t.add_row({"executor", std::to_string(ex.workers()), common::Table::num(s, 3),
               common::Table::num(n / s, 1),
               common::Table::num(base_s / s, 2) + "x"});
  }
  t.print();
  std::printf("\noutcome determinism across engines and worker counts: %s\n",
              deterministic ? "OK (bitwise identical)" : "MISMATCH (bug!)");

  // Campaign service vs in-process executor: the streaming/checkpointing
  // layer must cost almost nothing on top of the trial work itself (the
  // acceptance bar is within 10% of CampaignExecutor), and periodic
  // checkpoints should stay in the noise at a sane interval.
  double service_s = 0, service_ex_s = 0, service_ckpt_s = 0;
  {
    swifi::CampaignExecutor ex(0);
    swifi::CampaignResult ex_res;
    service_ex_s = seconds([&] {
      ex_res = ex.run(ctx.variants.fift, factory, specs, ctx.workload->requirement(), cfg);
    });

    swifi::ServiceConfig scfg;
    scfg.campaign = cfg;
    scfg.workers = 0;
    swifi::ServiceResult sres;
    service_s = seconds([&] {
      sres = swifi::CampaignService(scfg).run(ctx.variants.fift, factory, specs,
                                              ctx.workload->requirement());
    });
    deterministic = deterministic &&
                    sres.counts.undetected == ex_res.counts.undetected &&
                    sres.counts.detected == ex_res.counts.detected &&
                    sres.counts.masked == ex_res.counts.masked &&
                    sres.counts.failure == ex_res.counts.failure;

    swifi::ServiceConfig ccfg = scfg;
    ccfg.checkpoint_every = 50;
    ccfg.checkpoint_path = std::string(::getenv("TMPDIR") ? ::getenv("TMPDIR") : "/tmp") +
                           "/bench_campaignd.ckpt";
    ccfg.resultlog_path = ccfg.checkpoint_path + ".log";
    service_ckpt_s = seconds([&] {
      sres = swifi::CampaignService(ccfg).run(ctx.variants.fift, factory, specs,
                                              ctx.workload->requirement());
    });
    std::remove(ccfg.checkpoint_path.c_str());
    std::remove(ccfg.resultlog_path.c_str());

    common::Table st({"Driver", "Seconds", "Trials/sec", "vs executor"});
    st.add_row({"executor", common::Table::num(service_ex_s, 3),
                common::Table::num(n / service_ex_s, 1), "1.00x"});
    st.add_row({"service", common::Table::num(service_s, 3),
                common::Table::num(n / service_s, 1),
                common::Table::num(service_ex_s / service_s, 2) + "x"});
    st.add_row({"service+ckpt/50", common::Table::num(service_ckpt_s, 3),
                common::Table::num(n / service_ckpt_s, 1),
                common::Table::num(service_ex_s / service_ckpt_s, 2) + "x"});
    std::printf("\ncampaign service (streaming aggregation, default workers):\n");
    st.print();
    std::printf("service overhead vs executor: %.1f%%, checkpoint overhead: %.1f%%\n",
                100.0 * (service_s / service_ex_s - 1.0),
                100.0 * (service_ckpt_s / service_s - 1.0));
  }

  // Interpreter-engine sweep: the same sequential campaign on each execution
  // engine (the baseline above runs --engine, default fast).  Outcomes must
  // be identical across the sweep; the sanitizer row is informational when
  // --sanitize distorted the baseline.
  std::map<std::string, double> engine_s;
  {
    common::Table et({"Engine", "Seconds", "Trials/sec", "vs reference"});
    const gpusim::ExecEngine sweep[] = {
        gpusim::ExecEngine::Reference, gpusim::ExecEngine::Fast,
        gpusim::ExecEngine::Sanitizer, gpusim::ExecEngine::Threaded};
    swifi::CampaignResult ref_res;
    for (const auto engine : sweep) {
      swifi::CampaignConfig rcfg;
      rcfg.engine = engine;
      gpusim::Device dev;
      auto job = ctx.workload->make_job(ctx.dataset);
      swifi::CampaignResult res;
      const double s = seconds([&] {
        res = swifi::run_campaign(dev, ctx.variants.fift, *job, ctx.cb.get(), specs,
                                  ctx.workload->requirement(), rcfg);
      });
      const char* en = gpusim::exec_engine_name(engine);
      engine_s[en] = s;
      if (engine == sweep[0])
        ref_res = res;
      else
        deterministic = deterministic && same_outcomes(res, ref_res);
      et.add_row({en, common::Table::num(s, 3), common::Table::num(n / s, 1),
                  common::Table::num(engine_s["reference"] / s, 2) + "x"});
    }
    std::printf("\nsequential campaign per engine (plan cache on):\n");
    et.print();
    std::printf("threaded vs fast: %.2fx trials/sec\n",
                engine_s["fast"] / engine_s["threaded"]);
  }

  // Protected-memory (hardware ECC) overhead on the threaded engine: the
  // same sequential campaign with a (72,64) SEC-DED code on device memory.
  // Protection closes the flat-arena shortcut — every global access takes
  // the EDC-checked load()/store() path — so this is the full cost of the
  // checked path, not just the modeled cycle surcharge.  Acceptance bar
  // (tracked in EXPERIMENTS.md): within 2x of unprotected throughput.
  // Outcomes must not move: a register-fault campaign never corrupts memory
  // cells, so ECC has nothing to correct and classification is invariant.
  double prot_none_s = 0, prot_hsiao_s = 0;
  {
    common::Table pt({"Protection", "Seconds", "Trials/sec", "vs none"});
    swifi::CampaignResult none_res;
    for (const auto scheme : {gpusim::ecc::Scheme::None, gpusim::ecc::Scheme::Hsiao}) {
      gpusim::DeviceProps pprops;
      pprops.protection = scheme;
      gpusim::Device dev(pprops);
      auto job = ctx.workload->make_job(ctx.dataset);
      swifi::CampaignConfig pcfg;
      pcfg.engine = gpusim::ExecEngine::Threaded;
      pcfg.protection = scheme;
      pcfg.pipeline = cfg.pipeline;
      swifi::CampaignResult res;
      const double s = seconds([&] {
        res = swifi::run_campaign(dev, ctx.variants.fift, *job, ctx.cb.get(), specs,
                                  ctx.workload->requirement(), pcfg);
      });
      if (scheme == gpusim::ecc::Scheme::None) {
        prot_none_s = s;
        none_res = res;
      } else {
        prot_hsiao_s = s;
        deterministic = deterministic && same_outcomes(none_res, res);
      }
      pt.add_row({gpusim::ecc::scheme_name(scheme), common::Table::num(s, 3),
                  common::Table::num(n / s, 1),
                  common::Table::num(s / prot_none_s, 2) + "x"});
    }
    std::printf("\nprotected memory (threaded engine, sequential campaign):\n");
    pt.print();
    std::printf("hsiao slowdown vs none: %.2fx (acceptance: <= 2x)\n",
                prot_hsiao_s / prot_none_s);
  }

  // Campaign-startup cost: the instrumentation (pass pipeline) time that
  // precedes any trial, with the analysis-cache behavior behind it.  The
  // full translation-throughput sweep lives in bench_translate_time.
  {
    const auto& rep = ctx.variants.fift_report;
    std::printf("\ncampaign startup: pipeline '%s' instrumented in %.3fms "
                "(analysis cache: %llu hits / %llu misses, %.0f%% hit rate)\n",
                rep.pipeline.c_str(), rep.transform_seconds * 1e3,
                static_cast<unsigned long long>(rep.analysis_cache.hits),
                static_cast<unsigned long long>(rep.analysis_cache.misses),
                100.0 * rep.analysis_cache.hit_rate());
  }

  // Launch-plan cache ablation: same sequential campaign with the cache off.
  {
    gpusim::Device cold(props);
    cold.set_plan_cache_enabled(false);
    auto job = ctx.workload->make_job(ctx.dataset);
    swifi::CampaignResult res;
    const double cold_s = seconds([&] {
      res = swifi::run_campaign(cold, ctx.variants.fift, *job, ctx.cb.get(), specs,
                                ctx.workload->requirement(), cfg);
    });
    deterministic = deterministic && same_outcomes(base_res, res);
    std::printf("\nlaunch-plan cache: on %.3fs (hits %llu, misses %llu) vs off %.3fs "
                "-> %.2fx, outcomes %s\n",
                base_s, static_cast<unsigned long long>(ctx.device->plan_cache_hits()),
                static_cast<unsigned long long>(ctx.device->plan_cache_misses()), cold_s,
                cold_s / base_s, same_outcomes(base_res, res) ? "identical" : "MISMATCH");
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write --json file '%s'\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"campaign_throughput\",\n  \"program\": \"%s\",\n",
                 ctx.workload->name().c_str());
    std::fprintf(f, "  \"trials\": %zu,\n  \"engines\": {\n", specs.size());
    std::size_t i = 0;
    for (const auto& [en, s] : engine_s)
      std::fprintf(f, "    \"%s\": {\"seconds\": %.6f, \"trials_per_sec\": %.2f}%s\n",
                   en.c_str(), s, n / s, ++i < engine_s.size() ? "," : "");
    std::fprintf(f, "  },\n  \"speedup_threaded_vs_fast\": %.4f,\n",
                 engine_s.at("fast") / engine_s.at("threaded"));
    std::fprintf(f, "  \"speedup_threaded_vs_reference\": %.4f,\n",
                 engine_s.at("reference") / engine_s.at("threaded"));
    std::fprintf(f, "  \"service\": {\"seconds\": %.6f, \"trials_per_sec\": %.2f,\n"
                 "    \"vs_executor\": %.4f, \"checkpoint_overhead\": %.4f},\n",
                 service_s, n / service_s, service_s / service_ex_s,
                 service_ckpt_s / service_s);
    std::fprintf(f, "  \"protection\": {\"threaded_none\": {\"seconds\": %.6f, "
                 "\"trials_per_sec\": %.2f},\n    \"threaded_hsiao\": {\"seconds\": %.6f, "
                 "\"trials_per_sec\": %.2f},\n    \"hsiao_slowdown_vs_none\": %.4f},\n",
                 prot_none_s, n / prot_none_s, prot_hsiao_s, n / prot_hsiao_s,
                 prot_hsiao_s / prot_none_s);
    std::fprintf(f, "  \"deterministic\": %s\n}\n", deterministic ? "true" : "false");
    std::fclose(f);
  }
  return deterministic ? 0 : 1;
}
