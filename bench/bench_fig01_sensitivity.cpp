// Fig. 1 — error sensitivity comparison: outcome breakdown of single-bit
// faults by corrupted-state class, for
//   GPU HPC programs      (pointer / integer / FP variables)
//   GPU graphics programs (pointer / integer / FP variables)
//   CPU programs          (stack / data / code), run with paged memory.
//
// Paper observations to reproduce:
//   Obs. 1: SDC with ~18% (ptr), ~45% (int), ~39% (FP) probability in HPC.
//   Obs. 2: FP faults essentially never crash; ptr/int faults often do.
//   Graphics: no single-bit SDC (per the frame-corruption requirement).
//   CPU: SDC < ~2.3%, crash-dominated.
//
// Knobs: --vars (per program, default 20), --masks (per var, default 10),
// --workers (campaign workers, 0 = hardware concurrency; default 0),
// --engine=reference|fast|sanitizer|threaded (trial interpreter; default fast
// — engines are bitwise identical, so this only changes wall-clock).
#include "bench_common.hpp"
#include "common/bitops.hpp"
#include "swifi/injector.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using swifi::Outcome;
using swifi::OutcomeCounts;

namespace {

struct RowAccum {
  OutcomeCounts counts;
  void print_row(common::Table& t, const std::string& cls, const std::string& type) const {
    const auto n = counts.activated();
    t.add_row({cls, type, std::to_string(n),
               common::Table::pct_cell(100.0 * counts.ratio(counts.failure)),
               common::Table::pct_cell(100.0 * counts.ratio(counts.undetected)),
               common::Table::pct_cell(100.0 * counts.ratio(counts.masked))});
  }
};

OutcomeCounts gpu_campaign(swifi::CampaignExecutor& ex,
                           const std::vector<std::unique_ptr<workloads::Workload>>& suite,
                           kir::DType type, workloads::Scale scale, std::uint64_t seed,
                           int max_vars, int masks, const swifi::CampaignConfig& cfg) {
  OutcomeCounts total;
  for (const auto& w : suite) {
    gpusim::Device dev;
    auto v = core::build_variants(w->build_kernel(scale));
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    const auto pd = core::profile(dev, v, {job.get()});
    swifi::PlanOptions opt;
    opt.max_vars = max_vars;
    opt.masks_per_var = masks;
    opt.error_bits = 1;
    opt.seed = seed + 17;
    opt.type_filter = type;
    const auto specs = swifi::plan_faults(v.fi, pd, opt);
    // Sensitivity of the *baseline* program: FI build without detectors.
    const auto res = ex.run(v.fi, bench::context_factory(*w, ds), specs, w->requirement(), cfg);
    total.failure += res.counts.failure;
    total.masked += res.counts.masked;
    total.undetected += res.counts.undetected;
    total.not_activated += res.counts.not_activated;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int max_vars = static_cast<int>(args.get_int("vars", 20));
  const int masks = static_cast<int>(args.get_int("masks", 10));
  const auto cflags = campaign_flags_from(args);
  if (report_flag_errors(args)) return 2;
  swifi::CampaignConfig gpu_cfg;
  gpu_cfg.engine = engine_from(cflags);
  swifi::CampaignExecutor ex(workers_from(args));

  print_header("Fig. 1: error sensitivity by program type and corrupted state (single-bit)");
  common::Table t({"Program class", "State", "Faults", "Crash/Hang", "SDC", "Not manifested"});

  const struct {
    kir::DType type;
    const char* name;
  } kTypes[] = {{kir::DType::PTR, "Pointer"}, {kir::DType::I32, "Integer"},
                {kir::DType::F32, "Floating-Point"}};

  double hpc_sdc[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    RowAccum r{gpu_campaign(ex, workloads::hpc_suite(), kTypes[i].type, scale, seed, max_vars,
                            masks, gpu_cfg)};
    hpc_sdc[i] = 100.0 * r.counts.ratio(r.counts.undetected);
    r.print_row(t, "GPU HPC", kTypes[i].name);
  }
  for (const auto& kt : kTypes) {
    RowAccum r{gpu_campaign(ex, workloads::graphics_suite(), kt.type, scale, seed, max_vars,
                            masks, gpu_cfg)};
    r.print_row(t, "GPU Graphics", kt.name);
  }

  // CPU programs with paged memory; attacked via stack / data / code.
  gpusim::DeviceProps cpu_props;
  cpu_props.memory_model = gpusim::MemoryModel::PagedCpu;
  cpu_props.num_sms = 1;
  // Generous watchdog matching the legacy sequential harness (paged CPU
  // programs have much higher per-thread counts than the derived floor).
  swifi::CampaignConfig cpu_cfg;
  cpu_cfg.hang_floor = 50'000'000;
  cpu_cfg.engine = gpu_cfg.engine;
  {
    // Stack: faults in local (virtual) variables via FI hooks.
    OutcomeCounts total;
    for (const auto& w : workloads::cpu_suite()) {
      gpusim::Device dev(cpu_props);
      auto v = core::build_variants(w->build_kernel(scale));
      const auto ds = w->make_dataset(seed, scale);
      auto job = w->make_job(ds);
      const auto pd = core::profile(dev, v, {job.get()});
      swifi::PlanOptions opt;
      opt.max_vars = max_vars;
      opt.masks_per_var = masks;
      opt.seed = seed + 29;
      const auto specs = swifi::plan_faults(v.fi, pd, opt);
      const auto res = ex.run(v.fi, bench::context_factory(*w, ds, cpu_props), specs,
                              w->requirement(), gpu_cfg);
      total.failure += res.counts.failure;
      total.masked += res.counts.masked;
      total.undetected += res.counts.undetected;
    }
    RowAccum{total}.print_row(t, "CPU", "Stack");
  }
  {
    // Data: random live memory-word flips (trial i draws from fork(seed, i)).
    OutcomeCounts total;
    for (const auto& w : workloads::cpu_suite()) {
      auto v = core::build_variants(w->build_kernel(scale));
      const auto ds = w->make_dataset(seed, scale);
      const auto res =
          ex.run_memory_faults(v.baseline, bench::context_factory(*w, ds, cpu_props),
                               seed + 31, max_vars * masks, 1, w->requirement(), cpu_cfg);
      total.failure += res.counts.failure;
      total.masked += res.counts.masked;
      total.undetected += res.counts.undetected;
    }
    RowAccum{total}.print_row(t, "CPU", "Data");
  }
  {
    // Code: instruction-encoding bit flips.
    OutcomeCounts total;
    for (const auto& w : workloads::cpu_suite()) {
      auto v = core::build_variants(w->build_kernel(scale));
      const auto ds = w->make_dataset(seed, scale);
      const auto res = ex.run_code_faults(v.baseline, bench::context_factory(*w, ds, cpu_props),
                                          seed + 41, max_vars * masks, w->requirement(),
                                          cpu_cfg);
      total.failure += res.counts.failure;
      total.masked += res.counts.masked;
      total.undetected += res.counts.undetected;
    }
    RowAccum{total}.print_row(t, "CPU", "Code");
  }

  t.print();
  std::printf(
      "\nObservation 1 (paper: SDC ~18%% ptr / ~45%% int / ~39%% FP in GPU HPC):\n"
      "  measured SDC: %.1f%% ptr / %.1f%% int / %.1f%% FP\n",
      hpc_sdc[0], hpc_sdc[1], hpc_sdc[2]);
  return 0;
}
