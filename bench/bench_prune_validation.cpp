// Pruned-vs-full campaign validation: the regression gate behind the static
// fault-site equivalence analysis (kir::DefUseAnalysis -> hauberk::prune ->
// swifi::prune_specs).  Every program of the full 12-workload suite
// (7 HPC + 2 graphics + 3 CPU) is validated on both build arms — the bare FI
// build (no detectors: dead-window sites are provably Benign) and the FI&FT
// build (detectors re-read values at check time, so dead-window liveness
// shrinks to the detector-observed mask).  For each (program, arm) the
// harness:
//
//   1. runs the *full* campaign to ground truth (per-trial outcomes),
//   2. cross-checks every statically-proven-Benign spec against that ground
//      truth — a single non-{Masked, NotActivated} outcome at a proven site
//      is an analysis soundness bug and fails the run (hard gate),
//   3. partitions the campaign into equivalence classes, runs only the
//      representatives at 1, 2 and 8 workers, and requires bitwise-identical
//      per-trial outcomes across worker counts *and* against the full
//      campaign's outcome for the same spec,
//   4. replays the pruned campaign through a 2-shard CampaignService with a
//      simulated kill after every periodic checkpoint, requiring the merged
//      resumed shards to reproduce the executor aggregates exactly,
//   5. compares the *weighted* pruned outcome distribution against the full
//      campaign: benign classes must match exactly (step 2 covers the full
//      side, step 3 the representative side); sampled classes must agree on
//      SDC and crash/hang rates within a pinned tolerance,
//   6. gates the total trial reduction across the suite (both arms) at
//      >= --min-reduction (default 3x; individual (program, arm) rows may
//      fall below, the suite may not).
//
// Exit nonzero on any gate violation — this harness doubles as the
// bench_check_prune_validation CTest entry.
//
// Knobs: --vars (default 20), --masks (default 10), --bits (default 1),
// --tolerance (max |pruned - full| outcome-rate delta, default 0.10),
// --min-reduction (default 3.0), --workers, --engine, --scale, --seed.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench_common.hpp"
#include "hauberk/prune.hpp"
#include "swifi/prune.hpp"
#include "swifi/service.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using swifi::Outcome;
using swifi::OutcomeCounts;

namespace {

struct Gates {
  double tolerance = 0.10;
  bool sound = true;        ///< no statically-Benign spec with a bad ground truth
  bool deterministic = true;///< worker sweep + service kill/resume all bitwise equal
  bool within_tol = true;   ///< weighted rates agree with the full campaign
  std::uint64_t total_specs = 0;
  std::uint64_t kept_specs = 0;
};

struct CrashInjected {};

/// Run one pruned shard to completion, simulating a kill (the hook throws)
/// right after the first periodic checkpoint of every process incarnation.
swifi::ServiceResult run_shard_with_kills(swifi::ServiceConfig cfg,
                                          const kir::BytecodeProgram& prog,
                                          const swifi::WorkerContextFactory& factory,
                                          const std::vector<swifi::FaultSpec>& specs,
                                          const workloads::Requirement& req) {
  for (int cycle = 0; cycle < 100; ++cycle) {
    swifi::ServiceConfig attempt = cfg;
    attempt.resume = cycle > 0;
    auto armed = std::make_shared<bool>(true);
    attempt.on_checkpoint = [armed](const swifi::CampaignCheckpoint&) {
      if (*armed) {
        *armed = false;  // one kill per incarnation
        throw CrashInjected{};
      }
    };
    swifi::CampaignService service(attempt);
    try {
      return service.run(prog, factory, specs, req);
    } catch (const CrashInjected&) {
    }
  }
  std::fprintf(stderr, "FAIL: kill/resume did not converge in 100 attempts\n");
  return {};
}

bool counts_equal(const OutcomeCounts& a, const OutcomeCounts& b) {
  return a.failure == b.failure && a.masked == b.masked &&
         a.detected_masked == b.detected_masked && a.detected == b.detected &&
         a.undetected == b.undetected && a.not_activated == b.not_activated &&
         a.race_detected == b.race_detected &&
         a.barrier_divergence == b.barrier_divergence &&
         a.ecc_corrected == b.ecc_corrected &&
         a.ecc_uncorrectable == b.ecc_uncorrectable;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int max_vars = static_cast<int>(args.get_int("vars", 20));
  const int masks = static_cast<int>(args.get_int("masks", 10));
  const int bits = static_cast<int>(args.get_int("bits", 1));
  const double min_reduction = args.get_double("min-reduction", 3.0);
  const auto flags = campaign_flags_from(args);
  Gates gates;
  gates.tolerance = args.get_double("tolerance", 0.10);
  if (report_flag_errors(args)) return 2;

  print_header("Pruned-vs-full SWIFI campaign validation (static equivalence classes)");
  std::printf("bits=%d vars=%d masks=%d tolerance=%.2f min-reduction=%.1fx\n", bits,
              max_vars, masks, gates.tolerance, min_reduction);
  common::Table t({"Program", "Specs", "Kept", "Reduction", "Benign", "SDC full",
                   "SDC pruned", "Crash full", "Crash pruned", "Sound", "Det"});

  const auto run_suite = [&](std::vector<std::unique_ptr<workloads::Workload>> suite,
                             gpusim::DeviceProps props, std::uint64_t hang_floor) {
    for (const auto& w : suite) {
      const auto v = core::build_variants(w->build_kernel(scale));
      const auto ds = w->make_dataset(seed, scale);
      auto pjob = w->make_job(ds);
      gpusim::Device pdev(props);
      const auto profile = core::profile(pdev, v, {pjob.get()});

      // Both build arms: the bare FI build (detector-free, dead-window sites
      // provably Benign) and the detector-instrumented FI&FT build.
      struct Arm {
        const char* tag;
        const kir::BytecodeProgram* prog;
        const kir::Kernel* source;
        const core::TranslateReport* report;
        swifi::WorkerContextFactory factory;
      };
      const Arm arms[] = {
          {"fi", &v.fi, &v.fi_source, &v.fi_report, context_factory(*w, ds, props)},
          {"fift", &v.fift, &v.fift_source, &v.fift_report,
           context_factory(*w, ds, props, &v.fift, &profile)},
      };
      for (const Arm& arm : arms) {
      const std::string row_name = w->name() + "/" + arm.tag;
      swifi::PlanOptions popt;
      popt.max_vars = max_vars;
      popt.masks_per_var = masks;
      popt.error_bits = bits;
      popt.seed = seed + 99;
      const auto specs = swifi::plan_faults(*arm.prog, profile, popt);

      auto facts = prune::build_kernel_prune_facts(*arm.source, *arm.prog);
      facts.kernel = w->name();  // campaigns select by program name
      prune::PruningPlan plan;
      plan.kernels.push_back(facts);
      const auto pruned = swifi::prune_specs(plan, w->name(), *arm.prog, specs);
      gates.total_specs += pruned.stats.total_specs;
      gates.kept_specs += pruned.stats.kept_specs;

      swifi::CampaignConfig base_cfg;
      base_cfg.engine = engine_from(flags);
      base_cfg.hang_floor = hang_floor;
      base_cfg.pipeline = swifi::PipelineSpec::from_report(*arm.report);
      const auto& factory = arm.factory;

      // 1. Full campaign: the ground truth every gate compares against.
      swifi::CampaignExecutor full_ex(flags.workers);
      const auto full = full_ex.run(*arm.prog, factory, specs, w->requirement(), base_cfg);

      // 2. Soundness: statically-Benign specs must resolve Masked/NotActivated.
      const auto violations = swifi::cross_check_benign(facts, specs, full.per_fault);
      bool sound = violations.empty();
      for (const auto& bv : violations)
        std::fprintf(stderr,
                     "FAIL %s: statically-Benign spec %u (site %u mask %08x) "
                     "resolved %s\n",
                     row_name.c_str(), bv.spec_index, bv.spec.site_id, bv.spec.mask,
                     swifi::outcome_name(bv.outcome));

      // 3. Pruned campaign, worker sweep: bitwise-identical per-trial
      // outcomes at 1/2/8 workers, each equal to the full campaign's outcome
      // for the same spec.
      swifi::CampaignConfig pruned_cfg = base_cfg;
      pruned_cfg.prune_digest = pruned.plan_digest;
      pruned_cfg.trial_weights = pruned.weights;
      bool deterministic = true;
      swifi::CampaignResult pruned_res;
      for (const int workers : {1, 2, 8}) {
        swifi::CampaignExecutor ex(workers);
        auto res = ex.run(*arm.prog, factory, pruned.specs, w->requirement(), pruned_cfg);
        for (std::size_t i = 0; i < pruned.specs.size(); ++i) {
          if (res.per_fault[i] != full.per_fault[pruned.rep_index[i]]) {
            deterministic = false;
            std::fprintf(stderr,
                         "FAIL %s: representative %zu diverged from the full "
                         "campaign at %d workers\n",
                         row_name.c_str(), i, workers);
            break;
          }
          // Benign-class exact gate, representative side.
          if (pruned.benign[i] && res.per_fault[i] != Outcome::Masked &&
              res.per_fault[i] != Outcome::NotActivated) {
            sound = false;
            std::fprintf(stderr, "FAIL %s: benign class %zu ran to %s\n",
                         row_name.c_str(), i, swifi::outcome_name(res.per_fault[i]));
          }
        }
        if (workers == 1) {
          pruned_res = std::move(res);
        } else if (!counts_equal(pruned_res.counts, res.counts)) {
          deterministic = false;
          std::fprintf(stderr, "FAIL %s: weighted counts diverged at %d workers\n",
                       row_name.c_str(), workers);
        }
      }

      // 4. 2-shard CampaignService with kill/resume: merged shards must
      // reproduce the executor's weighted aggregates exactly.
      swifi::ServiceResult merged;
      for (std::uint32_t shard = 0; shard < 2; ++shard) {
        swifi::ServiceConfig scfg;
        scfg.campaign = pruned_cfg;
        scfg.workers = 2;
        scfg.shards = 2;
        scfg.shard_index = shard;
        scfg.checkpoint_every = 8;
        scfg.checkpoint_path =
            (std::filesystem::temp_directory_path() /
             ("hauberk_prune_val_" + w->name() + "_" + arm.tag + "_s" +
              std::to_string(shard) + ".ckpt"))
                .string();
        std::remove(scfg.checkpoint_path.c_str());  // never resume a stale run
        auto res = run_shard_with_kills(scfg, *arm.prog, factory, pruned.specs,
                                        w->requirement());
        if (shard == 0)
          merged = std::move(res);
        else
          merged.merge(res);
      }
      if (!counts_equal(merged.counts, pruned_res.counts)) {
        deterministic = false;
        std::fprintf(stderr,
                     "FAIL %s: 2-shard kill/resume aggregates diverged from the "
                     "executor\n",
                     row_name.c_str());
      }

      // 5. Distribution agreement: weighted pruned rates vs full rates.
      const auto& fc = full.counts;
      const auto& pc = pruned_res.counts;
      const double sdc_full = fc.ratio(fc.undetected);
      const double sdc_pruned = pc.ratio(pc.undetected);
      const double crash_full = fc.ratio(fc.failure);
      const double crash_pruned = pc.ratio(pc.failure);
      const bool within = std::fabs(sdc_full - sdc_pruned) <= gates.tolerance &&
                          std::fabs(crash_full - crash_pruned) <= gates.tolerance;
      if (!within)
        std::fprintf(stderr,
                     "FAIL %s: pruned outcome rates drifted past %.2f "
                     "(SDC %.3f vs %.3f, crash %.3f vs %.3f)\n",
                     row_name.c_str(), gates.tolerance, sdc_pruned, sdc_full,
                     crash_pruned, crash_full);

      gates.sound = gates.sound && sound;
      gates.deterministic = gates.deterministic && deterministic;
      gates.within_tol = gates.within_tol && within;
      t.add_row({row_name, std::to_string(pruned.stats.total_specs),
                 std::to_string(pruned.stats.kept_specs),
                 common::Table::num(pruned.stats.reduction(), 2) + "x",
                 std::to_string(pruned.stats.benign_specs),
                 common::Table::pct_cell(100.0 * sdc_full),
                 common::Table::pct_cell(100.0 * sdc_pruned),
                 common::Table::pct_cell(100.0 * crash_full),
                 common::Table::pct_cell(100.0 * crash_pruned), sound ? "yes" : "NO",
                 deterministic ? "yes" : "NO"});
      }  // arm
    }
  };

  run_suite(workloads::hpc_suite(), {}, swifi::CampaignConfig{}.hang_floor);
  run_suite(workloads::graphics_suite(), {}, swifi::CampaignConfig{}.hang_floor);
  // CPU programs: paged memory on one SM, generous watchdog (matches the
  // Fig. 1 / ECC-study harnesses).
  gpusim::DeviceProps cpu_props;
  cpu_props.memory_model = gpusim::MemoryModel::PagedCpu;
  cpu_props.num_sms = 1;
  auto cpu = workloads::cpu_suite();
  cpu.push_back(workloads::make_cpu_matmul());
  run_suite(std::move(cpu), cpu_props, 50'000'000);
  t.print();

  const double reduction =
      gates.kept_specs == 0 ? 1.0
                            : static_cast<double>(gates.total_specs) /
                                  static_cast<double>(gates.kept_specs);
  std::printf("\nSuite total: %llu specs -> %llu representatives (%.2fx reduction, "
              "gate >= %.1fx)\n",
              static_cast<unsigned long long>(gates.total_specs),
              static_cast<unsigned long long>(gates.kept_specs), reduction,
              min_reduction);

  bool ok = gates.sound && gates.deterministic && gates.within_tol;
  if (reduction < min_reduction) {
    std::fprintf(stderr, "FAIL: suite reduction %.2fx below the %.1fx gate\n",
                 reduction, min_reduction);
    ok = false;
  }
  if (!gates.sound)
    std::printf("FAIL: the static Benign proof was unsound somewhere above.\n");
  if (!gates.deterministic)
    std::printf("FAIL: a pruned campaign lost bitwise determinism somewhere above.\n");
  if (!gates.within_tol)
    std::printf("FAIL: a pruned outcome distribution drifted past tolerance.\n");
  if (ok)
    std::printf("OK: statically-Benign proofs sound, pruned campaigns deterministic "
                "across workers/shards/kill-resume, distributions within %.2f.\n",
                gates.tolerance);
  return ok ? 0 : 1;
}
