// Substrate micro-benchmark: simulated-GPU interpreter throughput per
// workload (instructions per second), plus the relative cost of running
// with Hauberk FT instrumentation and with profiler hooks attached.  Not a
// paper figure — used to size fault-injection campaigns.
#include <benchmark/benchmark.h>

#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;

namespace {

struct Fx {
  std::unique_ptr<Workload> w;
  core::KernelVariants v;
  Dataset ds;
  std::unique_ptr<core::KernelJob> job;
  gpusim::Device dev;

  explicit Fx(int index) {
    auto suite = hpc_suite();
    w = std::move(suite[static_cast<std::size_t>(index)]);
    v = core::build_variants(w->build_kernel(Scale::Small));
    ds = w->make_dataset(1, Scale::Small);
    job = w->make_job(ds);
  }
};

void BM_Baseline(benchmark::State& state) {
  Fx f(static_cast<int>(state.range(0)));
  std::uint64_t instr = 0;
  for (auto _ : state) {
    const auto args = f.job->setup(f.dev);
    const auto res = f.dev.launch(f.v.baseline, f.job->config(), args);
    instr += res.instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instr));
  state.SetLabel(f.w->name());
}

void BM_FtInstrumented(benchmark::State& state) {
  Fx f(static_cast<int>(state.range(0)));
  core::ControlBlock cb(f.v.ft);
  for (auto _ : state) {
    const auto args = f.job->setup(f.dev);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    const auto res = f.dev.launch(f.v.ft, f.job->config(), args, opts);
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel(f.w->name());
}

}  // namespace

BENCHMARK(BM_Baseline)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FtInstrumented)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
