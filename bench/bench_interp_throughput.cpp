// Substrate micro-benchmark: simulated-GPU interpreter throughput
// (instructions per second) for every workload on every execution engine —
// the reference switch interpreter, the predecoded fast engine, the
// sanitizer engine, and the threaded-code engine (computed-goto dispatch +
// launch-plan-specialized superinstructions).  Not a paper figure — used to
// size fault-injection campaigns and to gate the threaded engine's speedup.
//
// All engines are pinned bitwise-identical by test_differential_fuzz and
// test_golden_outputs; this harness only measures, but it still verifies
// status/instruction equality across engines before reporting.
//
// Knobs:
//   --scale=tiny|small|medium  problem size (default small)
//   --seed=N                   dataset seed (default 1)
//   --engine=K                 measure only one engine
//                              (reference|fast|sanitizer|threaded)
//   --min-time=S               seconds of timed launches per cell (default 0.15)
//   --json=FILE                write rows + geomeans as JSON
//   --min-speedup=X            exit nonzero unless the threaded engine's
//                              geomean instr/sec >= X * the fast engine's
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "hauberk/control_block.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using workloads::Workload;

namespace {

struct Cell {
  std::string workload, engine, variant;
  double instr_per_sec = 0.0;
  double seconds = 0.0;
  std::uint64_t launches = 0;
  std::uint64_t instructions_per_launch = 0;
};

struct Entry {
  std::unique_ptr<Workload> workload;
  bool paged = false;  // cpu_suite programs run on a PagedCpu device (Fig. 1)
};

std::vector<Entry> all_workloads() {
  std::vector<Entry> all;
  for (auto& w : workloads::hpc_suite()) all.push_back({std::move(w), false});
  for (auto& w : workloads::graphics_suite()) all.push_back({std::move(w), false});
  for (auto& w : workloads::cpu_suite()) all.push_back({std::move(w), true});
  all.push_back({workloads::make_cpu_matmul(), false});
  return all;
}

gpusim::DeviceProps props_for(const Entry& e) {
  gpusim::DeviceProps p;
  if (e.paged) {
    // Same substrate the Fig. 1 CPU rows use: sparse paged allocations so
    // pointer-chasing code actually walks its list (a FlatGpu device would
    // place the list head at address 0 and the walk would never start).
    p.memory_model = gpusim::MemoryModel::PagedCpu;
    p.num_sms = 1;
  }
  return p;
}

/// Timed launch loop over a prepared device+args: job setup (allocation and
/// host->device copies) stays outside, so the cell isolates *interpreter*
/// throughput; trip counts come from params, so relaunching over stale
/// buffers executes the same instruction stream every iteration.
Cell time_cell(Workload& w, gpusim::ExecEngine engine, const kir::BytecodeProgram& prog,
               const gpusim::LaunchConfig& cfg, const std::vector<kir::Value>& args,
               gpusim::Device& dev, gpusim::LaunchHooks* hooks, double min_time,
               const char* variant) {
  gpusim::LaunchOptions opts;
  opts.hooks = hooks;

  Cell c;
  c.workload = w.name();
  c.engine = gpusim::exec_engine_name(engine);
  c.variant = variant;

  // Warmup launch: compiles and caches the launch plan (decode + threaded
  // stream) so plan-build time is not billed to the steady-state rate.
  const auto warm = dev.launch(prog, cfg, args, opts);
  if (warm.status != gpusim::LaunchStatus::Ok) {
    std::fprintf(stderr, "error: %s/%s launch failed (%s)\n", c.workload.c_str(),
                 c.engine.c_str(), gpusim::launch_status_name(warm.status));
    std::exit(1);
  }
  c.instructions_per_launch = warm.instructions;

  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  std::uint64_t instr = 0, launches = 0;
  while (elapsed < min_time || launches < 3) {
    const auto res = dev.launch(prog, cfg, args, opts);
    instr += res.instructions;
    ++launches;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  c.seconds = elapsed;
  c.launches = launches;
  c.instr_per_sec = static_cast<double>(instr) / elapsed;
  return c;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(xs.size()));
}

void write_json(const std::string& path, const std::string& scale,
                const std::vector<Cell>& cells,
                const std::vector<gpusim::ExecEngine>& engines,
                const std::map<std::string, double>& geo) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write --json file '%s'\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"interp_throughput\",\n  \"scale\": \"%s\",\n",
               scale.c_str());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"engine\": \"%s\", \"variant\": \"%s\", "
                 "\"instr_per_sec\": %.6e, \"instructions_per_launch\": %llu, "
                 "\"launches\": %llu, \"seconds\": %.6f}%s\n",
                 c.workload.c_str(), c.engine.c_str(), c.variant.c_str(), c.instr_per_sec,
                 static_cast<unsigned long long>(c.instructions_per_launch),
                 static_cast<unsigned long long>(c.launches), c.seconds,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"geomean_instr_per_sec\": {");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const char* en = gpusim::exec_engine_name(engines[i]);
    std::fprintf(f, "%s\"%s\": %.6e", i ? ", " : "", en, geo.at(en));
  }
  std::fprintf(f, "}");
  if (geo.count("fast") && geo.count("threaded"))
    std::fprintf(f, ",\n  \"speedup_threaded_vs_fast\": %.4f",
                 geo.at("threaded") / geo.at("fast"));
  if (geo.count("fast") && geo.count("reference"))
    std::fprintf(f, ",\n  \"speedup_fast_vs_reference\": %.4f",
                 geo.at("fast") / geo.at("reference"));
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const double min_time = args.get_double("min-time", 0.15);
  const std::string json_path = args.get("json");
  const double min_speedup = args.get_double("min-speedup", 0.0);
  const auto cflags = campaign_flags_from(args);
  if (report_flag_errors(args)) return 2;

  std::vector<gpusim::ExecEngine> engines = {
      gpusim::ExecEngine::Reference, gpusim::ExecEngine::Fast,
      gpusim::ExecEngine::Sanitizer, gpusim::ExecEngine::Threaded};
  if (args.has("engine")) engines = {engine_from(cflags)};

  print_header("Interpreter throughput: instructions/second per engine");

  std::vector<Cell> cells;
  // Per-engine geomean inputs: baseline-variant rates, one per workload.
  std::map<std::string, std::vector<double>> base_rates;

  common::Table t({"Workload", "Engine", "Base Minstr/s", "FT Minstr/s"});
  for (auto& e : all_workloads()) {
    auto& w = e.workload;
    const auto ds = w->make_dataset(seed, scale);
    const auto v = core::build_variants(w->build_kernel(scale));
    const auto props = props_for(e);

    // Engine-equality sanity: identical status + instruction totals across
    // the measured engines (the bitwise pinning lives in the test suite).
    std::uint64_t pinned_instr = 0;

    for (const auto engine : engines) {
      gpusim::Device dev(props);
      dev.set_engine(engine);
      auto job = w->make_job(ds);
      const auto bargs = job->setup(dev);
      const Cell base = time_cell(*w, engine, v.baseline, job->config(), bargs, dev,
                                  nullptr, min_time, "base");
      if (pinned_instr == 0) pinned_instr = base.instructions_per_launch;
      if (base.instructions_per_launch != pinned_instr) {
        std::fprintf(stderr, "error: %s/%s instruction count diverged\n",
                     w->name().c_str(), base.engine.c_str());
        return 1;
      }

      gpusim::Device ftdev(props);
      ftdev.set_engine(engine);
      auto ftjob = w->make_job(ds);
      const auto fargs = ftjob->setup(ftdev);
      core::ControlBlock cb(v.ft);
      const Cell ft =
          time_cell(*w, engine, v.ft, ftjob->config(), fargs, ftdev, &cb, min_time, "ft");

      base_rates[base.engine].push_back(base.instr_per_sec);
      t.add_row({w->name(), base.engine, common::Table::num(base.instr_per_sec / 1e6, 2),
                 common::Table::num(ft.instr_per_sec / 1e6, 2)});
      cells.push_back(base);
      cells.push_back(ft);
    }
  }
  t.print();

  std::map<std::string, double> geo;
  std::printf("\ngeomean instructions/sec over %zu workloads (baseline variant):\n",
              base_rates.begin()->second.size());
  for (const auto engine : engines) {
    const char* en = gpusim::exec_engine_name(engine);
    geo[en] = geomean(base_rates[en]);
    std::printf("  %-10s %8.2f Minstr/s\n", en, geo[en] / 1e6);
  }
  if (geo.count("fast") && geo.count("reference"))
    std::printf("fast vs reference:   %.2fx\n", geo["fast"] / geo["reference"]);
  if (geo.count("fast") && geo.count("threaded"))
    std::printf("threaded vs fast:    %.2fx\n", geo["threaded"] / geo["fast"]);

  if (!json_path.empty()) write_json(json_path, args.get("scale", "small"), cells, engines, geo);

  if (min_speedup > 0.0) {
    if (!geo.count("fast") || !geo.count("threaded")) {
      std::fprintf(stderr, "error: --min-speedup needs both fast and threaded measured\n");
      return 2;
    }
    const double s = geo["threaded"] / geo["fast"];
    if (s < min_speedup) {
      std::fprintf(stderr, "error: threaded/fast speedup %.2fx below floor %.2fx\n", s,
                   min_speedup);
      return 1;
    }
    std::printf("speedup floor %.2fx: OK\n", min_speedup);
  }
  return 0;
}
