// Substrate micro-benchmark: simulated-GPU interpreter throughput per
// workload (instructions per second), plus the relative cost of running
// with Hauberk FT instrumentation and with profiler hooks attached.  Not a
// paper figure — used to size fault-injection campaigns.
#include <benchmark/benchmark.h>

#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;

namespace {

struct Fx {
  std::unique_ptr<Workload> w;
  core::KernelVariants v;
  Dataset ds;
  std::unique_ptr<core::KernelJob> job;
  gpusim::Device dev;

  explicit Fx(int index) {
    auto suite = hpc_suite();
    w = std::move(suite[static_cast<std::size_t>(index)]);
    v = core::build_variants(w->build_kernel(Scale::Small));
    ds = w->make_dataset(1, Scale::Small);
    job = w->make_job(ds);
  }
};

void BM_Baseline(benchmark::State& state) {
  Fx f(static_cast<int>(state.range(0)));
  std::uint64_t instr = 0;
  for (auto _ : state) {
    const auto args = f.job->setup(f.dev);
    const auto res = f.dev.launch(f.v.baseline, f.job->config(), args);
    instr += res.instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instr));
  state.SetLabel(f.w->name());
}

void BM_FtInstrumented(benchmark::State& state) {
  Fx f(static_cast<int>(state.range(0)));
  core::ControlBlock cb(f.v.ft);
  for (auto _ : state) {
    const auto args = f.job->setup(f.dev);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    const auto res = f.dev.launch(f.v.ft, f.job->config(), args, opts);
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel(f.w->name());
}

/// Engine comparison: the predecoded fast engine vs the reference switch
/// interpreter on the same workload (arg1: 0 = fast, 1 = reference).  The
/// items/sec ratio between the two rows is the fast path's speedup; the
/// engines are pinned bitwise-identical by test_differential_fuzz.
void BM_Engine(benchmark::State& state) {
  Fx f(static_cast<int>(state.range(0)));
  const bool fast = state.range(1) == 0;
  f.dev.set_engine(fast ? gpusim::ExecEngine::Fast : gpusim::ExecEngine::Reference);
  // Job setup (allocation + host->device copies) is hoisted out of the timed
  // loop: this benchmark isolates *interpreter* throughput, and trip counts
  // in these kernels come from params, so relaunching over stale buffers
  // executes the same instruction stream.
  const auto args = f.job->setup(f.dev);
  std::uint64_t instr = 0;
  for (auto _ : state) {
    const auto res = f.dev.launch(f.v.baseline, f.job->config(), args);
    if (res.status != gpusim::LaunchStatus::Ok) state.SkipWithError("launch failed");
    instr += res.instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instr));
  state.SetLabel(f.w->name() + (fast ? "/fast" : "/reference"));
}

}  // namespace

BENCHMARK(BM_Baseline)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FtInstrumented)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Engine)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 6, 1), {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
