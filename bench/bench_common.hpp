// Shared infrastructure for the figure/table reproduction harnesses.
//
// Every bench binary accepts:
//   --scale=tiny|small|medium   problem size (default small)
//   --seed=N                    master seed (default 1)
// plus harness-specific knobs (documented per binary).  Each binary prints
// the rows/series of one figure or table of the paper; absolute values
// depend on the simulated device's cost model, but the qualitative shape is
// what the reproduction claims.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/campaign.hpp"
#include "swifi/executor.hpp"
#include "workloads/workload.hpp"

namespace hauberk::bench {

inline workloads::Scale scale_from(const common::CliArgs& args) {
  const std::string s = args.get("scale", "small");
  if (s == "tiny") return workloads::Scale::Tiny;
  if (s == "medium") return workloads::Scale::Medium;
  return workloads::Scale::Small;
}

/// Campaign workers from --workers (0 = hardware concurrency); outcomes are
/// identical for every value, only wall-clock changes.  Parsing and range
/// validation are shared with every SWIFI tool via common::parse_campaign_flags.
inline int workers_from(const common::CliArgs& args) {
  return common::parse_campaign_flags(args).workers;
}

/// All shared campaign flags (--workers / --sanitize / --datasets /
/// --engine / --plan / --prune) at once.
inline common::CampaignFlags campaign_flags_from(const common::CliArgs& args,
                                                 int default_datasets = 1) {
  return common::parse_campaign_flags(args, default_datasets);
}

/// Load the --plan=FILE selective-hardening plan referenced by the shared
/// campaign flags into translate options — the same handling fault_campaign
/// and campaignd use, so every campaign harness accepts kirtune --emit-plan
/// output.  Returns false (after printing the error) on a missing/garbage
/// plan file; callers exit 2 like any other flag error.
inline bool load_plan_flag(const common::CampaignFlags& flags, core::TranslateOptions& topt) {
  if (flags.plan.empty()) return true;
  try {
    topt.plan = std::make_shared<core::HardeningPlan>(core::load_plan(flags.plan));
    return true;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: --plan: %s\n", ex.what());
    return false;
  }
}

/// Campaign-config digest contribution of a loaded plan (0 when none).
inline std::uint64_t plan_digest_of(const core::TranslateOptions& topt) {
  return topt.plan ? core::plan_digest(*topt.plan) : 0;
}

// common::EngineKind mirrors gpusim::ExecEngine value for value so the CLI
// layer stays link-independent of the simulator; pin it here, where both
// headers are visible.
static_assert(static_cast<int>(common::EngineKind::Fast) ==
              static_cast<int>(gpusim::ExecEngine::Fast));
static_assert(static_cast<int>(common::EngineKind::Reference) ==
              static_cast<int>(gpusim::ExecEngine::Reference));
static_assert(static_cast<int>(common::EngineKind::Sanitizer) ==
              static_cast<int>(gpusim::ExecEngine::Sanitizer));
static_assert(static_cast<int>(common::EngineKind::Threaded) ==
              static_cast<int>(gpusim::ExecEngine::Threaded));

/// The gpusim engine selected by --engine (default fast).
inline gpusim::ExecEngine engine_from(const common::CampaignFlags& f) {
  return static_cast<gpusim::ExecEngine>(f.engine);
}

// Same arrangement for common::ProtectionKind / gpusim::ecc::Scheme.
static_assert(static_cast<int>(common::ProtectionKind::None) ==
              static_cast<int>(gpusim::ecc::Scheme::None));
static_assert(static_cast<int>(common::ProtectionKind::Hamming) ==
              static_cast<int>(gpusim::ecc::Scheme::Hamming));
static_assert(static_cast<int>(common::ProtectionKind::Hsiao) ==
              static_cast<int>(gpusim::ecc::Scheme::Hsiao));

/// The memory-protection scheme selected by --protection (default none).
inline gpusim::ecc::Scheme protection_from(const common::CampaignFlags& f) {
  return static_cast<gpusim::ecc::Scheme>(f.protection);
}

/// Print accumulated flag diagnostics to stderr; returns true if any.
inline bool report_flag_errors(const common::CliArgs& args) {
  for (const auto& e : args.errors()) std::fprintf(stderr, "error: %s\n", e.c_str());
  return !args.ok();
}

/// WorkerContextFactory over a prepared workload + dataset: every campaign
/// worker gets a private device and staged job, and — when `fift` and
/// `profile` are given — its own identically configured control block.
inline swifi::WorkerContextFactory context_factory(const workloads::Workload& w,
                                                   const workloads::Dataset& ds,
                                                   gpusim::DeviceProps props = {},
                                                   const kir::BytecodeProgram* fift = nullptr,
                                                   const core::ProfileData* profile = nullptr,
                                                   double alpha = 1.0) {
  return [&w, &ds, props, fift, profile, alpha] {
    swifi::WorkerContext ctx;
    ctx.device = std::make_unique<gpusim::Device>(props);
    ctx.job = w.make_job(ds);
    if (fift && profile) ctx.cb = core::make_configured_control_block(*fift, *profile, alpha);
    return ctx;
  };
}

/// One workload prepared for experiments: variants compiled, dataset staged,
/// profiler run, control block configured (train == test unless changed).
struct ProgramContext {
  std::unique_ptr<workloads::Workload> workload;
  core::KernelVariants variants;
  workloads::Dataset dataset;
  std::unique_ptr<core::KernelJob> job;
  std::unique_ptr<gpusim::Device> device;
  core::ProfileData profile;
  std::unique_ptr<core::ControlBlock> cb;  ///< configured for the FI&FT build
};

inline ProgramContext make_context(std::unique_ptr<workloads::Workload> w, std::uint64_t seed,
                                   workloads::Scale scale, double alpha = 1.0,
                                   gpusim::DeviceProps props = {},
                                   const core::TranslateOptions& topt = {}) {
  ProgramContext ctx;
  ctx.workload = std::move(w);
  ctx.variants = core::build_variants(ctx.workload->build_kernel(scale), topt);
  ctx.dataset = ctx.workload->make_dataset(seed, scale);
  ctx.job = ctx.workload->make_job(ctx.dataset);
  ctx.device = std::make_unique<gpusim::Device>(props);
  ctx.profile = core::profile(*ctx.device, ctx.variants, {ctx.job.get()});
  ctx.cb = core::make_configured_control_block(ctx.variants.fift, ctx.profile, alpha);
  return ctx;
}

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
}

}  // namespace hauberk::bench
