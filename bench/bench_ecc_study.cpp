// Hardware-vs-Hauberk protection study: who catches single-bit memory-cell
// upsets, and at what cycle cost?  For every program of the full 12-workload
// suite (7 HPC + 2 graphics + 3 CPU) the harness runs the same single-bit
// memory-fault campaign under four configurations:
//
//   baseline      unprotected device, uninstrumented program
//   ecc           hardware SEC-DED on the device, uninstrumented program
//   hauberk       unprotected device, FT program + configured control block
//   ecc+hauberk   both layers together
//
// Faults are planted raw in the stored codeword (data or check bits), so the
// ECC arms exercise the machine-check path, not the store-side re-encode.
// Expectations this harness self-checks (exit nonzero on violation):
//
//   * Hardware SEC-DED eliminates single-bit memory SDC entirely — every
//     activated fault in an ecc arm is corrected (or lands in never-read
//     words and stays masked); crash/hang and SDC counts must be zero.
//   * Hauberk alone reduces SDC but cannot reach zero (range detectors only
//     see values that flow through checked variables).
//
// The cycle-cost column is the fault-free modeled-cycle overhead of each
// configuration over the baseline launch — hardware EDC checks on every
// access vs Hauberk's detector instructions — which is the trade the paper's
// Section II motivates: ECC-grade coverage for memory state only, or
// Hauberk-grade coverage for the whole datapath at software cost.
//
// Knobs: --trials (per program per config, default 120), --scheme=hamming|
// hsiao (ECC code used by the ecc arms; default hsiao), --workers,
// --engine=reference|fast|sanitizer|threaded, --scale, --seed.
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using swifi::OutcomeCounts;

namespace {

struct Arm {
  const char* name;
  bool ecc;
  bool hauberk;
};

constexpr Arm kArms[] = {
    {"baseline", false, false},
    {"ecc", true, false},
    {"hauberk", false, true},
    {"ecc+hauberk", true, true},
};
constexpr int kNumArms = 4;

struct ArmTotals {
  OutcomeCounts counts;
  double overhead_sum = 0.0;  ///< sum of per-program fault-free cycle overheads (%)
  int programs = 0;
};

void accumulate(OutcomeCounts& into, const OutcomeCounts& c) {
  into.failure += c.failure;
  into.masked += c.masked;
  into.detected_masked += c.detected_masked;
  into.detected += c.detected;
  into.undetected += c.undetected;
  into.not_activated += c.not_activated;
  into.race_detected += c.race_detected;
  into.barrier_divergence += c.barrier_divergence;
  into.ecc_corrected += c.ecc_corrected;
  into.ecc_uncorrectable += c.ecc_uncorrectable;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int trials = static_cast<int>(args.get_int("trials", 120));
  common::ProtectionKind scheme_kind = common::ProtectionKind::Hsiao;
  const bool scheme_ok =
      common::parse_protection_kind(args.get("scheme", "hsiao"), scheme_kind) &&
      scheme_kind != common::ProtectionKind::None;
  const auto flags = campaign_flags_from(args);
  if (!scheme_ok) std::fprintf(stderr, "error: --scheme must be hamming or hsiao\n");
  if (report_flag_errors(args) || !scheme_ok) return 2;
  // --plan=FILE routes through the same shared handling as fault_campaign
  // and campaignd: the plan shapes the Hauberk arms' FT instrumentation and
  // its digest is folded into every campaign digest.
  core::TranslateOptions topt;
  if (!load_plan_flag(flags, topt)) return 2;
  const auto scheme = static_cast<gpusim::ecc::Scheme>(scheme_kind);
  swifi::CampaignExecutor ex(flags.workers);

  print_header("Hardware ECC vs Hauberk: single-bit memory-cell fault protection study");
  std::printf("scheme: %s SEC-DED (72,64), %d trials per program per config\n",
              gpusim::ecc::scheme_name(scheme), trials);
  common::Table t({"Program", "Config", "Faults", "Crash/Hang", "SDC", "Masked",
                   "Hauberk det", "ECC corr", "ECC unc", "Coverage", "Cycle ovh"});

  ArmTotals totals[kNumArms];
  bool ecc_guard_ok = true;

  const auto run_suite = [&](std::vector<std::unique_ptr<workloads::Workload>> suite,
                             gpusim::DeviceProps base_props, std::uint64_t hang_floor) {
    for (const auto& w : suite) {
      const auto v = core::build_variants(w->build_kernel(scale), topt);
      const auto ds = w->make_dataset(seed, scale);
      auto pjob = w->make_job(ds);
      gpusim::Device pdev(base_props);
      const auto profile = core::profile(pdev, v, {pjob.get()});

      std::uint64_t base_cycles = 0;
      for (int a = 0; a < kNumArms; ++a) {
        const Arm& arm = kArms[a];
        gpusim::DeviceProps props = base_props;
        props.protection = arm.ecc ? scheme : gpusim::ecc::Scheme::None;
        const auto& prog = arm.hauberk ? v.ft : v.baseline;

        // Fault-free launch for the cycle-cost column: the hauberk arms
        // charge the control block, the ecc arms pay the modeled EDC checks.
        gpusim::Device dev(props);
        auto job = w->make_job(ds);
        auto cb = arm.hauberk ? core::make_configured_control_block(v.ft, profile) : nullptr;
        auto largs = job->setup(dev);
        gpusim::LaunchOptions lo;
        lo.hooks = cb.get();
        lo.charge_control_block = arm.hauberk;
        const auto lr = dev.launch(prog, job->config(), largs, lo);
        if (a == 0) base_cycles = lr.cycles;
        const double ovh =
            base_cycles == 0 ? 0.0
                             : 100.0 *
                                   (static_cast<double>(lr.cycles) -
                                    static_cast<double>(base_cycles)) /
                                   static_cast<double>(base_cycles);

        swifi::CampaignConfig ccfg;
        ccfg.engine = engine_from(flags);
        ccfg.plan_digest = plan_digest_of(topt);
        ccfg.hang_floor = hang_floor;
        ccfg.protection = props.protection;
        const auto res = ex.run_memory_faults(
            prog,
            arm.hauberk ? context_factory(*w, ds, props, &v.ft, &profile)
                        : context_factory(*w, ds, props),
            seed + 31, trials, 1, w->requirement(), ccfg);
        const auto& c = res.counts;
        t.add_row({w->name(), arm.name, std::to_string(c.activated()),
                   common::Table::pct_cell(100.0 * c.ratio(c.failure)),
                   common::Table::pct_cell(100.0 * c.ratio(c.undetected)),
                   common::Table::pct_cell(100.0 * c.ratio(c.masked)),
                   common::Table::pct_cell(100.0 * (c.ratio(c.detected) +
                                                    c.ratio(c.detected_masked))),
                   common::Table::pct_cell(100.0 * c.ratio(c.ecc_corrected)),
                   common::Table::pct_cell(100.0 * c.ratio(c.ecc_uncorrectable)),
                   common::Table::pct_cell(100.0 * c.coverage()),
                   common::Table::num(ovh, 1) + "%"});
        accumulate(totals[a].counts, c);
        totals[a].overhead_sum += ovh;
        totals[a].programs += 1;
        if (arm.ecc && (c.undetected != 0 || c.failure != 0)) ecc_guard_ok = false;
      }
    }
  };

  run_suite(workloads::hpc_suite(), {}, swifi::CampaignConfig{}.hang_floor);
  run_suite(workloads::graphics_suite(), {}, swifi::CampaignConfig{}.hang_floor);
  // CPU programs run with paged memory on one SM; the generous watchdog
  // matches the Fig. 1 harness (per-thread counts far above the derived floor).
  gpusim::DeviceProps cpu_props;
  cpu_props.memory_model = gpusim::MemoryModel::PagedCpu;
  cpu_props.num_sms = 1;
  // cpu_suite() carries the two control/pointer-dominated Fig. 1 programs;
  // the study adds the FP-dense matmul so the CPU batch spans both classes.
  auto cpu = workloads::cpu_suite();
  cpu.push_back(workloads::make_cpu_matmul());
  run_suite(std::move(cpu), cpu_props, 50'000'000);
  t.print();

  std::printf("\nAggregates across all %d programs:\n", totals[0].programs);
  common::Table agg({"Config", "Faults", "Crash/Hang", "SDC", "Masked", "Hauberk det",
                     "ECC corr", "ECC unc", "Coverage", "Avg cycle ovh"});
  for (int a = 0; a < kNumArms; ++a) {
    const auto& c = totals[a].counts;
    const double mean_ovh =
        totals[a].programs == 0 ? 0.0
                                : totals[a].overhead_sum / totals[a].programs;
    agg.add_row({kArms[a].name, std::to_string(c.activated()),
                 common::Table::pct_cell(100.0 * c.ratio(c.failure)),
                 common::Table::pct_cell(100.0 * c.ratio(c.undetected)),
                 common::Table::pct_cell(100.0 * c.ratio(c.masked)),
                 common::Table::pct_cell(100.0 * (c.ratio(c.detected) +
                                                  c.ratio(c.detected_masked))),
                 common::Table::pct_cell(100.0 * c.ratio(c.ecc_corrected)),
                 common::Table::pct_cell(100.0 * c.ratio(c.ecc_uncorrectable)),
                 common::Table::pct_cell(100.0 * c.coverage()),
                 common::Table::num(mean_ovh, 1) + "%"});
  }
  agg.print();

  const auto& base = totals[0].counts;
  const auto& ecc = totals[1].counts;
  const auto& hbk = totals[2].counts;
  const auto& both = totals[3].counts;
  std::printf(
      "\nSingle-bit memory SDC: %.1f%% unprotected -> %.1f%% with hardware ECC, "
      "%.1f%% with Hauberk, %.1f%% with both.\n"
      "Hardware ECC protects memory state only (datapath faults pass through "
      "store re-encodes unseen); Hauberk's range detectors cover the datapath "
      "too but cannot see faults in unchecked variables.\n",
      100.0 * base.ratio(base.undetected), 100.0 * ecc.ratio(ecc.undetected),
      100.0 * hbk.ratio(hbk.undetected), 100.0 * both.ratio(both.undetected));

  if (!ecc_guard_ok) {
    std::printf("\nFAIL: an ECC arm saw a crash or SDC on a single-bit fault — "
                "SEC-DED must correct every single-bit memory error.\n");
    return 1;
  }
  std::printf("\nOK: every single-bit fault in the ECC arms was corrected or benign.\n");
  return 0;
}
