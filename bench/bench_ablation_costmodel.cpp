// Ablation — cost-model robustness.  The reproduction's overhead numbers
// (Fig. 13) come from a synthetic cycle model; this harness sweeps the
// model's most influential knobs (global-memory latency, spill penalty,
// transcendental cost) and verifies that the paper's *qualitative* ordering
//   Hauberk << R-Scatter <= R-Naive,   R-Naive = 100%
// is not an artifact of one parameter choice.
//
// --json=FILE emits the per-model suite averages in the same shape as the
// throughput benches, so CI folds this ablation into BENCH_engines.json via
// tools/merge_bench_json.py alongside the selective-hardening frontier.
#include "bench_common.hpp"
#include "swifi/baselines.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

struct ModelSpec {
  const char* name;
  gpusim::CostModel model;
};

std::vector<ModelSpec> models() {
  std::vector<ModelSpec> out;
  out.push_back({"default", gpusim::CostModel{}});
  {
    gpusim::CostModel m;
    m.load_global = m.store_global = 6;  // perfectly cached memory
    out.push_back({"cheap-memory", m});
  }
  {
    gpusim::CostModel m;
    m.load_global = m.store_global = 120;  // uncoalesced DRAM
    m.atomic_global = 300;
    out.push_back({"expensive-memory", m});
  }
  {
    gpusim::CostModel m;
    m.spill = 40;  // local memory in DRAM
    out.push_back({"harsh-spills", m});
  }
  {
    gpusim::CostModel m;
    m.sfu = 4;  // fast transcendentals
    m.fpu_div = 8;
    out.push_back({"fast-sfu", m});
  }
  return out;
}

struct SuiteOverheads {
  double hauberk = 0, scatter = 0, naive = 0;
  int n = 0, n_scatter = 0;
};

SuiteOverheads run_suite(const gpusim::CostModel& cm, workloads::Scale scale,
                         std::uint64_t seed) {
  SuiteOverheads so;
  for (auto& w : workloads::hpc_suite()) {
    gpusim::Device dev;
    dev.cost_model() = cm;
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    const auto baseline = kir::lower(src);
    auto args = job->setup(dev);
    const auto base = dev.launch(baseline, job->config(), args);

    core::TranslateOptions opt;
    opt.mode = core::LibMode::FT;
    args = job->setup(dev);
    gpusim::LaunchOptions fopts;
    fopts.charge_control_block = true;
    const auto ft = dev.launch(kir::lower(core::translate(src, opt)), job->config(), args,
                               fopts);
    const auto rn = swifi::run_r_naive(dev, baseline, *job);

    auto ovh = [&](std::uint64_t c) {
      return 100.0 * (static_cast<double>(c) - static_cast<double>(base.cycles)) /
             static_cast<double>(base.cycles);
    };
    so.hauberk += ovh(ft.cycles);
    so.naive += ovh(rn.total_cycles);
    ++so.n;
    const auto sk = swifi::make_r_scatter(src, dev.props());
    if (sk.compiles) {
      args = job->setup(dev);
      so.scatter += ovh(dev.launch(kir::lower(sk.kernel), job->config(), args).cycles);
      ++so.n_scatter;
    }
  }
  return so;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Ablation: Fig. 13 ordering under cost-model variations (suite averages)");
  common::Table t({"Cost model", "Hauberk", "R-Scatter", "R-Naive", "Ordering holds"});
  struct JsonRow {
    std::string model;
    double hauberk, scatter, naive;
    bool holds;
  };
  std::vector<JsonRow> jrows;
  bool all_hold = true;
  for (const auto& spec : models()) {
    const auto so = run_suite(spec.model, scale, seed);
    const double h = so.hauberk / so.n;
    const double sc = so.scatter / so.n_scatter;
    const double rn = so.naive / so.n;
    const bool holds = h < sc && sc < rn * 1.25;
    all_hold &= holds;
    t.add_row({spec.name, common::Table::pct_cell(h), common::Table::pct_cell(sc),
               common::Table::pct_cell(rn), holds ? "yes" : "NO"});
    jrows.push_back({spec.name, h, sc, rn, holds});
  }
  t.print();
  std::printf("\nQualitative claim (Hauberk << R-Scatter <= ~R-Naive) %s across all "
              "cost-model variants.\n", all_hold ? "HOLDS" : "DOES NOT HOLD");

  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write --json file '%s'\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_costmodel\",\n  \"scale\": \"%s\",\n",
                 args.get("scale", "small").c_str());
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < jrows.size(); ++i)
      std::fprintf(f,
                   "    {\"model\": \"%s\", \"hauberk_overhead_pct\": %.4f, "
                   "\"r_scatter_overhead_pct\": %.4f, \"r_naive_overhead_pct\": %.4f, "
                   "\"ordering_holds\": %s}%s\n",
                   jrows[i].model.c_str(), jrows[i].hauberk, jrows[i].scatter,
                   jrows[i].naive, jrows[i].holds ? "true" : "false",
                   i + 1 < jrows.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"ordering_holds\": %s\n}\n", all_hold ? "true" : "false");
    std::fclose(f);
  }
  return all_hold ? 0 : 1;
}
