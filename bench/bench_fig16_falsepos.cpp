// Fig. 16 — false-positive ratio of the Hauberk loop detectors vs. the
// number of training input sets, with alpha recalibration:
//   left plot:  CP, MRI-FHD, PNS, TPACF at alpha = 1;
//   right plot: MRI-FHD at alpha in {1, 2, 10, 100};
// plus the Section IX.C companion analysis: MRI-FHD detection coverage for
// alpha in {1, 1000, 10000, 100000}.
//
// Protocol (Section IX.C): 52 datasets per program; 50 randomly chosen for
// training, 2 held out for testing; repeated --repeats times (default 10).
// A false positive is a fault-free test run that raises an SDC alarm.
//
// Knobs: --repeats, --datasets (default 52), --workers (campaign workers for
// the IX.C coverage sweep, 0 = hardware concurrency; default 0),
// --engine=reference|fast|sanitizer|threaded (interpreter for the test runs
// and the IX.C campaigns; default fast — results are engine-invariant).
#include <map>

#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

constexpr int kTrainCounts[] = {1, 3, 5, 7, 10, 18, 30, 50};

struct ProgramData {
  std::unique_ptr<workloads::Workload> w;
  core::KernelVariants variants;
  std::vector<workloads::Dataset> datasets;
  /// Per-dataset profiler samples, indexed [dataset][detector].
  std::vector<std::vector<std::vector<double>>> samples;
};

ProgramData prepare(std::unique_ptr<workloads::Workload> w, int n_datasets,
                    workloads::Scale scale) {
  ProgramData pd;
  pd.w = std::move(w);
  pd.variants = core::build_variants(pd.w->build_kernel(scale));
  gpusim::Device dev;
  for (int d = 0; d < n_datasets; ++d) {
    pd.datasets.push_back(pd.w->make_dataset(100 + static_cast<std::uint64_t>(d), scale));
    auto job = pd.w->make_job(pd.datasets.back());
    const auto prof = core::profile(dev, pd.variants, {job.get()});
    pd.samples.push_back(prof.samples);
  }
  return pd;
}

/// Train on the given dataset indices, then report whether each test run
/// raises a (false) alarm.
double false_positive_ratio(ProgramData& pd, const std::vector<int>& order, int train_n,
                            double alpha, int tests, gpusim::Device& dev) {
  // Union of samples over the first train_n datasets.
  std::vector<std::vector<double>> merged(pd.variants.ft.detectors.size());
  for (int i = 0; i < train_n; ++i) {
    const auto& s = pd.samples[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    for (std::size_t det = 0; det < s.size() && det < merged.size(); ++det)
      merged[det].insert(merged[det].end(), s[det].begin(), s[det].end());
  }
  core::ControlBlock cb(pd.variants.ft);
  cb.configure_from_profile(merged);
  cb.set_alpha(alpha);

  int alarms = 0;
  for (int t = 0; t < tests; ++t) {
    const auto& ds = pd.datasets[static_cast<std::size_t>(
        order[order.size() - 1 - static_cast<std::size_t>(t)])];
    auto job = pd.w->make_job(ds);
    const auto args = job->setup(dev);
    cb.reset_results();
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    const auto res = dev.launch(pd.variants.ft, job->config(), args, opts);
    if (res.status != gpusim::LaunchStatus::Ok) continue;
    alarms += (res.sdc_alarm || cb.sdc_detected()) ? 1 : 0;
  }
  return static_cast<double>(alarms) / tests;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const int repeats = static_cast<int>(args.get_int("repeats", 10));
  const auto cflags = campaign_flags_from(args, /*default_datasets=*/52);
  if (report_flag_errors(args)) return 2;
  const int n_datasets = cflags.datasets;
  const auto engine = engine_from(cflags);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Fig. 16 (left): false positive ratio vs. number of training sets (alpha=1)");

  std::vector<ProgramData> programs;
  programs.push_back(prepare(workloads::make_cp(), n_datasets, scale));
  programs.push_back(prepare(workloads::make_mri_fhd(), n_datasets, scale));
  programs.push_back(prepare(workloads::make_pns(), n_datasets, scale));
  programs.push_back(prepare(workloads::make_tpacf(), n_datasets, scale));

  auto sweep = [&](ProgramData& pd, double alpha) {
    std::map<int, double> fp;  // train count -> average FP ratio
    gpusim::Device dev;
    dev.set_engine(engine);
    for (int r = 0; r < repeats; ++r) {
      std::vector<int> order(pd.datasets.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
      common::Rng rng = common::Rng::fork(seed, static_cast<std::uint64_t>(r) * 977 + 5);
      std::shuffle(order.begin(), order.end(), rng);
      for (int n : kTrainCounts) {
        // Skip train counts the shuffled order cannot supply (train + 2 held
        // out) instead of reading past it when --datasets is small.
        if (n + 2 > static_cast<int>(order.size())) continue;
        fp[n] += false_positive_ratio(pd, order, n, alpha, /*tests=*/2, dev);
      }
    }
    for (auto& [n, v] : fp) v = 100.0 * v / repeats;
    return fp;
  };

  {
    common::Table t({"Training sets", "CP", "MRI-FHD", "PNS", "TPACF"});
    std::vector<std::map<int, double>> fps;
    for (auto& pd : programs) fps.push_back(sweep(pd, 1.0));
    for (int n : kTrainCounts) {
      if (n + 2 > n_datasets) continue;  // sweep skipped this count
      t.add_row({std::to_string(n), common::Table::pct_cell(fps[0][n]),
                 common::Table::pct_cell(fps[1][n]), common::Table::pct_cell(fps[2][n]),
                 common::Table::pct_cell(fps[3][n])});
    }
    t.print();
    std::printf("\nPaper: PNS converges near zero within ~7 sets (fixed simulation model);\n"
                "MRI-FHD stays high even at 50 sets (vector-product outputs).\n"
                "Measured at 50 sets: CP %.0f%%, MRI-FHD %.0f%%, PNS %.0f%%, TPACF %.0f%%\n",
                fps[0][50], fps[1][50], fps[2][50], fps[3][50]);
  }

  print_header("Fig. 16 (right): MRI-FHD false positive ratio vs. alpha");
  {
    common::Table t({"Training sets", "alpha=1", "alpha=2", "alpha=10", "alpha=100"});
    std::map<double, std::map<int, double>> by_alpha;
    for (double alpha : {1.0, 2.0, 10.0, 100.0}) by_alpha[alpha] = sweep(programs[1], alpha);
    for (int n : kTrainCounts) {
      if (n + 2 > n_datasets) continue;  // sweep skipped this count
      t.add_row({std::to_string(n), common::Table::pct_cell(by_alpha[1.0][n]),
                 common::Table::pct_cell(by_alpha[2.0][n]),
                 common::Table::pct_cell(by_alpha[10.0][n]),
                 common::Table::pct_cell(by_alpha[100.0][n])});
    }
    t.print();
    std::printf("\nPaper: with alpha=100 the MRI-FHD false positive ratio drops to ~0 after\n"
                "~7 training sets.  Measured at 7 sets: alpha=1 %.0f%%, alpha=100 %.0f%%\n",
                by_alpha[1.0][7], by_alpha[100.0][7]);
  }

  print_header("Section IX.C: MRI-FHD detection coverage vs. alpha (train == test)");
  {
    auto& pd = programs[1];
    common::Table t({"alpha", "Coverage", "Undetected"});
    gpusim::Device dev;
    auto job = pd.w->make_job(pd.datasets[0]);
    auto prof = core::profile(dev, pd.variants, {job.get()});
    swifi::CampaignExecutor ex(workers_from(args));
    for (double alpha : {1.0, 1000.0, 10000.0, 100000.0}) {
      swifi::PlanOptions opt;
      opt.max_vars = 20;
      opt.masks_per_var = 10;
      opt.error_bits = 1;
      opt.seed = seed + 3;
      const auto specs = swifi::plan_faults(pd.variants.fift, prof, opt);
      swifi::CampaignConfig ccfg;
      ccfg.engine = engine;
      const auto res = ex.run(pd.variants.fift,
                              context_factory(*pd.w, pd.datasets[0], {}, &pd.variants.fift,
                                              &prof, alpha),
                              specs, pd.w->requirement(), ccfg);
      t.add_row({common::Table::num(alpha, 0),
                 common::Table::pct_cell(100.0 * res.counts.coverage()),
                 common::Table::pct_cell(100.0 * res.counts.ratio(res.counts.undetected))});
    }
    t.print();
    std::printf("\nPaper: coverage 95%% at alpha<=1000, dropping ~12%% at alpha=10000\n"
                "(faults usually change values by >1e6, see Fig. 15).\n");
  }
  return 0;
}
