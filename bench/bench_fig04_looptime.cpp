// Fig. 4 — percentage of GPU kernel execution time spent in loops
// (Observation 4: >98% in 5 of 7 programs, ~87% on average; RPES is the
// sequential-heavy exception).
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Fig. 4: percent of GPU kernel execution time spent on loops");
  common::Table t({"Benchmark", "Loop cycles %", "Total cycles"});

  double sum = 0;
  int ge98 = 0, n = 0;
  for (auto& w : workloads::hpc_suite()) {
    gpusim::Device dev;
    const auto prog = kir::lower(w->build_kernel(scale));
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    const auto a = job->setup(dev);
    const auto res = dev.launch(prog, job->config(), a);
    if (res.status != gpusim::LaunchStatus::Ok) {
      std::fprintf(stderr, "fig04: %s failed\n", w->name().c_str());
      continue;
    }
    const double pct = 100.0 * static_cast<double>(res.loop_cycles) /
                       static_cast<double>(res.cycles);
    t.add_row({w->name(), common::Table::num(pct, 1), std::to_string(res.cycles)});
    sum += pct;
    ge98 += pct >= 98.0;
    ++n;
  }
  t.add_row({"AVG", common::Table::num(sum / n, 1), ""});
  t.print();
  std::printf("\nObservation 4 (paper: >98%% in 5/7 programs, ~87%% average):\n"
              "  measured: %d/%d programs >= 98%%, average %.1f%%\n",
              ge98, n, sum / n);
  return 0;
}
