// Ablation — non-loop duplication scheme (Section V.A, Fig. 8):
//   naive:    shadow variable alive until the last use, compared there
//             (doubles register pressure);
//   checksum: Hauberk's scheme — immediate compare + one shared checksum
//             register (the duplicate lives for two statements only).
// The harness reports register demand and kernel overhead for both schemes;
// the naive scheme's extra live ranges trigger spills in register-tight
// kernels, which is exactly the paper's argument for the checksum design.
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  const std::uint32_t tight_budget =
      static_cast<std::uint32_t>(args.get_int("tight-regs", 24));
  print_header("Ablation: naive (Fig. 8b) vs checksum (Fig. 8c) non-loop duplication");
  common::Table t({"Program", "Base regs", "Chk regs", "Naive regs", "Chk ovh", "Naive ovh",
                   "Chk ovh (tight)", "Naive ovh (tight)"});

  double sum_chk = 0, sum_naive = 0, sum_chk_t = 0, sum_naive_t = 0;
  int n = 0;
  gpusim::DeviceProps tight_props;
  tight_props.regs_per_thread = tight_budget;
  for (auto& w : workloads::hpc_suite()) {
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    gpusim::Device dev;
    gpusim::Device tight(tight_props);

    const auto base_prog = kir::lower(src);
    auto base_args = job->setup(dev);
    const auto base = dev.launch(base_prog, job->config(), base_args);
    base_args = job->setup(tight);
    const auto base_t = tight.launch(base_prog, job->config(), base_args);

    auto measure = [&](gpusim::Device& d, const gpusim::LaunchResult& b, bool naive,
                       std::uint16_t& regs) {
      core::TranslateOptions opt;
      opt.mode = core::LibMode::FT;
      opt.protect_loop = false;  // isolate the non-loop scheme
      opt.naive_duplication = naive;
      const auto prog = kir::lower(core::translate(src, opt));
      regs = prog.register_demand();
      const auto a = job->setup(d);
      gpusim::LaunchOptions opts;
      opts.charge_control_block = true;
      const auto res = d.launch(prog, job->config(), a, opts);
      return 100.0 * (static_cast<double>(res.cycles) - static_cast<double>(b.cycles)) /
             static_cast<double>(b.cycles);
    };

    std::uint16_t regs_chk = 0, regs_naive = 0;
    const double ovh_chk = measure(dev, base, false, regs_chk);
    const double ovh_naive = measure(dev, base, true, regs_naive);
    const double ovh_chk_t = measure(tight, base_t, false, regs_chk);
    const double ovh_naive_t = measure(tight, base_t, true, regs_naive);
    t.add_row({w->name(), std::to_string(base_prog.register_demand()),
               std::to_string(regs_chk), std::to_string(regs_naive),
               common::Table::pct_cell(ovh_chk), common::Table::pct_cell(ovh_naive),
               common::Table::pct_cell(ovh_chk_t), common::Table::pct_cell(ovh_naive_t)});
    sum_chk += ovh_chk;
    sum_naive += ovh_naive;
    sum_chk_t += ovh_chk_t;
    sum_naive_t += ovh_naive_t;
    ++n;
  }
  t.print();
  std::printf("\nAverage non-loop overhead: checksum %.1f%% vs naive %.1f%%;\n"
              "with a tight register budget (%u regs): checksum %.1f%% vs naive %.1f%%.\n"
              "The naive scheme keeps one live register per duplicated variable, so it\n"
              "spills first; checksum duplication shares one register (Section V.A).\n",
              sum_chk / n, sum_naive / n, tight_budget, sum_chk_t / n, sum_naive_t / n);
  return 0;
}
