// Fig. 15 — changes in the magnitude of FP values after a fault, by original
// value range and error-bit count.  Random single-precision values are drawn
// log-uniformly from each original range; `bits` random bits are flipped;
// the magnitude of the change |corrupted - original| is bucketed.
//
// Paper claim: as the number of corrupted bits grows, the portion of very
// large value changes (>1e15) grows regardless of the original range — the
// reason large alpha values cost little coverage (Section IX.C).
//
// Knob: --samples per cell (default 200000; paper used 33M total).
#include "bench_common.hpp"
#include "common/bitops.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

struct RangeSpec {
  const char* label;
  double lo, hi;
};

constexpr RangeSpec kRanges[] = {
    {"1E-38~1E-15", 1e-38, 1e-15},
    {"1E-15~1E-3", 1e-15, 1e-3},
    {"1E-3~1E+3", 1e-3, 1e3},
    {"1E+3~1E+15", 1e3, 1e15},
    {"1E+15~1E+38", 1e15, 1e38},
};

constexpr int kBits[] = {1, 3, 6, 10, 15};

/// Delta-magnitude buckets matching the paper's legend.
constexpr const char* kBuckets[] = {"<1E-15", "1E-15~1E-9", "1E-9~1E-6", "1E-6~1E-3",
                                    "1E-3~1E+3", "1E+3~1E+6", "1E+6~1E+9", "1E+9~1E+15",
                                    ">1E+15"};

int bucket_of(double delta) {
  if (!(delta >= 0) || std::isnan(delta)) return 8;  // NaN: enormous corruption
  if (delta < 1e-15) return 0;
  if (delta < 1e-9) return 1;
  if (delta < 1e-6) return 2;
  if (delta < 1e-3) return 3;
  if (delta < 1e3) return 4;
  if (delta < 1e6) return 5;
  if (delta < 1e9) return 6;
  if (delta < 1e15) return 7;
  return 8;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto samples = args.get_u64("samples", 200000);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Fig. 15: magnitude of value change after a fault (% of samples)");
  common::Table t({"Original range", "Bits", "<1E-15", "..1E-9", "..1E-6", "..1E-3", "..1E+3",
                   "..1E+6", "..1E+9", "..1E+15", ">1E+15"});

  double huge_first = -1, huge_last = -1;
  for (const auto& range : kRanges) {
    for (int bits : kBits) {
      common::Rng rng = common::Rng::fork(seed, static_cast<std::uint64_t>(bits) * 1000 +
                                                    static_cast<std::uint64_t>(range.lo));
      std::uint64_t counts[9] = {};
      for (std::uint64_t s = 0; s < samples; ++s) {
        const double lg = rng.uniform(std::log10(range.lo), std::log10(range.hi));
        float v = static_cast<float>(std::pow(10.0, lg));
        if (rng.next_below(2)) v = -v;
        const float c = common::flip_float_bits(rng, v, bits);
        ++counts[bucket_of(std::fabs(static_cast<double>(c) - static_cast<double>(v)))];
      }
      std::vector<std::string> row{range.label, std::to_string(bits)};
      for (int b = 0; b < 9; ++b)
        row.push_back(common::Table::num(100.0 * static_cast<double>(counts[b]) /
                                             static_cast<double>(samples), 1));
      t.add_row(row);
      const double huge = 100.0 * static_cast<double>(counts[8]) / static_cast<double>(samples);
      if (bits == 1 && huge_first < 0) huge_first = huge;
      if (bits == 15) huge_last = huge;
    }
  }
  t.print();
  std::printf("\nPaper claim: the >1E+15 share grows with the number of error bits in every\n"
              "original range (so faults usually change values by many orders of magnitude).\n"
              "Measured (first range): %.1f%% at 1 bit -> %.1f%% at 15 bits.\n",
              huge_first, huge_last);
  std::printf("(%llu samples per cell; %s bucket labels are upper bounds)\n",
              static_cast<unsigned long long>(samples), kBuckets[1]);
  return 0;
}
