// Ablation — range model (Section V.B): the three-correlation-point range
// set (negative / zero / positive clusters, threshold-searched) versus a
// naive single [min,max] interval.  The single interval also covers the
// empty space *between* the clusters, so corrupted values landing there
// escape detection; the paper's design tracks the clusters individually.
#include "bench_common.hpp"
#include "hauberk/ranges.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

/// Naive model: one interval [min,max] over all samples (plus sign).
core::RangeSet single_interval(const std::vector<double>& samples) {
  core::RangeSet rs;
  if (samples.empty()) return rs;
  double lo = samples[0], hi = samples[0];
  for (double v : samples) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Accept every |v| up to the largest magnitude observed, i.e. the interval
  // [-maxmag, +maxmag] (a min/max check without cluster structure).
  rs.has_zero = true;
  rs.zero_eps = std::max(std::fabs(lo), std::fabs(hi));
  return rs;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int max_vars = static_cast<int>(args.get_int("vars", 20));
  const int masks = static_cast<int>(args.get_int("masks", 10));
  const auto cflags = campaign_flags_from(args);
  if (report_flag_errors(args)) return 2;
  swifi::CampaignConfig ccfg;
  ccfg.engine = engine_from(cflags);
  swifi::CampaignExecutor ex(cflags.workers);

  print_header("Ablation: 3-correlation-point ranges vs single min/max interval");
  common::Table t({"Program", "Model", "Value space (decades)", "Escape rate", "Coverage",
                   "Undetected"});

  // Escape rate: probability that a random corrupted value (log-uniform
  // magnitude across the representable range, random sign) is *accepted* by
  // the detector's ranges — i.e. escapes detection.
  auto escape_rate = [](const core::RangeSet& rs) {
    common::Rng rng(99);
    int accepted = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double mag = std::pow(10.0, rng.uniform(-30.0, 30.0));
      accepted += rs.contains(rng.next_below(2) ? mag : -mag);
    }
    return 100.0 * accepted / n;
  };

  for (const char* name : {"CP", "MRI-Q", "MRI-FHD"}) {
    std::unique_ptr<workloads::Workload> w;
    for (auto& cand : workloads::hpc_suite())
      if (cand->name() == name) w = std::move(cand);
    auto ctx = make_context(std::move(w), seed, scale);

    swifi::PlanOptions popt;
    popt.max_vars = max_vars;
    popt.masks_per_var = masks;
    popt.error_bits = 3;
    popt.seed = seed + 11;
    const auto specs = swifi::plan_faults(ctx.variants.fift, ctx.profile, popt);

    for (int model = 0; model < 2; ++model) {
      std::vector<std::pair<int, core::RangeSet>> sets;
      double space = 0, escapes = 0;
      int nd = 0;
      for (std::size_t d = 0; d < ctx.profile.samples.size(); ++d) {
        if (ctx.profile.samples[d].empty()) continue;
        const auto rs = model == 0 ? core::derive_ranges(ctx.profile.samples[d])
                                   : single_interval(ctx.profile.samples[d]);
        space += rs.space_decades();
        escapes += escape_rate(rs);
        ++nd;
        sets.emplace_back(static_cast<int>(d), rs);
      }
      // Each campaign worker rebuilds the same model-specific control block.
      const auto factory = [&ctx, &sets] {
        swifi::WorkerContext wc;
        wc.device = std::make_unique<gpusim::Device>();
        wc.job = ctx.workload->make_job(ctx.dataset);
        wc.cb = std::make_unique<core::ControlBlock>(ctx.variants.fift);
        for (const auto& [d, rs] : sets) wc.cb->set_ranges(d, rs);
        return wc;
      };
      const auto res =
          ex.run(ctx.variants.fift, factory, specs, ctx.workload->requirement(), ccfg);
      t.add_row({ctx.workload->name(), model == 0 ? "3-point" : "single-interval",
                 common::Table::num(space, 1),
                 common::Table::pct_cell(nd ? escapes / nd : 0.0),
                 common::Table::pct_cell(100.0 * res.counts.coverage()),
                 common::Table::pct_cell(100.0 * res.counts.ratio(res.counts.undetected))});
    }
  }
  t.print();
  std::printf("\nThe single interval covers a much larger value space, so more corrupted\n"
              "values fall inside it and escape detection (lower coverage).\n");
  return 0;
}
