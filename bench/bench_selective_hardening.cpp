// Selective hardening — the coverage-vs-budget frontier.
//
// For every campaign-capable workload (the seven HPC programs plus the two
// graphics programs) and every overhead budget in {0, 5, 10, 20, 50}% and
// "full", ask the hauberk::opt optimizer for the coverage-maximizing
// HardeningPlan under that budget, then measure what the plan actually
// delivers:
//
//   * predicted overhead   the static estimator's claim (what kirtune says),
//   * measured overhead    the simulated FT build's cycle overhead,
//   * SWIFI coverage       detection coverage of a fault-injection campaign
//                          against the plan's FIFT build,
//   * retention            that coverage as a fraction of full-Hauberk's.
//
// A "none" arm (FI build, no detectors) anchors the bottom of the frontier.
// This is the measured validation behind kirtune: predictions are useful
// only if the estimator tracks the simulator and the plan's coverage holds
// up under real injected faults.
//
// Usage:
//   bench_selective_hardening [--program=CP|all] [--scale=tiny|small]
//       [--seed=N] [--vars=N] [--masks=N] [--workers=N]
//       [--budgets=0,5,10,20,50] [--json=FILE] [--check-budget=P]
//
// --check-budget=P exits nonzero unless, for every program, the P%-budget
// plan's measured coverage is >= the no-hardening arm's and its measured
// overhead stays within the budget (plus a small estimator tolerance).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "hauberk/cost.hpp"
#include "hauberk/opt.hpp"
#include "hauberk/plan.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

struct Arm {
  std::string budget;  ///< "none", "P%", or "full"
  double budget_pct = -1.0;
  double predicted_ovh = 0.0;  ///< % over measured baseline (estimator)
  double measured_ovh = 0.0;   ///< % over measured baseline (simulator)
  double coverage = 0.0;       ///< SWIFI detection coverage, %
  double retention = 0.0;      ///< coverage / full-arm coverage, %
};

struct ProgramRow {
  std::string name;
  std::vector<Arm> arms;
};

double overhead_pct(std::uint64_t cycles, std::uint64_t base) {
  return 100.0 * (static_cast<double>(cycles) - static_cast<double>(base)) /
         static_cast<double>(base);
}

std::uint64_t run_cycles(gpusim::Device& dev, const kir::BytecodeProgram& prog,
                         core::KernelJob& job) {
  const auto args = job.setup(dev);
  const auto res = dev.launch(prog, job.config(), args);
  if (res.status != gpusim::LaunchStatus::Ok) {
    std::fprintf(stderr, "selective_hardening: %s failed: %s\n", prog.name.c_str(),
                 gpusim::launch_status_name(res.status));
    return 0;
  }
  return res.cycles;
}

/// SWIFI detection coverage (%) of `prog` (an FI or FIFT build).
double swifi_coverage(const workloads::Workload& w, const workloads::Dataset& ds,
                      const core::KernelVariants& v, bool with_ft,
                      const swifi::PlanOptions& popt, int workers) {
  gpusim::Device dev;
  auto job = w.make_job(ds);
  const auto profile = core::profile(dev, v, {job.get()});
  const auto& prog = with_ft ? v.fift : v.fi;
  const auto specs = swifi::plan_faults(prog, profile, popt);
  swifi::CampaignExecutor ex(workers);
  swifi::CampaignConfig cfg;
  cfg.pipeline = swifi::PipelineSpec::from_report(with_ft ? v.fift_report : v.fi_report);
  const auto res = ex.run(
      prog,
      [&] {
        swifi::WorkerContext ctx;
        ctx.device = std::make_unique<gpusim::Device>();
        ctx.job = w.make_job(ds);
        if (with_ft) ctx.cb = core::make_configured_control_block(prog, profile);
        return ctx;
      },
      specs, w.requirement(), cfg);
  return 100.0 * res.counts.coverage();
}

std::vector<double> parse_budgets(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const auto comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::strtod(tok.c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int workers = workers_from(args);
  const double check_budget = args.get_double("check-budget", -1.0);
  const auto budgets = parse_budgets(args.get("budgets", "0,5,10,20,50"));
  const std::string only = args.get("program", "all");

  swifi::PlanOptions popt;
  popt.max_vars = static_cast<int>(args.get_int("vars", 12));
  popt.masks_per_var = static_cast<int>(args.get_int("masks", 6));
  popt.error_bits = 1;
  popt.seed = seed + 99;

  print_header("Selective hardening: coverage-vs-budget frontier (predicted and measured)");

  std::vector<ProgramRow> rows;
  bool check_ok = true;
  std::vector<std::unique_ptr<workloads::Workload>> suite;
  for (auto& w : workloads::hpc_suite()) suite.push_back(std::move(w));
  for (auto& w : workloads::graphics_suite()) suite.push_back(std::move(w));
  for (auto& w : suite) {
    if (only != "all" && w->name() != only) continue;
    ProgramRow row;
    row.name = w->name();
    const auto kernel = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    gpusim::Device dev;
    cost::CostProfile profile;
    try {
      profile = cost::measure_profile(dev, kernel, *job);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "selective_hardening: %s: %s\n", row.name.c_str(), ex.what());
      return 1;
    }
    const std::uint64_t base = profile.measured_cycles;

    // Anchors: plan-free variants serve both the "none" (FI) and "full"
    // (FT/FIFT) arms.
    const auto plain = core::build_variants(kernel);

    {
      Arm none;
      none.budget = "none";
      none.coverage = swifi_coverage(*w, ds, plain, false, popt, workers);
      row.arms.push_back(none);
    }

    for (const double pct : budgets) {
      const auto budget_cycles =
          static_cast<std::uint64_t>(pct / 100.0 * static_cast<double>(base));
      const auto pr = opt::plan_for_budget(kernel, profile, budget_cycles);
      core::TranslateOptions topt;
      topt.plan = std::make_shared<core::HardeningPlan>(pr.plan);
      const auto v = core::build_variants(kernel, topt);
      Arm a;
      a.budget = common::Table::pct_cell(pct);
      a.budget_pct = pct;
      a.predicted_ovh = overhead_pct(pr.predicted_cycles, base);
      a.measured_ovh = overhead_pct(run_cycles(dev, v.ft, *job), base);
      a.coverage = swifi_coverage(*w, ds, v, true, popt, workers);
      row.arms.push_back(a);
    }

    {
      Arm full;
      full.budget = "full";
      full.predicted_ovh =
          overhead_pct(cost::estimate_kernel_cycles(kernel, {}, profile), base);
      full.measured_ovh = overhead_pct(run_cycles(dev, plain.ft, *job), base);
      full.coverage = swifi_coverage(*w, ds, plain, true, popt, workers);
      row.arms.push_back(full);
    }

    const double full_cov = row.arms.back().coverage;
    for (auto& a : row.arms)
      a.retention = full_cov > 0.0 ? 100.0 * a.coverage / full_cov : 0.0;
    rows.push_back(std::move(row));
  }

  if (rows.empty()) {
    std::fprintf(stderr, "selective_hardening: unknown program '%s'\n", only.c_str());
    return 2;
  }

  common::Table t({"Program", "Budget", "Pred ovh", "Meas ovh", "SWIFI coverage",
                   "Retention vs full"});
  for (const auto& row : rows)
    for (const auto& a : row.arms)
      t.add_row({row.name, a.budget, common::Table::pct_cell(a.predicted_ovh),
                 common::Table::pct_cell(a.measured_ovh), common::Table::pct_cell(a.coverage),
                 common::Table::pct_cell(a.retention)});
  t.print();

  // Headline: how many programs keep >= 70% of full coverage at <= 20%?
  int retained = 0, with_20 = 0;
  for (const auto& row : rows)
    for (const auto& a : row.arms)
      if (a.budget_pct >= 0.0 && a.budget_pct <= 20.0 && a.retention >= 70.0) {
        ++retained;
        break;
      }
  for (const auto& row : rows) {
    (void)row;
    ++with_20;
  }
  std::printf("\n%d/%d program(s) retain >= 70%% of full-Hauberk SWIFI coverage within a "
              "<= 20%% overhead budget.\n", retained, with_20);

  if (check_budget >= 0.0) {
    const double tol = std::max(1.0, 0.1 * check_budget);  // estimator tolerance, pp
    for (const auto& row : rows) {
      const Arm* none = nullptr;
      const Arm* arm = nullptr;
      for (const auto& a : row.arms) {
        if (a.budget == "none") none = &a;
        if (a.budget_pct == check_budget) arm = &a;
      }
      if (!none || !arm) {
        std::fprintf(stderr, "check-budget: %s lacks a %.0f%% arm\n", row.name.c_str(),
                     check_budget);
        check_ok = false;
        continue;
      }
      if (arm->coverage + 1e-9 < none->coverage) {
        std::fprintf(stderr,
                     "check-budget: %s: %.0f%%-budget coverage %.1f%% < no-hardening "
                     "%.1f%%\n",
                     row.name.c_str(), check_budget, arm->coverage, none->coverage);
        check_ok = false;
      }
      if (arm->measured_ovh > check_budget + tol) {
        std::fprintf(stderr,
                     "check-budget: %s: measured overhead %.1f%% exceeds budget %.0f%% "
                     "(+%.1fpp tolerance)\n",
                     row.name.c_str(), arm->measured_ovh, check_budget, tol);
        check_ok = false;
      }
    }
    std::printf("budget check (%.0f%%): %s\n", check_budget, check_ok ? "OK" : "FAILED");
  }

  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write --json file '%s'\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"selective_hardening\",\n  \"scale\": \"%s\",\n",
                 args.get("scale", "small").c_str());
    std::fprintf(f, "  \"rows\": [\n");
    std::size_t n = 0, total = 0;
    for (const auto& row : rows) total += row.arms.size();
    for (const auto& row : rows)
      for (const auto& a : row.arms)
        std::fprintf(f,
                     "    {\"program\": \"%s\", \"budget\": \"%s\", "
                     "\"predicted_overhead_pct\": %.4f, \"measured_overhead_pct\": %.4f, "
                     "\"coverage_pct\": %.4f, \"retention_pct\": %.4f}%s\n",
                     row.name.c_str(), a.budget.c_str(), a.predicted_ovh, a.measured_ovh,
                     a.coverage, a.retention, ++n < total ? "," : "");
    std::fprintf(f, "  ],\n  \"programs_retaining_70pct_within_20pct\": %d,\n", retained);
    std::fprintf(f, "  \"programs\": %d\n}\n", with_20);
    std::fclose(f);
  }
  return check_ok ? 0 : 1;
}
