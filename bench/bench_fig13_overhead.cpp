// Fig. 13 — performance overhead of error detection techniques, normalized
// to the baseline kernel time, for the seven HPC programs:
//   R-Naive     full temporal duplication (paper: ~100%)
//   R-Scatter   optimized in-kernel duplication (paper: ~89%; TPACF N/A)
//   Hauberk-NL  non-loop detectors only
//   Hauberk-L   loop detectors only
//   Hauberk     both (paper: 15.3% avg; 8.9% excluding RPES)
#include "bench_common.hpp"
#include "swifi/baselines.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

struct Row {
  std::string name;
  double r_naive = 0, r_scatter = 0, nl = 0, l = 0, full = 0;
  bool scatter_ok = true;
};

double overhead_pct(std::uint64_t cycles, std::uint64_t base) {
  return 100.0 * (static_cast<double>(cycles) - static_cast<double>(base)) /
         static_cast<double>(base);
}

std::uint64_t run_cycles(gpusim::Device& dev, const kir::BytecodeProgram& prog,
                         core::KernelJob& job, bool charge_cb) {
  const auto args = job.setup(dev);
  gpusim::LaunchOptions opts;
  opts.charge_control_block = charge_cb;
  const auto res = dev.launch(prog, job.config(), args, opts);
  if (res.status != gpusim::LaunchStatus::Ok) {
    std::fprintf(stderr, "fig13: %s failed: %s\n", prog.name.c_str(),
                 gpusim::launch_status_name(res.status));
    return 0;
  }
  return res.cycles;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int maxvar = static_cast<int>(args.get_int("maxvar", 1));

  print_header("Fig. 13: performance overhead of GPU kernels, normalized to baseline (%)");

  std::vector<Row> rows;
  for (auto& w : workloads::hpc_suite()) {
    Row row;
    row.name = w->name();
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);
    auto job = w->make_job(ds);
    gpusim::Device dev;

    const auto baseline = kir::lower(src);
    const std::uint64_t base = run_cycles(dev, baseline, *job, false);

    // R-Naive: two full executions + CPU-side compare.
    const auto rn = swifi::run_r_naive(dev, baseline, *job);
    row.r_naive = overhead_pct(rn.total_cycles, base);

    // R-Scatter: in-kernel duplication; may fail to compile.
    const auto sk = swifi::make_r_scatter(src, dev.props());
    if (sk.compiles) {
      row.r_scatter = overhead_pct(run_cycles(dev, kir::lower(sk.kernel), *job, false), base);
    } else {
      row.scatter_ok = false;
    }

    // Hauberk variants (each charges the control-block delivery).
    core::TranslateOptions opt;
    opt.maxvar = maxvar;
    opt.mode = core::LibMode::FT;

    opt.protect_loop = false;
    opt.protect_nonloop = true;
    row.nl = overhead_pct(
        run_cycles(dev, kir::lower(core::translate(src, opt)), *job, true), base);

    opt.protect_loop = true;
    opt.protect_nonloop = false;
    row.l = overhead_pct(
        run_cycles(dev, kir::lower(core::translate(src, opt)), *job, true), base);

    opt.protect_nonloop = true;
    row.full = overhead_pct(
        run_cycles(dev, kir::lower(core::translate(src, opt)), *job, true), base);

    rows.push_back(row);
  }

  common::Table t({"Program", "R-Naive", "R-Scatter", "Hauberk-NL", "Hauberk-L", "Hauberk"});
  double s_rn = 0, s_rs = 0, s_nl = 0, s_l = 0, s_f = 0, s_f_no_rpes = 0;
  int n_rs = 0, n_no_rpes = 0;
  for (const auto& r : rows) {
    t.add_row({r.name, common::Table::num(r.r_naive, 1),
               r.scatter_ok ? common::Table::num(r.r_scatter, 1) : "N/A (shared mem)",
               common::Table::num(r.nl, 1), common::Table::num(r.l, 1),
               common::Table::num(r.full, 1)});
    s_rn += r.r_naive;
    if (r.scatter_ok) {
      s_rs += r.r_scatter;
      ++n_rs;
    }
    s_nl += r.nl;
    s_l += r.l;
    s_f += r.full;
    if (r.name != "RPES") {
      s_f_no_rpes += r.full;
      ++n_no_rpes;
    }
  }
  const double n = static_cast<double>(rows.size());
  t.add_row({"AVG", common::Table::num(s_rn / n, 1), common::Table::num(s_rs / n_rs, 1),
             common::Table::num(s_nl / n, 1), common::Table::num(s_l / n, 1),
             common::Table::num(s_f / n, 1)});
  t.print();
  std::printf("\nHauberk average overhead: %.1f%% (paper: 15.3%%)\n", s_f / n);
  std::printf("Hauberk average excluding RPES: %.1f%% (paper: 8.9%%)\n",
              s_f_no_rpes / n_no_rpes);
  std::printf("R-Naive average: %.1f%% (paper: ~100%%); R-Scatter average: %.1f%% (paper: ~89%%)\n",
              s_rn / n, s_rs / n_rs);
  return 0;
}
