// Fig. 2 — memory footprint by data type per benchmark class: in HPC FP
// programs, FP data occupies orders of magnitude more memory than integer
// and pointer data combined (the paper reports 3-6 orders; our scaled-down
// datasets preserve the dominance, with the gap growing with --scale).
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

namespace {

struct Footprint {
  double fp_mb = 0, int_mb = 0, ptr_mb = 0;
};

Footprint measure(const workloads::Workload& w, workloads::Scale scale, std::uint64_t seed) {
  gpusim::Device dev;
  const auto ds = w.make_dataset(seed, scale);
  auto job = w.make_job(ds);
  const auto prog = kir::lower(w.build_kernel(scale));
  (void)job->setup(dev);
  Footprint f;
  f.fp_mb = static_cast<double>(dev.mem().allocated_bytes(gpusim::AllocClass::F32Data)) / 1e6;
  f.int_mb = static_cast<double>(dev.mem().allocated_bytes(gpusim::AllocClass::I32Data)) / 1e6;
  // Pointer data: pointer-typed kernel parameters and pointer-typed virtual
  // variables (one word each per thread, counted once) — device buffers hold
  // no pointer arrays in these programs, matching the paper's tiny ptr bars.
  int ptr_vars = 0;
  for (const auto& p : prog.slot_types)
    if (p == kir::DType::PTR) ++ptr_vars;
  f.ptr_mb = 4.0 * ptr_vars / 1e6;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);

  print_header("Fig. 2: data type vs. memory size (MB)");
  common::Table t({"Program class", "FP data", "Integer data", "Pointer data", "FP/(int+ptr)"});

  auto add_class = [&](const char* name,
                       const std::vector<std::unique_ptr<workloads::Workload>>& suite,
                       bool fp_only) {
    Footprint sum;
    for (const auto& w : suite) {
      if (fp_only && w->is_integer_program()) continue;
      if (!fp_only && !w->is_integer_program() && suite.size() > 2) continue;
      const auto f = measure(*w, scale, seed);
      sum.fp_mb += f.fp_mb;
      sum.int_mb += f.int_mb;
      sum.ptr_mb += f.ptr_mb;
    }
    const double denom = sum.int_mb + sum.ptr_mb;
    t.add_row({name, common::Table::num(sum.fp_mb, 6), common::Table::num(sum.int_mb, 6),
               common::Table::num(sum.ptr_mb, 6),
               denom > 0 ? common::Table::num(sum.fp_mb / denom, 1) : "inf"});
  };

  add_class("HPC FP programs", workloads::hpc_suite(), /*fp_only=*/true);
  add_class("HPC integer programs", workloads::hpc_suite(), /*fp_only=*/false);
  add_class("3D graphics programs", workloads::graphics_suite(), /*fp_only=*/true);
  t.print();
  std::printf("\nPaper: FP data dominates HPC FP programs by 3-6 orders of magnitude;\n"
              "the gap here scales with --scale (datasets are laptop-sized).\n");
  return 0;
}
