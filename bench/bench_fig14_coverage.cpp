// Fig. 14 — error detection coverage of Hauberk: outcome breakdown
// (failure / masked / detected&masked / detected / undetected) for each
// benchmark program and error-bit count (1, 3, 6, 10, 15), with the same
// dataset used for training and testing (alpha = 1).
//
// Paper headline numbers: average detection coverage 86.8% (13.2% of faults
// escape); for single-bit errors 35.6% masked, 11.0% failure, 21.4%
// detected, 22.2% detected&masked, 9.8% undetected SDC.
//
// Knobs: --vars (default 20), --masks (default 10), --bits=1,3,6,10,15,
// --workers (campaign workers, 0 = hardware concurrency; default 0),
// --sanitize (run trials under the sanitizer engine and add Race /
// Divergence outcome columns), --engine=reference|fast|sanitizer|threaded
// (trial interpreter; default fast — outcomes are engine-invariant).
#include <sstream>

#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using swifi::OutcomeCounts;

namespace {

std::vector<int> parse_bits(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::atoi(tok.c_str()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int max_vars = static_cast<int>(args.get_int("vars", 20));
  const int masks = static_cast<int>(args.get_int("masks", 10));
  const auto bits_list = parse_bits(args.get("bits", "1,3,6,10,15"));
  const auto flags = campaign_flags_from(args);
  if (report_flag_errors(args)) return 2;
  // --plan=FILE routes through the same shared handling as fault_campaign
  // and campaignd: the selective-hardening plan shapes the FI&FT build and
  // its digest is folded into every campaign digest.
  core::TranslateOptions topt;
  if (!load_plan_flag(flags, topt)) return 2;
  const bool sanitize = flags.sanitize;
  swifi::CampaignExecutor ex(flags.workers);

  print_header("Fig. 14: Hauberk error detection coverage (FI&FT, train == test)");
  std::vector<std::string> cols{"Program", "Bits", "Failure", "Masked", "Det&Masked",
                                "Detected", "Undetected", "Coverage"};
  if (sanitize) {
    cols.insert(cols.end() - 1, "Race");
    cols.insert(cols.end() - 1, "Divergence");
  }
  common::Table t(cols);

  std::map<int, OutcomeCounts> per_bits_total;
  OutcomeCounts grand;

  for (auto& w : workloads::hpc_suite()) {
    auto ctx = make_context(std::move(w), seed, scale, 1.0, {}, topt);
    for (int bits : bits_list) {
      swifi::PlanOptions opt;
      opt.max_vars = max_vars;
      opt.masks_per_var = masks;
      opt.error_bits = bits;
      opt.seed = seed + static_cast<std::uint64_t>(bits) * 1000;
      const auto specs = swifi::plan_faults(ctx.variants.fift, ctx.profile, opt);
      swifi::CampaignConfig ccfg;
      ccfg.engine = engine_from(flags);
      ccfg.plan_digest = plan_digest_of(topt);
      ccfg.sanitize = sanitize;
      ccfg.sanitize_cap = static_cast<std::size_t>(flags.sanitize_cap);
      const auto res = ex.run(ctx.variants.fift,
                              context_factory(*ctx.workload, ctx.dataset, {},
                                              &ctx.variants.fift, &ctx.profile),
                              specs, ctx.workload->requirement(), ccfg);
      const auto& c = res.counts;
      std::vector<std::string> row{ctx.workload->name(), std::to_string(bits),
                                   common::Table::pct_cell(100.0 * c.ratio(c.failure)),
                                   common::Table::pct_cell(100.0 * c.ratio(c.masked)),
                                   common::Table::pct_cell(100.0 * c.ratio(c.detected_masked)),
                                   common::Table::pct_cell(100.0 * c.ratio(c.detected)),
                                   common::Table::pct_cell(100.0 * c.ratio(c.undetected))};
      if (sanitize) {
        row.push_back(common::Table::pct_cell(100.0 * c.ratio(c.race_detected)));
        row.push_back(common::Table::pct_cell(100.0 * c.ratio(c.barrier_divergence)));
      }
      row.push_back(common::Table::pct_cell(100.0 * c.coverage()));
      t.add_row(std::move(row));
      auto& pb = per_bits_total[bits];
      pb.failure += c.failure;
      pb.masked += c.masked;
      pb.detected_masked += c.detected_masked;
      pb.detected += c.detected;
      pb.undetected += c.undetected;
      pb.race_detected += c.race_detected;
      pb.barrier_divergence += c.barrier_divergence;
      grand.failure += c.failure;
      grand.masked += c.masked;
      grand.detected_masked += c.detected_masked;
      grand.detected += c.detected;
      grand.undetected += c.undetected;
      grand.race_detected += c.race_detected;
      grand.barrier_divergence += c.barrier_divergence;
    }
  }
  t.print();

  std::printf("\nPer-bit-count averages across programs:\n");
  common::Table avg({"Bits", "Failure", "Masked", "Det&Masked", "Detected", "Undetected",
                     "Coverage"});
  for (const auto& [bits, c] : per_bits_total) {
    avg.add_row({std::to_string(bits), common::Table::pct_cell(100.0 * c.ratio(c.failure)),
                 common::Table::pct_cell(100.0 * c.ratio(c.masked)),
                 common::Table::pct_cell(100.0 * c.ratio(c.detected_masked)),
                 common::Table::pct_cell(100.0 * c.ratio(c.detected)),
                 common::Table::pct_cell(100.0 * c.ratio(c.undetected)),
                 common::Table::pct_cell(100.0 * c.coverage())});
  }
  avg.print();

  if (per_bits_total.count(1)) {
    const auto& c1 = per_bits_total[1];
    std::printf("\nSingle-bit summary (paper: 35.6%% masked, 11.0%% failure, 21.4%% detected,\n"
                "22.2%% detected&masked, 9.8%% undetected):\n"
                "  measured: %.1f%% masked, %.1f%% failure, %.1f%% detected, "
                "%.1f%% detected&masked, %.1f%% undetected\n",
                100.0 * c1.ratio(c1.masked), 100.0 * c1.ratio(c1.failure),
                100.0 * c1.ratio(c1.detected), 100.0 * c1.ratio(c1.detected_masked),
                100.0 * c1.ratio(c1.undetected));
  }
  std::printf("\nOverall coverage (all bit counts): %.1f%% (paper: 86.8%%)\n",
              100.0 * grand.coverage());
  return 0;
}
