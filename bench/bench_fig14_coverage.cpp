// Fig. 14 — error detection coverage of Hauberk: outcome breakdown
// (failure / masked / detected&masked / detected / undetected) for each
// benchmark program and error-bit count (1, 3, 6, 10, 15), with the same
// dataset used for training and testing (alpha = 1).
//
// Paper headline numbers: average detection coverage 86.8% (13.2% of faults
// escape); for single-bit errors 35.6% masked, 11.0% failure, 21.4%
// detected, 22.2% detected&masked, 9.8% undetected SDC.
//
// Knobs: --vars (default 20), --masks (default 10), --bits=1,3,6,10,15,
// --workers (campaign workers, 0 = hardware concurrency; default 0).
#include <sstream>

#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;
using swifi::OutcomeCounts;

namespace {

std::vector<int> parse_bits(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::atoi(tok.c_str()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int max_vars = static_cast<int>(args.get_int("vars", 20));
  const int masks = static_cast<int>(args.get_int("masks", 10));
  const auto bits_list = parse_bits(args.get("bits", "1,3,6,10,15"));
  swifi::CampaignExecutor ex(workers_from(args));

  print_header("Fig. 14: Hauberk error detection coverage (FI&FT, train == test)");
  common::Table t({"Program", "Bits", "Failure", "Masked", "Det&Masked", "Detected",
                   "Undetected", "Coverage"});

  std::map<int, OutcomeCounts> per_bits_total;
  OutcomeCounts grand;

  for (auto& w : workloads::hpc_suite()) {
    auto ctx = make_context(std::move(w), seed, scale);
    for (int bits : bits_list) {
      swifi::PlanOptions opt;
      opt.max_vars = max_vars;
      opt.masks_per_var = masks;
      opt.error_bits = bits;
      opt.seed = seed + static_cast<std::uint64_t>(bits) * 1000;
      const auto specs = swifi::plan_faults(ctx.variants.fift, ctx.profile, opt);
      const auto res = ex.run(ctx.variants.fift,
                              context_factory(*ctx.workload, ctx.dataset, {},
                                              &ctx.variants.fift, &ctx.profile),
                              specs, ctx.workload->requirement());
      const auto& c = res.counts;
      t.add_row({ctx.workload->name(), std::to_string(bits),
                 common::Table::pct_cell(100.0 * c.ratio(c.failure)),
                 common::Table::pct_cell(100.0 * c.ratio(c.masked)),
                 common::Table::pct_cell(100.0 * c.ratio(c.detected_masked)),
                 common::Table::pct_cell(100.0 * c.ratio(c.detected)),
                 common::Table::pct_cell(100.0 * c.ratio(c.undetected)),
                 common::Table::pct_cell(100.0 * c.coverage())});
      auto& pb = per_bits_total[bits];
      pb.failure += c.failure;
      pb.masked += c.masked;
      pb.detected_masked += c.detected_masked;
      pb.detected += c.detected;
      pb.undetected += c.undetected;
      grand.failure += c.failure;
      grand.masked += c.masked;
      grand.detected_masked += c.detected_masked;
      grand.detected += c.detected;
      grand.undetected += c.undetected;
    }
  }
  t.print();

  std::printf("\nPer-bit-count averages across programs:\n");
  common::Table avg({"Bits", "Failure", "Masked", "Det&Masked", "Detected", "Undetected",
                     "Coverage"});
  for (const auto& [bits, c] : per_bits_total) {
    avg.add_row({std::to_string(bits), common::Table::pct_cell(100.0 * c.ratio(c.failure)),
                 common::Table::pct_cell(100.0 * c.ratio(c.masked)),
                 common::Table::pct_cell(100.0 * c.ratio(c.detected_masked)),
                 common::Table::pct_cell(100.0 * c.ratio(c.detected)),
                 common::Table::pct_cell(100.0 * c.ratio(c.undetected)),
                 common::Table::pct_cell(100.0 * c.coverage())});
  }
  avg.print();

  if (per_bits_total.count(1)) {
    const auto& c1 = per_bits_total[1];
    std::printf("\nSingle-bit summary (paper: 35.6%% masked, 11.0%% failure, 21.4%% detected,\n"
                "22.2%% detected&masked, 9.8%% undetected):\n"
                "  measured: %.1f%% masked, %.1f%% failure, %.1f%% detected, "
                "%.1f%% detected&masked, %.1f%% undetected\n",
                100.0 * c1.ratio(c1.masked), 100.0 * c1.ratio(c1.failure),
                100.0 * c1.ratio(c1.detected), 100.0 * c1.ratio(c1.detected_masked),
                100.0 * c1.ratio(c1.undetected));
  }
  std::printf("\nOverall coverage (all bit counts): %.1f%% (paper: 86.8%%)\n",
              100.0 * grand.coverage());
  return 0;
}
