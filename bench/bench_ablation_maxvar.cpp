// Ablation — Maxvar (Section V.B): how many variables each loop detector
// protects.  More protected variables raise coverage but add accumulator
// work inside the loop.  The paper fixes Maxvar = 1 for Fig. 13/14; this
// harness shows the tradeoff that justifies the choice.
#include "bench_common.hpp"

using namespace hauberk;
using namespace hauberk::bench;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto scale = scale_from(args);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int max_vars = static_cast<int>(args.get_int("vars", 16));
  const int masks = static_cast<int>(args.get_int("masks", 8));
  const auto cflags = campaign_flags_from(args);
  if (report_flag_errors(args)) return 2;
  swifi::CampaignConfig ccfg;
  ccfg.engine = engine_from(cflags);
  swifi::CampaignExecutor ex(cflags.workers);

  print_header("Ablation: Maxvar (protected variables per loop) vs coverage & overhead");
  common::Table t({"Program", "Maxvar", "Loop detectors", "Overhead", "Coverage", "Undetected"});

  for (const char* name : {"MRI-Q", "SAD", "TPACF"}) {
    std::unique_ptr<workloads::Workload> w;
    for (auto& cand : workloads::hpc_suite())
      if (cand->name() == name) w = std::move(cand);
    const auto src = w->build_kernel(scale);
    const auto ds = w->make_dataset(seed, scale);

    // Baseline cycles for the overhead column.
    gpusim::Device dev;
    auto job = w->make_job(ds);
    const auto base_prog = kir::lower(src);
    const auto base_args = job->setup(dev);
    const auto base = dev.launch(base_prog, job->config(), base_args);

    for (int maxvar : {1, 2, 3, 4}) {
      core::TranslateOptions opt;
      opt.maxvar = maxvar;
      auto v = core::build_variants(src, opt);
      const auto pd = core::profile(dev, v, {job.get()});

      // Overhead of the FT build.
      const auto ft_args = job->setup(dev);
      gpusim::LaunchOptions ft_opts;
      ft_opts.charge_control_block = true;
      const auto ft = dev.launch(v.ft, job->config(), ft_args, ft_opts);
      const double overhead = 100.0 * (static_cast<double>(ft.cycles) -
                                       static_cast<double>(base.cycles)) /
                              static_cast<double>(base.cycles);

      swifi::PlanOptions popt;
      popt.max_vars = max_vars;
      popt.masks_per_var = masks;
      popt.error_bits = 3;
      popt.seed = seed + 7;
      const auto specs = swifi::plan_faults(v.fift, pd, popt);
      const auto res = ex.run(v.fift, context_factory(*w, ds, {}, &v.fift, &pd), specs,
                              w->requirement(), ccfg);

      t.add_row({w->name(), std::to_string(maxvar),
                 std::to_string(v.ft_report.loop_detectors.size()),
                 common::Table::pct_cell(overhead),
                 common::Table::pct_cell(100.0 * res.counts.coverage()),
                 common::Table::pct_cell(100.0 * res.counts.ratio(res.counts.undetected))});
    }
  }
  t.print();
  std::printf("\nThe paper's choice Maxvar=1 keeps loop overhead minimal; additional\n"
              "protected variables buy small coverage gains at growing in-loop cost.\n");
  return 0;
}
