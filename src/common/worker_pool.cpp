#include "common/worker_pool.hpp"

#include <algorithm>
#include <utility>

namespace hauberk::common {

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) threads_.emplace_back([this, i] { thread_main(i); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned WorkerPool::default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void WorkerPool::run(unsigned n, const std::function<void(unsigned)>& fn) {
  const unsigned active = std::min(n, size());
  if (active == 0) return;
  std::lock_guard<std::mutex> run_lk(run_mu_);
  std::unique_lock<std::mutex> lk(mu_);
  job_ = &fn;
  active_slots_ = active;
  remaining_ = active;
  error_ = nullptr;
  ++generation_;
  lk.unlock();
  start_cv_.notify_all();
  lk.lock();
  done_cv_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;
  active_slots_ = 0;
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

void WorkerPool::thread_main(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (slot >= active_slots_) continue;  // this job wants fewer workers
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(slot);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !error_) error_ = err;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace hauberk::common
