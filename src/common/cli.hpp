// Minimal command-line flag parsing for the benchmark harnesses and example
// programs: `--name=value` / `--name value` / bare `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace hauberk::common {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const { return kv_.count(name) != 0; }
  [[nodiscard]] std::string get(const std::string& name, const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace hauberk::common
