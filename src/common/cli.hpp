// Minimal command-line flag parsing for the benchmark harnesses and example
// programs: `--name=value` / `--name value` / bare `--flag` forms.
//
// Typed getters parse strictly: a malformed value (e.g. `--workers=abc`)
// returns the default and records a diagnostic retrievable via errors(), so
// tools can fail fast instead of silently running with a zeroed knob.
// unknown_flags() lets a tool reject typos against its known-flag list.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hauberk::common {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const { return kv_.count(name) != 0; }
  [[nodiscard]] std::string get(const std::string& name, const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;

  /// Flags that were passed but are not in `known` (typo detection).
  [[nodiscard]] std::vector<std::string> unknown_flags(
      std::initializer_list<std::string_view> known) const;

  /// Diagnostics accumulated by the typed getters (malformed values).
  [[nodiscard]] const std::vector<std::string>& errors() const noexcept { return errors_; }
  [[nodiscard]] bool ok() const noexcept { return errors_.empty(); }

  /// Record a tool-side validation failure in the same diagnostics stream
  /// (e.g. an out-of-range value for a flag that parsed fine).
  void note_error(std::string msg) const { errors_.push_back(std::move(msg)); }

 private:
  std::map<std::string, std::string> kv_;
  mutable std::vector<std::string> errors_;  ///< filled lazily by const getters
};

/// Interpreter engine selection, mirroring gpusim::ExecEngine value for
/// value (common cannot link gpusim; static_asserts in bench_common.hpp pin
/// the correspondence where both headers are visible).
enum class EngineKind : std::uint8_t { Fast, Reference, Sanitizer, Threaded };

/// Canonical spelling accepted by --engine and printed in reports.
[[nodiscard]] const char* engine_kind_name(EngineKind k) noexcept;

/// Parse an --engine value; returns false (out untouched) on any string
/// that is not one of reference|fast|sanitizer|threaded.
[[nodiscard]] bool parse_engine_kind(std::string_view text, EngineKind& out) noexcept;

/// Hardware memory-protection selection, mirroring gpusim::ecc::Scheme value
/// for value (same arrangement as EngineKind: common cannot link gpusim, and
/// bench_common.hpp static_asserts pin the correspondence).
enum class ProtectionKind : std::uint8_t { None, Hamming, Hsiao };

/// Canonical spelling accepted by --protection and printed in reports.
[[nodiscard]] const char* protection_kind_name(ProtectionKind k) noexcept;

/// Parse a --protection value; returns false (out untouched) on any string
/// that is not one of none|hamming|hsiao.
[[nodiscard]] bool parse_protection_kind(std::string_view text, ProtectionKind& out) noexcept;

/// The campaign-control flags shared by every SWIFI-running tool
/// (fault_campaign, controller, campaignd, and the bench harnesses):
///   --workers=N           campaign workers (0 = hardware concurrency)
///   --sanitize            run trials under the sanitizer engine
///   --datasets=N          independent datasets per experiment
///   --sanitize-cap=N      per-block sanitizer report cap (default 64)
///   --engine=K            interpreter engine: reference|fast|sanitizer|threaded
///   --shards=K or K/I     split the campaign into K shards; run shard I
///                         (trial t belongs to shard t mod K; default 1/0)
///   --checkpoint=FILE     campaign checkpoint file to write
///   --checkpoint-every=N  write a checkpoint every N committed trials (0 = off)
///   --resume=FILE         resume from FILE (also becomes the checkpoint path
///                         unless --checkpoint overrides it)
///   --resultlog=FILE      compact binary per-trial result log
///   --protection=K        hardware memory protection: none|hamming|hsiao
///   --plan=FILE           structured hardening plan (hauberk-plan s-expr)
///                         applied to every translated kernel
///   --prune=FILE          static fault-site pruning plan (hauberk-prune
///                         s-expr, from kirprune --emit-plan): run one
///                         representative trial per equivalence class and
///                         weight aggregates by class size
///   --budget=P%|N         selective-hardening overhead budget: percent of
///                         the baseline cycles ("10%", 0..100) or an
///                         absolute extra-cycle count ("250000")
struct CampaignFlags {
  int workers = 0;
  bool sanitize = false;
  int datasets = 1;
  int sanitize_cap = 64;  ///< gpusim::SharedShadow::kMaxReportsPerBlock
  EngineKind engine = EngineKind::Fast;
  ProtectionKind protection = ProtectionKind::None;
  int shards = 1;
  int shard_index = 0;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint;
  std::string resume;
  std::string resultlog;
  std::string plan;          ///< --plan=FILE; empty when absent
  std::string prune;         ///< --prune=FILE; empty when absent
  double budget_pct = -1.0;  ///< --budget=P%; negative when absent/absolute
  std::uint64_t budget_cycles = 0;  ///< --budget=N (absolute extra cycles)
};

/// Parse a --shards value: "K" (shard 0 of K) or "K/I" (shard I of K).
/// Returns false on malformed text or out-of-range indices (K < 1,
/// I < 0 or I >= K); `shards`/`shard_index` are untouched on failure.
[[nodiscard]] bool parse_shards(std::string_view text, int& shards, int& shard_index) noexcept;

/// Parse a --budget value: "P%" (percent overhead over the unprotected
/// baseline; fractional allowed, 0 <= P <= 100) or a plain non-negative
/// integer (absolute extra cycles).  A percent sets `pct` and zeroes
/// `cycles`; an absolute count sets `cycles` and sets `pct` to -1.
/// Returns false on malformed text, a negative value, or percent > 100;
/// outputs are untouched on failure.
[[nodiscard]] bool parse_budget(std::string_view text, double& pct,
                                std::uint64_t& cycles) noexcept;

/// Parse the shared campaign flags, validating ranges: negative --workers,
/// --datasets < 1, --sanitize-cap < 1 or a malformed --shards record an
/// error on `args` and fall back to the default.
[[nodiscard]] CampaignFlags parse_campaign_flags(const CliArgs& args,
                                                 int default_datasets = 1);

}  // namespace hauberk::common
