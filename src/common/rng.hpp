// Deterministic pseudo-random number generation for the whole project.
//
// Every experiment in this repository (fault-injection campaigns, dataset
// generation, bit-mask selection) must be reproducible from a single 64-bit
// seed, so we use explicit, self-contained generators instead of <random>'s
// implementation-defined engines.  SplitMix64 is used for seeding/stream
// splitting and xoshiro256** as the workhorse generator, matching common
// practice in HPC codes where reproducibility across platforms matters.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hauberk::common {

/// SplitMix64: tiny generator used to expand one seed into many.
/// Passes BigCrush when used as a stream; primarily used here to seed
/// xoshiro and to derive independent per-experiment substreams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derive an independent substream; `stream` is any label (e.g. an
  /// experiment index).  Two Rngs forked with different labels from the same
  /// parent seed produce statistically independent sequences.
  [[nodiscard]] static Rng fork(std::uint64_t seed, std::uint64_t stream) noexcept {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    return Rng(sm.next());
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() noexcept { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float next_float() noexcept { return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (no cached second value; simplicity over speed).
  double normal() noexcept;

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hauberk::common
