// Persistent worker-thread pool.
//
// Hot paths in this repository dispatch small parallel jobs thousands of
// times: every Device::launch fans blocks out over workers, and a SWIFI
// campaign runs thousands of independent trials.  Spawning and joining
// std::threads per job costs more than the job itself at these sizes, so
// the pool keeps its threads alive and hands them one job at a time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hauberk::common {

/// A fixed set of long-lived threads executing "call fn(slot) for every
/// slot in [0, n)" jobs.  run() blocks the caller until all slots return;
/// concurrent run() calls from different threads serialize.  The pool makes
/// no scheduling promises beyond "slot i runs exactly once per job" — any
/// determinism must come from the job itself (which is how Device::launch
/// and the campaign executor use it: results are keyed by block/trial
/// index, never by worker identity).
class WorkerPool {
 public:
  /// Creates `threads` workers (clamped to at least 1).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Run fn(slot) for every slot in [0, min(n, size())) on the pool and wait
  /// for completion.  The first exception thrown by any slot is rethrown
  /// here after all slots finish.
  void run(unsigned n, const std::function<void(unsigned)>& fn);

  /// Hardware concurrency, at least 1 (hardware_concurrency may report 0).
  [[nodiscard]] static unsigned default_workers() noexcept;

 private:
  void thread_main(unsigned slot);

  std::vector<std::thread> threads_;
  std::mutex run_mu_;  ///< serializes run() callers

  std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per job; workers wait on it
  unsigned active_slots_ = 0;
  unsigned remaining_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace hauberk::common
