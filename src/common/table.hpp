// Plain-text table printer used by the benchmark harnesses to emit the same
// rows/series the paper's tables and figures report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hauberk::common {

/// Column-aligned ASCII table.  Rows are added as vectors of pre-formatted
/// cells; print() right-pads each column to its widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string pct_cell(double v, int precision = 1);

  void print(std::FILE* out = stdout) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hauberk::common
