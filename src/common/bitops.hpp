// Bit-level utilities used by the SWIFI fault injector and the Fig. 15
// bit-flip magnitude study: generating error masks with a prescribed number
// of set bits ("number of error bits" in the paper), and flipping bits of
// 32-bit architecture state regardless of its interpretation (F32/I32/PTR).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace hauberk::common {

/// Generate a random 32-bit mask with exactly `bits` set bits (1 <= bits <= 32).
/// This emulates a single- or multi-bit error pattern in one word of
/// architecture state, as in Section VII(ii) / Fig. 14 of the paper.
std::uint32_t random_mask(Rng& rng, int bits);

/// Apply an error mask to a raw 32-bit word (the SWIFI primitive: the paper's
/// FI library XORs the mask into the target state via the ALU).
constexpr std::uint32_t apply_mask(std::uint32_t word, std::uint32_t mask) noexcept {
  return word ^ mask;
}

/// Reinterpret helpers between float and its bit pattern.
constexpr std::uint32_t f32_bits(float v) noexcept { return std::bit_cast<std::uint32_t>(v); }
constexpr float bits_f32(std::uint32_t b) noexcept { return std::bit_cast<float>(b); }

/// Flip `bits` random bits of a float value (Fig. 15 study).
inline float flip_float_bits(Rng& rng, float v, int bits) {
  return bits_f32(apply_mask(f32_bits(v), random_mask(rng, bits)));
}

/// Order-of-magnitude bucket index of |x| for power-of-ten histograms:
/// returns floor(log10(|x|)) clamped to [lo, hi]; `zero_bucket` semantics are
/// handled by callers (|x| == 0 maps to lo).
int magnitude_decade(double x, int lo, int hi) noexcept;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range, resumable:
/// pass the previous return value as `seed` to extend a running checksum.
/// Guards the on-disk campaign checkpoint payloads and result-log streams —
/// unlike the FNV digests used for in-memory identity, CRC detects the
/// torn/truncated/bit-flipped file states a killed campaign run can leave.
std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed = 0) noexcept;

}  // namespace hauberk::common
