#include "common/bitops.hpp"

#include <cmath>

namespace hauberk::common {

std::uint32_t random_mask(Rng& rng, int bits) {
  if (bits <= 0) return 0;
  if (bits >= 32) return 0xffffffffu;
  // Floyd's algorithm for sampling `bits` distinct positions out of 32.
  std::uint32_t mask = 0;
  for (int j = 32 - bits; j < 32; ++j) {
    const int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    const std::uint32_t bit = 1u << t;
    mask |= (mask & bit) ? (1u << j) : bit;
  }
  return mask;
}

int magnitude_decade(double x, int lo, int hi) noexcept {
  const double a = std::fabs(x);
  if (a == 0.0 || !std::isfinite(a)) {
    // Zero maps to the lowest decade; infinities/NaNs to the highest (they
    // represent "enormous corruption" in the Fig. 15 classification).
    return (a == 0.0) ? lo : hi;
  }
  const int d = static_cast<int>(std::floor(std::log10(a)));
  if (d < lo) return lo;
  if (d > hi) return hi;
  return d;
}

}  // namespace hauberk::common
