#include "common/bitops.hpp"

#include <array>
#include <cmath>

namespace hauberk::common {

std::uint32_t random_mask(Rng& rng, int bits) {
  if (bits <= 0) return 0;
  if (bits >= 32) return 0xffffffffu;
  // Floyd's algorithm for sampling `bits` distinct positions out of 32.
  std::uint32_t mask = 0;
  for (int j = 32 - bits; j < 32; ++j) {
    const int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    const std::uint32_t bit = 1u << t;
    mask |= (mask & bit) ? (1u << j) : bit;
  }
  return mask;
}

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) noexcept {
  // Table generated on first use from the reflected IEEE polynomial; the
  // byte-at-a-time loop is plenty for checkpoint/result-log sizes.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

int magnitude_decade(double x, int lo, int hi) noexcept {
  const double a = std::fabs(x);
  if (a == 0.0 || !std::isfinite(a)) {
    // Zero maps to the lowest decade; infinities/NaNs to the highest (they
    // represent "enormous corruption" in the Fig. 15 classification).
    return (a == 0.0) ? lo : hi;
  }
  const int d = static_cast<int>(std::floor(std::log10(a)));
  if (d < lo) return lo;
  if (d > hi) return hi;
  return d;
}

}  // namespace hauberk::common
