#include "common/table.hpp"

#include <algorithm>

namespace hauberk::common {

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct_cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[i]), c.c_str(),
                   i + 1 < widths.size() ? "  " : "");
    }
    std::fputc('\n', out);
  };

  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  std::string rule(total > 2 ? total - 2 : total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& r : rows_) print_row(r);
}

}  // namespace hauberk::common
