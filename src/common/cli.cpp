#include "common/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace hauberk::common {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view a(argv[i]);
    if (!a.starts_with("--")) continue;
    a.remove_prefix(2);
    const auto eq = a.find('=');
    if (eq != std::string_view::npos) {
      kv_[std::string(a.substr(0, eq))] = std::string(a.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      kv_[std::string(a)] = argv[i + 1];
      ++i;
    } else {
      kv_[std::string(a)] = "1";
    }
  }
}

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace hauberk::common
