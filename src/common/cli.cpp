#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace hauberk::common {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view a(argv[i]);
    if (!a.starts_with("--")) continue;
    a.remove_prefix(2);
    const auto eq = a.find('=');
    if (eq != std::string_view::npos) {
      kv_[std::string(a.substr(0, eq))] = std::string(a.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      kv_[std::string(a)] = argv[i + 1];
      ++i;
    } else {
      kv_[std::string(a)] = "1";
    }
  }
}

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

namespace {

/// Strict full-string numeric parse; *end must reach the terminator.
template <typename T, typename Fn>
bool parse_full(const std::string& text, Fn fn, T& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = static_cast<T>(fn(text.c_str(), &end));
  return errno == 0 && end != nullptr && *end == '\0';
}

}  // namespace

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  std::int64_t v;
  if (!parse_full(it->second, [](const char* s, char** e) { return std::strtoll(s, e, 0); },
                  v)) {
    errors_.push_back("--" + name + ": invalid integer '" + it->second + "'");
    return def;
  }
  return v;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  std::uint64_t v;
  if (!parse_full(it->second, [](const char* s, char** e) { return std::strtoull(s, e, 0); },
                  v)) {
    errors_.push_back("--" + name + ": invalid integer '" + it->second + "'");
    return def;
  }
  return v;
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  double v;
  if (!parse_full(it->second, [](const char* s, char** e) { return std::strtod(s, e); }, v)) {
    errors_.push_back("--" + name + ": invalid number '" + it->second + "'");
    return def;
  }
  return v;
}

std::vector<std::string> CliArgs::unknown_flags(
    std::initializer_list<std::string_view> known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : kv_) {
    bool found = false;
    for (std::string_view k : known)
      if (name == k) {
        found = true;
        break;
      }
    if (!found) out.push_back(name);
  }
  return out;
}

const char* engine_kind_name(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::Fast: return "fast";
    case EngineKind::Reference: return "reference";
    case EngineKind::Sanitizer: return "sanitizer";
    case EngineKind::Threaded: return "threaded";
  }
  return "?";
}

bool parse_engine_kind(std::string_view text, EngineKind& out) noexcept {
  for (const auto k : {EngineKind::Fast, EngineKind::Reference, EngineKind::Sanitizer,
                       EngineKind::Threaded}) {
    if (text == engine_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

const char* protection_kind_name(ProtectionKind k) noexcept {
  switch (k) {
    case ProtectionKind::None: return "none";
    case ProtectionKind::Hamming: return "hamming";
    case ProtectionKind::Hsiao: return "hsiao";
  }
  return "?";
}

bool parse_protection_kind(std::string_view text, ProtectionKind& out) noexcept {
  for (const auto k :
       {ProtectionKind::None, ProtectionKind::Hamming, ProtectionKind::Hsiao}) {
    if (text == protection_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_shards(std::string_view text, int& shards, int& shard_index) noexcept {
  const auto parse_int = [](std::string_view s, int& out) {
    if (s.empty() || s.size() > 9) return false;
    int v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    out = v;
    return true;
  };
  const auto slash = text.find('/');
  int k = 0, i = 0;
  if (slash == std::string_view::npos) {
    if (!parse_int(text, k)) return false;
  } else {
    if (!parse_int(text.substr(0, slash), k) || !parse_int(text.substr(slash + 1), i))
      return false;
  }
  if (k < 1 || i >= k) return false;
  shards = k;
  shard_index = i;
  return true;
}

bool parse_budget(std::string_view text, double& pct, std::uint64_t& cycles) noexcept {
  if (text.empty()) return false;
  if (text.back() == '%') {
    const std::string num(text.substr(0, text.size() - 1));
    if (num.empty() || num.front() == '-' || num.front() == '+') return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') return false;
    if (!(v >= 0.0) || v > 100.0) return false;
    pct = v;
    cycles = 0;
    return true;
  }
  if (text.front() == '-' || text.front() == '+') return false;
  const std::string num(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(num.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  pct = -1.0;
  cycles = v;
  return true;
}

CampaignFlags parse_campaign_flags(const CliArgs& args, int default_datasets) {
  CampaignFlags f;
  const auto workers = args.get_int("workers", 0);
  if (workers < 0) {
    args.note_error("--workers: must be >= 0 (got " + std::to_string(workers) + ")");
  } else {
    f.workers = static_cast<int>(workers);
  }
  f.sanitize = args.has("sanitize");
  const auto datasets = args.get_int("datasets", default_datasets);
  if (datasets < 1) {
    args.note_error("--datasets: must be >= 1 (got " + std::to_string(datasets) + ")");
    f.datasets = default_datasets;
  } else {
    f.datasets = static_cast<int>(datasets);
  }
  const auto cap = args.get_int("sanitize-cap", f.sanitize_cap);
  if (cap < 1) {
    args.note_error("--sanitize-cap: must be >= 1 (got " + std::to_string(cap) + ")");
  } else {
    f.sanitize_cap = static_cast<int>(cap);
  }
  if (args.has("engine")) {
    const std::string text = args.get("engine");
    if (!parse_engine_kind(text, f.engine))
      args.note_error("--engine: unknown engine '" + text +
                      "' (expected reference|fast|sanitizer|threaded)");
  }
  if (args.has("protection")) {
    const std::string text = args.get("protection");
    if (!parse_protection_kind(text, f.protection))
      args.note_error("--protection: unknown scheme '" + text +
                      "' (expected none|hamming|hsiao)");
  }
  if (args.has("shards")) {
    const std::string text = args.get("shards");
    if (!parse_shards(text, f.shards, f.shard_index))
      args.note_error("--shards: expected K or K/I with K >= 1 and 0 <= I < K (got '" +
                      text + "')");
  }
  if (args.has("budget")) {
    const std::string text = args.get("budget");
    if (!parse_budget(text, f.budget_pct, f.budget_cycles))
      args.note_error("--budget: expected P% (0 <= P <= 100) or a non-negative "
                      "cycle count (got '" + text + "')");
  }
  f.plan = args.get("plan");
  f.prune = args.get("prune");
  f.checkpoint_every = args.get_u64("checkpoint-every", 0);
  f.checkpoint = args.get("checkpoint");
  f.resume = args.get("resume");
  f.resultlog = args.get("resultlog");
  if (f.checkpoint.empty()) f.checkpoint = f.resume;
  if (f.checkpoint_every > 0 && f.checkpoint.empty())
    args.note_error("--checkpoint-every: requires --checkpoint=FILE (or --resume=FILE)");
  return f;
}

}  // namespace hauberk::common
