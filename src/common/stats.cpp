#include "common/stats.hpp"

#include <cstdio>

namespace hauberk::common {

std::string DecadeHistogram::bucket_label(std::size_t i) const {
  const int span = hi_ - lo_ + 1;
  char buf[32];
  if (i == static_cast<std::size_t>(span)) return "0";
  if (i < static_cast<std::size_t>(span)) {
    const int d = hi_ - static_cast<int>(i);
    std::snprintf(buf, sizeof(buf), "-1.0E%+03d", d);
  } else {
    const int d = lo_ + static_cast<int>(i) - span - 1;
    std::snprintf(buf, sizeof(buf), "1.0E%+03d", d);
  }
  return buf;
}

}  // namespace hauberk::common
