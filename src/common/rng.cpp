#include "common/rng.hpp"

#include <cmath>

namespace hauberk::common {

double Rng::normal() noexcept {
  // Box-Muller transform.  Draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace hauberk::common
