// Small statistics helpers: running mean/stddev, min/max, and the
// power-of-ten ("decade") histogram used to reproduce the value-range
// distributions of Fig. 10 and the corruption-magnitude breakdown of Fig. 15.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hauberk::common {

/// Welford running statistics accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over signed powers of ten, mirroring the x-axes of Fig. 10:
/// buckets ... -1e2, -1e1, -1e0, (zero band), 1e0, 1e1, 1e2 ... where a value
/// v falls in the decade bucket of sign(v) * 10^floor(log10(|v|)).  Values
/// with |v| < zero_eps fall into the central zero bucket.
class DecadeHistogram {
 public:
  /// Decades run from 10^lo_decade to 10^hi_decade on each side of zero.
  DecadeHistogram(int lo_decade, int hi_decade, double zero_eps = 0.0)
      : lo_(lo_decade), hi_(hi_decade), zero_eps_(zero_eps),
        counts_(static_cast<std::size_t>(2 * (hi_decade - lo_decade + 1) + 1), 0) {}

  void add(double v) noexcept {
    ++total_;
    ++counts_[bucket_index(v)];
  }

  /// Index layout: [neg hi .. neg lo][zero][pos lo .. pos hi].
  [[nodiscard]] std::size_t bucket_index(double v) const noexcept {
    const int span = hi_ - lo_ + 1;
    const double a = std::fabs(v);
    if (a <= zero_eps_ || a == 0.0) return static_cast<std::size_t>(span);  // zero bucket
    int d;
    if (!std::isfinite(a)) {
      d = hi_;
    } else {
      d = static_cast<int>(std::floor(std::log10(a)));
      d = std::clamp(d, lo_, hi_);
    }
    if (v < 0.0) return static_cast<std::size_t>(hi_ - d);           // negatives, descending
    return static_cast<std::size_t>(span + 1 + (d - lo_));           // positives, ascending
  }

  [[nodiscard]] std::size_t num_buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }

  /// Human-readable bucket label, e.g. "-1.0E+03", "0", "1.0E-05".
  [[nodiscard]] std::string bucket_label(std::size_t i) const;

  /// Fraction of mass in the single most populated bucket (the paper's
  /// ">50% of values in one power of ten" observation for Fig. 10).
  [[nodiscard]] double peak_probability() const noexcept {
    std::uint64_t best = 0;
    for (auto c : counts_) best = std::max(best, c);
    return total_ == 0 ? 0.0 : static_cast<double>(best) / static_cast<double>(total_);
  }

 private:
  int lo_, hi_;
  double zero_eps_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Constant-memory histogram over unsigned 64-bit values with power-of-two
/// buckets: bucket 0 holds the value 0 and bucket b >= 1 holds
/// [2^(b-1), 2^b).  The campaign service streams millions of per-trial
/// observations (FI site ids, occurrence indices) through these without ever
/// holding per-trial state, and checkpoints/merges them as plain count
/// arrays: addition is commutative, so shard-merged and resumed histograms
/// are bitwise identical to a single uninterrupted pass.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  ///< value 0 plus one per bit width

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));  // 0 -> 0, else 1 + floor(log2 v)
  }

  constexpr void add(std::uint64_t v) noexcept {
    ++counts_[bucket_of(v)];
    ++total_;
  }

  /// Weighted accumulation: count `v` as `n` identical samples (campaign
  /// pruning populates class representatives with their class size).
  constexpr void add(std::uint64_t v, std::uint64_t n) noexcept {
    counts_[bucket_of(v)] += n;
    total_ += n;
  }

  void merge(const Log2Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t count(std::size_t bucket) const noexcept {
    return counts_[bucket];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Checkpoint support: the bucket array is the entire state (total is
  /// derived), so serialization round-trips through these two.
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& raw_counts() const noexcept {
    return counts_;
  }
  void restore(const std::array<std::uint64_t, kBuckets>& counts) noexcept {
    counts_ = counts;
    total_ = 0;
    for (const auto c : counts_) total_ += c;
  }

  /// Smallest prefix of buckets covering every nonzero count (print helper).
  [[nodiscard]] std::size_t used_buckets() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kBuckets; ++i)
      if (counts_[i] != 0) n = i + 1;
    return n;
  }

  friend bool operator==(const Log2Histogram& a, const Log2Histogram& b) noexcept {
    if (a.total_ != b.total_) return false;
    for (std::size_t i = 0; i < kBuckets; ++i)
      if (a.counts_[i] != b.counts_[i]) return false;
    return true;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Ratio helper: safe percentage.
constexpr double pct(std::uint64_t part, std::uint64_t whole) noexcept {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace hauberk::common
