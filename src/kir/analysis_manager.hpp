// Cached analyses over one kernel AST.
//
// The Hauberk pass pipeline (src/hauberk/passes) runs several discrete
// transformation passes over one kernel, and most of them consume the same
// static analyses: the whole-kernel Analysis (virtual-variable facts and
// loop-nest structure), the per-loop Fig. 9 dataflow graph, and the per-loop
// protection plan.  The AnalysisManager computes each analysis at most once
// per kernel state and hands out const references; a pass that mutates the
// AST invalidates the cache, and the next consumer recomputes lazily.  This
// replaces the monolithic translator's recompute-per-call pattern (each
// helper constructed its own Analysis / LoopDataflow on demand).
//
// Not thread-safe: one AnalysisManager serves one pass pipeline run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "kir/analysis.hpp"
#include "kir/defuse.hpp"
#include "kir/interval.hpp"

namespace hauberk::kir {

class AnalysisManager {
 public:
  /// Binds to `kernel` without copying; the kernel must outlive the manager
  /// and its address must be stable (the pass context owns it by value).
  explicit AnalysisManager(const Kernel& kernel) : kernel_(&kernel) {}

  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  /// Whole-kernel facts + loop nest; computed on first use.
  [[nodiscard]] const Analysis& analysis();

  /// Def-use chains, bit-liveness, divergence, and cone signatures; the
  /// fault-site pruner (hauberk::prune) is the main consumer.
  [[nodiscard]] const DefUseAnalysis& def_use();

  /// Fig. 9 dataflow graph of one loop body.
  [[nodiscard]] const LoopDataflow& loop_dataflow(std::uint32_t loop_id);

  /// Protection plan of one loop under a Maxvar budget; cached per
  /// (loop, maxvar) and built over the cached dataflow graph.
  [[nodiscard]] const LoopProtectionPlan& loop_plan(std::uint32_t loop_id, int maxvar);

  /// Interval abstract interpretation under a launch environment; cached per
  /// env digest (the lint analyzers query the same env repeatedly).
  [[nodiscard]] const IntervalAnalysis& intervals(const IntervalEnv& env);

  /// Cache slot for analyses registered by higher layers (kir cannot name
  /// their types): returns the cached value under `key`, or runs `compute`
  /// once and caches the result.  Shares the stats counters and is flushed
  /// by invalidate() like the built-in analyses.  The cost-model layer in
  /// src/hauberk registers its per-kernel cycle summaries here.
  [[nodiscard]] std::shared_ptr<void> external(
      std::uint64_t key, const std::function<std::shared_ptr<void>()>& compute);

  /// Drop every cached analysis.  Called by the pass manager after any pass
  /// reports that it mutated the AST.
  void invalidate() noexcept;

  struct Stats {
    std::uint64_t hits = 0;           ///< analysis requests served from cache
    std::uint64_t misses = 0;         ///< analysis requests that had to compute
    std::uint64_t invalidations = 0;  ///< cache flushes after AST mutation
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  const Kernel* kernel_;
  std::optional<Analysis> analysis_;
  std::optional<DefUseAnalysis> defuse_;
  std::map<std::uint32_t, LoopDataflow> dataflow_;
  std::map<std::pair<std::uint32_t, int>, LoopProtectionPlan> plans_;
  std::map<std::uint64_t, IntervalAnalysis> intervals_;
  std::map<std::uint64_t, std::shared_ptr<void>> external_;
  Stats stats_;
};

}  // namespace hauberk::kir
