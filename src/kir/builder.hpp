// Fluent builder DSL for authoring kernels in the kernel IR.
//
// Workloads write kernels in a style close to CUDA C++:
//
//   KernelBuilder kb("cp_kernel");
//   auto atoms = kb.param_ptr("atominfo");
//   auto n     = kb.param_i32("numatoms");
//   auto energy = kb.let("energy", kb.f32c(0.0f));
//   kb.for_loop("atomid", kb.i32c(0), n, [&](ExprH atomid) {
//     auto dx = kb.let("dx", kb.load_f32(atoms + atomid * kb.i32c(4)) - coorx);
//     ...
//     kb.assign(energy, energy + q * rsqrt_(r2));
//   });
//
// Implicit numeric promotion: when an I32 and an F32 meet in an arithmetic
// operator, the I32 side is cast to F32 (as C would).  Pointer arithmetic is
// word-granular: ptr + i32 offsets by 32-bit words.
#pragma once

#include <cassert>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "kir/ast.hpp"

namespace hauberk::kir {

/// Lightweight handle around an immutable expression node.
class ExprH {
 public:
  ExprH() = default;
  explicit ExprH(ExprPtr e) : e_(std::move(e)) {}

  [[nodiscard]] const ExprPtr& node() const { return e_; }
  [[nodiscard]] DType type() const { return e_->type; }
  [[nodiscard]] bool valid() const { return e_ != nullptr; }

  /// VarId if this is a variable reference; kInvalidVar otherwise.
  [[nodiscard]] VarId var_id() const {
    return e_ && e_->kind == ExprKind::VarRef ? e_->var : kInvalidVar;
  }

 private:
  ExprPtr e_;
};

// --- literals ---
ExprH f32c(float v);
ExprH i32c(std::int32_t v);

// --- operator sugar (promotion rules in builder.cpp) ---
ExprH operator+(ExprH a, ExprH b);
ExprH operator-(ExprH a, ExprH b);
ExprH operator*(ExprH a, ExprH b);
ExprH operator/(ExprH a, ExprH b);
ExprH operator%(ExprH a, ExprH b);
ExprH operator-(ExprH a);
ExprH operator<(ExprH a, ExprH b);
ExprH operator<=(ExprH a, ExprH b);
ExprH operator>(ExprH a, ExprH b);
ExprH operator>=(ExprH a, ExprH b);
ExprH operator==(ExprH a, ExprH b);
ExprH operator!=(ExprH a, ExprH b);
ExprH operator&&(ExprH a, ExprH b);
ExprH operator||(ExprH a, ExprH b);
ExprH operator&(ExprH a, ExprH b);
ExprH operator|(ExprH a, ExprH b);
ExprH operator^(ExprH a, ExprH b);
ExprH operator<<(ExprH a, ExprH b);
ExprH operator>>(ExprH a, ExprH b);

// --- intrinsics ---
ExprH sqrt_(ExprH a);
ExprH rsqrt_(ExprH a);
ExprH abs_(ExprH a);
ExprH exp_(ExprH a);
ExprH log_(ExprH a);
ExprH sin_(ExprH a);
ExprH cos_(ExprH a);
ExprH floor_(ExprH a);
ExprH min_(ExprH a, ExprH b);
ExprH max_(ExprH a, ExprH b);
ExprH to_f32(ExprH a);
ExprH to_i32(ExprH a);
ExprH select_(ExprH cond, ExprH then_v, ExprH else_v);

/// Builds one kernel.  Statement-emitting member functions append to the
/// innermost open scope (loop/if bodies open nested scopes).
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name, std::uint32_t shared_mem_words = 0);

  // Parameters (declaration order defines the launch-argument order).
  ExprH param_f32(const std::string& name);
  ExprH param_i32(const std::string& name);
  ExprH param_ptr(const std::string& name);

  // Builtins.
  ExprH tid_x() const;
  ExprH tid_y() const;
  ExprH bid_x() const;
  ExprH bid_y() const;
  ExprH bdim_x() const;
  ExprH bdim_y() const;
  ExprH gdim_x() const;
  ExprH gdim_y() const;
  ExprH thread_linear() const;

  // Memory access.
  ExprH load_f32(ExprH addr) const;
  ExprH load_i32(ExprH addr) const;
  ExprH load_ptr(ExprH addr) const;
  ExprH shload_f32(ExprH index) const;
  ExprH shload_i32(ExprH index) const;
  void store(ExprH addr, ExprH value);
  void shstore(ExprH index, ExprH value);
  void atomic_add(ExprH addr, ExprH value);

  // Variables.
  ExprH let(const std::string& name, ExprH value);
  void assign(ExprH var_ref, ExprH value);

  // Control flow.  for_loop iterates var from `lo` (inclusive) to `hi`
  // (exclusive) with step 1 unless given.
  void for_loop(const std::string& iter_name, ExprH lo, ExprH hi,
                const std::function<void(ExprH)>& body);
  void for_loop_step(const std::string& iter_name, ExprH lo, ExprH hi, ExprH step,
                     const std::function<void(ExprH)>& body);
  void while_loop(const std::function<ExprH()>& cond, const std::function<void()>& body);
  void if_then(ExprH cond, const std::function<void()>& then_body);
  void if_then_else(ExprH cond, const std::function<void()>& then_body,
                    const std::function<void()>& else_body);
  void barrier();

  /// Declare a variable without emitting a Let (used for loop iterators and
  /// by instrumentation passes).
  VarId declare_var(const std::string& name, DType t);

  [[nodiscard]] Kernel build();

 private:
  StmtList* scope() { return scopes_.back(); }
  void push_scope(StmtList* s) { scopes_.push_back(s); }
  void pop_scope() { scopes_.pop_back(); }

  Kernel kernel_;
  std::vector<StmtList*> scopes_;
  bool built_ = false;
};

}  // namespace hauberk::kir
