#include "kir/builder.hpp"

#include <stdexcept>

namespace hauberk::kir {

namespace {

/// Promote I32 to F32 when mixed with F32 in arithmetic, as C does.
void promote(ExprPtr& a, ExprPtr& b) {
  if (a->type == DType::F32 && b->type == DType::I32)
    b = Expr::make_unary(UnOp::CastF32, b);
  else if (a->type == DType::I32 && b->type == DType::F32)
    a = Expr::make_unary(UnOp::CastF32, a);
}

ExprH bin(BinOp op, ExprH a, ExprH b) {
  ExprPtr x = a.node(), y = b.node();
  // No promotion for pointer arithmetic or bitwise/shift ops.
  switch (op) {
    case BinOp::BitAnd: case BinOp::BitOr: case BinOp::BitXor:
    case BinOp::Shl: case BinOp::Shr:
      break;
    default:
      if (x->type != DType::PTR && y->type != DType::PTR) promote(x, y);
  }
  return ExprH(Expr::make_binary(op, std::move(x), std::move(y)));
}

}  // namespace

ExprH f32c(float v) { return ExprH(Expr::make_const(Value::f32(v))); }
ExprH i32c(std::int32_t v) { return ExprH(Expr::make_const(Value::i32(v))); }

ExprH operator+(ExprH a, ExprH b) { return bin(BinOp::Add, a, b); }
ExprH operator-(ExprH a, ExprH b) { return bin(BinOp::Sub, a, b); }
ExprH operator*(ExprH a, ExprH b) { return bin(BinOp::Mul, a, b); }
ExprH operator/(ExprH a, ExprH b) { return bin(BinOp::Div, a, b); }
ExprH operator%(ExprH a, ExprH b) { return bin(BinOp::Mod, a, b); }
ExprH operator-(ExprH a) { return ExprH(Expr::make_unary(UnOp::Neg, a.node())); }
ExprH operator<(ExprH a, ExprH b) { return bin(BinOp::Lt, a, b); }
ExprH operator<=(ExprH a, ExprH b) { return bin(BinOp::Le, a, b); }
ExprH operator>(ExprH a, ExprH b) { return bin(BinOp::Gt, a, b); }
ExprH operator>=(ExprH a, ExprH b) { return bin(BinOp::Ge, a, b); }
ExprH operator==(ExprH a, ExprH b) { return bin(BinOp::Eq, a, b); }
ExprH operator!=(ExprH a, ExprH b) { return bin(BinOp::Ne, a, b); }
ExprH operator&&(ExprH a, ExprH b) { return bin(BinOp::LogicalAnd, a, b); }
ExprH operator||(ExprH a, ExprH b) { return bin(BinOp::LogicalOr, a, b); }
ExprH operator&(ExprH a, ExprH b) { return bin(BinOp::BitAnd, a, b); }
ExprH operator|(ExprH a, ExprH b) { return bin(BinOp::BitOr, a, b); }
ExprH operator^(ExprH a, ExprH b) { return bin(BinOp::BitXor, a, b); }
ExprH operator<<(ExprH a, ExprH b) { return bin(BinOp::Shl, a, b); }
ExprH operator>>(ExprH a, ExprH b) { return bin(BinOp::Shr, a, b); }

ExprH sqrt_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Sqrt, a.node())); }
ExprH rsqrt_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Rsqrt, a.node())); }
ExprH abs_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Abs, a.node())); }
ExprH exp_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Exp, a.node())); }
ExprH log_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Log, a.node())); }
ExprH sin_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Sin, a.node())); }
ExprH cos_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Cos, a.node())); }
ExprH floor_(ExprH a) { return ExprH(Expr::make_unary(UnOp::Floor, a.node())); }
ExprH min_(ExprH a, ExprH b) { return bin(BinOp::Min, a, b); }
ExprH max_(ExprH a, ExprH b) { return bin(BinOp::Max, a, b); }
ExprH to_f32(ExprH a) { return ExprH(Expr::make_unary(UnOp::CastF32, a.node())); }
ExprH to_i32(ExprH a) { return ExprH(Expr::make_unary(UnOp::CastI32, a.node())); }
ExprH select_(ExprH cond, ExprH then_v, ExprH else_v) {
  ExprPtr t = then_v.node(), e = else_v.node();
  promote(t, e);
  return ExprH(Expr::make_select(cond.node(), std::move(t), std::move(e)));
}

KernelBuilder::KernelBuilder(std::string name, std::uint32_t shared_mem_words) {
  kernel_.name = std::move(name);
  kernel_.shared_mem_words = shared_mem_words;
  scopes_.push_back(&kernel_.body);
}

ExprH KernelBuilder::param_f32(const std::string& name) {
  kernel_.params.push_back({name, DType::F32});
  return ExprH(Expr::make_param(static_cast<std::uint32_t>(kernel_.params.size() - 1), DType::F32));
}

ExprH KernelBuilder::param_i32(const std::string& name) {
  kernel_.params.push_back({name, DType::I32});
  return ExprH(Expr::make_param(static_cast<std::uint32_t>(kernel_.params.size() - 1), DType::I32));
}

ExprH KernelBuilder::param_ptr(const std::string& name) {
  kernel_.params.push_back({name, DType::PTR});
  return ExprH(Expr::make_param(static_cast<std::uint32_t>(kernel_.params.size() - 1), DType::PTR));
}

ExprH KernelBuilder::tid_x() const { return ExprH(Expr::make_builtin(BuiltinVal::ThreadIdxX)); }
ExprH KernelBuilder::tid_y() const { return ExprH(Expr::make_builtin(BuiltinVal::ThreadIdxY)); }
ExprH KernelBuilder::bid_x() const { return ExprH(Expr::make_builtin(BuiltinVal::BlockIdxX)); }
ExprH KernelBuilder::bid_y() const { return ExprH(Expr::make_builtin(BuiltinVal::BlockIdxY)); }
ExprH KernelBuilder::bdim_x() const { return ExprH(Expr::make_builtin(BuiltinVal::BlockDimX)); }
ExprH KernelBuilder::bdim_y() const { return ExprH(Expr::make_builtin(BuiltinVal::BlockDimY)); }
ExprH KernelBuilder::gdim_x() const { return ExprH(Expr::make_builtin(BuiltinVal::GridDimX)); }
ExprH KernelBuilder::gdim_y() const { return ExprH(Expr::make_builtin(BuiltinVal::GridDimY)); }
ExprH KernelBuilder::thread_linear() const {
  return ExprH(Expr::make_builtin(BuiltinVal::ThreadLinear));
}

ExprH KernelBuilder::load_f32(ExprH addr) const {
  return ExprH(Expr::make_load_global(addr.node(), DType::F32));
}
ExprH KernelBuilder::load_i32(ExprH addr) const {
  return ExprH(Expr::make_load_global(addr.node(), DType::I32));
}
ExprH KernelBuilder::load_ptr(ExprH addr) const {
  return ExprH(Expr::make_load_global(addr.node(), DType::PTR));
}
ExprH KernelBuilder::shload_f32(ExprH index) const {
  return ExprH(Expr::make_load_shared(index.node(), DType::F32));
}
ExprH KernelBuilder::shload_i32(ExprH index) const {
  return ExprH(Expr::make_load_shared(index.node(), DType::I32));
}

void KernelBuilder::store(ExprH addr, ExprH value) {
  scope()->push_back(Stmt::store_global(addr.node(), value.node()));
}
void KernelBuilder::shstore(ExprH index, ExprH value) {
  scope()->push_back(Stmt::store_shared(index.node(), value.node()));
}
void KernelBuilder::atomic_add(ExprH addr, ExprH value) {
  scope()->push_back(Stmt::atomic_add(addr.node(), value.node()));
}

VarId KernelBuilder::declare_var(const std::string& name, DType t) {
  kernel_.vars.push_back({name, t});
  return static_cast<VarId>(kernel_.vars.size() - 1);
}

ExprH KernelBuilder::let(const std::string& name, ExprH value) {
  const VarId v = declare_var(name, value.type());
  scope()->push_back(Stmt::let(v, value.node()));
  return ExprH(Expr::make_var(v, value.type()));
}

void KernelBuilder::assign(ExprH var_ref, ExprH value) {
  const VarId v = var_ref.var_id();
  if (v == kInvalidVar) throw std::logic_error("assign target must be a variable reference");
  ExprPtr rhs = value.node();
  if (kernel_.vars[v].type == DType::F32 && rhs->type == DType::I32)
    rhs = Expr::make_unary(UnOp::CastF32, rhs);
  scope()->push_back(Stmt::assign(v, std::move(rhs)));
}

void KernelBuilder::for_loop(const std::string& iter_name, ExprH lo, ExprH hi,
                             const std::function<void(ExprH)>& body) {
  for_loop_step(iter_name, lo, hi, i32c(1), body);
}

void KernelBuilder::for_loop_step(const std::string& iter_name, ExprH lo, ExprH hi, ExprH step,
                                  const std::function<void(ExprH)>& body) {
  const VarId iter = declare_var(iter_name, DType::I32);
  auto s = Stmt::for_loop(iter, lo.node(), hi.node(), step.node(), {}, kernel_.num_loops++);
  push_scope(&s->body);
  body(ExprH(Expr::make_var(iter, DType::I32)));
  pop_scope();
  scope()->push_back(std::move(s));
}

void KernelBuilder::while_loop(const std::function<ExprH()>& cond,
                               const std::function<void()>& body) {
  auto s = Stmt::while_loop(cond().node(), {}, kernel_.num_loops++);
  push_scope(&s->body);
  body();
  pop_scope();
  scope()->push_back(std::move(s));
}

void KernelBuilder::if_then(ExprH cond, const std::function<void()>& then_body) {
  auto s = Stmt::if_stmt(cond.node(), {});
  push_scope(&s->body);
  then_body();
  pop_scope();
  scope()->push_back(std::move(s));
}

void KernelBuilder::if_then_else(ExprH cond, const std::function<void()>& then_body,
                                 const std::function<void()>& else_body) {
  auto s = Stmt::if_stmt(cond.node(), {}, {});
  push_scope(&s->body);
  then_body();
  pop_scope();
  push_scope(&s->else_body);
  else_body();
  pop_scope();
  scope()->push_back(std::move(s));
}

void KernelBuilder::barrier() { scope()->push_back(Stmt::barrier()); }

Kernel KernelBuilder::build() {
  if (built_) throw std::logic_error("KernelBuilder::build() called twice");
  built_ = true;
  return std::move(kernel_);
}

}  // namespace hauberk::kir
