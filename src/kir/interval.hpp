// Interval abstract interpretation over the kernel IR.
//
// Hauberk's range-check detector learns value ranges by profiling (Section
// IV): an unlucky training set yields ranges tighter than the program can
// actually produce, which surfaces as the Fig. 16 false positives.  This
// analysis computes a *sound* per-variable value interval by abstract
// interpretation — every value any thread of any launch (within the supplied
// IntervalEnv) can compute lies inside the static interval — so the two can
// be cross-checked: a profiled range that escapes the static interval is a
// profiling bug; a static interval much wider than the profiled range
// quantifies false-positive exposure.
//
// The same fixpoint walk records three more fact families consumed by the
// hauberk::lint analyzers (src/hauberk/lint.hpp):
//
//  * per-access address intervals for every global/shared load/store, in
//    bytecode lowering order, so each fact maps positionally onto its
//    LoadG/StoreG/LoadS/StoreS/AtomicAddG/Barrier instruction (pc and
//    sanitizer-site provenance);
//  * an affine-in-thread-index footprint for every shared store (address =
//    base + a·tid.x + b·tid.y + c·tid_linear + Σ coeff·iterator), feeding the
//    static write-overlap check;
//  * a thread-dependence (divergence) taint per variable plus a
//    divergent-control flag per barrier, feeding the barrier-uniformity lint.
//
// Abstract domain: closed real intervals [lo, hi] with lo > hi encoding
// bottom (unreachable / no value seen).  Loop heads join the entry state
// with the loop-back state and apply widening after two stable-signature
// rounds: a bound that is still growing escapes to its type extreme
// (INT32_MIN/MAX for i32, ±inf for f32, [0, 2^32) for ptr) so every loop
// converges in a bounded number of rounds.  For-loop bodies additionally
// refine the iterator to [init.lo, limit.hi - 1], which is what keeps
// guarded-index addressing provably in bounds.
//
// f32 arithmetic is evaluated on interval corners in double precision and
// then inflated outward to the nearest representable float, so single-
// precision rounding in the simulated GPU cannot escape the interval; any
// corner that yields NaN widens to the type top.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "kir/ast.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::kir {

/// A closed interval of attainable values, in double precision.  `lo > hi`
/// is the canonical empty (bottom) interval.
struct ValInterval {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  [[nodiscard]] static constexpr ValInterval empty() noexcept { return {}; }
  [[nodiscard]] static constexpr ValInterval point(double v) noexcept { return {v, v}; }
  [[nodiscard]] static constexpr ValInterval range(double lo, double hi) noexcept {
    return {lo, hi};
  }
  /// Everything the type can represent (the abstract top).
  [[nodiscard]] static ValInterval top_for(DType t) noexcept;

  [[nodiscard]] constexpr bool is_empty() const noexcept { return lo > hi; }
  [[nodiscard]] constexpr bool is_point() const noexcept { return lo == hi; }
  /// Non-empty with both bounds finite.
  [[nodiscard]] bool finite() const noexcept;
  [[nodiscard]] constexpr bool contains(double v) const noexcept { return lo <= v && v <= hi; }
  /// o ⊆ this (an empty o is contained in everything).
  [[nodiscard]] constexpr bool contains(const ValInterval& o) const noexcept {
    return o.is_empty() || (!is_empty() && lo <= o.lo && o.hi <= hi);
  }
  [[nodiscard]] constexpr double width() const noexcept { return is_empty() ? 0.0 : hi - lo; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const ValInterval& a, const ValInterval& b) noexcept {
    // Two empties are equal regardless of representation.
    return (a.is_empty() && b.is_empty()) || (a.lo == b.lo && a.hi == b.hi);
  }
};

[[nodiscard]] ValInterval join(const ValInterval& a, const ValInterval& b) noexcept;
[[nodiscard]] ValInterval meet(const ValInterval& a, const ValInterval& b) noexcept;
/// Widening: any bound of `next` that moved past `prev` escapes to the type
/// extreme, guaranteeing loop-head convergence.
[[nodiscard]] ValInterval widen(const ValInterval& prev, const ValInterval& next,
                                DType t) noexcept;

/// The launch facts the analysis may assume.  Defaults are fully
/// conservative (one unknown launch); a CLI or test narrows them to a
/// concrete launch configuration and argument list.
struct IntervalEnv {
  std::uint32_t block_x = 1, block_y = 1;
  std::uint32_t grid_x = 1, grid_y = 1;
  /// 0 means "use the kernel's own shared_mem_words".
  std::uint32_t shared_words = 0;
  /// Device global-memory size in words (gpusim default: 16 Mi words).
  std::uint32_t global_words = 16u << 20;
  /// Per-parameter value intervals; missing/empty entries mean type-top.
  std::vector<ValInterval> params;

  /// Stable cache key over every field (FNV-1a of the bit patterns).
  [[nodiscard]] std::uint64_t digest() const noexcept;
};

enum class AccessKind : std::uint8_t {
  LoadGlobal,
  StoreGlobal,
  AtomicAddGlobal,
  LoadShared,
  StoreShared,
  Barrier,
};

[[nodiscard]] const char* access_kind_name(AccessKind k) noexcept;

/// One syntactic memory access or barrier, in bytecode lowering order.
struct AccessFact {
  AccessKind kind{};
  const Stmt* stmt = nullptr;  ///< enclosing statement (provenance only)
  int ordinal = -1;            ///< position among all AccessFacts
  int epoch = 0;               ///< barriers that precede this access (pre-order)
  /// Address interval joined over every abstract visit; empty when the
  /// access is statically unreachable.  Meaningless for barriers.
  ValInterval addr{};
  bool in_loop = false;
  bool reached = false;            ///< visited by at least one abstract path
  bool divergent_control = false;  ///< under thread-dependent control flow
};

/// Value interval recorded at a RangeCheck/ProfileValue statement — the
/// static counterpart of the profiled range of that detector.
struct DetectorValueFact {
  int detector = -1;
  std::string label;      ///< protected variable name (Stmt::label)
  DType type = DType::F32;
  ValInterval value{};    ///< joined over every abstract visit
};

/// Affine-in-thread-index footprint of one shared store:
///
///   addr = base + a·tid.x + b·tid.y  (tid_linear folded into a and b)
///        + Σ_iter coeff·iter
///
/// where every iterator contribution is collapsed to a *delta set*: the
/// difference between two dynamic instances of the store is a multiple of
/// `iter_stride` with magnitude at most `iter_bound`.  `affine == false`
/// means the address could not be linearized and only `addr` (the plain
/// interval on the AccessFact) is known.
struct SharedStoreFootprint {
  int access = -1;        ///< index into IntervalAnalysis::accesses()
  bool affine = false;
  double a = 0.0;         ///< effective tid.x coefficient
  double b = 0.0;         ///< effective tid.y coefficient
  double iter_stride = 0; ///< gcd of iterator delta strides (0: no iterators)
  double iter_bound = 0;  ///< max |iterator delta|
  ValInterval base{};     ///< thread-uniform remainder
};

/// Runs the abstract interpretation once over a kernel under an environment
/// and exposes the collected facts.  Deterministic: same kernel + env give
/// identical results.
class IntervalAnalysis {
 public:
  IntervalAnalysis(const Kernel& kernel, const IntervalEnv& env);

  [[nodiscard]] const IntervalEnv& env() const noexcept { return env_; }
  /// Shared size actually assumed (env override or the kernel's own).
  [[nodiscard]] std::uint32_t shared_words() const noexcept { return shared_words_; }

  /// Every memory access and barrier, in bytecode lowering order.
  [[nodiscard]] const std::vector<AccessFact>& accesses() const noexcept { return accesses_; }
  [[nodiscard]] const std::vector<DetectorValueFact>& detectors() const noexcept {
    return detectors_;
  }
  [[nodiscard]] const std::vector<SharedStoreFootprint>& shared_stores() const noexcept {
    return shared_stores_;
  }

  /// Join of every value ever assigned to `v` (empty if never assigned).
  [[nodiscard]] const ValInterval& var_value(VarId v) const { return var_summary_.at(v); }
  [[nodiscard]] const std::vector<ValInterval>& var_values() const noexcept {
    return var_summary_;
  }
  /// True when `v` may hold thread-dependent values.
  [[nodiscard]] bool var_divergent(VarId v) const { return var_divergent_.at(v) != 0; }

 private:
  friend class IntervalInterp;
  IntervalEnv env_;
  std::uint32_t shared_words_ = 0;
  std::vector<AccessFact> accesses_;
  std::vector<DetectorValueFact> detectors_;
  std::vector<SharedStoreFootprint> shared_stores_;
  std::vector<ValInterval> var_summary_;
  std::vector<std::uint8_t> var_divergent_;
};

/// Positional pc map for AccessFacts: the k-th returned pc is the k-th
/// {LoadG, StoreG, LoadS, StoreS, AtomicAddG, Barrier} instruction of `p`.
/// Lowering emits exactly one such instruction per syntactic access in
/// pre-order, so when `p` was lowered from the analyzed kernel the k-th
/// AccessFact executes at the k-th returned pc (a size mismatch means the
/// program was lowered from a different kernel).
[[nodiscard]] std::vector<std::int64_t> access_pcs(const BytecodeProgram& p);

}  // namespace hauberk::kir
