#pragma once
// Def-use analysis over a KIR kernel: per-variable def/use chains, a
// bit-liveness ("observed bits") fixpoint used to prove fault injections
// statically Benign, thread-divergence taint, lightweight structural
// dominance facts, and def-use propagation-cone signatures used by the
// campaign pruner (hauberk::prune) to group equivalent fault sites.
//
// All facts are environment-free: they depend only on the kernel AST, never
// on launch geometry or input data, so they are safe to fold into campaign
// digests and to serialize into PruningPlans.

#include <cstdint>
#include <vector>

#include "kir/ast.hpp"

namespace hauberk::kir {

/// Per-variable facts computed by DefUseAnalysis.
struct VarDefUse {
  VarId var = 0;
  /// Number of defining statements (Let/Assign/For-iterator/Scatter target).
  std::uint32_t defs = 0;
  /// Number of reading references across the whole kernel.
  std::uint32_t uses = 0;
  /// Union of bits of this variable that can reach any observable root
  /// (store, address, branch condition, detector) through the def-use graph.
  /// A bit NOT in this mask is killed by downstream masking/shifts before it
  /// can influence any observable behaviour: flipping it is statically
  /// Benign.  0 means the variable is a dead destination.
  std::uint32_t observed_mask = 0;
  /// Subset of observed_mask reachable from *detector* roots only (DupCheck,
  /// ChecksumXor/Validate, RangeCheck, EqualCheck, ProfileValue).  This is
  /// the live mask for late-window injections: a flip after the variable's
  /// last semantic use can no longer reach stores or branches, but detectors
  /// that re-read the value at check time (checksum validation, duplicate
  /// comparison) still see it.  0 in an uninstrumented kernel.
  std::uint32_t detector_observed_mask = 0;
  /// Value may differ across threads (seeded by thread builtins and memory
  /// loads, propagated through data and structured control dependence).
  bool divergent = false;
  /// Value (transitively) reaches a branch/loop condition or loop bound.
  bool feeds_control = false;
  /// Value (transitively) flows into a memory address computation.
  bool feeds_address = false;
  /// Variable's definition reads itself across a loop back edge (e.g. an
  /// accumulator).  Faults in different dynamic occurrences of such a
  /// variable are NOT interchangeable.
  bool loop_carried = false;
  /// Some read of the variable appears before its first definition in
  /// program pre-order (use not dominated by a def).
  bool use_before_def = false;
  /// Structural hash of the forward def-use propagation cone rooted at this
  /// variable, with variable/parameter identities and constant values
  /// erased.  Two variables with equal signatures have isomorphic
  /// propagation cones (symmetric register lanes, unrolled twins).
  std::uint64_t cone_sig = 0;
};

/// Def-use chains + bit-liveness over one kernel.  Construct directly or via
/// AnalysisManager::def_use() for caching.
class DefUseAnalysis {
 public:
  explicit DefUseAnalysis(const Kernel& kernel);

  [[nodiscard]] const VarDefUse& var(VarId v) const { return vars_.at(v); }
  [[nodiscard]] const std::vector<VarDefUse>& vars() const { return vars_; }

  /// True when no bit of `v` can reach an observable root: every write to it
  /// is dead and any fault injected into it is statically Benign.
  [[nodiscard]] bool dead_destination(VarId v) const {
    return vars_.at(v).observed_mask == 0;
  }

  /// Bits of `v` whose corruption can influence observable behaviour.
  [[nodiscard]] std::uint32_t live_mask(VarId v) const {
    return vars_.at(v).observed_mask;
  }

  /// Bits of `v` a detector can still observe after the last semantic use
  /// (the live mask for dead-window injection sites).
  [[nodiscard]] std::uint32_t detector_live_mask(VarId v) const {
    return vars_.at(v).detector_observed_mask;
  }

  /// True when the value of `v` is provably identical across all threads of
  /// a launch (never tainted by thread builtins, loads, or divergent
  /// control).
  [[nodiscard]] bool thread_uniform(VarId v) const {
    return !vars_.at(v).divergent;
  }

  /// True when faults in different dynamic occurrences of `v` are
  /// interchangeable: the variable is not loop-carried, is not a loop
  /// iterator, and does not steer control flow.
  [[nodiscard]] bool occurrence_symmetric(VarId v) const {
    const VarDefUse& f = vars_.at(v);
    return !f.loop_carried && !f.feeds_control && !f.use_before_def;
  }

  /// Number of fixpoint iterations the observed-bits pass needed.
  [[nodiscard]] int fixpoint_rounds() const { return rounds_; }

 private:
  std::vector<VarDefUse> vars_;
  int rounds_ = 0;
};

}  // namespace hauberk::kir
