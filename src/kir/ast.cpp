#include "kir/ast.hpp"

#include <cstdio>

namespace hauberk::kir {

std::string Value::to_string() const {
  char buf[48];
  switch (type) {
    case DType::F32: std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(as_f32())); break;
    case DType::I32: std::snprintf(buf, sizeof(buf), "%d", as_i32()); break;
    case DType::PTR: std::snprintf(buf, sizeof(buf), "@%u", as_ptr()); break;
  }
  return buf;
}

namespace {

/// Result type of a binary operation given its operand types.
DType binary_result_type(BinOp op, DType a, DType b) {
  switch (op) {
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
    case BinOp::Eq: case BinOp::Ne: case BinOp::LogicalAnd: case BinOp::LogicalOr:
      return DType::I32;
    default:
      break;
  }
  // Pointer arithmetic: ptr +/- int yields ptr; ptr - ptr yields int.
  if (a == DType::PTR || b == DType::PTR) {
    if (op == BinOp::Sub && a == DType::PTR && b == DType::PTR) return DType::I32;
    return DType::PTR;
  }
  if (a == DType::F32 || b == DType::F32) return DType::F32;
  return DType::I32;
}

DType unary_result_type(UnOp op, DType a) {
  switch (op) {
    case UnOp::CastF32: return DType::F32;
    case UnOp::CastI32: return DType::I32;
    case UnOp::LogicalNot: return DType::I32;
    default: return a;
  }
}

}  // namespace

ExprPtr Expr::make_const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Const;
  e->type = v.type;
  e->constant = v;
  return e;
}

ExprPtr Expr::make_var(VarId id, DType t) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::VarRef;
  e->type = t;
  e->var = id;
  return e;
}

ExprPtr Expr::make_param(std::uint32_t index, DType t) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::ParamRef;
  e->type = t;
  e->param = index;
  return e;
}

ExprPtr Expr::make_builtin(BuiltinVal b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Builtin;
  e->type = DType::I32;
  e->builtin = b;
  return e;
}

ExprPtr Expr::make_load_global(ExprPtr addr, DType loaded) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::LoadGlobal;
  e->type = loaded;
  e->a = std::move(addr);
  return e;
}

ExprPtr Expr::make_load_shared(ExprPtr index, DType loaded) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::LoadShared;
  e->type = loaded;
  e->a = std::move(index);
  return e;
}

ExprPtr Expr::make_unary(UnOp op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Unary;
  e->type = unary_result_type(op, a->type);
  e->un = op;
  e->a = std::move(a);
  return e;
}

ExprPtr Expr::make_binary(BinOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Binary;
  e->type = binary_result_type(op, a->type, b->type);
  e->bin = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr Expr::make_select(ExprPtr cond, ExprPtr then_v, ExprPtr else_v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Select;
  e->type = then_v->type;
  e->a = std::move(cond);
  e->b = std::move(then_v);
  e->c = std::move(else_v);
  return e;
}

ExprPtr clone_expr(const ExprPtr& e) {
  // Expr nodes are immutable, so sharing the subtree is a valid deep copy.
  // A physically distinct copy is made anyway so instrumentation metadata
  // attached later (if any) never aliases; this keeps the translator honest
  // about "duplicating the computation" (Fig. 8(c)).
  if (!e) return nullptr;
  auto n = std::make_shared<Expr>(*e);
  n->a = clone_expr(e->a);
  n->b = clone_expr(e->b);
  n->c = clone_expr(e->c);
  return n;
}

StmtPtr Stmt::let(VarId v, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Let;
  s->var = v;
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::assign(VarId v, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Assign;
  s->var = v;
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::store_global(ExprPtr addr, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::StoreGlobal;
  s->addr = std::move(addr);
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::store_shared(ExprPtr addr, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::StoreShared;
  s->addr = std::move(addr);
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::atomic_add(ExprPtr addr, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::AtomicAddGlobal;
  s->addr = std::move(addr);
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::for_loop(VarId iter, ExprPtr init, ExprPtr limit, ExprPtr step, StmtList body,
                       std::uint32_t loop_id) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::For;
  s->var = iter;
  s->init = std::move(init);
  s->limit = std::move(limit);
  s->step = std::move(step);
  s->body = std::move(body);
  s->loop_id = loop_id;
  return s;
}

StmtPtr Stmt::while_loop(ExprPtr cond, StmtList body, std::uint32_t loop_id) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::While;
  s->value = std::move(cond);
  s->body = std::move(body);
  s->loop_id = loop_id;
  return s;
}

StmtPtr Stmt::if_stmt(ExprPtr cond, StmtList then_body, StmtList else_body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::If;
  s->value = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr Stmt::barrier() {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::Barrier;
  return s;
}

StmtPtr clone_stmt(const StmtPtr& s) {
  if (!s) return nullptr;
  auto n = std::make_shared<Stmt>(*s);
  n->body = clone_stmts(s->body);
  n->else_body = clone_stmts(s->else_body);
  return n;
}

StmtList clone_stmts(const StmtList& body) {
  StmtList out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(clone_stmt(s));
  return out;
}

Kernel clone_kernel(const Kernel& k) {
  Kernel n = k;
  n.body = clone_stmts(k.body);
  return n;
}

}  // namespace hauberk::kir
