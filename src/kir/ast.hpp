// Abstract syntax tree of the kernel IR.
//
// Hauberk is a source-to-source translator (an extension of CETUS in the
// paper, Fig. 7).  Because we cannot parse CUDA C++ here, workloads are
// authored against this small AST via the builder DSL; the Hauberk
// translator (src/hauberk/translator.*) performs the Table I transformations
// on this AST, and the lowering pass (src/kir/lower.*) compiles it to
// bytecode executed by the simulated GPU (src/gpusim).
//
// Terminology follows the paper: a *virtual variable* is a subset of the
// live range of program state with one definition and multiple uses
// (Section V.A).  In this IR every `Let` introduces a virtual variable;
// `Assign` re-defines an existing one (e.g. self-accumulating variables).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kir/value.hpp"

namespace hauberk::kir {

using VarId = std::uint32_t;
inline constexpr VarId kInvalidVar = 0xffffffffu;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  Const,       ///< literal value
  VarRef,      ///< read of a virtual variable
  ParamRef,    ///< read of a kernel parameter
  Builtin,     ///< thread/block index or dimension
  LoadGlobal,  ///< global-memory load, operand a = word address (PTR)
  LoadShared,  ///< shared-memory load, operand a = word index (I32)
  Unary,       ///< unary op on a
  Binary,      ///< binary op on a, b
  Select,      ///< a ? b : c (branchless select)
};

enum class BuiltinVal : std::uint8_t {
  ThreadIdxX, ThreadIdxY, BlockIdxX, BlockIdxY,
  BlockDimX, BlockDimY, GridDimX, GridDimY,
  ThreadLinear,  ///< global linear thread id (convenience)
};

enum class UnOp : std::uint8_t {
  Neg, LogicalNot, BitNot,
  Sqrt, Rsqrt, Abs, Exp, Log, Sin, Cos, Floor,
  CastF32,  ///< i32 -> f32
  CastI32,  ///< f32 -> i32 (truncating)
};

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Min, Max,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A single fat node; which fields are meaningful depends on `kind`.
/// Nodes are immutable after construction so subtrees can be shared and
/// cloned freely by the translator.
struct Expr {
  ExprKind kind = ExprKind::Const;
  DType type = DType::I32;

  Value constant{};              // Const
  VarId var = kInvalidVar;       // VarRef
  std::uint32_t param = 0;       // ParamRef
  BuiltinVal builtin{};          // Builtin
  UnOp un{};                     // Unary
  BinOp bin{};                   // Binary
  ExprPtr a, b, c;               // operands

  static ExprPtr make_const(Value v);
  static ExprPtr make_var(VarId id, DType t);
  static ExprPtr make_param(std::uint32_t index, DType t);
  static ExprPtr make_builtin(BuiltinVal b);
  static ExprPtr make_load_global(ExprPtr addr, DType loaded);
  static ExprPtr make_load_shared(ExprPtr index, DType loaded);
  static ExprPtr make_unary(UnOp op, ExprPtr a);
  static ExprPtr make_binary(BinOp op, ExprPtr a, ExprPtr b);
  static ExprPtr make_select(ExprPtr cond, ExprPtr then_v, ExprPtr else_v);
};

/// Deep copy of an expression tree (used when the translator duplicates a
/// virtual variable's defining computation, Fig. 8(c) step (ii)).
ExprPtr clone_expr(const ExprPtr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Let,          ///< define a new virtual variable: var = value
  Assign,       ///< re-define an existing variable: var = value
  StoreGlobal,  ///< [addr] = value
  StoreShared,  ///< shared[addr] = value
  AtomicAddGlobal,  ///< atomic [addr] += value
  For,          ///< for (var = init; var < limit; var += step) body
  While,        ///< while (cond) body          (cond stored in `value`)
  If,           ///< if (cond) body else else_body
  Barrier,      ///< __syncthreads()

  // --- statements inserted by the Hauberk translator (Table I) ---
  ChecksumXor,      ///< checksum ^= bits(value)                 [FT]
  ChecksumValidate, ///< if (checksum != 0) set SDC bit          [FT]
  DupCheck,         ///< recompute `value`; if != var set SDC    [FT]
  RangeCheck,       ///< HauberkCheckRange(cb, det, value)       [FT]
  EqualCheck,       ///< HauberkCheckEqual(cb, det, value, rhs)  [FT]
  ProfileValue,     ///< record sample of `value` for detector   [Profiler]
  CountExec,        ///< bump execution counter of FI site       [Profiler]
  FIHook,           ///< fault-injection hook for variable       [FI]
};

/// Hardware component exercised by the statement preceding an FI hook
/// (Section VII: the translator statically derives the components from the
/// operation types).
enum class HwComponent : std::uint8_t { ALU, FPU, RegisterFile, Scheduler, Memory };

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

struct Stmt {
  StmtKind kind;

  VarId var = kInvalidVar;  ///< Let/Assign target; For iterator; DupCheck/FIHook subject
  ExprPtr value;            ///< RHS / While- or If-condition / checked value
  ExprPtr addr;             ///< Store/AtomicAdd address
  ExprPtr rhs;              ///< EqualCheck second operand
  ExprPtr init, limit, step;  ///< For bounds
  StmtList body, else_body;

  int detector_id = -1;          ///< RangeCheck/EqualCheck/ProfileValue
  std::uint32_t site = 0;        ///< FIHook/CountExec site id
  HwComponent hw = HwComponent::ALU;  ///< FIHook component tag
  std::uint32_t loop_id = 0;     ///< unique id of For/While loops
  std::uint8_t extra_flags = 0;  ///< OR'ed into emitted instruction flags (e.g. R-Scatter)
  std::string label;             ///< detector name carried into DetectorMeta
  bool hauberk_internal = false; ///< inserted by instrumentation; never re-instrumented
  bool fi_dead_window = false;   ///< FIHook/CountExec placed after the last use

  static StmtPtr let(VarId v, ExprPtr value);
  static StmtPtr assign(VarId v, ExprPtr value);
  static StmtPtr store_global(ExprPtr addr, ExprPtr value);
  static StmtPtr store_shared(ExprPtr addr, ExprPtr value);
  static StmtPtr atomic_add(ExprPtr addr, ExprPtr value);
  static StmtPtr for_loop(VarId iter, ExprPtr init, ExprPtr limit, ExprPtr step, StmtList body,
                          std::uint32_t loop_id);
  static StmtPtr while_loop(ExprPtr cond, StmtList body, std::uint32_t loop_id);
  static StmtPtr if_stmt(ExprPtr cond, StmtList then_body, StmtList else_body = {});
  static StmtPtr barrier();
};

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

struct KernelParam {
  std::string name;
  DType type;
};

struct VarInfo {
  std::string name;
  DType type;
  /// R-Scatter shadow variable: lives in otherwise-idle register lanes, so
  /// it is slot-allocated after all ordinary variables and its accesses are
  /// exempt from the spill surcharge.
  bool scatter_shadow = false;
};

/// A GPU kernel: entry function callable from the CPU-side code.
struct Kernel {
  std::string name;
  std::vector<KernelParam> params;
  std::vector<VarInfo> vars;  ///< indexed by VarId
  StmtList body;
  std::uint32_t shared_mem_words = 0;
  std::uint32_t num_loops = 0;  ///< loop ids are [0, num_loops)

  [[nodiscard]] DType var_type(VarId v) const { return vars.at(v).type; }
  [[nodiscard]] const std::string& var_name(VarId v) const { return vars.at(v).name; }
};

/// Deep copy of a kernel (statement trees are copied; expression subtrees are
/// shared, which is safe because Expr is immutable).
Kernel clone_kernel(const Kernel& k);
StmtPtr clone_stmt(const StmtPtr& s);
StmtList clone_stmts(const StmtList& body);

}  // namespace hauberk::kir
