// Pretty-printers for kernels and loop dataflow graphs.
//
// `print_kernel` renders the AST in a C-like syntax so instrumented kernels
// can be inspected (the analogue of reading the Hauberk translator's output
// source).  `print_loop_dataflow` renders the Fig. 9 style graph with the
// cumulative backward dataflow dependency of every node.
#pragma once

#include <string>

#include "kir/analysis.hpp"
#include "kir/ast.hpp"

namespace hauberk::kir {

std::string print_expr(const ExprPtr& e, const Kernel& k);
std::string print_kernel(const Kernel& k);
std::string print_loop_dataflow(const Kernel& k, const LoopDataflow& df);

}  // namespace hauberk::kir
