// Pretty-printers for kernels and loop dataflow graphs, plus the lossless
// kernel serializer.
//
// `print_kernel` renders the AST in a C-like syntax so instrumented kernels
// can be inspected (the analogue of reading the Hauberk translator's output
// source).  `print_loop_dataflow` renders the Fig. 9 style graph with the
// cumulative backward dataflow dependency of every node.
//
// `serialize_kernel` / `parse_kernel` are the round-trip pair: every AST
// field is written out (Value payloads as exact bit patterns, labels and
// names escaped), so lowering the parsed kernel yields a bytecode program
// bit-identical to lowering the original — `kir::program_digest` is the
// equality oracle the round-trip tests pin on.
#pragma once

#include <string>

#include "kir/analysis.hpp"
#include "kir/ast.hpp"

namespace hauberk::kir {

std::string print_expr(const ExprPtr& e, const Kernel& k);
std::string print_kernel(const Kernel& k);
std::string print_loop_dataflow(const Kernel& k, const LoopDataflow& df);

/// Lossless s-expression rendering of a kernel (machine format, not the
/// human-readable print_kernel syntax).
[[nodiscard]] std::string serialize_kernel(const Kernel& k);

/// Inverse of serialize_kernel.  Throws std::runtime_error on malformed
/// input (truncated stream, unknown tags, out-of-range enum payloads).
[[nodiscard]] Kernel parse_kernel(const std::string& text);

}  // namespace hauberk::kir
