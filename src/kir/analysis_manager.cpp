#include "kir/analysis_manager.hpp"

namespace hauberk::kir {

const Analysis& AnalysisManager::analysis() {
  if (analysis_) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    analysis_.emplace(*kernel_);
  }
  return *analysis_;
}

const DefUseAnalysis& AnalysisManager::def_use() {
  if (defuse_) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    defuse_.emplace(*kernel_);
  }
  return *defuse_;
}

const LoopDataflow& AnalysisManager::loop_dataflow(std::uint32_t loop_id) {
  auto it = dataflow_.find(loop_id);
  if (it != dataflow_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const Analysis& an = analysis();
  ++stats_.misses;
  return dataflow_.emplace(loop_id, an.loop_dataflow(loop_id)).first->second;
}

const LoopProtectionPlan& AnalysisManager::loop_plan(std::uint32_t loop_id, int maxvar) {
  const auto key = std::make_pair(loop_id, maxvar);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const LoopDataflow& df = loop_dataflow(loop_id);
  const Analysis& an = analysis();
  ++stats_.misses;
  return plans_.emplace(key, an.plan_loop_protection(loop_id, maxvar, df)).first->second;
}

const IntervalAnalysis& AnalysisManager::intervals(const IntervalEnv& env) {
  const std::uint64_t key = env.digest();
  auto it = intervals_.find(key);
  if (it != intervals_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return intervals_.try_emplace(key, *kernel_, env).first->second;
}

std::shared_ptr<void> AnalysisManager::external(
    std::uint64_t key, const std::function<std::shared_ptr<void>()>& compute) {
  auto it = external_.find(key);
  if (it != external_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return external_.emplace(key, compute()).first->second;
}

void AnalysisManager::invalidate() noexcept {
  analysis_.reset();
  defuse_.reset();
  dataflow_.clear();
  plans_.clear();
  intervals_.clear();
  external_.clear();
  ++stats_.invalidations;
}

}  // namespace hauberk::kir
