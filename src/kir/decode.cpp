// Predecoding pass: bytecode -> flat type-resolved stream with pre-folded
// cycle costs.  See the DecodedOp commentary in bytecode.hpp for the
// contract; the mapping here must be semantics-preserving with respect to
// the reference interpreter's eval_un/eval_bin dispatch, so any (op, type)
// pair whose bit-level behavior is not *provably* shared falls back to the
// generic entries, which re-dispatch exactly like the reference engine.
#include "kir/bytecode.hpp"

namespace hauberk::kir {

namespace {

constexpr std::uint32_t aux_op(std::uint32_t aux) noexcept { return aux & 0xffffu; }
constexpr DType aux_type(std::uint32_t aux) noexcept {
  return static_cast<DType>((aux >> 16) & 0xffu);
}

DecodedOp decode_un(std::uint32_t aux) noexcept {
  const auto op = static_cast<UnOp>(aux_op(aux));
  const DType t = aux_type(aux);
  if (t == DType::F32) {
    switch (op) {
      case UnOp::Neg: return DecodedOp::NegF;
      case UnOp::LogicalNot: return DecodedOp::NotF;
      case UnOp::BitNot: return DecodedOp::BitNot;
      case UnOp::Sqrt: return DecodedOp::SqrtF;
      case UnOp::Rsqrt: return DecodedOp::RsqrtF;
      case UnOp::Abs: return DecodedOp::AbsF;
      case UnOp::Exp: return DecodedOp::ExpF;
      case UnOp::Log: return DecodedOp::LogF;
      case UnOp::Sin: return DecodedOp::SinF;
      case UnOp::Cos: return DecodedOp::CosF;
      case UnOp::Floor: return DecodedOp::FloorF;
      case UnOp::CastF32: return DecodedOp::CopyA;
      case UnOp::CastI32: return DecodedOp::F2I;
    }
    return DecodedOp::UnGeneric;
  }
  // I32 / PTR source.
  switch (op) {
    case UnOp::Neg: return DecodedOp::NegI;
    case UnOp::LogicalNot: return DecodedOp::NotW;
    case UnOp::BitNot: return DecodedOp::BitNot;
    case UnOp::Abs: return DecodedOp::AbsI;
    case UnOp::CastF32: return t == DType::PTR ? DecodedOp::P2F : DecodedOp::I2F;
    case UnOp::CastI32: return DecodedOp::CopyA;
    default:
      // Transcendentals on integers: the reference engine promotes through
      // a recursive eval_un call; keep that exact path.
      return DecodedOp::UnGeneric;
  }
}

DecodedOp decode_bin(std::uint32_t aux) noexcept {
  const auto op = static_cast<BinOp>(aux_op(aux));
  const DType t = aux_type(aux);
  if (t == DType::F32) {
    switch (op) {
      case BinOp::Add: return DecodedOp::AddF;
      case BinOp::Sub: return DecodedOp::SubF;
      case BinOp::Mul: return DecodedOp::MulF;
      case BinOp::Div: return DecodedOp::DivF;
      case BinOp::Min: return DecodedOp::MinF;
      case BinOp::Max: return DecodedOp::MaxF;
      case BinOp::Lt: return DecodedOp::LtF;
      case BinOp::Le: return DecodedOp::LeF;
      case BinOp::Gt: return DecodedOp::GtF;
      case BinOp::Ge: return DecodedOp::GeF;
      case BinOp::Eq: return DecodedOp::EqF;
      case BinOp::Ne: return DecodedOp::NeF;
      // Bit ops on f32 operate on raw bits in every type branch.
      case BinOp::BitAnd: return DecodedOp::AndB;
      case BinOp::BitOr: return DecodedOp::OrB;
      case BinOp::BitXor: return DecodedOp::XorB;
      case BinOp::Shl: return DecodedOp::ShlB;
      case BinOp::Shr: return DecodedOp::ShrL;
      // fmod and float logical and/or are rare: generic fallback.
      case BinOp::Mod:
      case BinOp::LogicalAnd:
      case BinOp::LogicalOr:
        return DecodedOp::BinGeneric;
    }
    return DecodedOp::BinGeneric;
  }
  const bool sign = t != DType::PTR;  // I32 semantics vs unsigned word
  switch (op) {
    // Add/Sub/Mul truncate to the low 32 bits, so the signed (64-bit
    // intermediate) and unsigned evaluations produce identical words.
    case BinOp::Add: return DecodedOp::AddW;
    case BinOp::Sub: return DecodedOp::SubW;
    case BinOp::Mul: return DecodedOp::MulW;
    case BinOp::Div: return sign ? DecodedOp::DivI : DecodedOp::DivU;
    case BinOp::Mod: return sign ? DecodedOp::ModI : DecodedOp::ModU;
    case BinOp::Min: return sign ? DecodedOp::MinI : DecodedOp::MinU;
    case BinOp::Max: return sign ? DecodedOp::MaxI : DecodedOp::MaxU;
    case BinOp::Lt: return sign ? DecodedOp::LtI : DecodedOp::LtU;
    case BinOp::Le: return sign ? DecodedOp::LeI : DecodedOp::LeU;
    case BinOp::Gt: return sign ? DecodedOp::GtI : DecodedOp::GtU;
    case BinOp::Ge: return sign ? DecodedOp::GeI : DecodedOp::GeU;
    case BinOp::Eq: return DecodedOp::EqW;
    case BinOp::Ne: return DecodedOp::NeW;
    case BinOp::BitAnd: return DecodedOp::AndB;
    case BinOp::BitOr: return DecodedOp::OrB;
    case BinOp::BitXor: return DecodedOp::XorB;
    case BinOp::Shl: return DecodedOp::ShlB;
    case BinOp::Shr: return sign ? DecodedOp::ShrA : DecodedOp::ShrL;
    // Logical and/or test the word against zero in both integer branches.
    case BinOp::LogicalAnd: return DecodedOp::LAndW;
    case BinOp::LogicalOr: return DecodedOp::LOrW;
  }
  return DecodedOp::BinGeneric;
}

}  // namespace

DecodedProgram decode_program(const BytecodeProgram& p,
                              std::span<const std::uint32_t> costs) {
  DecodedProgram d;
  d.code.resize(p.code.size());
  d.sanitizer_sites.assign(p.code.size(), kNoSite);
  for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
    switch (p.code[pc].op) {
      case OpCode::Barrier:
        ++d.num_barrier_sites;
        [[fallthrough]];
      case OpCode::LoadS:
      case OpCode::StoreS:
        d.sanitizer_sites[pc] = d.num_sites++;
        break;
      default:
        break;
    }
  }
  for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
    const Instr& in = p.code[pc];
    DecodedInstr& out = d.code[pc];
    out.dst = in.dst;
    out.a = in.a;
    out.b = in.b;
    out.aux = in.aux;
    out.imm = in.imm;
    out.cost = pc < costs.size() ? costs[pc] : 0;
    out.loop_cost = (in.flags & kInstrInLoop) ? out.cost : 0;
    switch (in.op) {
      case OpCode::Nop: out.op = DecodedOp::Nop; break;
      case OpCode::Const: out.op = DecodedOp::Const; break;
      case OpCode::Mov: out.op = DecodedOp::Mov; break;
      case OpCode::Builtin: out.op = DecodedOp::Builtin; break;
      case OpCode::Un:
        out.op = decode_un(in.aux);
        out.t = static_cast<std::uint8_t>(aux_type(in.aux));
        break;
      case OpCode::Bin:
        out.op = decode_bin(in.aux);
        out.t = static_cast<std::uint8_t>(aux_type(in.aux));
        break;
      case OpCode::Select: out.op = DecodedOp::Select; break;
      case OpCode::LoadG: out.op = DecodedOp::LoadG; break;
      case OpCode::StoreG: out.op = DecodedOp::StoreG; break;
      case OpCode::LoadS: out.op = DecodedOp::LoadS; break;
      case OpCode::StoreS: out.op = DecodedOp::StoreS; break;
      case OpCode::AtomicAddG:
        out.op = aux_type(in.aux) == DType::F32 ? DecodedOp::AtomicAddF
                                                : DecodedOp::AtomicAddI;
        break;
      case OpCode::Jmp: out.op = DecodedOp::Jmp; break;
      case OpCode::Jz: out.op = DecodedOp::Jz; break;
      case OpCode::Barrier: out.op = DecodedOp::Barrier; break;
      case OpCode::Halt: out.op = DecodedOp::Halt; break;
      case OpCode::ChkXor: out.op = DecodedOp::ChkXor; break;
      case OpCode::ChkValidate: out.op = DecodedOp::ChkValidate; break;
      case OpCode::DupCmp: out.op = DecodedOp::DupCmp; break;
      case OpCode::RangeCheck:
      case OpCode::ProfileVal:
        out.op = in.op == OpCode::RangeCheck ? DecodedOp::RangeCheck
                                             : DecodedOp::ProfileVal;
        // Pre-resolve the detector's value type; an out-of-range detector
        // index (possible only in structurally invalid code-fault mutants,
        // which validate_program rejects before execution) defaults to F32.
        out.t = static_cast<std::uint8_t>(
            in.aux < p.detectors.size() ? p.detectors[in.aux].value_type : DType::F32);
        break;
      case OpCode::EqualCheck: out.op = DecodedOp::EqualCheck; break;
      case OpCode::CountExec: out.op = DecodedOp::CountExec; break;
      case OpCode::FIHook: out.op = DecodedOp::FIHook; break;
      default: out.op = DecodedOp::Invalid; break;
    }
  }
  return d;
}

}  // namespace hauberk::kir
