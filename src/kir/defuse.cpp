#include "kir/defuse.hpp"

#include <algorithm>
#include <cstddef>

namespace hauberk::kir {
namespace {

constexpr std::uint32_t kAllBits = 0xffffffffu;

/// Every bit at or below any set bit of m (carry propagation goes upward,
/// so observing result bit i observes operand bits 0..i).
std::uint32_t fill_down(std::uint32_t m) {
  m |= m >> 1u; m |= m >> 2u; m |= m >> 4u; m |= m >> 8u; m |= m >> 16u;
  return m;
}

/// Every bit at or above any set bit of m.
std::uint32_t fill_up(std::uint32_t m) {
  m |= m << 1u; m |= m << 2u; m |= m << 4u; m |= m << 8u; m |= m << 16u;
  return m;
}

bool is_f32(const ExprPtr& e) { return e && e->type == DType::F32; }

bool const_shift(const ExprPtr& e, std::uint32_t& amount) {
  if (!e || e->kind != ExprKind::Const) return false;
  amount = e->constant.bits & 31u;
  return true;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

/// Structural hash of an expression with variable/parameter identities and
/// constant values erased; used for cone signatures so symmetric register
/// lanes (same computation over different inputs/offsets) hash equal.
std::uint64_t expr_shape(const ExprPtr& e) {
  if (!e) return 0x9e3779b97f4a7c15ull;
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv(h, static_cast<std::uint64_t>(e->kind));
  h = fnv(h, static_cast<std::uint64_t>(e->type));
  switch (e->kind) {
    case ExprKind::Const:
    case ExprKind::VarRef:
    case ExprKind::ParamRef:
      break;  // identity/value erased
    case ExprKind::Builtin:
      h = fnv(h, static_cast<std::uint64_t>(e->builtin));
      break;
    case ExprKind::Unary:
      h = fnv(h, static_cast<std::uint64_t>(e->un));
      break;
    case ExprKind::Binary:
      h = fnv(h, static_cast<std::uint64_t>(e->bin));
      break;
    default:
      break;
  }
  if (e->a) h = fnv(h, expr_shape(e->a));
  if (e->b) h = fnv(h, expr_shape(e->b));
  if (e->c) h = fnv(h, expr_shape(e->c));
  return h;
}

/// Bit positions in a small bitmask describing which observable roots a
/// variable's value reaches *directly* (folded into cone signatures).
enum RootUse : std::uint32_t {
  kRootStoreValue = 1u << 0,
  kRootAddress = 1u << 1,
  kRootCondition = 1u << 2,
  kRootLoopBound = 1u << 3,
  kRootDetector = 1u << 4,
  kRootAtomic = 1u << 5,
};

struct Builder {
  const Kernel& k;
  std::vector<VarDefUse>& vars;

  // Pass-local scratch -----------------------------------------------------
  bool changed = false;           // fixpoint dirty flag (observed + divergence)
  bool det_only = false;          // second fixpoint: detector roots only
  std::vector<std::uint32_t> root_use;           // RootUse mask per var
  std::vector<std::vector<VarId>> deps;          // def of v reads deps[v]
  std::vector<std::uint64_t> local_shape;        // per-var def shape hash
  std::vector<std::size_t> first_def_ord, first_use_ord;
  std::size_t ord = 0;            // statement pre-order counter

  explicit Builder(const Kernel& kernel, std::vector<VarDefUse>& out)
      : k(kernel), vars(out) {
    const std::size_t n = k.vars.size();
    vars.assign(n, VarDefUse{});
    for (std::size_t i = 0; i < n; ++i) vars[i].var = static_cast<VarId>(i);
    root_use.assign(n, 0);
    deps.assign(n, {});
    local_shape.assign(n, 0xcbf29ce484222325ull);
    first_def_ord.assign(n, static_cast<std::size_t>(-1));
    first_use_ord.assign(n, static_cast<std::size_t>(-1));
  }

  // --- structural pre-pass: defs/uses, deps, shapes, pre-order facts ------

  void note_def(VarId v, std::uint64_t shape_tag, const ExprPtr& reads_a,
                const ExprPtr& reads_b = nullptr, const ExprPtr& reads_c = nullptr) {
    if (v == kInvalidVar || v >= vars.size()) return;
    ++vars[v].defs;
    first_def_ord[v] = std::min(first_def_ord[v], ord);
    std::uint64_t h = fnv(local_shape[v], shape_tag);
    std::vector<VarId> r;
    for (const ExprPtr* e : {&reads_a, &reads_b, &reads_c}) {
      if (*e) {
        h = fnv(h, expr_shape(*e));
        collect_reads(*e, r);
      }
    }
    local_shape[v] = h;
    auto& d = deps[v];
    for (VarId u : r)
      if (std::find(d.begin(), d.end(), u) == d.end()) d.push_back(u);
  }

  void collect_reads(const ExprPtr& e, std::vector<VarId>& out) {
    if (!e) return;
    if (e->kind == ExprKind::VarRef && e->var < vars.size()) out.push_back(e->var);
    collect_reads(e->a, out);
    collect_reads(e->b, out);
    collect_reads(e->c, out);
  }

  void structure_stmt(const StmtPtr& s) {
    ++ord;
    switch (s->kind) {
      case StmtKind::Let:
      case StmtKind::Assign:
        note_def(s->var, static_cast<std::uint64_t>(s->kind), s->value);
        mark_uses(s->value, 0);
        break;
      case StmtKind::StoreGlobal:
      case StmtKind::StoreShared:
        mark_uses(s->addr, kRootAddress);
        mark_uses(s->value, kRootStoreValue);
        break;
      case StmtKind::AtomicAddGlobal:
        mark_uses(s->addr, kRootAddress);
        mark_uses(s->value, kRootAtomic);
        break;
      case StmtKind::For:
        note_def(s->var, 0x464f52ull, s->init, s->limit, s->step);
        mark_uses(s->init, kRootLoopBound);
        mark_uses(s->limit, kRootLoopBound);
        mark_uses(s->step, kRootLoopBound);
        if (s->var < vars.size()) root_use[s->var] |= kRootLoopBound;
        structure_body(s->body);
        break;
      case StmtKind::While:
        mark_uses(s->value, kRootCondition);
        structure_body(s->body);
        break;
      case StmtKind::If:
        mark_uses(s->value, kRootCondition);
        structure_body(s->body);
        structure_body(s->else_body);
        break;
      case StmtKind::ChecksumXor:
      case StmtKind::ChecksumValidate:
      case StmtKind::RangeCheck:
      case StmtKind::EqualCheck:
      case StmtKind::ProfileValue:
        mark_uses(s->value, kRootDetector);
        mark_uses(s->rhs, kRootDetector);
        break;
      case StmtKind::DupCheck:
        mark_uses(s->value, kRootDetector);
        if (s->var < vars.size()) {
          ++vars[s->var].uses;
          first_use_ord[s->var] = std::min(first_use_ord[s->var], ord);
          root_use[s->var] |= kRootDetector;
        }
        break;
      default:
        break;  // Barrier, CountExec, FIHook: no reads, no defs
    }
  }

  /// Count uses in `e`; direct VarRefs get `root`, address operands of any
  /// nested load get kRootAddress.
  void mark_uses(const ExprPtr& e, std::uint32_t root) {
    if (!e) return;
    if (e->kind == ExprKind::VarRef && e->var < vars.size()) {
      ++vars[e->var].uses;
      first_use_ord[e->var] = std::min(first_use_ord[e->var], ord);
      root_use[e->var] |= root;
      return;
    }
    if (e->kind == ExprKind::LoadGlobal || e->kind == ExprKind::LoadShared) {
      mark_uses(e->a, kRootAddress);
      return;
    }
    mark_uses(e->a, root);
    mark_uses(e->b, root);
    mark_uses(e->c, root);
  }

  void structure_body(const StmtList& body) {
    for (const StmtPtr& s : body) structure_stmt(s);
  }

  // --- observed-bits + divergence fixpoint --------------------------------

  void observe_var(VarId v, std::uint32_t m) {
    if (v == kInvalidVar || v >= vars.size() || m == 0) return;
    std::uint32_t& cur = det_only ? vars[v].detector_observed_mask : vars[v].observed_mask;
    if ((cur | m) != cur) { cur |= m; changed = true; }
  }

  void observe(const ExprPtr& e, std::uint32_t m) {
    if (!e || m == 0) return;
    switch (e->kind) {
      case ExprKind::Const:
      case ExprKind::ParamRef:
      case ExprKind::Builtin:
        return;
      case ExprKind::VarRef:
        observe_var(e->var, m);
        return;
      case ExprKind::LoadGlobal:
      case ExprKind::LoadShared:
        observe(e->a, kAllBits);  // every address bit selects a word
        return;
      case ExprKind::Unary:
        if (is_f32(e) || is_f32(e->a)) { observe(e->a, kAllBits); return; }
        switch (e->un) {
          case UnOp::BitNot: observe(e->a, m); return;
          case UnOp::Neg: observe(e->a, fill_down(m)); return;
          default: observe(e->a, kAllBits); return;
        }
      case ExprKind::Binary:
        observe_binary(e, m);
        return;
      case ExprKind::Select:
        observe(e->a, kAllBits);
        observe(e->b, m);
        observe(e->c, m);
        return;
    }
  }

  void observe_binary(const ExprPtr& e, std::uint32_t m) {
    if (is_f32(e) || is_f32(e->a) || is_f32(e->b)) {
      observe(e->a, kAllBits);
      observe(e->b, kAllBits);
      return;
    }
    std::uint32_t sh = 0;
    switch (e->bin) {
      case BinOp::BitAnd:
        if (e->b->kind == ExprKind::Const) { observe(e->a, m & e->b->constant.bits); return; }
        if (e->a->kind == ExprKind::Const) { observe(e->b, m & e->a->constant.bits); return; }
        observe(e->a, m); observe(e->b, m);
        return;
      case BinOp::BitOr:
        if (e->b->kind == ExprKind::Const) { observe(e->a, m & ~e->b->constant.bits); return; }
        if (e->a->kind == ExprKind::Const) { observe(e->b, m & ~e->a->constant.bits); return; }
        observe(e->a, m); observe(e->b, m);
        return;
      case BinOp::BitXor:
        observe(e->a, m); observe(e->b, m);
        return;
      case BinOp::Shl:
        if (const_shift(e->b, sh)) { observe(e->a, m >> sh); return; }
        observe(e->a, fill_down(m));
        observe(e->b, 31u);  // engines shift by (b & 31)
        return;
      case BinOp::Shr:
        // Conservatively assume arithmetic shift: the sign bit replicates
        // into every result bit at or above (31 - amount).
        if (const_shift(e->b, sh)) {
          std::uint32_t om = m << sh;
          if (sh != 0 && (m >> (31u - sh)) != 0) om |= 0x80000000u;
          observe(e->a, om);
          return;
        }
        observe(e->a, fill_up(m) | 0x80000000u);
        observe(e->b, 31u);
        return;
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
        observe(e->a, fill_down(m));
        observe(e->b, fill_down(m));
        return;
      default:
        // Div/Mod/Min/Max, comparisons, logical ops: any operand bit can
        // influence the result.
        observe(e->a, kAllBits);
        observe(e->b, kAllBits);
        return;
    }
  }

  bool expr_divergent(const ExprPtr& e) const {
    if (!e) return false;
    switch (e->kind) {
      case ExprKind::Const:
      case ExprKind::ParamRef:
        return false;
      case ExprKind::Builtin:
        switch (e->builtin) {
          case BuiltinVal::BlockDimX: case BuiltinVal::BlockDimY:
          case BuiltinVal::GridDimX: case BuiltinVal::GridDimY:
            return false;
          default:
            return true;  // thread/block indices differ per (global) thread
        }
      case ExprKind::VarRef:
        return e->var < vars.size() && vars[e->var].divergent;
      case ExprKind::LoadGlobal:
      case ExprKind::LoadShared:
        return true;  // memory contents may be thread-dependent
      default:
        return expr_divergent(e->a) || expr_divergent(e->b) || expr_divergent(e->c);
    }
  }

  void taint_def(VarId v, bool div) {
    if (v == kInvalidVar || v >= vars.size() || !div) return;
    if (!vars[v].divergent) { vars[v].divergent = true; changed = true; }
  }

  /// Observation strength of non-detector roots: in the detector-only pass
  /// they observe nothing (a post-last-use flip can no longer reach them).
  [[nodiscard]] std::uint32_t root_bits() const { return det_only ? 0u : kAllBits; }

  void flow_stmt(const StmtPtr& s, bool ctx_div) {
    switch (s->kind) {
      case StmtKind::Let:
      case StmtKind::Assign:
        observe(s->value,
                s->var >= vars.size() ? kAllBits
                : det_only            ? vars[s->var].detector_observed_mask
                                      : vars[s->var].observed_mask);
        taint_def(s->var, ctx_div || expr_divergent(s->value));
        break;
      case StmtKind::StoreGlobal:
      case StmtKind::StoreShared:
      case StmtKind::AtomicAddGlobal:
        observe(s->addr, root_bits());
        observe(s->value, root_bits());
        break;
      case StmtKind::For: {
        observe(s->init, root_bits());
        observe(s->limit, root_bits());
        observe(s->step, root_bits());
        observe_var(s->var, root_bits());  // iterator steers the trip count
        const bool div = ctx_div || expr_divergent(s->init) ||
                         expr_divergent(s->limit) || expr_divergent(s->step);
        taint_def(s->var, div);
        for (const StmtPtr& b : s->body) flow_stmt(b, div);
        break;
      }
      case StmtKind::While: {
        observe(s->value, root_bits());
        const bool div = ctx_div || expr_divergent(s->value);
        for (const StmtPtr& b : s->body) flow_stmt(b, div);
        break;
      }
      case StmtKind::If: {
        observe(s->value, root_bits());
        const bool div = ctx_div || expr_divergent(s->value);
        for (const StmtPtr& b : s->body) flow_stmt(b, div);
        for (const StmtPtr& b : s->else_body) flow_stmt(b, div);
        break;
      }
      case StmtKind::DupCheck:
        observe(s->value, kAllBits);
        observe_var(s->var, kAllBits);  // compared against the recomputation
        break;
      case StmtKind::ChecksumXor:
      case StmtKind::ChecksumValidate:
      case StmtKind::RangeCheck:
      case StmtKind::EqualCheck:
      case StmtKind::ProfileValue:
        observe(s->value, kAllBits);
        observe(s->rhs, kAllBits);
        break;
      default:
        break;  // Barrier, CountExec, FIHook
    }
  }

  // --- derived closures ---------------------------------------------------

  /// Backward closure: start from vars with any root in `mask`, pull in the
  /// vars their definitions read, and set `flag`.
  template <typename Setter>
  void backward_closure(std::uint32_t mask, Setter set) {
    std::vector<char> in(vars.size(), 0);
    std::vector<VarId> work;
    for (std::size_t v = 0; v < vars.size(); ++v)
      if ((root_use[v] & mask) != 0) { in[v] = 1; work.push_back(static_cast<VarId>(v)); }
    while (!work.empty()) {
      const VarId v = work.back();
      work.pop_back();
      set(vars[v]);
      for (VarId u : deps[v])
        if (!in[u]) { in[u] = 1; work.push_back(u); }
    }
  }

  void detect_loop_carried(const StmtList& body, int loop_depth) {
    for (const StmtPtr& s : body) {
      const bool looped = loop_depth > 0 || s->kind == StmtKind::For || s->kind == StmtKind::While;
      if ((s->kind == StmtKind::Let || s->kind == StmtKind::Assign) && loop_depth > 0 &&
          s->var < vars.size()) {
        // v is loop-carried when its in-loop definition transitively reads v.
        std::vector<char> seen(vars.size(), 0);
        std::vector<VarId> work;
        collect_reads(s->value, work);
        bool self = false;
        while (!work.empty() && !self) {
          const VarId u = work.back();
          work.pop_back();
          if (seen[u]) continue;
          seen[u] = 1;
          if (u == s->var) { self = true; break; }
          for (VarId d : deps[u]) work.push_back(d);
        }
        if (self) vars[s->var].loop_carried = true;
      }
      detect_loop_carried(s->body, looped ? loop_depth + 1 : loop_depth);
      detect_loop_carried(s->else_body, looped ? loop_depth + 1 : loop_depth);
      (void)looped;
    }
  }

  void cone_signatures() {
    // Reverse def-use edges: consumers[v] = vars whose definitions read v.
    std::vector<std::vector<VarId>> consumers(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v)
      for (VarId u : deps[v]) consumers[u].push_back(static_cast<VarId>(v));

    // Weisfeiler–Lehman style iterated refinement: each round folds the
    // sorted signatures of a variable's consumers into its own, so after K
    // rounds the signature covers the depth-K forward propagation cone.
    std::vector<std::uint64_t> sig(vars.size()), next(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v)
      sig[v] = fnv(fnv(local_shape[v], root_use[v]),
                   static_cast<std::uint64_t>(k.vars[v].type));
    constexpr int kRounds = 8;
    for (int r = 0; r < kRounds; ++r) {
      for (std::size_t v = 0; v < vars.size(); ++v) {
        std::vector<std::uint64_t> cs;
        cs.reserve(consumers[v].size());
        for (VarId c : consumers[v]) cs.push_back(sig[c]);
        std::sort(cs.begin(), cs.end());
        std::uint64_t h = fnv(sig[v], 0x57ull);
        for (std::uint64_t c : cs) h = fnv(h, c);
        next[v] = h;
      }
      sig.swap(next);
    }
    for (std::size_t v = 0; v < vars.size(); ++v) vars[v].cone_sig = sig[v];
  }

  int run() {
    structure_body(k.body);
    int rounds = 0;
    do {
      changed = false;
      for (const StmtPtr& s : k.body) flow_stmt(s, false);
      ++rounds;
    } while (changed && rounds < 64);
    // Second fixpoint, seeded by detector roots only: what can a late
    // (post-last-use) flip still reach?  Divergence is already converged, so
    // only the detector_observed_mask lattice moves here.
    det_only = true;
    int det_rounds = 0;
    do {
      changed = false;
      for (const StmtPtr& s : k.body) flow_stmt(s, false);
      ++det_rounds;
    } while (changed && det_rounds < 64);
    det_only = false;
    backward_closure(kRootCondition | kRootLoopBound,
                     [](VarDefUse& f) { f.feeds_control = true; });
    backward_closure(kRootAddress, [](VarDefUse& f) { f.feeds_address = true; });
    detect_loop_carried(k.body, 0);
    for (std::size_t v = 0; v < vars.size(); ++v)
      vars[v].use_before_def =
          first_use_ord[v] < first_def_ord[v];
    cone_signatures();
    return rounds;
  }
};

}  // namespace

DefUseAnalysis::DefUseAnalysis(const Kernel& kernel) {
  Builder b(kernel, vars_);
  rounds_ = b.run();
}

}  // namespace hauberk::kir
