// Lossless kernel serializer (serialize_kernel / parse_kernel).
//
// The format is a flat s-expression over fat nodes: every Expr and Stmt
// field is emitted positionally, whether or not the node's kind uses it.
// That makes the writer and reader trivially symmetric and immune to the
// "printer dropped a field the lowering reads" class of round-trip bug —
// there is no per-kind field selection to get wrong.  Value payloads are
// written as raw 32-bit bit patterns (floats never go through decimal),
// and names/labels are quoted with C-style escapes.
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "kir/printer.hpp"

namespace hauberk::kir {

namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void write_u32(std::string& out, std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", v);
  out += buf;
}

void write_i32(std::string& out, std::int32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", v);
  out += buf;
}

void write_expr(std::string& out, const ExprPtr& e) {
  if (!e) {
    out += " _";
    return;
  }
  out += " (e ";
  write_u32(out, static_cast<std::uint32_t>(e->kind));
  out += ' ';
  write_u32(out, static_cast<std::uint32_t>(e->type));
  out += ' ';
  write_u32(out, static_cast<std::uint32_t>(e->constant.type));
  out += ' ';
  write_u32(out, e->constant.bits);
  out += ' ';
  write_u32(out, e->var);
  out += ' ';
  write_u32(out, e->param);
  out += ' ';
  write_u32(out, static_cast<std::uint32_t>(e->builtin));
  out += ' ';
  write_u32(out, static_cast<std::uint32_t>(e->un));
  out += ' ';
  write_u32(out, static_cast<std::uint32_t>(e->bin));
  write_expr(out, e->a);
  write_expr(out, e->b);
  write_expr(out, e->c);
  out += ')';
}

void write_stmts(std::string& out, const StmtList& body);

void write_stmt(std::string& out, const StmtPtr& s) {
  out += " (s ";
  write_u32(out, static_cast<std::uint32_t>(s->kind));
  out += ' ';
  write_u32(out, s->var);
  out += ' ';
  write_i32(out, s->detector_id);
  out += ' ';
  write_u32(out, s->site);
  out += ' ';
  write_u32(out, static_cast<std::uint32_t>(s->hw));
  out += ' ';
  write_u32(out, s->loop_id);
  out += ' ';
  write_u32(out, s->extra_flags);
  out += ' ';
  write_u32(out, s->hauberk_internal ? 1 : 0);
  out += ' ';
  write_u32(out, s->fi_dead_window ? 1 : 0);
  out += ' ';
  write_string(out, s->label);
  write_expr(out, s->value);
  write_expr(out, s->addr);
  write_expr(out, s->rhs);
  write_expr(out, s->init);
  write_expr(out, s->limit);
  write_expr(out, s->step);
  write_stmts(out, s->body);
  write_stmts(out, s->else_body);
  out += ')';
}

void write_stmts(std::string& out, const StmtList& body) {
  out += " (";
  for (const auto& s : body) write_stmt(out, s);
  out += ')';
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  /// True (and consumed) when the next token starts with `c`.
  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_tag(const char* tag) {
    skip_ws();
    for (const char* t = tag; *t; ++t) {
      if (pos_ >= text_.size() || text_[pos_] != *t)
        fail(std::string("expected tag '") + tag + "'");
      ++pos_;
    }
  }

  std::uint32_t read_u32() {
    const auto [v, neg] = read_digits();
    if (neg) fail("unexpected negative integer");
    return static_cast<std::uint32_t>(v);
  }

  std::int32_t read_i32() {
    const auto [v, neg] = read_digits();
    return neg ? -static_cast<std::int32_t>(v) : static_cast<std::int32_t>(v);
  }

  std::string read_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("kir::parse_kernel: " + why + " at offset " +
                             std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t'))
      ++pos_;
  }

  struct Digits {
    std::uint64_t value;
    bool negative;
  };
  Digits read_digits() {
    skip_ws();
    bool neg = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      fail("expected integer");
    std::uint64_t v = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > 0xffffffffull) fail("integer out of range");
      ++pos_;
    }
    return {v, neg};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

template <typename E>
E read_enum(Reader& r, std::uint32_t max, const char* what) {
  const std::uint32_t v = r.read_u32();
  if (v > max) r.fail(std::string("out-of-range ") + what);
  return static_cast<E>(v);
}

ExprPtr read_expr(Reader& r) {
  if (r.accept('_')) return nullptr;
  r.expect('(');
  r.expect_tag("e");
  auto e = std::make_shared<Expr>();
  e->kind = read_enum<ExprKind>(r, static_cast<std::uint32_t>(ExprKind::Select), "ExprKind");
  e->type = read_enum<DType>(r, static_cast<std::uint32_t>(DType::PTR), "DType");
  e->constant.type = read_enum<DType>(r, static_cast<std::uint32_t>(DType::PTR), "DType");
  e->constant.bits = r.read_u32();
  e->var = r.read_u32();
  e->param = r.read_u32();
  e->builtin =
      read_enum<BuiltinVal>(r, static_cast<std::uint32_t>(BuiltinVal::ThreadLinear), "BuiltinVal");
  e->un = read_enum<UnOp>(r, static_cast<std::uint32_t>(UnOp::CastI32), "UnOp");
  e->bin = read_enum<BinOp>(r, static_cast<std::uint32_t>(BinOp::LogicalOr), "BinOp");
  e->a = read_expr(r);
  e->b = read_expr(r);
  e->c = read_expr(r);
  r.expect(')');
  return e;
}

StmtList read_stmts(Reader& r);

StmtPtr read_stmt(Reader& r) {
  r.expect_tag("s");
  auto s = std::make_shared<Stmt>();
  s->kind = read_enum<StmtKind>(r, static_cast<std::uint32_t>(StmtKind::FIHook), "StmtKind");
  s->var = r.read_u32();
  s->detector_id = r.read_i32();
  s->site = r.read_u32();
  s->hw = read_enum<HwComponent>(r, static_cast<std::uint32_t>(HwComponent::Memory),
                                 "HwComponent");
  s->loop_id = r.read_u32();
  const std::uint32_t flags = r.read_u32();
  if (flags > 0xffu) r.fail("extra_flags out of range");
  s->extra_flags = static_cast<std::uint8_t>(flags);
  s->hauberk_internal = r.read_u32() != 0;
  s->fi_dead_window = r.read_u32() != 0;
  s->label = r.read_string();
  s->value = read_expr(r);
  s->addr = read_expr(r);
  s->rhs = read_expr(r);
  s->init = read_expr(r);
  s->limit = read_expr(r);
  s->step = read_expr(r);
  s->body = read_stmts(r);
  s->else_body = read_stmts(r);
  r.expect(')');
  return s;
}

StmtList read_stmts(Reader& r) {
  r.expect('(');
  StmtList out;
  while (!r.accept(')')) {
    r.expect('(');
    out.push_back(read_stmt(r));
  }
  return out;
}

}  // namespace

std::string serialize_kernel(const Kernel& k) {
  std::string out = "(kernel ";
  write_string(out, k.name);
  out += ' ';
  write_u32(out, k.shared_mem_words);
  out += ' ';
  write_u32(out, k.num_loops);
  out += "\n (params";
  for (const auto& p : k.params) {
    out += " (";
    write_string(out, p.name);
    out += ' ';
    write_u32(out, static_cast<std::uint32_t>(p.type));
    out += ')';
  }
  out += ")\n (vars";
  for (const auto& v : k.vars) {
    out += " (";
    write_string(out, v.name);
    out += ' ';
    write_u32(out, static_cast<std::uint32_t>(v.type));
    out += ' ';
    write_u32(out, v.scatter_shadow ? 1 : 0);
    out += ')';
  }
  out += ")\n";
  write_stmts(out, k.body);
  out += ")\n";
  return out;
}

Kernel parse_kernel(const std::string& text) {
  Reader r(text);
  Kernel k;
  r.expect('(');
  r.expect_tag("kernel");
  k.name = r.read_string();
  k.shared_mem_words = r.read_u32();
  k.num_loops = r.read_u32();
  r.expect('(');
  r.expect_tag("params");
  while (r.accept('(')) {
    KernelParam p;
    p.name = r.read_string();
    p.type = read_enum<DType>(r, static_cast<std::uint32_t>(DType::PTR), "DType");
    r.expect(')');
    k.params.push_back(std::move(p));
  }
  r.expect(')');
  r.expect('(');
  r.expect_tag("vars");
  while (r.accept('(')) {
    VarInfo v;
    v.name = r.read_string();
    v.type = read_enum<DType>(r, static_cast<std::uint32_t>(DType::PTR), "DType");
    v.scatter_shadow = r.read_u32() != 0;
    r.expect(')');
    k.vars.push_back(std::move(v));
  }
  r.expect(')');
  k.body = read_stmts(r);
  r.expect(')');
  return k;
}

}  // namespace hauberk::kir
