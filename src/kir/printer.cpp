#include "kir/printer.hpp"

#include <algorithm>
#include <cstdio>

namespace hauberk::kir {

namespace {

const char* binop_str(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::LogicalAnd: return "&&";
    case BinOp::LogicalOr: return "||";
  }
  return "?";
}

const char* unop_str(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::LogicalNot: return "!";
    case UnOp::BitNot: return "~";
    case UnOp::Sqrt: return "sqrtf";
    case UnOp::Rsqrt: return "rsqrtf";
    case UnOp::Abs: return "fabsf";
    case UnOp::Exp: return "expf";
    case UnOp::Log: return "logf";
    case UnOp::Sin: return "sinf";
    case UnOp::Cos: return "cosf";
    case UnOp::Floor: return "floorf";
    case UnOp::CastF32: return "(float)";
    case UnOp::CastI32: return "(int)";
  }
  return "?";
}

const char* builtin_str(BuiltinVal b) {
  switch (b) {
    case BuiltinVal::ThreadIdxX: return "threadIdx.x";
    case BuiltinVal::ThreadIdxY: return "threadIdx.y";
    case BuiltinVal::BlockIdxX: return "blockIdx.x";
    case BuiltinVal::BlockIdxY: return "blockIdx.y";
    case BuiltinVal::BlockDimX: return "blockDim.x";
    case BuiltinVal::BlockDimY: return "blockDim.y";
    case BuiltinVal::GridDimX: return "gridDim.x";
    case BuiltinVal::GridDimY: return "gridDim.y";
    case BuiltinVal::ThreadLinear: return "tid";
  }
  return "?";
}

void indent(std::string& out, int n) { out.append(static_cast<std::size_t>(n) * 2, ' '); }

void print_stmts(const StmtList& body, const Kernel& k, std::string& out, int depth);

}  // namespace

std::string print_expr(const ExprPtr& e, const Kernel& k) {
  if (!e) return "<null>";
  switch (e->kind) {
    case ExprKind::Const: return e->constant.to_string();
    case ExprKind::VarRef: return k.vars[e->var].name;
    case ExprKind::ParamRef: return k.params[e->param].name;
    case ExprKind::Builtin: return builtin_str(e->builtin);
    case ExprKind::LoadGlobal: return "mem[" + print_expr(e->a, k) + "]";
    case ExprKind::LoadShared: return "shared[" + print_expr(e->a, k) + "]";
    case ExprKind::Unary: return std::string(unop_str(e->un)) + "(" + print_expr(e->a, k) + ")";
    case ExprKind::Binary: {
      if (e->bin == BinOp::Min || e->bin == BinOp::Max)
        return std::string(binop_str(e->bin)) + "(" + print_expr(e->a, k) + ", " +
               print_expr(e->b, k) + ")";
      return "(" + print_expr(e->a, k) + " " + binop_str(e->bin) + " " + print_expr(e->b, k) + ")";
    }
    case ExprKind::Select:
      return "(" + print_expr(e->a, k) + " ? " + print_expr(e->b, k) + " : " +
             print_expr(e->c, k) + ")";
  }
  return "?";
}

namespace {

void print_stmt(const Stmt& s, const Kernel& k, std::string& out, int depth) {
  indent(out, depth);
  switch (s.kind) {
    case StmtKind::Let:
      out += std::string(dtype_name(k.vars[s.var].type)) + " " + k.vars[s.var].name + " = " +
             print_expr(s.value, k) + ";\n";
      break;
    case StmtKind::Assign:
      out += k.vars[s.var].name + " = " + print_expr(s.value, k) + ";\n";
      break;
    case StmtKind::StoreGlobal:
      out += "mem[" + print_expr(s.addr, k) + "] = " + print_expr(s.value, k) + ";\n";
      break;
    case StmtKind::StoreShared:
      out += "shared[" + print_expr(s.addr, k) + "] = " + print_expr(s.value, k) + ";\n";
      break;
    case StmtKind::AtomicAddGlobal:
      out += "atomicAdd(mem + " + print_expr(s.addr, k) + ", " + print_expr(s.value, k) + ");\n";
      break;
    case StmtKind::For:
      out += "for (" + k.vars[s.var].name + " = " + print_expr(s.init, k) + "; " +
             k.vars[s.var].name + " < " + print_expr(s.limit, k) + "; " + k.vars[s.var].name +
             " += " + print_expr(s.step, k) + ") {\n";
      print_stmts(s.body, k, out, depth + 1);
      indent(out, depth);
      out += "}\n";
      break;
    case StmtKind::While:
      out += "while (" + print_expr(s.value, k) + ") {\n";
      print_stmts(s.body, k, out, depth + 1);
      indent(out, depth);
      out += "}\n";
      break;
    case StmtKind::If:
      out += "if (" + print_expr(s.value, k) + ") {\n";
      print_stmts(s.body, k, out, depth + 1);
      if (!s.else_body.empty()) {
        indent(out, depth);
        out += "} else {\n";
        print_stmts(s.else_body, k, out, depth + 1);
      }
      indent(out, depth);
      out += "}\n";
      break;
    case StmtKind::Barrier:
      out += "__syncthreads();\n";
      break;
    case StmtKind::ChecksumXor:
      out += "chksum ^= bits(" + print_expr(s.value, k) + ");   // Hauberk\n";
      break;
    case StmtKind::ChecksumValidate:
      out += "if (chksum != 0) cb->sdc = 1;   // Hauberk\n";
      break;
    case StmtKind::DupCheck:
      out += "if (" + print_expr(s.value, k) + " != " + k.vars[s.var].name +
             ") cb->sdc = 1;   // Hauberk dup-check\n";
      break;
    case StmtKind::RangeCheck:
      out += "HauberkCheckRange(cb, " + std::to_string(s.detector_id) + ", " +
             print_expr(s.value, k) + ");\n";
      break;
    case StmtKind::EqualCheck:
      out += "HauberkCheckEqual(cb, " + std::to_string(s.detector_id) + ", " +
             print_expr(s.value, k) + ", " + print_expr(s.rhs, k) + ");\n";
      break;
    case StmtKind::ProfileValue:
      out += "HauberkProfile(cb, " + std::to_string(s.detector_id) + ", " +
             print_expr(s.value, k) + ");\n";
      break;
    case StmtKind::CountExec:
      out += "HauberkCountExec(cb, site=" + std::to_string(s.site) + ");\n";
      break;
    case StmtKind::FIHook:
      out += "HauberkFIHook(cb, site=" + std::to_string(s.site) + ", &" +
             (s.var != kInvalidVar ? k.vars[s.var].name : std::string("<none>")) + ");\n";
      break;
  }
}

void print_stmts(const StmtList& body, const Kernel& k, std::string& out, int depth) {
  for (const auto& s : body) print_stmt(*s, k, out, depth);
}

}  // namespace

std::string print_kernel(const Kernel& k) {
  std::string out = "__global__ void " + k.name + "(";
  for (std::size_t i = 0; i < k.params.size(); ++i) {
    if (i) out += ", ";
    out += std::string(dtype_name(k.params[i].type)) + " " + k.params[i].name;
  }
  out += ") {\n";
  print_stmts(k.body, k, out, 1);
  out += "}\n";
  return out;
}

std::string print_loop_dataflow(const Kernel& k, const LoopDataflow& df) {
  std::string out = "dataflow graph of loop " + std::to_string(df.loop_id) + ":\n";
  char buf[256];
  for (VarId v : df.loop_vars) {
    const bool is_out =
        std::count(df.outputs.begin(), df.outputs.end(), v) != 0;
    int ops = 0, loads = 0;
    if (auto it = df.op_nodes.find(v); it != df.op_nodes.end()) ops = it->second;
    if (auto it = df.load_nodes.find(v); it != df.load_nodes.end()) loads = it->second;
    std::string deps;
    if (auto it = df.uses.find(v); it != df.uses.end())
      for (VarId u : it->second) deps += (deps.empty() ? "" : ", ") + k.vars[u].name;
    std::snprintf(buf, sizeof(buf), "  %-14s cbd=%-3d ops=%-3d loads=%-2d %s <- [%s]\n",
                  k.vars[v].name.c_str(), df.cbd(v), ops, loads, is_out ? "OUTPUT" : "      ",
                  deps.c_str());
    out += buf;
  }
  return out;
}

}  // namespace hauberk::kir
