// Threaded-code compiler: DecodedProgram -> ThreadedProgram.
//
// Passes over the position-stable stream:
//
//  1. every slot gets its single-op translation (TOp mirrors DecodedOp
//     value for value, so this is a field copy);
//  2. control-transfer fusion: [Const][Cmp][Jz] / [Cmp][Jz] loop heads and
//     [Const][AddW][Jmp] / [AddW][Jmp] back-edges.  A match *overwrites the
//     head slot only* — the covered slots keep their singles, so jumps into
//     the middle of a fused region and the interpreter's budget/crash
//     delegation both land on ordinary instructions.  Overlap is allowed
//     and harmless for the same reason: a covered slot that itself heads a
//     matching pattern becomes a fused head too, reachable only by jumps.
//  3. straight-line runs: each remaining maximal region with no control
//     transfer, no fused slot and no interior jump target becomes a
//     RunHead (one budget test + one summed charge) followed by naked ops
//     with zero per-op accounting; adjacent pairs inside a run tile into
//     naked fused forms (NkConstBin etc.) to halve their dispatches.
//     Segments of exactly 2-3 ops keep the classic one-dispatch fused
//     forms (ConstBin/LoadBinStore/...) instead, which charge once anyway.
//
// Fused-field layout (the interpreter in gpusim/device.cpp must agree):
//
//   CmpJz_K        [Cmp_K dst,a,b][Jz dst,aux]
//                  dst,a,b = compare; aux = branch target
//   ConstCmpJz_K   [Const c,imm][Cmp_K dst,a',c][Jz dst,aux]
//                  c,imm = folded constant; a = non-constant operand;
//                  t = 1 when the constant is the *left* compare operand
//   ConstAddJmp    [Const c,imm][AddW dst,a,b][Jmp aux]
//   AddJmp         [AddW dst,a,b][Jmp aux]
//   ConstBin_K     [Const c,imm][Bin_K dst,a,b]
//   LoadBinStore_K [LoadG c,a][Bin_K dst,x,y][StoreG b,dst]
//                  a = load address slot; c = load destination;
//                  b = store address slot; aux = x | y << 16
//   BinChkXor_K    [Bin_K dst,a,b][ChkXor c,d]
//   BinDupCmp_K    [Bin_K dst,a,b][DupCmp c,d]
//   ChkXor2        [ChkXor dst,a][ChkXor c,d]
//   RangeCheck2    [RangeCheck aux,a (type t&0xf)][RangeCheck imm,c (type t>>4)]
//
// Naked tile layouts (run interiors; the generic forms chosen from the
// pair-frequency profile of the workload suite):
//
//   NkBinBin_K1_K2   [Bin_K1 dst,a,b][Bin_K2 c,x,y]      aux = x | y << 16
//   NkBinConst_K     [Bin_K dst,a,b][Const c,imm]
//   NkConst2         [Const dst,imm][Const c,aux]
//   NkLoadBin_K      [LoadG dst,a][Bin_K c,x,y]          aux = x | y << 16
//   NkBinLoad_K      [Bin_K dst,a,b][LoadG c,d]          d = address slot
//   NkLoadConst      [LoadG dst,a][Const c,imm]
//   NkConstBinLoad_K [Const dst,imm][Bin_K c,x,y][LoadG b,a]  aux = x | y << 16
//
// Tiles containing a LoadG are crashable: their cost/loop_cost/len fields
// hold the suffix charge *after the load*, so a mid-tile crash refunds
// everything the fast engine would not have billed (ops executed before the
// load inside the tile stay billed, exactly like the reference trace).
//
// Every fused family is crash-free after its up-front checks: the CMP/ALU
// operator lists exclude Div/Mod, LoadBinStore requires the store address
// to be loop-invariant across the region (not written by the covered
// instructions) so both bounds are checkable before any side effect, and
// load/store fusion is only emitted for the FlatGpu arena model.
#include "kir/threaded.hpp"

namespace hauberk::kir {

namespace {

constexpr bool is_bin(DecodedOp op) noexcept {
  return op >= DecodedOp::AddF && op <= DecodedOp::BinGeneric;
}
constexpr bool is_un(DecodedOp op) noexcept {
  return op >= DecodedOp::NegF && op <= DecodedOp::UnGeneric;
}

constexpr TOp cmp_jz_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::CmpJz_##n;
    HAUBERK_TOP_CMP_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp const_cmp_jz_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::ConstCmpJz_##n;
    HAUBERK_TOP_CMP_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp const_bin_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::ConstBin_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp load_bin_store_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::LoadBinStore_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp bin_chkxor_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::BinChkXor_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp bin_dupcmp_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::BinDupCmp_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}

/// The zero-accounting variant executed inside a run; TOp::Invalid when the
/// op can never appear inside one (control transfer, Invalid).
constexpr TOp naked_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::Nk_##n;
    HAUBERK_TOP_NAKED_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_const_bin_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkConstBin_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_bin_chkxor_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkBinChkXor_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_bin_dupcmp_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkBinDupCmp_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_bin_bin_top(DecodedOp k1, DecodedOp k2) noexcept {
#define HAUBERK_TOP_M(a, b) \
  if (k1 == DecodedOp::a && k2 == DecodedOp::b) return TOp::NkBinBin_##a##_##b;
  HAUBERK_TOP_ALU_PAIR_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
  return TOp::Invalid;
}
constexpr TOp naked_bin_const_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkBinConst_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_load_bin_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkLoadBin_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_bin_load_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkBinLoad_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}
constexpr TOp naked_const_bin_load_top(DecodedOp k) noexcept {
  switch (k) {
#define HAUBERK_TOP_M(n) \
  case DecodedOp::n: return TOp::NkConstBinLoad_##n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    default: return TOp::Invalid;
  }
}

/// Ops whose naked handler has a crash exit (and therefore carries the
/// suffix-refund fields).  A run's *first* op must not be one of these: the
/// head slot's cost/loop_cost hold the region sums, leaving no room for
/// refund data.
constexpr bool can_crash(DecodedOp op) noexcept {
  switch (op) {
    case DecodedOp::DivI:
    case DecodedOp::ModI:
    case DecodedOp::DivU:
    case DecodedOp::ModU:
    case DecodedOp::BinGeneric:
    case DecodedOp::LoadG:
    case DecodedOp::StoreG:
    case DecodedOp::LoadS:
    case DecodedOp::StoreS:
    case DecodedOp::AtomicAddF:
    case DecodedOp::AtomicAddI:
      return true;
    default:
      return false;
  }
}

/// Flow-insensitive divergence dataflow over register slots, mirroring the
/// kir divergence analysis at bytecode level: a slot is thread-divergent
/// once it can ever hold a value derived from a thread-local input (thread
/// builtins, memory loads, FI corruption).  Params, constants and block
/// builtins are uniform.  Monotone (divergence only spreads), iterated to
/// fixpoint so loop-carried dependencies converge.
std::vector<bool> divergent_slots(const DecodedProgram& d, std::uint16_t num_slots) {
  std::vector<bool> div(num_slots, false);
  auto mark = [&](std::uint16_t slot, bool v, bool& changed) {
    if (v && slot < num_slots && !div[slot]) {
      div[slot] = true;
      changed = true;
    }
  };
  auto read = [&](std::uint16_t slot) { return slot < num_slots && div[slot]; };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DecodedInstr& in : d.code) {
      const auto op = in.op;
      if (op == DecodedOp::Builtin) {
        const auto b = static_cast<BuiltinVal>(in.aux);
        mark(in.dst,
             b == BuiltinVal::ThreadIdxX || b == BuiltinVal::ThreadIdxY ||
                 b == BuiltinVal::ThreadLinear,
             changed);
      } else if (op == DecodedOp::Mov || is_un(op)) {
        mark(in.dst, read(in.a), changed);
      } else if (is_bin(op)) {
        mark(in.dst, read(in.a) || read(in.b), changed);
      } else if (op == DecodedOp::Select) {
        mark(in.dst,
             read(in.a) || read(in.b) || read(static_cast<std::uint16_t>(in.imm)),
             changed);
      } else if (op == DecodedOp::LoadG || op == DecodedOp::LoadS) {
        // Memory contents are thread-dependent in general; stay conservative.
        mark(in.dst, true, changed);
      } else if (op == DecodedOp::ChkXor) {
        mark(in.dst, read(in.dst) || read(in.a), changed);
      } else if (op == DecodedOp::FIHook) {
        // The injector may corrupt this slot for selected threads only.
        mark(in.a, true, changed);
      }
    }
  }
  return div;
}

}  // namespace

const char* top_name(TOp op) noexcept {
  switch (op) {
#define HAUBERK_TOP_M(n) \
  case TOp::n: return #n;
    HAUBERK_TOP_SINGLE_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
#define HAUBERK_TOP_M(n)                       \
  case TOp::CmpJz_##n: return "CmpJz_" #n;     \
  case TOp::ConstCmpJz_##n: return "ConstCmpJz_" #n;
    HAUBERK_TOP_CMP_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    case TOp::ConstAddJmp: return "ConstAddJmp";
    case TOp::AddJmp: return "AddJmp";
#define HAUBERK_TOP_M(n)                                 \
  case TOp::ConstBin_##n: return "ConstBin_" #n;         \
  case TOp::LoadBinStore_##n: return "LoadBinStore_" #n; \
  case TOp::BinChkXor_##n: return "BinChkXor_" #n;       \
  case TOp::BinDupCmp_##n: return "BinDupCmp_" #n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    case TOp::ChkXor2: return "ChkXor2";
    case TOp::RangeCheck2: return "RangeCheck2";
    case TOp::RunHead: return "RunHead";
#define HAUBERK_TOP_M(n) \
  case TOp::Nk_##n: return "Nk_" #n;
    HAUBERK_TOP_NAKED_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
#define HAUBERK_TOP_M(n)                               \
  case TOp::NkConstBin_##n: return "NkConstBin_" #n;   \
  case TOp::NkBinChkXor_##n: return "NkBinChkXor_" #n; \
  case TOp::NkBinDupCmp_##n: return "NkBinDupCmp_" #n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    case TOp::NkChkXor2: return "NkChkXor2";
    case TOp::NkRangeCheck2: return "NkRangeCheck2";
#define HAUBERK_TOP_M(a, b) \
  case TOp::NkBinBin_##a##_##b: return "NkBinBin_" #a "_" #b;
    HAUBERK_TOP_ALU_PAIR_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
#define HAUBERK_TOP_M(n)                                       \
  case TOp::NkBinConst_##n: return "NkBinConst_" #n;           \
  case TOp::NkLoadBin_##n: return "NkLoadBin_" #n;             \
  case TOp::NkBinLoad_##n: return "NkBinLoad_" #n;             \
  case TOp::NkConstBinLoad_##n: return "NkConstBinLoad_" #n;
    HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_M)
#undef HAUBERK_TOP_M
    case TOp::NkConst2: return "NkConst2";
    case TOp::NkLoadConst: return "NkLoadConst";
    case TOp::Count_: break;
  }
  return "?";
}

ThreadedProgram compile_threaded(const DecodedProgram& d, std::uint16_t num_slots,
                                 bool flat_global_memory, bool form_runs) {
  ThreadedProgram out;
  const std::size_t n = d.code.size();
  out.code.resize(n);

  // Pass 1: singles.  TOp mirrors DecodedOp, so this is a field copy.
  for (std::size_t pc = 0; pc < n; ++pc) {
    const DecodedInstr& in = d.code[pc];
    ThreadedInstr& ti = out.code[pc];
    ti.op = static_cast<std::uint16_t>(threaded_single_op(in.op));
    ti.t = in.t;
    ti.dst = in.dst;
    ti.a = in.a;
    ti.b = in.b;
    ti.aux = in.aux;
    ti.imm = in.imm;
    ti.cost = in.cost;
    ti.loop_cost = in.loop_cost;
    ti.len = 1;
    if (in.op == DecodedOp::Barrier) out.has_barriers = true;
  }

  // Divergence stats (branch uniformity) for inspect/tests.
  const std::vector<bool> div = divergent_slots(d, num_slots);
  for (const DecodedInstr& in : d.code) {
    if (in.op != DecodedOp::Jz) continue;
    if (in.a < num_slots && div[in.a])
      ++out.divergent_branches;
    else
      ++out.uniform_branches;
  }

  // Pass 2: fusion.  Each head is rewritten in place; covered slots keep
  // their singles.  `emit` pre-folds the region's cycle charge and tracks
  // slot roles so the run pass only tiles untouched straight-line code.
  std::vector<std::uint8_t> role(n, 0);  // 1 fused head, 2 covered, 3 run head, 4 run interior
  auto emit = [&](std::size_t pc, TOp op, std::uint8_t len, FuseFamily fam,
                  ThreadedInstr ti) {
    std::uint32_t cost = 0, loop = 0;
    for (std::size_t i = 0; i < len; ++i) {
      cost += d.code[pc + i].cost;
      loop += d.code[pc + i].loop_cost;
    }
    ti.op = static_cast<std::uint16_t>(op);
    ti.len = len;
    ti.cost = cost;
    ti.loop_cost = loop;
    out.code[pc] = ti;
    role[pc] = 1;
    for (std::size_t i = 1; i < len; ++i)
      if (role[pc + i] == 0) role[pc + i] = 2;
    ++out.fuse_counts[static_cast<std::size_t>(fam)];
    ++out.fused_heads;
    out.fused_covered += len;
  };

  // [Const][Cmp][Jz] loop heads and [Const][AddW][Jmp] back-edges.
  auto try_control3 = [&](std::size_t pc) -> bool {
    if (pc + 2 >= n) return false;
    const DecodedInstr& i0 = d.code[pc];
    const DecodedInstr& i1 = d.code[pc + 1];
    const DecodedInstr& i2 = d.code[pc + 2];
    if (i0.op != DecodedOp::Const) return false;
    if (const TOp top = const_cmp_jz_top(i1.op);
        top != TOp::Invalid && i2.op == DecodedOp::Jz && i2.a == i1.dst &&
        (i1.a == i0.dst || i1.b == i0.dst)) {
      ThreadedInstr ti;
      ti.c = i0.dst;
      ti.imm = i0.imm;
      ti.dst = i1.dst;
      // The constant operand is folded; `a` is the other one.  When both
      // operands are the constant slot, either choice reads the freshly
      // written constant — keep t = 0.
      if (i1.b == i0.dst) {
        ti.a = i1.a;
        ti.t = 0;  // CMP(regs[a], const)
      } else {
        ti.a = i1.b;
        ti.t = 1;  // CMP(const, regs[a])
      }
      ti.aux = i2.aux;
      emit(pc, top, 3, FuseFamily::ConstCmpJz, ti);
      return true;
    }
    if (i1.op == DecodedOp::AddW && i2.op == DecodedOp::Jmp &&
        (i1.a == i0.dst || i1.b == i0.dst)) {
      ThreadedInstr ti;
      ti.c = i0.dst;
      ti.imm = i0.imm;
      ti.dst = i1.dst;
      ti.a = i1.a;
      ti.b = i1.b;
      ti.aux = i2.aux;
      emit(pc, TOp::ConstAddJmp, 3, FuseFamily::ConstAddJmp, ti);
      return true;
    }
    return false;
  };

  // [Cmp][Jz] and [AddW][Jmp] without a reloaded constant.
  auto try_control2 = [&](std::size_t pc) -> bool {
    if (pc + 1 >= n) return false;
    const DecodedInstr& i0 = d.code[pc];
    const DecodedInstr& i1 = d.code[pc + 1];
    if (const TOp top = cmp_jz_top(i0.op);
        top != TOp::Invalid && i1.op == DecodedOp::Jz && i1.a == i0.dst) {
      ThreadedInstr ti;
      ti.dst = i0.dst;
      ti.a = i0.a;
      ti.b = i0.b;
      ti.aux = i1.aux;
      emit(pc, top, 2, FuseFamily::CmpJz, ti);
      return true;
    }
    if (i0.op == DecodedOp::AddW && i1.op == DecodedOp::Jmp) {
      ThreadedInstr ti;
      ti.dst = i0.dst;
      ti.a = i0.a;
      ti.b = i0.b;
      ti.aux = i1.aux;
      emit(pc, TOp::AddJmp, 2, FuseFamily::AddJmp, ti);
      return true;
    }
    return false;
  };

  // [LoadG][Bin][StoreG]: global read-modify-write with a pre-computed
  // store address (FlatGpu only — bounds checkable before any write).
  auto try_lbs = [&](std::size_t pc) -> bool {
    if (pc + 2 >= n || !flat_global_memory) return false;
    const DecodedInstr& i0 = d.code[pc];
    const DecodedInstr& i1 = d.code[pc + 1];
    const DecodedInstr& i2 = d.code[pc + 2];
    if (i0.op != DecodedOp::LoadG) return false;
    if (const TOp top = load_bin_store_top(i1.op);
        top != TOp::Invalid && i2.op == DecodedOp::StoreG && i2.b == i1.dst &&
        i2.a != i0.dst && i2.a != i1.dst) {
      ThreadedInstr ti;
      ti.a = i0.a;
      ti.c = i0.dst;
      ti.dst = i1.dst;
      ti.b = i2.a;
      ti.aux = static_cast<std::uint32_t>(i1.a) |
               (static_cast<std::uint32_t>(i1.b) << 16);
      emit(pc, top, 3, FuseFamily::LoadBinStore, ti);
      return true;
    }
    return false;
  };

  // Straight-line pairs: reloaded-constant arithmetic and the Hauberk
  // detector tails (accumulator update + checksum fold, duplicated compute
  // + compare, adjacent checksum folds, post-loop range guards).
  auto try_pair = [&](std::size_t pc) -> bool {
    if (pc + 1 >= n) return false;
    const DecodedInstr& i0 = d.code[pc];
    const DecodedInstr& i1 = d.code[pc + 1];
    if (i0.op == DecodedOp::Const) {
      if (const TOp top = const_bin_top(i1.op);
          top != TOp::Invalid && (i1.a == i0.dst || i1.b == i0.dst)) {
        ThreadedInstr ti;
        ti.c = i0.dst;
        ti.imm = i0.imm;
        ti.dst = i1.dst;
        ti.a = i1.a;
        ti.b = i1.b;
        emit(pc, top, 2, FuseFamily::ConstBin, ti);
        return true;
      }
    }
    if (const TOp top = bin_chkxor_top(i0.op);
        top != TOp::Invalid && i1.op == DecodedOp::ChkXor) {
      ThreadedInstr ti;
      ti.dst = i0.dst;
      ti.a = i0.a;
      ti.b = i0.b;
      ti.c = i1.dst;
      ti.d = i1.a;
      emit(pc, top, 2, FuseFamily::BinChkXor, ti);
      return true;
    }
    if (const TOp top = bin_dupcmp_top(i0.op);
        top != TOp::Invalid && i1.op == DecodedOp::DupCmp) {
      ThreadedInstr ti;
      ti.dst = i0.dst;
      ti.a = i0.a;
      ti.b = i0.b;
      ti.c = i1.a;
      ti.d = i1.b;
      emit(pc, top, 2, FuseFamily::BinDupCmp, ti);
      return true;
    }
    if (i0.op == DecodedOp::ChkXor && i1.op == DecodedOp::ChkXor) {
      ThreadedInstr ti;
      ti.dst = i0.dst;
      ti.a = i0.a;
      ti.c = i1.dst;
      ti.d = i1.a;
      emit(pc, TOp::ChkXor2, 2, FuseFamily::ChkXor2, ti);
      return true;
    }
    if (i0.op == DecodedOp::RangeCheck && i1.op == DecodedOp::RangeCheck) {
      ThreadedInstr ti;
      ti.a = i0.a;
      ti.c = i1.a;
      ti.aux = i0.aux;
      ti.imm = i1.aux;
      ti.t = static_cast<std::uint8_t>((i0.t & 0xf) | (i1.t << 4));
      emit(pc, TOp::RangeCheck2, 2, FuseFamily::RangeCheck2, ti);
      return true;
    }
    return false;
  };

  if (!form_runs) {
    // Flat fusion only: every pc independently considered as a head, in the
    // order the pattern lists above document.
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (try_control3(pc) || try_lbs(pc) || try_control2(pc) || try_pair(pc)) continue;
    }
    return out;
  }

  // Run mode.  Control-transfer fusions go first — they terminate straight
  // lines and fold the per-iteration branch — then every remaining maximal
  // straight-line region becomes a run.
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (try_control3(pc)) continue;
    try_control2(pc);
  }

  // Jump-target set from the decoded stream.  Fused heads branch to the
  // same targets their source Jz/Jmp did, so this is complete; a run's
  // interior must contain none of them (naked slots are only reachable by
  // falling through the head's budget check and charge).
  std::vector<bool> is_target(n, false);
  for (const DecodedInstr& in : d.code)
    if ((in.op == DecodedOp::Jmp || in.op == DecodedOp::Jz) && in.aux < n)
      is_target[in.aux] = true;

  // Refund fields for a tile whose LoadG is the source op at `lpos`: the
  // suffix strictly after the load, so T_NK_CRASH bills exactly the prefix
  // up to and including the load (ops the tile executed before the load
  // stay billed, like the fast engine's per-op trace).
  auto set_refund = [&](ThreadedInstr& ti, std::size_t lpos, std::size_t e) {
    std::uint32_t sc = 0, sl = 0;
    for (std::size_t i = lpos + 1; i < e; ++i) {
      sc += d.code[i].cost;
      sl += d.code[i].loop_cost;
    }
    ti.cost = sc;
    ti.loop_cost = sl;
    ti.len = static_cast<std::uint8_t>(e - lpos - 1);
  };
  auto pack2 = [](std::uint16_t x, std::uint16_t y) {
    return static_cast<std::uint32_t>(x) | (static_cast<std::uint32_t>(y) << 16);
  };

  // Widest naked tile at `pos` (region limit `e`).  Head tiles share the
  // RunHead's slot, so they must be crash-free (cost/loop_cost/len carry
  // the region sums) and must not use the d field (the dispatch target).
  // Returns the tile length (2-3) with `ti` filled, or 0 for no tile.
  auto match_tile = [&](std::size_t pos, std::size_t e, bool at_head,
                        ThreadedInstr& ti) -> std::size_t {
    if (pos + 1 >= e) return 0;
    const DecodedInstr& i0 = d.code[pos];
    const DecodedInstr& i1 = d.code[pos + 1];
    // The 3-op addressing idiom: reloaded offset, address arithmetic, load.
    if (!at_head && pos + 2 < e && i0.op == DecodedOp::Const &&
        d.code[pos + 2].op == DecodedOp::LoadG) {
      if (const TOp p = naked_const_bin_load_top(i1.op); p != TOp::Invalid) {
        const DecodedInstr& i2 = d.code[pos + 2];
        ti.op = static_cast<std::uint16_t>(p);
        ti.dst = i0.dst;
        ti.imm = i0.imm;
        ti.c = i1.dst;
        ti.aux = pack2(i1.a, i1.b);
        ti.b = i2.dst;
        ti.a = i2.a;
        set_refund(ti, pos + 2, e);
        return 3;
      }
    }
    if (i0.op == DecodedOp::Const) {
      // Unconditional inside runs: the handler is the exact two-op
      // composition whether or not the second op reads the constant.
      if (const TOp p = naked_const_bin_top(i1.op); p != TOp::Invalid) {
        ti.op = static_cast<std::uint16_t>(p);
        ti.c = i0.dst;
        ti.imm = i0.imm;
        ti.dst = i1.dst;
        ti.a = i1.a;
        ti.b = i1.b;
        return 2;
      }
      if (i1.op == DecodedOp::Const) {
        ti.op = static_cast<std::uint16_t>(TOp::NkConst2);
        ti.dst = i0.dst;
        ti.imm = i0.imm;
        ti.c = i1.dst;
        ti.aux = i1.imm;
        return 2;
      }
    }
    if (!at_head) {
      if (const TOp p = naked_bin_chkxor_top(i0.op);
          p != TOp::Invalid && i1.op == DecodedOp::ChkXor) {
        ti.op = static_cast<std::uint16_t>(p);
        ti.dst = i0.dst;
        ti.a = i0.a;
        ti.b = i0.b;
        ti.c = i1.dst;
        ti.d = i1.a;
        return 2;
      }
      if (const TOp p = naked_bin_dupcmp_top(i0.op);
          p != TOp::Invalid && i1.op == DecodedOp::DupCmp) {
        ti.op = static_cast<std::uint16_t>(p);
        ti.dst = i0.dst;
        ti.a = i0.a;
        ti.b = i0.b;
        ti.c = i1.a;
        ti.d = i1.b;
        return 2;
      }
    }
    if (const TOp p = naked_bin_bin_top(i0.op, i1.op); p != TOp::Invalid) {
      ti.op = static_cast<std::uint16_t>(p);
      ti.dst = i0.dst;
      ti.a = i0.a;
      ti.b = i0.b;
      ti.c = i1.dst;
      ti.aux = pack2(i1.a, i1.b);
      return 2;
    }
    if (i1.op == DecodedOp::Const) {
      if (const TOp p = naked_bin_const_top(i0.op); p != TOp::Invalid) {
        ti.op = static_cast<std::uint16_t>(p);
        ti.dst = i0.dst;
        ti.a = i0.a;
        ti.b = i0.b;
        ti.c = i1.dst;
        ti.imm = i1.imm;
        return 2;
      }
    }
    if (!at_head) {
      if (i0.op == DecodedOp::LoadG) {
        if (const TOp p = naked_load_bin_top(i1.op); p != TOp::Invalid) {
          ti.op = static_cast<std::uint16_t>(p);
          ti.dst = i0.dst;
          ti.a = i0.a;
          ti.c = i1.dst;
          ti.aux = pack2(i1.a, i1.b);
          set_refund(ti, pos, e);
          return 2;
        }
        if (i1.op == DecodedOp::Const) {
          ti.op = static_cast<std::uint16_t>(TOp::NkLoadConst);
          ti.dst = i0.dst;
          ti.a = i0.a;
          ti.c = i1.dst;
          ti.imm = i1.imm;
          set_refund(ti, pos, e);
          return 2;
        }
      }
      if (i1.op == DecodedOp::LoadG) {
        if (const TOp p = naked_bin_load_top(i0.op); p != TOp::Invalid) {
          ti.op = static_cast<std::uint16_t>(p);
          ti.dst = i0.dst;
          ti.a = i0.a;
          ti.b = i0.b;
          ti.c = i1.dst;
          ti.d = i1.a;
          set_refund(ti, pos + 1, e);
          return 2;
        }
      }
      if (i0.op == DecodedOp::ChkXor && i1.op == DecodedOp::ChkXor) {
        ti.op = static_cast<std::uint16_t>(TOp::NkChkXor2);
        ti.dst = i0.dst;
        ti.a = i0.a;
        ti.c = i1.dst;
        ti.d = i1.a;
        return 2;
      }
      if (i0.op == DecodedOp::RangeCheck && i1.op == DecodedOp::RangeCheck) {
        ti.op = static_cast<std::uint16_t>(TOp::NkRangeCheck2);
        ti.a = i0.a;
        ti.c = i1.a;
        ti.aux = i0.aux;
        ti.imm = i1.aux;
        ti.t = static_cast<std::uint8_t>((i0.t & 0xf) | (i1.t << 4));
        return 2;
      }
    }
    return 0;
  };

  auto emit_run = [&](std::size_t s, std::size_t e) {
    const std::size_t len = e - s;
    std::uint32_t cost = 0, loop = 0;
    for (std::size_t i = s; i < e; ++i) {
      cost += d.code[i].cost;
      loop += d.code[i].loop_cost;
    }
    // Head: RunHead dispatching the first tile (or the first op's naked
    // single) through `d`.  The tile's operand fields share the head slot;
    // len/cost/loop_cost carry the region sums.
    ThreadedInstr ht;
    std::size_t hl = match_tile(s, e, /*at_head=*/true, ht);
    ThreadedInstr& h = out.code[s];
    if (hl == 0) {
      hl = 1;
      h.d = static_cast<std::uint16_t>(naked_top(d.code[s].op));
    } else {
      const std::uint16_t tile = ht.op;
      h = ht;
      h.d = tile;
    }
    h.op = static_cast<std::uint16_t>(TOp::RunHead);
    h.len = static_cast<std::uint8_t>(len);
    h.cost = cost;
    h.loop_cost = loop;
    role[s] = 3;
    for (std::size_t i = s + 1; i < s + hl; ++i) role[i] = 4;

    // Interior: greedy naked tiling, naked singles elsewhere.
    std::size_t pos = s + hl;
    while (pos < e) {
      ThreadedInstr ti;
      if (const std::size_t tl = match_tile(pos, e, /*at_head=*/false, ti); tl != 0) {
        out.code[pos] = ti;
        for (std::size_t i = pos; i < pos + tl; ++i) role[i] = 4;
        pos += tl;
        continue;
      }
      // Naked single: opcode rewrite in place.  Crashable ops repurpose
      // cost/loop_cost/len as the *suffix* charge to refund on crash, so
      // the launch bills exactly the prefix up to and including the
      // crashing op — the fast engine's charge-to-crash semantics.
      ThreadedInstr& nt = out.code[pos];
      nt.op = static_cast<std::uint16_t>(naked_top(d.code[pos].op));
      if (can_crash(d.code[pos].op)) set_refund(nt, pos, e);
      role[pos] = 4;
      ++pos;
    }
    ++out.run_heads;
    out.run_covered += static_cast<std::uint32_t>(len);
  };

  std::size_t s = 0;
  while (s < n) {
    if (role[s] != 0 || naked_top(d.code[s].op) == TOp::Invalid) {
      ++s;
      continue;
    }
    std::size_t e = s + 1;
    while (e < n && e - s < 255 && role[e] == 0 && !is_target[e] &&
           naked_top(d.code[e].op) != TOp::Invalid)
      ++e;
    // Exact-size short segments keep the tighter one-dispatch fused forms.
    if (e - s == 3 && try_lbs(s)) {
      s = e;
      continue;
    }
    if (e - s == 2 && try_pair(s)) {
      s = e;
      continue;
    }
    // The head op must be a non-crashing single (the head slot's
    // cost/loop_cost carry the region sums, leaving no room for refund
    // data); leading crashable ops stay accounted singles.
    std::size_t rs = s;
    while (rs < e && can_crash(d.code[rs].op)) ++rs;
    if (e - rs >= 2) emit_run(rs, e);
    s = e;
  }
  return out;
}

}  // namespace hauberk::kir
