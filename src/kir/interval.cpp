// Interval abstract interpretation: see interval.hpp for the design notes.
#include "kir/interval.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace hauberk::kir {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kI32Min = -2147483648.0;
constexpr double kI32Max = 2147483647.0;
constexpr double kPtrMax = 4294967295.0;

[[nodiscard]] ValInterval top_f32() noexcept { return {-kInf, kInf}; }
[[nodiscard]] ValInterval top_i32() noexcept { return {kI32Min, kI32Max}; }
[[nodiscard]] ValInterval top_ptr() noexcept { return {0.0, kPtrMax}; }

/// Invariant: a *top* F32 interval is the only one that may contain NaN, so
/// every transfer that can produce NaN from non-NaN inputs must return top.
[[nodiscard]] bool is_top(const ValInterval& v, DType t) noexcept {
  return v == ValInterval::top_for(t);
}

/// Round `lo`/`hi` outward to the nearest representable float, so values the
/// simulated GPU computes in f32 cannot escape an interval derived from
/// double-precision corner math.
[[nodiscard]] ValInterval inflate_f32(ValInterval v) noexcept {
  if (v.is_empty()) return v;
  if (std::isfinite(v.lo)) v.lo = std::nextafterf(static_cast<float>(v.lo), -kInf);
  if (std::isfinite(v.hi)) v.hi = std::nextafterf(static_cast<float>(v.hi), kInf);
  return v;
}

[[nodiscard]] std::int64_t gcd_i64(std::int64_t a, std::int64_t b) noexcept {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

[[nodiscard]] bool integral(double v) noexcept {
  return std::isfinite(v) && v == std::floor(v);
}

}  // namespace

ValInterval ValInterval::top_for(DType t) noexcept {
  switch (t) {
    case DType::F32: return top_f32();
    case DType::I32: return top_i32();
    case DType::PTR: return top_ptr();
  }
  return top_f32();
}

bool ValInterval::finite() const noexcept {
  return !is_empty() && std::isfinite(lo) && std::isfinite(hi);
}

std::string ValInterval::to_string() const {
  if (is_empty()) return "[]";
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%g, %g]", lo, hi);
  return buf;
}

ValInterval join(const ValInterval& a, const ValInterval& b) noexcept {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

ValInterval meet(const ValInterval& a, const ValInterval& b) noexcept {
  if (a.is_empty() || b.is_empty()) return ValInterval::empty();
  const ValInterval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return m.is_empty() ? ValInterval::empty() : m;
}

ValInterval widen(const ValInterval& prev, const ValInterval& next, DType t) noexcept {
  if (prev.is_empty()) return next;
  if (next.is_empty()) return prev;
  const ValInterval top = ValInterval::top_for(t);
  ValInterval w = join(prev, next);
  if (next.lo < prev.lo) w.lo = top.lo;
  if (next.hi > prev.hi) w.hi = top.hi;
  return w;
}

std::uint64_t IntervalEnv::digest() const noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(block_x);
  mix(block_y);
  mix(grid_x);
  mix(grid_y);
  mix(shared_words);
  mix(global_words);
  mix(params.size());
  for (const auto& p : params) {
    mix(std::bit_cast<std::uint64_t>(p.lo));
    mix(std::bit_cast<std::uint64_t>(p.hi));
  }
  return h;
}

const char* access_kind_name(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::LoadGlobal: return "load.g";
    case AccessKind::StoreGlobal: return "store.g";
    case AccessKind::AtomicAddGlobal: return "atomic.g";
    case AccessKind::LoadShared: return "load.s";
    case AccessKind::StoreShared: return "store.s";
    case AccessKind::Barrier: return "barrier";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// The interpreter
// ---------------------------------------------------------------------------

namespace {

/// Affine-in-thread-index form of an I32/PTR expression: thread-symbol
/// coefficients + per-For-iterator coefficients + a thread-uniform base
/// interval.  `affine == false` is the lattice top (not linearizable).
struct AffineForm {
  bool affine = false;
  double tx = 0, ty = 0, tl = 0;
  std::map<VarId, double> iters;
  ValInterval base = ValInterval::point(0);

  [[nodiscard]] bool has_syms() const noexcept {
    return tx != 0 || ty != 0 || tl != 0 || !iters.empty();
  }
  friend bool operator==(const AffineForm& a, const AffineForm& b) noexcept {
    if (a.affine != b.affine) return false;
    if (!a.affine) return true;
    return a.tx == b.tx && a.ty == b.ty && a.tl == b.tl && a.iters == b.iters &&
           a.base == b.base;
  }
};

[[nodiscard]] AffineForm af_non() noexcept { return {}; }
[[nodiscard]] AffineForm af_base(const ValInterval& iv) noexcept {
  AffineForm f;
  f.affine = true;
  f.base = iv;
  return f;
}

[[nodiscard]] AffineForm af_join(const AffineForm& a, const AffineForm& b) noexcept {
  if (!a.affine || !b.affine) return af_non();
  if (a.tx == b.tx && a.ty == b.ty && a.tl == b.tl && a.iters == b.iters) {
    AffineForm r = a;
    r.base = join(a.base, b.base);
    return r;
  }
  return af_non();
}

[[nodiscard]] AffineForm af_add(const AffineForm& a, const AffineForm& b, bool sub) noexcept {
  if (!a.affine || !b.affine) return af_non();
  AffineForm r = a;
  const double s = sub ? -1.0 : 1.0;
  r.tx += s * b.tx;
  r.ty += s * b.ty;
  r.tl += s * b.tl;
  for (const auto& [v, c] : b.iters) {
    r.iters[v] += s * c;
    if (r.iters[v] == 0) r.iters.erase(v);
  }
  if (b.base.is_empty() || a.base.is_empty()) return af_non();
  r.base = sub ? ValInterval{a.base.lo - b.base.hi, a.base.hi - b.base.lo}
               : ValInterval{a.base.lo + b.base.lo, a.base.hi + b.base.hi};
  return r;
}

[[nodiscard]] AffineForm af_scale(const AffineForm& a, double k) noexcept {
  if (!a.affine) return af_non();
  AffineForm r = a;
  r.tx *= k;
  r.ty *= k;
  r.tl *= k;
  for (auto& [v, c] : r.iters) c *= k;
  std::erase_if(r.iters, [](const auto& p) { return p.second == 0; });
  if (k >= 0)
    r.base = {a.base.lo * k, a.base.hi * k};
  else
    r.base = {a.base.hi * k, a.base.lo * k};
  return r;
}

/// Abstract value of one expression.
struct AbsVal {
  ValInterval iv{};
  bool div = false;  ///< may differ across threads
  AffineForm af{};
};

/// Per-program-point abstract state.
struct AbsEnv {
  std::vector<ValInterval> val;
  std::vector<std::uint8_t> div;
  std::vector<AffineForm> af;

  friend bool operator==(const AbsEnv& a, const AbsEnv& b) noexcept {
    return a.val == b.val && a.div == b.div && a.af == b.af;
  }
};

}  // namespace

class IntervalInterp {
 public:
  IntervalInterp(const Kernel& k, IntervalAnalysis& out) : k_(k), out_(out) {}

  void run() {
    enumerate_stmts(k_.body, /*depth=*/0);
    AbsEnv env;
    env.val.assign(k_.vars.size(), ValInterval::empty());
    env.div.assign(k_.vars.size(), 0);
    env.af.assign(k_.vars.size(), af_non());
    exec_stmts(k_.body, std::move(env), /*div_ctx=*/false);
    flatten();
  }

 private:
  // --- enumeration: assign every access/barrier its lowering-order ordinal --
  using PhaseKey = std::pair<const Stmt*, int>;

  void add_access(AccessKind kind, const Stmt* s, int phase, int depth) {
    AccessFact f;
    f.kind = kind;
    f.stmt = s;
    f.ordinal = static_cast<int>(out_.accesses_.size());
    f.epoch = barrier_count_;
    f.in_loop = depth > 0;
    if (kind == AccessKind::Barrier) ++barrier_count_;
    sites_[{s, phase}].push_back(f.ordinal);
    out_.accesses_.push_back(std::move(f));
  }

  void enumerate_expr(const ExprPtr& e, const Stmt* s, int phase, int depth) {
    if (!e) return;
    enumerate_expr(e->a, s, phase, depth);
    enumerate_expr(e->b, s, phase, depth);
    enumerate_expr(e->c, s, phase, depth);
    if (e->kind == ExprKind::LoadGlobal) add_access(AccessKind::LoadGlobal, s, phase, depth);
    if (e->kind == ExprKind::LoadShared) add_access(AccessKind::LoadShared, s, phase, depth);
  }

  void enumerate_stmts(const StmtList& body, int depth) {
    for (const auto& s : body) enumerate_stmt(s, depth);
  }

  // Mirrors lower.cpp exactly: pre-order expression lowering, For emitting
  // init / limit / body / step, stores emitting addr, value, then the store.
  void enumerate_stmt(const StmtPtr& sp, int depth) {
    const Stmt* s = sp.get();
    switch (s->kind) {
      case StmtKind::Let:
      case StmtKind::Assign:
      case StmtKind::ChecksumXor:
      case StmtKind::DupCheck:
      case StmtKind::RangeCheck:
      case StmtKind::ProfileValue:
        enumerate_expr(s->value, s, 0, depth);
        break;
      case StmtKind::EqualCheck:
        enumerate_expr(s->value, s, 0, depth);
        enumerate_expr(s->rhs, s, 0, depth);
        break;
      case StmtKind::StoreGlobal:
      case StmtKind::StoreShared:
      case StmtKind::AtomicAddGlobal:
        enumerate_expr(s->addr, s, 0, depth);
        enumerate_expr(s->value, s, 0, depth);
        add_access(s->kind == StmtKind::StoreGlobal      ? AccessKind::StoreGlobal
                   : s->kind == StmtKind::StoreShared    ? AccessKind::StoreShared
                                                         : AccessKind::AtomicAddGlobal,
                   s, 0, depth);
        break;
      case StmtKind::Barrier:
        add_access(AccessKind::Barrier, s, 0, depth);
        break;
      case StmtKind::For:
        enumerate_expr(s->init, s, 0, depth);
        enumerate_expr(s->limit, s, 1, depth);
        enumerate_stmts(s->body, depth + 1);
        enumerate_expr(s->step, s, 2, depth);
        break;
      case StmtKind::While:
        enumerate_expr(s->value, s, 0, depth);
        enumerate_stmts(s->body, depth + 1);
        break;
      case StmtKind::If:
        enumerate_expr(s->value, s, 0, depth);
        enumerate_stmts(s->body, depth);
        enumerate_stmts(s->else_body, depth);
        break;
      case StmtKind::ChecksumValidate:
      case StmtKind::CountExec:
      case StmtKind::FIHook:
        break;
    }
  }

  // --- abstract execution ---------------------------------------------------

  struct PhaseCursor {
    const std::vector<int>* list = nullptr;
    std::size_t pos = 0;
  };

  void begin_phase(const Stmt* s, int phase) {
    const auto it = sites_.find({s, phase});
    cursor_.list = it == sites_.end() ? nullptr : &it->second;
    cursor_.pos = 0;
  }

  AccessFact& consume(AccessKind expect) {
    assert(cursor_.list && cursor_.pos < cursor_.list->size() &&
           "abstract walk out of sync with access enumeration");
    AccessFact& f = out_.accesses_[static_cast<std::size_t>((*cursor_.list)[cursor_.pos++])];
    assert(f.kind == expect);
    (void)expect;
    return f;
  }

  void record_load(AccessKind kind, const ValInterval& addr) {
    if (!record_) return;
    AccessFact& f = consume(kind);
    f.reached = true;
    f.addr = join(f.addr, addr);
    f.divergent_control = f.divergent_control || cur_div_;
  }

  void record_store(AccessKind kind, const AbsVal& addr, const AbsEnv& env) {
    AccessFact& f = consume(kind);
    f.reached = true;
    f.addr = join(f.addr, addr.iv);
    f.divergent_control = f.divergent_control || cur_div_;
    if (kind == AccessKind::StoreShared) record_footprint(f.ordinal, addr, env);
  }

  void record_footprint(int ordinal, const AbsVal& addr, const AbsEnv& env) {
    SharedStoreFootprint fp;
    fp.access = ordinal;
    AffineForm af = addr.af;
    if (af.affine && !af.has_syms() && addr.div) af = af_non();
    if (af.affine) {
      fp.affine = true;
      fp.a = af.tx + af.tl;
      fp.b = af.ty + af.tl * static_cast<double>(out_.env_.block_x);
      fp.base = af.base;
      double stride_gcd = 0, bound = 0;
      for (const auto& [v, c] : af.iters) {
        const auto it = iter_step_.find(v);
        const double st = it == iter_step_.end() ? -1.0 : it->second;
        const ValInterval& ivv = env.val[v];
        const double term_stride = std::abs(c) * st;
        if (st <= 0 || !ivv.finite() || !integral(term_stride) || term_stride == 0) {
          fp.affine = false;
          break;
        }
        const double steps = std::floor(ivv.width() / st + 1e-9);
        stride_gcd = static_cast<double>(
            gcd_i64(static_cast<std::int64_t>(stride_gcd),
                    static_cast<std::int64_t>(term_stride)));
        bound += term_stride * steps;
      }
      if (fp.affine) {
        fp.iter_stride = stride_gcd;
        fp.iter_bound = bound;
      }
      if (fp.affine && (!integral(fp.a) || !integral(fp.b) || !fp.base.finite()))
        fp.affine = false;
    }
    auto [it, inserted] = footprints_.try_emplace(ordinal, fp);
    if (inserted) return;
    SharedStoreFootprint& ex = it->second;
    if (!ex.affine || !fp.affine || ex.a != fp.a || ex.b != fp.b) {
      ex.affine = false;
      return;
    }
    ex.base = join(ex.base, fp.base);
    ex.iter_stride = static_cast<double>(
        gcd_i64(static_cast<std::int64_t>(ex.iter_stride),
                static_cast<std::int64_t>(fp.iter_stride)));
    ex.iter_bound = std::max(ex.iter_bound, fp.iter_bound);
  }

  // --- expression evaluation ------------------------------------------------

  AbsVal eval(const ExprPtr& e, AbsEnv& env) {
    switch (e->kind) {
      case ExprKind::Const: {
        const double v = e->constant.as_double();
        return {ValInterval::point(v), false, af_base(ValInterval::point(v))};
      }
      case ExprKind::VarRef: {
        ValInterval iv = env.val[e->var];
        if (iv.is_empty()) iv = ValInterval::top_for(e->type);
        AbsVal r{iv, env.div[e->var] != 0, env.af[e->var]};
        if (r.af.affine && !r.af.has_syms()) {
          if (r.div)
            r.af = af_non();
          else
            r.af.base = iv;  // keep the uniform base as tight as the interval
        }
        return r;
      }
      case ExprKind::ParamRef: {
        ValInterval iv = e->param < out_.env_.params.size() &&
                                 !out_.env_.params[e->param].is_empty()
                             ? out_.env_.params[e->param]
                             : ValInterval::top_for(e->type);
        return {iv, false, af_base(iv)};
      }
      case ExprKind::Builtin: return eval_builtin(e->builtin);
      case ExprKind::LoadGlobal:
      case ExprKind::LoadShared: {
        const AbsVal a = eval(e->a, env);
        record_load(e->kind == ExprKind::LoadGlobal ? AccessKind::LoadGlobal
                                                    : AccessKind::LoadShared,
                    a.iv);
        // A uniform address yields a uniform value (all threads read the same
        // word); a divergent address yields a divergent value.
        return {ValInterval::top_for(e->type), a.div, af_non()};
      }
      case ExprKind::Unary: return eval_unary(e, env);
      case ExprKind::Binary: return eval_binary(e, env);
      case ExprKind::Select: {
        const AbsVal c = eval(e->a, env);
        const AbsVal t = eval(e->b, env);
        const AbsVal f = eval(e->c, env);
        const bool def_true = !c.iv.is_empty() && !c.iv.contains(0.0);
        const bool def_false = c.iv == ValInterval::point(0.0);
        AbsVal r;
        if (def_true)
          r = t;
        else if (def_false)
          r = f;
        else {
          r.iv = join(t.iv, f.iv);
          r.af = af_join(t.af, f.af);
        }
        r.div = r.div || c.div || t.div || f.div;
        if (c.div) r.af = af_non();
        return r;
      }
    }
    return {ValInterval::top_for(e->type), true, af_non()};
  }

  AbsVal eval_builtin(BuiltinVal b) const {
    const auto& ev = out_.env_;
    const double bx = ev.block_x, by = ev.block_y, gx = ev.grid_x, gy = ev.grid_y;
    AbsVal r;
    r.af = af_non();
    switch (b) {
      case BuiltinVal::ThreadIdxX:
        r = {{0, bx - 1}, true, {}};
        r.af.affine = true;
        r.af.tx = 1;
        r.af.base = ValInterval::point(0);
        return r;
      case BuiltinVal::ThreadIdxY:
        r = {{0, by - 1}, true, {}};
        r.af.affine = true;
        r.af.ty = 1;
        r.af.base = ValInterval::point(0);
        return r;
      case BuiltinVal::ThreadLinear:
        r = {{0, bx * by * gx * gy - 1}, true, {}};
        r.af.affine = true;
        r.af.tl = 1;
        // The per-block offset is thread-uniform; footprint deltas are
        // intra-block, so only the local part matters and the base may span
        // every block's offset.
        r.af.base = {0, bx * by * (gx * gy - 1)};
        return r;
      case BuiltinVal::BlockIdxX: return {{0, gx - 1}, false, af_base({0, gx - 1})};
      case BuiltinVal::BlockIdxY: return {{0, gy - 1}, false, af_base({0, gy - 1})};
      case BuiltinVal::BlockDimX:
        return {ValInterval::point(bx), false, af_base(ValInterval::point(bx))};
      case BuiltinVal::BlockDimY:
        return {ValInterval::point(by), false, af_base(ValInterval::point(by))};
      case BuiltinVal::GridDimX:
        return {ValInterval::point(gx), false, af_base(ValInterval::point(gx))};
      case BuiltinVal::GridDimY:
        return {ValInterval::point(gy), false, af_base(ValInterval::point(gy))};
    }
    return {top_i32(), true, af_non()};
  }

  AbsVal eval_unary(const ExprPtr& e, AbsEnv& env) {
    const AbsVal a = eval(e->a, env);
    const ValInterval& A = a.iv;
    const DType rt = e->type;
    ValInterval r = ValInterval::top_for(rt);
    const bool a_top_f = e->a->type == DType::F32 && is_top(A, DType::F32);
    switch (e->un) {
      case UnOp::Neg:
        if (rt == DType::F32) {
          if (!a_top_f) r = {-A.hi, -A.lo};
        } else if (A.lo > kI32Min) {
          r = {-A.hi, -A.lo};
        }
        break;
      case UnOp::LogicalNot:
        if (A == ValInterval::point(0.0))
          r = ValInterval::point(1.0);
        else if (!A.contains(0.0) && !a_top_f)
          r = ValInterval::point(0.0);
        else
          r = {0, 1};
        break;
      case UnOp::BitNot:
        if (A.finite()) r = {-A.hi - 1, -A.lo - 1};
        break;
      case UnOp::Sqrt:
        if (!a_top_f && A.lo >= 0) r = inflate_f32({std::sqrt(A.lo), std::sqrt(A.hi)});
        break;
      case UnOp::Rsqrt:
        if (!a_top_f && A.lo > 0 && std::isfinite(A.lo))
          r = inflate_f32({1.0 / std::sqrt(A.hi), 1.0 / std::sqrt(A.lo)});
        break;
      case UnOp::Abs:
        if (rt == DType::F32 && !a_top_f) {
          r = A.lo >= 0 ? A : (A.hi <= 0 ? ValInterval{-A.hi, -A.lo}
                                         : ValInterval{0, std::max(-A.lo, A.hi)});
        } else if (rt == DType::I32 && A.lo > kI32Min) {
          r = A.lo >= 0 ? A : (A.hi <= 0 ? ValInterval{-A.hi, -A.lo}
                                         : ValInterval{0, std::max(-A.lo, A.hi)});
        }
        break;
      case UnOp::Exp:
        if (!a_top_f) r = inflate_f32({std::exp(A.lo), std::exp(A.hi)});
        break;
      case UnOp::Log:
        if (!a_top_f && A.lo > 0) r = inflate_f32({std::log(A.lo), std::log(A.hi)});
        break;
      case UnOp::Sin:
      case UnOp::Cos:
        if (!a_top_f && A.finite()) r = {-1, 1};
        break;
      case UnOp::Floor:
        if (!a_top_f) r = {std::floor(A.lo), std::floor(A.hi)};
        break;
      case UnOp::CastF32:
        r = inflate_f32(A);
        break;
      case UnOp::CastI32:
        // Saturating truncation; NaN -> 0 is only possible from a top input,
        // and top I32 contains 0.
        if (!a_top_f) {
          const double lo = std::trunc(std::clamp(A.lo, kI32Min, kI32Max));
          const double hi = std::trunc(std::clamp(A.hi, kI32Min, kI32Max));
          r = {lo, hi};
        }
        break;
    }
    AffineForm af = af_non();
    if (e->un == UnOp::Neg && rt != DType::F32)
      af = af_scale(a.af, -1.0);
    else if (a.af.affine && !a.af.has_syms() && !a.div)
      af = af_base(r);
    return {r, a.div, af};
  }

  AbsVal eval_binary(const ExprPtr& e, AbsEnv& env) {
    const AbsVal a = eval(e->a, env);
    const AbsVal b = eval(e->b, env);
    const DType rt = e->type;
    ValInterval r = binop_interval(e->bin, rt, a.iv, b.iv, e->a->type, e->b->type);
    AffineForm af = af_non();
    const bool int_like = rt != DType::F32;
    switch (e->bin) {
      case BinOp::Add:
        if (int_like) af = af_add(a.af, b.af, /*sub=*/false);
        break;
      case BinOp::Sub:
        if (int_like) af = af_add(a.af, b.af, /*sub=*/true);
        break;
      case BinOp::Mul:
        if (int_like && a.af.affine && b.af.affine) {
          if (!a.af.has_syms() && a.af.base.is_point())
            af = af_scale(b.af, a.af.base.lo);
          else if (!b.af.has_syms() && b.af.base.is_point())
            af = af_scale(a.af, b.af.base.lo);
        }
        break;
      default: break;
    }
    const bool div = a.div || b.div;
    if (!af.affine && a.af.affine && b.af.affine && !a.af.has_syms() && !b.af.has_syms() &&
        !div)
      af = af_base(r);
    // Wrapped / widened results lose the linear form.
    if (af.affine && af.has_syms() && is_top(r, rt)) af = af_non();
    return {r, div, af};
  }

  ValInterval binop_interval(BinOp op, DType rt, const ValInterval& A, const ValInterval& B,
                             DType at, DType bt) const {
    if (A.is_empty() || B.is_empty()) return ValInterval::empty();
    const bool a_top_f = at == DType::F32 && is_top(A, DType::F32);
    const bool b_top_f = bt == DType::F32 && is_top(B, DType::F32);
    const ValInterval top = ValInterval::top_for(rt);
    switch (op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
        if (rt == DType::F32) {
          if (a_top_f || b_top_f) return top;
          return f_corners(op, A, B);
        }
        return i_corners(op, A, B, rt);
      case BinOp::Div:
        if (rt == DType::F32) {
          if (a_top_f || b_top_f || B.contains(0.0)) return top;
          return f_corners(op, A, B);
        }
        if (B.contains(0.0)) return top;
        {
          const double c[4] = {A.lo / B.lo, A.lo / B.hi, A.hi / B.lo, A.hi / B.hi};
          double lo = c[0], hi = c[0];
          for (double v : c) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
          if (!std::isfinite(lo) || !std::isfinite(hi)) return top;
          return {std::floor(lo), std::ceil(hi)};
        }
      case BinOp::Mod: {
        if (rt == DType::F32 || B.contains(0.0) || !B.finite()) return top;
        const double m = std::max(std::abs(B.lo), std::abs(B.hi)) - 1;
        double lo = -m, hi = m;
        if (A.lo >= 0) lo = 0;
        if (A.hi <= 0) hi = 0;
        if (A.finite()) {
          lo = std::max(lo, std::min(A.lo, 0.0));
          hi = std::min(hi, std::max(A.hi, 0.0));
        }
        return {lo, hi};
      }
      case BinOp::Min:
        if (a_top_f || b_top_f) return top;
        return {std::min(A.lo, B.lo), std::min(A.hi, B.hi)};
      case BinOp::Max:
        if (a_top_f || b_top_f) return top;
        return {std::max(A.lo, B.lo), std::max(A.hi, B.hi)};
      case BinOp::BitAnd:
        if (A.lo >= 0 && B.lo >= 0 && A.finite() && B.finite())
          return {0, std::min(A.hi, B.hi)};
        return top;
      case BinOp::BitOr:
        if (A.lo >= 0 && B.lo >= 0 && A.finite() && B.finite())
          return {std::max(A.lo, B.lo), pow2_mask(std::max(A.hi, B.hi))};
        return top;
      case BinOp::BitXor:
        if (A.lo >= 0 && B.lo >= 0 && A.finite() && B.finite())
          return {0, pow2_mask(std::max(A.hi, B.hi))};
        return top;
      case BinOp::Shl: {
        if (!A.finite() || !B.finite() || B.lo < 0 || B.hi > 31) return top;
        double lo = kInf, hi = -kInf;
        for (double bb : {B.lo, B.hi})
          for (double aa : {A.lo, A.hi}) {
            const double v = aa * std::exp2(std::floor(bb));
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        if (lo < kI32Min || hi > kI32Max) return top;
        return {lo, hi};
      }
      case BinOp::Shr: {
        if (!A.finite() || !B.finite() || B.lo < 0 || B.hi > 31) return top;
        if (rt == DType::PTR && A.lo < 0) return top;
        double lo = kInf, hi = -kInf;
        for (double bb : {B.lo, B.hi})
          for (double aa : {A.lo, A.hi}) {
            const double v = std::floor(aa / std::exp2(std::floor(bb)));
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        return {lo, hi};
      }
      case BinOp::Lt: return cmp_interval(A.hi < B.lo, A.lo >= B.hi, a_top_f || b_top_f);
      case BinOp::Le: return cmp_interval(A.hi <= B.lo, A.lo > B.hi, a_top_f || b_top_f);
      case BinOp::Gt: return cmp_interval(A.lo > B.hi, A.hi <= B.lo, a_top_f || b_top_f);
      case BinOp::Ge: return cmp_interval(A.lo >= B.hi, A.hi < B.lo, a_top_f || b_top_f);
      case BinOp::Eq:
        return cmp_interval(A.is_point() && B.is_point() && A.lo == B.lo && !a_top_f,
                            meet(A, B).is_empty(), a_top_f || b_top_f);
      case BinOp::Ne:
        return cmp_interval(meet(A, B).is_empty(),
                            A.is_point() && B.is_point() && A.lo == B.lo && !a_top_f,
                            a_top_f || b_top_f);
      case BinOp::LogicalAnd: {
        const bool def_t = !A.contains(0.0) && !B.contains(0.0) && !a_top_f && !b_top_f;
        const bool def_f = A == ValInterval::point(0.0) || B == ValInterval::point(0.0);
        return cmp_interval(def_t, def_f, false);
      }
      case BinOp::LogicalOr: {
        const bool def_t = (!A.contains(0.0) && !a_top_f) || (!B.contains(0.0) && !b_top_f);
        const bool def_f =
            A == ValInterval::point(0.0) && B == ValInterval::point(0.0);
        return cmp_interval(def_t, def_f, false);
      }
    }
    return top;
  }

  /// Comparison result: a NaN-capable operand (top f32) can always make the
  /// comparison false, so `def_true` must not be claimed then.
  static ValInterval cmp_interval(bool def_true, bool def_false, bool maybe_nan) {
    if (def_true && !maybe_nan) return ValInterval::point(1.0);
    if (def_false) return ValInterval::point(0.0);
    return {0, 1};
  }

  static ValInterval f_corners(BinOp op, const ValInterval& A, const ValInterval& B) {
    double lo = kInf, hi = -kInf;
    for (double aa : {A.lo, A.hi})
      for (double bb : {B.lo, B.hi}) {
        double v = 0;
        switch (op) {
          case BinOp::Add: v = aa + bb; break;
          case BinOp::Sub: v = aa - bb; break;
          case BinOp::Mul: v = aa * bb; break;
          case BinOp::Div: v = aa / bb; break;
          default: return top_f32();
        }
        if (std::isnan(v)) return top_f32();
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    return inflate_f32({lo, hi});
  }

  /// i32/ptr corner math in int64 (products of 32-bit bounds need 62 bits,
  /// which double cannot hold exactly); any corner outside the type range
  /// wraps at run time, so the result widens to the type top.
  static ValInterval i_corners(BinOp op, const ValInterval& A, const ValInterval& B,
                               DType rt) {
    if (!A.finite() || !B.finite()) return ValInterval::top_for(rt);
    const auto al = static_cast<std::int64_t>(A.lo), ah = static_cast<std::int64_t>(A.hi);
    const auto bl = static_cast<std::int64_t>(B.lo), bh = static_cast<std::int64_t>(B.hi);
    std::int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (std::int64_t aa : {al, ah})
      for (std::int64_t bb : {bl, bh}) {
        std::int64_t v = 0;
        switch (op) {
          case BinOp::Add: v = aa + bb; break;
          case BinOp::Sub: v = aa - bb; break;
          case BinOp::Mul: v = aa * bb; break;
          default: return ValInterval::top_for(rt);
        }
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    const ValInterval top = ValInterval::top_for(rt);
    if (static_cast<double>(lo) < top.lo || static_cast<double>(hi) > top.hi) return top;
    return {static_cast<double>(lo), static_cast<double>(hi)};
  }

  /// Smallest 2^k - 1 covering v (for bit-or/xor upper bounds).
  static double pow2_mask(double v) {
    std::uint64_t x = v <= 0 ? 0 : static_cast<std::uint64_t>(v);
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x |= x >> 32;
    return static_cast<double>(x);
  }

  // --- branch refinement ----------------------------------------------------

  AbsVal eval_quiet(const ExprPtr& e, AbsEnv& env) {
    const bool saved = record_;
    record_ = false;
    AbsVal r = eval(e, env);
    record_ = saved;
    return r;
  }

  static BinOp flip_cmp(BinOp op) {
    switch (op) {
      case BinOp::Lt: return BinOp::Gt;
      case BinOp::Le: return BinOp::Ge;
      case BinOp::Gt: return BinOp::Lt;
      case BinOp::Ge: return BinOp::Le;
      default: return op;
    }
  }

  void refine_env(AbsEnv& env, const ExprPtr& cond, bool taken) {
    if (!cond) return;
    if (cond->kind == ExprKind::Unary && cond->un == UnOp::LogicalNot) {
      refine_env(env, cond->a, !taken);
      return;
    }
    if (cond->kind != ExprKind::Binary) return;
    if (cond->bin == BinOp::LogicalAnd && taken) {
      refine_env(env, cond->a, true);
      refine_env(env, cond->b, true);
      return;
    }
    if (cond->bin == BinOp::LogicalOr && !taken) {
      refine_env(env, cond->a, false);
      refine_env(env, cond->b, false);
      return;
    }
    switch (cond->bin) {
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne: break;
      default: return;
    }
    if (cond->a->kind == ExprKind::VarRef)
      refine_cmp(env, cond->a->var, cond->bin, eval_quiet(cond->b, env).iv, taken);
    else if (cond->b->kind == ExprKind::VarRef)
      refine_cmp(env, cond->b->var, flip_cmp(cond->bin), eval_quiet(cond->a, env).iv,
                 taken);
  }

  void refine_cmp(AbsEnv& env, VarId v, BinOp op, const ValInterval& B, bool taken) {
    if (B.is_empty()) return;
    const DType vt = k_.vars[v].type;
    // In the not-taken branch of an f32 comparison the negated relation does
    // not hold for NaN, so only the taken direction may refine floats.
    if (!taken) {
      if (vt == DType::F32) return;
      switch (op) {
        case BinOp::Lt: op = BinOp::Ge; break;
        case BinOp::Le: op = BinOp::Gt; break;
        case BinOp::Gt: op = BinOp::Le; break;
        case BinOp::Ge: op = BinOp::Lt; break;
        case BinOp::Eq: op = BinOp::Ne; break;
        case BinOp::Ne: op = BinOp::Eq; break;
        default: return;
      }
    }
    ValInterval cur = env.val[v];
    if (cur.is_empty()) cur = ValInterval::top_for(vt);
    const double adj = vt == DType::F32 ? 0.0 : 1.0;
    switch (op) {
      case BinOp::Lt:
        if (std::isfinite(B.hi)) cur.hi = std::min(cur.hi, B.hi - adj);
        break;
      case BinOp::Le: cur.hi = std::min(cur.hi, B.hi); break;
      case BinOp::Gt:
        if (std::isfinite(B.lo)) cur.lo = std::max(cur.lo, B.lo + adj);
        break;
      case BinOp::Ge: cur.lo = std::max(cur.lo, B.lo); break;
      case BinOp::Eq:
        if (!(vt == DType::F32 && is_top(B, DType::F32))) cur = meet(cur, B);
        break;
      default: return;
    }
    if (cur.is_empty()) return;  // contradictory branch: keep the old state
    env.val[v] = cur;
  }

  // --- statements -----------------------------------------------------------

  static AbsEnv join_env(const AbsEnv& a, const AbsEnv& b) {
    AbsEnv r = a;
    for (std::size_t i = 0; i < r.val.size(); ++i) {
      r.val[i] = join(a.val[i], b.val[i]);
      r.div[i] = a.div[i] | b.div[i];
      if (a.val[i].is_empty())
        r.af[i] = b.af[i];
      else if (b.val[i].is_empty())
        r.af[i] = a.af[i];
      else
        r.af[i] = af_join(a.af[i], b.af[i]);
    }
    return r;
  }

  AbsEnv widen_env(const AbsEnv& prev, const AbsEnv& next) const {
    AbsEnv r = next;
    for (std::size_t i = 0; i < r.val.size(); ++i)
      r.val[i] = widen(prev.val[i], next.val[i], k_.vars[i].type);
    return r;
  }

  AbsEnv exec_stmts(const StmtList& body, AbsEnv env, bool div_ctx) {
    for (const auto& s : body) env = exec_stmt(s, std::move(env), div_ctx);
    return env;
  }

  void define(AbsEnv& env, VarId v, const AbsVal& val, bool div_ctx) {
    env.val[v] = val.iv;
    env.div[v] = val.div || div_ctx;
    env.af[v] = div_ctx && !val.af.has_syms() ? af_non() : val.af;
    out_.var_summary_[v] = join(out_.var_summary_[v], val.iv);
    out_.var_divergent_[v] =
        static_cast<std::uint8_t>(out_.var_divergent_[v] | env.div[v]);
  }

  AbsEnv exec_stmt(const StmtPtr& sp, AbsEnv env, bool div_ctx) {
    const Stmt* s = sp.get();
    cur_div_ = div_ctx;
    switch (s->kind) {
      case StmtKind::Let:
      case StmtKind::Assign: {
        begin_phase(s, 0);
        const AbsVal v = eval(s->value, env);
        define(env, s->var, v, div_ctx);
        return env;
      }
      case StmtKind::StoreGlobal:
      case StmtKind::StoreShared:
      case StmtKind::AtomicAddGlobal: {
        begin_phase(s, 0);
        const AbsVal addr = eval(s->addr, env);
        (void)eval(s->value, env);
        record_store(s->kind == StmtKind::StoreGlobal      ? AccessKind::StoreGlobal
                     : s->kind == StmtKind::StoreShared    ? AccessKind::StoreShared
                                                           : AccessKind::AtomicAddGlobal,
                     addr, env);
        return env;
      }
      case StmtKind::Barrier: {
        begin_phase(s, 0);
        AccessFact& f = consume(AccessKind::Barrier);
        f.reached = true;
        f.divergent_control = f.divergent_control || div_ctx;
        return env;
      }
      case StmtKind::For: return exec_for(sp, std::move(env), div_ctx);
      case StmtKind::While: return exec_while(sp, std::move(env), div_ctx);
      case StmtKind::If: return exec_if(sp, std::move(env), div_ctx);
      case StmtKind::ChecksumXor:
      case StmtKind::DupCheck: {
        begin_phase(s, 0);
        (void)eval(s->value, env);
        return env;
      }
      case StmtKind::RangeCheck:
      case StmtKind::ProfileValue: {
        begin_phase(s, 0);
        const AbsVal v = eval(s->value, env);
        auto [it, inserted] = detector_map_.try_emplace(s->detector_id);
        DetectorValueFact& d = it->second;
        if (inserted) {
          d.detector = s->detector_id;
          d.label = s->label;
          d.type = s->value->type;
        }
        d.value = join(d.value, v.iv);
        return env;
      }
      case StmtKind::EqualCheck: {
        begin_phase(s, 0);
        (void)eval(s->value, env);
        (void)eval(s->rhs, env);
        return env;
      }
      case StmtKind::ChecksumValidate:
      case StmtKind::CountExec:
      case StmtKind::FIHook: return env;
    }
    return env;
  }

  AbsEnv exec_for(const StmtPtr& sp, AbsEnv env, bool div_ctx) {
    const Stmt* s = sp.get();
    const VarId it = s->var;
    const DType it_t = k_.vars[it].type;
    begin_phase(s, 0);
    cur_div_ = div_ctx;
    const AbsVal init = eval(s->init, env);
    define(env, it, init, div_ctx);
    const bool loop_div = div_ctx || init.div;
    const double step_const =
        s->step && s->step->kind == ExprKind::Const ? s->step->constant.as_double() : -1.0;

    AbsEnv head = env;
    ValInterval lim_acc = ValInterval::empty();
    ValInterval step_acc = ValInterval::empty();
    int rounds = 0;
    for (;;) {
      AbsEnv body_in = head;
      begin_phase(s, 1);
      cur_div_ = loop_div;
      const AbsVal lim = eval(s->limit, body_in);
      lim_acc = join(lim_acc, lim.iv);
      const bool body_div = loop_div || lim.div;

      // Refine the iterator to [.., limit) for the body.
      ValInterval itv = body_in.val[it];
      if (!lim.iv.is_empty() && std::isfinite(lim.iv.hi))
        itv.hi = std::min(itv.hi, lim.iv.hi - (it_t == DType::F32 ? 0.0 : 1.0));
      if (itv.is_empty()) break;  // the loop body is unreachable from here
      body_in.val[it] = itv;
      out_.var_summary_[it] = join(out_.var_summary_[it], itv);
      AffineForm sym;
      sym.affine = true;
      sym.iters[it] = 1.0;
      sym.base = ValInterval::point(0);
      body_in.af[it] = sym;
      iter_step_[it] = step_const;

      AbsEnv out = exec_stmts(s->body, std::move(body_in), body_div);
      begin_phase(s, 2);
      cur_div_ = body_div;
      const AbsVal stp = eval(s->step, out);
      step_acc = join(step_acc, stp.iv);
      out.val[it] = binop_interval(BinOp::Add, it_t, out.val[it], stp.iv, it_t, it_t);
      out.div[it] = static_cast<std::uint8_t>(out.div[it] | (stp.div || body_div));
      out.af[it] = af_non();
      out_.var_summary_[it] = join(out_.var_summary_[it], out.val[it]);

      AbsEnv nh = join_env(head, out);
      if (nh == head) break;
      head = ++rounds >= 2 ? widen_env(head, nh) : std::move(nh);
      if (rounds > 128) break;  // safety net; widening converges long before
    }
    iter_step_.erase(it);
    env = std::move(head);
    env.af[it] = af_non();
    // Exit bound: the first iterator value >= limit is at most
    // limit.hi - 1 + step.hi (or init if the loop never ran); recover it even
    // when widening topped the loop-head interval.
    if (!env.val[it].is_empty() && step_acc.lo >= 1 && lim_acc.finite() &&
        std::isfinite(step_acc.hi)) {
      const double exit_hi =
          std::max(init.iv.hi, lim_acc.hi - 1 + step_acc.hi);
      env.val[it].hi = std::min(env.val[it].hi, exit_hi);
    }
    out_.var_summary_[it] = join(out_.var_summary_[it], env.val[it]);
    return env;
  }

  AbsEnv exec_while(const StmtPtr& sp, AbsEnv env, bool div_ctx) {
    const Stmt* s = sp.get();
    AbsEnv head = std::move(env);
    int rounds = 0;
    for (;;) {
      AbsEnv body_in = head;
      begin_phase(s, 0);
      cur_div_ = div_ctx;
      const AbsVal cond = eval(s->value, body_in);
      if (cond.iv == ValInterval::point(0.0)) break;  // definitely exits
      const bool body_div = div_ctx || cond.div;
      refine_env(body_in, s->value, /*taken=*/true);
      AbsEnv out = exec_stmts(s->body, std::move(body_in), body_div);
      AbsEnv nh = join_env(head, out);
      if (nh == head) break;
      head = ++rounds >= 2 ? widen_env(head, nh) : std::move(nh);
      if (rounds > 128) break;
    }
    return head;
  }

  AbsEnv exec_if(const StmtPtr& sp, AbsEnv env, bool div_ctx) {
    const Stmt* s = sp.get();
    begin_phase(s, 0);
    cur_div_ = div_ctx;
    const AbsVal cond = eval(s->value, env);
    const bool branch_div = div_ctx || cond.div;
    const bool maybe_true = !(cond.iv == ValInterval::point(0.0)) && !cond.iv.is_empty();
    const bool maybe_false = cond.iv.is_empty() || cond.iv.contains(0.0) ||
                             (s->value->type == DType::F32 && is_top(cond.iv, DType::F32));
    if (maybe_true && !maybe_false) {
      AbsEnv t = env;
      refine_env(t, s->value, true);
      return exec_stmts(s->body, std::move(t), branch_div);
    }
    if (maybe_false && !maybe_true)
      return exec_stmts(s->else_body, std::move(env), branch_div);
    AbsEnv t = env, f = std::move(env);
    refine_env(t, s->value, true);
    refine_env(f, s->value, false);
    t = exec_stmts(s->body, std::move(t), branch_div);
    f = exec_stmts(s->else_body, std::move(f), branch_div);
    return join_env(t, f);
  }

  void flatten() {
    for (auto& [id, fact] : detector_map_) out_.detectors_.push_back(std::move(fact));
    for (auto& [ord, fp] : footprints_) out_.shared_stores_.push_back(fp);
  }

  const Kernel& k_;
  IntervalAnalysis& out_;
  std::map<PhaseKey, std::vector<int>> sites_;
  int barrier_count_ = 0;
  PhaseCursor cursor_;
  bool record_ = true;
  bool cur_div_ = false;
  std::map<VarId, double> iter_step_;  ///< constant step of each open For
  std::map<int, DetectorValueFact> detector_map_;
  std::map<int, SharedStoreFootprint> footprints_;
};

IntervalAnalysis::IntervalAnalysis(const Kernel& kernel, const IntervalEnv& env)
    : env_(env) {
  if (env_.block_x == 0) env_.block_x = 1;
  if (env_.block_y == 0) env_.block_y = 1;
  if (env_.grid_x == 0) env_.grid_x = 1;
  if (env_.grid_y == 0) env_.grid_y = 1;
  shared_words_ = env_.shared_words != 0 ? env_.shared_words : kernel.shared_mem_words;
  var_summary_.assign(kernel.vars.size(), ValInterval::empty());
  var_divergent_.assign(kernel.vars.size(), 0);
  IntervalInterp interp(kernel, *this);
  interp.run();
}

std::vector<std::int64_t> access_pcs(const BytecodeProgram& p) {
  std::vector<std::int64_t> pcs;
  for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
    switch (p.code[pc].op) {
      case OpCode::LoadG:
      case OpCode::StoreG:
      case OpCode::LoadS:
      case OpCode::StoreS:
      case OpCode::AtomicAddG:
      case OpCode::Barrier: pcs.push_back(static_cast<std::int64_t>(pc)); break;
      default: break;
    }
  }
  return pcs;
}

}  // namespace hauberk::kir
