// 32-bit typed values of the kernel IR.
//
// The paper's SWIFI tool mutates architecture-visible state: 32-bit registers
// and memory words holding float, integer, or pointer data (Section VII).
// We therefore represent every runtime value as a raw 32-bit word plus a
// static type tag, so a fault mask can be XORed into the representation of
// any value exactly as the paper's FI library does.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace hauberk::kir {

/// The three data classes the paper distinguishes (Fig. 1): floating point,
/// integer, and pointer.  Pointers are 32-bit word addresses into simulated
/// device memory.
enum class DType : std::uint8_t { F32 = 0, I32 = 1, PTR = 2 };

[[nodiscard]] constexpr const char* dtype_name(DType t) noexcept {
  switch (t) {
    case DType::F32: return "f32";
    case DType::I32: return "i32";
    case DType::PTR: return "ptr";
  }
  return "?";
}

/// A typed 32-bit value.  The bit pattern is authoritative; accessors
/// reinterpret it.  This mirrors a GPU register: the hardware stores bits,
/// the instruction decides the interpretation.
struct Value {
  DType type = DType::I32;
  std::uint32_t bits = 0;

  [[nodiscard]] static constexpr Value f32(float v) noexcept {
    return {DType::F32, std::bit_cast<std::uint32_t>(v)};
  }
  [[nodiscard]] static constexpr Value i32(std::int32_t v) noexcept {
    return {DType::I32, static_cast<std::uint32_t>(v)};
  }
  [[nodiscard]] static constexpr Value ptr(std::uint32_t addr) noexcept {
    return {DType::PTR, addr};
  }

  [[nodiscard]] constexpr float as_f32() const noexcept { return std::bit_cast<float>(bits); }
  [[nodiscard]] constexpr std::int32_t as_i32() const noexcept {
    return static_cast<std::int32_t>(bits);
  }
  [[nodiscard]] constexpr std::uint32_t as_ptr() const noexcept { return bits; }

  /// Numeric view used by detectors and outcome classification.
  [[nodiscard]] double as_double() const noexcept {
    switch (type) {
      case DType::F32: return static_cast<double>(as_f32());
      case DType::I32: return static_cast<double>(as_i32());
      case DType::PTR: return static_cast<double>(bits);
    }
    return 0.0;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Value& a, const Value& b) noexcept {
    return a.type == b.type && a.bits == b.bits;
  }
};

}  // namespace hauberk::kir
