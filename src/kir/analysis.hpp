// Static analyses over kernel ASTs used by the Hauberk translator:
//
//  * virtual-variable enumeration with loop-depth of each definition,
//  * loop structure (nesting, iterators, variables defined inside),
//  * the per-loop dataflow graph of Fig. 9 and the *cumulative backward
//    dataflow dependency* metric used to select loop-protected variables
//    (Section V.B step (i)),
//  * self-accumulating variable detection (e.g. `energy += x`),
//  * loop trip-count derivation (Section V.B step (iv): the iteration count
//    is treated as a program invariant when it can be derived, including the
//    two-condition `min(A, B)` form).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kir/ast.hpp"

namespace hauberk::kir {

inline constexpr std::uint32_t kNoLoop = 0xffffffffu;

/// Where a virtual variable is introduced and whether loops re-define it.
struct VarFacts {
  VarId var = kInvalidVar;
  int def_depth = 0;                   ///< loop depth of the Let (0 = non-loop code)
  std::uint32_t def_loop = kNoLoop;    ///< innermost loop containing the Let
  bool assigned_in_loop = false;       ///< some Assign to it sits inside a loop
  bool is_loop_iterator = false;
  std::set<std::uint32_t> loops_using;     ///< loops whose bodies read the variable
  std::set<std::uint32_t> loops_assigning; ///< loops whose bodies write the variable
};

struct LoopNode {
  std::uint32_t id = 0;
  const Stmt* stmt = nullptr;   ///< the For/While statement
  std::uint32_t parent = kNoLoop;
  int depth = 1;                ///< 1 = top-level loop
  bool is_for = false;
  VarId iterator = kInvalidVar;  ///< For only
  std::vector<VarId> lets_inside;    ///< Lets anywhere inside (incl. nested loops)
  std::vector<VarId> assigns_inside; ///< Assign targets anywhere inside
};

/// Dataflow graph of one loop body (Fig. 9).  Nodes are the virtual
/// variables defined inside the loop; per-definition operation/load counts
/// model the paper's temporary variables and memory-load nodes.
struct LoopDataflow {
  std::uint32_t loop_id = 0;
  std::vector<VarId> loop_vars;               ///< variables defined inside the loop
  std::map<VarId, std::set<VarId>> uses;      ///< def -> loop vars it reads (direct)
  std::map<VarId, int> op_nodes;              ///< def -> # operator (temp) nodes in its RHS(s)
  std::map<VarId, int> load_nodes;            ///< def -> # memory-load nodes in its RHS(s)
  std::vector<VarId> outputs;                 ///< live after loop or stored to memory

  /// Cumulative backward dataflow dependency (Section V.B): number of
  /// loop-defined variables + temporaries + memory loads backward-reachable
  /// from `v`, excluding constants and variables protected by non-loop
  /// detectors (i.e. defined outside the loop).
  [[nodiscard]] int cbd(VarId v) const;

  /// All loop vars backward-reachable from v (including v).
  [[nodiscard]] std::set<VarId> backward_set(VarId v) const;
  /// All loop vars forward-reachable from v (vars whose computation uses v).
  [[nodiscard]] std::set<VarId> forward_set(VarId v) const;
};

/// Result of the loop-protection selection algorithm (Section V.B step (i)).
struct LoopProtectionPlan {
  std::uint32_t loop_id = 0;
  std::vector<VarId> selected;     ///< in selection order; self-accumulators first
  std::set<VarId> self_accumulating;
  /// Candidates left unprotected because the Maxvar budget was exhausted
  /// (feeds the translator's "Maxvar eviction" remarks).
  std::vector<VarId> evicted;
  /// Candidates dropped because their errors propagate into a selected
  /// variable (backward-reachable from it, so already covered).
  std::vector<VarId> covered;
  /// Trip count expression evaluable *before* the loop, when derivable.
  ExprPtr trip_count;
};

/// Whole-kernel analysis.  Construct once per kernel; facts are immutable.
class Analysis {
 public:
  explicit Analysis(const Kernel& kernel);

  [[nodiscard]] const Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] const std::vector<LoopNode>& loops() const { return loops_; }
  [[nodiscard]] const LoopNode& loop(std::uint32_t id) const { return loops_.at(id); }
  [[nodiscard]] const VarFacts& facts(VarId v) const { return facts_.at(v); }
  [[nodiscard]] const std::vector<VarFacts>& all_facts() const { return facts_; }

  /// Dataflow graph of the body of one loop.
  [[nodiscard]] LoopDataflow loop_dataflow(std::uint32_t loop_id) const;

  /// Self-accumulating variables of a loop: variables defined outside the
  /// loop whose Assign inside the loop has the form v = v + X / v = v - X /
  /// v = X + v (Section V.B step (ii) skips the accumulator for these).
  [[nodiscard]] std::set<VarId> self_accumulators(std::uint32_t loop_id) const;

  /// Derive the loop trip count as an expression evaluable before the loop,
  /// or nullptr when not derivable (While loops; bounds mutated inside).
  [[nodiscard]] ExprPtr derive_trip_count(std::uint32_t loop_id) const;

  /// Full protection plan for one loop with the given Maxvar budget.  The
  /// overload taking a LoopDataflow reuses a graph the caller already holds
  /// (e.g. from an AnalysisManager cache) instead of recomputing it.
  [[nodiscard]] LoopProtectionPlan plan_loop_protection(std::uint32_t loop_id, int maxvar) const;
  [[nodiscard]] LoopProtectionPlan plan_loop_protection(std::uint32_t loop_id, int maxvar,
                                                        const LoopDataflow& df) const;

  /// True if expression reads variable v anywhere.
  static bool expr_reads(const ExprPtr& e, VarId v);
  /// Collect all variables read by an expression.
  static void collect_reads(const ExprPtr& e, std::set<VarId>& out);
  /// Count operator nodes (Unary/Binary/Select) and load nodes in a tree.
  static void count_nodes(const ExprPtr& e, int& ops, int& loads);

 private:
  void scan(const StmtList& body, int depth, std::uint32_t loop);
  void scan_stmt(const StmtPtr& s, int depth, std::uint32_t loop);
  void note_use(const ExprPtr& e);

  const Kernel* kernel_;
  std::vector<VarFacts> facts_;
  std::vector<LoopNode> loops_;
  std::vector<std::uint32_t> loop_stack_;  ///< loops enclosing the current scan point
};

}  // namespace hauberk::kir
