#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "kir/bytecode.hpp"

namespace hauberk::kir {

namespace {

/// Pack an op enum and operand dtype into the instruction `aux` field.
constexpr std::uint32_t pack_aux(std::uint32_t op, DType t) {
  return op | (static_cast<std::uint32_t>(t) << 16);
}

class Lowerer {
 public:
  explicit Lowerer(const Kernel& k) : k_(k) {
    p_.name = k.name;
    p_.shared_mem_words = k.shared_mem_words;
    p_.num_params = static_cast<std::uint16_t>(k.params.size());
    p_.var_slot.resize(k.vars.size());
    for (const auto& prm : k.params) p_.slot_types.push_back(prm.type);
    // Ordinary variables first, R-Scatter shadows last: shadows must not
    // shift the original program's slots into spill territory.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t v = 0; v < k.vars.size(); ++v) {
        if (k.vars[v].scatter_shadow != (pass == 1)) continue;
        p_.var_slot[v] = static_cast<std::uint16_t>(p_.slot_types.size());
        p_.slot_types.push_back(k.vars[v].type);
      }
    }
    p_.num_named = static_cast<std::uint16_t>(k.vars.size());
    // The Hauberk checksum variable is one real register shared by all
    // duplicated virtual variables (Section V.A).  Reserving its slot below
    // the temporaries reproduces the paper's register-pressure effect: in a
    // register-tight kernel the checksum pushes loop temporaries into spill
    // territory, making Hauberk-NL cost more than the non-loop time share.
    if (uses_checksum(k.body)) {
      checksum_slot_ = static_cast<std::uint16_t>(p_.slot_types.size());
      p_.slot_types.push_back(DType::I32);
    }
    temp_base_ = static_cast<std::uint16_t>(p_.slot_types.size());
    next_temp_ = temp_base_;
    max_slot_ = temp_base_;
  }

  static bool uses_checksum(const StmtList& body) {
    for (const auto& s : body) {
      if (s->kind == StmtKind::ChecksumXor || s->kind == StmtKind::ChecksumValidate) return true;
      if (uses_checksum(s->body) || uses_checksum(s->else_body)) return true;
    }
    return false;
  }

  BytecodeProgram run() {
    lower_body(k_.body, /*in_loop=*/false, /*extra=*/0);
    emit(OpCode::Halt, 0);
    p_.num_slots = max_slot_;
    p_.slot_types.resize(max_slot_, DType::I32);
    relocate_scatter_shadows();
    return std::move(p_);
  }

 private:
  /// Renumber register slots so that R-Scatter shadow variables occupy the
  /// highest indices — *above* the temporaries.  Shadows model duplicated
  /// data packed into otherwise-idle register lanes: they must neither push
  /// the original variables nor the temporaries into spill territory
  /// (scatter-flagged instructions are themselves spill-exempt).
  void relocate_scatter_shadows() {
    std::vector<bool> is_shadow(p_.num_slots, false);
    std::size_t n_shadow = 0;
    for (std::size_t v = 0; v < k_.vars.size(); ++v)
      if (k_.vars[v].scatter_shadow) {
        is_shadow[p_.var_slot[v]] = true;
        ++n_shadow;
      }
    if (n_shadow == 0) return;
    std::vector<std::uint16_t> remap(p_.num_slots);
    std::vector<DType> new_types(p_.num_slots, DType::I32);
    std::uint16_t lo = 0;
    std::uint16_t hi = static_cast<std::uint16_t>(p_.num_slots - n_shadow);
    for (std::uint16_t s = 0; s < p_.num_slots; ++s) {
      remap[s] = is_shadow[s] ? hi++ : lo++;
      new_types[remap[s]] = p_.slot_types[s];
    }
    for (auto& slot : p_.var_slot) slot = remap[slot];
    p_.slot_types = std::move(new_types);
    for (Instr& in : p_.code) {
      in.dst = remap[in.dst];
      in.a = remap[in.a];
      in.b = remap[in.b];
      if (in.op == OpCode::Select) in.imm = remap[static_cast<std::uint16_t>(in.imm)];
    }
    for (auto& site : p_.fi_sites) site.slot = remap[site.slot];
  }

  // --- temp slot management (free-list so expression depth, not size,
  //     bounds register demand, approximating a real register allocator) ---
  std::uint16_t alloc_temp() {
    if (!free_.empty()) {
      const std::uint16_t s = free_.back();
      free_.pop_back();
      return s;
    }
    const std::uint16_t s = next_temp_++;
    max_slot_ = std::max<std::uint16_t>(max_slot_, next_temp_);
    return s;
  }
  void release(std::uint16_t slot) {
    if (slot >= temp_base_) free_.push_back(slot);
  }

  std::size_t emit(OpCode op, std::uint32_t aux, std::uint16_t dst = 0, std::uint16_t a = 0,
                   std::uint16_t b = 0, std::uint32_t imm = 0) {
    Instr i;
    i.op = op;
    i.flags = cur_flags_;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.aux = aux;
    i.imm = imm;
    p_.code.push_back(i);
    p_.stmt_origin.push_back(cur_origin_);
    return p_.code.size() - 1;
  }

  void patch(std::size_t at, std::uint32_t target) {
    p_.code[at].aux = target;
  }
  [[nodiscard]] std::uint32_t here() const { return static_cast<std::uint32_t>(p_.code.size()); }

  // --- expressions ---

  [[nodiscard]] bool is_temp(std::uint16_t slot) const { return slot >= temp_base_; }

  /// Lower `e`, returning the slot holding the result.  Named variables and
  /// params return their fixed slot without emitting code.  Operator nodes
  /// reuse an operand's temp slot as their destination (the interpreter
  /// reads operands before writing), so register demand tracks expression
  /// *depth* rather than size — approximating a real register allocator.
  std::uint16_t lower_expr(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::VarRef:
        return p_.var_slot[e->var];
      case ExprKind::ParamRef:
        return static_cast<std::uint16_t>(e->param);
      case ExprKind::Unary: {
        const std::uint16_t a = lower_expr(e->a);
        const std::uint16_t dst = is_temp(a) ? a : alloc_temp();
        emit(OpCode::Un, pack_aux(static_cast<std::uint32_t>(e->un), e->a->type), dst, a);
        return dst;
      }
      case ExprKind::Binary: {
        const std::uint16_t a = lower_expr(e->a);
        const std::uint16_t b = lower_expr(e->b);
        const std::uint16_t dst = is_temp(a) ? a : (is_temp(b) ? b : alloc_temp());
        DType t = e->a->type;
        if (e->b->type == DType::PTR || t == DType::PTR) t = DType::PTR;
        else if (e->a->type == DType::F32 || e->b->type == DType::F32) t = DType::F32;
        emit(OpCode::Bin, pack_aux(static_cast<std::uint32_t>(e->bin), t), dst, a, b);
        if (is_temp(b) && b != dst) release(b);
        if (is_temp(a) && a != dst) release(a);
        return dst;
      }
      case ExprKind::Select: {
        const std::uint16_t c = lower_expr(e->a);
        const std::uint16_t tv = lower_expr(e->b);
        const std::uint16_t ev = lower_expr(e->c);
        std::uint16_t dst = is_temp(c) ? c : (is_temp(tv) ? tv : (is_temp(ev) ? ev : alloc_temp()));
        emit(OpCode::Select, 0, dst, c, tv, ev);
        for (std::uint16_t s : {c, tv, ev})
          if (is_temp(s) && s != dst) release(s);
        return dst;
      }
      case ExprKind::LoadGlobal: {
        const std::uint16_t a = lower_expr(e->a);
        const std::uint16_t dst = is_temp(a) ? a : alloc_temp();
        emit(OpCode::LoadG, 0, dst, a);
        return dst;
      }
      case ExprKind::LoadShared: {
        const std::uint16_t a = lower_expr(e->a);
        const std::uint16_t dst = is_temp(a) ? a : alloc_temp();
        emit(OpCode::LoadS, 0, dst, a);
        return dst;
      }
      default: {
        const std::uint16_t t = alloc_temp();
        lower_expr_to(e, t);
        return t;
      }
    }
  }

  /// Lower `e` into a specific destination slot.
  void lower_expr_to(const ExprPtr& e, std::uint16_t dst) {
    switch (e->kind) {
      case ExprKind::Const:
        emit(OpCode::Const, 0, dst, 0, 0, e->constant.bits);
        break;
      case ExprKind::VarRef:
        emit(OpCode::Mov, 0, dst, p_.var_slot[e->var]);
        break;
      case ExprKind::ParamRef:
        emit(OpCode::Mov, 0, dst, static_cast<std::uint16_t>(e->param));
        break;
      case ExprKind::Builtin:
        emit(OpCode::Builtin, static_cast<std::uint32_t>(e->builtin), dst);
        break;
      case ExprKind::LoadGlobal: {
        const std::uint16_t a = lower_expr(e->a);
        emit(OpCode::LoadG, 0, dst, a);
        release(a);
        break;
      }
      case ExprKind::LoadShared: {
        const std::uint16_t a = lower_expr(e->a);
        emit(OpCode::LoadS, 0, dst, a);
        release(a);
        break;
      }
      case ExprKind::Unary: {
        const std::uint16_t a = lower_expr(e->a);
        emit(OpCode::Un, pack_aux(static_cast<std::uint32_t>(e->un), e->a->type), dst, a);
        release(a);
        break;
      }
      case ExprKind::Binary: {
        const std::uint16_t a = lower_expr(e->a);
        const std::uint16_t b = lower_expr(e->b);
        // Operand dtype: pointer arithmetic dominates, then float.
        DType t = e->a->type;
        if (e->b->type == DType::PTR || t == DType::PTR) t = DType::PTR;
        else if (e->a->type == DType::F32 || e->b->type == DType::F32) t = DType::F32;
        emit(OpCode::Bin, pack_aux(static_cast<std::uint32_t>(e->bin), t), dst, a, b);
        release(a);
        release(b);
        break;
      }
      case ExprKind::Select: {
        const std::uint16_t c = lower_expr(e->a);
        const std::uint16_t tv = lower_expr(e->b);
        const std::uint16_t ev = lower_expr(e->c);
        emit(OpCode::Select, 0, dst, c, tv, ev);
        release(c);
        release(tv);
        release(ev);
        break;
      }
      default:
        throw std::runtime_error("lower_expr_to: bad expression kind");
    }
  }

  // --- statements ---

  void lower_body(const StmtList& body, bool in_loop, std::uint8_t extra) {
    for (const auto& s : body) lower_stmt(*s, in_loop, extra);
  }

  void lower_stmt(const Stmt& s, bool in_loop, std::uint8_t extra) {
    const std::uint8_t saved = cur_flags_;
    // Provenance: non-internal statements are numbered in pre-order (the
    // same order in every lowering of this kernel, since instrumentation
    // only inserts internal statements and never reorders the original).
    const std::int32_t saved_origin = cur_origin_;
    cur_origin_ = s.hauberk_internal ? -1 : next_ordinal_++;
    cur_flags_ = static_cast<std::uint8_t>((in_loop ? kInstrInLoop : 0) | extra | s.extra_flags);
    const std::uint8_t child_extra = static_cast<std::uint8_t>(extra | s.extra_flags);

    switch (s.kind) {
      case StmtKind::Let:
      case StmtKind::Assign:
        lower_expr_to(s.value, p_.var_slot[s.var]);
        break;
      case StmtKind::StoreGlobal: {
        const std::uint16_t a = lower_expr(s.addr);
        const std::uint16_t b = lower_expr(s.value);
        emit(OpCode::StoreG, 0, 0, a, b);
        release(a);
        release(b);
        break;
      }
      case StmtKind::StoreShared: {
        const std::uint16_t a = lower_expr(s.addr);
        const std::uint16_t b = lower_expr(s.value);
        emit(OpCode::StoreS, 0, 0, a, b);
        release(a);
        release(b);
        break;
      }
      case StmtKind::AtomicAddGlobal: {
        const std::uint16_t a = lower_expr(s.addr);
        const std::uint16_t b = lower_expr(s.value);
        emit(OpCode::AtomicAddG, pack_aux(0, s.value->type), 0, a, b);
        release(a);
        release(b);
        break;
      }
      case StmtKind::For: {
        const std::uint16_t iter = p_.var_slot[s.var];
        lower_expr_to(s.init, iter);
        const std::uint32_t cond_pc = here();
        cur_flags_ = static_cast<std::uint8_t>(kInstrInLoop | child_extra);
        const std::uint16_t lim = lower_expr(s.limit);
        const std::uint16_t cmp = alloc_temp();
        emit(OpCode::Bin, pack_aux(static_cast<std::uint32_t>(BinOp::Lt), DType::I32), cmp, iter,
             lim);
        release(lim);
        const std::size_t jz = emit(OpCode::Jz, 0, 0, cmp);
        release(cmp);
        lower_body(s.body, /*in_loop=*/true, child_extra);
        cur_flags_ = static_cast<std::uint8_t>(kInstrInLoop | child_extra);
        const std::uint16_t st = lower_expr(s.step);
        emit(OpCode::Bin, pack_aux(static_cast<std::uint32_t>(BinOp::Add), DType::I32), iter, iter,
             st);
        release(st);
        emit(OpCode::Jmp, cond_pc);
        patch(jz, here());
        break;
      }
      case StmtKind::While: {
        const std::uint32_t cond_pc = here();
        cur_flags_ = static_cast<std::uint8_t>(kInstrInLoop | child_extra);
        const std::uint16_t c = lower_expr(s.value);
        const std::size_t jz = emit(OpCode::Jz, 0, 0, c);
        release(c);
        lower_body(s.body, /*in_loop=*/true, child_extra);
        emit(OpCode::Jmp, cond_pc);
        patch(jz, here());
        break;
      }
      case StmtKind::If: {
        const std::uint16_t c = lower_expr(s.value);
        const std::size_t jz = emit(OpCode::Jz, 0, 0, c);
        release(c);
        lower_body(s.body, in_loop, child_extra);
        if (s.else_body.empty()) {
          patch(jz, here());
        } else {
          const std::size_t jend = emit(OpCode::Jmp, 0);
          patch(jz, here());
          lower_body(s.else_body, in_loop, child_extra);
          patch(jend, here());
        }
        break;
      }
      case StmtKind::Barrier:
        emit(OpCode::Barrier, 0);
        break;

      case StmtKind::ChecksumXor: {
        const std::uint16_t a = lower_expr(s.value);
        emit(OpCode::ChkXor, 0, checksum_slot_, a);
        release(a);
        break;
      }
      case StmtKind::ChecksumValidate:
        emit(OpCode::ChkValidate, 0, checksum_slot_);
        break;
      case StmtKind::DupCheck: {
        const std::uint16_t a = lower_expr(s.value);  // the duplicated computation
        emit(OpCode::DupCmp, 0, 0, a, p_.var_slot[s.var]);
        release(a);
        break;
      }
      case StmtKind::RangeCheck: {
        const std::uint16_t a = lower_expr(s.value);
        emit(OpCode::RangeCheck, static_cast<std::uint32_t>(s.detector_id), 0, a);
        release(a);
        note_detector(s, s.value->type, /*iteration=*/false);
        break;
      }
      case StmtKind::EqualCheck: {
        const std::uint16_t a = lower_expr(s.value);
        const std::uint16_t b = lower_expr(s.rhs);
        emit(OpCode::EqualCheck, static_cast<std::uint32_t>(s.detector_id), 0, a, b);
        release(a);
        release(b);
        note_detector(s, s.value->type, /*iteration=*/true);
        break;
      }
      case StmtKind::ProfileValue: {
        const std::uint16_t a = lower_expr(s.value);
        emit(OpCode::ProfileVal, static_cast<std::uint32_t>(s.detector_id), 0, a);
        release(a);
        note_detector(s, s.value->type, /*iteration=*/false);
        break;
      }
      case StmtKind::CountExec:
        emit(OpCode::CountExec, site_index(s, in_loop));
        break;
      case StmtKind::FIHook:
        emit(OpCode::FIHook, site_index(s, in_loop), 0, p_.var_slot[s.var]);
        break;
    }
    cur_flags_ = saved;
    cur_origin_ = saved_origin;
  }

  /// Register (or find) the FISite for a CountExec/FIHook statement; returns
  /// the index into fi_sites.  The same site id may appear once in the
  /// profiler build (CountExec) and once in the FI build (FIHook).
  std::uint32_t site_index(const Stmt& s, bool in_loop) {
    for (std::uint32_t i = 0; i < p_.fi_sites.size(); ++i)
      if (p_.fi_sites[i].site_id == s.site) return i;
    FISite site;
    site.site_id = s.site;
    site.var = s.var;
    site.slot = s.var != kInvalidVar ? p_.var_slot[s.var] : 0;
    site.type = s.var != kInvalidVar ? k_.vars[s.var].type : DType::I32;
    site.hw = s.hw;
    site.in_loop = in_loop;
    site.dead_window = s.fi_dead_window;
    site.var_name = s.var != kInvalidVar ? k_.vars[s.var].name : "<none>";
    p_.fi_sites.push_back(std::move(site));
    return static_cast<std::uint32_t>(p_.fi_sites.size() - 1);
  }

  void note_detector(const Stmt& s, DType t, bool iteration) {
    const int id = s.detector_id;
    if (id < 0) return;
    if (static_cast<std::size_t>(id) >= p_.detectors.size())
      p_.detectors.resize(static_cast<std::size_t>(id) + 1);
    DetectorMeta& m = p_.detectors[static_cast<std::size_t>(id)];
    m.id = id;
    if (m.name.empty()) m.name = s.label;
    // The value check determines the detector's value type; the iteration
    // check shares the id space but never overrides an existing value check.
    if (!iteration || m.name.empty()) m.value_type = t;
    if (iteration) m.is_iteration_check = true;
  }

  const Kernel& k_;
  BytecodeProgram p_;
  std::uint16_t checksum_slot_ = 0;
  std::uint16_t temp_base_ = 0;
  std::uint16_t next_temp_ = 0;
  std::uint16_t max_slot_ = 0;
  std::vector<std::uint16_t> free_;
  std::uint8_t cur_flags_ = 0;
  std::int32_t cur_origin_ = -1;   ///< stmt_origin value for emitted instrs
  std::int32_t next_ordinal_ = 0;  ///< next non-internal statement ordinal
};

}  // namespace

BytecodeProgram lower(const Kernel& kernel) {
  Lowerer l(kernel);
  auto p = l.run();
  return p;
}

std::string disassemble(const BytecodeProgram& p) {
  static constexpr const char* names[] = {
      "nop",  "const", "mov",  "builtin", "un",   "bin",   "select", "loadg",
      "storeg", "loads", "stores", "atomaddg", "jmp", "jz", "barrier", "halt",
      "chkxor", "chkval", "dupcmp", "rangechk", "eqchk", "profval", "cntexec", "fihook"};
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "kernel %s: %u slots (%u params, %u named)\n", p.name.c_str(),
                p.num_slots, p.num_params, p.num_named);
  out += buf;
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const Instr& in = p.code[i];
    std::snprintf(buf, sizeof(buf), "%4zu%s %-9s dst=%-4u a=%-4u b=%-4u aux=%-10u imm=%u\n", i,
                  (in.flags & kInstrInLoop) ? "L" : " ",
                  names[static_cast<int>(in.op)], in.dst, in.a, in.b, in.aux, in.imm);
    out += buf;
  }
  return out;
}

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) noexcept {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  template <typename T>
  void pod(T v) noexcept {
    bytes(&v, sizeof v);
  }
  void str(const std::string& s) noexcept {
    pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t program_digest(const BytecodeProgram& p) noexcept {
  Fnv f;
  f.str(p.name);
  f.pod(p.num_params);
  f.pod(p.num_named);
  f.pod(p.num_slots);
  f.pod(p.shared_mem_words);
  f.pod<std::uint32_t>(static_cast<std::uint32_t>(p.code.size()));
  for (const auto& in : p.code) {
    f.pod(static_cast<std::uint8_t>(in.op));
    f.pod(in.flags);
    f.pod(in.dst);
    f.pod(in.a);
    f.pod(in.b);
    f.pod(in.aux);
    f.pod(in.imm);
  }
  for (const auto t : p.slot_types) f.pod(static_cast<std::uint8_t>(t));
  for (const auto s : p.var_slot) f.pod(s);
  f.pod<std::uint32_t>(static_cast<std::uint32_t>(p.fi_sites.size()));
  for (const auto& s : p.fi_sites) {
    f.pod(s.site_id);
    f.pod(s.var);
    f.pod(s.slot);
    f.pod(static_cast<std::uint8_t>(s.type));
    f.pod(static_cast<std::uint8_t>(s.hw));
    f.pod(static_cast<std::uint8_t>(s.in_loop));
    f.pod(static_cast<std::uint8_t>(s.dead_window));
    f.str(s.var_name);
  }
  f.pod<std::uint32_t>(static_cast<std::uint32_t>(p.detectors.size()));
  for (const auto& d : p.detectors) {
    f.pod(d.id);
    f.str(d.name);
    f.pod(static_cast<std::uint8_t>(d.value_type));
    f.pod(static_cast<std::uint8_t>(d.is_iteration_check));
  }
  return f.h;
}

}  // namespace hauberk::kir
