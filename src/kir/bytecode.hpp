// Register-slot bytecode: the compiled form of a kernel.
//
// The AST is what the Hauberk translator instruments (its "source code");
// the bytecode is what the simulated GPU executes (its "SASS").  Lowering
// assigns every kernel parameter and virtual variable a fixed register slot
// and compiles expressions into temporaries above them.  The slot count is
// the kernel's register demand: when it exceeds the device's registers per
// thread, the highest slots are modeled as spilled to memory (Section V.A's
// register-pressure discussion; this is what makes naive duplication and the
// Hauberk-NL pass measurably more expensive in register-tight kernels).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kir/ast.hpp"

namespace hauberk::kir {

enum class OpCode : std::uint8_t {
  Nop = 0,
  Const,        ///< dst <- imm
  Mov,          ///< dst <- a
  Builtin,      ///< dst <- builtin(aux)
  Un,           ///< dst <- unop(aux) a
  Bin,          ///< dst <- binop(aux) a, b
  Select,       ///< dst <- a ? b : c(imm slot)
  LoadG,        ///< dst <- global[a]
  StoreG,       ///< global[a] <- b
  LoadS,        ///< dst <- shared[a]
  StoreS,       ///< shared[a] <- b
  AtomicAddG,   ///< global[a] += b (atomic)
  Jmp,          ///< pc <- aux
  Jz,           ///< if (a == 0) pc <- aux
  Barrier,      ///< __syncthreads
  Halt,         ///< end of kernel

  // Hauberk runtime library calls (FT):
  ChkXor,       ///< checksum ^= bits(a)
  ChkValidate,  ///< if (checksum != 0) cb->sdc = true
  DupCmp,       ///< if (bits(a) != bits(b)) cb->sdc = true
  RangeCheck,   ///< HauberkCheckRange(cb, det=aux, value=a)
  EqualCheck,   ///< HauberkCheckEqual(cb, det=aux, a, b)

  // Hauberk profiler library calls:
  ProfileVal,   ///< record sample(det=aux, value=a)
  CountExec,    ///< bump execution count of site aux

  // Hauberk fault injection library call:
  FIHook,       ///< maybe corrupt slot a according to the injection plan (site aux)
};

/// Instruction flag bits.
enum : std::uint8_t {
  kInstrInLoop = 1u << 0,      ///< executes inside a source-level loop
  kInstrScatter = 1u << 1,     ///< added by R-Scatter duplication (cost-modeled separately)
  kInstrHauberkDup = 1u << 2,  ///< Hauberk non-loop duplicate: fills ILP slack of the
                               ///< latency-bound sequential code it shadows
  kInstrDetectorAux = 1u << 3, ///< loop-detector bookkeeping (accumulator/counter adds,
                               ///< post-loop guards) inserted by the translator
};

struct Instr {
  OpCode op = OpCode::Nop;
  std::uint8_t flags = 0;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t aux = 0;  ///< op-specific: UnOp/BinOp/BuiltinVal/jump target/detector/site
  std::uint32_t imm = 0;  ///< Const bits; Select else-slot
};

/// Fault-injection site metadata (one per FIHook, Fig. 12: identifier,
/// pointer to state, data type, and hardware components used).
struct FISite {
  std::uint32_t site_id = 0;
  VarId var = kInvalidVar;
  std::uint16_t slot = 0;
  DType type = DType::I32;
  HwComponent hw = HwComponent::ALU;
  bool in_loop = false;
  /// Late-window hook: placed after the variable's last use, modeling the
  /// paper's time-random injections that land after the value is dead.
  bool dead_window = false;
  std::string var_name;
};

/// Metadata for a loop/range detector (accumulator value check or iteration
/// count check) referenced by RangeCheck/EqualCheck/ProfileVal `aux`.
struct DetectorMeta {
  int id = -1;
  std::string name;       ///< protected variable name
  DType value_type = DType::F32;
  bool is_iteration_check = false;
};

struct BytecodeProgram {
  std::string name;
  std::vector<Instr> code;
  std::vector<DType> slot_types;   ///< static type of every register slot
  std::uint16_t num_params = 0;    ///< params occupy slots [0, num_params)
  std::uint16_t num_named = 0;     ///< named vars occupy [num_params, num_params+num_named)
  std::uint16_t num_slots = 0;     ///< total including temporaries
  std::vector<std::uint16_t> var_slot;  ///< VarId -> slot
  std::vector<FISite> fi_sites;
  std::vector<DetectorMeta> detectors;
  std::uint32_t shared_mem_words = 0;

  /// Provenance side table, 1:1 with `code`: the pre-order ordinal of the
  /// originating *non-internal* source statement (counting only non-internal
  /// statements), or -1 for instructions the instrumentation inserted.
  /// Because instrumentation only ever inserts whole statements, ordinal k
  /// names the same source statement in a baseline and an instrumented
  /// lowering of one kernel — the anchor the static cycle estimator uses to
  /// transfer measured execution counts between builds.  A side table only:
  /// never read by the engines and excluded from program_digest.
  std::vector<std::int32_t> stmt_origin;

  /// Register demand reported to the launch engine; slots at or above the
  /// device's register budget are modeled as spilled.
  [[nodiscard]] std::uint16_t register_demand() const noexcept { return num_slots; }
};

/// Compile a kernel AST to bytecode.  Throws std::runtime_error on malformed
/// kernels (e.g. unsupported statement nesting).
BytecodeProgram lower(const Kernel& kernel);

/// Disassemble for debugging/tests.
std::string disassemble(const BytecodeProgram& p);

/// Order-sensitive FNV-1a digest over every semantically meaningful field of
/// a program: code, slot layout, FI sites and detector tables.  Two programs
/// digest equal iff the simulated GPU cannot distinguish them; the golden
/// translator-equivalence suite and the printer round-trip tests pin on it.
[[nodiscard]] std::uint64_t program_digest(const BytecodeProgram& p) noexcept;

// ---------------------------------------------------------------------------
// Predecoded execution form
// ---------------------------------------------------------------------------
//
// The interpreter's reference engine re-derives everything per executed
// instruction: it switches on OpCode, unpacks the operator and operand type
// from `aux`, branches on the flag byte for loop attribution, and indexes a
// separate cost vector.  A SWIFI campaign executes the same few hundred
// instructions billions of times, so the fast engine instead runs over this
// predecoded stream where all of that is resolved once per program:
//
//  * `DecodedOp` is a flat opcode with the operator *and* operand type folded
//    in (`Bin(aux=Add,F32)` becomes `AddF`); combinations whose bit-level
//    semantics coincide share one entry (e.g. i32/ptr add both wrap mod 2^32
//    and decode to `AddW`), and anything rare falls back to `UnGeneric` /
//    `BinGeneric`, which re-dispatch exactly like the reference engine.
//  * the per-execution cycle cost (including spill surcharge and duplication
//    discounts) and its loop-attributed share are pre-folded into each
//    instruction, so the hot loop charges both with unconditional adds.
//  * detector operand types (RangeCheck/ProfileVal) are pre-resolved from
//    DetectorMeta into the `t` byte.
//
// The stream is position-stable: decoded[pc] corresponds to code[pc], so
// jump targets, execution-count profiles, and SIMT cost vectors carry over
// unchanged, and a mid-kernel crash happens at the same pc with the same
// partial side effects as the reference engine.
enum class DecodedOp : std::uint8_t {
  Nop = 0,
  Const,     ///< dst <- imm
  Mov,       ///< dst <- a
  Builtin,   ///< dst <- builtin(aux)
  Select,    ///< dst <- a ? b : slot(imm)

  // Unary, type-resolved.
  NegF, NegI, NotF, NotW, BitNot, AbsF, AbsI,
  SqrtF, RsqrtF, ExpF, LogF, SinF, CosF, FloorF,
  I2F,       ///< CastF32 of a signed i32
  P2F,       ///< CastF32 of an unsigned ptr word
  F2I,       ///< CastI32 of an f32 (saturating, NaN -> 0)
  CopyA,     ///< identity cast: dst <- a
  UnGeneric, ///< anything else: unpack aux, call the reference evaluator

  // Binary, type-resolved.  W = bitwise-identical for i32 and ptr.
  AddF, SubF, MulF, DivF, MinF, MaxF,
  LtF, LeF, GtF, GeF, EqF, NeF,
  AddW, SubW, MulW,
  DivI, ModI, DivU, ModU,
  MinI, MaxI, MinU, MaxU,
  LtI, LeI, GtI, GeI,
  LtU, LeU, GtU, GeU,
  EqW, NeW,
  AndB, OrB, XorB, ShlB, ShrL, ShrA,
  LAndW, LOrW,
  BinGeneric,

  // Memory.
  LoadG, StoreG, LoadS, StoreS,
  AtomicAddF, AtomicAddI,

  // Control.
  Jmp, Jz, Barrier, Halt,

  // Hauberk runtime / profiler / FI library calls.
  ChkXor, ChkValidate, DupCmp, RangeCheck, EqualCheck,
  ProfileVal, CountExec, FIHook,

  Invalid,   ///< undecodable encoding (code-segment fault)
};

/// One predecoded instruction (24 bytes).  `cost`/`loop_cost` are the
/// pre-folded cycle charges; `t` is the operand DType where the handler
/// still needs one at run time (hardware-fault typing, detector values).
struct DecodedInstr {
  DecodedOp op = DecodedOp::Invalid;
  std::uint8_t t = 0;      ///< static_cast<DType>: fault/detector value type
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t aux = 0;   ///< jump target / builtin / detector / site / packed op
  std::uint32_t imm = 0;   ///< Const bits; Select else-slot
  std::uint32_t cost = 0;      ///< cycles charged per execution
  std::uint32_t loop_cost = 0; ///< == cost when the source line is in a loop, else 0
};

/// Marker for instructions that are not sanitizer sites.
inline constexpr std::uint32_t kNoSite = 0xffffffffu;

struct DecodedProgram {
  std::vector<DecodedInstr> code;  ///< 1:1 with BytecodeProgram::code

  /// Per-instruction sanitizer site ids, 1:1 with `code`: every Barrier,
  /// LoadS and StoreS instruction gets a dense ordinal (assigned in pc
  /// order), everything else holds kNoSite.  Site ids give sanitizer
  /// reports and the barrier-deadlock diagnostic a stable, program-relative
  /// identity that survives recompilation of unrelated code (unlike raw
  /// pcs, which shift whenever instrumentation is added upstream).
  std::vector<std::uint32_t> sanitizer_sites;
  std::uint32_t num_sites = 0;          ///< total dense site ids assigned
  std::uint32_t num_barrier_sites = 0;  ///< how many of them are barriers

  [[nodiscard]] std::uint32_t site_of(std::uint32_t pc) const noexcept {
    return pc < sanitizer_sites.size() ? sanitizer_sites[pc] : kNoSite;
  }
};

/// Predecode `p` against a per-instruction cost vector (one entry per
/// instruction, as produced by the device's launch-plan analysis).  Never
/// fails: undecodable encodings become DecodedOp::Invalid, which the fast
/// engine reports as a code-segment crash exactly like the reference
/// engine's default case.
DecodedProgram decode_program(const BytecodeProgram& p,
                              std::span<const std::uint32_t> costs);

}  // namespace hauberk::kir
