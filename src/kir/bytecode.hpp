// Register-slot bytecode: the compiled form of a kernel.
//
// The AST is what the Hauberk translator instruments (its "source code");
// the bytecode is what the simulated GPU executes (its "SASS").  Lowering
// assigns every kernel parameter and virtual variable a fixed register slot
// and compiles expressions into temporaries above them.  The slot count is
// the kernel's register demand: when it exceeds the device's registers per
// thread, the highest slots are modeled as spilled to memory (Section V.A's
// register-pressure discussion; this is what makes naive duplication and the
// Hauberk-NL pass measurably more expensive in register-tight kernels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kir/ast.hpp"

namespace hauberk::kir {

enum class OpCode : std::uint8_t {
  Nop = 0,
  Const,        ///< dst <- imm
  Mov,          ///< dst <- a
  Builtin,      ///< dst <- builtin(aux)
  Un,           ///< dst <- unop(aux) a
  Bin,          ///< dst <- binop(aux) a, b
  Select,       ///< dst <- a ? b : c(imm slot)
  LoadG,        ///< dst <- global[a]
  StoreG,       ///< global[a] <- b
  LoadS,        ///< dst <- shared[a]
  StoreS,       ///< shared[a] <- b
  AtomicAddG,   ///< global[a] += b (atomic)
  Jmp,          ///< pc <- aux
  Jz,           ///< if (a == 0) pc <- aux
  Barrier,      ///< __syncthreads
  Halt,         ///< end of kernel

  // Hauberk runtime library calls (FT):
  ChkXor,       ///< checksum ^= bits(a)
  ChkValidate,  ///< if (checksum != 0) cb->sdc = true
  DupCmp,       ///< if (bits(a) != bits(b)) cb->sdc = true
  RangeCheck,   ///< HauberkCheckRange(cb, det=aux, value=a)
  EqualCheck,   ///< HauberkCheckEqual(cb, det=aux, a, b)

  // Hauberk profiler library calls:
  ProfileVal,   ///< record sample(det=aux, value=a)
  CountExec,    ///< bump execution count of site aux

  // Hauberk fault injection library call:
  FIHook,       ///< maybe corrupt slot a according to the injection plan (site aux)
};

/// Instruction flag bits.
enum : std::uint8_t {
  kInstrInLoop = 1u << 0,      ///< executes inside a source-level loop
  kInstrScatter = 1u << 1,     ///< added by R-Scatter duplication (cost-modeled separately)
  kInstrHauberkDup = 1u << 2,  ///< Hauberk non-loop duplicate: fills ILP slack of the
                               ///< latency-bound sequential code it shadows
  kInstrDetectorAux = 1u << 3, ///< loop-detector bookkeeping (accumulator/counter adds,
                               ///< post-loop guards) inserted by the translator
};

struct Instr {
  OpCode op = OpCode::Nop;
  std::uint8_t flags = 0;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t aux = 0;  ///< op-specific: UnOp/BinOp/BuiltinVal/jump target/detector/site
  std::uint32_t imm = 0;  ///< Const bits; Select else-slot
};

/// Fault-injection site metadata (one per FIHook, Fig. 12: identifier,
/// pointer to state, data type, and hardware components used).
struct FISite {
  std::uint32_t site_id = 0;
  VarId var = kInvalidVar;
  std::uint16_t slot = 0;
  DType type = DType::I32;
  HwComponent hw = HwComponent::ALU;
  bool in_loop = false;
  /// Late-window hook: placed after the variable's last use, modeling the
  /// paper's time-random injections that land after the value is dead.
  bool dead_window = false;
  std::string var_name;
};

/// Metadata for a loop/range detector (accumulator value check or iteration
/// count check) referenced by RangeCheck/EqualCheck/ProfileVal `aux`.
struct DetectorMeta {
  int id = -1;
  std::string name;       ///< protected variable name
  DType value_type = DType::F32;
  bool is_iteration_check = false;
};

struct BytecodeProgram {
  std::string name;
  std::vector<Instr> code;
  std::vector<DType> slot_types;   ///< static type of every register slot
  std::uint16_t num_params = 0;    ///< params occupy slots [0, num_params)
  std::uint16_t num_named = 0;     ///< named vars occupy [num_params, num_params+num_named)
  std::uint16_t num_slots = 0;     ///< total including temporaries
  std::vector<std::uint16_t> var_slot;  ///< VarId -> slot
  std::vector<FISite> fi_sites;
  std::vector<DetectorMeta> detectors;
  std::uint32_t shared_mem_words = 0;

  /// Register demand reported to the launch engine; slots at or above the
  /// device's register budget are modeled as spilled.
  [[nodiscard]] std::uint16_t register_demand() const noexcept { return num_slots; }
};

/// Compile a kernel AST to bytecode.  Throws std::runtime_error on malformed
/// kernels (e.g. unsupported statement nesting).
BytecodeProgram lower(const Kernel& kernel);

/// Disassemble for debugging/tests.
std::string disassemble(const BytecodeProgram& p);

}  // namespace hauberk::kir
