// Threaded-code execution form: the compiled stream behind
// gpusim::ExecEngine::Threaded.
//
// The predecoded fast engine (kir::DecodedProgram) already folds operator,
// operand type and cycle cost into one flat instruction, but it still pays
// one dispatch, one watchdog test and one cost/loop-cost/pc update per
// *source* instruction.  A SWIFI campaign replays the same few hundred
// instructions billions of times, so this third compilation step buys the
// remaining headroom:
//
//  * `TOp` is the threaded opcode set: every DecodedOp has a 1:1 single-op
//    entry (same numeric value — see the static_asserts below), plus fused
//    *superinstructions* for the idioms the lowering actually emits per loop
//    iteration (Const/compare/Jz loop heads, Const/add/Jmp back-edges,
//    load-op-store global accumulates, and the Hauberk detector sequences
//    ChkXor/DupCmp/RangeCheck).  A fused op executes 2-3 source
//    instructions under a single dispatch and a single budget decrement.
//  * straight-line *runs*: a maximal region with no control transfer inside
//    and no jump target after its first slot compiles to a `RunHead` that
//    performs one budget test and one pre-summed cost charge for the whole
//    region, then falls through *naked* op variants (`Nk_*`) that execute
//    with no per-op accounting at all.  Ops that can crash mid-run carry
//    the suffix charge to refund, so a crash bills exactly the prefix the
//    fast engine would have billed.
//  * the stream is position-stable: code[pc] corresponds to decoded pc and
//    a fused head sits at its first instruction's slot.  Slots covered by a
//    2-3-op fused head *retain their single-op translations*, so a jump
//    into the middle lands on ordinary instructions; run interiors instead
//    hold naked ops, which is safe because the compiler only forms runs
//    whose interior slots are not jump targets (and barriers/branches never
//    appear inside a run, so no resume point lands there either).
//  * per-launch-plan specialization: the reloaded loop constants of the
//    Const+compare and Const+add idioms are folded into the
//    superinstruction immediate, and the watchdog budget becomes one
//    countdown decremented once per (super)instruction or run.
//
// Determinism contract: a fused handler must be bit-identical to running
// its singles back to back.  Anything it cannot replicate exactly — a
// watchdog boundary inside the fused region, a crash condition, paged
// (CPU-model) global memory — it *delegates*: the interpreter falls back to
// the position-stable DecodedProgram singles from the head pc, before any
// register write or cost charge, so the observable trace is the reference
// trace by construction.  compile_threaded therefore only emits fused ops
// whose crash conditions are checkable up front (no Div/Mod fusions, store
// addresses not written by the covered instructions).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kir/bytecode.hpp"

namespace hauberk::kir {

// Master opcode lists.  HAUBERK_TOP_SINGLE_LIST mirrors DecodedOp entry for
// entry (pinned by static_asserts); the CMP/ALU lists are the operator
// families eligible for fusion — none of them can crash, which is what lets
// fused handlers charge their summed cost after one up-front check.
#define HAUBERK_TOP_SINGLE_LIST(X) \
  X(Nop) X(Const) X(Mov) X(Builtin) X(Select) \
  X(NegF) X(NegI) X(NotF) X(NotW) X(BitNot) X(AbsF) X(AbsI) \
  X(SqrtF) X(RsqrtF) X(ExpF) X(LogF) X(SinF) X(CosF) X(FloorF) \
  X(I2F) X(P2F) X(F2I) X(CopyA) X(UnGeneric) \
  X(AddF) X(SubF) X(MulF) X(DivF) X(MinF) X(MaxF) \
  X(LtF) X(LeF) X(GtF) X(GeF) X(EqF) X(NeF) \
  X(AddW) X(SubW) X(MulW) \
  X(DivI) X(ModI) X(DivU) X(ModU) \
  X(MinI) X(MaxI) X(MinU) X(MaxU) \
  X(LtI) X(LeI) X(GtI) X(GeI) \
  X(LtU) X(LeU) X(GtU) X(GeU) \
  X(EqW) X(NeW) \
  X(AndB) X(OrB) X(XorB) X(ShlB) X(ShrL) X(ShrA) \
  X(LAndW) X(LOrW) X(BinGeneric) \
  X(LoadG) X(StoreG) X(LoadS) X(StoreS) X(AtomicAddF) X(AtomicAddI) \
  X(Jmp) X(Jz) X(Barrier) X(Halt) \
  X(ChkXor) X(ChkValidate) X(DupCmp) X(RangeCheck) X(EqualCheck) \
  X(ProfileVal) X(CountExec) X(FIHook) \
  X(Invalid)

/// Comparison operators fusable with a following Jz (loop heads, while
/// conditions, compare-branch tails).
#define HAUBERK_TOP_CMP_LIST(X) \
  X(LtI) X(LeI) X(GtI) X(GeI) \
  X(LtU) X(LeU) X(GtU) X(GeU) \
  X(LtF) X(LeF) X(GtF) X(GeF) \
  X(EqW) X(NeW) X(EqF) X(NeF)

/// Non-crashing ALU operators fusable inside Const-bin, load-op-store and
/// detector superinstructions, and specialized into the naked tiles below.
/// The set is profile-driven: the arithmetic core plus the compare/mask
/// operators that dominate loop conditions in the workload suites.
#define HAUBERK_TOP_ALU_LIST(X)                            \
  X(AddW) X(SubW) X(MulW) X(AddF) X(SubF) X(MulF)          \
  X(DivF) X(MaxF) X(LtF) X(GtI) X(EqW) X(AndB) X(ShrA) X(LAndW)

/// Every ordered (K1, K2) pair of the ALU list — the naked back-to-back
/// binary tile (NkBinBin) is specialized per combination so both operators
/// dispatch once.  The row macro calls X(K1, K2) for each K2.
#define HAUBERK_TOP_ALU_PAIR_ROW(X, K1)                               \
  X(K1, AddW) X(K1, SubW) X(K1, MulW) X(K1, AddF) X(K1, SubF)         \
  X(K1, MulF) X(K1, DivF) X(K1, MaxF) X(K1, LtF) X(K1, GtI)           \
  X(K1, EqW) X(K1, AndB) X(K1, ShrA) X(K1, LAndW)
#define HAUBERK_TOP_ALU_PAIR_LIST(X)    \
  HAUBERK_TOP_ALU_PAIR_ROW(X, AddW)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, SubW)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, MulW)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, AddF)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, SubF)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, MulF)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, DivF)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, MaxF)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, LtF)      \
  HAUBERK_TOP_ALU_PAIR_ROW(X, GtI)      \
  HAUBERK_TOP_ALU_PAIR_ROW(X, EqW)      \
  HAUBERK_TOP_ALU_PAIR_ROW(X, AndB)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, ShrA)     \
  HAUBERK_TOP_ALU_PAIR_ROW(X, LAndW)

/// Ops that may appear *inside* a straight-line run: every single except
/// control transfer (Jmp/Jz/Barrier/Halt) and Invalid.  Their naked (`Nk_`)
/// variants execute with no budget test, no cost charge and no instruction
/// count — the RunHead already accounted for the whole region.
#define HAUBERK_TOP_NAKED_LIST(X) \
  X(Nop) X(Const) X(Mov) X(Builtin) X(Select) \
  X(NegF) X(NegI) X(NotF) X(NotW) X(BitNot) X(AbsF) X(AbsI) \
  X(SqrtF) X(RsqrtF) X(ExpF) X(LogF) X(SinF) X(CosF) X(FloorF) \
  X(I2F) X(P2F) X(F2I) X(CopyA) X(UnGeneric) \
  X(AddF) X(SubF) X(MulF) X(DivF) X(MinF) X(MaxF) \
  X(LtF) X(LeF) X(GtF) X(GeF) X(EqF) X(NeF) \
  X(AddW) X(SubW) X(MulW) \
  X(DivI) X(ModI) X(DivU) X(ModU) \
  X(MinI) X(MaxI) X(MinU) X(MaxU) \
  X(LtI) X(LeI) X(GtI) X(GeI) \
  X(LtU) X(LeU) X(GtU) X(GeU) \
  X(EqW) X(NeW) \
  X(AndB) X(OrB) X(XorB) X(ShlB) X(ShrL) X(ShrA) \
  X(LAndW) X(LOrW) X(BinGeneric) \
  X(LoadG) X(StoreG) X(LoadS) X(StoreS) X(AtomicAddF) X(AtomicAddI) \
  X(ChkXor) X(ChkValidate) X(DupCmp) X(RangeCheck) X(EqualCheck) \
  X(ProfileVal) X(CountExec) X(FIHook)

enum class TOp : std::uint16_t {
#define HAUBERK_TOP_E(n) n,
  HAUBERK_TOP_SINGLE_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E

  // --- fused superinstructions (always >= FusedBegin) ---
  // [Cmp dst,a,b][Jz dst,target] and [Const c,imm][Cmp dst,a,c][Jz dst,target]
#define HAUBERK_TOP_E(n) CmpJz_##n, ConstCmpJz_##n,
  HAUBERK_TOP_CMP_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E
  // Loop back-edges: [Const c,imm][AddW dst,a,c][Jmp target] / [AddW][Jmp].
  ConstAddJmp, AddJmp,
  // [Const c,imm][Bin dst,a,b], [LoadG c,a][Bin][StoreG], and the detector
  // tails [Bin][ChkXor] / [Bin][DupCmp].
#define HAUBERK_TOP_E(n) ConstBin_##n, LoadBinStore_##n, BinChkXor_##n, BinDupCmp_##n,
  HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E
  ChkXor2, RangeCheck2,

  // --- straight-line runs ---
  // RunHead performs one budget test + one pre-summed charge for `len`
  // source instructions, then dispatches the naked variant in `d` (the
  // head's own operands live in the same slot, so the head tile must not
  // use the d field itself, and must be crash-free — cost/loop_cost/len
  // carry the region sums, leaving no room for refund data).  Interior
  // slots hold naked singles and naked tiles; crashable naked forms carry
  // the suffix charge to refund in their (otherwise unused)
  // cost/loop_cost/len fields.
  RunHead,
#define HAUBERK_TOP_E(n) Nk_##n,
  HAUBERK_TOP_NAKED_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E
#define HAUBERK_TOP_E(n) NkConstBin_##n, NkBinChkXor_##n, NkBinDupCmp_##n,
  HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E
  NkChkXor2, NkRangeCheck2,
  // Generic naked tiles for the idioms the pair-frequency profile of the
  // workload suite actually shows inside runs: back-to-back ALU ops, an ALU
  // op next to a reloaded constant, adjacent constants, loads feeding or fed
  // by an ALU op, and the 3-op addressing idiom Const+AddW+LoadG.
#define HAUBERK_TOP_E(a, b) NkBinBin_##a##_##b,
  HAUBERK_TOP_ALU_PAIR_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E
#define HAUBERK_TOP_E(n) NkBinConst_##n, NkLoadBin_##n, NkBinLoad_##n, NkConstBinLoad_##n,
  HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_E)
#undef HAUBERK_TOP_E
  NkConst2, NkLoadConst,
  Count_,
};

inline constexpr std::uint16_t kTOpFusedBegin =
    static_cast<std::uint16_t>(TOp::Invalid) + 1;
inline constexpr std::size_t kNumTOps = static_cast<std::size_t>(TOp::Count_);

// Pin the single-op block to DecodedOp, value for value: the interpreter
// casts between them and the decode-completeness test walks the mirror.
#define HAUBERK_TOP_CHECK(n) \
  static_assert(static_cast<unsigned>(TOp::n) == static_cast<unsigned>(DecodedOp::n));
HAUBERK_TOP_SINGLE_LIST(HAUBERK_TOP_CHECK)
#undef HAUBERK_TOP_CHECK

[[nodiscard]] constexpr bool top_is_fused(TOp op) noexcept {
  return static_cast<std::uint16_t>(op) >= kTOpFusedBegin &&
         op != TOp::Count_;
}

/// The single-op TOp for a DecodedOp (the identity mapping the
/// static_asserts above pin down).  DecodedOp::Invalid maps to TOp::Invalid,
/// which the interpreter reports as a code-segment crash.
[[nodiscard]] constexpr TOp threaded_single_op(DecodedOp op) noexcept {
  return static_cast<TOp>(static_cast<std::uint8_t>(op));
}

[[nodiscard]] const char* top_name(TOp op) noexcept;

/// One threaded instruction (32 bytes).  Singles carry the DecodedInstr
/// fields verbatim (len == 1); fused ops reuse them per the pattern layout
/// documented in threaded.cpp, with `c`/`d` as extra register slots, `len`
/// as the number of covered source instructions, and cost/loop_cost as the
/// pre-summed charge for the whole region.
struct ThreadedInstr {
  std::uint16_t op = static_cast<std::uint16_t>(TOp::Invalid);
  std::uint8_t t = 0;        ///< DType byte / fused operand-order flag / packed pair
  std::uint8_t len = 1;      ///< source instructions covered (1 for singles)
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;       ///< fused: extra slot (folded Const dst, 2nd ChkXor dst, ...)
  std::uint16_t d = 0;       ///< fused: extra slot
  std::uint32_t aux = 0;
  std::uint32_t imm = 0;
  std::uint32_t cost = 0;
  std::uint32_t loop_cost = 0;
};
static_assert(sizeof(ThreadedInstr) <= 32);

/// Fusion families, for stats and tests.
enum class FuseFamily : std::uint8_t {
  ConstCmpJz, CmpJz, ConstAddJmp, AddJmp,
  ConstBin, LoadBinStore, BinChkXor, BinDupCmp, ChkXor2, RangeCheck2,
  Count_,
};
inline constexpr std::size_t kNumFuseFamilies = static_cast<std::size_t>(FuseFamily::Count_);

struct ThreadedProgram {
  std::vector<ThreadedInstr> code;  ///< 1:1 with DecodedProgram::code (position-stable)

  // Compile-time statistics (inspect tool, fusion regression tests).
  std::array<std::uint32_t, kNumFuseFamilies> fuse_counts{};  ///< fused heads per family
  std::uint32_t fused_heads = 0;    ///< total fused superinstructions emitted
  std::uint32_t fused_covered = 0;  ///< source instructions covered by fused heads
  std::uint32_t run_heads = 0;      ///< straight-line runs emitted
  std::uint32_t run_covered = 0;    ///< source instructions inside runs (incl. heads)
  /// Divergence dataflow results (the bytecode mirror of the kir divergence
  /// analysis): branches whose condition only depends on thread-uniform
  /// inputs (params, block builtins, constants) vs. thread-dependent ones.
  std::uint32_t uniform_branches = 0;
  std::uint32_t divergent_branches = 0;
  bool has_barriers = false;
};

/// Compile a predecoded stream into threaded-code form.  `num_slots` is the
/// program's register-slot count (divergence dataflow); `flat_global_memory`
/// is whether the target device uses the FlatGpu arena — load/store fusions
/// are only emitted there, because only the flat model's bounds are
/// checkable before any side effect (the PagedCpu fallback keeps singles,
/// which handle paged memory exactly like the fast engine).  `form_runs`
/// enables the straight-line-run pass (off only for the identity-translation
/// test and the inspect tool's per-op view).
[[nodiscard]] ThreadedProgram compile_threaded(const DecodedProgram& d,
                                               std::uint16_t num_slots,
                                               bool flat_global_memory,
                                               bool form_runs = true);

}  // namespace hauberk::kir
