#include "kir/analysis.hpp"

#include <algorithm>
#include <functional>

namespace hauberk::kir {

// ---------------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------------

bool Analysis::expr_reads(const ExprPtr& e, VarId v) {
  if (!e) return false;
  if (e->kind == ExprKind::VarRef) return e->var == v;
  return expr_reads(e->a, v) || expr_reads(e->b, v) || expr_reads(e->c, v);
}

void Analysis::collect_reads(const ExprPtr& e, std::set<VarId>& out) {
  if (!e) return;
  if (e->kind == ExprKind::VarRef) out.insert(e->var);
  collect_reads(e->a, out);
  collect_reads(e->b, out);
  collect_reads(e->c, out);
}

void Analysis::count_nodes(const ExprPtr& e, int& ops, int& loads) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::Unary:
    case ExprKind::Binary:
    case ExprKind::Select:
      ++ops;
      break;
    case ExprKind::LoadGlobal:
    case ExprKind::LoadShared:
      ++loads;
      break;
    default:
      break;
  }
  count_nodes(e->a, ops, loads);
  count_nodes(e->b, ops, loads);
  count_nodes(e->c, ops, loads);
}

// ---------------------------------------------------------------------------
// Kernel scan
// ---------------------------------------------------------------------------

Analysis::Analysis(const Kernel& kernel) : kernel_(&kernel) {
  facts_.resize(kernel.vars.size());
  for (VarId v = 0; v < facts_.size(); ++v) facts_[v].var = v;
  loops_.resize(kernel.num_loops);
  scan(kernel.body, 0, kNoLoop);
}

void Analysis::note_use(const ExprPtr& e) {
  std::set<VarId> reads;
  collect_reads(e, reads);
  for (VarId v : reads)
    for (std::uint32_t l : loop_stack_) facts_[v].loops_using.insert(l);
}

void Analysis::scan(const StmtList& body, int depth, std::uint32_t loop) {
  for (const auto& s : body) scan_stmt(s, depth, loop);
}

void Analysis::scan_stmt(const StmtPtr& s, int depth, std::uint32_t loop) {
  switch (s->kind) {
    case StmtKind::Let: {
      VarFacts& f = facts_[s->var];
      f.def_depth = depth;
      f.def_loop = loop;
      note_use(s->value);
      for (std::uint32_t l : loop_stack_) loops_[l].lets_inside.push_back(s->var);
      break;
    }
    case StmtKind::Assign: {
      VarFacts& f = facts_[s->var];
      if (depth > 0) f.assigned_in_loop = true;
      note_use(s->value);
      for (std::uint32_t l : loop_stack_) {
        loops_[l].assigns_inside.push_back(s->var);
        f.loops_assigning.insert(l);
      }
      break;
    }
    case StmtKind::StoreGlobal:
    case StmtKind::StoreShared:
    case StmtKind::AtomicAddGlobal:
      note_use(s->addr);
      note_use(s->value);
      break;
    case StmtKind::For: {
      LoopNode& ln = loops_[s->loop_id];
      ln.id = s->loop_id;
      ln.stmt = s.get();
      ln.parent = loop;
      ln.depth = depth + 1;
      ln.is_for = true;
      ln.iterator = s->var;
      facts_[s->var].is_loop_iterator = true;
      facts_[s->var].def_depth = depth + 1;
      facts_[s->var].def_loop = s->loop_id;
      note_use(s->init);  // evaluated once, outside the loop body
      loop_stack_.push_back(s->loop_id);
      note_use(s->limit);  // re-evaluated every iteration
      note_use(s->step);
      scan(s->body, depth + 1, s->loop_id);
      loop_stack_.pop_back();
      break;
    }
    case StmtKind::While: {
      LoopNode& ln = loops_[s->loop_id];
      ln.id = s->loop_id;
      ln.stmt = s.get();
      ln.parent = loop;
      ln.depth = depth + 1;
      ln.is_for = false;
      loop_stack_.push_back(s->loop_id);
      note_use(s->value);
      scan(s->body, depth + 1, s->loop_id);
      loop_stack_.pop_back();
      break;
    }
    case StmtKind::If:
      note_use(s->value);
      scan(s->body, depth, loop);
      scan(s->else_body, depth, loop);
      break;
    case StmtKind::Barrier:
      break;
    default:
      // Instrumentation statements: record their reads so later passes see
      // accurate use information when re-analyzing instrumented kernels.
      note_use(s->value);
      note_use(s->rhs);
      break;
  }
}

// ---------------------------------------------------------------------------
// Loop dataflow (Fig. 9)
// ---------------------------------------------------------------------------

namespace {

/// Visit Let/Assign statements inside a loop body (recursing into nested
/// control flow), invoking fn(stmt).
void for_each_def(const StmtList& body, const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::Let:
      case StmtKind::Assign:
        fn(*s);
        break;
      case StmtKind::For:
      case StmtKind::While:
      case StmtKind::If:
        for_each_def(s->body, fn);
        for_each_def(s->else_body, fn);
        break;
      default:
        break;
    }
  }
}

void for_each_store(const StmtList& body, const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::StoreGlobal:
      case StmtKind::StoreShared:
      case StmtKind::AtomicAddGlobal:
        fn(*s);
        break;
      case StmtKind::For:
      case StmtKind::While:
      case StmtKind::If:
        for_each_store(s->body, fn);
        for_each_store(s->else_body, fn);
        break;
      default:
        break;
    }
  }
}

}  // namespace

LoopDataflow Analysis::loop_dataflow(std::uint32_t loop_id) const {
  const LoopNode& ln = loops_.at(loop_id);
  LoopDataflow df;
  df.loop_id = loop_id;

  // Loop vars: defined or re-defined anywhere inside the loop.
  std::set<VarId> loop_vars(ln.lets_inside.begin(), ln.lets_inside.end());
  loop_vars.insert(ln.assigns_inside.begin(), ln.assigns_inside.end());
  df.loop_vars.assign(loop_vars.begin(), loop_vars.end());

  for_each_def(ln.stmt->body, [&](const Stmt& s) {
    std::set<VarId> reads;
    collect_reads(s.value, reads);
    for (VarId r : reads)
      if (loop_vars.count(r) && r != s.var) df.uses[s.var].insert(r);
    int ops = 0, loads = 0;
    count_nodes(s.value, ops, loads);
    df.op_nodes[s.var] += ops;
    df.load_nodes[s.var] += loads;
  });

  // Outputs: stored to memory inside the loop, or live after the loop
  // (defined outside but updated inside => read by later code by construction).
  std::set<VarId> outs;
  for_each_store(ln.stmt->body, [&](const Stmt& s) {
    std::set<VarId> reads;
    collect_reads(s.value, reads);
    collect_reads(s.addr, reads);
    for (VarId r : reads)
      if (loop_vars.count(r)) outs.insert(r);
  });
  for (VarId v : ln.assigns_inside)
    if (!std::count(ln.lets_inside.begin(), ln.lets_inside.end(), v)) outs.insert(v);
  df.outputs.assign(outs.begin(), outs.end());
  return df;
}

std::set<VarId> LoopDataflow::backward_set(VarId v) const {
  std::set<VarId> seen{v};
  std::vector<VarId> work{v};
  while (!work.empty()) {
    VarId cur = work.back();
    work.pop_back();
    auto it = uses.find(cur);
    if (it == uses.end()) continue;
    for (VarId u : it->second)
      if (seen.insert(u).second) work.push_back(u);
  }
  return seen;
}

std::set<VarId> LoopDataflow::forward_set(VarId v) const {
  // Reverse reachability: all w with v in backward_set(w).
  std::set<VarId> out;
  for (VarId w : loop_vars)
    if (w != v && backward_set(w).count(v)) out.insert(w);
  return out;
}

int LoopDataflow::cbd(VarId v) const {
  const auto closure = backward_set(v);
  int total = static_cast<int>(closure.size()) - 1;  // other loop vars feeding v
  for (VarId w : closure) {
    auto oit = op_nodes.find(w);
    if (oit != op_nodes.end()) total += oit->second;
    auto lit = load_nodes.find(w);
    if (lit != load_nodes.end()) total += lit->second;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Self-accumulators, trip counts, protection plan
// ---------------------------------------------------------------------------

std::set<VarId> Analysis::self_accumulators(std::uint32_t loop_id) const {
  const LoopNode& ln = loops_.at(loop_id);
  std::set<VarId> lets(ln.lets_inside.begin(), ln.lets_inside.end());
  std::set<VarId> out;
  for_each_def(ln.stmt->body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Assign) return;
    if (lets.count(s.var)) return;  // must be defined outside the loop
    const ExprPtr& e = s.value;
    if (e->kind != ExprKind::Binary) return;
    if (e->bin != BinOp::Add && e->bin != BinOp::Sub) return;
    const bool lhs_self = e->a && e->a->kind == ExprKind::VarRef && e->a->var == s.var;
    const bool rhs_self =
        e->b && e->b->kind == ExprKind::VarRef && e->b->var == s.var && e->bin == BinOp::Add;
    if (lhs_self || rhs_self) out.insert(s.var);
  });
  return out;
}

ExprPtr Analysis::derive_trip_count(std::uint32_t loop_id) const {
  const LoopNode& ln = loops_.at(loop_id);
  if (!ln.is_for) return nullptr;  // while loops: count not statically derivable
  const Stmt& s = *ln.stmt;

  // Bounds must not depend on state mutated inside the loop, and must be
  // side-effect free (no loads of memory the loop may write; we conservatively
  // reject loads entirely).
  std::set<VarId> mutated(ln.assigns_inside.begin(), ln.assigns_inside.end());
  mutated.insert(ln.lets_inside.begin(), ln.lets_inside.end());
  mutated.insert(s.var);
  auto ok = [&](const ExprPtr& e) {
    int ops = 0, loads = 0;
    count_nodes(e, ops, loads);
    if (loads != 0) return false;
    std::set<VarId> reads;
    collect_reads(e, reads);
    for (VarId r : reads)
      if (mutated.count(r)) return false;
    return true;
  };
  if (!ok(s.init) || !ok(s.limit) || !ok(s.step)) return nullptr;

  // trip = max(0, (limit - init + step - 1) / step); with the common step==1
  // constant this simplifies to max(0, limit - init).
  const ExprPtr zero = Expr::make_const(Value::i32(0));
  ExprPtr span = Expr::make_binary(BinOp::Sub, clone_expr(s.limit), clone_expr(s.init));
  const bool unit_step = s.step->kind == ExprKind::Const && s.step->constant.as_i32() == 1;
  if (!unit_step) {
    ExprPtr adj = Expr::make_binary(
        BinOp::Sub, clone_expr(s.step), Expr::make_const(Value::i32(1)));
    span = Expr::make_binary(BinOp::Add, std::move(span), std::move(adj));
    span = Expr::make_binary(BinOp::Div, std::move(span), clone_expr(s.step));
  }
  return Expr::make_binary(BinOp::Max, zero, std::move(span));
}

LoopProtectionPlan Analysis::plan_loop_protection(std::uint32_t loop_id, int maxvar) const {
  return plan_loop_protection(loop_id, maxvar, loop_dataflow(loop_id));
}

LoopProtectionPlan Analysis::plan_loop_protection(std::uint32_t loop_id, int maxvar,
                                                  const LoopDataflow& df) const {
  LoopProtectionPlan plan;
  plan.loop_id = loop_id;
  plan.trip_count = derive_trip_count(loop_id);

  const std::set<VarId> sa = self_accumulators(loop_id);

  // Candidate set: loop vars, excluding loop iterators (covered by the
  // iteration-count invariant) and pointer-typed variables (range checking a
  // pointer value is meaningless).
  std::set<VarId> remaining;
  for (VarId v : df.loop_vars) {
    if (facts_[v].is_loop_iterator) continue;
    if (kernel_->vars[v].type == DType::PTR) continue;
    remaining.insert(v);
  }

  auto take = [&](VarId v) {
    plan.selected.push_back(v);
    remaining.erase(v);
    // Exclude variables with forward dataflow dependency to the selected one
    // (their errors propagate into it, so they are already covered).
    for (VarId w : df.backward_set(v))
      if (remaining.erase(w)) plan.covered.push_back(w);
  };

  // Step 1: self-accumulating variables first (no in-loop code needed).
  for (VarId v : sa) {
    if (static_cast<int>(plan.selected.size()) >= maxvar) break;
    if (!remaining.count(v)) continue;
    plan.self_accumulating.insert(v);
    take(v);
  }

  // Step 2: repeatedly pick the remaining variable with the largest
  // cumulative backward dataflow dependency.
  while (static_cast<int>(plan.selected.size()) < maxvar && !remaining.empty()) {
    VarId best = kInvalidVar;
    int best_cbd = -1;
    for (VarId v : remaining) {
      const int c = df.cbd(v);
      if (c > best_cbd || (c == best_cbd && v < best)) {
        best = v;
        best_cbd = c;
      }
    }
    take(best);
  }
  // Whatever is still unselected lost to the Maxvar budget.
  plan.evicted.assign(remaining.begin(), remaining.end());
  return plan;
}

}  // namespace hauberk::kir
