#include "swifi/service.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/worker_pool.hpp"
#include "hauberk/checkpoint.hpp"
#include "swifi/queue.hpp"
#include "swifi/resultlog.hpp"

namespace hauberk::swifi {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fnv_f64(std::uint64_t& h, double v) noexcept {
  fnv(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t campaign_digest(const kir::BytecodeProgram& program,
                              const std::vector<FaultSpec>& specs,
                              const workloads::Requirement& req,
                              std::uint64_t remark_digest,
                              gpusim::ecc::Scheme protection,
                              std::uint64_t plan_digest,
                              std::uint64_t prune_digest) {
  std::uint64_t h = kFnvOffset;
  fnv(h, kir::program_digest(program));
  fnv(h, specs.size());
  for (const FaultSpec& s : specs) {
    fnv(h, s.site_id);
    fnv(h, s.thread);
    fnv(h, s.occurrence);
    fnv(h, s.mask);
    fnv(h, static_cast<std::uint64_t>(s.var));
    fnv(h, static_cast<std::uint64_t>(s.type));
    fnv(h, static_cast<std::uint64_t>(s.hw));
  }
  fnv(h, static_cast<std::uint64_t>(req.kind));
  fnv_f64(h, req.abs_floor);
  fnv_f64(h, req.rel);
  fnv_f64(h, req.eps);
  fnv_f64(h, req.global_rel);
  fnv_f64(h, req.pixel_delta);
  fnv_f64(h, req.frac);
  fnv(h, remark_digest);
  // Folded only when protection is on: the None digest must stay what it was
  // before protected mode existed, so pre-ECC checkpoints keep validating.
  if (protection != gpusim::ecc::Scheme::None) {
    fnv(h, 0xECCull);
    fnv(h, static_cast<std::uint64_t>(protection));
  }
  // Same arrangement for hardening plans: the trivial plan's digest is 0 and
  // contributes nothing, so plan-free campaigns keep their historic digests.
  if (plan_digest != 0) {
    fnv(h, 0x504Cull);
    fnv(h, plan_digest);
  }
  // And for pruning plans: unpruned campaigns keep their historic digests.
  if (prune_digest != 0) {
    fnv(h, 0x5052ull);
    fnv(h, prune_digest);
  }
  return h;
}

void CampaignCheckpoint::save(const std::string& path) const {
  core::CheckpointWriter w;
  w.u64(config_digest);
  w.u32(shards);
  w.u32(shard_index);
  w.u64(trials_total);
  w.u64(watermark);
  w.u64(counts.failure);
  w.u64(counts.masked);
  w.u64(counts.detected_masked);
  w.u64(counts.detected);
  w.u64(counts.undetected);
  w.u64(counts.not_activated);
  w.u64(counts.race_detected);
  w.u64(counts.barrier_divergence);
  w.u64(counts.ecc_corrected);
  w.u64(counts.ecc_uncorrectable);
  for (const auto c : site_hist.raw_counts()) w.u64(c);
  for (const auto c : sdc_site_hist.raw_counts()) w.u64(c);
  w.u64(remark_digest);
  w.u64(log_payload_bytes);
  w.u32(log_payload_crc);
  w.u64(checkpoints_written);
  w.save_atomic(path, kCampaignCheckpointMagic, kCampaignCheckpointVersion);
}

CampaignCheckpoint CampaignCheckpoint::load(const std::string& path) {
  auto r = core::CheckpointReader::load(path, kCampaignCheckpointMagic,
                                        kCampaignCheckpointVersion);
  CampaignCheckpoint ck;
  ck.config_digest = r.u64();
  ck.shards = r.u32();
  ck.shard_index = r.u32();
  ck.trials_total = r.u64();
  ck.watermark = r.u64();
  ck.counts.failure = r.u64();
  ck.counts.masked = r.u64();
  ck.counts.detected_masked = r.u64();
  ck.counts.detected = r.u64();
  ck.counts.undetected = r.u64();
  ck.counts.not_activated = r.u64();
  ck.counts.race_detected = r.u64();
  ck.counts.barrier_divergence = r.u64();
  ck.counts.ecc_corrected = r.u64();
  ck.counts.ecc_uncorrectable = r.u64();
  std::array<std::uint64_t, common::Log2Histogram::kBuckets> buckets;
  for (auto& c : buckets) c = r.u64();
  ck.site_hist.restore(buckets);
  for (auto& c : buckets) c = r.u64();
  ck.sdc_site_hist.restore(buckets);
  ck.remark_digest = r.u64();
  ck.log_payload_bytes = r.u64();
  ck.log_payload_crc = r.u32();
  ck.checkpoints_written = r.u64();
  if (r.remaining() != 0)
    throw core::CheckpointError("checkpoint: '" + path + "' has trailing payload bytes");
  return ck;
}

void ServiceResult::merge(const ServiceResult& other) {
  if (other.config_digest != config_digest)
    throw std::invalid_argument("ServiceResult::merge: shards from different campaigns");
  if (other.remark_digest != remark_digest)
    throw std::invalid_argument("ServiceResult::merge: remark digests differ");
  counts.failure += other.counts.failure;
  counts.masked += other.counts.masked;
  counts.detected_masked += other.counts.detected_masked;
  counts.detected += other.counts.detected;
  counts.undetected += other.counts.undetected;
  counts.not_activated += other.counts.not_activated;
  counts.race_detected += other.counts.race_detected;
  counts.barrier_divergence += other.counts.barrier_divergence;
  counts.ecc_corrected += other.counts.ecc_corrected;
  counts.ecc_uncorrectable += other.counts.ecc_uncorrectable;
  site_hist.merge(other.site_hist);
  sdc_site_hist.merge(other.sdc_site_hist);
  shard_trials += other.shard_trials;
  trials_run += other.trials_run;
  trials_resumed += other.trials_resumed;
  checkpoints_written += other.checkpoints_written;
}

CampaignService::CampaignService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.shards < 1) throw std::invalid_argument("CampaignService: shards must be >= 1");
  if (cfg_.shard_index >= cfg_.shards)
    throw std::invalid_argument("CampaignService: shard_index must be < shards");
  if ((cfg_.checkpoint_every > 0 || cfg_.resume) && cfg_.checkpoint_path.empty())
    throw std::invalid_argument(
        "CampaignService: checkpointing/resume requires a checkpoint path");
}

ServiceResult CampaignService::run(const kir::BytecodeProgram& program,
                                   const WorkerContextFactory& make_context,
                                   const std::vector<FaultSpec>& specs,
                                   const workloads::Requirement& req) {
  const std::uint64_t K = cfg_.shards;
  const std::uint64_t I = cfg_.shard_index;
  const std::uint64_t total = specs.size();
  // Shard I owns trials I, I+K, I+2K, ...: `mine` ordinals k map to trial
  // index I + k*K.  Pure arithmetic — every process computes the same split.
  const std::uint64_t mine = total > I ? (total - I + K - 1) / K : 0;

  std::uint64_t remark_digest = 0;
  if (cfg_.campaign.pipeline.report)
    remark_digest = core::remark_digest(*cfg_.campaign.pipeline.report);
  const std::uint64_t digest =
      campaign_digest(program, specs, req, remark_digest, cfg_.campaign.protection,
                      cfg_.campaign.plan_digest, cfg_.campaign.prune_digest);

  ServiceResult result;
  result.pipeline = cfg_.campaign.pipeline.name;
  result.remark_digest = remark_digest;
  result.config_digest = digest;
  result.shard_trials = mine;

  // --- resume state ---------------------------------------------------------
  std::uint64_t watermark = 0;
  std::uint64_t prior_checkpoints = 0;
  CampaignCheckpoint resumed;
  if (cfg_.resume) {
    resumed = CampaignCheckpoint::load(cfg_.checkpoint_path);
    if (resumed.config_digest != digest)
      throw core::CheckpointError("checkpoint: '" + cfg_.checkpoint_path +
                                  "' belongs to a different campaign (config digest "
                                  "mismatch)");
    if (resumed.shards != K || resumed.shard_index != I)
      throw core::CheckpointError("checkpoint: '" + cfg_.checkpoint_path +
                                  "' was written for shard " +
                                  std::to_string(resumed.shard_index) + "/" +
                                  std::to_string(resumed.shards) +
                                  ", not this instance's shard");
    if (resumed.trials_total != total || resumed.watermark > mine)
      throw core::CheckpointError("checkpoint: '" + cfg_.checkpoint_path +
                                  "' trial accounting does not fit this campaign");
    if (resumed.remark_digest != remark_digest)
      throw core::CheckpointError("checkpoint: '" + cfg_.checkpoint_path +
                                  "' pipeline remark digest mismatch");
    watermark = resumed.watermark;
    result.counts = resumed.counts;
    result.site_hist = resumed.site_hist;
    result.sdc_site_hist = resumed.sdc_site_hist;
    result.trials_resumed = watermark;
    prior_checkpoints = resumed.checkpoints_written;
  }

  // --- result log -----------------------------------------------------------
  ResultLogWriter log;
  ResultLogHeader log_header;
  log_header.shards = static_cast<std::uint32_t>(K);
  log_header.shard_index = static_cast<std::uint32_t>(I);
  log_header.config_digest = digest;
  log_header.total_trials = total;
  if (!cfg_.resultlog_path.empty()) {
    if (cfg_.resume)
      log.reopen(cfg_.resultlog_path, log_header, resumed.log_payload_bytes,
                 resumed.log_payload_crc);
    else
      log.create(cfg_.resultlog_path, log_header);
  }

  const auto write_checkpoint = [&](std::uint64_t committed, std::uint64_t written,
                                    bool invoke_hook) {
    log.flush();
    CampaignCheckpoint ck;
    ck.config_digest = digest;
    ck.shards = static_cast<std::uint32_t>(K);
    ck.shard_index = static_cast<std::uint32_t>(I);
    ck.trials_total = total;
    ck.watermark = committed;
    ck.counts = result.counts;
    ck.site_hist = result.site_hist;
    ck.sdc_site_hist = result.sdc_site_hist;
    ck.remark_digest = remark_digest;
    ck.log_payload_bytes = log.is_open() ? log.payload_bytes() : 0;
    ck.log_payload_crc = log.is_open() ? log.payload_crc() : 0;
    ck.checkpoints_written = prior_checkpoints + written;
    ck.save(cfg_.checkpoint_path);
    if (invoke_hook && cfg_.on_checkpoint) cfg_.on_checkpoint(ck);
  };

  if (watermark >= mine) {
    // Nothing left to run (fresh empty shard, or resume of a finished one).
    if (!cfg_.checkpoint_path.empty()) write_checkpoint(mine, 0, false);
    log.close();
    return result;
  }

  // --- contexts and golden run ---------------------------------------------
  const std::uint64_t remaining = mine - watermark;
  const unsigned hw = cfg_.workers > 0 ? static_cast<unsigned>(cfg_.workers)
                                       : common::WorkerPool::default_workers();
  const std::size_t nw =
      std::min<std::size_t>(hw, static_cast<std::size_t>(std::max<std::uint64_t>(remaining, 1)));
  std::vector<WorkerContext> ctxs;
  ctxs.reserve(nw);
  for (std::size_t i = 0; i < nw; ++i) {
    ctxs.push_back(make_context());
    if (!ctxs.back().device || !ctxs.back().job)
      throw std::invalid_argument(
          "swifi: WorkerContextFactory must provide a device and a job");
    ctxs.back().device->set_engine(cfg_.campaign.effective_engine());
  }
  const GoldenRun gold = golden_run(*ctxs[0].device, program, *ctxs[0].job, ctxs[0].cb.get(),
                                    cfg_.campaign.launch_workers);
  const std::uint64_t watchdog = campaign_watchdog(gold, cfg_.campaign);

  // --- trial pump -----------------------------------------------------------
  // The reorder window bounds how far execution may run ahead of the
  // in-order committer; together with the queue capacity it is the entire
  // per-trial memory footprint, independent of campaign size.
  const std::size_t window = std::max<std::size_t>(256, nw * 16);
  struct Slot {
    std::atomic<std::uint32_t> ready{0};
    std::uint8_t outcome = 0;
  };
  std::vector<Slot> slots(window);
  TrialQueue queue(window);
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto worker_main = [&](WorkerContext& ctx) {
    try {
      if (!ctx.stage) ctx.stage = std::make_unique<TrialStage>(*ctx.device, *ctx.job);
      std::uint64_t k;
      for (;;) {
        if (abort.load(std::memory_order_acquire)) return;
        if (!queue.try_pop(k)) {
          if (queue.closed()) return;
          std::this_thread::yield();
          continue;
        }
        const std::uint64_t trial = I + k * K;
        const Outcome o = run_one_fault(
            *ctx.device, program, *ctx.job, ctx.cb.get(), specs[trial], gold.output, req,
            watchdog, cfg_.campaign.launch_workers, cfg_.campaign.sanitize_cap,
            ctx.stage.get());
        Slot& slot = slots[k % window];
        slot.outcome = static_cast<std::uint8_t>(o);
        slot.ready.store(1, std::memory_order_release);
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(nw);
  for (std::size_t i = 0; i < nw; ++i) workers.emplace_back(worker_main, std::ref(ctxs[i]));

  const auto shutdown = [&] {
    abort.store(true, std::memory_order_release);
    queue.close();
    for (auto& t : workers)
      if (t.joinable()) t.join();
  };

  try {
    std::uint64_t next = watermark;      // next ordinal to enqueue
    std::uint64_t committed = watermark; // ordinals committed in order
    std::uint64_t last_ckpt = watermark;
    std::uint64_t written = 0;
    while (committed < mine) {
      if (abort.load(std::memory_order_acquire)) break;
      // Feed the queue up to the window edge.
      while (next < mine && next < committed + window && queue.try_push(next)) ++next;
      // Commit every contiguous completed trial, in trial order.
      bool progressed = false;
      while (committed < mine) {
        Slot& slot = slots[committed % window];
        if (slot.ready.load(std::memory_order_acquire) != 1) break;
        const auto o = static_cast<Outcome>(slot.outcome);
        slot.ready.store(0, std::memory_order_relaxed);
        const std::uint64_t trial = I + committed * K;
        const std::uint64_t weight = cfg_.campaign.trial_weight(trial);
        result.counts.add(o, weight);
        result.site_hist.add(specs[trial].site_id, weight);
        if (o == Outcome::Undetected) result.sdc_site_hist.add(specs[trial].site_id, weight);
        if (log.is_open()) {
          ResultRecord rec;
          rec.trial = static_cast<std::uint32_t>(trial);
          rec.outcome = static_cast<std::uint8_t>(o);
          rec.set_weight(weight);
          log.append(rec);
        }
        ++committed;
        ++result.trials_run;
        progressed = true;
        if (cfg_.checkpoint_every > 0 && committed < mine &&
            committed - last_ckpt >= cfg_.checkpoint_every) {
          ++written;
          result.checkpoints_written = written;
          write_checkpoint(committed, written, true);
          last_ckpt = committed;
        }
      }
      if (!progressed) std::this_thread::yield();
    }
    shutdown();
    if (first_error) std::rethrow_exception(first_error);
    // Completion checkpoint: records watermark == mine so a redundant
    // resume is a no-op.  No hook — the campaign is done, there is nothing
    // a kill here could lose.
    if (!cfg_.checkpoint_path.empty()) write_checkpoint(mine, written, false);
  } catch (...) {
    shutdown();
    log.close();
    throw;
  }
  log.flush();
  log.close();
  return result;
}

}  // namespace hauberk::swifi
