// Sharded, checkpointed SWIFI campaign service.
//
// CampaignExecutor (swifi/executor.hpp) answers "run these trials now, in
// this process, and give me the outcome vector".  The campaign sizes the
// paper's methodology actually needs — millions of trials per configuration
// for tight SDC-coverage confidence intervals — outlive single processes
// and single machines, so CampaignService promotes that loop to a
// production-shaped driver:
//
//  * Sharding.  Trial i belongs to shard (i mod K); a service instance runs
//    one shard I of K.  The assignment is a pure function of the trial
//    index, so K processes on K machines partition a campaign with no
//    coordination, and the merged results are bitwise identical to one
//    process running everything.
//
//  * Lock-free trial distribution.  Within a shard, worker threads pull
//    trial ordinals from a bounded MPMC queue (swifi/queue.hpp) and publish
//    outcomes into a fixed reorder window; the service thread commits
//    outcomes strictly in trial order.  Results never depend on scheduling:
//    the same bitwise-invariance contract as CampaignExecutor, now extended
//    across shard counts and process restarts.
//
//  * Checkpoint / resume.  Every checkpoint_every committed trials the
//    service writes a versioned, CRC-guarded campaign checkpoint
//    (hauberk/checkpoint.hpp) — config digest, shard watermark, streaming
//    outcome counts and histograms, result-log length + CRC — atomically
//    (temp file + rename).  A killed run resumes from its last checkpoint
//    and finishes with outcomes byte-identical to an uninterrupted run;
//    trials completed after the last checkpoint are simply re-run (they are
//    deterministic per index, so re-running cannot change anything).
//
//  * Streaming aggregation.  Outcome counts and constant-memory
//    Log2Histograms replace the executor's per-trial outcome vector, and a
//    compact binary result log (swifi/resultlog.hpp) replaces per-trial
//    JSON: resident memory is constant in the trial count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "swifi/campaign.hpp"
#include "swifi/executor.hpp"
#include "swifi/fault.hpp"

namespace hauberk::swifi {

/// Identity of a campaign for checkpoint/result-log validation: digests the
/// program, every fault spec, the correctness requirement and the pipeline
/// remark digest.  Deliberately excludes the shard split, worker count and
/// interpreter engine — all of those are execution details that cannot
/// change outcomes, so a campaign may legitimately resume with a different
/// engine or worker count, and per-shard artifacts of one campaign share
/// one digest (which is how the merge tool pairs them up).  Memory
/// protection *is* part of the identity — an ECC campaign has different
/// outcomes — but ecc::Scheme::None contributes nothing, so every digest
/// (and checkpoint, and result log) minted before protection existed stays
/// valid.  A selective-hardening plan is identity the same way: a nonzero
/// `plan_digest` (core::plan_digest of the plan the injected program was
/// built under) is folded in, while the trivial-plan digest 0 contributes
/// nothing, keeping plan-free campaign digests bitwise stable.  A campaign
/// pruned under a PruningPlan folds `prune_digest`
/// (hauberk::prune::pruning_plan_digest) the same way — note the pruned
/// spec list *already* differs from the full campaign's, but the digest
/// additionally separates "these specs happen to coincide" from "these
/// specs were chosen as class representatives with population weights".
[[nodiscard]] std::uint64_t campaign_digest(const kir::BytecodeProgram& program,
                                            const std::vector<FaultSpec>& specs,
                                            const workloads::Requirement& req,
                                            std::uint64_t remark_digest,
                                            gpusim::ecc::Scheme protection =
                                                gpusim::ecc::Scheme::None,
                                            std::uint64_t plan_digest = 0,
                                            std::uint64_t prune_digest = 0);

/// The on-disk campaign checkpoint (magic "HBKC", version
/// kCampaignCheckpointVersion).  Everything needed to resume shard I of K
/// exactly: how many trials are committed (the watermark), the streaming
/// aggregates over exactly those trials, and the result-log byte count +
/// CRC those trials produced.
struct CampaignCheckpoint {
  std::uint64_t config_digest = 0;
  std::uint32_t shards = 1;
  std::uint32_t shard_index = 0;
  std::uint64_t trials_total = 0;  ///< whole campaign, all shards
  std::uint64_t watermark = 0;     ///< shard-local committed trial count
  OutcomeCounts counts;
  common::Log2Histogram site_hist;      ///< trials per FI site id
  common::Log2Histogram sdc_site_hist;  ///< undetected (SDC) trials per site id
  std::uint64_t remark_digest = 0;
  std::uint64_t log_payload_bytes = 0;
  std::uint32_t log_payload_crc = 0;
  std::uint64_t checkpoints_written = 0;

  /// Atomic write (temp + rename).  Throws core::CheckpointError on I/O failure.
  void save(const std::string& path) const;
  /// Load + validate magic/version/CRC.  Throws core::CheckpointError.
  [[nodiscard]] static CampaignCheckpoint load(const std::string& path);
};

constexpr std::uint32_t kCampaignCheckpointMagic = 0x434b4248u;  // "HBKC"
/// v2 appends the hardware-ECC outcome counters (OutcomeCounts::ecc_corrected
/// / ecc_uncorrectable) after barrier_divergence.  v1 checkpoints are
/// rejected by load() with a version error — resuming them as v2 would
/// silently zero counters the campaign may have accumulated.
constexpr std::uint32_t kCampaignCheckpointVersion = 2;

struct ServiceConfig {
  CampaignConfig campaign;     ///< engine, sanitize, watchdog, pipeline
  int workers = 0;             ///< trial workers (0 = hardware concurrency)
  std::uint32_t shards = 1;    ///< K: total shards in the campaign
  std::uint32_t shard_index = 0;  ///< I: which shard this instance runs
  /// Write a checkpoint every N committed trials (0 = only the final one,
  /// and only when checkpoint_path is set).
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;  ///< required when checkpoint_every > 0 or resume
  std::string resultlog_path;   ///< binary per-trial log ("" = no log)
  bool resume = false;          ///< load checkpoint_path and continue from it
  /// Test/ops hook invoked after every periodic checkpoint lands on disk
  /// (not after the final completion checkpoint).  Throwing from it aborts
  /// the run exactly as a kill right after the checkpoint write would —
  /// the crash-recovery tests drive kill/resume cycles through this.
  std::function<void(const CampaignCheckpoint&)> on_checkpoint;
};

struct ServiceResult {
  OutcomeCounts counts;
  common::Log2Histogram site_hist;
  common::Log2Histogram sdc_site_hist;
  std::string pipeline;
  std::uint64_t remark_digest = 0;
  std::uint64_t config_digest = 0;
  std::uint64_t shard_trials = 0;      ///< trials this shard owns
  std::uint64_t trials_run = 0;        ///< executed by this invocation
  std::uint64_t trials_resumed = 0;    ///< skipped: already checkpointed
  std::uint64_t checkpoints_written = 0;  ///< by this invocation

  /// Merge another shard's result into this one (counts and histograms add;
  /// digests must match).  Throws std::invalid_argument on digest mismatch.
  void merge(const ServiceResult& other);
};

class CampaignService {
 public:
  explicit CampaignService(ServiceConfig cfg);

  /// Run (or resume) this shard of a planned-fault campaign.  Semantics per
  /// trial are exactly run_one_fault / CampaignExecutor::run; aggregation
  /// is streaming.  Throws core::CheckpointError when a resume checkpoint
  /// or result log is missing, corrupt, or from a different campaign.
  [[nodiscard]] ServiceResult run(const kir::BytecodeProgram& program,
                                  const WorkerContextFactory& make_context,
                                  const std::vector<FaultSpec>& specs,
                                  const workloads::Requirement& req);

  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  ServiceConfig cfg_;
};

}  // namespace hauberk::swifi
