// Fault model of the SWIFI toolset (Section VII).
//
// A FaultSpec names one architecture-state corruption: which FI site (i.e.
// which virtual-variable definition), which thread, which dynamic occurrence
// of that definition in that thread, and the error mask to XOR in.  Faults
// are planned from profiler execution counts and injected through the
// FIHook instructions the translator placed (Fig. 12).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "kir/ast.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::swifi {

struct FaultSpec {
  std::uint32_t site_id = 0;     ///< FISite::site_id in the FI program
  std::uint32_t thread = 0;      ///< global linear thread id
  std::uint32_t occurrence = 1;  ///< 1-based dynamic execution index in that thread
  std::uint32_t mask = 1;        ///< error bits XORed into the defined value

  // Descriptive metadata (copied from the site for reporting).
  kir::VarId var = kir::kInvalidVar;
  kir::DType type = kir::DType::I32;
  kir::HwComponent hw = kir::HwComponent::ALU;
};

/// Fault-injection experiment outcome, the five classes of Section VIII plus
/// NotActivated (the planned fault never triggered — excluded from ratios).
/// Campaigns run with CampaignConfig::sanitize split two sanitizer-visible
/// classes out of Failure: RaceDetected (the fault turned the kernel racy)
/// and BarrierDivergence (the fault broke barrier uniformity).  With the
/// sanitizer off, those trials classify exactly as before.
/// Campaigns on a protected-memory device (CampaignConfig::protection) add
/// the hardware-ECC taxonomy: EccCorrected (the code corrected a single-bit
/// memory error and the run finished clean) and EccDetectedUncorrectable
/// (a double-bit error was detected and killed the kernel — detected, never
/// silent).  Outcome values are part of the binary result-log format; new
/// classes append, existing encodings never renumber.
enum class Outcome : std::uint8_t {
  Failure,         ///< kernel crash, or hang caught by the guardian watchdog
  Masked,          ///< output satisfies the correctness requirement, no alarm
  DetectedMasked,  ///< alarm raised but output still satisfies the requirement
  Detected,        ///< alarm raised and output violates the requirement
  Undetected,      ///< output violates the requirement with no alarm (SDC!)
  NotActivated,
  RaceDetected,       ///< sanitizer saw a shared-memory race (WW/RW or uninit read)
  BarrierDivergence,  ///< sanitizer saw divergent/abandoned barriers
  EccCorrected,       ///< hardware ECC corrected the error; output clean, no alarm
  EccDetectedUncorrectable,  ///< hardware ECC detected a double-bit error (kernel killed)
};

[[nodiscard]] const char* outcome_name(Outcome o) noexcept;

/// Aggregated campaign counts.
struct OutcomeCounts {
  std::uint64_t failure = 0;
  std::uint64_t masked = 0;
  std::uint64_t detected_masked = 0;
  std::uint64_t detected = 0;
  std::uint64_t undetected = 0;
  std::uint64_t not_activated = 0;
  std::uint64_t race_detected = 0;
  std::uint64_t barrier_divergence = 0;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_uncorrectable = 0;

  void add(Outcome o) noexcept;
  /// Weighted accumulation: one representative trial standing for `n`
  /// equivalent fault specs (campaign pruning).
  void add(Outcome o, std::uint64_t n) noexcept;
  [[nodiscard]] std::uint64_t activated() const noexcept {
    return failure + masked + detected_masked + detected + undetected +
           race_detected + barrier_divergence + ecc_corrected + ecc_uncorrectable;
  }
  /// Error detection coverage: probability a fault is detected or masked
  /// (Section VIII: 1 - undetected ratio).
  [[nodiscard]] double coverage() const noexcept {
    const auto n = activated();
    return n == 0 ? 1.0 : 1.0 - static_cast<double>(undetected) / static_cast<double>(n);
  }
  [[nodiscard]] double ratio(std::uint64_t part) const noexcept {
    const auto n = activated();
    return n == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(n);
  }
};

}  // namespace hauberk::swifi
