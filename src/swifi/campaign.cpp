#include "swifi/campaign.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"
#include "swifi/injector.hpp"

namespace hauberk::swifi {

using gpusim::Device;
using gpusim::LaunchOptions;
using gpusim::LaunchStatus;

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Failure: return "failure";
    case Outcome::Masked: return "masked";
    case Outcome::DetectedMasked: return "detected&masked";
    case Outcome::Detected: return "detected";
    case Outcome::Undetected: return "undetected";
    case Outcome::NotActivated: return "not-activated";
    case Outcome::RaceDetected: return "race-detected";
    case Outcome::BarrierDivergence: return "barrier-divergence";
    case Outcome::EccCorrected: return "ecc-corrected";
    case Outcome::EccDetectedUncorrectable: return "ecc-uncorrectable";
  }
  return "?";
}

void OutcomeCounts::add(Outcome o) noexcept {
  switch (o) {
    case Outcome::Failure: ++failure; break;
    case Outcome::Masked: ++masked; break;
    case Outcome::DetectedMasked: ++detected_masked; break;
    case Outcome::Detected: ++detected; break;
    case Outcome::Undetected: ++undetected; break;
    case Outcome::NotActivated: ++not_activated; break;
    case Outcome::RaceDetected: ++race_detected; break;
    case Outcome::BarrierDivergence: ++barrier_divergence; break;
    case Outcome::EccCorrected: ++ecc_corrected; break;
    case Outcome::EccDetectedUncorrectable: ++ecc_uncorrectable; break;
  }
}

void OutcomeCounts::add(Outcome o, std::uint64_t n) noexcept {
  switch (o) {
    case Outcome::Failure: failure += n; break;
    case Outcome::Masked: masked += n; break;
    case Outcome::DetectedMasked: detected_masked += n; break;
    case Outcome::Detected: detected += n; break;
    case Outcome::Undetected: undetected += n; break;
    case Outcome::NotActivated: not_activated += n; break;
    case Outcome::RaceDetected: race_detected += n; break;
    case Outcome::BarrierDivergence: barrier_divergence += n; break;
    case Outcome::EccCorrected: ecc_corrected += n; break;
    case Outcome::EccDetectedUncorrectable: ecc_uncorrectable += n; break;
  }
}

GoldenRun golden_run(Device& dev, const kir::BytecodeProgram& program, core::KernelJob& job,
                     core::ControlBlock* cb, int launch_workers) {
  const auto args = job.setup(dev);
  if (cb) cb->reset_results();
  LaunchOptions opts;
  opts.hooks = cb;
  opts.max_workers = launch_workers;
  const auto res = dev.launch(program, job.config(), args, opts);
  if (res.status != LaunchStatus::Ok)
    throw std::runtime_error("swifi golden run failed: " +
                             std::string(gpusim::launch_status_name(res.status)));
  GoldenRun g;
  g.output = job.read_output(dev);
  g.per_thread_instructions =
      res.instructions / std::max<std::uint64_t>(1, res.threads);
  return g;
}

std::vector<FaultSpec> plan_faults(const kir::BytecodeProgram& fi_program,
                                   const core::ProfileData& profile, const PlanOptions& opt) {
  common::Rng rng = common::Rng::fork(opt.seed, 0xFA017);

  // Candidate sites: executed at least once and passing the filters.
  struct Candidate {
    std::uint32_t site_index;
    std::vector<std::uint32_t> threads;  ///< threads that execute the site
  };
  std::vector<Candidate> candidates;
  for (std::uint32_t si = 0; si < fi_program.fi_sites.size(); ++si) {
    const kir::FISite& site = fi_program.fi_sites[si];
    if (opt.type_filter && site.type != *opt.type_filter) continue;
    if (opt.hw_filter && site.hw != *opt.hw_filter) continue;
    if (si >= profile.exec_counts.size()) continue;
    Candidate c;
    c.site_index = si;
    const auto& counts = profile.exec_counts[si];
    for (std::uint32_t t = 0; t < counts.size(); ++t)
      if (counts[t] > 0) c.threads.push_back(t);
    if (!c.threads.empty()) candidates.push_back(std::move(c));
  }

  // Sample up to max_vars distinct sites.
  std::shuffle(candidates.begin(), candidates.end(), rng);
  if (static_cast<int>(candidates.size()) > opt.max_vars)
    candidates.resize(static_cast<std::size_t>(opt.max_vars));

  std::vector<FaultSpec> specs;
  specs.reserve(candidates.size() * static_cast<std::size_t>(opt.masks_per_var));
  for (const Candidate& c : candidates) {
    const kir::FISite& site = fi_program.fi_sites[c.site_index];
    for (int m = 0; m < opt.masks_per_var; ++m) {
      FaultSpec s;
      s.site_id = site.site_id;
      s.var = site.var;
      s.type = site.type;
      s.hw = site.hw;
      s.thread = c.threads[rng.next_below(c.threads.size())];
      const std::uint32_t max_occ = profile.exec_counts[c.site_index][s.thread];
      s.occurrence = 1 + static_cast<std::uint32_t>(rng.next_below(max_occ));
      s.mask = common::random_mask(rng, opt.error_bits);
      specs.push_back(s);
    }
  }
  return specs;
}

namespace {

Outcome classify(const gpusim::LaunchResult& res, bool alarm, const core::ProgramOutput& out,
                 const core::ProgramOutput& golden, const workloads::Requirement& req) {
  // Hardware-ECC taxonomy first: an uncorrectable (double-bit) error kills
  // the kernel but is *detected* — it never reaches results silently, so it
  // gets its own class instead of folding into Failure.  A run that finished
  // clean only because the code corrected a single-bit memory error is
  // EccCorrected rather than Masked: the hardware, not luck or the workload's
  // tolerance, absorbed the fault.  Detector alarms keep priority — if
  // Hauberk also fired, the trial stays in the Detected classes.
  if (res.status == LaunchStatus::EccUncorrectable) return Outcome::EccDetectedUncorrectable;
  if (res.status != LaunchStatus::Ok) return Outcome::Failure;
  const bool correct = req.satisfied(out, golden);
  if (alarm) return correct ? Outcome::DetectedMasked : Outcome::Detected;
  if (correct && res.ecc_corrected > 0) return Outcome::EccCorrected;
  return correct ? Outcome::Masked : Outcome::Undetected;
}

/// Sanitizer-based reclassification: when the trial ran under
/// ExecEngine::Sanitizer, faults that turned the kernel racy or broke
/// barrier uniformity are reported as their own outcome classes instead of
/// disappearing into Failure (or worse, Masked).  Out-of-bounds reports do
/// not reclassify — the crash status already names those precisely.
std::optional<Outcome> sanitizer_outcome(const Device& dev, const gpusim::LaunchResult& res) {
  if (dev.engine() != gpusim::ExecEngine::Sanitizer) return std::nullopt;
  bool divergence = res.status == LaunchStatus::CrashBarrierDeadlock;
  bool race = false;
  for (const auto& r : res.sanitizer_reports) {
    if (r.kind == gpusim::HazardKind::BarrierDivergence) divergence = true;
    else if (r.kind != gpusim::HazardKind::SharedOutOfBounds) race = true;
  }
  if (divergence) return Outcome::BarrierDivergence;
  if (race) return Outcome::RaceDetected;
  return std::nullopt;
}

}  // namespace

const std::vector<kir::Value>& TrialStage::stage() {
  if (!primed_) {
    args_ = job_->setup(*dev_);
    image_ = dev_->mem().image();
    check_image_ = dev_->mem().check_image();
    primed_ = true;
  } else {
    dev_->mem().restore_trial(image_, check_image_);
  }
  return args_;
}

Outcome run_one_fault(Device& dev, const kir::BytecodeProgram& program, core::KernelJob& job,
                      core::ControlBlock* cb, const FaultSpec& spec,
                      const core::ProgramOutput& golden, const workloads::Requirement& req,
                      std::uint64_t watchdog_instructions, int launch_workers,
                      std::size_t sanitize_cap, TrialStage* stage) {
  InjectingHooks hooks(program, cb);
  hooks.arm(spec);
  std::vector<kir::Value> own_args;
  if (!stage) own_args = job.setup(dev);
  const std::vector<kir::Value>& args = stage ? stage->stage() : own_args;
  if (cb) cb->reset_results();
  LaunchOptions opts;
  opts.hooks = &hooks;
  opts.watchdog_instructions = watchdog_instructions;
  opts.max_workers = launch_workers;
  opts.sanitize_report_cap = sanitize_cap;
  const auto res = dev.launch(program, job.config(), args, opts);
  if (!hooks.activated() && res.status == LaunchStatus::Ok) return Outcome::NotActivated;
  if (const auto so = sanitizer_outcome(dev, res)) return *so;
  if (res.status != LaunchStatus::Ok)
    return res.status == LaunchStatus::EccUncorrectable ? Outcome::EccDetectedUncorrectable
                                                        : Outcome::Failure;
  const auto out = job.read_output(dev);
  const bool alarm = res.sdc_alarm || (cb && cb->sdc_detected());
  return classify(res, alarm, out, golden, req);
}

std::uint64_t campaign_watchdog(const GoldenRun& gold, const CampaignConfig& cfg) noexcept {
  return std::max(cfg.hang_floor,
                  static_cast<std::uint64_t>(
                      static_cast<double>(gold.per_thread_instructions) * cfg.hang_factor));
}

CampaignResult run_campaign(Device& dev, const kir::BytecodeProgram& program,
                            core::KernelJob& job, core::ControlBlock* cb,
                            const std::vector<FaultSpec>& specs,
                            const workloads::Requirement& req, const CampaignConfig& cfg) {
  dev.set_engine(cfg.effective_engine());
  const GoldenRun gold = golden_run(dev, program, job, cb, cfg.launch_workers);
  const std::uint64_t watchdog = campaign_watchdog(gold, cfg);
  CampaignResult result;
  result.pipeline = cfg.pipeline.name;
  if (cfg.pipeline.report) result.remark_digest = core::remark_digest(*cfg.pipeline.report);
  result.per_fault.reserve(specs.size());
  TrialStage stage(dev, job);
  for (const FaultSpec& spec : specs) {
    const Outcome o = run_one_fault(dev, program, job, cb, spec, gold.output, req, watchdog,
                                    cfg.launch_workers, cfg.sanitize_cap, &stage);
    result.counts.add(o);
    result.per_fault.push_back(o);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Memory / code faults
// ---------------------------------------------------------------------------

Outcome run_one_memory_fault(Device& dev, const kir::BytecodeProgram& program,
                             core::KernelJob& job, common::Rng& rng, std::uint32_t mask,
                             const core::ProgramOutput& golden,
                             const workloads::Requirement& req,
                             std::uint64_t watchdog_instructions, int launch_workers,
                             std::size_t sanitize_cap, core::ControlBlock* cb) {
  const auto args = job.setup(dev);
  // Corrupt one random live word of device memory ("data segment" fault).
  const std::uint32_t used = dev.mem().used_words();
  if (used == 0) return Outcome::NotActivated;
  // Addresses in PagedCpu mode are sparse; walk allocations via image().
  auto img = dev.mem().image();
  const std::uint32_t idx = static_cast<std::uint32_t>(rng.next_below(img.size()));
  if (dev.mem().protection() == gpusim::ecc::Scheme::None) {
    img[idx] ^= mask;
    dev.mem().restore(img);
  } else {
    // Protected arena: restore() models an ECC-clean host upload and
    // re-encodes, so the memory-cell upset must be planted raw *after*
    // staging.  Check-bit cells are DRAM too: 8 of the codeword's 72 bit
    // positions live in the shadow byte, so with probability 8/72 the strike
    // lands there instead (a single check-bit flip — correctable, and a
    // correct model of a one-cell upset in the check storage).  The extra
    // draw only happens under protection, keeping the unprotected RNG
    // sequence — and therefore every existing golden — bitwise unchanged.
    const std::uint32_t r =
        static_cast<std::uint32_t>(rng.next_below(gpusim::ecc::kCodeBits));
    if (r >= gpusim::ecc::kDataBits)
      dev.mem().corrupt_check(idx, static_cast<std::uint8_t>(
                                       1u << (r - gpusim::ecc::kDataBits)));
    else
      dev.mem().corrupt_word(idx, mask);
  }

  if (cb) cb->reset_results();
  LaunchOptions opts;
  opts.hooks = cb;
  opts.watchdog_instructions = watchdog_instructions;
  opts.max_workers = launch_workers;
  opts.sanitize_report_cap = sanitize_cap;
  const auto res = dev.launch(program, job.config(), args, opts);
  if (const auto so = sanitizer_outcome(dev, res)) return *so;
  if (res.status != LaunchStatus::Ok)
    return res.status == LaunchStatus::EccUncorrectable ? Outcome::EccDetectedUncorrectable
                                                        : Outcome::Failure;
  core::ProgramOutput out;
  try {
    out = job.read_output(dev);
  } catch (const std::out_of_range&) {
    // The kernel never touched the corrupted pair, but the device->host
    // output copy did: the machine check fires on the copy-out exactly as it
    // would on a device read.  Detected, never silent.
    return gpusim::DeviceMemory::last_fault_uncorrectable()
               ? Outcome::EccDetectedUncorrectable
               : Outcome::Failure;
  }
  const bool alarm = res.sdc_alarm || (cb && cb->sdc_detected());
  return classify(res, alarm, out, golden, req);
}

bool validate_program(const kir::BytecodeProgram& p) {
  const auto max_op = static_cast<std::uint8_t>(kir::OpCode::FIHook);
  for (const kir::Instr& in : p.code) {
    if (static_cast<std::uint8_t>(in.op) > max_op) return false;
    if (in.dst >= p.num_slots || in.a >= p.num_slots || in.b >= p.num_slots) return false;
    switch (in.op) {
      case kir::OpCode::Jmp:
      case kir::OpCode::Jz:
        // A target of exactly code.size() would make the interpreter fetch
        // past the end (the last real instruction is the Halt at size()-1),
        // so it is as undecodable as any other out-of-range target.
        if (in.aux >= p.code.size()) return false;
        break;
      case kir::OpCode::Un:
        if ((in.aux & 0xffffu) > static_cast<std::uint32_t>(kir::UnOp::CastI32)) return false;
        if (((in.aux >> 16) & 0xffu) > 2) return false;
        break;
      case kir::OpCode::Bin:
        if ((in.aux & 0xffffu) > static_cast<std::uint32_t>(kir::BinOp::LogicalOr)) return false;
        if (((in.aux >> 16) & 0xffu) > 2) return false;
        break;
      case kir::OpCode::Builtin:
        if (in.aux > static_cast<std::uint32_t>(kir::BuiltinVal::ThreadLinear)) return false;
        break;
      case kir::OpCode::Select:
        if (in.imm >= p.num_slots) return false;
        break;
      case kir::OpCode::FIHook:
      case kir::OpCode::CountExec:
        if (in.aux >= p.fi_sites.size()) return false;
        break;
      case kir::OpCode::RangeCheck:
      case kir::OpCode::EqualCheck:
      case kir::OpCode::ProfileVal:
        if (in.aux >= p.detectors.size()) return false;
        break;
      default:
        break;
    }
  }
  return true;
}

Outcome run_one_code_fault(Device& dev, const kir::BytecodeProgram& program,
                           core::KernelJob& job, common::Rng& rng,
                           const core::ProgramOutput& golden,
                           const workloads::Requirement& req,
                           std::uint64_t watchdog_instructions, int launch_workers,
                           std::size_t sanitize_cap) {
  kir::BytecodeProgram mutant = program;
  if (mutant.code.empty()) return Outcome::NotActivated;
  const std::size_t instr = rng.next_below(mutant.code.size());
  const int bit = static_cast<int>(rng.next_below(sizeof(kir::Instr) * 8));
  auto* bytes = reinterpret_cast<unsigned char*>(&mutant.code[instr]);
  bytes[bit / 8] = static_cast<unsigned char>(bytes[bit / 8] ^ (1u << (bit % 8)));

  // An undecodable mutant traps at fetch: illegal-instruction failure.
  if (!validate_program(mutant)) return Outcome::Failure;

  const auto args = job.setup(dev);
  LaunchOptions opts;
  opts.watchdog_instructions = watchdog_instructions;
  opts.max_workers = launch_workers;
  opts.sanitize_report_cap = sanitize_cap;
  const auto res = dev.launch(mutant, job.config(), args, opts);
  if (const auto so = sanitizer_outcome(dev, res)) return *so;
  if (res.status != LaunchStatus::Ok)
    return res.status == LaunchStatus::EccUncorrectable ? Outcome::EccDetectedUncorrectable
                                                        : Outcome::Failure;
  const auto out = job.read_output(dev);
  return classify(res, res.sdc_alarm, out, golden, req);
}

}  // namespace hauberk::swifi
