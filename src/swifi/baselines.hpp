// Baseline error-detection techniques the paper compares against (Sections
// III and IX.A):
//
//  * R-Naive — software temporal redundancy: execute the kernel twice with
//    independent copies of the data and compare outputs on the CPU.  ~100%
//    kernel-time overhead and doubled CPU memory.
//
//  * R-Scatter — optimized full duplication exploiting data-level
//    parallelism: every computation statement is duplicated into shadow
//    variables inside the kernel and compared before memory writes.
//    Duplicated instructions compete for the same (already saturated)
//    hardware resources, so they run at CostModel::scatter_percent of full
//    cost, and duplicated shared-memory data means kernels using more than
//    half the shared memory — TPACF — cannot be compiled at all.
#pragma once

#include <string>

#include "gpusim/device.hpp"
#include "hauberk/program.hpp"
#include "kir/ast.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::swifi {

// --- R-Naive ---

struct RNaiveResult {
  gpusim::LaunchResult first;
  gpusim::LaunchResult second;
  bool completed = false;       ///< both executions finished
  bool mismatch = false;        ///< outputs differ => error detected
  std::uint64_t total_cycles = 0;  ///< modeled cost incl. compare/copy overhead
  core::ProgramOutput output;   ///< first execution's output
};

/// Execute the kernel twice (full re-setup in between, i.e. two copies of
/// the data) and compare the outputs.
[[nodiscard]] RNaiveResult run_r_naive(gpusim::Device& dev, const kir::BytecodeProgram& program,
                                       core::KernelJob& job,
                                       const gpusim::LaunchOptions& opts = {});

// --- R-Scatter ---

struct ScatterKernel {
  bool compiles = false;
  std::string reason;       ///< why compilation failed (resource exhaustion)
  kir::Kernel kernel;       ///< instrumented source (valid when compiles)
  int duplicated_defs = 0;
};

/// Apply R-Scatter duplication to a kernel; fails when doubling the shared
/// memory footprint exceeds the device limit.
[[nodiscard]] ScatterKernel make_r_scatter(const kir::Kernel& source,
                                           const gpusim::DeviceProps& props);

}  // namespace hauberk::swifi
