// Parallel SWIFI campaign engine.
//
// A campaign is thousands of independent fault-injection trials: each trial
// re-stages device memory via its job's setup(), launches once, and
// classifies the outcome against a shared golden run.  Trials never share
// mutable state, so the executor runs them concurrently across a persistent
// pool of campaign workers, each owning a private simulated Device (plus its
// own KernelJob staging and ControlBlock clone).  The parallelism is
// inverted relative to a single launch: trial launches run with one
// block-worker (CampaignConfig::launch_workers = 1 — no nested pool churn,
// no core oversubscription) while campaign workers scale to hardware
// concurrency.
//
// Determinism guarantee: results are bitwise identical for every worker
// count.  Outcomes are written into per_fault by trial index, OutcomeCounts
// is reduced from that vector afterwards, and any per-trial randomness is
// forked from (seed, trial_index) rather than drawn from a shared stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/worker_pool.hpp"
#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/program.hpp"
#include "swifi/campaign.hpp"
#include "workloads/workload.hpp"

namespace hauberk::swifi {

/// Private per-worker resources for one campaign: a device plus the job
/// staged onto it and (optionally) a control block for the FI&FT build.
struct WorkerContext {
  std::unique_ptr<gpusim::Device> device;
  std::unique_ptr<core::KernelJob> job;
  std::unique_ptr<core::ControlBlock> cb;  ///< may be null (FI without FT)
  std::unique_ptr<TrialStage> stage;       ///< lazily primed per-trial reset cache
};

/// Builds one worker's context.  Must be deterministic and
/// worker-independent: every invocation has to stage the same dataset and
/// configure identical detector ranges, or worker counts would change
/// outcomes (the executor never tells the factory which worker it serves).
using WorkerContextFactory = std::function<WorkerContext()>;

/// Persistent campaign engine.  Construct once, reuse across campaigns:
/// the worker threads survive between run() calls, only the per-campaign
/// contexts are rebuilt (programs, datasets and detector configurations
/// change between campaigns; threads need not).
class CampaignExecutor {
 public:
  /// `workers` == 0 selects hardware concurrency.
  explicit CampaignExecutor(int workers = 0);
  ~CampaignExecutor();
  CampaignExecutor(const CampaignExecutor&) = delete;
  CampaignExecutor& operator=(const CampaignExecutor&) = delete;

  [[nodiscard]] int workers() const noexcept;

  /// Run a planned-fault campaign (the run_campaign trial semantics, fanned
  /// out across workers).  Equivalent to run_campaign on one device: same
  /// per_fault vector, same counts, for any worker count.
  [[nodiscard]] CampaignResult run(const kir::BytecodeProgram& program,
                                   const WorkerContextFactory& make_context,
                                   const std::vector<FaultSpec>& specs,
                                   const workloads::Requirement& req,
                                   const CampaignConfig& cfg = {});

  /// Memory-word fault campaign (Fig. 1 CPU "Data" rows): `trials`
  /// experiments against the baseline program; trial i draws its mask and
  /// word position from an RNG forked from (seed, i).
  [[nodiscard]] CampaignResult run_memory_faults(const kir::BytecodeProgram& program,
                                                 const WorkerContextFactory& make_context,
                                                 std::uint64_t seed, int trials,
                                                 int error_bits,
                                                 const workloads::Requirement& req,
                                                 const CampaignConfig& cfg = {});

  /// Code-segment fault campaign (Fig. 1 CPU "Code" rows): trial i flips an
  /// encoding bit chosen by an RNG forked from (seed, i).
  [[nodiscard]] CampaignResult run_code_faults(const kir::BytecodeProgram& program,
                                               const WorkerContextFactory& make_context,
                                               std::uint64_t seed, int trials,
                                               const workloads::Requirement& req,
                                               const CampaignConfig& cfg = {});

 private:
  /// Shared fan-out: builds one context per participating worker, runs the
  /// golden run on the first, then distributes trial indices dynamically.
  /// `trial(ctx, gold, watchdog, index)` must be pure per index.
  [[nodiscard]] CampaignResult run_trials(
      const kir::BytecodeProgram& program, const WorkerContextFactory& make_context,
      std::size_t trial_count, const CampaignConfig& cfg,
      const std::function<Outcome(WorkerContext&, const GoldenRun&, std::uint64_t,
                                  std::size_t)>& trial);

  common::WorkerPool pool_;
};

}  // namespace hauberk::swifi
