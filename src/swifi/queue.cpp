#include "swifi/queue.hpp"

#include <bit>

namespace hauberk::swifi {

TrialQueue::TrialQueue(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity);
  cells_ = std::make_unique<Cell[]>(cap);
  mask_ = cap - 1;
  for (std::size_t i = 0; i < cap; ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool TrialQueue::try_push(std::uint64_t value) noexcept {
  if (closed_.load(std::memory_order_acquire)) return false;
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (diff == 0) {
      // Cell is free at this position; claim it.
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
        break;
      // Lost the race; `pos` was reloaded by the CAS.
    } else if (diff < 0) {
      return false;  // cell still holds an unconsumed value one lap behind: full
    } else {
      pos = tail_.load(std::memory_order_relaxed);  // another producer advanced past us
    }
  }
  Cell& cell = cells_[pos & mask_];
  cell.value = value;
  cell.seq.store(pos + 1, std::memory_order_release);
  return true;
}

bool TrialQueue::try_pop(std::uint64_t& out) noexcept {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (diff == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
        break;
    } else if (diff < 0) {
      return false;  // cell not yet published: empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
  Cell& cell = cells_[pos & mask_];
  out = cell.value;
  // Free the cell for the producer one lap ahead.
  cell.seq.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

std::size_t TrialQueue::size_approx() const noexcept {
  const std::uint64_t t = tail_.load(std::memory_order_acquire);
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  return t > h ? static_cast<std::size_t>(t - h) : 0;
}

}  // namespace hauberk::swifi
