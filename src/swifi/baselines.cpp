#include "swifi/baselines.hpp"

#include <map>
#include <set>

#include "kir/analysis.hpp"

namespace hauberk::swifi {

using namespace hauberk::kir;

RNaiveResult run_r_naive(gpusim::Device& dev, const BytecodeProgram& program,
                         core::KernelJob& job, const gpusim::LaunchOptions& opts) {
  RNaiveResult r;
  auto args = job.setup(dev);
  r.first = dev.launch(program, job.config(), args, opts);
  if (r.first.status != gpusim::LaunchStatus::Ok) {
    r.total_cycles = r.first.cycles;
    return r;
  }
  r.output = job.read_output(dev);

  args = job.setup(dev);  // second copy of the input data
  r.second = dev.launch(program, job.config(), args, opts);
  r.total_cycles = r.first.cycles + r.second.cycles;
  if (r.second.status != gpusim::LaunchStatus::Ok) return r;

  const auto out2 = job.read_output(dev);
  r.completed = true;
  r.mismatch = out2.words != r.output.words;
  // CPU-side word-by-word output comparison (and the extra D2H copy).
  r.total_cycles += out2.words.size() * 2;
  return r;
}

namespace {

/// Clone an expression substituting variable reads through `shadow_of`
/// (reads of un-shadowed variables — parameters, iterators — stay shared,
/// matching R-Scatter's reuse of unduplicated state).
ExprPtr clone_subst(const ExprPtr& e, const std::map<VarId, VarId>& shadow_of) {
  if (!e) return nullptr;
  auto n = std::make_shared<Expr>(*e);
  if (n->kind == ExprKind::VarRef) {
    auto it = shadow_of.find(n->var);
    if (it != shadow_of.end()) n->var = it->second;
  }
  n->a = clone_subst(e->a, shadow_of);
  n->b = clone_subst(e->b, shadow_of);
  n->c = clone_subst(e->c, shadow_of);
  return n;
}

class ScatterPass {
 public:
  explicit ScatterPass(Kernel& k) : k_(&k) {}

  int run() {
    process(k_->body);
    return duplicated_;
  }

 private:
  void process(StmtList& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      StmtPtr s = list[i];
      switch (s->kind) {
        case StmtKind::Let:
        case StmtKind::Assign: {
          // Duplicate the computation into the shadow variable.
          VarId sh;
          auto it = shadow_.find(s->var);
          if (it == shadow_.end()) {
            k_->vars.push_back(
                {k_->vars[s->var].name + "__dup", k_->vars[s->var].type, /*scatter_shadow=*/true});
            sh = static_cast<VarId>(k_->vars.size() - 1);
            shadow_[s->var] = sh;
          } else {
            sh = it->second;
          }
          auto dup = s->kind == StmtKind::Let
                         ? Stmt::let(sh, clone_subst(s->value, shadow_))
                         : Stmt::assign(sh, clone_subst(s->value, shadow_));
          dup->extra_flags = kInstrScatter;
          dup->hauberk_internal = true;
          list.insert(list.begin() + static_cast<long>(i) + 1, std::move(dup));
          ++i;
          ++duplicated_;
          break;
        }
        case StmtKind::StoreGlobal:
        case StmtKind::StoreShared:
        case StmtKind::AtomicAddGlobal: {
          // Compare original vs shadow value before committing to memory.
          std::set<VarId> reads;
          kir::Analysis::collect_reads(s->value, reads);
          StmtList checks;
          for (VarId v : reads) {
            auto it = shadow_.find(v);
            if (it == shadow_.end()) continue;
            auto chk = std::make_shared<Stmt>();
            chk->kind = StmtKind::DupCheck;
            chk->var = v;
            chk->value = Expr::make_var(it->second, k_->vars[v].type);
            chk->extra_flags = kInstrScatter;
            chk->hauberk_internal = true;
            checks.push_back(std::move(chk));
          }
          list.insert(list.begin() + static_cast<long>(i), checks.begin(), checks.end());
          i += checks.size();
          break;
        }
        case StmtKind::For:
        case StmtKind::While:
          process(s->body);
          break;
        case StmtKind::If:
          process(s->body);
          process(s->else_body);
          break;
        default:
          break;
      }
    }
  }

  Kernel* k_;
  std::map<VarId, VarId> shadow_;
  int duplicated_ = 0;
};

}  // namespace

ScatterKernel make_r_scatter(const Kernel& source, const gpusim::DeviceProps& props) {
  ScatterKernel out;
  // R-Scatter duplicates the GPU-resident data; a kernel already using more
  // than half of the shared memory cannot host the duplicate (Section IX.A).
  const std::uint32_t doubled_shared = source.shared_mem_words * 2;
  if (doubled_shared > props.shared_mem_words) {
    out.compiles = false;
    out.reason = "shared memory exceeded: " + std::to_string(doubled_shared * 4) +
                 " bytes needed, " + std::to_string(props.shared_mem_words * 4) + " available";
    return out;
  }
  out.kernel = clone_kernel(source);
  out.kernel.shared_mem_words = doubled_shared;
  ScatterPass pass(out.kernel);
  out.duplicated_defs = pass.run();
  out.compiles = true;
  return out;
}

}  // namespace hauberk::swifi
