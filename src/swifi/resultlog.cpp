#include "swifi/resultlog.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"
#include "hauberk/checkpoint.hpp"

#ifdef _WIN32
#error "resultlog truncation uses POSIX ftruncate"
#else
#include <unistd.h>
#endif

namespace hauberk::swifi {

namespace {

constexpr std::size_t kHeaderBytes = 32;

struct RawHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t record_bytes;
  ResultLogHeader h;
};

void write_header(std::FILE* f, const ResultLogHeader& h) {
  const std::uint16_t version = kResultLogVersion;
  const std::uint16_t rec = sizeof(ResultRecord);
  if (std::fwrite(&kResultLogMagic, 4, 1, f) != 1 || std::fwrite(&version, 2, 1, f) != 1 ||
      std::fwrite(&rec, 2, 1, f) != 1 || std::fwrite(&h.shards, 4, 1, f) != 1 ||
      std::fwrite(&h.shard_index, 4, 1, f) != 1 ||
      std::fwrite(&h.config_digest, 8, 1, f) != 1 ||
      std::fwrite(&h.total_trials, 8, 1, f) != 1)
    throw std::runtime_error("resultlog: short header write");
}

bool read_header(std::FILE* f, RawHeader& out) {
  return std::fread(&out.magic, 4, 1, f) == 1 && std::fread(&out.version, 2, 1, f) == 1 &&
         std::fread(&out.record_bytes, 2, 1, f) == 1 &&
         std::fread(&out.h.shards, 4, 1, f) == 1 &&
         std::fread(&out.h.shard_index, 4, 1, f) == 1 &&
         std::fread(&out.h.config_digest, 8, 1, f) == 1 &&
         std::fread(&out.h.total_trials, 8, 1, f) == 1;
}

}  // namespace

ResultLogWriter::~ResultLogWriter() {
  if (file_) std::fclose(file_);
}

void ResultLogWriter::create(const std::string& path, const ResultLogHeader& header) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) throw std::runtime_error("resultlog: cannot create '" + path + "'");
  path_ = path;
  payload_bytes_ = 0;
  payload_crc_ = 0;
  write_header(file_, header);
}

void ResultLogWriter::reopen(const std::string& path, const ResultLogHeader& header,
                             std::uint64_t payload_bytes, std::uint32_t payload_crc) {
  close();
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (!f)
    throw core::CheckpointError("resultlog: cannot reopen '" + path + "' for resume");
  RawHeader raw{};
  const bool header_ok = read_header(f, raw) && raw.magic == kResultLogMagic &&
                         raw.version == kResultLogVersion &&
                         raw.record_bytes == sizeof(ResultRecord) &&
                         raw.h.shards == header.shards &&
                         raw.h.shard_index == header.shard_index &&
                         raw.h.config_digest == header.config_digest &&
                         raw.h.total_trials == header.total_trials;
  if (!header_ok) {
    std::fclose(f);
    throw core::CheckpointError("resultlog: '" + path +
                                "' header does not match the resumed campaign");
  }
  // Truncate away anything the checkpoint does not vouch for (appends and
  // torn writes after the last checkpoint), then verify what is left.
  if (ftruncate(fileno(f), static_cast<off_t>(kHeaderBytes + payload_bytes)) != 0) {
    std::fclose(f);
    throw core::CheckpointError("resultlog: truncate of '" + path + "' failed");
  }
  std::uint32_t crc = 0;
  std::uint64_t remaining = payload_bytes;
  std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET);
  char buf[1 << 16];
  while (remaining > 0) {
    const std::size_t want =
        remaining < sizeof(buf) ? static_cast<std::size_t>(remaining) : sizeof(buf);
    if (std::fread(buf, 1, want, f) != want) {
      std::fclose(f);
      throw core::CheckpointError("resultlog: '" + path +
                                  "' is shorter than its checkpoint claims");
    }
    crc = common::crc32(buf, want, crc);
    remaining -= want;
  }
  if (crc != payload_crc) {
    std::fclose(f);
    throw core::CheckpointError("resultlog: '" + path +
                                "' record stream fails the checkpointed CRC");
  }
  std::fseek(f, 0, SEEK_END);
  file_ = f;
  path_ = path;
  payload_bytes_ = payload_bytes;
  payload_crc_ = payload_crc;
}

void ResultLogWriter::append(const ResultRecord& rec) {
  if (!file_) return;
  if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1)
    throw std::runtime_error("resultlog: short record write to '" + path_ + "'");
  payload_crc_ = common::crc32(&rec, sizeof(rec), payload_crc_);
  payload_bytes_ += sizeof(rec);
}

void ResultLogWriter::flush() {
  if (file_ && std::fflush(file_) != 0)
    throw std::runtime_error("resultlog: flush of '" + path_ + "' failed");
}

void ResultLogWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

OutcomeCounts ResultLogData::counts() const {
  OutcomeCounts c;
  for (const auto& r : records) c.add(static_cast<Outcome>(r.outcome));
  return c;
}

ResultLogData read_result_log(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("resultlog: cannot open '" + path + "'");
  RawHeader raw{};
  if (!read_header(f, raw)) {
    std::fclose(f);
    throw std::runtime_error("resultlog: '" + path + "' is too short for a header");
  }
  if (raw.magic != kResultLogMagic) {
    std::fclose(f);
    throw std::runtime_error("resultlog: '" + path + "' has wrong magic");
  }
  if (raw.version != kResultLogVersion || raw.record_bytes != sizeof(ResultRecord)) {
    std::fclose(f);
    throw std::runtime_error("resultlog: '" + path + "' has unsupported version " +
                             std::to_string(raw.version) + " / record size " +
                             std::to_string(raw.record_bytes));
  }
  ResultLogData data;
  data.header = raw.h;
  ResultRecord rec;
  for (;;) {
    const std::size_t got = std::fread(&rec, 1, sizeof(rec), f);
    if (got < sizeof(rec)) {
      data.torn_tail_bytes = got;
      break;
    }
    data.records.push_back(rec);
  }
  std::fclose(f);
  return data;
}

ResultLogData merge_result_logs(const std::vector<ResultLogData>& shards) {
  if (shards.empty()) throw std::runtime_error("resultlog merge: no inputs");
  ResultLogData merged;
  merged.header = shards[0].header;
  merged.header.shards = 1;
  merged.header.shard_index = 0;
  std::size_t total_records = 0;
  for (const auto& s : shards) {
    if (s.header.config_digest != merged.header.config_digest ||
        s.header.total_trials != merged.header.total_trials)
      throw std::runtime_error("resultlog merge: shards come from different campaigns");
    total_records += s.records.size();
  }
  merged.records.reserve(total_records);
  for (const auto& s : shards)
    merged.records.insert(merged.records.end(), s.records.begin(), s.records.end());
  std::sort(merged.records.begin(), merged.records.end(),
            [](const ResultRecord& a, const ResultRecord& b) { return a.trial < b.trial; });
  for (std::size_t i = 0; i < merged.records.size(); ++i) {
    if (i > 0 && merged.records[i].trial == merged.records[i - 1].trial)
      throw std::runtime_error("resultlog merge: trial " +
                               std::to_string(merged.records[i].trial) + " duplicated");
  }
  return merged;
}

}  // namespace hauberk::swifi
