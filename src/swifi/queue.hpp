// Bounded lock-free MPMC queue of trial ordinals.
//
// The campaign service pumps trial indices through this ring to its worker
// threads: the pump enqueues the shard's next ordinals (bounded by the
// commit window, so memory stays constant no matter how many trials the
// campaign has), workers race to dequeue and execute them.  Classic
// Vyukov-style design: every cell carries a sequence number, producers and
// consumers claim positions with one CAS each and never block one another;
// a stalled worker delays only the trials it already claimed.
//
// The queue itself makes no ordering promises — determinism comes from the
// service keying every result by its trial ordinal and committing results
// strictly in ordinal order, exactly like CampaignExecutor's per-index
// outcome vector.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace hauberk::swifi {

class TrialQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit TrialQueue(std::size_t capacity);
  TrialQueue(const TrialQueue&) = delete;
  TrialQueue& operator=(const TrialQueue&) = delete;

  /// Enqueue one ordinal; returns false when the ring is full (caller
  /// retries after draining) or the queue is closed.
  bool try_push(std::uint64_t value) noexcept;

  /// Dequeue one ordinal; returns false when the ring is currently empty.
  bool try_pop(std::uint64_t& out) noexcept;

  /// Producer-side end-of-stream: consumers drain the remaining entries and
  /// then observe closed() && !try_pop() as termination.
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Instantaneous element count (approximate under concurrency; exact when
  /// quiescent).  For tests and progress reporting only.
  [[nodiscard]] std::size_t size_approx() const noexcept;

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    std::uint64_t value;
  };

  // Cells are deliberately unpadded — a trial costs ~1ms of interpretation,
  // so neighbor-line sharing between 16-byte cells is noise.  Head and tail
  // do get their own cache lines: they are the two genuinely contended words.
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next dequeue position
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next enqueue position
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace hauberk::swifi
