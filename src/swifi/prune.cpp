#include "swifi/prune.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

namespace hauberk::swifi {

namespace {

/// Coarse bit stratum of a (live-masked) flip: which architecturally
/// distinct value regions the surviving bits land in.
std::uint32_t bit_stratum(std::uint32_t mask, kir::DType type) {
  std::uint32_t s = 0;
  if (type == kir::DType::F32) {
    if (mask & 0x80000000u) s |= 1u;  // sign
    if (mask & 0x7f800000u) s |= 2u;  // exponent
    if (mask & 0x007fffffu) s |= 4u;  // mantissa
  } else {
    if (mask & 0xffff0000u) s |= 1u;  // high half
    if (mask & 0x0000ffffu) s |= 2u;  // low half
  }
  return s;
}

}  // namespace

PrunedCampaign prune_specs(const hauberk::prune::PruningPlan& plan,
                           const std::string& kernel_name,
                           const kir::BytecodeProgram& program,
                           const std::vector<FaultSpec>& specs) {
  const hauberk::prune::KernelPruneFacts* facts = plan.find(kernel_name);
  if (!facts)
    throw std::runtime_error("hauberk-prune: plan has no entry for kernel '" +
                             kernel_name + "'");
  const std::uint64_t digest = kir::program_digest(program);
  if (facts->program_digest != digest)
    throw std::runtime_error(
        "hauberk-prune: plan for kernel '" + kernel_name +
        "' was emitted for a different program build (digest mismatch)");

  PrunedCampaign out;
  out.plan_digest = hauberk::prune::pruning_plan_digest(plan);
  out.stats.total_specs = specs.size();
  out.class_of.assign(specs.size(), 0);

  // Class key -> representative position in out.specs.  Keys are exact
  // tuples, so the partition (and therefore the pruned campaign) is a pure
  // function of (plan, specs) — no ordering or hashing artifacts.
  using Key = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, std::uint32_t> classes;

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& s = specs[i];
    const hauberk::prune::SiteFacts* f = facts->find(s.site_id);
    Key key;
    bool is_benign = false;
    if (!f) {
      // Site unknown to the plan: keep the spec as its own class.
      ++out.stats.unknown_site_specs;
      key = Key{0x554eull, s.site_id, static_cast<std::uint32_t>(i), 0};
    } else {
      const std::uint32_t live = s.mask & f->live_mask;
      is_benign = live == 0;
      if (is_benign) {
        ++out.stats.benign_specs;
        if (f->live_mask == 0) ++out.stats.dead_site_specs;
        // All Benign flips at one site collapse: ground truth is Masked (or
        // NotActivated) for every one of them.
        key = Key{0x42ull, s.site_id, 0, 0};
      } else {
        const std::uint32_t occ = f->occ_symmetric ? 0 : s.occurrence;
        // Thread always collapses (see file comment in prune.hpp).
        key = Key{f->cone_sig, bit_stratum(live, s.type), occ, 0};
      }
    }
    const auto [it, inserted] =
        classes.emplace(key, static_cast<std::uint32_t>(out.specs.size()));
    if (inserted) {
      out.specs.push_back(s);
      out.weights.push_back(1);
      out.rep_index.push_back(static_cast<std::uint32_t>(i));
      out.benign.push_back(is_benign ? 1 : 0);
      if (is_benign) ++out.stats.benign_classes;
    } else {
      ++out.weights[it->second];
    }
    out.class_of[i] = it->second;
  }
  out.stats.kept_specs = out.specs.size();
  return out;
}

std::vector<BenignViolation> cross_check_benign(
    const hauberk::prune::KernelPruneFacts& facts, const std::vector<FaultSpec>& specs,
    const std::vector<Outcome>& outcomes) {
  std::vector<BenignViolation> out;
  const std::size_t n = specs.size() < outcomes.size() ? specs.size() : outcomes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const hauberk::prune::SiteFacts* f = facts.find(specs[i].site_id);
    if (!f || !hauberk::prune::statically_benign(*f, specs[i].mask)) continue;
    const Outcome o = outcomes[i];
    if (o != Outcome::Masked && o != Outcome::NotActivated)
      out.push_back({static_cast<std::uint32_t>(i), specs[i], o});
  }
  return out;
}

}  // namespace hauberk::swifi
