#include "swifi/executor.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace hauberk::swifi {

CampaignExecutor::CampaignExecutor(int workers)
    : pool_(workers > 0 ? static_cast<unsigned>(workers)
                        : common::WorkerPool::default_workers()) {}

CampaignExecutor::~CampaignExecutor() = default;

int CampaignExecutor::workers() const noexcept { return static_cast<int>(pool_.size()); }

CampaignResult CampaignExecutor::run_trials(
    const kir::BytecodeProgram& program, const WorkerContextFactory& make_context,
    std::size_t trial_count, const CampaignConfig& cfg,
    const std::function<Outcome(WorkerContext&, const GoldenRun&, std::uint64_t, std::size_t)>&
        trial) {
  // Never build more contexts than there are trials to hand out.
  const std::size_t nw =
      std::min<std::size_t>(pool_.size(), std::max<std::size_t>(trial_count, 1));
  std::vector<WorkerContext> ctxs;
  ctxs.reserve(nw);
  for (std::size_t i = 0; i < nw; ++i) {
    ctxs.push_back(make_context());
    if (!ctxs.back().device || !ctxs.back().job)
      throw std::invalid_argument(
          "swifi: WorkerContextFactory must provide a device and a job");
    ctxs.back().device->set_engine(cfg.effective_engine());
  }

  // One golden run serves every trial; run_one_* re-stage memory themselves.
  const GoldenRun gold =
      golden_run(*ctxs[0].device, program, *ctxs[0].job, ctxs[0].cb.get(), cfg.launch_workers);
  const std::uint64_t watchdog = campaign_watchdog(gold, cfg);

  CampaignResult result;
  result.pipeline = cfg.pipeline.name;
  if (cfg.pipeline.report) result.remark_digest = core::remark_digest(*cfg.pipeline.report);
  result.per_fault.resize(trial_count);
  if (trial_count == 0) return result;

  // Dynamic index distribution: workers race for the next trial, but each
  // outcome lands at its own index, so the vector (and the counts reduced
  // from it below) never depend on scheduling or worker count.
  std::atomic<std::size_t> next{0};
  pool_.run(static_cast<unsigned>(nw), [&](unsigned w) {
    WorkerContext& ctx = ctxs[w];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trial_count) return;
      result.per_fault[i] = trial(ctx, gold, watchdog, i);
    }
  });

  for (std::size_t i = 0; i < result.per_fault.size(); ++i)
    result.counts.add(result.per_fault[i], cfg.trial_weight(i));
  return result;
}

CampaignResult CampaignExecutor::run(const kir::BytecodeProgram& program,
                                     const WorkerContextFactory& make_context,
                                     const std::vector<FaultSpec>& specs,
                                     const workloads::Requirement& req,
                                     const CampaignConfig& cfg) {
  return run_trials(program, make_context, specs.size(), cfg,
                    [&](WorkerContext& ctx, const GoldenRun& gold, std::uint64_t watchdog,
                        std::size_t i) {
                      if (!ctx.stage)
                        ctx.stage = std::make_unique<TrialStage>(*ctx.device, *ctx.job);
                      return run_one_fault(*ctx.device, program, *ctx.job, ctx.cb.get(),
                                           specs[i], gold.output, req, watchdog,
                                           cfg.launch_workers, cfg.sanitize_cap,
                                           ctx.stage.get());
                    });
}

CampaignResult CampaignExecutor::run_memory_faults(const kir::BytecodeProgram& program,
                                                   const WorkerContextFactory& make_context,
                                                   std::uint64_t seed, int trials,
                                                   int error_bits,
                                                   const workloads::Requirement& req,
                                                   const CampaignConfig& cfg) {
  const std::size_t n = trials > 0 ? static_cast<std::size_t>(trials) : 0;
  return run_trials(program, make_context, n, cfg,
                    [&](WorkerContext& ctx, const GoldenRun& gold, std::uint64_t watchdog,
                        std::size_t i) {
                      common::Rng rng = common::Rng::fork(seed, i);
                      const std::uint32_t mask = common::random_mask(rng, error_bits);
                      return run_one_memory_fault(*ctx.device, program, *ctx.job, rng, mask,
                                                  gold.output, req, watchdog,
                                                  cfg.launch_workers, cfg.sanitize_cap,
                                                  ctx.cb.get());
                    });
}

CampaignResult CampaignExecutor::run_code_faults(const kir::BytecodeProgram& program,
                                                 const WorkerContextFactory& make_context,
                                                 std::uint64_t seed, int trials,
                                                 const workloads::Requirement& req,
                                                 const CampaignConfig& cfg) {
  const std::size_t n = trials > 0 ? static_cast<std::size_t>(trials) : 0;
  return run_trials(program, make_context, n, cfg,
                    [&](WorkerContext& ctx, const GoldenRun& gold, std::uint64_t watchdog,
                        std::size_t i) {
                      common::Rng rng = common::Rng::fork(seed, i);
                      return run_one_code_fault(*ctx.device, program, *ctx.job, rng,
                                                gold.output, req, watchdog,
                                                cfg.launch_workers, cfg.sanitize_cap);
                    });
}

}  // namespace hauberk::swifi
