// Fault-injection campaign harness (Sections VII/VIII): plans fault targets
// from profiler execution counts, runs one experiment per fault, and
// classifies outcomes against the golden run and the program's correctness
// requirement.  Also provides the memory-word and code-segment fault modes
// used for the Fig. 1 CPU-program rows.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/program.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/fault.hpp"
#include "workloads/workload.hpp"

namespace hauberk::swifi {

struct PlanOptions {
  int max_vars = 20;       ///< virtual variables targeted (paper: 20-50)
  int masks_per_var = 10;  ///< error masks per variable (paper: 50)
  int error_bits = 1;      ///< popcount of each mask (Fig. 14: 1/3/6/10/15)
  std::uint64_t seed = 1;
  /// Restrict targets to one data class (Fig. 1's pointer/integer/FP rows).
  std::optional<kir::DType> type_filter;
  /// Restrict targets to a hardware component.
  std::optional<kir::HwComponent> hw_filter;
};

/// Derive fault specs from the FI program's site table and the profiler's
/// per-site per-thread execution counts.
[[nodiscard]] std::vector<FaultSpec> plan_faults(const kir::BytecodeProgram& fi_program,
                                                 const core::ProfileData& profile,
                                                 const PlanOptions& opt);

/// Which instrumentation pipeline produced the program(s) a campaign runs.
/// Campaigns carry this through to their results so experiment logs record
/// the exact detector configuration (pipeline name + deterministic remark
/// digest) alongside the outcome counts — and so tests can pin that the
/// digest is invariant under the campaign worker count.
struct PipelineSpec {
  std::string name;  ///< e.g. "fi+ft" or "ft.hauberk-nl" (TranslateReport::pipeline)
  /// Translator report of the injected program; optional.  Not owned — the
  /// caller keeps it alive for the duration of the campaign.
  const core::TranslateReport* report = nullptr;

  /// Construct from a translator report (name + digest source).
  [[nodiscard]] static PipelineSpec from_report(const core::TranslateReport& rep) {
    return {rep.pipeline, &rep};
  }
};

struct CampaignConfig {
  /// Watchdog budget as a multiple of the fault-free per-thread instruction
  /// count (the guardian's hang rule applied to injection runs).
  double hang_factor = 10.0;
  std::uint64_t hang_floor = 1'000'000;
  /// Block-level workers per trial launch.  Campaigns parallelize across
  /// trials (see swifi/executor.hpp), so each individual launch defaults to
  /// a single worker: no per-launch pool churn, and no core oversubscription
  /// when campaign workers saturate the host.  0 = hardware concurrency.
  int launch_workers = 1;
  /// Interpreter engine for every campaign device (golden run and trials
  /// alike).  Engines are bitwise identical, so this only changes campaign
  /// wall-clock; Reference exists as the oracle for differential testing.
  gpusim::ExecEngine engine = gpusim::ExecEngine::Fast;
  /// Run trials under ExecEngine::Sanitizer (overrides `engine`): identical
  /// observables, but trials whose fault induced a shared-memory race or
  /// barrier divergence reclassify as Outcome::RaceDetected /
  /// Outcome::BarrierDivergence instead of Failure/other classes.
  bool sanitize = false;
  /// Per-block sanitizer report cap forwarded to every trial launch (and the
  /// golden run) as LaunchOptions::sanitize_report_cap.  Only consulted when
  /// the effective engine is Sanitizer; 0 clamps to 1 so the first hazard per
  /// block always survives.
  std::size_t sanitize_cap = gpusim::SharedShadow::kMaxReportsPerBlock;
  /// Hardware memory protection every campaign device must be built with
  /// (DeviceProps::protection).  The campaign drivers construct their own
  /// devices from this; CampaignService additionally folds a non-None scheme
  /// into the campaign digest, so an ECC checkpoint can never resume an
  /// unprotected campaign or vice versa (None keeps existing digests — and
  /// therefore existing checkpoints and logs — bitwise valid).
  gpusim::ecc::Scheme protection = gpusim::ecc::Scheme::None;
  /// Instrumentation pipeline that produced the injected program; copied
  /// into CampaignResult for experiment logs.
  PipelineSpec pipeline;
  /// Digest of the selective-hardening plan the injected program was built
  /// under (core::plan_digest); 0 — the trivial plan — when hardening was
  /// not plan-driven.  CampaignService folds a nonzero digest into the
  /// campaign digest so a checkpoint or result log can never silently pair
  /// with a differently-hardened build.
  std::uint64_t plan_digest = 0;
  /// Digest of the PruningPlan the trial list was pruned under
  /// (hauberk::prune::pruning_plan_digest); 0 when the campaign is unpruned.
  /// Folded into the campaign digest like plan_digest so pruned and full
  /// campaigns can never silently share checkpoints or result logs.
  std::uint64_t prune_digest = 0;
  /// Per-trial population weights from campaign pruning: trial i of the
  /// (pruned) spec list stands for trial_weights[i] specs of the full
  /// campaign, and aggregates (OutcomeCounts, site histograms, result-log
  /// populations) count it that many times.  Empty = every trial weighs 1.
  std::vector<std::uint32_t> trial_weights;

  /// Weight of trial `i` under trial_weights (1 when unpruned).
  [[nodiscard]] std::uint64_t trial_weight(std::size_t i) const noexcept {
    return i < trial_weights.size() && trial_weights[i] != 0 ? trial_weights[i] : 1;
  }

  [[nodiscard]] gpusim::ExecEngine effective_engine() const noexcept {
    return sanitize ? gpusim::ExecEngine::Sanitizer : engine;
  }
};

struct CampaignResult {
  OutcomeCounts counts;
  std::vector<Outcome> per_fault;
  std::string pipeline;               ///< from CampaignConfig::pipeline
  std::uint64_t remark_digest = 0;    ///< core::remark_digest of the spec's report
};

/// Caches the staged device image for repeated trials of one (device, job)
/// pair.  KernelJob::setup rebuilds the same allocation layout and contents
/// on every call for a fixed dataset (the executor's determinism contract
/// already depends on this), so the stage runs setup once and resets every
/// later trial with a flat image restore — no per-trial allocation, no
/// host->device re-upload, bitwise-identical device state.
class TrialStage {
 public:
  TrialStage(gpusim::Device& dev, core::KernelJob& job) : dev_(&dev), job_(&job) {}

  /// Stage device memory for the next trial and return the launch args.
  const std::vector<kir::Value>& stage();

 private:
  gpusim::Device* dev_;
  core::KernelJob* job_;
  std::vector<kir::Value> args_;
  std::vector<std::uint32_t> image_;
  /// Shadow check bytes staged next to image_ (empty when the device is
  /// unprotected) so a re-staged trial starts with bitwise-identical ECC
  /// state to a fresh setup, not merely re-encoded-equivalent state.
  std::vector<std::uint8_t> check_image_;
  bool primed_ = false;
};

/// Run one injection experiment.  `cb` may be null (FI without FT).
/// `launch_workers` caps block-level workers of the trial launch (0 = hw).
/// `stage`, when given, re-stages memory via its cached image instead of a
/// fresh job.setup() — the campaign drivers pass one stage per device.
[[nodiscard]] Outcome run_one_fault(gpusim::Device& dev, const kir::BytecodeProgram& program,
                                    core::KernelJob& job, core::ControlBlock* cb,
                                    const FaultSpec& spec,
                                    const core::ProgramOutput& golden,
                                    const workloads::Requirement& req,
                                    std::uint64_t watchdog_instructions,
                                    int launch_workers = 0,
                                    std::size_t sanitize_cap =
                                        gpusim::SharedShadow::kMaxReportsPerBlock,
                                    TrialStage* stage = nullptr);

/// Run a whole campaign on one device: one launch per spec against a shared
/// golden run, trials strictly in spec order.  This is the single-worker
/// path; CampaignExecutor (swifi/executor.hpp) runs the same trials across
/// a worker pool with bitwise-identical results.
[[nodiscard]] CampaignResult run_campaign(gpusim::Device& dev,
                                          const kir::BytecodeProgram& program,
                                          core::KernelJob& job, core::ControlBlock* cb,
                                          const std::vector<FaultSpec>& specs,
                                          const workloads::Requirement& req,
                                          const CampaignConfig& cfg = {});

// ---------------------------------------------------------------------------
// Memory-data and code-segment faults (Fig. 1 CPU rows)
// ---------------------------------------------------------------------------

/// Flip `mask` into a uniformly chosen live memory word after job setup,
/// then run and classify.  On a protected device the flip is planted raw
/// (corrupt_word / corrupt_check) after staging, so hardware ECC actually
/// sees a cell upset; `cb`, when given, arms Hauberk's range detectors for
/// the run (the hardware-vs-Hauberk study runs all four combinations).
[[nodiscard]] Outcome run_one_memory_fault(gpusim::Device& dev,
                                           const kir::BytecodeProgram& program,
                                           core::KernelJob& job, common::Rng& rng,
                                           std::uint32_t mask,
                                           const core::ProgramOutput& golden,
                                           const workloads::Requirement& req,
                                           std::uint64_t watchdog_instructions,
                                           int launch_workers = 0,
                                           std::size_t sanitize_cap =
                                               gpusim::SharedShadow::kMaxReportsPerBlock,
                                           core::ControlBlock* cb = nullptr);

/// Flip one random bit in one random instruction encoding ("code segment"
/// fault).  Structurally invalid mutants are classified as Failure without
/// execution (illegal-instruction trap).
[[nodiscard]] Outcome run_one_code_fault(gpusim::Device& dev,
                                         const kir::BytecodeProgram& program,
                                         core::KernelJob& job, common::Rng& rng,
                                         const core::ProgramOutput& golden,
                                         const workloads::Requirement& req,
                                         std::uint64_t watchdog_instructions,
                                         int launch_workers = 0,
                                         std::size_t sanitize_cap =
                                             gpusim::SharedShadow::kMaxReportsPerBlock);

/// Structural validity check used by code-fault experiments: register
/// indices in range, opcodes decodable, jump targets inside the program.
[[nodiscard]] bool validate_program(const kir::BytecodeProgram& p);

/// Fault-free run to obtain the golden output and the watchdog baseline.
struct GoldenRun {
  core::ProgramOutput output;
  std::uint64_t per_thread_instructions = 0;
};
[[nodiscard]] GoldenRun golden_run(gpusim::Device& dev, const kir::BytecodeProgram& program,
                                   core::KernelJob& job, core::ControlBlock* cb = nullptr,
                                   int launch_workers = 0);

/// Watchdog budget for injection runs derived from the golden run.
[[nodiscard]] std::uint64_t campaign_watchdog(const GoldenRun& gold,
                                              const CampaignConfig& cfg) noexcept;

}  // namespace hauberk::swifi
