// Compact binary per-trial result log.
//
// A million-trial campaign at one JSON object per trial produces hundreds of
// megabytes and a post-processing parse measured in minutes; this log spends
// eight bytes per trial and streams.  The writer appends records strictly in
// trial-index order (the service's committer guarantees it), which makes the
// log bytes a deterministic function of the campaign alone: any worker
// count, any kill/resume history — byte-identical file.
//
// Layout (little-endian):
//
//   offset  size  field
//   0       4     magic "HBRL"
//   4       2     format version (kResultLogVersion)
//   6       2     record size in bytes (8)
//   8       4     shard count K
//   12      4     shard index I
//   16      8     campaign config digest (matches the checkpoint's)
//   24      8     total trials in the whole campaign (all shards)
//   32      8*n   records
//
// Each record: u32 trial index, u8 outcome, u24 little-endian population
// weight (0 encodes weight 1, so pre-pruning logs — which wrote zeroed
// reserved bytes there — read back unchanged).  A pruned campaign's
// representative trial carries its equivalence-class size here.  Torn
// writes are expected — a killed process may leave a partial trailing
// record — so the reader reports how many whole records parse and the
// resume path truncates the file to the byte count its checkpoint vouches
// for (guarded by a running CRC of the record stream).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "swifi/fault.hpp"

namespace hauberk::swifi {

constexpr std::uint32_t kResultLogMagic = 0x4c524248u;  // "HBRL" little-endian
constexpr std::uint16_t kResultLogVersion = 1;

struct ResultLogHeader {
  std::uint32_t shards = 1;
  std::uint32_t shard_index = 0;
  std::uint64_t config_digest = 0;
  std::uint64_t total_trials = 0;
};

struct ResultRecord {
  std::uint32_t trial = 0;
  std::uint8_t outcome = 0;
  /// u24 LE population weight; 0 encodes 1 (back-compat with v1 logs that
  /// zeroed these bytes).  See set_weight()/weight().
  std::uint8_t reserved[3] = {0, 0, 0};

  /// Population weight of this trial (equivalence-class size under campaign
  /// pruning); saturates at 2^24 - 1.
  void set_weight(std::uint64_t w) noexcept {
    const std::uint32_t enc =
        w <= 1 ? 0u : static_cast<std::uint32_t>(w < 0xffffffu ? w : 0xffffffu);
    reserved[0] = static_cast<std::uint8_t>(enc & 0xffu);
    reserved[1] = static_cast<std::uint8_t>((enc >> 8) & 0xffu);
    reserved[2] = static_cast<std::uint8_t>((enc >> 16) & 0xffu);
  }
  [[nodiscard]] std::uint64_t weight() const noexcept {
    const std::uint32_t enc = static_cast<std::uint32_t>(reserved[0]) |
                              (static_cast<std::uint32_t>(reserved[1]) << 8) |
                              (static_cast<std::uint32_t>(reserved[2]) << 16);
    return enc == 0 ? 1 : enc;
  }

  friend bool operator==(const ResultRecord& a, const ResultRecord& b) noexcept {
    return a.trial == b.trial && a.outcome == b.outcome && a.weight() == b.weight();
  }
};
static_assert(sizeof(ResultRecord) == 8, "record layout is part of the file format");

/// Append-only writer with a running CRC-32 of the record stream.  The
/// service flushes before every checkpoint so the checkpoint's
/// (payload_bytes, payload_crc) pair always describes bytes that are really
/// on disk; a resume truncates to exactly that state.
class ResultLogWriter {
 public:
  ResultLogWriter() = default;
  ~ResultLogWriter();
  ResultLogWriter(const ResultLogWriter&) = delete;
  ResultLogWriter& operator=(const ResultLogWriter&) = delete;

  /// Start a fresh log (truncates any existing file).
  void create(const std::string& path, const ResultLogHeader& header);

  /// Reopen an existing log for resume: validate the header against
  /// `header`, truncate the record stream to `payload_bytes`, verify its
  /// CRC equals `payload_crc`, and position for appending.  Throws
  /// core::CheckpointError (via std::runtime_error) on any mismatch —
  /// a log that disagrees with its checkpoint must not be extended.
  void reopen(const std::string& path, const ResultLogHeader& header,
              std::uint64_t payload_bytes, std::uint32_t payload_crc);

  void append(const ResultRecord& rec);
  void flush();
  void close();

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  /// Bytes of record stream written (excludes the header).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept { return payload_bytes_; }
  /// Running CRC-32 of the record stream.
  [[nodiscard]] std::uint32_t payload_crc() const noexcept { return payload_crc_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t payload_bytes_ = 0;
  std::uint32_t payload_crc_ = 0;
};

/// A parsed log.  `torn_tail_bytes` counts trailing bytes that do not form a
/// whole record (a killed writer's partial append); they are not an error.
struct ResultLogData {
  ResultLogHeader header;
  std::vector<ResultRecord> records;
  std::uint64_t torn_tail_bytes = 0;

  [[nodiscard]] OutcomeCounts counts() const;
};

/// Read and validate a result log.  Throws std::runtime_error on missing
/// file, bad magic, or unsupported version/record size.
[[nodiscard]] ResultLogData read_result_log(const std::string& path);

/// Merge per-shard logs of one campaign into a single trial-ordered record
/// stream, verifying that the shards agree on config digest and trial total
/// and that no trial is missing or duplicated.  The merged records are
/// byte-identical to what a 1-shard run would have logged.
[[nodiscard]] ResultLogData merge_result_logs(const std::vector<ResultLogData>& shards);

}  // namespace hauberk::swifi
