// The SWIFI runtime: LaunchHooks implementation that arms one FaultSpec per
// launch, corrupts the targeted definition via the FIHook instruction, and
// forwards detector callbacks to a Hauberk control block when one is present
// (the FI&FT configuration of Fig. 7).
#pragma once

#include <atomic>

#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "swifi/fault.hpp"

namespace hauberk::swifi {

class InjectingHooks final : public gpusim::LaunchHooks {
 public:
  /// `cb` may be null (plain FI build: sensitivity measurement, Fig. 1).
  InjectingHooks(const kir::BytecodeProgram& program, core::ControlBlock* cb)
      : prog_(&program), cb_(cb) {}

  /// Arm one fault for the next launch.
  void arm(const FaultSpec& spec) {
    spec_ = spec;
    armed_ = true;
    activated_.store(false, std::memory_order_relaxed);
    occurrence_seen_ = 0;
  }
  void disarm() { armed_ = false; }
  [[nodiscard]] bool activated() const noexcept {
    return activated_.load(std::memory_order_relaxed);
  }

  // --- LaunchHooks ---
  bool fi_hook(std::uint32_t site_index, std::uint32_t thread_linear,
               std::uint32_t& value_bits) override {
    if (!armed_) return false;
    const kir::FISite& site = prog_->fi_sites[site_index];
    if (site.site_id != spec_.site_id || thread_linear != spec_.thread) return false;
    // Only the targeted thread reaches this point, so the occurrence counter
    // needs no synchronization.
    if (++occurrence_seen_ != spec_.occurrence) return false;
    value_bits ^= spec_.mask;
    activated_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool check_range(int detector, kir::Value value) override {
    return cb_ ? cb_->check_range(detector, value) : false;
  }
  void equal_check_failed(int detector) override {
    if (cb_) cb_->equal_check_failed(detector);
  }
  void profile_value(int detector, kir::Value value) override {
    if (cb_) cb_->profile_value(detector, value);
  }
  void count_exec(std::uint32_t site_index, std::uint32_t thread_linear) override {
    if (cb_) cb_->count_exec(site_index, thread_linear);
  }

 private:
  const kir::BytecodeProgram* prog_;
  core::ControlBlock* cb_;
  FaultSpec spec_{};
  bool armed_ = false;
  std::uint64_t occurrence_seen_ = 0;
  std::atomic<bool> activated_{false};
};

}  // namespace hauberk::swifi
