// Campaign pruning: partition a fault-spec list into static equivalence
// classes and keep one representative trial per class.
//
// hauberk::prune supplies the per-site facts (bit-liveness, propagation-cone
// signatures, thread uniformity, occurrence symmetry); this layer applies
// them to the concrete FaultSpecs a campaign planner produced:
//
//   * a spec whose mask lands entirely outside the site's live bits is
//     *statically Benign* — all such specs at one site collapse into a
//     single class whose ground-truth outcome must be Masked (or
//     NotActivated), which bench_prune_validation gates exactly;
//   * other specs class on (cone signature, live-masked bit stratum,
//     occurrence key): sites with isomorphic propagation cones merge, the
//     bit stratum separates sign/exponent/mantissa (f32) or hi/lo half
//     (i32/ptr) flips, and occurrence collapses when the site is
//     occurrence-symmetric.  Thread ids always collapse — inter-thread
//     similarity ("Partial Thread Protection", arXiv 2103.02825) makes
//     same-site same-mask specs across threads statistical replicas, and
//     the validation harness bounds the residual error.
//
// The pruned campaign is an ordinary (smaller) campaign: representatives
// keep their original relative order, so every determinism contract
// (worker-count invariance, shard splits, kill/resume) is inherited
// unchanged, and only aggregation is weighted (CampaignConfig::trial_weights
// -> OutcomeCounts/site histograms/result-log population counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hauberk/prune.hpp"
#include "swifi/fault.hpp"

namespace hauberk::swifi {

struct PruneStats {
  std::uint64_t total_specs = 0;
  std::uint64_t kept_specs = 0;      ///< class representatives actually run
  std::uint64_t benign_specs = 0;    ///< specs statically proven Benign
  std::uint64_t benign_classes = 0;  ///< classes whose members are all Benign
  std::uint64_t dead_site_specs = 0; ///< Benign via a fully-dead site (live == 0)
  std::uint64_t unknown_site_specs = 0;  ///< specs at sites the plan lacks (kept 1:1)

  [[nodiscard]] double reduction() const noexcept {
    return kept_specs == 0 ? 1.0
                           : static_cast<double>(total_specs) /
                                 static_cast<double>(kept_specs);
  }
};

/// Result of pruning one campaign's spec list.
struct PrunedCampaign {
  /// Representative specs, in ascending original index order.
  std::vector<FaultSpec> specs;
  /// Population weight of each representative (class size); aligned with
  /// `specs` and fed to CampaignConfig::trial_weights.
  std::vector<std::uint32_t> weights;
  /// Original index (into the full spec list) of each representative.
  std::vector<std::uint32_t> rep_index;
  /// For every full-campaign spec, the position of its class representative
  /// in `specs` (full-vs-pruned outcome comparison).
  std::vector<std::uint32_t> class_of;
  /// Per representative: the class is statically proven Benign.
  std::vector<std::uint8_t> benign;
  /// pruning_plan_digest of the plan the classes were derived from; wire
  /// into CampaignConfig::prune_digest.
  std::uint64_t plan_digest = 0;
  PruneStats stats;
};

/// Partition `specs` under the plan's facts for `kernel_name`.  Throws
/// std::runtime_error when the plan has no entry for the kernel or its
/// pinned program digest does not match `program` (the plan was emitted for
/// a different build).  Specs at sites missing from the plan entry are kept
/// unpruned (weight 1).
[[nodiscard]] PrunedCampaign prune_specs(const hauberk::prune::PruningPlan& plan,
                                         const std::string& kernel_name,
                                         const kir::BytecodeProgram& program,
                                         const std::vector<FaultSpec>& specs);

/// A statically-Benign spec whose ground-truth outcome was neither Masked
/// nor NotActivated: the analysis made an unsound claim.
struct BenignViolation {
  std::uint32_t spec_index = 0;
  FaultSpec spec;
  Outcome outcome = Outcome::Failure;
};

/// Cross-check static Benign proofs against ground-truth outcomes of a
/// *full* (unpruned) campaign; any returned entry is an analysis soundness
/// bug.  `outcomes` is CampaignResult::per_fault aligned with `specs`.
[[nodiscard]] std::vector<BenignViolation> cross_check_benign(
    const hauberk::prune::KernelPruneFacts& facts, const std::vector<FaultSpec>& specs,
    const std::vector<Outcome>& outcomes);

}  // namespace hauberk::swifi
