// Benchmark workloads: re-implementations of the seven Parboil programs the
// paper evaluates (CP, MRI-FHD, MRI-Q, PNS, RPES, SAD, TPACF) plus the two
// graphics programs (ocean-flow, ray-trace) used for Figs. 1 and 3.
//
// Each workload provides:
//  * the GPU kernel authored in the kernel IR (the "CUDA source" that the
//    Hauberk translator instruments),
//  * a deterministic dataset generator (52 distinct datasets per program are
//    needed for the Fig. 16 false-positive study),
//  * a KernelJob that stages the dataset into device memory,
//  * a native C++ golden implementation used to validate the simulator,
//  * the paper's per-program output-correctness requirement (Section IX.B
//    quotes PNS, RPES and MRI-Q's exact formulas).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "hauberk/program.hpp"
#include "kir/ast.hpp"

namespace hauberk::workloads {

/// Problem size tier: Tiny for unit tests, Small for fault-injection
/// campaigns, Medium for performance benches.
enum class Scale { Tiny, Small, Medium };

/// Output correctness requirement.  An output violating it is an SDC error.
struct Requirement {
  enum class Kind {
    Exact,         ///< any difference violates (integer programs, e.g. SAD)
    AbsRel,        ///< |d| <= max(abs_floor, rel*|GRi|)            (PNS)
    RelPlusEps,    ///< |d| <= rel*|GRi| + eps                      (RPES)
    GlobalRel,     ///< |d| <= max(global_rel*max|GR|, rel*|GRi|)   (MRI-Q)
    GraphicsFrame, ///< user-noticeable corruption: fraction of pixels whose
                   ///< intensity moves more than pixel_delta exceeds frac
  };
  Kind kind = Kind::Exact;
  double abs_floor = 0.0;
  double rel = 0.0;
  double eps = 0.0;
  double global_rel = 0.0;
  double pixel_delta = 1.0 / 255.0;
  double frac = 0.0005;

  /// Does `out` satisfy the requirement against the golden run `gold`?
  [[nodiscard]] bool satisfied(const core::ProgramOutput& out,
                               const core::ProgramOutput& gold) const;
  [[nodiscard]] std::string to_string() const;
};

/// A generated input dataset.  Field meaning is workload-specific.
struct Dataset {
  std::uint64_t seed = 0;
  std::vector<float> fa, fb, fc, fd;
  std::vector<std::int32_t> ia;
  std::int32_t n = 0;       ///< main element count (atoms, samples, steps, ...)
  std::int32_t threads = 0; ///< output elements / worker threads
  float scale = 1.0f;       ///< workload-specific magnitude knob
};

/// KernelJob staging a Dataset into device memory.  Buffers are re-allocated
/// and re-filled on every setup() (deterministic re-execution).
class BufferJob final : public core::KernelJob {
 public:
  struct Buffer {
    std::vector<std::uint32_t> data;  ///< initial contents (word-encoded)
    gpusim::AllocClass cls = gpusim::AllocClass::F32Data;
  };
  /// An argument is either a scalar value or a pointer to buffer[index].
  struct Arg {
    bool is_buffer = false;
    int buffer = -1;
    kir::Value scalar{};
    static Arg buf(int index) { return {true, index, {}}; }
    static Arg val(kir::Value v) { return {false, -1, v}; }
  };

  BufferJob(std::vector<Buffer> buffers, std::vector<Arg> args, gpusim::LaunchConfig cfg,
            int output_buffer, kir::DType output_type)
      : buffers_(std::move(buffers)), args_(std::move(args)), cfg_(cfg),
        output_buffer_(output_buffer), output_type_(output_type) {}

  std::vector<kir::Value> setup(gpusim::Device& dev) override;
  [[nodiscard]] gpusim::LaunchConfig config() const override { return cfg_; }
  [[nodiscard]] core::ProgramOutput read_output(const gpusim::Device& dev) const override;

 private:
  std::vector<Buffer> buffers_;
  std::vector<Arg> args_;
  gpusim::LaunchConfig cfg_;
  int output_buffer_;
  kir::DType output_type_;
  std::vector<std::uint32_t> addrs_;  ///< buffer base addresses (valid after setup)
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual bool is_integer_program() const { return false; }
  [[nodiscard]] virtual bool is_graphics() const { return false; }

  /// The GPU kernel source.
  [[nodiscard]] virtual kir::Kernel build_kernel(Scale scale) const = 0;

  /// Deterministic dataset; distinct seeds give distinct datasets.
  [[nodiscard]] virtual Dataset make_dataset(std::uint64_t seed, Scale scale) const = 0;

  /// Stage a dataset for execution.
  [[nodiscard]] virtual std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const = 0;

  /// Native reference implementation (validates the simulator in tests).
  [[nodiscard]] virtual std::vector<double> golden_native(const Dataset& ds) const = 0;

  [[nodiscard]] virtual Requirement requirement() const = 0;
};

// Factories (one per benchmark program).
std::unique_ptr<Workload> make_cp();
std::unique_ptr<Workload> make_mri_q();
std::unique_ptr<Workload> make_mri_fhd();
std::unique_ptr<Workload> make_pns();
std::unique_ptr<Workload> make_rpes();
std::unique_ptr<Workload> make_sad();
std::unique_ptr<Workload> make_tpacf();
std::unique_ptr<Workload> make_ocean();
std::unique_ptr<Workload> make_raytrace();
std::unique_ptr<Workload> make_cpu_matmul();
std::unique_ptr<Workload> make_cpu_histogram();
std::unique_ptr<Workload> make_cpu_linkedlist();

/// The paper's seven-program HPC suite, in Fig. 4/13/14 order.
std::vector<std::unique_ptr<Workload>> hpc_suite();
/// The two 3D-graphics programs (Figs. 1 and 3).
std::vector<std::unique_ptr<Workload>> graphics_suite();
/// CPU reference programs (Fig. 1 bottom rows; run on a PagedCpu device).
std::vector<std::unique_ptr<Workload>> cpu_suite();

}  // namespace hauberk::workloads
