// TPACF — two-point angular correlation function (Parboil).  Blocks cache
// galaxy coordinates in shared memory, each thread histograms the angular
// separation (dot product) of its assigned points against all cached points
// into per-thread-group shared sub-histograms, and the block flushes the
// sub-histograms to the global histogram with atomics.
//
// Two paper-relevant details are reproduced deliberately:
//  * the kernel uses well over half of the device's 16 KiB shared memory,
//    so R-Scatter's duplication cannot compile it (Section IX.A);
//  * the sub-histogram update is a write-and-read-back *retry loop*; when a
//    fault corrupts the write-address copy, the read-back never observes the
//    expected value and the loop never terminates — the hang failure mode
//    of Section IX.B that only the guardian's preemptive detection catches.
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

constexpr std::int32_t kCachePoints = 128;             // shared coord cache capacity
constexpr std::int32_t kCacheWords = kCachePoints * 3; // 384 words
constexpr std::int32_t kBins = 256;                    // allocated bins (8 sub-copies)
constexpr std::int32_t kSub = 8;
constexpr std::uint32_t kSharedWords = kCacheWords + kBins * kSub;  // 2432 words (~9.5 KiB)
constexpr std::int32_t kThresholds = 8;                // used bins: 0..8
constexpr std::int32_t kBinsUsed = kThresholds + 1;

std::int32_t points_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return 24;
    case Scale::Small: return 96;
    case Scale::Medium: return 128;
  }
  return 96;
}

std::vector<float> thresholds() {
  // Descending dot-product thresholds; bin = #thresholds greater than dot.
  std::vector<float> t(kThresholds);
  for (std::int32_t i = 0; i < kThresholds; ++i)
    t[static_cast<std::size_t>(i)] = 0.9f - 0.25f * static_cast<float>(i);
  return t;
}

class TpacfWorkload final : public Workload {
 public:
  std::string name() const override { return "TPACF"; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("tpacf_kernel", kSharedWords);
    auto data = kb.param_ptr("galaxies");  // 3 words per point
    auto npoints = kb.param_i32("npoints");
    auto binb = kb.param_ptr("binb");      // kThresholds descending thresholds
    auto hist = kb.param_ptr("hist");      // kBinsUsed global bins (int)

    auto tidx = kb.let("tidx", kb.tid_x());
    auto gtid = kb.let("gtid", kb.thread_linear());
    auto nthreads = kb.let("nthreads", kb.bdim_x() * kb.gdim_x());

    // Phase 0: clear this block's sub-histograms.
    kb.for_loop_step("cb", ExprH(tidx), i32c(kBins * kSub), kb.bdim_x(), [&](ExprH cbi) {
      kb.shstore(cbi + i32c(kCacheWords), i32c(0));
    });
    // Phase 1: cooperative load of the coordinate cache.
    kb.for_loop_step("ci", ExprH(tidx), min_(npoints, i32c(kCachePoints)), kb.bdim_x(),
                     [&](ExprH ci) {
                       auto src = kb.let("src", data + ci * i32c(3));
                       kb.shstore(ci * i32c(3), kb.load_f32(src));
                       kb.shstore(ci * i32c(3) + i32c(1), kb.load_f32(src + i32c(1)));
                       kb.shstore(ci * i32c(3) + i32c(2), kb.load_f32(src + i32c(2)));
                     });
    kb.barrier();

    // Phase 2: histogram my points against all cached points.
    kb.for_loop_step("i", ExprH(gtid), npoints, ExprH(nthreads), [&](ExprH i) {
      auto xb = kb.let("xb", data + i * i32c(3));
      auto xi = kb.let("xi", kb.load_f32(xb));
      auto yi = kb.let("yi", kb.load_f32(xb + i32c(1)));
      auto zi = kb.let("zi", kb.load_f32(xb + i32c(2)));
      kb.for_loop("j", i32c(0), min_(npoints, i32c(kCachePoints)), [&](ExprH j) {
        auto dot = kb.let("dot", kb.shload_f32(j * i32c(3)) * xi +
                                     kb.shload_f32(j * i32c(3) + i32c(1)) * yi +
                                     kb.shload_f32(j * i32c(3) + i32c(2)) * zi);
        // Branchless bin search over the descending thresholds.
        ExprH acc = i32c(0);
        for (std::int32_t t = 0; t < kThresholds; ++t)
          acc = acc + (dot < kb.load_f32(binb + i32c(t)));
        auto bin = kb.let("bin", acc);
        auto slot = kb.let("slot", i32c(kCacheWords) + bin * i32c(kSub) +
                                       (tidx & i32c(kSub - 1)));
        // Write-retry update (guards against inter-thread overwrites on real
        // hardware).  `waddr` is the corruptible address copy.
        auto cur = kb.let("cur", kb.shload_i32(slot));
        auto want = kb.let("want", cur + i32c(1));
        auto waddr = kb.let("waddr", slot + i32c(0));
        kb.shstore(waddr, want);
        kb.while_loop([&] { return kb.shload_i32(slot) != want; },
                      [&] { kb.shstore(waddr, want); });
      });
    });
    kb.barrier();

    // Phase 3: flush sub-histograms to the global histogram.
    kb.for_loop_step("b", ExprH(tidx), i32c(kBinsUsed), kb.bdim_x(), [&](ExprH b) {
      auto tot = kb.let("tot", i32c(0));
      kb.for_loop("s", i32c(0), i32c(kSub), [&](ExprH s) {
        kb.assign(tot, tot + kb.shload_i32(i32c(kCacheWords) + b * i32c(kSub) + s));
      });
      kb.atomic_add(hist + b, tot);
    });
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    Dataset ds;
    ds.seed = seed;
    ds.n = points_for(scale);
    ds.threads = 64;
    common::Rng rng = common::Rng::fork(seed, 0x79ACF);
    ds.fa.resize(static_cast<std::size_t>(ds.n) * 3);
    for (std::int32_t p = 0; p < ds.n; ++p) {
      // Unit vectors on the sphere (galaxy angular positions).
      double x, y, z, n2;
      do {
        x = rng.uniform(-1.0, 1.0);
        y = rng.uniform(-1.0, 1.0);
        z = rng.uniform(-1.0, 1.0);
        n2 = x * x + y * y + z * z;
      } while (n2 < 1e-4 || n2 > 1.0);
      const double inv = 1.0 / std::sqrt(n2);
      ds.fa[3 * p + 0] = static_cast<float>(x * inv);
      ds.fa[3 * p + 1] = static_cast<float>(y * inv);
      ds.fa[3 * p + 2] = static_cast<float>(z * inv);
    }
    ds.fb = thresholds();
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(3);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {d::words_of(ds.fb), gpusim::AllocClass::F32Data};
    bufs[2] = {std::vector<std::uint32_t>(kBinsUsed, 0u), gpusim::AllocClass::I32Data};
    std::vector<BufferJob::Arg> args = {BufferJob::Arg::buf(0),
                                        BufferJob::Arg::val(Value::i32(ds.n)),
                                        BufferJob::Arg::buf(1), BufferJob::Arg::buf(2)};
    gpusim::LaunchConfig cfg = d::grid1d(ds.threads);
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), cfg,
                                       /*output_buffer=*/2, DType::I32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    const auto th = thresholds();
    std::vector<double> hist(kBinsUsed, 0.0);
    const std::int32_t cached = ds.n < kCachePoints ? ds.n : kCachePoints;
    for (std::int32_t i = 0; i < ds.n; ++i)
      for (std::int32_t j = 0; j < cached; ++j) {
        const float dot = ds.fa[3 * j] * ds.fa[3 * i] + ds.fa[3 * j + 1] * ds.fa[3 * i + 1] +
                          ds.fa[3 * j + 2] * ds.fa[3 * i + 2];
        std::int32_t bin = 0;
        for (std::int32_t t = 0; t < kThresholds; ++t) bin += dot < th[static_cast<std::size_t>(t)];
        hist[static_cast<std::size_t>(bin)] += 1.0;
      }
    return hist;
  }

  Requirement requirement() const override {
    Requirement r;
    r.kind = Requirement::Kind::Exact;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_tpacf() { return std::make_unique<TpacfWorkload>(); }

}  // namespace hauberk::workloads
