// PNS — Petri net simulation (Parboil).  The suite's integer program: each
// thread simulates an independent stochastic Petri net (three places, three
// transitions in a cycle) using an LCG random stream, counting fired
// transitions and final markings.  Because the program input merely
// parameterizes a *fixed simulation model*, its value-range detectors
// converge after a handful of training sets (Fig. 16), and the protected
// integer accumulator makes Hauberk-L's overhead the smallest of the suite
// (Section IX.A).
#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

struct Sizes {
  std::int32_t threads, steps;
};

Sizes sizes_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return {16, 40};
    case Scale::Small: return {64, 320};
    case Scale::Medium: return {256, 768};
  }
  return {64, 320};
}

class PnsWorkload final : public Workload {
 public:
  std::string name() const override { return "PNS"; }
  bool is_integer_program() const override { return true; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("pns_kernel");
    auto seeds = kb.param_ptr("seeds");   // 1 word per thread
    auto steps = kb.param_i32("steps");
    auto init0 = kb.param_i32("m0");      // initial marking of place 0
    auto out = kb.param_ptr("out");       // 2 ints per thread: fired, marking2

    auto tid = kb.let("tid", kb.thread_linear());
    auto s = kb.let("lcg", kb.load_i32(seeds + tid));
    auto p0 = kb.let("p0", init0);
    auto p1 = kb.let("p1", i32c(3));
    auto p2 = kb.let("p2", i32c(0));
    auto fired = kb.let("fired", i32c(0));

    kb.for_loop("t", i32c(0), steps, [&](ExprH) {
      kb.assign(s, s * i32c(1103515245) + i32c(12345));
      auto r = kb.let("r", (s >> i32c(16)) & i32c(3));
      kb.if_then_else(
          (r == i32c(0)) && (p0 > i32c(0)),
          [&] {
            kb.assign(p0, p0 - i32c(1));
            kb.assign(p1, p1 + i32c(1));
            kb.assign(fired, fired + i32c(1));
          },
          [&] {
            kb.if_then_else(
                (r == i32c(1)) && (p1 > i32c(0)),
                [&] {
                  kb.assign(p1, p1 - i32c(1));
                  kb.assign(p2, p2 + i32c(1));
                  kb.assign(fired, fired + i32c(1));
                },
                [&] {
                  kb.if_then((r == i32c(2)) && (p2 > i32c(0)), [&] {
                    kb.assign(p2, p2 - i32c(1));
                    kb.assign(p0, p0 + i32c(1));
                    kb.assign(fired, fired + i32c(1));
                  });
                });
          });
    });

    kb.store(out + tid * i32c(2), fired);
    kb.store(out + tid * i32c(2) + i32c(1), p2);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    Dataset ds;
    ds.seed = seed;
    ds.n = sz.steps;
    ds.threads = sz.threads;
    common::Rng rng = common::Rng::fork(seed, 0x9195);
    ds.ia.resize(static_cast<std::size_t>(sz.threads));
    for (auto& v : ds.ia) v = static_cast<std::int32_t>(rng.next_u32() & 0x7fffffff);
    // The "simulation model parameter": initial marking, a small integer.
    ds.scale = static_cast<float>(6 + rng.uniform_int(0, 4));
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(2);
    bufs[0] = {d::words_of(ds.ia), gpusim::AllocClass::I32Data};
    bufs[1] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads) * 2, 0u),
               gpusim::AllocClass::I32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::val(Value::i32(ds.n)),
        BufferJob::Arg::val(Value::i32(static_cast<std::int32_t>(ds.scale))),
        BufferJob::Arg::buf(1)};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/1, DType::I32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    std::vector<double> out(static_cast<std::size_t>(ds.threads) * 2);
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      std::int32_t s = ds.ia[static_cast<std::size_t>(tid)];
      std::int32_t p0 = static_cast<std::int32_t>(ds.scale), p1 = 3, p2 = 0, fired = 0;
      for (std::int32_t t = 0; t < ds.n; ++t) {
        s = static_cast<std::int32_t>(
            static_cast<std::int64_t>(s) * 1103515245 + 12345);
        const std::int32_t r = (s >> 16) & 3;
        if (r == 0 && p0 > 0) { --p0; ++p1; ++fired; }
        else if (r == 1 && p1 > 0) { --p1; ++p2; ++fired; }
        else if (r == 2 && p2 > 0) { --p2; ++p0; ++fired; }
      }
      out[2 * static_cast<std::size_t>(tid)] = fired;
      out[2 * static_cast<std::size_t>(tid) + 1] = p2;
    }
    return out;
  }

  Requirement requirement() const override {
    // Paper: Max{0.01, 1% * |GRi|}.
    Requirement r;
    r.kind = Requirement::Kind::AbsRel;
    r.abs_floor = 0.01;
    r.rel = 0.01;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_pns() { return std::make_unique<PnsWorkload>(); }

}  // namespace hauberk::workloads
