// RPES — Rys polynomial equation solver (Parboil).  Two-electron repulsion
// integral evaluation: a large straight-line section computes quadrature
// roots/weights from shell-pair parameters, followed by a short loop
// accumulating the integral over the roots.  Unique in the suite: ~75% of
// GPU time is *sequential (non-loop) code* (Section IX.A), which makes it
// the Hauberk-NL overhead outlier of Fig. 13 — and the program the Parboil
// maintainers later dropped for being an inefficient GPU citizen.
#include <cmath>
#include <string>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

struct Sizes {
  std::int32_t threads, roots;
};

Sizes sizes_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return {16, 4};
    case Scale::Small: return {64, 6};
    case Scale::Medium: return {256, 8};
  }
  return {64, 6};
}

/// Number of unrolled "quadrature setup" stages in the sequential section.
constexpr int kStages = 18;

class RpesWorkload final : public Workload {
 public:
  std::string name() const override { return "RPES"; }

  Kernel build_kernel(Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    KernelBuilder kb("rpes_kernel");
    auto pairs = kb.param_ptr("shellpairs");  // 4 words per thread: a, b, p, q
    auto out = kb.param_ptr("integrals");     // 1 float per thread
    auto nroots = kb.param_i32("nroots");

    auto tid = kb.let("tid", kb.thread_linear());
    auto base = kb.let("pbase", pairs + tid * i32c(4));
    auto ea = kb.let("ea", kb.load_f32(base));
    auto eb = kb.let("eb", kb.load_f32(base + i32c(1)));
    auto pp = kb.let("pp", kb.load_f32(base + i32c(2)));
    auto qq = kb.let("qq", kb.load_f32(base + i32c(3)));

    // --- sequential quadrature setup: a long chain of dependent stages ---
    // (stands in for the Rys root/weight polynomial evaluation; each stage
    // mixes transcendental, divide and multiply-add work).
    auto rho = kb.let("rho", ea * eb / (ea + eb + f32c(0.1f)));
    auto tpar = kb.let("T", rho * (pp - qq) * (pp - qq));
    ExprH u = kb.let("u0", exp_(-tpar * f32c(0.125f)) + f32c(0.5f));
    for (int j = 1; j <= kStages; ++j) {
      // u_{j} = sqrt(|u_{j-1}|) * c1 + u_{j-1} / (c2 + u_{j-1}^2)
      const float c1 = 0.9f + 0.01f * static_cast<float>(j);
      const float c2 = 1.5f + 0.05f * static_cast<float>(j);
      u = kb.let("u" + std::to_string(j),
                 sqrt_(abs_(u)) * f32c(c1) + u / (f32c(c2) + u * u));
    }
    auto wgt = kb.let("weight", u / (f32c(1.0f) + tpar));

    // --- the (short) root loop: accumulate the integral ---
    auto integral = kb.let("integral", f32c(0.0f));
    kb.for_loop("root", i32c(0), nroots, [&](ExprH root) {
      auto x = kb.let("xr", to_f32(root + i32c(1)) * wgt);
      auto term = kb.let("term", x / (x * x + rho + f32c(0.3f)));
      kb.assign(integral, integral + term * wgt);
    });

    kb.store(out + tid, integral);
    (void)sz;
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    Dataset ds;
    ds.seed = seed;
    ds.n = sz.roots;
    ds.threads = sz.threads;
    common::Rng rng = common::Rng::fork(seed, 0xE5);
    ds.fa.resize(static_cast<std::size_t>(sz.threads) * 4);
    for (std::size_t i = 0; i < ds.fa.size(); ++i)
      ds.fa[i] = static_cast<float>(rng.uniform(0.2, 3.0));
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(2);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads), 0u),
               gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {BufferJob::Arg::buf(0), BufferJob::Arg::buf(1),
                                        BufferJob::Arg::val(Value::i32(ds.n))};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/1, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    std::vector<double> out(static_cast<std::size_t>(ds.threads));
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const float ea = ds.fa[4 * tid], eb = ds.fa[4 * tid + 1];
      const float pp = ds.fa[4 * tid + 2], qq = ds.fa[4 * tid + 3];
      const float rho = ea * eb / (ea + eb + 0.1f);
      const float tpar = rho * (pp - qq) * (pp - qq);
      float u = std::exp(-tpar * 0.125f) + 0.5f;
      for (int j = 1; j <= kStages; ++j) {
        const float c1 = 0.9f + 0.01f * static_cast<float>(j);
        const float c2 = 1.5f + 0.05f * static_cast<float>(j);
        u = std::sqrt(std::fabs(u)) * c1 + u / (c2 + u * u);
      }
      const float wgt = u / (1.0f + tpar);
      float integral = 0.0f;
      for (std::int32_t root = 0; root < ds.n; ++root) {
        const float x = static_cast<float>(root + 1) * wgt;
        const float term = x / (x * x + rho + 0.3f);
        integral += term * wgt;
      }
      out[static_cast<std::size_t>(tid)] = integral;
    }
    return out;
  }

  Requirement requirement() const override {
    // Paper: 2% * |GRi| + 1e-9.
    Requirement r;
    r.kind = Requirement::Kind::RelPlusEps;
    r.rel = 0.02;
    r.eps = 1e-9;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_rpes() { return std::make_unique<RpesWorkload>(); }

}  // namespace hauberk::workloads
