// Ocean-flow simulation (GPU SDK style): per-pixel superposition of
// directional sine waves rendering a height-field frame.  One of the two 3D
// graphics programs of Section II: a single-bit fault corrupts at most one
// pixel of one frame (not user-noticeable, Fig. 3(a)); an intermittent fault
// corrupting thousands of values produces the prominent stripe of Fig. 3(b).
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

constexpr std::int32_t kWaves = 8;

std::int32_t frame_side(Scale s) {
  switch (s) {
    case Scale::Tiny: return 8;
    case Scale::Small: return 32;
    case Scale::Medium: return 64;
  }
  return 32;
}

class OceanWorkload final : public Workload {
 public:
  std::string name() const override { return "ocean-flow"; }
  bool is_graphics() const override { return true; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("ocean_kernel");
    auto waves = kb.param_ptr("waves");  // 4 words per wave: kx, ky, amp, phase
    auto nwaves = kb.param_i32("nwaves");
    auto frame = kb.param_ptr("frame");  // width*width intensities
    auto width = kb.param_i32("width");
    auto time = kb.param_f32("t");

    auto tid = kb.let("tid", kb.thread_linear());
    auto px = kb.let("px", to_f32(tid % width));
    auto py = kb.let("py", to_f32(tid / width));
    auto h = kb.let("height", f32c(0.0f));
    kb.for_loop("w", i32c(0), nwaves, [&](ExprH w) {
      auto base = kb.let("wbase", waves + w * i32c(4));
      auto phase = kb.let("phase", kb.load_f32(base) * px + kb.load_f32(base + i32c(1)) * py +
                                       kb.load_f32(base + i32c(3)) + time);
      kb.assign(h, h + kb.load_f32(base + i32c(2)) * sin_(phase));
    });
    // Normalized intensity in [0,1].
    kb.store(frame + tid, h * f32c(0.5f) + f32c(0.5f));
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    Dataset ds;
    ds.seed = seed;
    ds.n = kWaves;
    const std::int32_t side = frame_side(scale);
    ds.threads = side * side;
    ds.scale = static_cast<float>(side);
    common::Rng rng = common::Rng::fork(seed, 0x0CEA);
    ds.fa.resize(kWaves * 4);
    for (std::int32_t w = 0; w < kWaves; ++w) {
      ds.fa[4 * w + 0] = static_cast<float>(rng.uniform(0.05, 0.6));   // kx
      ds.fa[4 * w + 1] = static_cast<float>(rng.uniform(0.05, 0.6));   // ky
      ds.fa[4 * w + 2] = 1.0f / static_cast<float>(kWaves);            // amp (sums to 1)
      ds.fa[4 * w + 3] = static_cast<float>(rng.uniform(0.0, 6.28));   // phase
    }
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(2);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads), 0u),
               gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::val(Value::i32(ds.n)), BufferJob::Arg::buf(1),
        BufferJob::Arg::val(Value::i32(static_cast<std::int32_t>(ds.scale))),
        BufferJob::Arg::val(Value::f32(0.0f))};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/1, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    const auto width = static_cast<std::int32_t>(ds.scale);
    std::vector<double> out(static_cast<std::size_t>(ds.threads));
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const float px = static_cast<float>(tid % width);
      const float py = static_cast<float>(tid / width);
      float h = 0.0f;
      for (std::int32_t w = 0; w < ds.n; ++w) {
        const float phase = ds.fa[4 * w] * px + ds.fa[4 * w + 1] * py + ds.fa[4 * w + 3] + 0.0f;
        h += ds.fa[4 * w + 2] * std::sin(phase);
      }
      out[static_cast<std::size_t>(tid)] = h * 0.5f + 0.5f;
    }
    return out;
  }

  Requirement requirement() const override {
    // SDC = user-noticeable corruption of the rendered frame: more than
    // frac of the pixels shifted by a visible intensity step.
    Requirement r;
    r.kind = Requirement::Kind::GraphicsFrame;
    r.pixel_delta = 4.0 / 255.0;
    r.frac = 0.001;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_ocean() { return std::make_unique<OceanWorkload>(); }

}  // namespace hauberk::workloads
