// HISTO-EQ — a multi-kernel GPU program (histogram equalization), in the
// style of Parboil's HISTO: three dependent kernels sharing device-resident
// state, used to exercise Hauberk's per-kernel protection of multi-kernel
// programs (core::PipelineJob / run_pipeline_protected):
//
//   stage 0  histogram: threads stride over the image, atomically counting
//            intensities into 64 bins;
//   stage 1  scan: a single thread builds the cumulative distribution;
//   stage 2  remap: threads rewrite each pixel through the CDF.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hauberk/pipeline.hpp"
#include "kir/ast.hpp"

namespace hauberk::workloads {

class HistoEq {
 public:
  static constexpr int kStages = 3;
  static constexpr std::int32_t kBins = 64;

  /// Image of `pixels` random 8-bit intensities (skewed toward dark values
  /// so equalization visibly changes the image).
  static std::vector<std::int32_t> make_image(std::uint64_t seed, std::int32_t pixels);

  /// The three kernels, in stage order.
  static std::vector<kir::Kernel> build_kernels();

  /// Native reference: the equalized image.
  static std::vector<std::int32_t> golden(const std::vector<std::int32_t>& image);

  class Job final : public core::PipelineJob {
   public:
    explicit Job(std::vector<std::int32_t> image) : image_(std::move(image)) {}

    void stage_inputs(gpusim::Device& dev) override;
    [[nodiscard]] int num_stages() const override { return kStages; }
    [[nodiscard]] std::vector<kir::Value> args(int stage) const override;
    [[nodiscard]] gpusim::LaunchConfig config(int stage) const override;
    [[nodiscard]] core::ProgramOutput read_output(const gpusim::Device& dev) const override;

   private:
    std::vector<std::int32_t> image_;
    std::uint32_t img_ = 0, hist_ = 0, cdf_ = 0, out_ = 0;
  };
};

}  // namespace hauberk::workloads
