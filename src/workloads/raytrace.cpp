// Ray-trace (GPU SDK style): per-pixel primary-ray sphere intersection with
// Lambert shading, written branchlessly with selects as a GPU ray tracer
// would be.  The second 3D graphics program of Section II.
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

constexpr std::int32_t kSpheres = 6;

std::int32_t frame_side(Scale s) {
  switch (s) {
    case Scale::Tiny: return 8;
    case Scale::Small: return 32;
    case Scale::Medium: return 64;
  }
  return 32;
}

class RaytraceWorkload final : public Workload {
 public:
  std::string name() const override { return "ray-trace"; }
  bool is_graphics() const override { return true; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("raytrace_kernel");
    auto spheres = kb.param_ptr("spheres");  // 4 words per sphere: cx, cy, cz, r
    auto nspheres = kb.param_i32("nspheres");
    auto frame = kb.param_ptr("frame");
    auto width = kb.param_i32("width");

    auto tid = kb.let("tid", kb.thread_linear());
    auto fw = kb.let("fw", to_f32(width));
    // Primary ray through the pixel: origin 0, direction (dx, dy, 1)/|.|.
    auto dx = kb.let("dx", (to_f32(tid % width) / fw - f32c(0.5f)) * f32c(1.6f));
    auto dy = kb.let("dy", (to_f32(tid / width) / fw - f32c(0.5f)) * f32c(1.6f));
    auto inv_len = kb.let("invlen", rsqrt_(dx * dx + dy * dy + f32c(1.0f)));
    auto rx = kb.let("rx", dx * inv_len);
    auto ry = kb.let("ry", dy * inv_len);
    auto rz = kb.let("rz", inv_len);

    auto t_best = kb.let("t_best", f32c(1.0e30f));
    auto shade = kb.let("shade", f32c(0.1f));  // background intensity

    kb.for_loop("s", i32c(0), nspheres, [&](ExprH s) {
      auto base = kb.let("sbase", spheres + s * i32c(4));
      auto cx = kb.let("cx", kb.load_f32(base));
      auto cy = kb.let("cy", kb.load_f32(base + i32c(1)));
      auto cz = kb.let("cz", kb.load_f32(base + i32c(2)));
      auto rad = kb.let("rad", kb.load_f32(base + i32c(3)));
      auto b = kb.let("b", rx * cx + ry * cy + rz * cz);
      auto c2 = kb.let("c2", cx * cx + cy * cy + cz * cz - rad * rad);
      auto disc = kb.let("disc", b * b - c2);
      auto thit = kb.let("thit", b - sqrt_(max_(disc, f32c(0.0f))));
      auto closer = kb.let("closer", (disc > f32c(0.0f)) && (thit > f32c(0.1f)) &&
                                         (thit < t_best));
      // Lambert shading at the hit point against a fixed light direction.
      auto nx = kb.let("nx", (rx * thit - cx) / rad);
      auto ny = kb.let("ny", (ry * thit - cy) / rad);
      auto nz = kb.let("nz", (rz * thit - cz) / rad);
      auto lambert = kb.let("lambert",
                            max_(nx * f32c(0.57f) + ny * f32c(0.57f) - nz * f32c(0.57f),
                                 f32c(0.0f)) * f32c(0.85f) + f32c(0.1f));
      kb.assign(t_best, select_(closer, thit, t_best));
      kb.assign(shade, select_(closer, lambert, shade));
    });
    kb.store(frame + tid, shade);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    Dataset ds;
    ds.seed = seed;
    ds.n = kSpheres;
    const std::int32_t side = frame_side(scale);
    ds.threads = side * side;
    ds.scale = static_cast<float>(side);
    common::Rng rng = common::Rng::fork(seed, 0x7247);
    ds.fa.resize(kSpheres * 4);
    for (std::int32_t s = 0; s < kSpheres; ++s) {
      ds.fa[4 * s + 0] = static_cast<float>(rng.uniform(-1.0, 1.0));
      ds.fa[4 * s + 1] = static_cast<float>(rng.uniform(-1.0, 1.0));
      ds.fa[4 * s + 2] = static_cast<float>(rng.uniform(3.0, 7.0));
      ds.fa[4 * s + 3] = static_cast<float>(rng.uniform(0.4, 1.1));
    }
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(2);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads), 0u),
               gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::val(Value::i32(ds.n)), BufferJob::Arg::buf(1),
        BufferJob::Arg::val(Value::i32(static_cast<std::int32_t>(ds.scale)))};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/1, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    const auto width = static_cast<std::int32_t>(ds.scale);
    std::vector<double> out(static_cast<std::size_t>(ds.threads));
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const float fw = static_cast<float>(width);
      const float dx = (static_cast<float>(tid % width) / fw - 0.5f) * 1.6f;
      const float dy = (static_cast<float>(tid / width) / fw - 0.5f) * 1.6f;
      const float inv_len = d::rsqrtf_ref(dx * dx + dy * dy + 1.0f);
      const float rx = dx * inv_len, ry = dy * inv_len, rz = inv_len;
      float t_best = 1.0e30f, shade = 0.1f;
      for (std::int32_t s = 0; s < ds.n; ++s) {
        const float cx = ds.fa[4 * s], cy = ds.fa[4 * s + 1], cz = ds.fa[4 * s + 2];
        const float rad = ds.fa[4 * s + 3];
        const float b = rx * cx + ry * cy + rz * cz;
        const float c2 = cx * cx + cy * cy + cz * cz - rad * rad;
        const float disc = b * b - c2;
        const float thit = b - std::sqrt(std::fmax(disc, 0.0f));
        const bool closer = disc > 0.0f && thit > 0.1f && thit < t_best;
        const float nx = (rx * thit - cx) / rad;
        const float ny = (ry * thit - cy) / rad;
        const float nz = (rz * thit - cz) / rad;
        const float lambert =
            std::fmax(nx * 0.57f + ny * 0.57f - nz * 0.57f, 0.0f) * 0.85f + 0.1f;
        t_best = closer ? thit : t_best;
        shade = closer ? lambert : shade;
      }
      out[static_cast<std::size_t>(tid)] = shade;
    }
    return out;
  }

  Requirement requirement() const override {
    Requirement r;
    r.kind = Requirement::Kind::GraphicsFrame;
    r.pixel_delta = 4.0 / 255.0;
    r.frac = 0.001;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_raytrace() { return std::make_unique<RaytraceWorkload>(); }

}  // namespace hauberk::workloads
