// CP — coulombic potential (Parboil).  Each thread computes the electric
// potential of two neighboring grid points by summing contributions of all
// atoms; the two energy variables are the self-accumulating outputs of the
// Fig. 9 dataflow example ("energyx1"/"energyx2").
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

struct Sizes {
  std::int32_t width, threads, atoms;
};

Sizes sizes_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return {4, 16, 16};
    case Scale::Small: return {8, 64, 96};
    case Scale::Medium: return {16, 256, 384};
  }
  return {8, 64, 96};
}

constexpr float kSpacing = 0.5f;

class CpWorkload final : public Workload {
 public:
  std::string name() const override { return "CP"; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("cp_kernel");
    auto atominfo = kb.param_ptr("atominfo");  // 4 words per atom: x, y, z, q
    auto numatoms = kb.param_i32("numatoms");
    auto out = kb.param_ptr("energyout");      // 2 floats per thread
    auto spacing = kb.param_f32("gridspacing");
    auto width = kb.param_i32("width");

    auto tid = kb.let("tid", kb.thread_linear());
    auto coorx = kb.let("coorx", to_f32(tid % width) * spacing);
    auto coory = kb.let("coory", to_f32(tid / width) * spacing);
    auto energyx1 = kb.let("energyx1", f32c(0.0f));
    auto energyx2 = kb.let("energyx2", f32c(0.0f));

    kb.for_loop("atomid", i32c(0), numatoms, [&](ExprH atomid) {
      auto base = kb.let("abase", atominfo + atomid * i32c(4));
      auto dx1 = kb.let("dx1", kb.load_f32(base) - coorx);
      auto dy = kb.let("dy", kb.load_f32(base + i32c(1)) - coory);
      auto dz = kb.let("dz", kb.load_f32(base + i32c(2)));
      auto dyz2 = kb.let("dyz2", dy * dy + dz * dz + f32c(0.05f));
      auto q = kb.let("q", kb.load_f32(base + i32c(3)));
      auto dx2 = kb.let("dx2", dx1 + spacing);
      kb.assign(energyx1, energyx1 + q * rsqrt_(dx1 * dx1 + dyz2));
      kb.assign(energyx2, energyx2 + q * rsqrt_(dx2 * dx2 + dyz2));
    });

    kb.store(out + tid * i32c(2), energyx1);
    kb.store(out + tid * i32c(2) + i32c(1), energyx2);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    Dataset ds;
    ds.seed = seed;
    ds.n = sz.atoms;
    ds.threads = sz.threads;
    ds.scale = static_cast<float>(sz.width);
    common::Rng rng = common::Rng::fork(seed, 0xC0);
    ds.fa.resize(static_cast<std::size_t>(sz.atoms) * 4);
    const float extent = static_cast<float>(sz.width) * kSpacing;
    for (std::int32_t a = 0; a < sz.atoms; ++a) {
      ds.fa[4 * a + 0] = static_cast<float>(rng.uniform(0.0, extent));
      ds.fa[4 * a + 1] = static_cast<float>(rng.uniform(0.0, extent));
      ds.fa[4 * a + 2] = static_cast<float>(rng.uniform(0.1, 2.0));
      ds.fa[4 * a + 3] = static_cast<float>(rng.uniform(-5.0, 5.0));
    }
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(2);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads) * 2, 0u),
               gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::val(Value::i32(ds.n)), BufferJob::Arg::buf(1),
        BufferJob::Arg::val(Value::f32(kSpacing)),
        BufferJob::Arg::val(Value::i32(static_cast<std::int32_t>(ds.scale)))};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/1, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    const auto width = static_cast<std::int32_t>(ds.scale);
    std::vector<double> out(static_cast<std::size_t>(ds.threads) * 2);
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const float coorx = static_cast<float>(tid % width) * kSpacing;
      const float coory = static_cast<float>(tid / width) * kSpacing;
      float e1 = 0.0f, e2 = 0.0f;
      for (std::int32_t a = 0; a < ds.n; ++a) {
        const float dx1 = ds.fa[4 * a] - coorx;
        const float dy = ds.fa[4 * a + 1] - coory;
        const float dz = ds.fa[4 * a + 2];
        const float dyz2 = dy * dy + dz * dz + 0.05f;
        const float q = ds.fa[4 * a + 3];
        const float dx2 = dx1 + kSpacing;
        e1 += q * d::rsqrtf_ref(dx1 * dx1 + dyz2);
        e2 += q * d::rsqrtf_ref(dx2 * dx2 + dyz2);
      }
      out[2 * static_cast<std::size_t>(tid)] = e1;
      out[2 * static_cast<std::size_t>(tid) + 1] = e2;
    }
    return out;
  }

  Requirement requirement() const override {
    Requirement r;
    r.kind = Requirement::Kind::GlobalRel;
    r.global_rel = 1e-4;
    r.rel = 0.005;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_cp() { return std::make_unique<CpWorkload>(); }

}  // namespace hauberk::workloads
