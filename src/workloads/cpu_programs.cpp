// CPU reference programs for the Fig. 1 comparison rows.
//
// The paper contrasts GPU error sensitivity against CPU programs (data from
// [14]): CPUs show *low* SDC and *high* crash ratios because page-granularity
// memory protection converts most address corruptions into faults.  These
// two programs (a blocked matrix multiply and a byte histogram) run on a
// Device configured with MemoryModel::PagedCpu and are attacked through
// three channels: stack (virtual-variable FI hooks), data (memory-word
// flips) and code (instruction-encoding flips) — the x-axis categories of
// the paper's CPU rows.
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

// --- matrix multiply -------------------------------------------------------

std::int32_t matmul_n(Scale s) {
  switch (s) {
    case Scale::Tiny: return 8;
    case Scale::Small: return 16;
    case Scale::Medium: return 32;
  }
  return 16;
}

class CpuMatmul final : public Workload {
 public:
  std::string name() const override { return "cpu-matmul"; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("cpu_matmul");
    auto a = kb.param_ptr("A");
    auto b = kb.param_ptr("B");
    auto c = kb.param_ptr("C");
    auto n = kb.param_i32("n");

    auto tid = kb.let("tid", kb.thread_linear());  // one row per "thread"
    kb.for_loop("j", i32c(0), n, [&](ExprH j) {
      auto acc = kb.let("acc", f32c(0.0f));
      kb.for_loop("k", i32c(0), n, [&](ExprH k) {
        auto av = kb.let("av", kb.load_f32(a + tid * n + k));
        auto bv = kb.let("bv", kb.load_f32(b + k * n + j));
        kb.assign(acc, acc + av * bv);
      });
      kb.store(c + tid * n + j, acc);
    });
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    Dataset ds;
    ds.seed = seed;
    ds.n = matmul_n(scale);
    ds.threads = ds.n;  // one row per thread
    common::Rng rng = common::Rng::fork(seed, 0x3A7);
    ds.fa.resize(static_cast<std::size_t>(ds.n) * ds.n);
    ds.fb.resize(ds.fa.size());
    for (auto& v : ds.fa) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : ds.fb) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(3);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {d::words_of(ds.fb), gpusim::AllocClass::F32Data};
    bufs[2] = {std::vector<std::uint32_t>(ds.fa.size(), 0u), gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {BufferJob::Arg::buf(0), BufferJob::Arg::buf(1),
                                        BufferJob::Arg::buf(2),
                                        BufferJob::Arg::val(Value::i32(ds.n))};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/2, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    const std::int32_t n = ds.n;
    std::vector<double> out(static_cast<std::size_t>(n) * n);
    for (std::int32_t i = 0; i < n; ++i)
      for (std::int32_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::int32_t k = 0; k < n; ++k) acc += ds.fa[i * n + k] * ds.fb[k * n + j];
        out[static_cast<std::size_t>(i) * n + j] = acc;
      }
    return out;
  }

  Requirement requirement() const override {
    Requirement r;
    r.kind = Requirement::Kind::GlobalRel;
    r.global_rel = 1e-4;
    r.rel = 0.005;
    return r;
  }
};

// --- byte histogram ---------------------------------------------------------

std::int32_t hist_len(Scale s) {
  switch (s) {
    case Scale::Tiny: return 256;
    case Scale::Small: return 2048;
    case Scale::Medium: return 8192;
  }
  return 2048;
}

class CpuHistogram final : public Workload {
 public:
  std::string name() const override { return "cpu-histogram"; }
  bool is_integer_program() const override { return true; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("cpu_histogram");
    auto data = kb.param_ptr("data");
    auto len = kb.param_i32("len");
    auto hist = kb.param_ptr("hist");  // 16 bins
    kb.for_loop("i", i32c(0), len, [&](ExprH i) {
      auto v = kb.let("v", kb.load_i32(data + i));
      auto bin = kb.let("bin", (v >> i32c(4)) & i32c(15));
      auto slot = kb.let("hslot", hist + bin);
      kb.store(slot, kb.load_i32(slot) + i32c(1));
    });
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    Dataset ds;
    ds.seed = seed;
    ds.n = hist_len(scale);
    ds.threads = 1;  // sequential CPU program
    common::Rng rng = common::Rng::fork(seed, 0x4157);
    ds.ia.resize(static_cast<std::size_t>(ds.n));
    for (auto& v : ds.ia) v = static_cast<std::int32_t>(rng.next_below(256));
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(2);
    bufs[0] = {d::words_of(ds.ia), gpusim::AllocClass::I32Data};
    bufs[1] = {std::vector<std::uint32_t>(16, 0u), gpusim::AllocClass::I32Data};
    std::vector<BufferJob::Arg> args = {BufferJob::Arg::buf(0),
                                        BufferJob::Arg::val(Value::i32(ds.n)),
                                        BufferJob::Arg::buf(1)};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args),
                                       gpusim::LaunchConfig{1, 1, 1, 1},
                                       /*output_buffer=*/1, DType::I32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    std::vector<double> hist(16, 0.0);
    for (std::int32_t v : ds.ia) hist[static_cast<std::size_t>((v >> 4) & 15)] += 1.0;
    return hist;
  }

  Requirement requirement() const override {
    // A couple of miscounted elements is tolerable for the sampled
    // statistics this histogram feeds (the CPU rows of Fig. 1 model
    // system-style code, not bit-exact numerics).
    Requirement r;
    r.kind = Requirement::Kind::AbsRel;
    r.abs_floor = 2.0;
    r.rel = 0.02;
    return r;
  }
};

// --- linked-list traversal --------------------------------------------------
//
// The pointer-chasing program: kernel-style code whose state is dominated by
// pointers, as in the OS measurements the paper cites for its CPU rows.  A
// corrupted node pointer almost always leaves the mapped pages and faults.

std::int32_t list_len(Scale s) {
  switch (s) {
    case Scale::Tiny: return 64;
    case Scale::Small: return 400;
    case Scale::Medium: return 2000;
  }
  return 400;
}

class CpuLinkedList final : public Workload {
 public:
  std::string name() const override { return "cpu-linkedlist"; }
  bool is_integer_program() const override { return true; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("cpu_linkedlist");
    auto head = kb.param_ptr("head");
    auto nnodes = kb.param_i32("nnodes");
    auto out = kb.param_ptr("out");

    // Each node is [value, next]; next == 0 terminates (address 0 is
    // unmapped on the paged-CPU device, so following a corrupt pointer
    // faults like a real list walk would).
    auto sum = kb.let("sum", i32c(0));
    auto cur = kb.let("cur", head);
    auto steps = kb.let("steps", i32c(0));
    kb.while_loop(
        [&] { return (cur != ExprH(Expr::make_const(Value::ptr(0)))) && (steps < nnodes); },
        [&] {
          kb.assign(sum, sum + kb.load_i32(cur));
          kb.assign(cur, kb.load_ptr(cur + i32c(1)));
          kb.assign(steps, steps + i32c(1));
        });
    kb.store(out, sum);
    kb.store(out + i32c(1), steps);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    Dataset ds;
    ds.seed = seed;
    ds.n = list_len(scale);
    ds.threads = 1;
    common::Rng rng = common::Rng::fork(seed, 0x115D);
    // Node values; links are materialized by make_job (device addresses).
    ds.ia.resize(static_cast<std::size_t>(ds.n));
    for (auto& v : ds.ia) v = static_cast<std::int32_t>(rng.next_below(1000));
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    // The node buffer is linked in allocation order; next pointers are
    // patched with real device addresses at setup time.
    class ListJob final : public core::KernelJob {
     public:
      explicit ListJob(const Dataset& ds) : values_(ds.ia) {}

      std::vector<kir::Value> setup(gpusim::Device& dev) override {
        dev.reset_memory();
        const auto n = static_cast<std::uint32_t>(values_.size());
        const std::uint32_t nodes = dev.mem().alloc(2 * n, gpusim::AllocClass::PtrData);
        out_ = dev.mem().alloc(2, gpusim::AllocClass::I32Data);
        std::vector<std::uint32_t> words(2 * n);
        for (std::uint32_t i = 0; i < n; ++i) {
          words[2 * i] = static_cast<std::uint32_t>(values_[i]);
          words[2 * i + 1] = i + 1 < n ? nodes + 2 * (i + 1) : 0u;
        }
        dev.mem().copy_in(nodes, words);
        return {kir::Value::ptr(nodes), kir::Value::i32(static_cast<std::int32_t>(n)),
                kir::Value::ptr(out_)};
      }
      gpusim::LaunchConfig config() const override { return {1, 1, 1, 1}; }
      core::ProgramOutput read_output(const gpusim::Device& dev) const override {
        core::ProgramOutput out;
        out.type = kir::DType::I32;
        out.words.resize(2);
        dev.mem().copy_out(out_, out.words);
        return out;
      }

     private:
      std::vector<std::int32_t> values_;
      std::uint32_t out_ = 0;
    };
    return std::make_unique<ListJob>(ds);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    double sum = 0;
    for (std::int32_t v : ds.ia) sum += v;
    return {sum, static_cast<double>(ds.ia.size())};
  }

  Requirement requirement() const override {
    // Tolerate a single corrupted node value relative to the full sum.
    Requirement r;
    r.kind = Requirement::Kind::AbsRel;
    r.abs_floor = 4.0;
    r.rel = 0.02;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_cpu_matmul() { return std::make_unique<CpuMatmul>(); }
std::unique_ptr<Workload> make_cpu_histogram() { return std::make_unique<CpuHistogram>(); }

std::unique_ptr<Workload> make_cpu_linkedlist() { return std::make_unique<CpuLinkedList>(); }

std::vector<std::unique_ptr<Workload>> cpu_suite() {
  // The Fig. 1 CPU rows model the control/pointer-dominated system code of
  // the paper's reference [14] (OS measurements): the pointer-chasing and
  // histogram programs.  The FP-dense matmul is available separately but is
  // not representative of that code class.
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(make_cpu_histogram());
  v.push_back(make_cpu_linkedlist());
  return v;
}

}  // namespace hauberk::workloads
