#include "workloads/workload.hpp"

#include <cmath>
#include <cstdio>

namespace hauberk::workloads {

bool Requirement::satisfied(const core::ProgramOutput& out,
                            const core::ProgramOutput& gold) const {
  if (out.size() != gold.size()) return false;

  if (kind == Kind::Exact) return out.words == gold.words;

  if (kind == Kind::GraphicsFrame) {
    // "User-noticeable corruption in video output data" (Section II.A):
    // count pixels whose normalized intensity moved noticeably.
    std::size_t bad = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double d = std::fabs(out.element(i) - gold.element(i));
      if (!(d <= pixel_delta)) ++bad;  // NaN counts as corrupted
    }
    return static_cast<double>(bad) <= frac * static_cast<double>(out.size());
  }

  double max_abs_gold = 0.0;
  if (kind == Kind::GlobalRel) {
    for (std::size_t i = 0; i < gold.size(); ++i)
      max_abs_gold = std::max(max_abs_gold, std::fabs(gold.element(i)));
  }

  for (std::size_t i = 0; i < out.size(); ++i) {
    const double g = gold.element(i);
    const double d = std::fabs(out.element(i) - g);
    double tol = 0.0;
    switch (kind) {
      case Kind::AbsRel: tol = std::max(abs_floor, rel * std::fabs(g)); break;
      case Kind::RelPlusEps: tol = rel * std::fabs(g) + eps; break;
      case Kind::GlobalRel: tol = std::max(global_rel * max_abs_gold, rel * std::fabs(g)); break;
      default: break;
    }
    if (!(d <= tol)) return false;  // NaN compares false => violation
  }
  return true;
}

std::string Requirement::to_string() const {
  char buf[128];
  switch (kind) {
    case Kind::Exact: return "exact";
    case Kind::AbsRel:
      std::snprintf(buf, sizeof(buf), "max{%g, %g%%|GRi|}", abs_floor, rel * 100);
      return buf;
    case Kind::RelPlusEps:
      std::snprintf(buf, sizeof(buf), "%g%%|GRi| + %g", rel * 100, eps);
      return buf;
    case Kind::GlobalRel:
      std::snprintf(buf, sizeof(buf), "max{%gMax|GR|, %g%%|GRi|}", global_rel, rel * 100);
      return buf;
    case Kind::GraphicsFrame:
      std::snprintf(buf, sizeof(buf), "<%g%% pixels off by >%g", frac * 100, pixel_delta);
      return buf;
  }
  return "?";
}

std::vector<kir::Value> BufferJob::setup(gpusim::Device& dev) {
  dev.reset_memory();
  addrs_.resize(buffers_.size());
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    addrs_[i] = dev.mem().alloc(static_cast<std::uint32_t>(buffers_[i].data.size()),
                                buffers_[i].cls);
    dev.mem().copy_in(addrs_[i], buffers_[i].data);
  }
  std::vector<kir::Value> args;
  args.reserve(args_.size());
  for (const Arg& a : args_)
    args.push_back(a.is_buffer ? kir::Value::ptr(addrs_[static_cast<std::size_t>(a.buffer)])
                               : a.scalar);
  return args;
}

core::ProgramOutput BufferJob::read_output(const gpusim::Device& dev) const {
  core::ProgramOutput out;
  out.type = output_type_;
  const auto& buf = buffers_[static_cast<std::size_t>(output_buffer_)];
  out.words.resize(buf.data.size());
  dev.mem().copy_out(addrs_[static_cast<std::size_t>(output_buffer_)], out.words);
  return out;
}

std::vector<std::unique_ptr<Workload>> hpc_suite() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(make_cp());
  v.push_back(make_mri_fhd());
  v.push_back(make_mri_q());
  v.push_back(make_pns());
  v.push_back(make_rpes());
  v.push_back(make_sad());
  v.push_back(make_tpacf());
  return v;
}

std::vector<std::unique_ptr<Workload>> graphics_suite() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(make_ocean());
  v.push_back(make_raytrace());
  return v;
}

}  // namespace hauberk::workloads
