// MRI-Q (Parboil): computation of the Q matrix for non-Cartesian MRI
// reconstruction.  Each thread owns one voxel and accumulates the real and
// imaginary Q components over all k-space samples.  This is the program
// whose variable value distributions the paper plots in Fig. 10.
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

struct Sizes {
  std::int32_t voxels, ksamples;
};

Sizes sizes_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return {16, 24};
    case Scale::Small: return {64, 80};
    case Scale::Medium: return {256, 256};
  }
  return {64, 80};
}

constexpr float kPi2 = 6.2831853f;

class MriQWorkload final : public Workload {
 public:
  std::string name() const override { return "MRI-Q"; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("mriq_kernel");
    auto kdata = kb.param_ptr("kdata");  // 4 words per sample: kx, ky, kz, phiMag
    auto nk = kb.param_i32("numk");
    auto xdata = kb.param_ptr("xdata");  // 3 words per voxel: x, y, z
    auto out = kb.param_ptr("qout");     // 2 floats per voxel: Qr, Qi

    auto tid = kb.let("tid", kb.thread_linear());
    auto xbase = kb.let("xbase", xdata + tid * i32c(3));
    auto x = kb.let("x", kb.load_f32(xbase));
    auto y = kb.let("y", kb.load_f32(xbase + i32c(1)));
    auto z = kb.let("z", kb.load_f32(xbase + i32c(2)));
    auto qr = kb.let("Qr", f32c(0.0f));
    auto qi = kb.let("Qi", f32c(0.0f));

    kb.for_loop("k", i32c(0), nk, [&](ExprH k) {
      auto base = kb.let("kbase", kdata + k * i32c(4));
      auto exp_arg = kb.let("expArg", f32c(kPi2) * (kb.load_f32(base) * x +
                                                    kb.load_f32(base + i32c(1)) * y +
                                                    kb.load_f32(base + i32c(2)) * z));
      auto phi = kb.let("phiMag", kb.load_f32(base + i32c(3)));
      kb.assign(qr, qr + phi * cos_(exp_arg));
      kb.assign(qi, qi + phi * sin_(exp_arg));
    });

    kb.store(out + tid * i32c(2), qr);
    kb.store(out + tid * i32c(2) + i32c(1), qi);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    Dataset ds;
    ds.seed = seed;
    ds.n = sz.ksamples;
    ds.threads = sz.voxels;
    common::Rng rng = common::Rng::fork(seed, 0x3141);
    ds.fa.resize(static_cast<std::size_t>(sz.ksamples) * 4);  // k-space samples
    for (std::int32_t k = 0; k < sz.ksamples; ++k) {
      ds.fa[4 * k + 0] = static_cast<float>(rng.uniform(-0.5, 0.5));
      ds.fa[4 * k + 1] = static_cast<float>(rng.uniform(-0.5, 0.5));
      ds.fa[4 * k + 2] = static_cast<float>(rng.uniform(-0.5, 0.5));
      ds.fa[4 * k + 3] = static_cast<float>(rng.uniform(0.0, 2.0));  // phiMag
    }
    ds.fb.resize(static_cast<std::size_t>(sz.voxels) * 3);  // voxel coordinates
    for (std::int32_t v = 0; v < sz.voxels; ++v) {
      ds.fb[3 * v + 0] = static_cast<float>(rng.uniform(-1.0, 1.0));
      ds.fb[3 * v + 1] = static_cast<float>(rng.uniform(-1.0, 1.0));
      ds.fb[3 * v + 2] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(3);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {d::words_of(ds.fb), gpusim::AllocClass::F32Data};
    bufs[2] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads) * 2, 0u),
               gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::val(Value::i32(ds.n)), BufferJob::Arg::buf(1),
        BufferJob::Arg::buf(2)};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/2, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    std::vector<double> out(static_cast<std::size_t>(ds.threads) * 2);
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const float x = ds.fb[3 * tid], y = ds.fb[3 * tid + 1], z = ds.fb[3 * tid + 2];
      float qr = 0.0f, qi = 0.0f;
      for (std::int32_t k = 0; k < ds.n; ++k) {
        const float exp_arg =
            kPi2 * (ds.fa[4 * k] * x + ds.fa[4 * k + 1] * y + ds.fa[4 * k + 2] * z);
        const float phi = ds.fa[4 * k + 3];
        qr += phi * std::cos(exp_arg);
        qi += phi * std::sin(exp_arg);
      }
      out[2 * static_cast<std::size_t>(tid)] = qr;
      out[2 * static_cast<std::size_t>(tid) + 1] = qi;
    }
    return out;
  }

  Requirement requirement() const override {
    // Paper: Max{1e-4 * Max|GR|, 0.2% * |GRi|}.
    Requirement r;
    r.kind = Requirement::Kind::GlobalRel;
    r.global_rel = 1e-4;
    r.rel = 0.002;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_mri_q() { return std::make_unique<MriQWorkload>(); }

}  // namespace hauberk::workloads
