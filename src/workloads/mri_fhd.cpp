// MRI-FHD (Parboil): computation of F^H d for MRI reconstruction.  Per
// voxel, the kernel accumulates the real/imaginary parts of a product of
// k-space trajectory data and the rho vector.  Because the output involves
// multiplication of *different input vectors whose magnitudes vary across
// datasets*, its accumulated averages span several decades — this is the
// program whose range detectors stay imprecise in Fig. 16 (~30% false
// positives at alpha=1) and need alpha recalibration.
#include <cmath>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

struct Sizes {
  std::int32_t voxels, ksamples;
};

Sizes sizes_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return {16, 24};
    case Scale::Small: return {64, 80};
    case Scale::Medium: return {256, 256};
  }
  return {64, 80};
}

constexpr float kPi2 = 6.2831853f;

class MriFhdWorkload final : public Workload {
 public:
  std::string name() const override { return "MRI-FHD"; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("mrifhd_kernel");
    auto ktraj = kb.param_ptr("ktraj");   // 3 words per sample: kx, ky, kz
    auto rho = kb.param_ptr("rho");       // 2 words per sample: rRho, iRho
    auto nk = kb.param_i32("numk");
    auto xdata = kb.param_ptr("xdata");   // 3 words per voxel
    auto out = kb.param_ptr("fhd");       // 2 floats per voxel

    auto tid = kb.let("tid", kb.thread_linear());
    auto xbase = kb.let("xbase", xdata + tid * i32c(3));
    auto x = kb.let("x", kb.load_f32(xbase));
    auto y = kb.let("y", kb.load_f32(xbase + i32c(1)));
    auto z = kb.let("z", kb.load_f32(xbase + i32c(2)));
    auto rfhd = kb.let("rFhD", f32c(0.0f));
    auto ifhd = kb.let("iFhD", f32c(0.0f));

    kb.for_loop("k", i32c(0), nk, [&](ExprH k) {
      auto kb3 = kb.let("kb3", ktraj + k * i32c(3));
      auto exp_arg = kb.let("expArg", f32c(kPi2) * (kb.load_f32(kb3) * x +
                                                    kb.load_f32(kb3 + i32c(1)) * y +
                                                    kb.load_f32(kb3 + i32c(2)) * z));
      auto cos_a = kb.let("cosArg", cos_(exp_arg));
      auto sin_a = kb.let("sinArg", sin_(exp_arg));
      auto rb = kb.let("rbase", rho + k * i32c(2));
      auto r_rho = kb.let("rRho", kb.load_f32(rb));
      auto i_rho = kb.let("iRho", kb.load_f32(rb + i32c(1)));
      kb.assign(rfhd, rfhd + (r_rho * cos_a - i_rho * sin_a));
      kb.assign(ifhd, ifhd + (i_rho * cos_a + r_rho * sin_a));
    });

    kb.store(out + tid * i32c(2), rfhd);
    kb.store(out + tid * i32c(2) + i32c(1), ifhd);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    Dataset ds;
    ds.seed = seed;
    ds.n = sz.ksamples;
    ds.threads = sz.voxels;
    common::Rng rng = common::Rng::fork(seed, 0xFD);
    // Per-dataset rho magnitude: log-normal across datasets (this is what
    // makes profiled ranges dataset-sensitive).
    const double log_scale = rng.normal() * 1.5;
    ds.scale = static_cast<float>(std::pow(10.0, log_scale));
    ds.fa.resize(static_cast<std::size_t>(sz.ksamples) * 3);  // trajectory
    for (std::size_t i = 0; i < ds.fa.size(); ++i)
      ds.fa[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    ds.fb.resize(static_cast<std::size_t>(sz.ksamples) * 2);  // rho
    for (std::size_t i = 0; i < ds.fb.size(); ++i)
      ds.fb[i] = static_cast<float>(rng.uniform(-1.0, 1.0)) * ds.scale;
    ds.fc.resize(static_cast<std::size_t>(sz.voxels) * 3);    // voxels
    for (std::size_t i = 0; i < ds.fc.size(); ++i)
      ds.fc[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    std::vector<BufferJob::Buffer> bufs(4);
    bufs[0] = {d::words_of(ds.fa), gpusim::AllocClass::F32Data};
    bufs[1] = {d::words_of(ds.fb), gpusim::AllocClass::F32Data};
    bufs[2] = {d::words_of(ds.fc), gpusim::AllocClass::F32Data};
    bufs[3] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads) * 2, 0u),
               gpusim::AllocClass::F32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::buf(1), BufferJob::Arg::val(Value::i32(ds.n)),
        BufferJob::Arg::buf(2), BufferJob::Arg::buf(3)};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/3, DType::F32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    std::vector<double> out(static_cast<std::size_t>(ds.threads) * 2);
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const float x = ds.fc[3 * tid], y = ds.fc[3 * tid + 1], z = ds.fc[3 * tid + 2];
      float rfhd = 0.0f, ifhd = 0.0f;
      for (std::int32_t k = 0; k < ds.n; ++k) {
        const float exp_arg =
            kPi2 * (ds.fa[3 * k] * x + ds.fa[3 * k + 1] * y + ds.fa[3 * k + 2] * z);
        const float ca = std::cos(exp_arg), sa = std::sin(exp_arg);
        const float rr = ds.fb[2 * k], ir = ds.fb[2 * k + 1];
        rfhd += (rr * ca - ir * sa);
        ifhd += (ir * ca + rr * sa);
      }
      out[2 * static_cast<std::size_t>(tid)] = rfhd;
      out[2 * static_cast<std::size_t>(tid) + 1] = ifhd;
    }
    return out;
  }

  Requirement requirement() const override {
    Requirement r;
    r.kind = Requirement::Kind::GlobalRel;
    r.global_rel = 1e-4;
    r.rel = 0.002;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_mri_fhd() { return std::make_unique<MriFhdWorkload>(); }

}  // namespace hauberk::workloads
