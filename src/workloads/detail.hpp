// Shared helpers for workload implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "kir/builder.hpp"
#include "workloads/workload.hpp"

namespace hauberk::workloads::detail {

/// Encode typed host arrays as device words.
inline std::vector<std::uint32_t> words_of(const std::vector<float>& v) {
  std::vector<std::uint32_t> w(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) w[i] = kir::Value::f32(v[i]).bits;
  return w;
}
inline std::vector<std::uint32_t> words_of(const std::vector<std::int32_t>& v) {
  std::vector<std::uint32_t> w(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) w[i] = static_cast<std::uint32_t>(v[i]);
  return w;
}

/// Launch geometry for `threads` one-dimensional worker threads.
inline gpusim::LaunchConfig grid1d(std::int32_t threads, std::uint32_t block = 32) {
  gpusim::LaunchConfig cfg;
  cfg.block_x = static_cast<std::uint32_t>(threads) < block
                    ? static_cast<std::uint32_t>(threads)
                    : block;
  cfg.grid_x = (static_cast<std::uint32_t>(threads) + cfg.block_x - 1) / cfg.block_x;
  return cfg;
}

/// Single-precision reciprocal square root exactly as the interpreter
/// evaluates UnOp::Rsqrt (golden implementations must match bit-for-bit).
inline float rsqrtf_ref(float x) { return 1.0f / std::sqrt(x); }

}  // namespace hauberk::workloads::detail
