#include "workloads/histo_eq.hpp"

#include "kir/builder.hpp"
#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;

std::vector<std::int32_t> HistoEq::make_image(std::uint64_t seed, std::int32_t pixels) {
  common::Rng rng = common::Rng::fork(seed, 0x4157E);
  std::vector<std::int32_t> img(static_cast<std::size_t>(pixels));
  for (auto& v : img) {
    // Skewed toward dark: square a uniform sample.
    const double u = rng.next_double();
    v = static_cast<std::int32_t>(u * u * 255.0);
  }
  return img;
}

std::vector<Kernel> HistoEq::build_kernels() {
  std::vector<Kernel> ks;

  {  // stage 0: histogram
    KernelBuilder kb("histo_hist");
    auto img = kb.param_ptr("image");
    auto n = kb.param_i32("n");
    auto hist = kb.param_ptr("hist");
    auto tid = kb.let("tid", kb.thread_linear());
    auto stride = kb.let("stride", kb.bdim_x() * kb.gdim_x());
    kb.for_loop_step("i", tid, n, stride, [&](ExprH i) {
      auto v = kb.let("pix", kb.load_i32(img + i));
      auto bin = kb.let("bin", v >> i32c(2));  // 256 intensities -> 64 bins
      kb.atomic_add(hist + bin, i32c(1));
    });
    ks.push_back(kb.build());
  }

  {  // stage 1: inclusive scan of the histogram into the CDF (single thread)
    KernelBuilder kb("histo_scan");
    auto hist = kb.param_ptr("hist");
    auto cdf = kb.param_ptr("cdf");
    kb.if_then(kb.thread_linear() == i32c(0), [&] {
      auto run = kb.let("running", i32c(0));
      kb.for_loop("b", i32c(0), i32c(kBins), [&](ExprH b) {
        kb.assign(run, run + kb.load_i32(hist + b));
        kb.store(cdf + b, run);
      });
    });
    ks.push_back(kb.build());
  }

  {  // stage 2: remap pixels through the CDF
    KernelBuilder kb("histo_remap");
    auto img = kb.param_ptr("image");
    auto n = kb.param_i32("n");
    auto cdf = kb.param_ptr("cdf");
    auto out = kb.param_ptr("out");
    auto tid = kb.let("tid", kb.thread_linear());
    auto stride = kb.let("stride", kb.bdim_x() * kb.gdim_x());
    kb.for_loop_step("i", tid, n, stride, [&](ExprH i) {
      auto v = kb.let("pix2", kb.load_i32(img + i));
      auto c = kb.let("c", kb.load_i32(cdf + (v >> i32c(2))));
      kb.store(out + i, c * i32c(255) / n);
    });
    ks.push_back(kb.build());
  }
  return ks;
}

std::vector<std::int32_t> HistoEq::golden(const std::vector<std::int32_t>& image) {
  std::vector<std::int32_t> hist(kBins, 0);
  for (std::int32_t v : image) ++hist[static_cast<std::size_t>(v >> 2)];
  std::vector<std::int32_t> cdf(kBins, 0);
  std::int32_t run = 0;
  for (std::int32_t b = 0; b < kBins; ++b) {
    run += hist[static_cast<std::size_t>(b)];
    cdf[static_cast<std::size_t>(b)] = run;
  }
  const auto n = static_cast<std::int32_t>(image.size());
  std::vector<std::int32_t> out(image.size());
  for (std::size_t i = 0; i < image.size(); ++i)
    out[i] = cdf[static_cast<std::size_t>(image[i] >> 2)] * 255 / n;
  return out;
}

void HistoEq::Job::stage_inputs(gpusim::Device& dev) {
  dev.reset_memory();
  const auto n = static_cast<std::uint32_t>(image_.size());
  img_ = dev.mem().alloc(n, gpusim::AllocClass::I32Data);
  hist_ = dev.mem().alloc(kBins, gpusim::AllocClass::I32Data);
  cdf_ = dev.mem().alloc(kBins, gpusim::AllocClass::I32Data);
  out_ = dev.mem().alloc(n, gpusim::AllocClass::I32Data);
  dev.mem().copy_in(img_, detail::words_of(image_));
}

std::vector<kir::Value> HistoEq::Job::args(int stage) const {
  const auto n = static_cast<std::int32_t>(image_.size());
  switch (stage) {
    case 0: return {kir::Value::ptr(img_), kir::Value::i32(n), kir::Value::ptr(hist_)};
    case 1: return {kir::Value::ptr(hist_), kir::Value::ptr(cdf_)};
    default:
      return {kir::Value::ptr(img_), kir::Value::i32(n), kir::Value::ptr(cdf_),
              kir::Value::ptr(out_)};
  }
}

gpusim::LaunchConfig HistoEq::Job::config(int stage) const {
  if (stage == 1) return {1, 1, 1, 1};
  return detail::grid1d(64);
}

core::ProgramOutput HistoEq::Job::read_output(const gpusim::Device& dev) const {
  core::ProgramOutput o;
  o.type = kir::DType::I32;
  o.words.resize(image_.size());
  dev.mem().copy_out(out_, o.words);
  return o;
}

}  // namespace hauberk::workloads
