// SAD — sum of absolute differences (Parboil).  The video-encoding integer
// program: each thread computes the SAD of one 4x4 macroblock of the
// current frame against a 3x3 search window in the reference frame and
// reports the best (minimum) SAD and its position.  Integer outputs with an
// *exact* correctness requirement, which is why its detected-&-masked ratio
// is the lowest in Fig. 14.
#include <cstdlib>

#include "workloads/detail.hpp"

namespace hauberk::workloads {

using namespace hauberk::kir;
namespace d = detail;

namespace {

struct Sizes {
  std::int32_t blocks_x, blocks_y;  ///< macroblock grid; threads = bx*by
};

Sizes sizes_for(Scale s) {
  switch (s) {
    case Scale::Tiny: return {4, 4};
    case Scale::Small: return {8, 8};
    case Scale::Medium: return {16, 16};
  }
  return {8, 8};
}

/// Frame width in pixels for a macroblock grid (2px margin for the search).
std::int32_t frame_width(const Sizes& sz) { return sz.blocks_x * 4 + 4; }
std::int32_t frame_height(const Sizes& sz) { return sz.blocks_y * 4 + 4; }

class SadWorkload final : public Workload {
 public:
  std::string name() const override { return "SAD"; }
  bool is_integer_program() const override { return true; }

  Kernel build_kernel(Scale) const override {
    KernelBuilder kb("sad_kernel");
    auto cur = kb.param_ptr("cur_frame");   // width*height ints (pixels)
    auto ref = kb.param_ptr("ref_frame");
    auto width = kb.param_i32("width");
    auto blocks_x = kb.param_i32("blocks_x");
    auto out = kb.param_ptr("out");         // 2 ints per thread: best SAD, best pos

    auto tid = kb.let("tid", kb.thread_linear());
    auto bx = kb.let("bx", (tid % blocks_x) * i32c(4) + i32c(2));  // +2: search margin
    auto by = kb.let("by", (tid / blocks_x) * i32c(4) + i32c(2));
    auto best = kb.let("best", i32c(0x7fffffff));
    auto bestpos = kb.let("bestpos", i32c(-1));

    kb.for_loop("pos", i32c(0), i32c(9), [&](ExprH pos) {
      auto ox = kb.let("ox", pos % i32c(3) - i32c(1));
      auto oy = kb.let("oy", pos / i32c(3) - i32c(1));
      auto sad = kb.let("sad", i32c(0));
      kb.for_loop("y", i32c(0), i32c(4), [&](ExprH y) {
        kb.for_loop("x", i32c(0), i32c(4), [&](ExprH x) {
          auto c = kb.let("c", kb.load_i32(cur + (by + y) * width + bx + x));
          auto r = kb.let("r", kb.load_i32(ref + (by + y + oy) * width + bx + x + ox));
          kb.assign(sad, sad + abs_(c - r));
        });
      });
      kb.if_then(sad < best, [&] {
        kb.assign(best, sad);
        kb.assign(bestpos, pos);
      });
    });

    kb.store(out + tid * i32c(2), best);
    kb.store(out + tid * i32c(2) + i32c(1), bestpos);
    return kb.build();
  }

  Dataset make_dataset(std::uint64_t seed, Scale scale) const override {
    const Sizes sz = sizes_for(scale);
    Dataset ds;
    ds.seed = seed;
    ds.threads = sz.blocks_x * sz.blocks_y;
    ds.n = sz.blocks_x;
    const std::int32_t w = frame_width(sz), h = frame_height(sz);
    ds.scale = static_cast<float>(w);
    common::Rng rng = common::Rng::fork(seed, 0x5ad);
    ds.ia.resize(static_cast<std::size_t>(w) * h * 2);  // cur frame then ref frame
    for (std::size_t i = 0; i < ds.ia.size() / 2; ++i)
      ds.ia[i] = static_cast<std::int32_t>(rng.next_below(256));
    // Reference frame: the current frame shifted by (1,0) plus noise, so a
    // non-trivial best motion vector exists.
    for (std::int32_t y = 0; y < h; ++y)
      for (std::int32_t x = 0; x < w; ++x) {
        const std::int32_t sx = x + 1 < w ? x + 1 : x;
        std::int32_t v = ds.ia[static_cast<std::size_t>(y) * w + sx];
        if (rng.next_below(8) == 0) v = (v + static_cast<std::int32_t>(rng.next_below(32))) & 255;
        ds.ia[static_cast<std::size_t>(w) * h + static_cast<std::size_t>(y) * w + x] = v;
      }
    return ds;
  }

  std::unique_ptr<core::KernelJob> make_job(const Dataset& ds) const override {
    const auto w = static_cast<std::size_t>(ds.scale);
    const std::size_t frame = ds.ia.size() / 2;
    std::vector<std::int32_t> cur(ds.ia.begin(), ds.ia.begin() + static_cast<long>(frame));
    std::vector<std::int32_t> ref(ds.ia.begin() + static_cast<long>(frame), ds.ia.end());
    std::vector<BufferJob::Buffer> bufs(3);
    bufs[0] = {d::words_of(cur), gpusim::AllocClass::I32Data};
    bufs[1] = {d::words_of(ref), gpusim::AllocClass::I32Data};
    bufs[2] = {std::vector<std::uint32_t>(static_cast<std::size_t>(ds.threads) * 2, 0u),
               gpusim::AllocClass::I32Data};
    std::vector<BufferJob::Arg> args = {
        BufferJob::Arg::buf(0), BufferJob::Arg::buf(1),
        BufferJob::Arg::val(Value::i32(static_cast<std::int32_t>(w))),
        BufferJob::Arg::val(Value::i32(ds.n)), BufferJob::Arg::buf(2)};
    return std::make_unique<BufferJob>(std::move(bufs), std::move(args), d::grid1d(ds.threads),
                                       /*output_buffer=*/2, DType::I32);
  }

  std::vector<double> golden_native(const Dataset& ds) const override {
    const auto w = static_cast<std::int32_t>(ds.scale);
    const std::size_t frame = ds.ia.size() / 2;
    const std::int32_t* cur = ds.ia.data();
    const std::int32_t* ref = ds.ia.data() + frame;
    std::vector<double> out(static_cast<std::size_t>(ds.threads) * 2);
    for (std::int32_t tid = 0; tid < ds.threads; ++tid) {
      const std::int32_t bx = (tid % ds.n) * 4 + 2;
      const std::int32_t by = (tid / ds.n) * 4 + 2;
      std::int32_t best = 0x7fffffff, bestpos = -1;
      for (std::int32_t pos = 0; pos < 9; ++pos) {
        const std::int32_t ox = pos % 3 - 1, oy = pos / 3 - 1;
        std::int32_t sad = 0;
        for (std::int32_t y = 0; y < 4; ++y)
          for (std::int32_t x = 0; x < 4; ++x)
            sad += std::abs(cur[(by + y) * w + bx + x] - ref[(by + y + oy) * w + bx + x + ox]);
        if (sad < best) { best = sad; bestpos = pos; }
      }
      out[2 * static_cast<std::size_t>(tid)] = best;
      out[2 * static_cast<std::size_t>(tid) + 1] = bestpos;
    }
    return out;
  }

  Requirement requirement() const override {
    // Integer program: "does not allow value errors in the output".
    Requirement r;
    r.kind = Requirement::Kind::Exact;
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_sad() { return std::make_unique<SadWorkload>(); }

}  // namespace hauberk::workloads
