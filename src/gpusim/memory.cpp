#include "gpusim/memory.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

namespace hauberk::gpusim {

namespace {
/// PagedCpu placement: 4 KiB pages (1024 words) with a large gap between
/// allocations so that bit-flipped addresses rarely stay inside a mapping.
constexpr std::uint32_t kPageWords = 1024;
constexpr std::uint32_t kGapWords = 257 * kPageWords;  // prime-ish page stride
}  // namespace

DeviceMemory::DeviceMemory(MemoryModel model, std::uint32_t capacity_words)
    : model_(model), capacity_(capacity_words), words_(capacity_words, 0) {
  // Start CPU placements away from address 0 so null-ish pointers fault.
  next_base_ = model_ == MemoryModel::PagedCpu ? 16 * kPageWords : 0;
}

void DeviceMemory::reset() {
  used_ = 0;
  next_base_ = model_ == MemoryModel::PagedCpu ? 16 * kPageWords : 0;
  extents_.clear();
  extent_storage_.clear();
  // Words above the store high-water mark are zero by invariant (every write
  // path notes its physical index), so the wipe only has to cover the dirty
  // prefix — O(touched), not O(capacity).
  const std::size_t hi = dirty_hi_.load(std::memory_order_relaxed);
  std::fill(words_.begin(),
            words_.begin() + static_cast<long>(hi < words_.size() ? hi : words_.size()),
            0u);
  for (auto& c : class_words_) c = 0;
  dirty_hi_.store(0, std::memory_order_relaxed);
}

std::uint32_t DeviceMemory::alloc(std::uint32_t words, AllocClass cls) {
  if (words == 0) words = 1;
  class_words_[static_cast<int>(cls)] += words;
  if (model_ == MemoryModel::FlatGpu) {
    if (used_ + words > capacity_) throw std::bad_alloc();
    const std::uint32_t base = used_;
    used_ += words;
    return base;
  }
  // PagedCpu: virtual base on a page boundary with a gap; storage is packed.
  if (used_ + words > capacity_) throw std::bad_alloc();
  const std::uint32_t pages = (words + kPageWords - 1) / kPageWords;
  const std::uint32_t base = next_base_;
  next_base_ += pages * kPageWords + kGapWords;
  extents_.push_back({base, words});
  extent_storage_.push_back(used_);
  used_ += words;
  return base;
}

bool DeviceMemory::valid(std::uint32_t addr) const noexcept {
  // FlatGpu: *no* page protection — the whole physical arena is accessible
  // whether or not it was allocated (Section II.A cause (a)); only addresses
  // beyond physical memory fault.
  if (model_ == MemoryModel::FlatGpu) return addr < capacity_;
  // Binary search the sorted extents (bases are strictly increasing).
  auto it = std::upper_bound(extents_.begin(), extents_.end(), addr,
                             [](std::uint32_t a, const Extent& e) { return a < e.base; });
  if (it == extents_.begin()) return false;
  --it;
  return addr - it->base < it->size;
}

std::uint32_t DeviceMemory::index_of(std::uint32_t addr) const noexcept {
  if (model_ == MemoryModel::FlatGpu) return addr;
  auto it = std::upper_bound(extents_.begin(), extents_.end(), addr,
                             [](std::uint32_t a, const Extent& e) { return a < e.base; });
  --it;
  return extent_storage_[static_cast<std::size_t>(it - extents_.begin())] + (addr - it->base);
}

void DeviceMemory::copy_in(std::uint32_t addr, std::span<const std::uint32_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!store(addr + static_cast<std::uint32_t>(i), data[i]))
      throw std::out_of_range("DeviceMemory::copy_in: invalid address");
  }
}

void DeviceMemory::copy_out(std::uint32_t addr, std::span<std::uint32_t> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!load(addr + static_cast<std::uint32_t>(i), out[i]))
      throw std::out_of_range("DeviceMemory::copy_out: invalid address");
  }
}

}  // namespace hauberk::gpusim
