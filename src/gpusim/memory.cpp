#include "gpusim/memory.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

namespace hauberk::gpusim {

namespace {
/// PagedCpu placement: 4 KiB pages (1024 words) with a large gap between
/// allocations so that bit-flipped addresses rarely stay inside a mapping.
constexpr std::uint32_t kPageWords = 1024;
constexpr std::uint32_t kGapWords = 257 * kPageWords;  // prime-ish page stride
}  // namespace

thread_local bool DeviceMemory::tl_ecc_fault_ = false;

DeviceMemory::DeviceMemory(MemoryModel model, std::uint32_t capacity_words,
                           ecc::Scheme protection)
    : model_(model),
      protection_(protection),
      // Codewords span aligned pairs of words; keep the arena pair-complete.
      capacity_(capacity_words + (capacity_words & 1u)),
      words_(capacity_, 0) {
  if (protection_ != ecc::Scheme::None) {
    code_ = &ecc::code(protection_);
    check_.assign(capacity_ / 2, 0);  // zero data encodes to zero check bits
  }
  // Start CPU placements away from address 0 so null-ish pointers fault.
  next_base_ = model_ == MemoryModel::PagedCpu ? 16 * kPageWords : 0;
}

void DeviceMemory::reset() {
  used_ = 0;
  next_base_ = model_ == MemoryModel::PagedCpu ? 16 * kPageWords : 0;
  extents_.clear();
  extent_storage_.clear();
  // Words above the store high-water mark are zero by invariant (every write
  // path notes its physical index), so the wipe only has to cover the dirty
  // prefix — O(touched), not O(capacity).
  const std::size_t hi = dirty_hi_.load(std::memory_order_relaxed);
  std::fill(words_.begin(),
            words_.begin() + static_cast<long>(hi < words_.size() ? hi : words_.size()),
            0u);
  zero_check_tail(0, hi);
  for (auto& c : class_words_) c = 0;
  dirty_hi_.store(0, std::memory_order_relaxed);
}

std::uint32_t DeviceMemory::alloc(std::uint32_t words, AllocClass cls) {
  if (words == 0) words = 1;
  class_words_[static_cast<int>(cls)] += words;
  if (model_ == MemoryModel::FlatGpu) {
    if (used_ + words > capacity_) throw std::bad_alloc();
    const std::uint32_t base = used_;
    used_ += words;
    return base;
  }
  // PagedCpu: virtual base on a page boundary with a gap; storage is packed.
  if (used_ + words > capacity_) throw std::bad_alloc();
  const std::uint32_t pages = (words + kPageWords - 1) / kPageWords;
  const std::uint32_t base = next_base_;
  next_base_ += pages * kPageWords + kGapWords;
  extents_.push_back({base, words});
  extent_storage_.push_back(used_);
  used_ += words;
  return base;
}

bool DeviceMemory::valid(std::uint32_t addr) const noexcept {
  // FlatGpu: *no* page protection — the whole physical arena is accessible
  // whether or not it was allocated (Section II.A cause (a)); only addresses
  // beyond physical memory fault.
  if (model_ == MemoryModel::FlatGpu) return addr < capacity_;
  // Binary search the sorted extents (bases are strictly increasing).
  auto it = std::upper_bound(extents_.begin(), extents_.end(), addr,
                             [](std::uint32_t a, const Extent& e) { return a < e.base; });
  if (it == extents_.begin()) return false;
  --it;
  return addr - it->base < it->size;
}

std::uint32_t DeviceMemory::index_of(std::uint32_t addr) const noexcept {
  if (model_ == MemoryModel::FlatGpu) return addr;
  auto it = std::upper_bound(extents_.begin(), extents_.end(), addr,
                             [](std::uint32_t a, const Extent& e) { return a < e.base; });
  --it;
  return extent_storage_[static_cast<std::size_t>(it - extents_.begin())] + (addr - it->base);
}

void DeviceMemory::copy_in(std::uint32_t addr, std::span<const std::uint32_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!store(addr + static_cast<std::uint32_t>(i), data[i]))
      throw std::out_of_range("DeviceMemory::copy_in: invalid address");
  }
}

void DeviceMemory::copy_out(std::uint32_t addr, std::span<std::uint32_t> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!load(addr + static_cast<std::uint32_t>(i), out[i]))
      throw std::out_of_range("DeviceMemory::copy_out: invalid address");
  }
}

bool DeviceMemory::store_checked(std::uint32_t idx, std::uint32_t value) noexcept {
  // A partial (32-bit) write is a read-modify-write of the 64-bit codeword,
  // exactly as in ECC DRAM: the sibling word is EDC-checked first — a latent
  // single-bit error gets corrected (and counted) rather than being silently
  // laundered into the freshly encoded pair, and an uncorrectable pair fails
  // the store.  The new pair is then re-encoded, which is why datapath
  // faults that arrive here through a store are invisible to the code.
  const std::uint32_t p = idx / 2;
  const std::uint64_t data = static_cast<std::uint64_t>(words_[2 * p]) |
                             (static_cast<std::uint64_t>(words_[2 * p + 1]) << 32);
  if (ecc::encode(*code_, data) != check_[p] && !repair_pair(p)) return false;
  words_[idx] = value;
  const std::uint64_t fresh = static_cast<std::uint64_t>(words_[2 * p]) |
                              (static_cast<std::uint64_t>(words_[2 * p + 1]) << 32);
  check_[p] = ecc::encode(*code_, fresh);
  note_store(idx);
  return true;
}

bool DeviceMemory::repair_and_load(std::uint32_t idx, std::uint32_t& out) const noexcept {
  // Scrubbing mutates the arena from a logically-const read path; the
  // corrected value is the canonical content, so observable state only moves
  // *toward* the clean codeword.
  auto& self = const_cast<DeviceMemory&>(*this);
  if (!self.repair_pair(idx / 2)) return false;
  out = words_[idx];
  return true;
}

bool DeviceMemory::repair_pair(std::uint32_t pair) noexcept {
  std::lock_guard<std::mutex> lock(scrub_mutex_);
  const std::uint64_t data = static_cast<std::uint64_t>(words_[2 * pair]) |
                             (static_cast<std::uint64_t>(words_[2 * pair + 1]) << 32);
  const auto dec = ecc::decode(*code_, data, check_[pair]);
  if (dec.bit == ecc::kNoError) return true;  // another thread scrubbed it first
  if (dec.bit == ecc::kUncorrectable) {
    ecc_uncorrectable_.fetch_add(1, std::memory_order_relaxed);
    tl_ecc_fault_ = true;
    return false;
  }
  words_[2 * pair] = static_cast<std::uint32_t>(dec.data);
  words_[2 * pair + 1] = static_cast<std::uint32_t>(dec.data >> 32);
  check_[pair] = dec.check;
  ecc_corrected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DeviceMemory::reencode_prefix(std::size_t n) noexcept {
  if (protection_ == ecc::Scheme::None) return;
  const std::size_t pairs = check_prefix(n);
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::uint64_t data = static_cast<std::uint64_t>(words_[2 * p]) |
                               (static_cast<std::uint64_t>(words_[2 * p + 1]) << 32);
    check_[p] = ecc::encode(*code_, data);
  }
}

void DeviceMemory::zero_check_tail(std::size_t n, std::size_t hi) noexcept {
  if (protection_ == ecc::Scheme::None) return;
  const std::size_t from = check_prefix(n);
  const std::size_t to = check_prefix(hi < words_.size() ? hi : words_.size());
  if (to > from)
    std::fill(check_.begin() + static_cast<long>(from),
              check_.begin() + static_cast<long>(to), std::uint8_t{0});
}

}  // namespace hauberk::gpusim
