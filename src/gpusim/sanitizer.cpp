#include "gpusim/sanitizer.hpp"

#include <cstdio>

namespace hauberk::gpusim {

const char* hazard_kind_name(HazardKind k) noexcept {
  switch (k) {
    case HazardKind::WriteWrite: return "write-write-race";
    case HazardKind::ReadWrite: return "read-write-race";
    case HazardKind::BarrierDivergence: return "barrier-divergence";
    case HazardKind::SharedOutOfBounds: return "shared-out-of-bounds";
    case HazardKind::UninitSharedRead: return "uninit-shared-read";
  }
  return "?";
}

std::string sanitizer_report_to_string(const SanitizerReport& r) {
  char buf[192];
  if (r.kind == HazardKind::BarrierDivergence) {
    if (r.other_pc == SanitizerReport::kNoPc) {
      std::snprintf(buf, sizeof buf,
                    "%s: block %u thread %u waits at barrier pc %u (site %u) while "
                    "thread %u exited, epoch %u",
                    hazard_kind_name(r.kind), r.block, r.thread, r.pc, r.site,
                    r.other_thread, r.epoch);
    } else {
      std::snprintf(buf, sizeof buf,
                    "%s: block %u thread %u at barrier pc %u (site %u) vs thread %u "
                    "at barrier pc %u, epoch %u",
                    hazard_kind_name(r.kind), r.block, r.thread, r.pc, r.site,
                    r.other_thread, r.other_pc, r.epoch);
    }
  } else if (r.other_thread == SanitizerReport::kNoThread) {
    std::snprintf(buf, sizeof buf,
                  "%s: block %u thread %u pc %u (site %u) shared word %u, epoch %u",
                  hazard_kind_name(r.kind), r.block, r.thread, r.pc, r.site, r.addr,
                  r.epoch);
  } else {
    std::snprintf(buf, sizeof buf,
                  "%s: block %u shared word %u, thread %u pc %u (site %u) conflicts "
                  "with thread %u pc %u, epoch %u",
                  hazard_kind_name(r.kind), r.block, r.addr, r.thread, r.pc, r.site,
                  r.other_thread, r.other_pc, r.epoch);
  }
  return buf;
}

}  // namespace hauberk::gpusim
