#include "gpusim/device.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/worker_pool.hpp"

namespace hauberk::gpusim {

using kir::BinOp;
using kir::BuiltinVal;
using kir::DType;
using kir::Instr;
using kir::OpCode;
using kir::UnOp;

const char* exec_engine_name(ExecEngine e) noexcept {
  switch (e) {
    case ExecEngine::Fast: return "fast";
    case ExecEngine::Reference: return "reference";
    case ExecEngine::Sanitizer: return "sanitizer";
    case ExecEngine::Threaded: return "threaded";
  }
  return "?";
}

const char* launch_status_name(LaunchStatus s) noexcept {
  switch (s) {
    case LaunchStatus::Ok: return "ok";
    case LaunchStatus::CrashOutOfBounds: return "crash-oob";
    case LaunchStatus::CrashSharedOutOfBounds: return "crash-shared-oob";
    case LaunchStatus::CrashDivByZero: return "crash-divzero";
    case LaunchStatus::CrashInvalidInstr: return "crash-invalid-instr";
    case LaunchStatus::CrashBarrierDeadlock: return "crash-barrier-deadlock";
    case LaunchStatus::Hang: return "hang";
    case LaunchStatus::LaunchFailure: return "launch-failure";
    case LaunchStatus::DeviceDisabled: return "device-disabled";
    case LaunchStatus::EccUncorrectable: return "ecc-uncorrectable";
  }
  return "?";
}

Device::Device(DeviceProps props)
    : props_(props),
      mem_(std::make_unique<DeviceMemory>(props.memory_model, props.global_mem_words,
                                          props.protection)) {}

Device::~Device() = default;  // out of line: WorkerPool is incomplete in the header

void Device::install_fault(const DeviceFaultModel& fm) {
  fault_ = fm;
  fault_op_counter_.store(0);
  fault_injected_ops_.store(0);
}

void Device::clear_fault() {
  fault_ = DeviceFaultModel{};
  fault_op_counter_.store(0);
  fault_injected_ops_.store(0);
}

namespace {

/// A failed DeviceMemory load/store/rmw is either an invalid address or —
/// under protection — an uncorrectable ECC error; the thread-local flag the
/// failing path sets tells which, and the distinction becomes the launch
/// status (crash-oob vs the machine-check analog).
inline LaunchStatus mem_fail_status() noexcept {
  return DeviceMemory::last_fault_uncorrectable() ? LaunchStatus::EccUncorrectable
                                                  : LaunchStatus::CrashOutOfBounds;
}

constexpr std::uint32_t aux_op(std::uint32_t aux) noexcept { return aux & 0xffffu; }
constexpr DType aux_type(std::uint32_t aux) noexcept {
  return static_cast<DType>((aux >> 16) & 0xffu);
}

constexpr float as_f(std::uint32_t b) noexcept { return std::bit_cast<float>(b); }
constexpr std::uint32_t f_bits(float v) noexcept { return std::bit_cast<std::uint32_t>(v); }
constexpr std::int32_t as_i(std::uint32_t b) noexcept { return static_cast<std::int32_t>(b); }
constexpr std::uint32_t i_bits(std::int32_t v) noexcept { return static_cast<std::uint32_t>(v); }

/// CUDA-like saturating f32 -> i32 conversion; NaN -> 0.  Shared by the
/// reference evaluator and the fast engine's F2I handler so the two can
/// never drift.
inline std::uint32_t f2i_sat(std::uint32_t a) noexcept {
  const float x = as_f(a);
  if (std::isnan(x)) return 0;
  if (x >= 2147483648.0f) return 0x7fffffffu;
  if (x < -2147483648.0f) return 0x80000000u;
  return i_bits(static_cast<std::int32_t>(x));
}

/// fmin/fmax tie-breaking on (-0.0, +0.0) is not pinned by IEEE 754, and the
/// compiler may expand the builtin differently at different call sites (the
/// differential fuzzer caught exactly this: fmin(-0.0f, +0.0f) returning a
/// different zero in the fast engine than in eval_bin).  Forcing every
/// engine through these single out-of-line bodies makes the choice —
/// whatever it is — bitwise identical everywhere.
[[gnu::noinline]] std::uint32_t fmin_bits(std::uint32_t a, std::uint32_t b) noexcept {
  return f_bits(std::fmin(as_f(a), as_f(b)));
}
[[gnu::noinline]] std::uint32_t fmax_bits(std::uint32_t a, std::uint32_t b) noexcept {
  return f_bits(std::fmax(as_f(a), as_f(b)));
}

/// f32 arithmetic shared by both engines.  x86 float ops propagate the
/// *first* NaN operand's payload, and GCC may legally commute a float
/// add/mul per call site — so the same `x + y` source can return a
/// different NaN payload in the fast engine than in eval_bin (the fuzzer
/// caught this through a float atomicAdd onto a stored integer that
/// happened to be a NaN bit pattern).  Canonicalizing every NaN result
/// removes the operand-order dependence while staying inlinable.
inline std::uint32_t canon_f(float r) noexcept {
  return r != r ? 0x7fc00000u : f_bits(r);
}
inline std::uint32_t fadd_bits(std::uint32_t a, std::uint32_t b) noexcept {
  return canon_f(as_f(a) + as_f(b));
}
inline std::uint32_t fsub_bits(std::uint32_t a, std::uint32_t b) noexcept {
  return canon_f(as_f(a) - as_f(b));
}
inline std::uint32_t fmul_bits(std::uint32_t a, std::uint32_t b) noexcept {
  return canon_f(as_f(a) * as_f(b));
}
inline std::uint32_t fdiv_bits(std::uint32_t a, std::uint32_t b) noexcept {
  return canon_f(as_f(a) / as_f(b));  // IEEE: /0 -> inf, no trap
}

/// Evaluate a binary op; `crash` set on integer division by zero.
std::uint32_t eval_bin(BinOp op, DType t, std::uint32_t a, std::uint32_t b,
                       bool& crash) noexcept {
  if (t == DType::F32) {
    const float x = as_f(a), y = as_f(b);
    switch (op) {
      case BinOp::Add: return fadd_bits(a, b);
      case BinOp::Sub: return fsub_bits(a, b);
      case BinOp::Mul: return fmul_bits(a, b);
      case BinOp::Div: return fdiv_bits(a, b);
      case BinOp::Mod: return f_bits(std::fmod(x, y));
      case BinOp::Min: return fmin_bits(a, b);
      case BinOp::Max: return fmax_bits(a, b);
      case BinOp::Lt: return x < y;
      case BinOp::Le: return x <= y;
      case BinOp::Gt: return x > y;
      case BinOp::Ge: return x >= y;
      case BinOp::Eq: return x == y;
      case BinOp::Ne: return x != y;
      case BinOp::LogicalAnd: return (x != 0.0f) && (y != 0.0f);
      case BinOp::LogicalOr: return (x != 0.0f) || (y != 0.0f);
      case BinOp::BitAnd: return a & b;
      case BinOp::BitOr: return a | b;
      case BinOp::BitXor: return a ^ b;
      case BinOp::Shl: return a << (b & 31);
      case BinOp::Shr: return a >> (b & 31);
    }
    return 0;
  }
  if (t == DType::PTR) {
    // Pointer (unsigned word) arithmetic.
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::Lt: return a < b;
      case BinOp::Le: return a <= b;
      case BinOp::Gt: return a > b;
      case BinOp::Ge: return a >= b;
      case BinOp::Eq: return a == b;
      case BinOp::Ne: return a != b;
      case BinOp::Min: return a < b ? a : b;
      case BinOp::Max: return a > b ? a : b;
      case BinOp::BitAnd: return a & b;
      case BinOp::BitOr: return a | b;
      case BinOp::BitXor: return a ^ b;
      case BinOp::Shl: return a << (b & 31);
      case BinOp::Shr: return a >> (b & 31);
      case BinOp::Div:
        if (b == 0) { crash = true; return 0; }
        return a / b;
      case BinOp::Mod:
        if (b == 0) { crash = true; return 0; }
        return a % b;
      case BinOp::LogicalAnd: return (a != 0) && (b != 0);
      case BinOp::LogicalOr: return (a != 0) || (b != 0);
    }
    return 0;
  }
  // I32: signed, wraparound via 64-bit intermediates (defined overflow).
  const std::int64_t x = as_i(a), y = as_i(b);
  switch (op) {
    case BinOp::Add: return i_bits(static_cast<std::int32_t>(x + y));
    case BinOp::Sub: return i_bits(static_cast<std::int32_t>(x - y));
    case BinOp::Mul: return i_bits(static_cast<std::int32_t>(x * y));
    case BinOp::Div:
      if (y == 0) { crash = true; return 0; }
      return i_bits(static_cast<std::int32_t>(x / y));
    case BinOp::Mod:
      if (y == 0) { crash = true; return 0; }
      return i_bits(static_cast<std::int32_t>(x % y));
    case BinOp::Min: return i_bits(static_cast<std::int32_t>(x < y ? x : y));
    case BinOp::Max: return i_bits(static_cast<std::int32_t>(x > y ? x : y));
    case BinOp::BitAnd: return a & b;
    case BinOp::BitOr: return a | b;
    case BinOp::BitXor: return a ^ b;
    case BinOp::Shl: return a << (b & 31);
    case BinOp::Shr: return i_bits(as_i(a) >> (b & 31));  // arithmetic shift
    case BinOp::Lt: return x < y;
    case BinOp::Le: return x <= y;
    case BinOp::Gt: return x > y;
    case BinOp::Ge: return x >= y;
    case BinOp::Eq: return x == y;
    case BinOp::Ne: return x != y;
    case BinOp::LogicalAnd: return (x != 0) && (y != 0);
    case BinOp::LogicalOr: return (x != 0) || (y != 0);
  }
  return 0;
}

std::uint32_t eval_un(UnOp op, DType t, std::uint32_t a) noexcept {
  if (t == DType::F32) {
    const float x = as_f(a);
    switch (op) {
      case UnOp::Neg: return f_bits(-x);
      case UnOp::LogicalNot: return x == 0.0f;
      case UnOp::BitNot: return ~a;
      case UnOp::Sqrt: return f_bits(std::sqrt(x));
      case UnOp::Rsqrt: return f_bits(1.0f / std::sqrt(x));
      case UnOp::Abs: return f_bits(std::fabs(x));
      case UnOp::Exp: return f_bits(std::exp(x));
      case UnOp::Log: return f_bits(std::log(x));
      case UnOp::Sin: return f_bits(std::sin(x));
      case UnOp::Cos: return f_bits(std::cos(x));
      case UnOp::Floor: return f_bits(std::floor(x));
      case UnOp::CastF32: return a;
      case UnOp::CastI32: return f2i_sat(a);
    }
    return 0;
  }
  // I32 / PTR source.
  const std::int32_t x = as_i(a);
  switch (op) {
    case UnOp::Neg: return i_bits(-x);
    case UnOp::LogicalNot: return a == 0;
    case UnOp::BitNot: return ~a;
    case UnOp::Abs: return i_bits(x < 0 ? -x : x);
    case UnOp::CastF32:
      return t == DType::PTR ? f_bits(static_cast<float>(a)) : f_bits(static_cast<float>(x));
    case UnOp::CastI32: return a;
    default:
      // Transcendentals on integers: promote, compute, keep float bits
      // (workloads never do this; defined for completeness).
      return eval_un(op, DType::F32, f_bits(static_cast<float>(x)));
  }
}

enum class ThreadStop : std::uint8_t { Done, Barrier, Crash, Budget };

/// Executes all threads of one block.
class BlockExec {
 public:
  BlockExec(Device& dev, const kir::BytecodeProgram& prog, const LaunchConfig& cfg,
            const LaunchOptions& opts, const std::vector<std::uint32_t>& costs,
            const kir::DecodedProgram& decoded, const kir::ThreadedProgram& threaded,
            ExecEngine engine, std::uint32_t block_linear,
            std::vector<SanitizerReport>* report_sink)
      : dev_(dev), prog_(prog), cfg_(cfg), opts_(opts), costs_(costs),
        dec_(engine != ExecEngine::Reference ? decoded.code.data() : nullptr),
        tcode_(engine == ExecEngine::Threaded && !threaded.code.empty()
                   ? threaded.code.data()
                   : nullptr),
        sites_(decoded.sanitizer_sites.data()),
        block_linear_(block_linear),
        sm_(block_linear % dev.props().num_sms),
        bx_(block_linear % cfg.grid_x), by_(block_linear / cfg.grid_x),
        threads_per_block_(cfg.block_x * cfg.block_y),
        shared_(prog.shared_mem_words, 0u) {
    if (report_sink)
      shadow_ = std::make_unique<SharedShadow>(
          static_cast<std::uint32_t>(shared_.size()), dev.props().warp_size,
          block_linear, *report_sink, opts.sanitize_report_cap);
  }

  LaunchStatus run(std::span<const kir::Value> args);

  std::uint64_t cycles = 0;
  std::uint64_t loop_cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t simt_cycles = 0;
  bool sdc = false;
  std::vector<std::uint64_t> exec_counts;  ///< per-instruction, when profiling
  std::vector<std::uint32_t> thread_counts;  ///< [thread][pc], when SIMT costing
  std::int64_t deadlock_pc = -1;    ///< barrier pc on CrashBarrierDeadlock
  std::int64_t deadlock_site = -1;  ///< its sanitizer site id

  [[nodiscard]] std::uint64_t sanitizer_dropped() const noexcept {
    return shadow_ ? shadow_->dropped() : 0;
  }

 private:
  struct ThreadCtx {
    std::uint32_t pc = 0;
    std::uint64_t budget_used = 0;
    std::uint32_t tx = 0, ty = 0;
    std::uint32_t linear = 0;     // global linear thread id
    std::uint32_t block_index = 0;  // index within the block
    std::uint32_t barrier_pc = 0;   // pc of the barrier this thread last stopped at
    bool done = false;
    std::uint32_t* regs = nullptr;
  };

  ThreadStop run_thread(ThreadCtx& t, LaunchStatus& crash_status);
  template <bool kCounts, bool kSimt, bool kHwFault, bool kSanitize>
  ThreadStop run_thread_fast(ThreadCtx& t, LaunchStatus& crash_status);
  ThreadStop run_thread_threaded(ThreadCtx& t, LaunchStatus& crash_status);
  ThreadStop step_thread(ThreadCtx& t, LaunchStatus& crash_status);
  void finish_simt_cost();
  std::uint32_t builtin_value(const ThreadCtx& t, BuiltinVal b) const noexcept;
  void maybe_hw_fault(std::uint32_t& bits, DType t) noexcept;
  [[nodiscard]] std::int64_t site_of(std::uint32_t pc) const noexcept {
    const std::uint32_t s = sites_[pc];
    return s == kir::kNoSite ? -1 : static_cast<std::int64_t>(s);
  }

  Device& dev_;
  const kir::BytecodeProgram& prog_;
  const LaunchConfig& cfg_;
  const LaunchOptions& opts_;
  const std::vector<std::uint32_t>& costs_;
  const kir::DecodedInstr* dec_;  ///< fast-engine stream; nullptr -> reference
  const kir::ThreadedInstr* tcode_;  ///< threaded-code stream; non-null only for Threaded
  const std::uint32_t* sites_;    ///< per-pc sanitizer site ids (all engines)
  std::uint32_t block_linear_, sm_, bx_, by_, threads_per_block_;
  std::vector<std::uint32_t> shared_;
  std::unique_ptr<SharedShadow> shadow_;  ///< non-null only under ExecEngine::Sanitizer
  std::uint32_t epoch_ = 0;  ///< barrier epoch, bumped at every successful release
  int fast_mode_ = -1;  ///< run(): -1 reference, else fast specialization index
};

std::uint32_t BlockExec::builtin_value(const ThreadCtx& t, BuiltinVal b) const noexcept {
  switch (b) {
    case BuiltinVal::ThreadIdxX: return t.tx;
    case BuiltinVal::ThreadIdxY: return t.ty;
    case BuiltinVal::BlockIdxX: return bx_;
    case BuiltinVal::BlockIdxY: return by_;
    case BuiltinVal::BlockDimX: return cfg_.block_x;
    case BuiltinVal::BlockDimY: return cfg_.block_y;
    case BuiltinVal::GridDimX: return cfg_.grid_x;
    case BuiltinVal::GridDimY: return cfg_.grid_y;
    case BuiltinVal::ThreadLinear: return t.linear;
  }
  return 0;
}

void BlockExec::maybe_hw_fault(std::uint32_t& bits, DType t) noexcept {
  // Slow path: only entered when a device fault model is installed.
  const DeviceFaultModel& fm = dev_.fault_;
  if (sm_ != fm.sm) return;
  const bool is_fp = t == DType::F32;
  if (fm.component == DeviceFaultModel::Component::ALU && is_fp) return;
  if (fm.component == DeviceFaultModel::Component::FPU && !is_fp) return;
  const std::uint64_t n = dev_.fault_op_counter_.fetch_add(1, std::memory_order_relaxed);
  if (fm.period > 1 && (n % fm.period) != 0) return;
  if (fm.kind != DeviceFaultModel::Kind::Permanent && fm.duration_ops > 0) {
    // Check-then-increment: the counter records *actual* injections so the
    // fault expires after exactly duration_ops corruptions.  (A concurrent
    // race could inject one extra op; fault experiments run deterministic
    // single-block configurations where this cannot happen.)
    if (dev_.fault_injected_ops_.load(std::memory_order_relaxed) >= fm.duration_ops) return;
    dev_.fault_injected_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  bits ^= fm.mask;
}

ThreadStop BlockExec::run_thread(ThreadCtx& t, LaunchStatus& crash_status) {
  const Instr* code = prog_.code.data();
  std::uint32_t* regs = t.regs;
  DeviceMemory& mem = dev_.mem();
  const bool hw_fault = dev_.has_fault();
  std::uint64_t local_cycles = 0, local_loop = 0, local_instr = 0;

  auto finish = [&] {
    cycles += local_cycles;
    loop_cycles += local_loop;
    instructions += local_instr;
    t.budget_used += local_instr;
  };

  for (;;) {
    if (local_instr + t.budget_used > opts_.watchdog_instructions) {
      finish();
      return ThreadStop::Budget;
    }
    const Instr& in = code[t.pc];
    const std::uint32_t c = costs_[t.pc];
    local_cycles += c;
    if (in.flags & kir::kInstrInLoop) local_loop += c;
    ++local_instr;
    if (!exec_counts.empty()) ++exec_counts[t.pc];
    if (!thread_counts.empty())
      ++thread_counts[static_cast<std::size_t>(t.block_index) * prog_.code.size() + t.pc];
    ++t.pc;

    switch (in.op) {
      case OpCode::Nop:
        break;
      case OpCode::Const:
        regs[in.dst] = in.imm;
        break;
      case OpCode::Mov:
        regs[in.dst] = regs[in.a];
        if (hw_fault && dev_.fault_.component == DeviceFaultModel::Component::RegisterFile)
          maybe_hw_fault(regs[in.dst], DType::I32);
        break;
      case OpCode::Builtin:
        regs[in.dst] = builtin_value(t, static_cast<BuiltinVal>(in.aux));
        break;
      case OpCode::Un: {
        std::uint32_t r = eval_un(static_cast<UnOp>(aux_op(in.aux)), aux_type(in.aux), regs[in.a]);
        if (hw_fault) maybe_hw_fault(r, aux_type(in.aux));
        regs[in.dst] = r;
        break;
      }
      case OpCode::Bin: {
        bool crash = false;
        std::uint32_t r = eval_bin(static_cast<BinOp>(aux_op(in.aux)), aux_type(in.aux),
                                   regs[in.a], regs[in.b], crash);
        if (crash) {
          crash_status = LaunchStatus::CrashDivByZero;
          finish();
          return ThreadStop::Crash;
        }
        if (hw_fault) maybe_hw_fault(r, aux_type(in.aux));
        regs[in.dst] = r;
        break;
      }
      case OpCode::Select:
        regs[in.dst] = regs[in.a] != 0 ? regs[in.b] : regs[static_cast<std::uint16_t>(in.imm)];
        break;
      case OpCode::LoadG:
        if (!mem.load(regs[in.a], regs[in.dst])) {
          crash_status = mem_fail_status();
          finish();
          return ThreadStop::Crash;
        }
        break;
      case OpCode::StoreG:
        if (!mem.store(regs[in.a], regs[in.b])) {
          crash_status = mem_fail_status();
          finish();
          return ThreadStop::Crash;
        }
        break;
      case OpCode::LoadS:
        if (regs[in.a] >= shared_.size()) {
          crash_status = LaunchStatus::CrashSharedOutOfBounds;
          finish();
          return ThreadStop::Crash;
        }
        regs[in.dst] = shared_[regs[in.a]];
        break;
      case OpCode::StoreS:
        if (regs[in.a] >= shared_.size()) {
          crash_status = LaunchStatus::CrashSharedOutOfBounds;
          finish();
          return ThreadStop::Crash;
        }
        shared_[regs[in.a]] = regs[in.b];
        break;
      case OpCode::AtomicAddG: {
        std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
        const bool ok =
            aux_type(in.aux) == DType::F32
                ? mem.rmw(regs[in.a],
                          [&](std::uint32_t w) { return fadd_bits(w, regs[in.b]); })
                : mem.rmw(regs[in.a], [&](std::uint32_t w) {
                    return i_bits(static_cast<std::int32_t>(
                        static_cast<std::int64_t>(as_i(w)) + as_i(regs[in.b])));
                  });
        if (!ok) {
          crash_status = mem_fail_status();
          finish();
          return ThreadStop::Crash;
        }
        break;
      }
      case OpCode::Jmp:
        t.pc = in.aux;
        break;
      case OpCode::Jz:
        if (regs[in.a] == 0) t.pc = in.aux;
        break;
      case OpCode::Barrier:
        t.barrier_pc = t.pc - 1;
        finish();
        return ThreadStop::Barrier;
      case OpCode::Halt:
        finish();
        t.done = true;
        return ThreadStop::Done;

      case OpCode::ChkXor:
        regs[in.dst] ^= regs[in.a];
        break;
      case OpCode::ChkValidate:
        if (regs[in.dst] != 0) sdc = true;
        break;
      case OpCode::DupCmp:
        if (regs[in.a] != regs[in.b]) sdc = true;
        break;
      case OpCode::RangeCheck:
        if (opts_.hooks) {
          const DType vt = prog_.detectors[in.aux].value_type;
          if (opts_.hooks->check_range(static_cast<int>(in.aux), kir::Value{vt, regs[in.a]}))
            sdc = true;
        }
        break;
      case OpCode::EqualCheck:
        if (regs[in.a] != regs[in.b]) {
          sdc = true;
          if (opts_.hooks) opts_.hooks->equal_check_failed(static_cast<int>(in.aux));
        }
        break;
      case OpCode::ProfileVal:
        if (opts_.hooks) {
          const DType vt = prog_.detectors[in.aux].value_type;
          opts_.hooks->profile_value(static_cast<int>(in.aux), kir::Value{vt, regs[in.a]});
        }
        break;
      case OpCode::CountExec:
        if (opts_.hooks) opts_.hooks->count_exec(in.aux, t.linear);
        break;
      case OpCode::FIHook:
        if (opts_.hooks) opts_.hooks->fi_hook(in.aux, t.linear, regs[in.a]);
        break;
      default:
        crash_status = LaunchStatus::CrashInvalidInstr;
        finish();
        return ThreadStop::Crash;
    }
  }
}

/// The predecoded fast path.  Same observable semantics as run_thread,
/// instruction for instruction: identical watchdog test, identical cost
/// accounting order (cost charged, then loop attribution, then pc++), and
/// identical crash/barrier/halt stop points.  Speed comes from three
/// sources, none of which may change behavior:
///
///  1. the kir::DecodedInstr stream has the (op, type) dispatch pre-resolved
///     and the per-pc cost/loop-cost pre-folded, so the hot loop is one
///     dense switch with no aux decoding or cost-vector lookup;
///  2. the profiling / SIMT-counting / hardware-fault checks are template
///     parameters, so the common uninstrumented launch compiles to a loop
///     with none of those branches;
///  3. FlatGpu global accesses use the hoisted arena span (valid() ==
///     addr < span.size(), addr == index — see DeviceMemory::flat_arena)
///     instead of the out-of-line load()/store() calls.
///
/// Any (op, type) case whose bit-level behavior is not provably shared with
/// the reference falls back to the same eval_un/eval_bin the reference
/// calls (UnGeneric/BinGeneric), so the engines cannot drift there either.
///
/// kSanitize layers the shared-memory shadow (gpusim/sanitizer.hpp) on the
/// LoadS/StoreS cases.  The shadow only *observes* — register writes, crash
/// points and cost accounting are untouched — which is what makes the
/// sanitizer engine bitwise identical to the others on every observable.
template <bool kCounts, bool kSimt, bool kHwFault, bool kSanitize>
ThreadStop BlockExec::run_thread_fast(ThreadCtx& t, LaunchStatus& crash_status) {
  using kir::DecodedOp;
  const kir::DecodedInstr* const code = dec_;
  std::uint32_t* const regs = t.regs;
  DeviceMemory& mem = dev_.mem();
  const std::span<std::uint32_t> arena = mem.flat_arena();
  std::uint32_t* const gmem = arena.data();       // null for PagedCpu
  const auto gsize = static_cast<std::uint32_t>(arena.size());
  const auto ssize = static_cast<std::uint32_t>(shared_.size());
  const std::uint64_t watchdog = opts_.watchdog_instructions;
  [[maybe_unused]] const std::size_t n_instr = prog_.code.size();
  std::uint64_t local_cycles = 0, local_loop = 0, local_instr = 0;

  auto finish = [&] {
    cycles += local_cycles;
    loop_cycles += local_loop;
    instructions += local_instr;
    t.budget_used += local_instr;
  };

// Handler macros keep the ~70 type-resolved cases at one line apiece.
// FAST_SET mirrors the reference Un/Bin tail exactly: optional hardware
// fault on the result bits (typed by the *original* operand DType carried
// in DecodedInstr::t, so the ALU-vs-FPU component filter matches), then the
// register write.
#define FAST_SET(expr)                                                      \
  {                                                                         \
    std::uint32_t r_ = (expr);                                              \
    if constexpr (kHwFault) maybe_hw_fault(r_, static_cast<DType>(in.t));   \
    regs[in.dst] = r_;                                                      \
  }                                                                         \
  break
#define FAST_CRASH(st)          \
  {                             \
    crash_status = (st);        \
    finish();                   \
    return ThreadStop::Crash;   \
  }

  for (;;) {
    if (local_instr + t.budget_used > watchdog) {
      finish();
      return ThreadStop::Budget;
    }
    const kir::DecodedInstr& in = code[t.pc];
    local_cycles += in.cost;
    local_loop += in.loop_cost;
    ++local_instr;
    if constexpr (kCounts) ++exec_counts[t.pc];
    if constexpr (kSimt)
      ++thread_counts[static_cast<std::size_t>(t.block_index) * n_instr + t.pc];
    ++t.pc;

    switch (in.op) {
      case DecodedOp::Nop:
        break;
      case DecodedOp::Const:
        regs[in.dst] = in.imm;
        break;
      case DecodedOp::Mov:
        regs[in.dst] = regs[in.a];
        if constexpr (kHwFault) {
          if (dev_.fault_.component == DeviceFaultModel::Component::RegisterFile)
            maybe_hw_fault(regs[in.dst], DType::I32);
        }
        break;
      case DecodedOp::Builtin:
        regs[in.dst] = builtin_value(t, static_cast<BuiltinVal>(in.aux));
        break;
      case DecodedOp::Select:
        regs[in.dst] = regs[in.a] != 0 ? regs[in.b] : regs[static_cast<std::uint16_t>(in.imm)];
        break;

      // --- unary, type-resolved ---
      case DecodedOp::NegF: FAST_SET(f_bits(-as_f(regs[in.a])));
      case DecodedOp::NegI: FAST_SET(i_bits(-as_i(regs[in.a])));
      case DecodedOp::NotF: FAST_SET(as_f(regs[in.a]) == 0.0f);
      case DecodedOp::NotW: FAST_SET(regs[in.a] == 0);
      case DecodedOp::BitNot: FAST_SET(~regs[in.a]);
      case DecodedOp::AbsF: FAST_SET(f_bits(std::fabs(as_f(regs[in.a]))));
      case DecodedOp::AbsI: {
        const std::int32_t x = as_i(regs[in.a]);
        FAST_SET(i_bits(x < 0 ? -x : x));
      }
      case DecodedOp::SqrtF: FAST_SET(f_bits(std::sqrt(as_f(regs[in.a]))));
      case DecodedOp::RsqrtF: FAST_SET(f_bits(1.0f / std::sqrt(as_f(regs[in.a]))));
      case DecodedOp::ExpF: FAST_SET(f_bits(std::exp(as_f(regs[in.a]))));
      case DecodedOp::LogF: FAST_SET(f_bits(std::log(as_f(regs[in.a]))));
      case DecodedOp::SinF: FAST_SET(f_bits(std::sin(as_f(regs[in.a]))));
      case DecodedOp::CosF: FAST_SET(f_bits(std::cos(as_f(regs[in.a]))));
      case DecodedOp::FloorF: FAST_SET(f_bits(std::floor(as_f(regs[in.a]))));
      case DecodedOp::I2F: FAST_SET(f_bits(static_cast<float>(as_i(regs[in.a]))));
      case DecodedOp::P2F: FAST_SET(f_bits(static_cast<float>(regs[in.a])));
      case DecodedOp::F2I: FAST_SET(f2i_sat(regs[in.a]));
      case DecodedOp::CopyA: FAST_SET(regs[in.a]);
      case DecodedOp::UnGeneric:
        FAST_SET(eval_un(static_cast<UnOp>(aux_op(in.aux)), aux_type(in.aux), regs[in.a]));

      // --- binary, type-resolved ---
      case DecodedOp::AddF: FAST_SET(fadd_bits(regs[in.a], regs[in.b]));
      case DecodedOp::SubF: FAST_SET(fsub_bits(regs[in.a], regs[in.b]));
      case DecodedOp::MulF: FAST_SET(fmul_bits(regs[in.a], regs[in.b]));
      case DecodedOp::DivF: FAST_SET(fdiv_bits(regs[in.a], regs[in.b]));
      case DecodedOp::MinF: FAST_SET(fmin_bits(regs[in.a], regs[in.b]));
      case DecodedOp::MaxF: FAST_SET(fmax_bits(regs[in.a], regs[in.b]));
      case DecodedOp::LtF: FAST_SET(as_f(regs[in.a]) < as_f(regs[in.b]));
      case DecodedOp::LeF: FAST_SET(as_f(regs[in.a]) <= as_f(regs[in.b]));
      case DecodedOp::GtF: FAST_SET(as_f(regs[in.a]) > as_f(regs[in.b]));
      case DecodedOp::GeF: FAST_SET(as_f(regs[in.a]) >= as_f(regs[in.b]));
      case DecodedOp::EqF: FAST_SET(as_f(regs[in.a]) == as_f(regs[in.b]));
      case DecodedOp::NeF: FAST_SET(as_f(regs[in.a]) != as_f(regs[in.b]));
      case DecodedOp::AddW: FAST_SET(regs[in.a] + regs[in.b]);
      case DecodedOp::SubW: FAST_SET(regs[in.a] - regs[in.b]);
      case DecodedOp::MulW: FAST_SET(regs[in.a] * regs[in.b]);
      case DecodedOp::DivI: {
        const std::int64_t x = as_i(regs[in.a]), y = as_i(regs[in.b]);
        if (y == 0) FAST_CRASH(LaunchStatus::CrashDivByZero);
        FAST_SET(i_bits(static_cast<std::int32_t>(x / y)));
      }
      case DecodedOp::ModI: {
        const std::int64_t x = as_i(regs[in.a]), y = as_i(regs[in.b]);
        if (y == 0) FAST_CRASH(LaunchStatus::CrashDivByZero);
        FAST_SET(i_bits(static_cast<std::int32_t>(x % y)));
      }
      case DecodedOp::DivU:
        if (regs[in.b] == 0) FAST_CRASH(LaunchStatus::CrashDivByZero);
        FAST_SET(regs[in.a] / regs[in.b]);
      case DecodedOp::ModU:
        if (regs[in.b] == 0) FAST_CRASH(LaunchStatus::CrashDivByZero);
        FAST_SET(regs[in.a] % regs[in.b]);
      case DecodedOp::MinI: FAST_SET(as_i(regs[in.a]) < as_i(regs[in.b]) ? regs[in.a] : regs[in.b]);
      case DecodedOp::MaxI: FAST_SET(as_i(regs[in.a]) > as_i(regs[in.b]) ? regs[in.a] : regs[in.b]);
      case DecodedOp::MinU: FAST_SET(regs[in.a] < regs[in.b] ? regs[in.a] : regs[in.b]);
      case DecodedOp::MaxU: FAST_SET(regs[in.a] > regs[in.b] ? regs[in.a] : regs[in.b]);
      case DecodedOp::LtI: FAST_SET(as_i(regs[in.a]) < as_i(regs[in.b]));
      case DecodedOp::LeI: FAST_SET(as_i(regs[in.a]) <= as_i(regs[in.b]));
      case DecodedOp::GtI: FAST_SET(as_i(regs[in.a]) > as_i(regs[in.b]));
      case DecodedOp::GeI: FAST_SET(as_i(regs[in.a]) >= as_i(regs[in.b]));
      case DecodedOp::LtU: FAST_SET(regs[in.a] < regs[in.b]);
      case DecodedOp::LeU: FAST_SET(regs[in.a] <= regs[in.b]);
      case DecodedOp::GtU: FAST_SET(regs[in.a] > regs[in.b]);
      case DecodedOp::GeU: FAST_SET(regs[in.a] >= regs[in.b]);
      case DecodedOp::EqW: FAST_SET(regs[in.a] == regs[in.b]);
      case DecodedOp::NeW: FAST_SET(regs[in.a] != regs[in.b]);
      case DecodedOp::AndB: FAST_SET(regs[in.a] & regs[in.b]);
      case DecodedOp::OrB: FAST_SET(regs[in.a] | regs[in.b]);
      case DecodedOp::XorB: FAST_SET(regs[in.a] ^ regs[in.b]);
      case DecodedOp::ShlB: FAST_SET(regs[in.a] << (regs[in.b] & 31));
      case DecodedOp::ShrL: FAST_SET(regs[in.a] >> (regs[in.b] & 31));
      case DecodedOp::ShrA: FAST_SET(i_bits(as_i(regs[in.a]) >> (regs[in.b] & 31)));
      case DecodedOp::LAndW: FAST_SET((regs[in.a] != 0) && (regs[in.b] != 0));
      case DecodedOp::LOrW: FAST_SET((regs[in.a] != 0) || (regs[in.b] != 0));
      case DecodedOp::BinGeneric: {
        bool crash = false;
        const std::uint32_t r = eval_bin(static_cast<BinOp>(aux_op(in.aux)), aux_type(in.aux),
                                         regs[in.a], regs[in.b], crash);
        if (crash) FAST_CRASH(LaunchStatus::CrashDivByZero);
        FAST_SET(r);
      }

      // --- memory ---
      case DecodedOp::LoadG: {
        const std::uint32_t addr = regs[in.a];
        if (gmem) {
          if (addr >= gsize) FAST_CRASH(LaunchStatus::CrashOutOfBounds);
          regs[in.dst] = gmem[addr];
        } else if (!mem.load(addr, regs[in.dst])) {
          FAST_CRASH(mem_fail_status());
        }
        break;
      }
      case DecodedOp::StoreG: {
        const std::uint32_t addr = regs[in.a];
        if (gmem) {
          if (addr >= gsize) FAST_CRASH(LaunchStatus::CrashOutOfBounds);
          gmem[addr] = regs[in.b];
          mem.note_store(addr);
        } else if (!mem.store(addr, regs[in.b])) {
          FAST_CRASH(mem_fail_status());
        }
        break;
      }
      case DecodedOp::LoadS: {
        const std::uint32_t addr = regs[in.a];
        if (addr >= ssize) {
          if constexpr (kSanitize)
            shadow_->on_oob(t.pc - 1, sites_[t.pc - 1], t.block_index, addr, epoch_);
          FAST_CRASH(LaunchStatus::CrashSharedOutOfBounds);
        }
        if constexpr (kSanitize)
          shadow_->on_load(t.pc - 1, sites_[t.pc - 1], t.block_index, addr, epoch_);
        regs[in.dst] = shared_[addr];
        break;
      }
      case DecodedOp::StoreS: {
        const std::uint32_t addr = regs[in.a];
        if (addr >= ssize) {
          if constexpr (kSanitize)
            shadow_->on_oob(t.pc - 1, sites_[t.pc - 1], t.block_index, addr, epoch_);
          FAST_CRASH(LaunchStatus::CrashSharedOutOfBounds);
        }
        if constexpr (kSanitize)
          shadow_->on_store(t.pc - 1, sites_[t.pc - 1], t.block_index, addr, epoch_);
        shared_[addr] = regs[in.b];
        break;
      }
      case DecodedOp::AtomicAddF: {
        std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
        if (gmem) {
          if (regs[in.a] >= gsize) FAST_CRASH(LaunchStatus::CrashOutOfBounds);
          mem.note_store(regs[in.a]);
          std::uint32_t* const w = gmem + regs[in.a];
          *w = fadd_bits(*w, regs[in.b]);
        } else if (!mem.rmw(regs[in.a],
                            [&](std::uint32_t w) { return fadd_bits(w, regs[in.b]); })) {
          FAST_CRASH(mem_fail_status());
        }
        break;
      }
      case DecodedOp::AtomicAddI: {
        std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
        if (gmem) {
          if (regs[in.a] >= gsize) FAST_CRASH(LaunchStatus::CrashOutOfBounds);
          mem.note_store(regs[in.a]);
          std::uint32_t* const w = gmem + regs[in.a];
          *w = i_bits(static_cast<std::int32_t>(
              static_cast<std::int64_t>(as_i(*w)) + as_i(regs[in.b])));
        } else if (!mem.rmw(regs[in.a], [&](std::uint32_t w) {
                     return i_bits(static_cast<std::int32_t>(
                         static_cast<std::int64_t>(as_i(w)) + as_i(regs[in.b])));
                   })) {
          FAST_CRASH(mem_fail_status());
        }
        break;
      }

      // --- control flow ---
      case DecodedOp::Jmp:
        t.pc = in.aux;
        break;
      case DecodedOp::Jz:
        if (regs[in.a] == 0) t.pc = in.aux;
        break;
      case DecodedOp::Barrier:
        t.barrier_pc = t.pc - 1;
        finish();
        return ThreadStop::Barrier;
      case DecodedOp::Halt:
        finish();
        t.done = true;
        return ThreadStop::Done;

      // --- Hauberk detectors / instrumentation hooks ---
      case DecodedOp::ChkXor:
        regs[in.dst] ^= regs[in.a];
        break;
      case DecodedOp::ChkValidate:
        if (regs[in.dst] != 0) sdc = true;
        break;
      case DecodedOp::DupCmp:
        if (regs[in.a] != regs[in.b]) sdc = true;
        break;
      case DecodedOp::RangeCheck:
        if (opts_.hooks &&
            opts_.hooks->check_range(static_cast<int>(in.aux),
                                     kir::Value{static_cast<DType>(in.t), regs[in.a]}))
          sdc = true;
        break;
      case DecodedOp::EqualCheck:
        if (regs[in.a] != regs[in.b]) {
          sdc = true;
          if (opts_.hooks) opts_.hooks->equal_check_failed(static_cast<int>(in.aux));
        }
        break;
      case DecodedOp::ProfileVal:
        if (opts_.hooks)
          opts_.hooks->profile_value(static_cast<int>(in.aux),
                                     kir::Value{static_cast<DType>(in.t), regs[in.a]});
        break;
      case DecodedOp::CountExec:
        if (opts_.hooks) opts_.hooks->count_exec(in.aux, t.linear);
        break;
      case DecodedOp::FIHook:
        if (opts_.hooks) opts_.hooks->fi_hook(in.aux, t.linear, regs[in.a]);
        break;

      case DecodedOp::Invalid:
      default:
        FAST_CRASH(LaunchStatus::CrashInvalidInstr);
    }
  }
#undef FAST_SET
#undef FAST_CRASH
}

/// The threaded-code engine.  Dispatches the kir::ThreadedProgram stream
/// compiled per launch plan: computed goto when the toolchain has
/// labels-as-values (HAUBERK_COMPUTED_GOTO, see top-level CMakeLists), a
/// switch loop otherwise — the two builds are bitwise identical, only
/// dispatch latency differs.
///
/// Semantics are pinned to run_thread_fast (and through it to run_thread)
/// by two rules:
///
///  * single ops replicate the fast handler bodies exactly, with the
///    watchdog test rewritten as a countdown (`left`) that is equivalent
///    step for step to the fast engine's `local_instr + budget_used >
///    watchdog` test;
///  * fused superinstructions perform *all* their checks — enough budget
///    for the whole region, every memory bound — before any register
///    write, memory write or cost charge.  Any case they cannot replicate
///    bit for bit (budget boundary inside the region, a crash, paged
///    global memory) delegates: finish() then run the rest of the slice on
///    run_thread_fast<false,false,false,false> over the position-stable
///    DecodedProgram, which reproduces reference behavior including
///    partial charges and crash points.
///
/// Only the plain launch mode runs here (see BlockExec::run): exec-count /
/// SIMT / hardware-fault / sanitizer launches use the fast engine's
/// specializations, so instrumentation semantics live in one place.
ThreadStop BlockExec::run_thread_threaded(ThreadCtx& t, LaunchStatus& crash_status) {
  using kir::TOp;
  // The threaded stream, the thread's register file and the flat arena are
  // three disjoint allocations; __restrict lets the compiler keep operands
  // in registers across regs[]/gmem[] stores (plain uint32 writes that TBAA
  // alone cannot separate from ThreadedInstr's uint32 fields).
  const kir::ThreadedInstr* const __restrict code = tcode_;
  std::uint32_t* const __restrict regs = t.regs;
  DeviceMemory& mem = dev_.mem();
  const std::span<std::uint32_t> arena = mem.flat_arena();
  std::uint32_t* const __restrict gmem = arena.data();  // null for PagedCpu
  const auto gsize = static_cast<std::uint32_t>(arena.size());
  const auto ssize = static_cast<std::uint32_t>(shared_.size());
  const std::uint64_t watchdog = opts_.watchdog_instructions;
  std::uint64_t local_cycles = 0, local_loop = 0, local_instr = 0;

  // Countdown form of the fast engine's watchdog test: that loop executes
  // an instruction iff local_instr + budget_used <= watchdog, i.e. exactly
  // watchdog - budget_used + 1 instructions this slice (zero if a barrier
  // landed the thread just past the budget).  The +1 can only wrap for
  // watchdog == UINT64_MAX, where the budget is unreachable anyway.
  std::uint64_t left = t.budget_used > watchdog ? 0 : watchdog - t.budget_used + 1;
  if (t.budget_used <= watchdog && left == 0) left = ~std::uint64_t{0};

  // Register-resident instruction cursor: t.pc is a uint32 member, so every
  // regs[] store (also uint32) could alias it as far as the compiler knows,
  // forcing a reload per dispatch.  Keep the cursor local and sync it back
  // only at slice exits (finish covers every return path, including the
  // fast-engine delegation which resumes from t.pc).
  std::uint32_t pc = t.pc;

  auto finish = [&] {
    t.pc = pc;
    cycles += local_cycles;
    loop_cycles += local_loop;
    instructions += local_instr;
    t.budget_used += local_instr;
  };

// Per-single prologue: budget countdown, pre-folded cost charge, pc++ —
// the same order as the fast engine (budget test before any charge).
#define T_STEP1()                     \
  do {                                \
    if (left == 0) {                  \
      finish();                       \
      return ThreadStop::Budget;      \
    }                                 \
    --left;                           \
    local_cycles += in->cost;         \
    local_loop += in->loop_cost;      \
    ++local_instr;                    \
    ++pc;                             \
  } while (0)
// Fused prologue: the region's summed charge under one budget decrement.
// Callers must have verified left >= len and every crash condition first.
#define T_CHARGE(n)                   \
  do {                                \
    left -= (n);                      \
    local_cycles += in->cost;         \
    local_loop += in->loop_cost;      \
    local_instr += (n);               \
  } while (0)
#define T_CRASH(st)                   \
  {                                   \
    crash_status = (st);              \
    finish();                         \
    return ThreadStop::Crash;         \
  }
// Bail out of a fused head the interpreter cannot replicate exactly:
// resume this slice on the single-op fast engine at the (unchanged) head
// pc.  Nothing has been charged or written yet, so the fast engine
// reproduces the reference trace including partial charges and crashes.
#define T_DELEGATE()                                                        \
  do {                                                                      \
    finish();                                                               \
    return run_thread_fast<false, false, false, false>(t, crash_status);    \
  } while (0)

#if HAUBERK_COMPUTED_GOTO
#define T_LABEL(n) lbl_##n
#define T_NEXT()                      \
  do {                                \
    in = &code[pc];                   \
    goto* kLabels[in->op];            \
  } while (0)
// RunHead tail: dispatch the head op's naked handler without reloading `in`
// (the head slot carries the first op's operands).
#define T_DISPATCH_D() goto* kLabels[in->d]
#else
#define T_LABEL(n) case kir::TOp::n
#define T_NEXT() break
#define T_DISPATCH_D()                          \
  do {                                          \
    opv = in->d;                                \
    goto lbl_redispatch;                        \
  } while (0)
#endif
// Crash inside a run: the head charged the whole region up front, so hand
// back the suffix *after* the crashing op (its refund fields) before the
// normal crash exit — the launch then bills exactly what the fast engine
// bills, the prefix up to and including the crashing op.
#define T_NK_CRASH(st)                \
  {                                   \
    left += in->len;                  \
    local_instr -= in->len;           \
    local_cycles -= in->cost;         \
    local_loop -= in->loop_cost;      \
    T_CRASH(st);                      \
  }
#define T_SET(expr)                   \
  {                                   \
    T_STEP1();                        \
    regs[in->dst] = (expr);           \
    T_NEXT();                         \
  }

// Fused operand evaluators — bit-identical to the corresponding fast
// single-op handlers.
#define HB_CMP_LtI(A, B) static_cast<std::uint32_t>(as_i(A) < as_i(B))
#define HB_CMP_LeI(A, B) static_cast<std::uint32_t>(as_i(A) <= as_i(B))
#define HB_CMP_GtI(A, B) static_cast<std::uint32_t>(as_i(A) > as_i(B))
#define HB_CMP_GeI(A, B) static_cast<std::uint32_t>(as_i(A) >= as_i(B))
#define HB_CMP_LtU(A, B) static_cast<std::uint32_t>((A) < (B))
#define HB_CMP_LeU(A, B) static_cast<std::uint32_t>((A) <= (B))
#define HB_CMP_GtU(A, B) static_cast<std::uint32_t>((A) > (B))
#define HB_CMP_GeU(A, B) static_cast<std::uint32_t>((A) >= (B))
#define HB_CMP_LtF(A, B) static_cast<std::uint32_t>(as_f(A) < as_f(B))
#define HB_CMP_LeF(A, B) static_cast<std::uint32_t>(as_f(A) <= as_f(B))
#define HB_CMP_GtF(A, B) static_cast<std::uint32_t>(as_f(A) > as_f(B))
#define HB_CMP_GeF(A, B) static_cast<std::uint32_t>(as_f(A) >= as_f(B))
#define HB_CMP_EqW(A, B) static_cast<std::uint32_t>((A) == (B))
#define HB_CMP_NeW(A, B) static_cast<std::uint32_t>((A) != (B))
#define HB_CMP_EqF(A, B) static_cast<std::uint32_t>(as_f(A) == as_f(B))
#define HB_CMP_NeF(A, B) static_cast<std::uint32_t>(as_f(A) != as_f(B))
#define HB_ALU_AddW(A, B) ((A) + (B))
#define HB_ALU_SubW(A, B) ((A) - (B))
#define HB_ALU_MulW(A, B) ((A) * (B))
#define HB_ALU_AddF(A, B) fadd_bits((A), (B))
#define HB_ALU_SubF(A, B) fsub_bits((A), (B))
#define HB_ALU_MulF(A, B) fmul_bits((A), (B))
#define HB_ALU_DivF(A, B) fdiv_bits((A), (B))
#define HB_ALU_MaxF(A, B) fmax_bits((A), (B))
#define HB_ALU_LtF(A, B) HB_CMP_LtF((A), (B))
#define HB_ALU_GtI(A, B) HB_CMP_GtI((A), (B))
#define HB_ALU_EqW(A, B) HB_CMP_EqW((A), (B))
#define HB_ALU_AndB(A, B) ((A) & (B))
#define HB_ALU_ShrA(A, B) i_bits(as_i(A) >> ((B) & 31))
#define HB_ALU_LAndW(A, B) static_cast<std::uint32_t>(((A) != 0) && ((B) != 0))

  const kir::ThreadedInstr* in = code;
#if HAUBERK_COMPUTED_GOTO
  // Label table in TOp order — generated from the same X-macro lists as the
  // enum itself, so the two cannot drift.
  static const void* const kLabels[] = {
#define HAUBERK_TOP_L(n) &&lbl_##n,
      HAUBERK_TOP_SINGLE_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
#define HAUBERK_TOP_L(n) &&lbl_CmpJz_##n, &&lbl_ConstCmpJz_##n,
          HAUBERK_TOP_CMP_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
              && lbl_ConstAddJmp,
      &&lbl_AddJmp,
#define HAUBERK_TOP_L(n) \
  &&lbl_ConstBin_##n, &&lbl_LoadBinStore_##n, &&lbl_BinChkXor_##n, &&lbl_BinDupCmp_##n,
      HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
          && lbl_ChkXor2,
      &&lbl_RangeCheck2,
      &&lbl_RunHead,
#define HAUBERK_TOP_L(n) &&lbl_Nk_##n,
      HAUBERK_TOP_NAKED_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
#define HAUBERK_TOP_L(n) &&lbl_NkConstBin_##n, &&lbl_NkBinChkXor_##n, &&lbl_NkBinDupCmp_##n,
          HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
              && lbl_NkChkXor2,
      &&lbl_NkRangeCheck2,
#define HAUBERK_TOP_L(a, b) &&lbl_NkBinBin_##a##_##b,
      HAUBERK_TOP_ALU_PAIR_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
#define HAUBERK_TOP_L(n) \
  &&lbl_NkBinConst_##n, &&lbl_NkLoadBin_##n, &&lbl_NkBinLoad_##n, &&lbl_NkConstBinLoad_##n,
          HAUBERK_TOP_ALU_LIST(HAUBERK_TOP_L)
#undef HAUBERK_TOP_L
              && lbl_NkConst2,
      &&lbl_NkLoadConst,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kir::kNumTOps);
  T_NEXT();
#else
  for (;;) {
    in = &code[pc];
    std::uint16_t opv = in->op;
  lbl_redispatch:
    switch (static_cast<kir::TOp>(opv)) {
#endif

  // --- singles (mirrors of the run_thread_fast plain-mode handlers) ---
  T_LABEL(Nop) : {
    T_STEP1();
    T_NEXT();
  }
  T_LABEL(Const) : T_SET(in->imm);
  T_LABEL(Mov) : T_SET(regs[in->a]);
  T_LABEL(Builtin) : T_SET(builtin_value(t, static_cast<BuiltinVal>(in->aux)));
  T_LABEL(Select) :
      T_SET(regs[in->a] != 0 ? regs[in->b] : regs[static_cast<std::uint16_t>(in->imm)]);

  T_LABEL(NegF) : T_SET(f_bits(-as_f(regs[in->a])));
  T_LABEL(NegI) : T_SET(i_bits(-as_i(regs[in->a])));
  T_LABEL(NotF) : T_SET(as_f(regs[in->a]) == 0.0f);
  T_LABEL(NotW) : T_SET(regs[in->a] == 0);
  T_LABEL(BitNot) : T_SET(~regs[in->a]);
  T_LABEL(AbsF) : T_SET(f_bits(std::fabs(as_f(regs[in->a]))));
  T_LABEL(AbsI) : {
    T_STEP1();
    const std::int32_t x = as_i(regs[in->a]);
    regs[in->dst] = i_bits(x < 0 ? -x : x);
    T_NEXT();
  }
  T_LABEL(SqrtF) : T_SET(f_bits(std::sqrt(as_f(regs[in->a]))));
  T_LABEL(RsqrtF) : T_SET(f_bits(1.0f / std::sqrt(as_f(regs[in->a]))));
  T_LABEL(ExpF) : T_SET(f_bits(std::exp(as_f(regs[in->a]))));
  T_LABEL(LogF) : T_SET(f_bits(std::log(as_f(regs[in->a]))));
  T_LABEL(SinF) : T_SET(f_bits(std::sin(as_f(regs[in->a]))));
  T_LABEL(CosF) : T_SET(f_bits(std::cos(as_f(regs[in->a]))));
  T_LABEL(FloorF) : T_SET(f_bits(std::floor(as_f(regs[in->a]))));
  T_LABEL(I2F) : T_SET(f_bits(static_cast<float>(as_i(regs[in->a]))));
  T_LABEL(P2F) : T_SET(f_bits(static_cast<float>(regs[in->a])));
  T_LABEL(F2I) : T_SET(f2i_sat(regs[in->a]));
  T_LABEL(CopyA) : T_SET(regs[in->a]);
  T_LABEL(UnGeneric) :
      T_SET(eval_un(static_cast<UnOp>(aux_op(in->aux)), aux_type(in->aux), regs[in->a]));

  T_LABEL(AddF) : T_SET(fadd_bits(regs[in->a], regs[in->b]));
  T_LABEL(SubF) : T_SET(fsub_bits(regs[in->a], regs[in->b]));
  T_LABEL(MulF) : T_SET(fmul_bits(regs[in->a], regs[in->b]));
  T_LABEL(DivF) : T_SET(fdiv_bits(regs[in->a], regs[in->b]));
  T_LABEL(MinF) : T_SET(fmin_bits(regs[in->a], regs[in->b]));
  T_LABEL(MaxF) : T_SET(fmax_bits(regs[in->a], regs[in->b]));
  T_LABEL(LtF) : T_SET(HB_CMP_LtF(regs[in->a], regs[in->b]));
  T_LABEL(LeF) : T_SET(HB_CMP_LeF(regs[in->a], regs[in->b]));
  T_LABEL(GtF) : T_SET(HB_CMP_GtF(regs[in->a], regs[in->b]));
  T_LABEL(GeF) : T_SET(HB_CMP_GeF(regs[in->a], regs[in->b]));
  T_LABEL(EqF) : T_SET(HB_CMP_EqF(regs[in->a], regs[in->b]));
  T_LABEL(NeF) : T_SET(HB_CMP_NeF(regs[in->a], regs[in->b]));
  T_LABEL(AddW) : T_SET(regs[in->a] + regs[in->b]);
  T_LABEL(SubW) : T_SET(regs[in->a] - regs[in->b]);
  T_LABEL(MulW) : T_SET(regs[in->a] * regs[in->b]);
  T_LABEL(DivI) : {
    T_STEP1();
    const std::int64_t x = as_i(regs[in->a]), y = as_i(regs[in->b]);
    if (y == 0) T_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = i_bits(static_cast<std::int32_t>(x / y));
    T_NEXT();
  }
  T_LABEL(ModI) : {
    T_STEP1();
    const std::int64_t x = as_i(regs[in->a]), y = as_i(regs[in->b]);
    if (y == 0) T_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = i_bits(static_cast<std::int32_t>(x % y));
    T_NEXT();
  }
  T_LABEL(DivU) : {
    T_STEP1();
    if (regs[in->b] == 0) T_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = regs[in->a] / regs[in->b];
    T_NEXT();
  }
  T_LABEL(ModU) : {
    T_STEP1();
    if (regs[in->b] == 0) T_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = regs[in->a] % regs[in->b];
    T_NEXT();
  }
  T_LABEL(MinI) : T_SET(as_i(regs[in->a]) < as_i(regs[in->b]) ? regs[in->a] : regs[in->b]);
  T_LABEL(MaxI) : T_SET(as_i(regs[in->a]) > as_i(regs[in->b]) ? regs[in->a] : regs[in->b]);
  T_LABEL(MinU) : T_SET(regs[in->a] < regs[in->b] ? regs[in->a] : regs[in->b]);
  T_LABEL(MaxU) : T_SET(regs[in->a] > regs[in->b] ? regs[in->a] : regs[in->b]);
  T_LABEL(LtI) : T_SET(HB_CMP_LtI(regs[in->a], regs[in->b]));
  T_LABEL(LeI) : T_SET(HB_CMP_LeI(regs[in->a], regs[in->b]));
  T_LABEL(GtI) : T_SET(HB_CMP_GtI(regs[in->a], regs[in->b]));
  T_LABEL(GeI) : T_SET(HB_CMP_GeI(regs[in->a], regs[in->b]));
  T_LABEL(LtU) : T_SET(HB_CMP_LtU(regs[in->a], regs[in->b]));
  T_LABEL(LeU) : T_SET(HB_CMP_LeU(regs[in->a], regs[in->b]));
  T_LABEL(GtU) : T_SET(HB_CMP_GtU(regs[in->a], regs[in->b]));
  T_LABEL(GeU) : T_SET(HB_CMP_GeU(regs[in->a], regs[in->b]));
  T_LABEL(EqW) : T_SET(HB_CMP_EqW(regs[in->a], regs[in->b]));
  T_LABEL(NeW) : T_SET(HB_CMP_NeW(regs[in->a], regs[in->b]));
  T_LABEL(AndB) : T_SET(regs[in->a] & regs[in->b]);
  T_LABEL(OrB) : T_SET(regs[in->a] | regs[in->b]);
  T_LABEL(XorB) : T_SET(regs[in->a] ^ regs[in->b]);
  T_LABEL(ShlB) : T_SET(regs[in->a] << (regs[in->b] & 31));
  T_LABEL(ShrL) : T_SET(regs[in->a] >> (regs[in->b] & 31));
  T_LABEL(ShrA) : T_SET(i_bits(as_i(regs[in->a]) >> (regs[in->b] & 31)));
  T_LABEL(LAndW) : T_SET((regs[in->a] != 0) && (regs[in->b] != 0));
  T_LABEL(LOrW) : T_SET((regs[in->a] != 0) || (regs[in->b] != 0));
  T_LABEL(BinGeneric) : {
    T_STEP1();
    bool crash = false;
    const std::uint32_t r = eval_bin(static_cast<BinOp>(aux_op(in->aux)), aux_type(in->aux),
                                     regs[in->a], regs[in->b], crash);
    if (crash) T_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = r;
    T_NEXT();
  }

  T_LABEL(LoadG) : {
    T_STEP1();
    const std::uint32_t addr = regs[in->a];
    if (gmem) {
      if (addr >= gsize) T_CRASH(LaunchStatus::CrashOutOfBounds);
      regs[in->dst] = gmem[addr];
    } else if (!mem.load(addr, regs[in->dst])) {
      T_CRASH(mem_fail_status());
    }
    T_NEXT();
  }
  T_LABEL(StoreG) : {
    T_STEP1();
    const std::uint32_t addr = regs[in->a];
    if (gmem) {
      if (addr >= gsize) T_CRASH(LaunchStatus::CrashOutOfBounds);
      gmem[addr] = regs[in->b];
      mem.note_store(addr);
    } else if (!mem.store(addr, regs[in->b])) {
      T_CRASH(mem_fail_status());
    }
    T_NEXT();
  }
  T_LABEL(LoadS) : {
    T_STEP1();
    const std::uint32_t addr = regs[in->a];
    if (addr >= ssize) T_CRASH(LaunchStatus::CrashSharedOutOfBounds);
    regs[in->dst] = shared_[addr];
    T_NEXT();
  }
  T_LABEL(StoreS) : {
    T_STEP1();
    const std::uint32_t addr = regs[in->a];
    if (addr >= ssize) T_CRASH(LaunchStatus::CrashSharedOutOfBounds);
    shared_[addr] = regs[in->b];
    T_NEXT();
  }
  // The atomic handlers keep the lock_guard inside an inner block: the
  // computed goto in T_NEXT() must not jump out of the guard's scope (an
  // indirect goto does not unwind locals, so the mutex would stay locked
  // and the next atomic in any thread would deadlock the launch).
  T_LABEL(AtomicAddF) : {
    T_STEP1();
    {
      std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
      if (gmem) {
        if (regs[in->a] >= gsize) T_CRASH(LaunchStatus::CrashOutOfBounds);
        mem.note_store(regs[in->a]);
        std::uint32_t* const w = gmem + regs[in->a];
        *w = fadd_bits(*w, regs[in->b]);
      } else if (!mem.rmw(regs[in->a],
                          [&](std::uint32_t w) { return fadd_bits(w, regs[in->b]); })) {
        T_CRASH(mem_fail_status());
      }
    }
    T_NEXT();
  }
  T_LABEL(AtomicAddI) : {
    T_STEP1();
    {
      std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
      if (gmem) {
        if (regs[in->a] >= gsize) T_CRASH(LaunchStatus::CrashOutOfBounds);
        mem.note_store(regs[in->a]);
        std::uint32_t* const w = gmem + regs[in->a];
        *w = i_bits(static_cast<std::int32_t>(
            static_cast<std::int64_t>(as_i(*w)) + as_i(regs[in->b])));
      } else if (!mem.rmw(regs[in->a], [&](std::uint32_t w) {
                   return i_bits(static_cast<std::int32_t>(
                       static_cast<std::int64_t>(as_i(w)) + as_i(regs[in->b])));
                 })) {
        T_CRASH(mem_fail_status());
      }
    }
    T_NEXT();
  }

  T_LABEL(Jmp) : {
    T_STEP1();
    pc = in->aux;
    T_NEXT();
  }
  T_LABEL(Jz) : {
    T_STEP1();
    if (regs[in->a] == 0) pc = in->aux;
    T_NEXT();
  }
  T_LABEL(Barrier) : {
    T_STEP1();
    t.barrier_pc = pc - 1;
    finish();
    return ThreadStop::Barrier;
  }
  T_LABEL(Halt) : {
    T_STEP1();
    finish();
    t.done = true;
    return ThreadStop::Done;
  }

  T_LABEL(ChkXor) : {
    T_STEP1();
    regs[in->dst] ^= regs[in->a];
    T_NEXT();
  }
  T_LABEL(ChkValidate) : {
    T_STEP1();
    if (regs[in->dst] != 0) sdc = true;
    T_NEXT();
  }
  T_LABEL(DupCmp) : {
    T_STEP1();
    if (regs[in->a] != regs[in->b]) sdc = true;
    T_NEXT();
  }
  T_LABEL(RangeCheck) : {
    T_STEP1();
    if (opts_.hooks &&
        opts_.hooks->check_range(static_cast<int>(in->aux),
                                 kir::Value{static_cast<DType>(in->t), regs[in->a]}))
      sdc = true;
    T_NEXT();
  }
  T_LABEL(EqualCheck) : {
    T_STEP1();
    if (regs[in->a] != regs[in->b]) {
      sdc = true;
      if (opts_.hooks) opts_.hooks->equal_check_failed(static_cast<int>(in->aux));
    }
    T_NEXT();
  }
  T_LABEL(ProfileVal) : {
    T_STEP1();
    if (opts_.hooks)
      opts_.hooks->profile_value(static_cast<int>(in->aux),
                                 kir::Value{static_cast<DType>(in->t), regs[in->a]});
    T_NEXT();
  }
  T_LABEL(CountExec) : {
    T_STEP1();
    if (opts_.hooks) opts_.hooks->count_exec(in->aux, t.linear);
    T_NEXT();
  }
  T_LABEL(FIHook) : {
    T_STEP1();
    if (opts_.hooks) opts_.hooks->fi_hook(in->aux, t.linear, regs[in->a]);
    T_NEXT();
  }
  T_LABEL(Invalid) : {
    T_STEP1();
    T_CRASH(LaunchStatus::CrashInvalidInstr);
  }

  // --- fused superinstructions ---
#define T_CMPJZ(K)                                                           \
  T_LABEL(CmpJz_##K) : {                                                     \
    if (left < 2) T_DELEGATE();                                              \
    T_CHARGE(2);                                                             \
    const std::uint32_t v_ = HB_CMP_##K(regs[in->a], regs[in->b]);           \
    regs[in->dst] = v_;                                                      \
    pc = v_ == 0 ? in->aux : pc + 2;                                     \
    T_NEXT();                                                                \
  }                                                                          \
  T_LABEL(ConstCmpJz_##K) : {                                                \
    if (left < 3) T_DELEGATE();                                              \
    T_CHARGE(3);                                                             \
    regs[in->c] = in->imm;                                                   \
    const std::uint32_t x_ = regs[in->a];                                    \
    const std::uint32_t v_ =                                                 \
        in->t ? HB_CMP_##K(in->imm, x_) : HB_CMP_##K(x_, in->imm);           \
    regs[in->dst] = v_;                                                      \
    pc = v_ == 0 ? in->aux : pc + 3;                                     \
    T_NEXT();                                                                \
  }
  HAUBERK_TOP_CMP_LIST(T_CMPJZ)
#undef T_CMPJZ

  T_LABEL(ConstAddJmp) : {
    if (left < 3) T_DELEGATE();
    T_CHARGE(3);
    regs[in->c] = in->imm;
    regs[in->dst] = regs[in->a] + regs[in->b];
    pc = in->aux;
    T_NEXT();
  }
  T_LABEL(AddJmp) : {
    if (left < 2) T_DELEGATE();
    T_CHARGE(2);
    regs[in->dst] = regs[in->a] + regs[in->b];
    pc = in->aux;
    T_NEXT();
  }

#define T_ALUFUSE(K)                                                         \
  T_LABEL(ConstBin_##K) : {                                                  \
    if (left < 2) T_DELEGATE();                                              \
    T_CHARGE(2);                                                             \
    regs[in->c] = in->imm;                                                   \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                    \
    pc += 2;                                                               \
    T_NEXT();                                                                \
  }                                                                          \
  T_LABEL(LoadBinStore_##K) : {                                              \
    const std::uint32_t la_ = regs[in->a];                                   \
    const std::uint32_t sa_ = regs[in->b];                                   \
    if (left < 3 || la_ >= gsize || sa_ >= gsize) T_DELEGATE();              \
    T_CHARGE(3);                                                             \
    regs[in->c] = gmem[la_];                                                 \
    const std::uint32_t r_ =                                                 \
        HB_ALU_##K(regs[in->aux & 0xffffu], regs[in->aux >> 16]);            \
    regs[in->dst] = r_;                                                      \
    gmem[sa_] = r_;                                                          \
    mem.note_store(sa_);                                                     \
    pc += 3;                                                               \
    T_NEXT();                                                                \
  }                                                                          \
  T_LABEL(BinChkXor_##K) : {                                                 \
    if (left < 2) T_DELEGATE();                                              \
    T_CHARGE(2);                                                             \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                    \
    regs[in->c] ^= regs[in->d];                                              \
    pc += 2;                                                               \
    T_NEXT();                                                                \
  }                                                                          \
  T_LABEL(BinDupCmp_##K) : {                                                 \
    if (left < 2) T_DELEGATE();                                              \
    T_CHARGE(2);                                                             \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                    \
    if (regs[in->c] != regs[in->d]) sdc = true;                              \
    pc += 2;                                                               \
    T_NEXT();                                                                \
  }
  HAUBERK_TOP_ALU_LIST(T_ALUFUSE)
#undef T_ALUFUSE

  T_LABEL(ChkXor2) : {
    if (left < 2) T_DELEGATE();
    T_CHARGE(2);
    regs[in->dst] ^= regs[in->a];
    regs[in->c] ^= regs[in->d];
    pc += 2;
    T_NEXT();
  }
  T_LABEL(RangeCheck2) : {
    if (left < 2) T_DELEGATE();
    T_CHARGE(2);
    if (opts_.hooks) {
      if (opts_.hooks->check_range(static_cast<int>(in->aux),
                                   kir::Value{static_cast<DType>(in->t & 0xf), regs[in->a]}))
        sdc = true;
      if (opts_.hooks->check_range(static_cast<int>(in->imm),
                                   kir::Value{static_cast<DType>(in->t >> 4), regs[in->c]}))
        sdc = true;
    }
    pc += 2;
    T_NEXT();
  }

  // --- straight-line runs ---
  // RunHead: one budget test and one pre-summed charge for the whole
  // region, then dispatch the head op's naked handler (`in` unchanged —
  // the head slot carries that op's operands).  A budget boundary inside
  // the region delegates *before* any charge, so the fast engine replays
  // it per-instruction and stops exactly where the reference would.
  T_LABEL(RunHead) : {
    if (left < in->len) T_DELEGATE();
    T_CHARGE(in->len);
    T_DISPATCH_D();
  }

  // Naked singles: the single-op bodies minus all accounting — the RunHead
  // already billed the region.  Crashable ops refund their suffix (carried
  // in their cost/loop_cost/len fields) before the crash exit; the atomic
  // handlers keep the lock_guard scoped exactly like the accounted ones.
#define T_NSET(expr)          \
  {                           \
    regs[in->dst] = (expr);   \
    ++pc;                     \
    T_NEXT();                 \
  }
  T_LABEL(Nk_Nop) : {
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_Const) : T_NSET(in->imm);
  T_LABEL(Nk_Mov) : T_NSET(regs[in->a]);
  T_LABEL(Nk_Builtin) : T_NSET(builtin_value(t, static_cast<BuiltinVal>(in->aux)));
  T_LABEL(Nk_Select) :
      T_NSET(regs[in->a] != 0 ? regs[in->b] : regs[static_cast<std::uint16_t>(in->imm)]);

  T_LABEL(Nk_NegF) : T_NSET(f_bits(-as_f(regs[in->a])));
  T_LABEL(Nk_NegI) : T_NSET(i_bits(-as_i(regs[in->a])));
  T_LABEL(Nk_NotF) : T_NSET(as_f(regs[in->a]) == 0.0f);
  T_LABEL(Nk_NotW) : T_NSET(regs[in->a] == 0);
  T_LABEL(Nk_BitNot) : T_NSET(~regs[in->a]);
  T_LABEL(Nk_AbsF) : T_NSET(f_bits(std::fabs(as_f(regs[in->a]))));
  T_LABEL(Nk_AbsI) : {
    const std::int32_t x = as_i(regs[in->a]);
    regs[in->dst] = i_bits(x < 0 ? -x : x);
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_SqrtF) : T_NSET(f_bits(std::sqrt(as_f(regs[in->a]))));
  T_LABEL(Nk_RsqrtF) : T_NSET(f_bits(1.0f / std::sqrt(as_f(regs[in->a]))));
  T_LABEL(Nk_ExpF) : T_NSET(f_bits(std::exp(as_f(regs[in->a]))));
  T_LABEL(Nk_LogF) : T_NSET(f_bits(std::log(as_f(regs[in->a]))));
  T_LABEL(Nk_SinF) : T_NSET(f_bits(std::sin(as_f(regs[in->a]))));
  T_LABEL(Nk_CosF) : T_NSET(f_bits(std::cos(as_f(regs[in->a]))));
  T_LABEL(Nk_FloorF) : T_NSET(f_bits(std::floor(as_f(regs[in->a]))));
  T_LABEL(Nk_I2F) : T_NSET(f_bits(static_cast<float>(as_i(regs[in->a]))));
  T_LABEL(Nk_P2F) : T_NSET(f_bits(static_cast<float>(regs[in->a])));
  T_LABEL(Nk_F2I) : T_NSET(f2i_sat(regs[in->a]));
  T_LABEL(Nk_CopyA) : T_NSET(regs[in->a]);
  T_LABEL(Nk_UnGeneric) :
      T_NSET(eval_un(static_cast<UnOp>(aux_op(in->aux)), aux_type(in->aux), regs[in->a]));

  T_LABEL(Nk_AddF) : T_NSET(fadd_bits(regs[in->a], regs[in->b]));
  T_LABEL(Nk_SubF) : T_NSET(fsub_bits(regs[in->a], regs[in->b]));
  T_LABEL(Nk_MulF) : T_NSET(fmul_bits(regs[in->a], regs[in->b]));
  T_LABEL(Nk_DivF) : T_NSET(fdiv_bits(regs[in->a], regs[in->b]));
  T_LABEL(Nk_MinF) : T_NSET(fmin_bits(regs[in->a], regs[in->b]));
  T_LABEL(Nk_MaxF) : T_NSET(fmax_bits(regs[in->a], regs[in->b]));
  T_LABEL(Nk_LtF) : T_NSET(HB_CMP_LtF(regs[in->a], regs[in->b]));
  T_LABEL(Nk_LeF) : T_NSET(HB_CMP_LeF(regs[in->a], regs[in->b]));
  T_LABEL(Nk_GtF) : T_NSET(HB_CMP_GtF(regs[in->a], regs[in->b]));
  T_LABEL(Nk_GeF) : T_NSET(HB_CMP_GeF(regs[in->a], regs[in->b]));
  T_LABEL(Nk_EqF) : T_NSET(HB_CMP_EqF(regs[in->a], regs[in->b]));
  T_LABEL(Nk_NeF) : T_NSET(HB_CMP_NeF(regs[in->a], regs[in->b]));
  T_LABEL(Nk_AddW) : T_NSET(regs[in->a] + regs[in->b]);
  T_LABEL(Nk_SubW) : T_NSET(regs[in->a] - regs[in->b]);
  T_LABEL(Nk_MulW) : T_NSET(regs[in->a] * regs[in->b]);
  T_LABEL(Nk_DivI) : {
    ++pc;
    const std::int64_t x = as_i(regs[in->a]), y = as_i(regs[in->b]);
    if (y == 0) T_NK_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = i_bits(static_cast<std::int32_t>(x / y));
    T_NEXT();
  }
  T_LABEL(Nk_ModI) : {
    ++pc;
    const std::int64_t x = as_i(regs[in->a]), y = as_i(regs[in->b]);
    if (y == 0) T_NK_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = i_bits(static_cast<std::int32_t>(x % y));
    T_NEXT();
  }
  T_LABEL(Nk_DivU) : {
    ++pc;
    if (regs[in->b] == 0) T_NK_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = regs[in->a] / regs[in->b];
    T_NEXT();
  }
  T_LABEL(Nk_ModU) : {
    ++pc;
    if (regs[in->b] == 0) T_NK_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = regs[in->a] % regs[in->b];
    T_NEXT();
  }
  T_LABEL(Nk_MinI) : T_NSET(as_i(regs[in->a]) < as_i(regs[in->b]) ? regs[in->a] : regs[in->b]);
  T_LABEL(Nk_MaxI) : T_NSET(as_i(regs[in->a]) > as_i(regs[in->b]) ? regs[in->a] : regs[in->b]);
  T_LABEL(Nk_MinU) : T_NSET(regs[in->a] < regs[in->b] ? regs[in->a] : regs[in->b]);
  T_LABEL(Nk_MaxU) : T_NSET(regs[in->a] > regs[in->b] ? regs[in->a] : regs[in->b]);
  T_LABEL(Nk_LtI) : T_NSET(HB_CMP_LtI(regs[in->a], regs[in->b]));
  T_LABEL(Nk_LeI) : T_NSET(HB_CMP_LeI(regs[in->a], regs[in->b]));
  T_LABEL(Nk_GtI) : T_NSET(HB_CMP_GtI(regs[in->a], regs[in->b]));
  T_LABEL(Nk_GeI) : T_NSET(HB_CMP_GeI(regs[in->a], regs[in->b]));
  T_LABEL(Nk_LtU) : T_NSET(HB_CMP_LtU(regs[in->a], regs[in->b]));
  T_LABEL(Nk_LeU) : T_NSET(HB_CMP_LeU(regs[in->a], regs[in->b]));
  T_LABEL(Nk_GtU) : T_NSET(HB_CMP_GtU(regs[in->a], regs[in->b]));
  T_LABEL(Nk_GeU) : T_NSET(HB_CMP_GeU(regs[in->a], regs[in->b]));
  T_LABEL(Nk_EqW) : T_NSET(HB_CMP_EqW(regs[in->a], regs[in->b]));
  T_LABEL(Nk_NeW) : T_NSET(HB_CMP_NeW(regs[in->a], regs[in->b]));
  T_LABEL(Nk_AndB) : T_NSET(regs[in->a] & regs[in->b]);
  T_LABEL(Nk_OrB) : T_NSET(regs[in->a] | regs[in->b]);
  T_LABEL(Nk_XorB) : T_NSET(regs[in->a] ^ regs[in->b]);
  T_LABEL(Nk_ShlB) : T_NSET(regs[in->a] << (regs[in->b] & 31));
  T_LABEL(Nk_ShrL) : T_NSET(regs[in->a] >> (regs[in->b] & 31));
  T_LABEL(Nk_ShrA) : T_NSET(i_bits(as_i(regs[in->a]) >> (regs[in->b] & 31)));
  T_LABEL(Nk_LAndW) : T_NSET((regs[in->a] != 0) && (regs[in->b] != 0));
  T_LABEL(Nk_LOrW) : T_NSET((regs[in->a] != 0) || (regs[in->b] != 0));
  T_LABEL(Nk_BinGeneric) : {
    ++pc;
    bool crash = false;
    const std::uint32_t r = eval_bin(static_cast<BinOp>(aux_op(in->aux)), aux_type(in->aux),
                                     regs[in->a], regs[in->b], crash);
    if (crash) T_NK_CRASH(LaunchStatus::CrashDivByZero);
    regs[in->dst] = r;
    T_NEXT();
  }

  T_LABEL(Nk_LoadG) : {
    ++pc;
    const std::uint32_t addr = regs[in->a];
    if (gmem) {
      if (addr >= gsize) T_NK_CRASH(LaunchStatus::CrashOutOfBounds);
      regs[in->dst] = gmem[addr];
    } else if (!mem.load(addr, regs[in->dst])) {
      T_NK_CRASH(mem_fail_status());
    }
    T_NEXT();
  }
  T_LABEL(Nk_StoreG) : {
    ++pc;
    const std::uint32_t addr = regs[in->a];
    if (gmem) {
      if (addr >= gsize) T_NK_CRASH(LaunchStatus::CrashOutOfBounds);
      gmem[addr] = regs[in->b];
      mem.note_store(addr);
    } else if (!mem.store(addr, regs[in->b])) {
      T_NK_CRASH(mem_fail_status());
    }
    T_NEXT();
  }
  T_LABEL(Nk_LoadS) : {
    ++pc;
    const std::uint32_t addr = regs[in->a];
    if (addr >= ssize) T_NK_CRASH(LaunchStatus::CrashSharedOutOfBounds);
    regs[in->dst] = shared_[addr];
    T_NEXT();
  }
  T_LABEL(Nk_StoreS) : {
    ++pc;
    const std::uint32_t addr = regs[in->a];
    if (addr >= ssize) T_NK_CRASH(LaunchStatus::CrashSharedOutOfBounds);
    shared_[addr] = regs[in->b];
    T_NEXT();
  }
  T_LABEL(Nk_AtomicAddF) : {
    ++pc;
    {
      std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
      if (gmem) {
        if (regs[in->a] >= gsize) T_NK_CRASH(LaunchStatus::CrashOutOfBounds);
        mem.note_store(regs[in->a]);
        std::uint32_t* const w = gmem + regs[in->a];
        *w = fadd_bits(*w, regs[in->b]);
      } else if (!mem.rmw(regs[in->a],
                          [&](std::uint32_t w) { return fadd_bits(w, regs[in->b]); })) {
        T_NK_CRASH(mem_fail_status());
      }
    }
    T_NEXT();
  }
  T_LABEL(Nk_AtomicAddI) : {
    ++pc;
    {
      std::lock_guard<std::mutex> lk(dev_.atomic_mutex());
      if (gmem) {
        if (regs[in->a] >= gsize) T_NK_CRASH(LaunchStatus::CrashOutOfBounds);
        mem.note_store(regs[in->a]);
        std::uint32_t* const w = gmem + regs[in->a];
        *w = i_bits(static_cast<std::int32_t>(
            static_cast<std::int64_t>(as_i(*w)) + as_i(regs[in->b])));
      } else if (!mem.rmw(regs[in->a], [&](std::uint32_t w) {
                   return i_bits(static_cast<std::int32_t>(
                       static_cast<std::int64_t>(as_i(w)) + as_i(regs[in->b])));
                 })) {
        T_NK_CRASH(mem_fail_status());
      }
    }
    T_NEXT();
  }

  T_LABEL(Nk_ChkXor) : {
    regs[in->dst] ^= regs[in->a];
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_ChkValidate) : {
    if (regs[in->dst] != 0) sdc = true;
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_DupCmp) : {
    if (regs[in->a] != regs[in->b]) sdc = true;
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_RangeCheck) : {
    if (opts_.hooks &&
        opts_.hooks->check_range(static_cast<int>(in->aux),
                                 kir::Value{static_cast<DType>(in->t), regs[in->a]}))
      sdc = true;
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_EqualCheck) : {
    if (regs[in->a] != regs[in->b]) {
      sdc = true;
      if (opts_.hooks) opts_.hooks->equal_check_failed(static_cast<int>(in->aux));
    }
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_ProfileVal) : {
    if (opts_.hooks)
      opts_.hooks->profile_value(static_cast<int>(in->aux),
                                 kir::Value{static_cast<DType>(in->t), regs[in->a]});
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_CountExec) : {
    if (opts_.hooks) opts_.hooks->count_exec(in->aux, t.linear);
    ++pc;
    T_NEXT();
  }
  T_LABEL(Nk_FIHook) : {
    if (opts_.hooks) opts_.hooks->fi_hook(in->aux, t.linear, regs[in->a]);
    ++pc;
    T_NEXT();
  }

  // Naked fused pairs: two ops, one dispatch, zero accounting.
#define T_NK_ALUFUSE(K)                                                      \
  T_LABEL(NkConstBin_##K) : {                                                \
    regs[in->c] = in->imm;                                                   \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                    \
    pc += 2;                                                                 \
    T_NEXT();                                                                \
  }                                                                          \
  T_LABEL(NkBinChkXor_##K) : {                                               \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                    \
    regs[in->c] ^= regs[in->d];                                              \
    pc += 2;                                                                 \
    T_NEXT();                                                                \
  }                                                                          \
  T_LABEL(NkBinDupCmp_##K) : {                                               \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                    \
    if (regs[in->c] != regs[in->d]) sdc = true;                              \
    pc += 2;                                                                 \
    T_NEXT();                                                                \
  }
  HAUBERK_TOP_ALU_LIST(T_NK_ALUFUSE)
#undef T_NK_ALUFUSE

  T_LABEL(NkChkXor2) : {
    regs[in->dst] ^= regs[in->a];
    regs[in->c] ^= regs[in->d];
    pc += 2;
    T_NEXT();
  }
  T_LABEL(NkRangeCheck2) : {
    if (opts_.hooks) {
      if (opts_.hooks->check_range(static_cast<int>(in->aux),
                                   kir::Value{static_cast<DType>(in->t & 0xf), regs[in->a]}))
        sdc = true;
      if (opts_.hooks->check_range(static_cast<int>(in->imm),
                                   kir::Value{static_cast<DType>(in->t >> 4), regs[in->c]}))
        sdc = true;
    }
    pc += 2;
    T_NEXT();
  }

// Load a word inside a naked tile: same bounds/paging behavior as Nk_LoadG,
// with the tile's suffix-refund crash exit.
#define T_NK_LOAD(DST, ADDREXPR)                                   \
  {                                                                \
    const std::uint32_t a_ = (ADDREXPR);                           \
    if (gmem) {                                                    \
      if (a_ >= gsize) T_NK_CRASH(LaunchStatus::CrashOutOfBounds); \
      (DST) = gmem[a_];                                            \
    } else if (!mem.load(a_, (DST))) {                             \
      T_NK_CRASH(mem_fail_status());                               \
    }                                                              \
  }

  // Generic naked tiles (field layouts in threaded.cpp).  Sub-ops execute
  // strictly in source order against regs[], so operand aliasing between
  // them behaves exactly like the singles back to back; a load crash
  // refunds the tile's suffix but keeps the sub-ops already executed
  // billed, matching the fast engine's per-op trace.
#define T_NK_BINBIN(K1, K2)                                                    \
  T_LABEL(NkBinBin_##K1##_##K2) : {                                            \
    regs[in->dst] = HB_ALU_##K1(regs[in->a], regs[in->b]);                     \
    regs[in->c] = HB_ALU_##K2(regs[in->aux & 0xffffu], regs[in->aux >> 16]);   \
    pc += 2;                                                                   \
    T_NEXT();                                                                  \
  }
  HAUBERK_TOP_ALU_PAIR_LIST(T_NK_BINBIN)
#undef T_NK_BINBIN

#define T_NK_TILES(K)                                                          \
  T_LABEL(NkBinConst_##K) : {                                                  \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                      \
    regs[in->c] = in->imm;                                                     \
    pc += 2;                                                                   \
    T_NEXT();                                                                  \
  }                                                                            \
  T_LABEL(NkLoadBin_##K) : {                                                   \
    pc += 2;                                                                   \
    T_NK_LOAD(regs[in->dst], regs[in->a]);                                     \
    regs[in->c] = HB_ALU_##K(regs[in->aux & 0xffffu], regs[in->aux >> 16]);    \
    T_NEXT();                                                                  \
  }                                                                            \
  T_LABEL(NkBinLoad_##K) : {                                                   \
    pc += 2;                                                                   \
    regs[in->dst] = HB_ALU_##K(regs[in->a], regs[in->b]);                      \
    T_NK_LOAD(regs[in->c], regs[in->d]);                                       \
    T_NEXT();                                                                  \
  }                                                                            \
  T_LABEL(NkConstBinLoad_##K) : {                                              \
    pc += 3;                                                                   \
    regs[in->dst] = in->imm;                                                   \
    regs[in->c] = HB_ALU_##K(regs[in->aux & 0xffffu], regs[in->aux >> 16]);    \
    T_NK_LOAD(regs[in->b], regs[in->a]);                                       \
    T_NEXT();                                                                  \
  }
  HAUBERK_TOP_ALU_LIST(T_NK_TILES)
#undef T_NK_TILES

  T_LABEL(NkConst2) : {
    regs[in->dst] = in->imm;
    regs[in->c] = in->aux;
    pc += 2;
    T_NEXT();
  }
  T_LABEL(NkLoadConst) : {
    pc += 2;
    T_NK_LOAD(regs[in->dst], regs[in->a]);
    regs[in->c] = in->imm;
    T_NEXT();
  }

#if !HAUBERK_COMPUTED_GOTO
      default:
        crash_status = LaunchStatus::CrashInvalidInstr;
        finish();
        return ThreadStop::Crash;
    }
  }
#endif
  // Not reached: every handler ends in a jump, break, or return.
  crash_status = LaunchStatus::CrashInvalidInstr;
  finish();
  return ThreadStop::Crash;

#undef T_STEP1
#undef T_CHARGE
#undef T_CRASH
#undef T_NK_CRASH
#undef T_NK_LOAD
#undef T_DELEGATE
#undef T_LABEL
#undef T_NEXT
#undef T_DISPATCH_D
#undef T_SET
#undef T_NSET
#undef HB_CMP_LtI
#undef HB_CMP_LeI
#undef HB_CMP_GtI
#undef HB_CMP_GeI
#undef HB_CMP_LtU
#undef HB_CMP_LeU
#undef HB_CMP_GtU
#undef HB_CMP_GeU
#undef HB_CMP_LtF
#undef HB_CMP_LeF
#undef HB_CMP_GtF
#undef HB_CMP_GeF
#undef HB_CMP_EqW
#undef HB_CMP_NeW
#undef HB_CMP_EqF
#undef HB_CMP_NeF
#undef HB_ALU_AddW
#undef HB_ALU_SubW
#undef HB_ALU_MulW
#undef HB_ALU_AddF
#undef HB_ALU_SubF
#undef HB_ALU_MulF
#undef HB_ALU_DivF
#undef HB_ALU_MaxF
#undef HB_ALU_LtF
#undef HB_ALU_GtI
#undef HB_ALU_EqW
#undef HB_ALU_AndB
#undef HB_ALU_ShrA
#undef HB_ALU_LAndW
}

/// Engine dispatch for one thread time-slice: mode -1 is the reference
/// switch interpreter; modes 0..15 select the fast-path specialization on
/// (exec-count profiling, SIMT thread counting, hardware fault installed,
/// sanitizer shadow) so the common uninstrumented launch pays for none of
/// those checks; mode 16 is the threaded-code engine (plain launches under
/// ExecEngine::Threaded only).
ThreadStop BlockExec::step_thread(ThreadCtx& t, LaunchStatus& crash_status) {
  switch (fast_mode_) {
    case 0: return run_thread_fast<false, false, false, false>(t, crash_status);
    case 1: return run_thread_fast<true, false, false, false>(t, crash_status);
    case 2: return run_thread_fast<false, true, false, false>(t, crash_status);
    case 3: return run_thread_fast<true, true, false, false>(t, crash_status);
    case 4: return run_thread_fast<false, false, true, false>(t, crash_status);
    case 5: return run_thread_fast<true, false, true, false>(t, crash_status);
    case 6: return run_thread_fast<false, true, true, false>(t, crash_status);
    case 7: return run_thread_fast<true, true, true, false>(t, crash_status);
    case 8: return run_thread_fast<false, false, false, true>(t, crash_status);
    case 9: return run_thread_fast<true, false, false, true>(t, crash_status);
    case 10: return run_thread_fast<false, true, false, true>(t, crash_status);
    case 11: return run_thread_fast<true, true, false, true>(t, crash_status);
    case 12: return run_thread_fast<false, false, true, true>(t, crash_status);
    case 13: return run_thread_fast<true, false, true, true>(t, crash_status);
    case 14: return run_thread_fast<false, true, true, true>(t, crash_status);
    case 15: return run_thread_fast<true, true, true, true>(t, crash_status);
    case 16: return run_thread_threaded(t, crash_status);
    default: return run_thread(t, crash_status);
  }
}

LaunchStatus BlockExec::run(std::span<const kir::Value> args) {
  if (opts_.instr_exec_counts) exec_counts.assign(prog_.code.size(), 0);
  if (opts_.simt_cost)
    thread_counts.assign(static_cast<std::size_t>(threads_per_block_) * prog_.code.size(), 0);
  fast_mode_ = dec_ ? ((exec_counts.empty() ? 0 : 1) | (thread_counts.empty() ? 0 : 2) |
                       (dev_.has_fault() ? 4 : 0) | (shadow_ ? 8 : 0))
                    : -1;
  // The threaded engine only replaces the *plain* fast path (mode 0): any
  // instrumented launch keeps the fast engine's specializations, which stay
  // bitwise identical by construction.  Campaigns run plain.
  if (fast_mode_ == 0 && tcode_) fast_mode_ = 16;
  const std::uint32_t slots = prog_.num_slots;
  std::vector<std::uint32_t> reg_slab(
      static_cast<std::size_t>(threads_per_block_) * slots, 0u);
  std::vector<ThreadCtx> threads(threads_per_block_);

  for (std::uint32_t i = 0; i < threads_per_block_; ++i) {
    ThreadCtx& t = threads[i];
    t.regs = reg_slab.data() + static_cast<std::size_t>(i) * slots;
    t.tx = i % cfg_.block_x;
    t.ty = i / cfg_.block_x;
    t.linear = block_linear_ * threads_per_block_ + i;
    t.block_index = i;
    for (std::size_t p = 0; p < args.size(); ++p) t.regs[p] = args[p].bits;
  }

  for (;;) {
    std::uint32_t done = 0, at_barrier = 0;
    for (auto& t : threads) {
      if (t.done) {
        ++done;
        continue;
      }
      LaunchStatus crash = LaunchStatus::Ok;
      switch (step_thread(t, crash)) {
        case ThreadStop::Done: ++done; break;
        case ThreadStop::Barrier: ++at_barrier; break;
        case ThreadStop::Crash: return crash;
        case ThreadStop::Budget: return LaunchStatus::Hang;
      }
    }
    if (done == threads_per_block_) {
      finish_simt_cost();
      return LaunchStatus::Ok;
    }
    if (at_barrier > 0 && done > 0) {
      // Barrier deadlock: some threads exited while peers wait at a
      // __syncthreads.  Diagnose with the first waiter's barrier site (all
      // non-done threads are waiters — crash/budget stops returned above).
      const ThreadCtx* waiter = nullptr;
      const ThreadCtx* exited = nullptr;
      for (const auto& t : threads) {
        if (t.done) { if (!exited) exited = &t; }
        else if (!waiter) { waiter = &t; }
      }
      deadlock_pc = waiter->barrier_pc;
      deadlock_site = site_of(waiter->barrier_pc);
      if (shadow_)
        shadow_->on_divergence(waiter->barrier_pc, sites_[waiter->barrier_pc],
                               SanitizerReport::kNoPc, waiter->block_index,
                               exited->block_index, epoch_);
      return LaunchStatus::CrashBarrierDeadlock;
    }
    // All non-done threads are at the barrier: release and continue.  Before
    // releasing, the sanitizer checks the waiters actually sit at the *same*
    // barrier site — releasing threads from different __syncthreads sites is
    // divergence real hardware would deadlock or corrupt on.
    if (shadow_) {
      const ThreadCtx* first = nullptr;
      for (const auto& t : threads) {
        if (!first) { first = &t; continue; }
        if (t.barrier_pc != first->barrier_pc)
          shadow_->on_divergence(t.barrier_pc, sites_[t.barrier_pc], first->barrier_pc,
                                 t.block_index, first->block_index, epoch_);
      }
    }
    ++epoch_;
  }
}

void BlockExec::finish_simt_cost() {
  if (thread_counts.empty()) return;
  // Warp-serialized cost: for each warp, an instruction issues
  // max-over-lanes(count) times.  For structured control flow this equals
  // the classic SIMT stack cost: divergent branches serialize (per-path
  // maxima add) and loops run to the warp's longest trip count.
  const std::size_t n = prog_.code.size();
  const std::uint32_t warp = dev_.props().warp_size;
  for (std::uint32_t w0 = 0; w0 < threads_per_block_; w0 += warp) {
    const std::uint32_t w1 = std::min(threads_per_block_, w0 + warp);
    for (std::size_t pc = 0; pc < n; ++pc) {
      std::uint32_t mx = 0;
      for (std::uint32_t t = w0; t < w1; ++t)
        mx = std::max(mx, thread_counts[static_cast<std::size_t>(t) * n + pc]);
      simt_cycles += static_cast<std::uint64_t>(mx) * costs_[pc];
    }
  }
}

/// Order-dependent 64-bit combiner for the launch-plan fingerprint.
constexpr std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 29);
}

/// Fingerprint of everything the plan's contents depend on: the instruction
/// stream, the slot count, the register budget, the cost model, and the
/// engine kind (the threaded stream is only compiled for
/// ExecEngine::Threaded, so flipping set_engine() on a live device must
/// miss rather than serve a plan without it).  Hashed field-by-field (never
/// raw struct bytes, which would include indeterminate padding).
std::uint64_t plan_fingerprint(const kir::BytecodeProgram& program, const CostModel& cm,
                               std::uint32_t regs_per_thread, ExecEngine engine,
                               ecc::Scheme protection) noexcept {
  std::uint64_t h = fp_mix(0x48415542ULL, program.code.size());
  h = fp_mix(h, program.num_slots);
  h = fp_mix(h, regs_per_thread);
  h = fp_mix(h, static_cast<std::uint64_t>(engine));
  // Protection folds ECC surcharges into the cost vector and switches the
  // threaded compile off the flat-arena specializations; a plan built for
  // one mode must never be served to the other.
  h = fp_mix(h, static_cast<std::uint64_t>(protection));
  for (const Instr& in : program.code) {
    h = fp_mix(h, (static_cast<std::uint64_t>(in.op) << 56) |
                      (static_cast<std::uint64_t>(in.flags) << 48) |
                      (static_cast<std::uint64_t>(in.dst) << 32) |
                      (static_cast<std::uint64_t>(in.a) << 16) | in.b);
    h = fp_mix(h, (static_cast<std::uint64_t>(in.aux) << 32) | in.imm);
  }
  for (std::uint32_t v : {cm.alu, cm.fpu_addmul, cm.fpu_div, cm.sfu, cm.load_global,
                          cm.store_global, cm.load_shared, cm.store_shared, cm.atomic_global,
                          cm.barrier, cm.chk_xor, cm.dup_cmp, cm.range_check, cm.equal_check,
                          cm.chk_validate, cm.spill, cm.scatter_percent,
                          cm.hauberk_dup_percent, cm.control_block_per_launch, cm.ecc_check,
                          cm.ecc_encode, cm.ecc_scrub})
    h = fp_mix(h, v);
  return h;
}

}  // namespace

std::shared_ptr<const Device::LaunchPlan> Device::launch_plan(
    const kir::BytecodeProgram& program) {
  // The decoded stream is always built alongside the cost vector: decoding
  // is a single O(n) pass (trivial next to the spill analysis).  The
  // threaded-code stream is compiled only under ExecEngine::Threaded — the
  // engine kind is part of the cache key, so flipping set_engine() between
  // launches misses once per engine and can never serve a plan missing the
  // stream the new engine needs.
  auto build = [&] {
    auto plan = std::make_shared<LaunchPlan>();
    plan->costs = instruction_costs(program, cost_, props_.regs_per_thread,
                                    props_.protection != ecc::Scheme::None);
    plan->decoded = kir::decode_program(program, plan->costs);
    if (engine_ == ExecEngine::Threaded)
      plan->threaded =
          kir::compile_threaded(plan->decoded, program.num_slots,
                                props_.memory_model == MemoryModel::FlatGpu &&
                                    props_.protection == ecc::Scheme::None);
    return std::shared_ptr<const LaunchPlan>(std::move(plan));
  };
  if (!plan_cache_enabled_) {
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    return build();
  }
  const std::uint64_t key =
      plan_fingerprint(program, cost_, props_.regs_per_thread, engine_, props_.protection);
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    for (auto it = plan_cache_.begin(); it != plan_cache_.end(); ++it) {
      if (it->key == key && it->code_size == program.code.size()) {
        plan_hits_.fetch_add(1, std::memory_order_relaxed);
        PlanEntry hit = *it;
        plan_cache_.erase(it);
        plan_cache_.push_back(hit);  // LRU: refresh
        return hit.plan;
      }
    }
  }
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  auto plan = build();
  std::lock_guard<std::mutex> lk(plan_mu_);
  if (plan_cache_.size() >= kPlanCacheCapacity)
    plan_cache_.erase(plan_cache_.begin());  // evict least recently used
  plan_cache_.push_back(PlanEntry{key, program.code.size(), plan});
  return plan;
}

LaunchResult Device::launch(const kir::BytecodeProgram& program, const LaunchConfig& cfg,
                            std::span<const kir::Value> args, const LaunchOptions& opts) {
  LaunchResult res;
  if (disabled_) {
    res.status = LaunchStatus::DeviceDisabled;
    return res;
  }
  if (program.shared_mem_words > props_.shared_mem_words ||
      args.size() != program.num_params) {
    res.status = LaunchStatus::LaunchFailure;
    return res;
  }

  const auto plan = launch_plan(program);
  const std::vector<std::uint32_t>& costs = plan->costs;
  const bool sanitize = engine_ == ExecEngine::Sanitizer;
  // Corrections are counted by the memory itself (it scrubs each corrupted
  // codeword exactly once); the delta across the launch is this launch's
  // corrected count, deterministic because the set of pairs read is.
  const std::uint64_t ecc_before = mem_->ecc_corrected();

  const std::uint32_t num_blocks = cfg.grid_x * cfg.grid_y;
  std::atomic<std::uint32_t> next_block{0};
  std::atomic<std::uint64_t> cycles{0}, loop_cycles{0}, instructions{0}, simt_cycles{0};
  std::atomic<std::uint64_t> reports_dropped{0};
  std::atomic<bool> sdc{false};
  std::atomic<int> bad_status{static_cast<int>(LaunchStatus::Ok)};
  std::mutex profile_mu;
  if (opts.instr_exec_counts) opts.instr_exec_counts->assign(program.code.size(), 0);
  // Per-block report sinks, flattened in block order after the join, so the
  // sanitizer's report stream does not depend on worker scheduling.
  std::vector<std::vector<SanitizerReport>> block_reports(sanitize ? num_blocks : 0);
  // Deadlock diagnostics from the block whose failure won the status race;
  // written only by the CAS winner, read after the pool join (synchronized).
  std::int64_t deadlock_pc = -1, deadlock_site = -1;

  auto worker = [&] {
    for (;;) {
      // A kernel crash aborts the whole launch (the GPU runtime kills the grid).
      if (bad_status.load(std::memory_order_relaxed) != static_cast<int>(LaunchStatus::Ok))
        return;
      const std::uint32_t b = next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) return;
      BlockExec exec(*this, program, cfg, opts, costs, plan->decoded, plan->threaded,
                     engine_, b, sanitize ? &block_reports[b] : nullptr);
      const LaunchStatus st = exec.run(args);
      cycles.fetch_add(exec.cycles, std::memory_order_relaxed);
      loop_cycles.fetch_add(exec.loop_cycles, std::memory_order_relaxed);
      instructions.fetch_add(exec.instructions, std::memory_order_relaxed);
      simt_cycles.fetch_add(exec.simt_cycles, std::memory_order_relaxed);
      reports_dropped.fetch_add(exec.sanitizer_dropped(), std::memory_order_relaxed);
      if (exec.sdc) sdc.store(true, std::memory_order_relaxed);
      if (opts.instr_exec_counts) {
        std::lock_guard<std::mutex> lk(profile_mu);
        for (std::size_t i = 0; i < exec.exec_counts.size(); ++i)
          (*opts.instr_exec_counts)[i] += exec.exec_counts[i];
      }
      if (st != LaunchStatus::Ok) {
        // Keep the most severe (first observed) failure; crash > hang.
        int expected = static_cast<int>(LaunchStatus::Ok);
        if (bad_status.compare_exchange_strong(expected, static_cast<int>(st))) {
          deadlock_pc = exec.deadlock_pc;
          deadlock_site = exec.deadlock_site;
        }
        return;  // this worker stops; others finish their current block
      }
    }
  };

  const unsigned hw = common::WorkerPool::default_workers();
  unsigned nw = opts.max_workers > 0 ? static_cast<unsigned>(opts.max_workers) : hw;
  nw = std::min({nw, static_cast<unsigned>(num_blocks), static_cast<unsigned>(props_.num_sms)});
  if (nw <= 1) {
    worker();
  } else {
    // Reusable pool: created once, then fed every subsequent multi-worker
    // launch (the former per-launch spawn/join dominated small kernels).
    // The mutex also serializes concurrent multi-worker launches, which is
    // safe because workers claim blocks from this launch's own counter.
    std::lock_guard<std::mutex> lk(launch_pool_mu_);
    if (!launch_pool_ || launch_pool_->size() < nw)
      launch_pool_ = std::make_unique<common::WorkerPool>(std::max(nw, hw));
    launch_pool_->run(nw, [&](unsigned) { worker(); });
  }

  res.status = static_cast<LaunchStatus>(bad_status.load());
  res.sdc_alarm = sdc.load();
  res.deadlock_pc = deadlock_pc;
  res.deadlock_site = deadlock_site;
  if (sanitize) {
    std::size_t total = 0;
    for (const auto& v : block_reports) total += v.size();
    res.sanitizer_reports.reserve(total);
    for (const auto& v : block_reports)
      res.sanitizer_reports.insert(res.sanitizer_reports.end(), v.begin(), v.end());
    res.sanitizer_reports_dropped = reports_dropped.load();
  }
  res.cycles = cycles.load();
  res.loop_cycles = loop_cycles.load();
  res.instructions = instructions.load();
  res.simt_cycles = simt_cycles.load();
  res.threads = cfg.total_threads();
  // Per-correction scrub write-back: charged flat per corrected codeword
  // (the per-access check/encode cost is already folded into the plan's
  // static costs, so only the rare correction path is charged here).
  res.ecc_corrected = mem_->ecc_corrected() - ecc_before;
  res.cycles += res.ecc_corrected * cost_.ecc_scrub;
  // The control-block delivery is a host-side per-launch cost; it is charged
  // to the thread-cycle total only (simt_cycles measures kernel execution at
  // warp granularity and would be distorted by a flat host-side constant).
  if (opts.charge_control_block) res.cycles += cost_.control_block_per_launch;
  return res;
}

}  // namespace hauberk::gpusim
