#include "gpusim/ecc.hpp"

namespace hauberk::gpusim::ecc {

namespace {

// Data-bit columns of the extended Hamming (72,64) code in systematic form:
// the i-th non-power-of-two m in 3..71, with the overall-parity row (bit 7)
// added exactly when popcount(m) is even, so every column ends up odd.
consteval std::array<std::uint8_t, kDataBits> hamming_columns() {
  std::array<std::uint8_t, kDataBits> cols{};
  int n = 0;
  for (unsigned m = 3; n < kDataBits; ++m) {
    if ((m & (m - 1)) == 0) continue;  // power of two: a check-bit position
    cols[n++] = static_cast<std::uint8_t>(std::popcount(m) % 2 ? m : (m | 0x80u));
  }
  return cols;
}

// Hsiao odd-weight columns: all 56 weight-3 bytes, then the first 8
// weight-5 bytes, both in increasing numeric order.
consteval std::array<std::uint8_t, kDataBits> hsiao_columns() {
  std::array<std::uint8_t, kDataBits> cols{};
  int n = 0;
  for (int w : {3, 5})
    for (unsigned v = 0; v < 256 && n < kDataBits; ++v)
      if (std::popcount(v) == w) cols[n++] = static_cast<std::uint8_t>(v);
  return cols;
}

consteval Code make_code(std::array<std::uint8_t, kDataBits> data_cols) {
  Code c{};
  for (int k = 0; k < kDataBits; ++k) c.column[static_cast<std::size_t>(k)] = data_cols[static_cast<std::size_t>(k)];
  // Systematic encoding: a flipped check bit j shows up as syndrome bit j.
  for (int j = 0; j < kCheckBits; ++j)
    c.column[static_cast<std::size_t>(kDataBits + j)] = static_cast<std::uint8_t>(1u << j);
  for (int j = 0; j < kCheckBits; ++j) {
    std::uint64_t mask = 0;
    for (int i = 0; i < kDataBits; ++i)
      if ((data_cols[static_cast<std::size_t>(i)] >> j) & 1u) mask |= 1ull << i;
    c.row[static_cast<std::size_t>(j)] = mask;
  }
  for (auto& e : c.locate) e = kUncorrectable;
  c.locate[0] = kNoError;
  for (int k = 0; k < kCodeBits; ++k)
    c.locate[c.column[static_cast<std::size_t>(k)]] = static_cast<std::int8_t>(k);
  return c;
}

constexpr Code kHamming = make_code(hamming_columns());
constexpr Code kHsiao = make_code(hsiao_columns());

// The SEC-DED guarantees rest on the columns being distinct, nonzero and
// odd-weight; pin that at compile time for both schemes.
consteval bool columns_odd_and_distinct(const Code& c) {
  for (int a = 0; a < kCodeBits; ++a) {
    if (c.column[static_cast<std::size_t>(a)] == 0) return false;
    if (std::popcount(unsigned{c.column[static_cast<std::size_t>(a)]}) % 2 == 0) return false;
    for (int b = a + 1; b < kCodeBits; ++b)
      if (c.column[static_cast<std::size_t>(a)] == c.column[static_cast<std::size_t>(b)]) return false;
  }
  return true;
}
static_assert(columns_odd_and_distinct(kHamming));
static_assert(columns_odd_and_distinct(kHsiao));

}  // namespace

const Code& code(Scheme scheme) noexcept {
  return scheme == Scheme::Hsiao ? kHsiao : kHamming;
}

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::None: return "none";
    case Scheme::Hamming: return "hamming";
    case Scheme::Hsiao: return "hsiao";
  }
  return "none";
}

bool parse_scheme(std::string_view text, Scheme& out) noexcept {
  if (text == "none") out = Scheme::None;
  else if (text == "hamming") out = Scheme::Hamming;
  else if (text == "hsiao") out = Scheme::Hsiao;
  else return false;
  return true;
}

}  // namespace hauberk::gpusim::ecc
