// The authoritative cycle-cost layer for simulated bytecode.
//
// One place owns every cost rule the repo used to scatter across
// device.cpp's launch-plan build, the translator's spill reasoning, and
// ad-hoc bench accounting:
//
//   * CostModel           — the per-opcode cycle table (GT200-class relative
//                           throughput) plus spill / duplication / ECC
//                           surcharges,
//   * spill_mask()        — the register-allocation model: which slots spill
//                           when demand exceeds the per-thread budget,
//   * static_cost()       — per-instruction cycles including the R-Scatter /
//                           Hauberk-dup discounts, ECC surcharge, and spill
//                           round trips,
//   * instruction_costs() — the full per-pc cost vector a launch plan (or a
//                           static estimator) folds against execution counts,
//   * classify()          — attribution of an instruction to the overhead
//                           anatomy categories behind Fig. 13's bars.
//
// Device::launch_plan() delegates here, so predicted and measured cycles
// come from the same table by construction.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "kir/bytecode.hpp"

namespace hauberk::gpusim {

/// Per-instruction cycle costs.  Values model relative throughput of a
/// GT200-class part (FP32 MAD pipe, SFU transcendentals, uncoalesced-average
/// global memory); absolute numbers are not calibrated — the paper's
/// evaluation reasons about *relative* overhead.
struct CostModel {
  std::uint32_t alu = 1;            ///< integer/pointer ops, moves, branches
  std::uint32_t fpu_addmul = 4;     ///< f32 add/sub/mul/min/max/compare
  std::uint32_t fpu_div = 20;       ///< f32 div, i32 div/mod
  std::uint32_t sfu = 16;           ///< sqrt/rsqrt/exp/log/sin/cos
  std::uint32_t load_global = 24;   ///< coalesced-average access
  std::uint32_t store_global = 24;
  std::uint32_t load_shared = 4;
  std::uint32_t store_shared = 4;
  std::uint32_t atomic_global = 80;
  std::uint32_t barrier = 8;
  std::uint32_t chk_xor = 1;        ///< Hauberk checksum update (one XOR)
  std::uint32_t dup_cmp = 2;        ///< compare + conditional set
  std::uint32_t range_check = 36;   ///< FP value vs up to 3 ranges + CB access
  std::uint32_t equal_check = 6;
  std::uint32_t chk_validate = 12;
  std::uint32_t spill = 8;          ///< extra per access to a spilled register
  std::uint32_t scatter_percent = 85;  ///< cost of R-Scatter duplicated instrs (% of base)
  /// Cost of Hauberk's non-loop duplicated computation (% of base): the
  /// duplicate issues in the ILP slack of the original latency-bound
  /// sequential code (this is what makes the paper's RPES overhead ~60%
  /// despite a ~75% sequential share).
  std::uint32_t hauberk_dup_percent = 75;
  std::uint32_t control_block_per_launch = 2000;  ///< CPU<->GPU control block delivery
  /// Protected-memory (ECC) surcharges, charged only when DeviceProps::
  /// protection is on.  The EDC syndrome check rides every global read and
  /// the encoder every global write (folded into the static per-instruction
  /// cost at plan build, so the hot path never branches on them); a
  /// correction additionally pays the scrub write-back per corrected pair.
  std::uint32_t ecc_check = 2;    ///< syndrome check per global load
  std::uint32_t ecc_encode = 2;   ///< check-bit encode per global store
  std::uint32_t ecc_scrub = 120;  ///< array write-back per corrected codeword
};

/// Overhead-anatomy attribution of one instruction (the categories behind
/// Fig. 13's bars and bench_overhead_breakdown's columns).
enum class CostClass : std::uint8_t {
  Program,      ///< the original kernel computation
  Dup,          ///< duplicated non-loop recompute (Fig. 8(c) step ii / R-Scatter)
  Check,        ///< detector library calls (checksum, dup compare, range check)
  DetectorAux,  ///< loop-detector bookkeeping (accumulators, counters, guards)
  Measurement,  ///< profiler/FI hooks — free, excluded from every total
};

[[nodiscard]] CostClass classify(const kir::Instr& in) noexcept;
[[nodiscard]] const char* cost_class_name(CostClass c) noexcept;

/// Register-allocation model: when the kernel's register demand exceeds the
/// per-thread budget, the *least frequently accessed* values are spilled to
/// local memory (loop-nested accesses weighted heavily), as a real allocator
/// would.  Every access to a spilled slot then pays CostModel::spill extra
/// cycles.  Returns one flag per value slot.
[[nodiscard]] std::vector<bool> spill_mask(const kir::BytecodeProgram& program,
                                           std::uint32_t regs_per_thread);

/// Per-instruction static cost including register-spill surcharge.  `ecc`
/// (device has protected memory) folds the per-access EDC-check/encode
/// surcharge into every global access right here at plan build, so the
/// engines' hot paths never branch on the protection mode.
[[nodiscard]] std::uint32_t static_cost(const kir::Instr& in, const CostModel& cm,
                                        const std::vector<bool>& spilled, bool ecc);

/// The full cost vector (one entry per bytecode pc): spill analysis plus
/// static_cost of every instruction.  This is exactly what a Device launch
/// plan charges per execution, exposed so static estimators predict with
/// the same table the simulator measures with.
[[nodiscard]] std::vector<std::uint32_t> instruction_costs(
    const kir::BytecodeProgram& program, const CostModel& cm,
    std::uint32_t regs_per_thread, bool ecc);

constexpr std::size_t kNumCostClasses = 5;

/// Per-CostClass totals over a program.  From static_breakdown the entries
/// are per-pc (each instruction counted once); from weighted_breakdown they
/// are per-execution (folded against an interpreter count vector), which is
/// the Fig. 13 overhead-anatomy view bench_overhead_breakdown prints.
struct CostBreakdown {
  std::array<std::uint64_t, kNumCostClasses> instructions{};
  std::array<std::uint64_t, kNumCostClasses> cycles{};

  [[nodiscard]] std::uint64_t total_instructions() const noexcept;
  [[nodiscard]] std::uint64_t total_cycles() const noexcept;
  [[nodiscard]] std::uint64_t at(CostClass c, bool cycles_view) const noexcept;
};

[[nodiscard]] CostBreakdown static_breakdown(const kir::BytecodeProgram& program,
                                             const CostModel& cm,
                                             std::uint32_t regs_per_thread, bool ecc);

/// `counts` is a per-pc execution-count vector (LaunchOptions::
/// instr_exec_counts); entries beyond its size count as zero.
[[nodiscard]] CostBreakdown weighted_breakdown(const kir::BytecodeProgram& program,
                                               const CostModel& cm,
                                               std::uint32_t regs_per_thread, bool ecc,
                                               std::span<const std::uint64_t> counts);

}  // namespace hauberk::gpusim
