// (72,64) SEC-DED codeword schemes for the protected-memory mode.
//
// The paper's GPUs predate Fermi ECC; this module models the hardware
// protection that arrived after it so the SWIFI campaigns can compare
// hardware ECC against Hauberk's software detectors (ROADMAP: ECC/EDC
// backend).  Two classic single-error-correcting, double-error-detecting
// codes over 64 data bits + 8 check bits:
//
//  * Hamming — the extended Hamming (72,64) code in systematic form.  Data
//    bit i maps to the i-th non-power-of-two position m in 3..71 of the
//    classic construction; its parity-check column is m itself when
//    popcount(m) is odd, else m with bit 7 (the overall-parity row) set.
//
//  * Hsiao — the odd-weight-column code from Hsiao's 1970 paper: the 56
//    weight-3 bytes (in increasing numeric order) plus the first 8 weight-5
//    bytes.  Minimum-weight columns mean fewer XOR terms per check bit in
//    real silicon; here the schemes cost the same and differ only in their
//    H matrix (and therefore their golden check bytes).
//
// Both constructions give every one of the 72 code bits (64 data + 8 check,
// the check columns being the unit vectors) a distinct odd-weight column.
// Odd columns make the algebra airtight: a single-bit error produces a
// syndrome equal to its column (odd weight -> nonzero, found in the locate
// table -> corrected), while a double-bit error produces the XOR of two odd
// columns — even weight, so never zero and never itself a column -> always
// flagged uncorrectable.  The exhaustive sweeps in tests/test_ecc.cpp walk
// all 72 single flips and all 72*71/2 double flips per scheme to pin this.
//
// Encoding is systematic: the stored check byte is just encode(data), one
// 64-bit parity (popcount) per check bit.  The syndrome of a stored pair is
// encode(data) ^ check; decode() is a 256-entry table lookup.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string_view>

namespace hauberk::gpusim::ecc {

/// Memory-protection policy of a DeviceMemory (and the device that owns it).
enum class Scheme : std::uint8_t { None = 0, Hamming = 1, Hsiao = 2 };

constexpr int kDataBits = 64;   ///< data bits per codeword (a pair of arena words)
constexpr int kCheckBits = 8;   ///< check bits per codeword (one shadow byte)
constexpr int kCodeBits = 72;   ///< total code bits a fault can land in

constexpr std::int8_t kNoError = -1;        ///< decode: syndrome zero
constexpr std::int8_t kUncorrectable = -2;  ///< decode: double (or worse) error

/// One scheme's tables: H-matrix rows for encoding, per-bit syndrome columns
/// for the tests/injector, and the syndrome -> code-bit locate table.
struct Code {
  std::array<std::uint64_t, kCheckBits> row;  ///< data bits feeding check bit j
  std::array<std::uint8_t, kCodeBits> column; ///< syndrome of a flip at code bit k
  std::array<std::int8_t, 256> locate;        ///< syndrome -> code bit / kNoError / kUncorrectable
};

/// The tables for a real scheme (must not be called with Scheme::None).
[[nodiscard]] const Code& code(Scheme scheme) noexcept;

/// Check byte for a 64-bit data word: one parity per H-matrix row.
[[nodiscard]] constexpr std::uint8_t encode(const Code& c, std::uint64_t data) noexcept {
  std::uint8_t check = 0;
  for (int j = 0; j < kCheckBits; ++j)
    check |= static_cast<std::uint8_t>((std::popcount(data & c.row[j]) & 1) << j);
  return check;
}

struct Decoded {
  std::uint64_t data = 0;    ///< data after any correction
  std::uint8_t check = 0;    ///< check bits after any correction
  std::int8_t bit = kNoError;  ///< corrected code bit, kNoError, or kUncorrectable
};

/// EDC check + SEC decode of a stored (data, check) pair.
[[nodiscard]] constexpr Decoded decode(const Code& c, std::uint64_t data,
                                       std::uint8_t check) noexcept {
  const auto syn = static_cast<std::uint8_t>(encode(c, data) ^ check);
  if (syn == 0) return {data, check, kNoError};
  const std::int8_t pos = c.locate[syn];
  if (pos == kUncorrectable) return {data, check, kUncorrectable};
  if (pos < kDataBits) return {data ^ (1ull << pos), check, pos};
  return {data, static_cast<std::uint8_t>(check ^ (1u << (pos - kDataBits))), pos};
}

/// Canonical spelling accepted by --protection and printed in reports.
[[nodiscard]] const char* scheme_name(Scheme scheme) noexcept;

/// Parse a --protection value; returns false (out untouched) on any string
/// that is not one of none|hamming|hsiao.
[[nodiscard]] bool parse_scheme(std::string_view text, Scheme& out) noexcept;

}  // namespace hauberk::gpusim::ecc
