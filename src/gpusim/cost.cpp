#include "gpusim/cost.hpp"

#include <algorithm>

namespace hauberk::gpusim {

namespace {

using kir::Instr;
using kir::OpCode;

constexpr std::uint32_t aux_op(std::uint32_t aux) noexcept { return aux & 0xffffu; }
constexpr kir::DType aux_type(std::uint32_t aux) noexcept {
  return static_cast<kir::DType>((aux >> 16) & 0xffu);
}

bool is_check_op(OpCode op) noexcept {
  switch (op) {
    case OpCode::ChkXor:
    case OpCode::ChkValidate:
    case OpCode::DupCmp:
    case OpCode::RangeCheck:
    case OpCode::EqualCheck:
      return true;
    default:
      return false;
  }
}

}  // namespace

CostClass classify(const kir::Instr& in) noexcept {
  if (is_check_op(in.op)) return CostClass::Check;
  if (in.flags & (kir::kInstrHauberkDup | kir::kInstrScatter)) return CostClass::Dup;
  if (in.flags & kir::kInstrDetectorAux) return CostClass::DetectorAux;
  if (in.op == OpCode::FIHook || in.op == OpCode::CountExec || in.op == OpCode::ProfileVal)
    return CostClass::Measurement;
  return CostClass::Program;
}

const char* cost_class_name(CostClass c) noexcept {
  switch (c) {
    case CostClass::Program: return "program";
    case CostClass::Dup: return "dup";
    case CostClass::Check: return "check";
    case CostClass::DetectorAux: return "detector-aux";
    case CostClass::Measurement: return "measurement";
  }
  return "?";
}

std::vector<bool> spill_mask(const kir::BytecodeProgram& program,
                             std::uint32_t regs_per_thread) {
  std::vector<bool> spilled(program.num_slots, false);
  if (program.num_slots <= regs_per_thread) return spilled;
  std::vector<std::uint64_t> weight(program.num_slots, 0);
  auto touch = [&](std::uint16_t slot, std::uint64_t w) { weight[slot] += w; };
  for (const Instr& in : program.code) {
    const std::uint64_t w = (in.flags & kir::kInstrInLoop) ? 64 : 1;
    switch (in.op) {
      case OpCode::Const: case OpCode::Builtin: touch(in.dst, w); break;
      case OpCode::Mov: case OpCode::Un: case OpCode::LoadG: case OpCode::LoadS:
        touch(in.dst, w); touch(in.a, w); break;
      case OpCode::Bin: touch(in.dst, w); touch(in.a, w); touch(in.b, w); break;
      case OpCode::Select:
        touch(in.dst, w); touch(in.a, w); touch(in.b, w);
        touch(static_cast<std::uint16_t>(in.imm), w); break;
      case OpCode::StoreG: case OpCode::StoreS: case OpCode::AtomicAddG:
        touch(in.a, w); touch(in.b, w); break;
      case OpCode::Jz: case OpCode::RangeCheck: touch(in.a, w); break;
      case OpCode::ChkXor: touch(in.dst, w); touch(in.a, w); break;
      case OpCode::ChkValidate: touch(in.dst, w); break;
      case OpCode::DupCmp: case OpCode::EqualCheck: touch(in.a, w); touch(in.b, w); break;
      default: break;
    }
  }
  std::vector<std::uint16_t> order(program.num_slots);
  for (std::uint16_t s = 0; s < program.num_slots; ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::uint16_t a, std::uint16_t b) {
    return weight[a] != weight[b] ? weight[a] < weight[b] : a < b;
  });
  const std::uint32_t to_spill = program.num_slots - regs_per_thread;
  for (std::uint32_t i = 0; i < to_spill; ++i) spilled[order[i]] = true;
  return spilled;
}

std::uint32_t static_cost(const Instr& in, const CostModel& cm,
                          const std::vector<bool>& spilled, bool ecc) {
  std::uint32_t base = 0;
  switch (in.op) {
    case OpCode::Nop: base = 0; break;
    case OpCode::Const:
    case OpCode::Mov:
    case OpCode::Builtin:
    case OpCode::Select:
    case OpCode::Jmp:
    case OpCode::Jz:
      base = cm.alu;
      break;
    case OpCode::Un: {
      const auto op = static_cast<kir::UnOp>(aux_op(in.aux));
      switch (op) {
        case kir::UnOp::Sqrt: case kir::UnOp::Rsqrt: case kir::UnOp::Exp:
        case kir::UnOp::Log: case kir::UnOp::Sin: case kir::UnOp::Cos:
          base = cm.sfu; break;
        default:
          base = aux_type(in.aux) == kir::DType::F32 ? cm.fpu_addmul : cm.alu;
      }
      break;
    }
    case OpCode::Bin: {
      const auto op = static_cast<kir::BinOp>(aux_op(in.aux));
      const bool f = aux_type(in.aux) == kir::DType::F32;
      if (op == kir::BinOp::Div || op == kir::BinOp::Mod) base = cm.fpu_div;
      else base = f ? cm.fpu_addmul : cm.alu;
      break;
    }
    case OpCode::LoadG: base = cm.load_global + (ecc ? cm.ecc_check : 0); break;
    case OpCode::StoreG: base = cm.store_global + (ecc ? cm.ecc_encode : 0); break;
    case OpCode::LoadS: base = cm.load_shared; break;
    case OpCode::StoreS: base = cm.store_shared; break;
    case OpCode::AtomicAddG:
      base = cm.atomic_global + (ecc ? cm.ecc_check + cm.ecc_encode : 0);
      break;
    case OpCode::Barrier: base = cm.barrier; break;
    case OpCode::Halt: base = 0; break;
    case OpCode::ChkXor: base = cm.chk_xor; break;
    case OpCode::ChkValidate: base = cm.chk_validate; break;
    case OpCode::DupCmp: base = cm.dup_cmp; break;
    case OpCode::RangeCheck: base = cm.range_check; break;
    case OpCode::EqualCheck: base = cm.equal_check; break;
    // Measurement-only hooks are free: the paper's FT overhead numbers come
    // from the FT binary, which contains no profiler/FI code.
    case OpCode::ProfileVal:
    case OpCode::CountExec:
    case OpCode::FIHook:
      return 0;
  }
  if (in.flags & kir::kInstrScatter) {
    // R-Scatter duplicates execute in otherwise-idle issue slots/lanes and
    // keep their data there too: discounted cost (rounded up — a duplicated
    // instruction is never free), no spill surcharge.
    return (base * cm.scatter_percent + 99) / 100;
  }
  if (in.flags & kir::kInstrHauberkDup)
    base = (base * cm.hauberk_dup_percent + 99) / 100;  // spill surcharge still applies

  // Spill surcharge: every access to a spilled register costs a
  // local-memory round trip.
  std::uint32_t spills = 0;
  auto reg_operand = [&](std::uint16_t slot) {
    if (spilled[slot]) ++spills;
  };
  switch (in.op) {
    case OpCode::Const: case OpCode::Builtin:
      reg_operand(in.dst); break;
    case OpCode::Mov: case OpCode::Un:
      reg_operand(in.dst); reg_operand(in.a); break;
    case OpCode::Bin:
      reg_operand(in.dst); reg_operand(in.a); reg_operand(in.b); break;
    case OpCode::Select:
      reg_operand(in.dst); reg_operand(in.a); reg_operand(in.b);
      reg_operand(static_cast<std::uint16_t>(in.imm));
      break;
    case OpCode::LoadG: case OpCode::LoadS:
      reg_operand(in.dst); reg_operand(in.a); break;
    case OpCode::StoreG: case OpCode::StoreS: case OpCode::AtomicAddG:
      reg_operand(in.a); reg_operand(in.b); break;
    case OpCode::Jz: case OpCode::RangeCheck:
      reg_operand(in.a); break;
    case OpCode::ChkXor:
      reg_operand(in.dst); reg_operand(in.a); break;
    case OpCode::ChkValidate:
      reg_operand(in.dst); break;
    case OpCode::DupCmp: case OpCode::EqualCheck:
      reg_operand(in.a); reg_operand(in.b); break;
    default: break;
  }
  return base + spills * cm.spill;
}

std::vector<std::uint32_t> instruction_costs(const kir::BytecodeProgram& program,
                                             const CostModel& cm,
                                             std::uint32_t regs_per_thread, bool ecc) {
  const std::vector<bool> spilled = spill_mask(program, regs_per_thread);
  std::vector<std::uint32_t> costs(program.code.size());
  for (std::size_t i = 0; i < program.code.size(); ++i)
    costs[i] = static_cost(program.code[i], cm, spilled, ecc);
  return costs;
}

std::uint64_t CostBreakdown::total_instructions() const noexcept {
  std::uint64_t t = 0;
  for (std::size_t c = 0; c < kNumCostClasses; ++c)
    if (static_cast<CostClass>(c) != CostClass::Measurement) t += instructions[c];
  return t;
}

std::uint64_t CostBreakdown::total_cycles() const noexcept {
  std::uint64_t t = 0;
  for (const std::uint64_t v : cycles) t += v;
  return t;
}

std::uint64_t CostBreakdown::at(CostClass c, bool cycles_view) const noexcept {
  const auto i = static_cast<std::size_t>(c);
  return cycles_view ? cycles[i] : instructions[i];
}

CostBreakdown static_breakdown(const kir::BytecodeProgram& program, const CostModel& cm,
                               std::uint32_t regs_per_thread, bool ecc) {
  const std::vector<std::uint32_t> costs =
      instruction_costs(program, cm, regs_per_thread, ecc);
  CostBreakdown bd;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const auto c = static_cast<std::size_t>(classify(program.code[i]));
    bd.instructions[c] += 1;
    bd.cycles[c] += costs[i];
  }
  return bd;
}

CostBreakdown weighted_breakdown(const kir::BytecodeProgram& program, const CostModel& cm,
                                 std::uint32_t regs_per_thread, bool ecc,
                                 std::span<const std::uint64_t> counts) {
  const std::vector<std::uint32_t> costs =
      instruction_costs(program, cm, regs_per_thread, ecc);
  CostBreakdown bd;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::uint64_t n = i < counts.size() ? counts[i] : 0;
    const auto c = static_cast<std::size_t>(classify(program.code[i]));
    bd.instructions[c] += n;
    bd.cycles[c] += n * costs[i];
  }
  return bd;
}

}  // namespace hauberk::gpusim
