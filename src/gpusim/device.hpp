// The simulated GPGPU device: properties, cycle cost model, hardware fault
// model, launch configuration/result types, and the Device facade.
//
// The device executes kernel bytecode over a CUDA-style grid of thread
// blocks.  Blocks are scheduled across worker threads (one per simulated SM,
// capped at host concurrency); threads within a block run to the next
// barrier in turn.  All timing is a deterministic cycle model: each
// instruction charges a cost from CostModel, attributed to loop or non-loop
// source code (Fig. 4) and to R-Scatter duplicated code where applicable
// (Fig. 13).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "gpusim/cost.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/sanitizer.hpp"
#include "kir/bytecode.hpp"
#include "kir/threaded.hpp"
#include "kir/value.hpp"

namespace hauberk::common {
class WorkerPool;
}

namespace hauberk::gpusim {

/// Hardware resource limits, loosely modeled on the paper's GT200-class
/// device (Tesla S1070): 16 KiB shared memory per block and a per-thread
/// register budget.  Exceeding shared memory is a launch (compile) failure —
/// this is why TPACF cannot be built with R-Scatter (Section IX.A).
/// Exceeding the register budget is legal but spills: each access to a
/// spilled register charges CostModel::spill extra cycles (Section V.A).
struct DeviceProps {
  std::uint32_t num_sms = 30;
  std::uint32_t warp_size = 32;
  std::uint32_t regs_per_thread = 28;
  std::uint32_t shared_mem_words = 4096;  // 16 KiB
  std::uint32_t global_mem_words = 16u << 20;
  MemoryModel memory_model = MemoryModel::FlatGpu;
  /// Hardware memory protection on global memory (gpusim/ecc.hpp): a
  /// (72,64) SEC-DED code checked on every device-side read.  The paper's
  /// GT200-class parts have none; Hamming/Hsiao model the Fermi-and-later
  /// ECC the hardware-vs-Hauberk study compares against.
  ecc::Scheme protection = ecc::Scheme::None;
};

// CostModel (the per-opcode cycle table) and the spill/static-cost helpers
// live in the dedicated cost layer; the device consumes them verbatim so
// launch plans and static estimators can never disagree on a price.
// (gpusim/cost.hpp is included above.)

/// Simulated hardware fault in the device itself (used by the BIST/guardian
/// recovery path, Section VI): corrupts results of matching operations.
struct DeviceFaultModel {
  enum class Kind { None, Transient, Intermittent, Permanent };
  enum class Component { ALU, FPU, RegisterFile };

  Kind kind = Kind::None;
  Component component = Component::ALU;
  std::uint32_t sm = 0;           ///< affected streaming multiprocessor
  std::uint32_t mask = 1;         ///< error bits XORed into results
  std::uint64_t period = 1;       ///< corrupt every `period`-th matching op
  std::uint64_t duration_ops = 0; ///< Transient/Intermittent: stop after this many corruptions
};

enum class LaunchStatus : std::uint8_t {
  Ok,
  CrashOutOfBounds,      ///< invalid global memory access
  CrashSharedOutOfBounds,
  CrashDivByZero,        ///< integer division by zero
  CrashInvalidInstr,     ///< undecodable instruction (code-segment fault)
  CrashBarrierDeadlock,  ///< thread exited while others wait at a barrier
  Hang,                  ///< per-thread watchdog budget exceeded
  LaunchFailure,         ///< resource violation (e.g. shared memory too large)
  DeviceDisabled,        ///< guardian disabled this device
  EccUncorrectable,      ///< protected memory detected a double-bit error
                         ///  (the machine-check analog: kernel is killed,
                         ///  but the corruption never reaches results)
};

[[nodiscard]] const char* launch_status_name(LaunchStatus s) noexcept;

/// Interpreter engine selection.
///
///  * Fast — predecoded warp-interpreter path: runs threads over the
///    kir::DecodedProgram stream cached with the launch plan (flat
///    type-resolved opcodes, costs pre-folded, per-launch invariants such as
///    memory bounds and profiling/fault modes hoisted out of the dispatch
///    loop).  The default.
///  * Reference — the original switch interpreter over raw bytecode, kept as
///    the behavioral oracle.
///  * Sanitizer — the fast path with shared-memory shadow instrumentation
///    (racecheck analog, see gpusim/sanitizer.hpp): detects WW/RW races
///    between barrier epochs, barrier divergence, out-of-bounds and
///    uninitialized shared reads, and fills LaunchResult::sanitizer_reports.
///    Opt-in and diagnostic-only: it adds observations, never behavior.
///  * Threaded — threaded-code engine: the DecodedProgram is further
///    compiled per launch plan into a kir::ThreadedProgram (fused
///    superinstructions, folded loop constants, one countdown budget) and
///    dispatched with computed goto when the toolchain supports
///    labels-as-values (CMake option HAUBERK_COMPUTED_GOTO; a portable
///    switch fallback is bitwise identical).  Plain launches only — any
///    instrumented mode (exec counts, SIMT costing, hardware fault model,
///    sanitizer shadow) runs through the fast engine's specialized paths,
///    so campaigns get the speed and diagnostics keep one implementation.
///
/// All engines are bitwise identical on every observable: registers,
/// memory, cycle/instruction counts, SIMT cost, crash/hang status, detector
/// verdicts, and FI outcomes.  tests/test_differential_fuzz.cpp holds this
/// guarantee in place with a seeded program generator; any divergence is a
/// bug in the fast/sanitizer/threaded engine, never an accepted tradeoff.
enum class ExecEngine : std::uint8_t { Fast, Reference, Sanitizer, Threaded };

[[nodiscard]] const char* exec_engine_name(ExecEngine e) noexcept;
[[nodiscard]] constexpr bool is_crash(LaunchStatus s) noexcept {
  return s != LaunchStatus::Ok && s != LaunchStatus::Hang;
}

struct LaunchResult {
  LaunchStatus status = LaunchStatus::Ok;
  bool sdc_alarm = false;          ///< any Hauberk detector set the SDC bit
  std::uint64_t cycles = 0;        ///< modeled kernel time
  std::uint64_t loop_cycles = 0;   ///< portion attributed to loop code (Fig. 4)
  std::uint64_t instructions = 0;
  std::uint64_t threads = 0;
  /// SIMT warp-serialized cycles (filled when LaunchOptions::simt_cost):
  /// per warp, an instruction costs once per *warp* execution, and divergent
  /// paths serialize — sum over pc of cost[pc] * max-per-warp execution
  /// count, which is exact for structured control flow.  Fault-free Hauberk
  /// checks are warp-uniform, so simt_cycles shows they add no divergence
  /// penalty (Section V.A step (iii)).
  std::uint64_t simt_cycles = 0;

  /// Single-bit errors the protected memory corrected (and scrubbed) during
  /// this launch; 0 when DeviceProps::protection is off.  Each corrected
  /// codeword also charges CostModel::ecc_scrub into `cycles`.  An
  /// uncorrectable (double-bit) error instead kills the launch with
  /// LaunchStatus::EccUncorrectable.
  std::uint64_t ecc_corrected = 0;

  /// CrashBarrierDeadlock diagnostics (any engine): the pc of the barrier
  /// the waiting threads were stuck at and its dense sanitizer site id
  /// (kir::DecodedProgram::sanitizer_sites); -1 when the launch did not
  /// deadlock.  With multiple launch workers the fields come from the block
  /// whose failure won the status race, same as `status` itself.
  std::int64_t deadlock_pc = -1;
  std::int64_t deadlock_site = -1;

  /// ExecEngine::Sanitizer findings, concatenated per block in block order
  /// (deterministic and worker-count-invariant for crash-free launches and
  /// for single-worker launches, the campaign configuration).  Always empty
  /// on the other engines.
  std::vector<SanitizerReport> sanitizer_reports;
  /// Reports suppressed by the per-block cap (SharedShadow::kMaxReportsPerBlock).
  std::uint64_t sanitizer_reports_dropped = 0;
};

/// Callbacks from the interpreter into the Hauberk runtime (range checks,
/// profiling) and the SWIFI injector.  Implementations must be thread-safe:
/// blocks may execute on concurrent workers.
class LaunchHooks {
 public:
  virtual ~LaunchHooks() = default;
  /// Loop-detector range check; return true when the value is an outlier
  /// (sets the kernel's SDC bit).  `detector` indexes program.detectors.
  virtual bool check_range(int detector, kir::Value value) {
    (void)detector; (void)value;
    return false;
  }
  /// Iteration-count invariant failed (HauberkCheckEqual mismatch).
  virtual void equal_check_failed(int detector) { (void)detector; }
  /// Profiler-mode sample of a detector value.
  virtual void profile_value(int detector, kir::Value value) { (void)detector; (void)value; }
  /// Profiler-mode execution count of an FI site for one thread.
  virtual void count_exec(std::uint32_t site_index, std::uint32_t thread_linear) {
    (void)site_index; (void)thread_linear;
  }
  /// FI-mode hook: may corrupt `value` (the just-defined variable).
  /// Returns true if a fault was injected (for activation accounting).
  virtual bool fi_hook(std::uint32_t site_index, std::uint32_t thread_linear,
                       std::uint32_t& value_bits) {
    (void)site_index; (void)thread_linear; (void)value_bits;
    return false;
  }
};

struct LaunchConfig {
  std::uint32_t grid_x = 1, grid_y = 1;
  std::uint32_t block_x = 1, block_y = 1;
  [[nodiscard]] std::uint64_t total_threads() const noexcept {
    return static_cast<std::uint64_t>(grid_x) * grid_y * block_x * block_y;
  }
};

struct LaunchOptions {
  LaunchHooks* hooks = nullptr;
  /// Per-thread instruction budget; exceeding it reports Hang (the
  /// guardian's preemptive hang detection, Section VI(i), maps its
  /// 10x-previous-time rule onto this budget).
  std::uint64_t watchdog_instructions = 50'000'000;
  int max_workers = 0;  ///< 0 = hardware concurrency
  bool charge_control_block = false;  ///< add control-block delivery overhead
  /// When non-null, resized to program.code.size() and filled with the
  /// number of times each instruction executed (all threads summed) — the
  /// basis for cycle-breakdown profiling (see bench_overhead_breakdown).
  std::vector<std::uint64_t>* instr_exec_counts = nullptr;
  /// Per-block sanitizer report cap (ExecEngine::Sanitizer only): further
  /// hazards in a block only bump LaunchResult::sanitizer_reports_dropped.
  /// 0 is clamped to 1.
  std::size_t sanitize_report_cap = SharedShadow::kMaxReportsPerBlock;
  /// Compute LaunchResult::simt_cycles (per-thread counting; slower).
  bool simt_cost = false;
};

/// A simulated GPU (or CPU when props.memory_model == PagedCpu).
class Device {
 public:
  explicit Device(DeviceProps props = {});
  ~Device();

  [[nodiscard]] const DeviceProps& props() const noexcept { return props_; }
  [[nodiscard]] DeviceMemory& mem() noexcept { return *mem_; }
  [[nodiscard]] const DeviceMemory& mem() const noexcept { return *mem_; }
  [[nodiscard]] CostModel& cost_model() noexcept { return cost_; }

  /// Reset device memory between program runs.
  void reset_memory() { mem_->reset(); }

  /// Execute a kernel.  Deterministic: result (including cycle counts) is
  /// independent of worker scheduling.
  LaunchResult launch(const kir::BytecodeProgram& program, const LaunchConfig& cfg,
                      std::span<const kir::Value> args, const LaunchOptions& opts = {});

  // Hardware fault model (BIST / guardian experiments).
  void install_fault(const DeviceFaultModel& fm);
  void clear_fault();
  [[nodiscard]] bool has_fault() const noexcept {
    return fault_.kind != DeviceFaultModel::Kind::None;
  }
  [[nodiscard]] const DeviceFaultModel& fault() const noexcept { return fault_; }

  /// Guardian-controlled availability (Section VI: a faulty device is
  /// disabled and periodically re-tested with exponential backoff).
  void set_disabled(bool d) noexcept { disabled_ = d; }
  [[nodiscard]] bool disabled() const noexcept { return disabled_; }

  std::mutex& atomic_mutex() noexcept { return atomic_mu_; }

  /// Interpreter engine (see ExecEngine).  Takes effect on the next launch;
  /// results are bitwise identical either way, only wall-clock changes.
  void set_engine(ExecEngine e) noexcept { engine_ = e; }
  [[nodiscard]] ExecEngine engine() const noexcept { return engine_; }

  // --- launch-plan cache ---
  // The spill analysis, per-instruction cost vector and compiled streams
  // depend only on the program, the cost model, the register budget and the
  // selected engine, yet a SWIFI campaign launches the same program
  // thousands of times.  The device therefore caches recent plans keyed by
  // a fingerprint of those inputs; mutating cost_model() or flipping
  // set_engine() simply changes the fingerprint, so stale entries (e.g. a
  // plan without the threaded stream) can never be served.
  void set_plan_cache_enabled(bool on) noexcept { plan_cache_enabled_ = on; }
  [[nodiscard]] bool plan_cache_enabled() const noexcept { return plan_cache_enabled_; }
  [[nodiscard]] std::uint64_t plan_cache_hits() const noexcept {
    return plan_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plan_cache_misses() const noexcept {
    return plan_misses_.load(std::memory_order_relaxed);
  }

  // Internal: fault-model bookkeeping shared by block executors.
  DeviceFaultModel fault_{};
  std::atomic<std::uint64_t> fault_op_counter_{0};
  std::atomic<std::uint64_t> fault_injected_ops_{0};

 private:
  /// Everything derived from (program, cost model, register budget, engine)
  /// that a launch needs: the per-instruction cost vector (reference engine,
  /// SIMT costing), the predecoded instruction stream with those costs
  /// folded in (fast engine), and — for ExecEngine::Threaded — the
  /// threaded-code stream compiled from it (empty otherwise).
  struct LaunchPlan {
    std::vector<std::uint32_t> costs;
    kir::DecodedProgram decoded;
    kir::ThreadedProgram threaded;
  };
  struct PlanEntry {
    std::uint64_t key = 0;
    std::size_t code_size = 0;  ///< cheap secondary check against hash collisions
    std::shared_ptr<const LaunchPlan> plan;
  };
  static constexpr std::size_t kPlanCacheCapacity = 16;

  /// Spill analysis + cost vector + predecoded stream for one launch, served
  /// from the cache when possible.  The shared_ptr keeps a plan alive across
  /// eviction.
  [[nodiscard]] std::shared_ptr<const LaunchPlan> launch_plan(
      const kir::BytecodeProgram& program);

  DeviceProps props_;
  CostModel cost_;
  std::unique_ptr<DeviceMemory> mem_;
  std::mutex atomic_mu_;
  bool disabled_ = false;
  ExecEngine engine_ = ExecEngine::Fast;

  bool plan_cache_enabled_ = true;
  std::vector<PlanEntry> plan_cache_;  ///< LRU order: most recent at the back
  std::mutex plan_mu_;
  std::atomic<std::uint64_t> plan_hits_{0}, plan_misses_{0};

  /// Reusable block-execution pool, created on the first multi-worker
  /// launch; replaces the former per-launch std::thread spawn/join.
  std::unique_ptr<common::WorkerPool> launch_pool_;
  std::mutex launch_pool_mu_;
};

}  // namespace hauberk::gpusim
