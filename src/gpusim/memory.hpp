// Simulated device memory.
//
// Two address-space models reproduce the paper's Section II.A cause (a) for
// the GPU-vs-CPU sensitivity gap:
//
//  * FlatGpu — one contiguous word arena with *no page-granularity
//    protection*: allocations are packed from address 0 and any address
//    below the high-water mark is accessible.  A corrupted pointer therefore
//    usually still lands in valid memory and silently reads/writes the wrong
//    data (high SDC, low crash), exactly as on real GPUs of the paper's era.
//
//  * PagedCpu — allocations are placed on sparse 4 KiB-aligned bases with
//    large unmapped gaps, and every access must fall inside a live
//    allocation.  A corrupted pointer usually hits unmapped space and
//    "segfaults" (high crash, low SDC), as on CPUs.
//
// Addresses are 32-bit *word* indices (each word is 32 bits), matching the
// IR's PTR values.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace hauberk::gpusim {

enum class MemoryModel { FlatGpu, PagedCpu };

/// Classification of one allocation, for the Fig. 2 footprint accounting.
enum class AllocClass : std::uint8_t { F32Data, I32Data, PtrData, Other };

class DeviceMemory {
 public:
  explicit DeviceMemory(MemoryModel model = MemoryModel::FlatGpu,
                        std::uint32_t capacity_words = 16u << 20);

  /// Allocate `words` 32-bit words; returns the base word address.
  /// Throws std::bad_alloc on exhaustion.
  std::uint32_t alloc(std::uint32_t words, AllocClass cls = AllocClass::Other);

  /// Release all allocations (arena reset between program runs).
  void reset();

  /// Raw access used by host-side code (always bounds-checked, throws).
  void copy_in(std::uint32_t addr, std::span<const std::uint32_t> data);
  void copy_out(std::uint32_t addr, std::span<std::uint32_t> out) const;

  /// Device-side access used by the interpreter: returns false on an invalid
  /// address (the GPU kernel crash / CPU segfault signal) instead of
  /// throwing, keeping the interpreter hot path exception-free.
  [[nodiscard]] bool load(std::uint32_t addr, std::uint32_t& out) const noexcept {
    if (!valid(addr)) return false;
    out = words_[index_of(addr)];
    return true;
  }
  [[nodiscard]] bool store(std::uint32_t addr, std::uint32_t value) noexcept {
    if (!valid(addr)) return false;
    const std::uint32_t idx = index_of(addr);
    words_[idx] = value;
    note_store(idx);
    return true;
  }
  /// Atomic read-modify-write word pointer for AtomicAddG (callers
  /// synchronize via the device's atomic mutex); nullptr when invalid.
  [[nodiscard]] std::uint32_t* word_ptr(std::uint32_t addr) noexcept {
    if (!valid(addr)) return nullptr;
    const std::uint32_t idx = index_of(addr);
    note_store(idx);
    return &words_[idx];
  }

  /// Record that physical word `idx` may now differ from zero.  Interpreter
  /// engines that store through the flat_arena() span (bypassing store())
  /// must call this with the store address so restore_trial() knows how far
  /// a faulty launch scribbled.  The common case — a store below the current
  /// high water — is one relaxed load and a predictable branch; the CAS loop
  /// only runs when the watermark actually grows (stray stores are rare).
  void note_store(std::uint32_t idx) noexcept {
    std::uint32_t cur = dirty_hi_.load(std::memory_order_relaxed);
    while (idx >= cur &&
           !dirty_hi_.compare_exchange_weak(cur, idx + 1, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] bool valid(std::uint32_t addr) const noexcept;

  /// Fast-path view for the predecoded interpreter: when the model uses flat
  /// addressing (FlatGpu: addr == storage index, valid() == addr < capacity)
  /// the whole physical arena, so loads/stores reduce to one bounds compare
  /// and one indexed access.  Empty for PagedCpu, whose extent lookup has no
  /// such shortcut — callers must fall back to load()/store().
  [[nodiscard]] std::span<std::uint32_t> flat_arena() noexcept {
    return model_ == MemoryModel::FlatGpu ? std::span<std::uint32_t>(words_)
                                          : std::span<std::uint32_t>{};
  }

  /// Checkpoint support (CheCUDA-style, Section VI(i)): snapshot the live
  /// portion of the arena and restore it later.  Allocation metadata is not
  /// part of the image; callers snapshot and restore around launches of the
  /// same program, where the allocation layout is unchanged.
  [[nodiscard]] std::vector<std::uint32_t> image() const {
    return {words_.begin(), words_.begin() + used_};
  }
  void restore(std::span<const std::uint32_t> img) {
    const std::size_t n = img.size() < used_ ? img.size() : used_;
    std::copy(img.begin(), img.begin() + static_cast<long>(n), words_.begin());
    if (n > 0) note_store(static_cast<std::uint32_t>(n - 1));
  }
  /// Exact equivalent of reset() + re-allocation + re-upload for a layout
  /// that has not changed between launches: restore the staged prefix and
  /// clear the words above it up to the store high-water mark.  The clear
  /// matters on FlatGpu, where there is no page protection and a faulty
  /// launch may have scribbled physical words that were never allocated;
  /// reset() would have zeroed those too, but by wiping the entire arena —
  /// the watermark keeps the per-trial cost proportional to what the trial
  /// actually touched instead of to device capacity.
  void restore_trial(std::span<const std::uint32_t> img) {
    const std::size_t n = img.size() < words_.size() ? img.size() : words_.size();
    const std::size_t hi = dirty_hi_.load(std::memory_order_relaxed);
    std::copy(img.begin(), img.begin() + static_cast<long>(n), words_.begin());
    if (hi > n)
      std::fill(words_.begin() + static_cast<long>(n),
                words_.begin() + static_cast<long>(hi < words_.size() ? hi : words_.size()),
                0u);
    dirty_hi_.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  }

  [[nodiscard]] MemoryModel model() const noexcept { return model_; }
  [[nodiscard]] std::uint32_t used_words() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t allocated_bytes(AllocClass cls) const noexcept {
    return 4ull * class_words_[static_cast<int>(cls)];
  }

 private:
  struct Extent {
    std::uint32_t base;
    std::uint32_t size;
  };

  [[nodiscard]] std::uint32_t index_of(std::uint32_t addr) const noexcept;

  MemoryModel model_;
  std::uint32_t capacity_;
  std::vector<std::uint32_t> words_;
  std::uint32_t used_ = 0;           // FlatGpu high-water mark / PagedCpu storage cursor
  std::uint32_t next_base_ = 0;      // PagedCpu virtual placement cursor
  std::vector<Extent> extents_;      // PagedCpu live allocations (sorted by base)
  std::vector<std::uint32_t> extent_storage_;  // PagedCpu: storage offset per extent
  std::uint64_t class_words_[4] = {0, 0, 0, 0};
  /// One past the highest physical word that may be nonzero (atomic: engine
  /// worker threads note stores concurrently; relaxed order is enough since
  /// restore_trial only runs between launches, after the pool joined).
  std::atomic<std::uint32_t> dirty_hi_{0};
};

}  // namespace hauberk::gpusim
