// Simulated device memory.
//
// Two address-space models reproduce the paper's Section II.A cause (a) for
// the GPU-vs-CPU sensitivity gap:
//
//  * FlatGpu — one contiguous word arena with *no page-granularity
//    protection*: allocations are packed from address 0 and any address
//    below the high-water mark is accessible.  A corrupted pointer therefore
//    usually still lands in valid memory and silently reads/writes the wrong
//    data (high SDC, low crash), exactly as on real GPUs of the paper's era.
//
//  * PagedCpu — allocations are placed on sparse 4 KiB-aligned bases with
//    large unmapped gaps, and every access must fall inside a live
//    allocation.  A corrupted pointer usually hits unmapped space and
//    "segfaults" (high crash, low SDC), as on CPUs.
//
// Addresses are 32-bit *word* indices (each word is 32 bits), matching the
// IR's PTR values.
//
// Protected mode (gpusim/ecc.hpp) layers a hardware-ECC model on top of
// either address space: every aligned pair of arena words carries one shadow
// check byte of a (72,64) SEC-DED code.  Stores re-encode their pair — so a
// datapath fault that reaches memory through a store is, correctly,
// invisible to ECC — while SWIFI's corrupt_word()/corrupt_check() flip
// stored bits *without* re-encoding, modeling a memory-cell upset.  Every
// device-side read EDC-checks its pair: a single-bit error is corrected,
// scrubbed back to the array and counted; a double-bit error fails the
// access with the uncorrectable flag raised (the device turns that into
// LaunchStatus::EccUncorrectable, the machine-check analog).  Protected
// mode also empties flat_arena(), which routes the fast/threaded engines'
// raw flat-arena accesses through load()/store() — one hook point, four
// engines, bitwise-identical observables.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "gpusim/ecc.hpp"

namespace hauberk::gpusim {

enum class MemoryModel { FlatGpu, PagedCpu };

/// Classification of one allocation, for the Fig. 2 footprint accounting.
enum class AllocClass : std::uint8_t { F32Data, I32Data, PtrData, Other };

class DeviceMemory {
 public:
  explicit DeviceMemory(MemoryModel model = MemoryModel::FlatGpu,
                        std::uint32_t capacity_words = 16u << 20,
                        ecc::Scheme protection = ecc::Scheme::None);

  /// Allocate `words` 32-bit words; returns the base word address.
  /// Throws std::bad_alloc on exhaustion.
  std::uint32_t alloc(std::uint32_t words, AllocClass cls = AllocClass::Other);

  /// Release all allocations (arena reset between program runs).
  void reset();

  /// Raw access used by host-side code (always bounds-checked, throws).
  void copy_in(std::uint32_t addr, std::span<const std::uint32_t> data);
  void copy_out(std::uint32_t addr, std::span<std::uint32_t> out) const;

  /// Device-side access used by the interpreter: returns false on an invalid
  /// address (the GPU kernel crash / CPU segfault signal) or an uncorrectable
  /// ECC error (see last_fault_uncorrectable()) instead of throwing, keeping
  /// the interpreter hot path exception-free.
  [[nodiscard]] bool load(std::uint32_t addr, std::uint32_t& out) const noexcept {
    if (!valid(addr)) return fail_oob();
    const std::uint32_t idx = index_of(addr);
    if (protection_ == ecc::Scheme::None) {
      out = words_[idx];
      return true;
    }
    return load_checked(idx, out);
  }
  [[nodiscard]] bool store(std::uint32_t addr, std::uint32_t value) noexcept {
    if (!valid(addr)) return fail_oob();
    const std::uint32_t idx = index_of(addr);
    if (protection_ == ecc::Scheme::None) {
      words_[idx] = value;
      note_store(idx);
      return true;
    }
    return store_checked(idx, value);
  }
  /// Read-modify-write for AtomicAddG (callers hold the device's atomic
  /// mutex): `f` maps the current word value to the new one.  Under
  /// protection the read is EDC-checked/corrected and the write re-encodes
  /// the pair; returns false on an invalid address or an uncorrectable
  /// error, exactly like load()/store().
  template <class F>
  [[nodiscard]] bool rmw(std::uint32_t addr, F&& f) noexcept {
    if (!valid(addr)) return fail_oob();
    const std::uint32_t idx = index_of(addr);
    if (protection_ == ecc::Scheme::None) {
      words_[idx] = f(words_[idx]);
      note_store(idx);
      return true;
    }
    std::uint32_t cur;
    if (!load_checked(idx, cur)) return false;
    return store_checked(idx, f(cur));
  }

  /// Record that physical word `idx` may now differ from zero.  Interpreter
  /// engines that store through the flat_arena() span (bypassing store())
  /// must call this with the store address so restore_trial() knows how far
  /// a faulty launch scribbled.  The common case — a store below the current
  /// high water — is one relaxed load and a predictable branch; the CAS loop
  /// only runs when the watermark actually grows (stray stores are rare).
  void note_store(std::uint32_t idx) noexcept {
    std::uint32_t cur = dirty_hi_.load(std::memory_order_relaxed);
    while (idx >= cur &&
           !dirty_hi_.compare_exchange_weak(cur, idx + 1, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] bool valid(std::uint32_t addr) const noexcept;

  /// Fast-path view for the predecoded interpreter: when the model uses flat
  /// addressing (FlatGpu: addr == storage index, valid() == addr < capacity)
  /// the whole physical arena, so loads/stores reduce to one bounds compare
  /// and one indexed access.  Empty for PagedCpu, whose extent lookup has no
  /// such shortcut, and in protected mode, where every access must pass the
  /// EDC check — callers must fall back to load()/store().
  [[nodiscard]] std::span<std::uint32_t> flat_arena() noexcept {
    return model_ == MemoryModel::FlatGpu && protection_ == ecc::Scheme::None
               ? std::span<std::uint32_t>(words_)
               : std::span<std::uint32_t>{};
  }

  /// Checkpoint support (CheCUDA-style, Section VI(i)): snapshot the live
  /// portion of the arena and restore it later.  Allocation metadata is not
  /// part of the image; callers snapshot and restore around launches of the
  /// same program, where the allocation layout is unchanged.
  [[nodiscard]] std::vector<std::uint32_t> image() const {
    return {words_.begin(), words_.begin() + used_};
  }
  /// Shadow check bytes over the live arena prefix (pair-granular; empty
  /// when unprotected).  TrialStage snapshots this next to image() so
  /// restore_trial() can put the check arena back bitwise instead of
  /// re-encoding it.
  [[nodiscard]] std::vector<std::uint8_t> check_image() const {
    if (protection_ == ecc::Scheme::None) return {};
    return {check_.begin(), check_.begin() + static_cast<long>(check_prefix(used_))};
  }
  void restore(std::span<const std::uint32_t> img) {
    const std::size_t n = img.size() < used_ ? img.size() : used_;
    std::copy(img.begin(), img.begin() + static_cast<long>(n), words_.begin());
    if (n > 0) note_store(static_cast<std::uint32_t>(n - 1));
    // The restored image is taken as ground truth: re-encode its check
    // bytes.  Raw fault injection (corrupt_word / corrupt_check) happens
    // *after* the restore, so the codeword actually disagrees with the data.
    reencode_prefix(n);
  }
  /// Exact equivalent of reset() + re-allocation + re-upload for a layout
  /// that has not changed between launches: restore the staged prefix and
  /// clear the words above it up to the store high-water mark.  The clear
  /// matters on FlatGpu, where there is no page protection and a faulty
  /// launch may have scribbled physical words that were never allocated;
  /// reset() would have zeroed those too, but by wiping the entire arena —
  /// the watermark keeps the per-trial cost proportional to what the trial
  /// actually touched instead of to device capacity.  `check_img` (from
  /// check_image(), empty when unprotected) restores the shadow check arena
  /// the same way: staged prefix copied back, dirty tail zeroed (the zero
  /// word encodes to a zero check byte under both linear codes).
  void restore_trial(std::span<const std::uint32_t> img,
                     std::span<const std::uint8_t> check_img = {}) {
    const std::size_t n = img.size() < words_.size() ? img.size() : words_.size();
    const std::size_t hi = dirty_hi_.load(std::memory_order_relaxed);
    std::copy(img.begin(), img.begin() + static_cast<long>(n), words_.begin());
    if (hi > n)
      std::fill(words_.begin() + static_cast<long>(n),
                words_.begin() + static_cast<long>(hi < words_.size() ? hi : words_.size()),
                0u);
    if (protection_ != ecc::Scheme::None) {
      const std::size_t cn = check_prefix(n);
      if (check_img.size() >= cn) {
        std::copy(check_img.begin(), check_img.begin() + static_cast<long>(cn),
                  check_.begin());
        const std::size_t chi = check_prefix(hi < words_.size() ? hi : words_.size());
        if (chi > cn)
          std::fill(check_.begin() + static_cast<long>(cn),
                    check_.begin() + static_cast<long>(chi), std::uint8_t{0});
      } else {
        // No staged check image (caller predates protection): fall back to
        // re-encoding, which is bitwise what a fresh stage would hold.
        reencode_prefix(n);
        zero_check_tail(n, hi);
      }
    }
    dirty_hi_.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  }

  /// SWIFI memory-cell fault injection: XOR a mask into a stored data word
  /// (physical index, as used by image()) or into the check byte of the
  /// word's pair, *without* re-encoding — the codeword is left disagreeing
  /// with itself exactly as a particle strike would leave a DRAM row.
  void corrupt_word(std::uint32_t idx, std::uint32_t mask) noexcept {
    if (idx >= words_.size() || mask == 0) return;
    words_[idx] ^= mask;
    note_store(idx);
  }
  void corrupt_check(std::uint32_t idx, std::uint8_t mask) noexcept {
    if (protection_ == ecc::Scheme::None || idx >= words_.size()) return;
    check_[idx / 2] ^= mask;
  }

  [[nodiscard]] MemoryModel model() const noexcept { return model_; }
  [[nodiscard]] ecc::Scheme protection() const noexcept { return protection_; }
  [[nodiscard]] std::uint32_t used_words() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t allocated_bytes(AllocClass cls) const noexcept {
    return 4ull * class_words_[static_cast<int>(cls)];
  }

  /// Single-bit errors corrected (and scrubbed) since construction.  Each
  /// corrupted pair is counted exactly once — the scrub runs under a mutex
  /// with the syndrome re-checked, so concurrent readers of the same bad
  /// pair cannot double-count and the total is schedule-independent.
  [[nodiscard]] std::uint64_t ecc_corrected() const noexcept {
    return ecc_corrected_.load(std::memory_order_relaxed);
  }
  /// Uncorrectable (double-bit) errors detected since construction.
  [[nodiscard]] std::uint64_t ecc_uncorrectable() const noexcept {
    return ecc_uncorrectable_.load(std::memory_order_relaxed);
  }

  /// Whether this thread's most recent failed load/store/rmw failed because
  /// of an uncorrectable ECC error (true) or an invalid address (false).
  /// Thread-local, so concurrent engine workers cannot smear each other's
  /// crash causes.
  [[nodiscard]] static bool last_fault_uncorrectable() noexcept { return tl_ecc_fault_; }

 private:
  struct Extent {
    std::uint32_t base;
    std::uint32_t size;
  };

  [[nodiscard]] std::uint32_t index_of(std::uint32_t addr) const noexcept;

  /// Check bytes covering word prefix [0, n): pairs are word-aligned, so a
  /// prefix of n words spans ceil(n/2) check bytes.
  [[nodiscard]] static std::size_t check_prefix(std::size_t n) noexcept {
    return (n + 1) / 2;
  }

  static bool fail_oob() noexcept {
    tl_ecc_fault_ = false;
    return false;
  }

  [[nodiscard]] bool load_checked(std::uint32_t idx, std::uint32_t& out) const noexcept {
    const std::uint32_t p = idx / 2;
    const std::uint64_t data =
        static_cast<std::uint64_t>(words_[2 * p]) |
        (static_cast<std::uint64_t>(words_[2 * p + 1]) << 32);
    if (ecc::encode(*code_, data) == check_[p]) {
      out = words_[idx];
      return true;
    }
    return repair_and_load(idx, out);
  }
  [[nodiscard]] bool store_checked(std::uint32_t idx, std::uint32_t value) noexcept;
  /// Cold path: correct + scrub a pair whose syndrome is nonzero, or raise
  /// the uncorrectable flag.  Out-of-line; serialized so a pair is counted
  /// (and scrubbed) exactly once no matter how many threads race on it.
  bool repair_and_load(std::uint32_t idx, std::uint32_t& out) const noexcept;
  [[nodiscard]] bool repair_pair(std::uint32_t pair) noexcept;

  void reencode_prefix(std::size_t n) noexcept;
  void zero_check_tail(std::size_t n, std::size_t hi) noexcept;

  MemoryModel model_;
  ecc::Scheme protection_;
  const ecc::Code* code_ = nullptr;  ///< tables when protected, else nullptr
  std::uint32_t capacity_;
  std::vector<std::uint32_t> words_;
  /// Shadow check-bit arena: one byte per aligned pair of words (empty when
  /// unprotected).  Invariant outside injected faults: check_[p] ==
  /// encode(words_[2p] | words_[2p+1] << 32); the all-zero arena satisfies
  /// it for free because the codes are linear.
  std::vector<std::uint8_t> check_;
  std::uint32_t used_ = 0;           // FlatGpu high-water mark / PagedCpu storage cursor
  std::uint32_t next_base_ = 0;      // PagedCpu virtual placement cursor
  std::vector<Extent> extents_;      // PagedCpu live allocations (sorted by base)
  std::vector<std::uint32_t> extent_storage_;  // PagedCpu: storage offset per extent
  std::uint64_t class_words_[4] = {0, 0, 0, 0};
  /// One past the highest physical word that may be nonzero (atomic: engine
  /// worker threads note stores concurrently; relaxed order is enough since
  /// restore_trial only runs between launches, after the pool joined).
  std::atomic<std::uint32_t> dirty_hi_{0};
  /// Scrub serialization + deterministic correction counting (cold path).
  mutable std::mutex scrub_mutex_;
  mutable std::atomic<std::uint64_t> ecc_corrected_{0};
  mutable std::atomic<std::uint64_t> ecc_uncorrectable_{0};
  static thread_local bool tl_ecc_fault_;
};

}  // namespace hauberk::gpusim
