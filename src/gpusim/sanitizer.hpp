// Shared-memory sanitizer shadow state (ExecEngine::Sanitizer), the
// simulator's cuda-memcheck/racecheck analog.
//
// Per shared-memory word the shadow tracks the last writer and last reader
// (block-local thread index, barrier epoch, pc) and reports hazards between
// accesses that are not ordered by a __syncthreads epoch:
//
//  * WriteWrite  — two threads wrote the same word in one epoch;
//  * ReadWrite   — a read and a write of the same word in one epoch
//                  (either order: read-after-write or write-after-read);
//  * BarrierDivergence — threads of one block released from *different*
//                  barrier sites, or some exited while peers wait (the
//                  sanitized view of CrashBarrierDeadlock);
//  * SharedOutOfBounds — a shared access past the block's allocation
//                  (also a crash, reported with the faulting address);
//  * UninitSharedRead — a read of a word no thread has written.
//
// Warp-synchronous filtering: hazards between threads of the *same warp*
// are suppressed.  The modeled part is GT200-class (pre-Volta), where a
// warp executes in lockstep and the era's idiomatic kernels exploit that —
// TPACF's sub-histogram write-retry loop races within a warp on purpose.
// Historical racecheck applied the same filter for the same reason.
// Barrier divergence, out-of-bounds and uninitialized reads are never
// warp-filtered (lockstep does not excuse any of them).
//
// Determinism: threads of a block run serialized (round-robin to the next
// barrier), so shadow updates and report emission happen in a fixed order.
// Reports are deduplicated per (kind, pc, other_pc) — a racy store inside a
// loop yields one report, not thousands — and capped per block; the device
// concatenates per-block vectors in block order, so the report stream is
// bitwise identical across launch worker counts (for crash-free launches,
// the same contract every other observable has).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace hauberk::gpusim {

enum class HazardKind : std::uint8_t {
  WriteWrite,
  ReadWrite,
  BarrierDivergence,
  SharedOutOfBounds,
  UninitSharedRead,
};

[[nodiscard]] const char* hazard_kind_name(HazardKind k) noexcept;

/// One structured sanitizer finding.  `pc`/`thread` identify the access that
/// exposed the hazard; `other_pc`/`other_thread` the earlier conflicting
/// access (kNoPc/kNoThread when there is none, e.g. uninitialized reads, or
/// exit-divergence where the peer left the kernel rather than a barrier).
struct SanitizerReport {
  static constexpr std::uint32_t kNoPc = 0xffffffffu;
  static constexpr std::uint32_t kNoThread = 0xffffffffu;

  HazardKind kind = HazardKind::WriteWrite;
  std::uint32_t block = 0;      ///< linear block id
  std::uint32_t pc = 0;         ///< instruction of the detecting access
  std::uint32_t other_pc = kNoPc;
  std::uint32_t site = 0;       ///< dense sanitizer site id of `pc` (kir::kNoSite when unknown)
  std::uint32_t thread = 0;     ///< block-local thread index of the detecting access
  std::uint32_t other_thread = kNoThread;
  std::uint32_t addr = 0;       ///< shared word index (0 for barrier divergence)
  std::uint32_t epoch = 0;      ///< barrier epoch in which the hazard fired

  friend bool operator==(const SanitizerReport&, const SanitizerReport&) = default;
};

/// One-line human-readable rendering (tests, report sinks, CLI dumps).
[[nodiscard]] std::string sanitizer_report_to_string(const SanitizerReport& r);

/// Shadow state for one block's shared memory.  All methods are called from
/// the block's (single) executing worker; no synchronization needed.
class SharedShadow {
 public:
  /// Default for reports kept per block before further hazards only bump
  /// dropped() (overridable per launch via LaunchOptions::sanitize_report_cap).
  static constexpr std::size_t kMaxReportsPerBlock = 64;

  SharedShadow(std::uint32_t words, std::uint32_t warp_size, std::uint32_t block,
               std::vector<SanitizerReport>& sink,
               std::size_t report_cap = kMaxReportsPerBlock)
      : words_(words, ShadowWord{}), warp_(warp_size == 0 ? 1 : warp_size),
        block_(block), cap_(report_cap == 0 ? 1 : report_cap), sink_(sink) {}

  void on_load(std::uint32_t pc, std::uint32_t site, std::uint32_t thread,
               std::uint32_t addr, std::uint32_t epoch) {
    ShadowWord& w = words_[addr];
    if (w.writer < 0) {
      emit(HazardKind::UninitSharedRead, pc, site, SanitizerReport::kNoPc, thread,
           SanitizerReport::kNoThread, addr, epoch);
    } else if (w.write_epoch == epoch && !same_warp(static_cast<std::uint32_t>(w.writer), thread)) {
      emit(HazardKind::ReadWrite, pc, site, w.write_pc, thread,
           static_cast<std::uint32_t>(w.writer), addr, epoch);
    }
    w.reader = static_cast<std::int32_t>(thread);
    w.read_epoch = epoch;
    w.read_pc = pc;
  }

  void on_store(std::uint32_t pc, std::uint32_t site, std::uint32_t thread,
                std::uint32_t addr, std::uint32_t epoch) {
    ShadowWord& w = words_[addr];
    if (w.writer >= 0 && w.write_epoch == epoch &&
        !same_warp(static_cast<std::uint32_t>(w.writer), thread)) {
      emit(HazardKind::WriteWrite, pc, site, w.write_pc, thread,
           static_cast<std::uint32_t>(w.writer), addr, epoch);
    } else if (w.reader >= 0 && w.read_epoch == epoch &&
               !same_warp(static_cast<std::uint32_t>(w.reader), thread)) {
      emit(HazardKind::ReadWrite, pc, site, w.read_pc, thread,
           static_cast<std::uint32_t>(w.reader), addr, epoch);
    }
    w.writer = static_cast<std::int32_t>(thread);
    w.write_epoch = epoch;
    w.write_pc = pc;
  }

  void on_oob(std::uint32_t pc, std::uint32_t site, std::uint32_t thread,
              std::uint32_t addr, std::uint32_t epoch) {
    emit(HazardKind::SharedOutOfBounds, pc, site, SanitizerReport::kNoPc, thread,
         SanitizerReport::kNoThread, addr, epoch);
  }

  /// Threads released from different barrier sites, or (other_pc == kNoPc)
  /// a peer exited the kernel while `thread` waits at a barrier.
  void on_divergence(std::uint32_t pc, std::uint32_t site, std::uint32_t other_pc,
                     std::uint32_t thread, std::uint32_t other_thread,
                     std::uint32_t epoch) {
    emit(HazardKind::BarrierDivergence, pc, site, other_pc, thread, other_thread,
         /*addr=*/0, epoch);
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct ShadowWord {
    std::int32_t writer = -1;  ///< block-local thread index; -1 = never written
    std::int32_t reader = -1;
    std::uint32_t write_epoch = 0, read_epoch = 0;
    std::uint32_t write_pc = 0, read_pc = 0;
  };

  [[nodiscard]] bool same_warp(std::uint32_t a, std::uint32_t b) const noexcept {
    return a / warp_ == b / warp_;
  }

  void emit(HazardKind kind, std::uint32_t pc, std::uint32_t site, std::uint32_t other_pc,
            std::uint32_t thread, std::uint32_t other_thread, std::uint32_t addr,
            std::uint32_t epoch) {
    const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 60) |
                              (static_cast<std::uint64_t>(pc & 0x3fffffffu) << 30) |
                              (other_pc & 0x3fffffffu);
    if (!seen_.insert(key).second) return;  // one report per (kind, pc, other_pc)
    if (sink_.size() >= cap_) {
      ++dropped_;
      return;
    }
    sink_.push_back(SanitizerReport{kind, block_, pc, other_pc, site, thread,
                                    other_thread, addr, epoch});
  }

  std::vector<ShadowWord> words_;
  std::uint32_t warp_;
  std::uint32_t block_;
  std::size_t cap_;
  std::vector<SanitizerReport>& sink_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hauberk::gpusim
