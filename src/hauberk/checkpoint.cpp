#include "hauberk/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/bitops.hpp"

namespace hauberk::core {

namespace {

// Little-endian field helpers.  The repo only targets little-endian hosts
// today; the static_assert turns a future big-endian port into a compile
// error instead of silently unreadable checkpoints.
static_assert(std::endian::native == std::endian::little,
              "checkpoint files are defined little-endian");

struct FileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t payload_bytes;
  std::uint32_t payload_crc;
};
constexpr std::size_t kHeaderBytes = 20;  // packed on disk; struct padding ignored

void write_header(std::FILE* f, const FileHeader& h) {
  if (std::fwrite(&h.magic, 4, 1, f) != 1 || std::fwrite(&h.version, 4, 1, f) != 1 ||
      std::fwrite(&h.payload_bytes, 8, 1, f) != 1 ||
      std::fwrite(&h.payload_crc, 4, 1, f) != 1)
    throw CheckpointError("checkpoint: short header write");
}

bool read_header(std::FILE* f, FileHeader& h) {
  return std::fread(&h.magic, 4, 1, f) == 1 && std::fread(&h.version, 4, 1, f) == 1 &&
         std::fread(&h.payload_bytes, 8, 1, f) == 1 && std::fread(&h.payload_crc, 4, 1, f) == 1;
}

}  // namespace

void CheckpointWriter::u32(std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  payload_.insert(payload_.end(), p, p + 4);
}

void CheckpointWriter::u64(std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  payload_.insert(payload_.end(), p, p + 8);
}

void CheckpointWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void CheckpointWriter::bytes(std::span<const std::uint8_t> data) {
  payload_.insert(payload_.end(), data.begin(), data.end());
}

void CheckpointWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void CheckpointWriter::save_atomic(const std::string& path, std::uint32_t magic,
                                   std::uint32_t version) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw CheckpointError("checkpoint: cannot open '" + tmp + "' for writing");
  try {
    FileHeader h;
    h.magic = magic;
    h.version = version;
    h.payload_bytes = payload_.size();
    h.payload_crc = common::crc32(payload_.data(), payload_.size());
    write_header(f, h);
    if (!payload_.empty() && std::fwrite(payload_.data(), 1, payload_.size(), f) !=
                                 payload_.size())
      throw CheckpointError("checkpoint: short payload write to '" + tmp + "'");
  } catch (...) {
    std::fclose(f);
    std::remove(tmp.c_str());
    throw;
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: close failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: rename '" + tmp + "' -> '" + path + "' failed");
  }
}

CheckpointReader CheckpointReader::load(const std::string& path, std::uint32_t magic,
                                        std::uint32_t version) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw CheckpointError("checkpoint: cannot open '" + path + "'");
  FileHeader h{};
  std::vector<std::uint8_t> payload;
  bool short_file = false;
  if (!read_header(f, h)) {
    short_file = true;
  } else if (h.magic == magic && h.version == version) {
    // Cap the allocation at the actual file size so a corrupt size field
    // cannot demand gigabytes before the CRC check rejects the file.
    if (std::fseek(f, 0, SEEK_END) != 0) short_file = true;
    const long file_end = std::ftell(f);
    if (file_end < 0 ||
        h.payload_bytes > static_cast<std::uint64_t>(file_end) - kHeaderBytes) {
      short_file = true;
    } else {
      std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET);
      payload.resize(static_cast<std::size_t>(h.payload_bytes));
      if (!payload.empty() &&
          std::fread(payload.data(), 1, payload.size(), f) != payload.size())
        short_file = true;
    }
  }
  std::fclose(f);
  if (short_file)
    throw CheckpointError("checkpoint: '" + path + "' is truncated or unreadable");
  if (h.magic != magic)
    throw CheckpointError("checkpoint: '" + path + "' has wrong magic (not this file kind)");
  if (h.version != version)
    throw CheckpointError("checkpoint: '" + path + "' is format version " +
                          std::to_string(h.version) + ", expected " +
                          std::to_string(version));
  if (common::crc32(payload.data(), payload.size()) != h.payload_crc)
    throw CheckpointError("checkpoint: '" + path + "' failed its CRC (corrupt or torn)");
  return CheckpointReader(path, std::move(payload));
}

void CheckpointReader::need(std::size_t n) const {
  if (payload_.size() - pos_ < n)
    throw CheckpointError("checkpoint: '" + path_ + "' payload exhausted");
}

std::uint8_t CheckpointReader::u8() {
  need(1);
  return payload_[pos_++];
}

std::uint32_t CheckpointReader::u32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, payload_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

std::uint64_t CheckpointReader::u64() {
  need(8);
  std::uint64_t v;
  std::memcpy(&v, payload_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

void CheckpointReader::bytes(std::span<std::uint8_t> out) {
  need(out.size());
  std::memcpy(out.data(), payload_.data() + pos_, out.size());
  pos_ += out.size();
}

std::string CheckpointReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(payload_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace hauberk::core
