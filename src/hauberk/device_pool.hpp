// Node-level GPU management (Section VI(ii)(c)): when BIST confirms a
// hardware fault, "the current GPU device is disabled and another device in
// the node or cluster is used for reexecuting the current GPU program", and
// "a daemon process is periodically running [BIST] on disabled GPU devices
// with a time delay T_backoff ... doubled after every execution".
//
// DevicePool owns the node's simulated GPUs, hands healthy devices to the
// guardian together with a migration spare, and drives one BackoffDaemon
// per disabled device so intermittent-fault GPUs rejoin the pool once their
// fault clears.
#pragma once

#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "hauberk/recovery.hpp"

namespace hauberk::core {

class DevicePool {
 public:
  explicit DevicePool(std::size_t n, gpusim::DeviceProps props = {},
                      double t_backoff_initial = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }
  [[nodiscard]] gpusim::Device& device(std::size_t i) { return *devices_.at(i); }
  [[nodiscard]] std::size_t healthy_count() const;

  /// Next healthy device (round-robin), or nullptr when all are disabled.
  [[nodiscard]] gpusim::Device* acquire();
  /// A healthy device other than `primary`, or nullptr (the migration spare).
  [[nodiscard]] gpusim::Device* spare_for(const gpusim::Device* primary);

  /// Run one job under guardian supervision on the pool: picks a primary and
  /// a spare; a device the guardian disables stays out of the pool until its
  /// backoff daemon re-enables it.
  RecoveryOutcome run_protected(Guardian& guardian, const kir::BytecodeProgram& ft_prog,
                                KernelJob& job, ControlBlock& cb);

  /// Advance the simulated clock: re-test disabled devices that are due.
  /// Returns the number of devices re-enabled during this tick.
  int tick(double now);

 private:
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<BackoffDaemon> daemons_;
  std::size_t next_ = 0;
};

}  // namespace hauberk::core
