// Static cycle estimation for selective hardening.
//
// The gpusim cost layer (gpusim/cost.hpp) owns the *price* of every
// instruction; this layer owns the *prediction*: given one measured
// baseline run of a kernel, estimate the cycles any instrumented variant of
// the same kernel would take — without executing it.  That is what lets
// the budgeted optimizer (hauberk/opt.hpp) score hundreds of candidate
// HardeningPlans at translate-and-lower speed instead of simulation speed.
//
// The transfer works through the BytecodeProgram::stmt_origin provenance
// table: instrumentation inserts whole (internal) statements and never
// rewrites the original ones, so a non-internal statement lowers to the
// identical instruction sequence in the baseline and in every instrumented
// build.  Matching (statement ordinal, intra-statement index) pairs carries
// the baseline's per-pc execution counts onto the instrumented stream;
// inserted instructions inherit the *smaller* of the nearest preceding and
// following matched counts (detector-state inits before a loop header run
// at prologue frequency, post-loop guards at epilogue frequency, in-loop
// bookkeeping at iteration frequency), and a run with no matched neighbour
// on one side falls back to the per-thread count (baseline pc 0) on that
// side.  Predicted cycles are then exactly the
// device's accounting: sum over pc of static cost x transferred count.
//
// Because LaunchResult::cycles is itself a pure fold of the same
// instruction_costs() vector over the interpreter's execution counts, the
// estimator is exact whenever the count transfer is (identical control
// flow), and within a few percent when inserted guards perturb it; the
// test suite pins <= 10% error on all 12 workloads.
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/program.hpp"
#include "hauberk/translator.hpp"

namespace hauberk::cost {

/// One measured baseline (uninstrumented) run of a kernel: the lowered
/// program, its per-pc execution counts, and the device pricing context.
/// Everything estimate_* needs; build one per (kernel, dataset, device).
struct CostProfile {
  kir::BytecodeProgram baseline;
  std::vector<std::uint64_t> exec_counts;  ///< per baseline pc
  std::uint64_t measured_cycles = 0;       ///< LaunchResult::cycles of that run
  gpusim::CostModel model;
  std::uint32_t regs_per_thread = 28;
  bool ecc = false;
};

/// Launch the uninstrumented `kernel` once on `dev` under `job` and capture
/// the profile.  Throws std::runtime_error if the launch does not complete
/// cleanly (an estimator seeded from a crashed run predicts nothing).
[[nodiscard]] CostProfile measure_profile(gpusim::Device& dev, const kir::Kernel& kernel,
                                          core::KernelJob& job);

/// Predict total kernel cycles for `program`, any lowering of an
/// instrumented (or the baseline) build of the profiled kernel.
[[nodiscard]] std::uint64_t estimate_program_cycles(const kir::BytecodeProgram& program,
                                                    const CostProfile& profile);

/// Predict total kernel cycles of `kernel` hardened under `plan`:
/// translate (with `base` options + the plan), lower, estimate.  The
/// convenience entry the optimizer and kirtune score candidates with.
[[nodiscard]] std::uint64_t estimate_kernel_cycles(const kir::Kernel& kernel,
                                                   const core::HardeningPlan& plan,
                                                   const CostProfile& profile,
                                                   const core::TranslateOptions& base = {});

/// Static per-class cost anatomy of (the lowering of) `kernel` under the
/// default device pricing, cached in `am`'s external-analysis slot so
/// repeated consumers per pipeline run (the translate report, lint
/// surfacing) lower at most once per kernel state.
[[nodiscard]] gpusim::CostBreakdown kernel_static_breakdown(const kir::Kernel& kernel,
                                                            kir::AnalysisManager& am);

}  // namespace hauberk::cost
