// Multi-kernel GPU programs (Fig. 6): a GPU program interleaves CPU-side
// code with one or more GPU kernel launches, and Hauberk's deferred checking
// runs at each kernel's completion — the control block is copied back and
// the recovery engine invoked per kernel (Table I's "[CPU] after GPU kernel
// launch" row).
//
// A PipelineJob stages device memory once and exposes per-stage launch
// information; stages consume earlier stages' device-resident outputs.
// run_pipeline_protected() drives every stage through the guardian: on
// failure or SDC alarm of stage k the guardian re-executes *that kernel*
// from its input state (restored from the pre-launch checkpoint, or rebuilt
// by replaying the earlier stages — the CheCUDA-vs-restart tradeoff of
// Section VI(i)).
#pragma once

#include <vector>

#include "hauberk/control_block.hpp"
#include "hauberk/recovery.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::core {

class PipelineJob {
 public:
  virtual ~PipelineJob() = default;

  /// Reset device memory and upload all program inputs.
  virtual void stage_inputs(gpusim::Device& dev) = 0;

  [[nodiscard]] virtual int num_stages() const = 0;

  /// Launch arguments / geometry for one stage (valid after stage_inputs).
  [[nodiscard]] virtual std::vector<kir::Value> args(int stage) const = 0;
  [[nodiscard]] virtual gpusim::LaunchConfig config(int stage) const = 0;

  /// The program's final output (valid after the last stage completed).
  [[nodiscard]] virtual ProgramOutput read_output(const gpusim::Device& dev) const = 0;
};

/// One protected stage: its (FT-instrumented) program and control block.
struct PipelineStage {
  const kir::BytecodeProgram* program = nullptr;
  ControlBlock* cb = nullptr;
};

struct PipelineOutcome {
  bool completed = false;
  ProgramOutput output;
  std::vector<RecoveryOutcome> stages;  ///< per-stage guardian outcomes
  int total_executions = 0;
};

/// Run all stages under guardian supervision.  `baseline_programs` are the
/// uninstrumented stage kernels used when replaying prerequisite stages to
/// rebuild a later stage's input state.
[[nodiscard]] PipelineOutcome run_pipeline_protected(
    Guardian& guardian, gpusim::Device& dev, gpusim::Device* spare,
    const std::vector<PipelineStage>& stages,
    const std::vector<const kir::BytecodeProgram*>& baseline_programs, PipelineJob& job);

}  // namespace hauberk::core
