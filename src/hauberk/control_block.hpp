// The Hauberk control block (Section V.A): the object the CPU-side code
// allocates, copies to GPU memory, and passes to the kernel so that placed
// error detectors can read their configuration (profiled value ranges,
// alpha) and record results (SDC bits, outliers) without terminating the
// kernel.  After kernel completion the CPU copies it back and hands it to
// the recovery engine.
//
// In this reproduction the control block lives host-side and is wired into
// the kernel through the interpreter's LaunchHooks interface; the simulated
// cost of shuttling it across PCIe is charged via
// LaunchOptions::charge_control_block.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "hauberk/ranges.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::core {

/// Per-detector configuration + runtime state.
struct DetectorState {
  kir::DetectorMeta meta;
  RangeSet ranges;
  double alpha = 1.0;
  bool configured = false;  ///< ranges loaded from profiling

  // Runtime results (reset per launch):
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::vector<double> outliers;  ///< capped; feeds on-line range updates
};

/// Host-side control block implementing the device-side detector runtime.
/// Thread-safe: kernels execute blocks on concurrent workers.
class ControlBlock : public gpusim::LaunchHooks {
 public:
  static constexpr std::size_t kMaxOutliers = 64;
  static constexpr std::size_t kMaxSamples = 1u << 16;

  explicit ControlBlock(const kir::BytecodeProgram& program);

  // --- configuration (CPU side, before launch) ---
  void set_ranges(int detector, const RangeSet& rs);
  void set_alpha(double alpha);
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Configure all value detectors from profiled sample sets.
  void configure_from_profile(const std::vector<std::vector<double>>& samples_per_detector);

  // --- per-launch lifecycle ---
  void reset_results();

  // --- results (CPU side, after launch) ---
  [[nodiscard]] bool sdc_detected() const noexcept {
    return sdc_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<DetectorState>& detectors() const noexcept {
    return detectors_;
  }
  [[nodiscard]] std::vector<DetectorState>& detectors() noexcept { return detectors_; }
  [[nodiscard]] std::uint64_t total_checks() const noexcept;
  [[nodiscard]] std::uint64_t total_violations() const noexcept;

  /// On-line learning step: absorb recorded outliers into the ranges
  /// (invoked by the recovery engine once a false alarm is diagnosed).
  void absorb_outliers();

  // --- profiler-mode state ---
  void prepare_profiling(std::uint64_t total_threads);
  [[nodiscard]] const std::vector<std::vector<double>>& profiled_samples() const noexcept {
    return samples_;
  }
  /// Execution counts per FI site per thread (FI target derivation).
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& exec_counts() const noexcept {
    return exec_counts_;
  }

  // --- LaunchHooks ---
  bool check_range(int detector, kir::Value value) override;
  void equal_check_failed(int detector) override;
  void profile_value(int detector, kir::Value value) override;
  void count_exec(std::uint32_t site_index, std::uint32_t thread_linear) override;

 private:
  std::vector<DetectorState> detectors_;
  double alpha_ = 1.0;
  std::atomic<bool> sdc_{false};
  std::mutex mu_;

  // Profiler state.
  std::vector<std::vector<double>> samples_;                 ///< [detector] -> samples
  std::vector<std::vector<std::uint32_t>> exec_counts_;      ///< [site] -> per-thread counts
  std::uint64_t profile_threads_ = 0;
};

}  // namespace hauberk::core
