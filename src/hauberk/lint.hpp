// hauberk::lint — the static analysis suite over KIR.
//
// Four analyzers, all driven by the kir::IntervalAnalysis fixpoint (cached in
// the kir::AnalysisManager) plus the Fig. 9 dataflow graphs:
//
//  1. Range cross-check: the sound static interval of every RangeCheck /
//     ProfileValue detector value must contain the *profiled* range observed
//     on any dataset.  A contained-but-tighter profile yields a
//     `RangeTighterThanStatic` remark quantifying Fig. 16 false-positive
//     exposure (how much legal value space the trained detector would flag);
//     an escaping profile is a `StaticRangeUnsound` error (analysis or
//     profiler bug).
//  2. Bounds: every global/shared load/store address interval is checked
//     against the address space.  Disjoint-from-bounds is a `PossibleOob`
//     error (the access always faults when reached), partial or unbounded
//     overlap a warning.
//  3. Concurrency: `NonUniformBarrier` for barriers under thread-dependent
//     control flow, and `SharedWriteOverlap` for shared-store pairs in the
//     same barrier epoch whose affine-in-tid footprints can collide between
//     distinct threads of a block (exact divisibility test for affine
//     addresses, conservative interval overlap otherwise).  The dynamic
//     Sanitizer engine (PR 3) confirms these classes at run time.
//  4. Detector coverage: which virtual variables / dataflow edges of an
//     *instrumented* kernel are backward-reachable from no detector
//     (ChkXor / DupCmp / RangeCheck / accumulator), as `UncoveredVariable` /
//     `UncoveredEdge` warnings plus kernel-level percentages.
//
// Diagnostics are deterministic (stable severity-ranked sort, byte-identical
// output across runs and campaign worker counts) and carry pc/site
// provenance when the lowered program is supplied: the k-th syntactic access
// maps positionally onto the k-th memory/barrier instruction, and shared
// accesses additionally get the dense sanitizer site id.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/ast.hpp"
#include "kir/bytecode.hpp"
#include "kir/interval.hpp"

namespace hauberk::core {
struct HardeningPlan;
}

namespace hauberk::lint {

enum class Severity : std::uint8_t { Error = 0, Warning = 1, Remark = 2 };

enum class DiagKind : std::uint8_t {
  PossibleOob,
  NonUniformBarrier,
  SharedWriteOverlap,
  StaticRangeUnsound,
  RangeTighterThanStatic,
  UncoveredVariable,
  UncoveredEdge,
  /// The variable/edge is reached by no detector *because the active
  /// HardeningPlan deliberately excludes it* — a budget decision, not an
  /// instrumentation gap, so it is a remark rather than a warning.
  ExcludedByPlan,
};

[[nodiscard]] const char* severity_name(Severity s) noexcept;
[[nodiscard]] const char* diag_kind_name(DiagKind k) noexcept;

struct Diagnostic {
  DiagKind kind{};
  Severity severity = Severity::Warning;
  std::string message;        ///< human-readable, deterministic
  std::int64_t pc = -1;       ///< bytecode pc of the subject instruction
  std::int64_t other_pc = -1; ///< second instruction (overlap pairs)
  std::int64_t site = -1;     ///< dense sanitizer site id (shared/barrier)
  kir::VarId var = kir::kInvalidVar;
  kir::VarId var2 = kir::kInvalidVar;  ///< UncoveredEdge: the used (source) variable
  int detector = -1;
  std::uint32_t loop_id = kir::kNoLoop;
};

/// Fig. 9 coverage of an instrumented kernel.  An excluded variable/edge is
/// one the active HardeningPlan deliberately left unprotected; it still
/// counts as uncovered in the percentages (the corruption surface is real)
/// but is reported as a remark, not a warning.
struct Coverage {
  int total_vars = 0, covered_vars = 0, excluded_vars = 0;
  int total_edges = 0, covered_edges = 0, excluded_edges = 0;
  [[nodiscard]] double var_pct() const noexcept {
    return total_vars == 0 ? 100.0 : 100.0 * covered_vars / total_vars;
  }
  [[nodiscard]] double edge_pct() const noexcept {
    return total_edges == 0 ? 100.0 : 100.0 * covered_edges / total_edges;
  }
};

/// Static interval of one RangeCheck/ProfileValue detector value, published
/// for the TranslateOptions::substitute_static_ranges knob.
struct StaticDetectorRange {
  int detector = -1;
  std::string label;  ///< protected variable name
  kir::DType type = kir::DType::F32;
  kir::ValInterval value{};
  /// Only finite intervals are usable as detector ranges.
  [[nodiscard]] bool usable() const noexcept { return value.finite(); }
};

/// Profiled range of one detector, as observed by hauberk::core profiling;
/// the cross-check compares it against the static interval.
struct ObservedRange {
  int detector = -1;
  double lo = 0, hi = 0;
  std::size_t samples = 0;
};

struct LintReport {
  std::string kernel;
  Coverage coverage;
  std::vector<Diagnostic> diagnostics;  ///< severity-ranked, stable order
  std::vector<StaticDetectorRange> detector_ranges;
  int errors = 0, warnings = 0, remarks = 0;

  [[nodiscard]] std::string to_string() const;  ///< human printer
  [[nodiscard]] std::string to_json() const;    ///< machine printer

  [[nodiscard]] bool has(DiagKind k) const noexcept;
  [[nodiscard]] int count(DiagKind k) const noexcept;
};

struct LintOptions {
  kir::IntervalEnv env;
  bool check_bounds = true;
  bool check_barriers = true;
  bool check_overlap = true;
  bool check_coverage = true;
  /// Profiled ranges for the cross-check; empty disables analyzer (1).
  std::vector<ObservedRange> observed;
  /// The program lowered from the analyzed kernel; enables pc/site
  /// provenance on diagnostics.  May be null.
  const kir::BytecodeProgram* program = nullptr;
  /// The HardeningPlan the kernel was instrumented under.  When set, the
  /// coverage analyzer downgrades UncoveredVariable/UncoveredEdge to
  /// ExcludedByPlan remarks for variables/loops the plan deliberately
  /// excludes.  May be null (grade against full Hauberk instrumentation).
  const core::HardeningPlan* plan = nullptr;
};

/// Run every enabled analyzer over `kernel`.  Supplying an AnalysisManager
/// reuses its cached interval/dataflow analyses; pass nullptr for a
/// standalone run.  Deterministic: identical inputs yield byte-identical
/// reports.
[[nodiscard]] LintReport run_lint(const kir::Kernel& kernel, const LintOptions& opt,
                                  kir::AnalysisManager* am = nullptr);

/// Build an IntervalEnv from a concrete launch: block/grid dimensions from
/// `cfg`, parameter point-intervals from `args`, memory sizes from `props`.
[[nodiscard]] kir::IntervalEnv env_for(const gpusim::LaunchConfig& cfg,
                                       std::span<const kir::Value> args,
                                       const gpusim::DeviceProps& props);

}  // namespace hauberk::lint
