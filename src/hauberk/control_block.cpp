#include "hauberk/control_block.hpp"

namespace hauberk::core {

ControlBlock::ControlBlock(const kir::BytecodeProgram& program) {
  detectors_.resize(program.detectors.size());
  for (std::size_t i = 0; i < program.detectors.size(); ++i) detectors_[i].meta = program.detectors[i];
  samples_.resize(program.detectors.size());
  exec_counts_.resize(program.fi_sites.size());
}

void ControlBlock::set_ranges(int detector, const RangeSet& rs) {
  auto& d = detectors_.at(static_cast<std::size_t>(detector));
  d.ranges = rs;
  d.configured = true;
}

void ControlBlock::set_alpha(double alpha) { alpha_ = alpha < 1.0 ? 1.0 : alpha; }

void ControlBlock::configure_from_profile(
    const std::vector<std::vector<double>>& samples_per_detector) {
  for (std::size_t d = 0; d < detectors_.size() && d < samples_per_detector.size(); ++d) {
    if (detectors_[d].meta.is_iteration_check) continue;  // exact invariant, no ranges
    if (samples_per_detector[d].empty()) continue;
    set_ranges(static_cast<int>(d), derive_ranges(samples_per_detector[d]));
  }
}

void ControlBlock::reset_results() {
  sdc_.store(false, std::memory_order_relaxed);
  for (auto& d : detectors_) {
    d.checks = 0;
    d.violations = 0;
    d.outliers.clear();
  }
}

std::uint64_t ControlBlock::total_checks() const noexcept {
  std::uint64_t n = 0;
  for (const auto& d : detectors_) n += d.checks;
  return n;
}

std::uint64_t ControlBlock::total_violations() const noexcept {
  std::uint64_t n = 0;
  for (const auto& d : detectors_) n += d.violations;
  return n;
}

void ControlBlock::absorb_outliers() {
  for (auto& d : detectors_) {
    for (double v : d.outliers) d.ranges.absorb(v);
    if (!d.outliers.empty()) d.configured = true;
    d.outliers.clear();
  }
}

bool ControlBlock::check_range(int detector, kir::Value value) {
  // Hot-ish path: one check per protected loop per thread.  Counter updates
  // and outlier recording go under the mutex; the range test itself is
  // read-only on state immutable during the launch.
  auto& d = detectors_[static_cast<std::size_t>(detector)];
  const double v = value.as_double();
  const bool ok = !d.configured || d.ranges.contains(v, alpha_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++d.checks;
    if (!ok) {
      ++d.violations;
      if (d.outliers.size() < kMaxOutliers) d.outliers.push_back(v);
    }
  }
  if (!ok) sdc_.store(true, std::memory_order_relaxed);
  return !ok;
}

void ControlBlock::equal_check_failed(int detector) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& d = detectors_[static_cast<std::size_t>(detector)];
  ++d.checks;
  ++d.violations;
  sdc_.store(true, std::memory_order_relaxed);
}

void ControlBlock::profile_value(int detector, kir::Value value) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& s = samples_[static_cast<std::size_t>(detector)];
  if (s.size() < kMaxSamples) s.push_back(value.as_double());
}

void ControlBlock::prepare_profiling(std::uint64_t total_threads) {
  profile_threads_ = total_threads;
  for (auto& c : exec_counts_) c.assign(total_threads, 0u);
}

void ControlBlock::count_exec(std::uint32_t site_index, std::uint32_t thread_linear) {
  // Distinct threads write distinct cells; no synchronization needed.
  auto& c = exec_counts_[site_index];
  if (thread_linear < c.size()) ++c[thread_linear];
}

}  // namespace hauberk::core
