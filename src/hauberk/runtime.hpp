// The Hauberk framework driver (Fig. 7): from one kernel source, build the
// five program variants (baseline / profiler / FT / FI / FI&FT), run the
// profiler over training jobs to derive value ranges, golden outputs and
// fault-injection targets, and configure control blocks for FT runs.
#pragma once

#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/program.hpp"
#include "hauberk/translator.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::core {

/// The five compiled variants of one GPU kernel (Fig. 7).
struct KernelVariants {
  kir::Kernel source;            ///< original AST (for inspection/printing)
  kir::Kernel ft_source;         ///< instrumented FT AST (translator output)
  kir::Kernel fi_source;         ///< instrumented FI AST (prune analysis input)
  kir::Kernel fift_source;       ///< instrumented FI&FT AST (prune analysis input)
  kir::BytecodeProgram baseline;
  kir::BytecodeProgram profiler;
  kir::BytecodeProgram ft;
  kir::BytecodeProgram fi;
  kir::BytecodeProgram fift;
  TranslateReport ft_report;
  TranslateReport profiler_report;
  TranslateReport fi_report;
  TranslateReport fift_report;
};

/// Compile all five variants.  `opt` controls Maxvar and which detector
/// families are enabled; its `mode` field is ignored.
[[nodiscard]] KernelVariants build_variants(const kir::Kernel& source,
                                            TranslateOptions opt = {});

/// Result of running the profiler variant over one or more training jobs.
struct ProfileData {
  /// Per-detector samples (indexed by detector id), accumulated over runs.
  std::vector<std::vector<double>> samples;
  /// Per-FI-site total execution counts and per-thread counts from the last
  /// profiled job (FI target derivation).
  std::vector<std::vector<std::uint32_t>> exec_counts;
  /// Golden outputs, one per profiled job.
  std::vector<ProgramOutput> golden;
  std::uint64_t total_threads = 0;
};

/// Run the profiler binary over training jobs, accumulating detector value
/// samples and golden outputs.  Jobs run fault-free.
[[nodiscard]] ProfileData profile(gpusim::Device& dev, const KernelVariants& v,
                                  std::vector<KernelJob*> training_jobs);

/// Build a control block for the FT/FI&FT program configured with ranges
/// derived from profile data.
[[nodiscard]] std::unique_ptr<ControlBlock> make_configured_control_block(
    const kir::BytecodeProgram& ft_prog, const ProfileData& pd, double alpha = 1.0);

/// Configure value detectors of `cb` from the lint stage's proven-sound
/// static intervals (TranslateOptions::substitute_static_ranges): every
/// finite StaticDetectorRange in `report.detector_ranges` overwrites the
/// matching detector's RangeSet.  Returns how many detectors were
/// configured.  Static ranges can never raise a Fig. 16 false positive
/// (they contain every attainable value), at the cost of accepting every
/// statically possible value as legitimate.
int apply_static_ranges(ControlBlock& cb, const hauberk::lint::LintReport& report);

}  // namespace hauberk::core
