#include "hauberk/ranges.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>

namespace hauberk::core {

namespace {

/// Smallest magnitude treated as distinguishable from zero when measuring
/// value-space size (single-precision denormal floor).
constexpr double kMagFloor = 1e-38;

double decades(double lo_mag, double hi_mag) {
  lo_mag = std::max(lo_mag, kMagFloor);
  hi_mag = std::max(hi_mag, lo_mag);
  return std::log10(hi_mag / lo_mag);
}

}  // namespace

bool RangeSet::contains(double v, double alpha) const noexcept {
  if (!std::isfinite(v)) return false;
  if (alpha < 1.0) alpha = 1.0;
  const double a = std::fabs(v);
  if (a <= zero_eps * alpha && (has_zero || v == 0.0)) return true;
  if (v > 0.0 && pos.valid) {
    if (a >= pos.lo / alpha && a <= pos.hi * alpha) return true;
  }
  if (v < 0.0 && neg.valid) {
    const double lo_mag = -neg.hi, hi_mag = -neg.lo;  // magnitudes
    if (a >= lo_mag / alpha && a <= hi_mag * alpha) return true;
  }
  return false;
}

void RangeSet::absorb(double v) {
  if (!std::isfinite(v)) return;
  const double a = std::fabs(v);
  if (a <= zero_eps) {
    has_zero = true;
    return;
  }
  if (v > 0.0) {
    if (!pos.valid) {
      pos = {true, v, v};
    } else {
      pos.lo = std::min(pos.lo, v);
      pos.hi = std::max(pos.hi, v);
    }
  } else {
    if (!neg.valid) {
      neg = {true, v, v};
    } else {
      neg.lo = std::min(neg.lo, v);
      neg.hi = std::max(neg.hi, v);
    }
  }
}

double RangeSet::space_decades() const noexcept {
  double total = 0.0;
  if (pos.valid) total += decades(pos.lo, pos.hi);
  if (neg.valid) total += decades(-neg.hi, -neg.lo);
  if (has_zero) total += decades(kMagFloor, zero_eps);
  return total;
}

std::string RangeSet::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "{neg:%s[%g,%g] zero:%s(eps=%g) pos:%s[%g,%g]}",
                neg.valid ? "" : "x", neg.lo, neg.hi, has_zero ? "" : "x", zero_eps,
                pos.valid ? "" : "x", pos.lo, pos.hi);
  return buf;
}

RangeSet derive_ranges_fixed_threshold(std::span<const double> samples, double threshold) {
  RangeSet rs;
  rs.zero_eps = threshold;
  for (double v : samples) {
    if (!std::isfinite(v)) continue;
    const double a = std::fabs(v);
    if (a <= threshold) {
      rs.has_zero = true;
    } else if (v > 0.0) {
      if (!rs.pos.valid) rs.pos = {true, v, v};
      else {
        rs.pos.lo = std::min(rs.pos.lo, v);
        rs.pos.hi = std::max(rs.pos.hi, v);
      }
    } else {
      if (!rs.neg.valid) rs.neg = {true, v, v};
      else {
        rs.neg.lo = std::min(rs.neg.lo, v);
        rs.neg.hi = std::max(rs.neg.hi, v);
      }
    }
  }
  return rs;
}

RangeSet derive_ranges(std::span<const double> samples) {
  // Start from the paper's default threshold (1e-5) and greedily move it by
  // factors of 10 while the total covered value space shrinks.
  double t = 1e-5;
  RangeSet best = derive_ranges_fixed_threshold(samples, t);
  double best_space = best.space_decades();
  for (int iter = 0; iter < 60; ++iter) {
    bool improved = false;
    for (const double cand : {t * 10.0, t * 0.1}) {
      if (cand < 1e-30 || cand > 1e+30) continue;
      RangeSet rs = derive_ranges_fixed_threshold(samples, cand);
      const double space = rs.space_decades();
      if (space < best_space - 1e-12) {
        best = rs;
        best_space = space;
        t = cand;
        improved = true;
        break;  // greedy: follow the first improving direction
      }
    }
    if (!improved) break;
  }
  return best;
}

void save_ranges(std::ostream& os, std::span<const RangeSet> sets) {
  os.precision(17);  // round-trippable doubles
  os << "hauberk-ranges v1 " << sets.size() << "\n";
  for (const auto& rs : sets) {
    os << rs.neg.valid << ' ' << rs.neg.lo << ' ' << rs.neg.hi << ' ' << rs.has_zero << ' '
       << rs.zero_eps << ' ' << rs.pos.valid << ' ' << rs.pos.lo << ' ' << rs.pos.hi << "\n";
  }
}

std::vector<RangeSet> load_ranges(std::istream& is) {
  std::string magic, version;
  std::size_t n = 0;
  is >> magic >> version >> n;
  std::vector<RangeSet> out;
  if (magic != "hauberk-ranges") return out;
  out.resize(n);
  for (auto& rs : out) {
    is >> rs.neg.valid >> rs.neg.lo >> rs.neg.hi >> rs.has_zero >> rs.zero_eps >> rs.pos.valid >>
        rs.pos.lo >> rs.pos.hi;
  }
  return out;
}

}  // namespace hauberk::core
