#include "hauberk/recovery.hpp"

#include <algorithm>

namespace hauberk::core {

using gpusim::Device;
using gpusim::LaunchOptions;
using gpusim::LaunchResult;
using gpusim::LaunchStatus;

const char* recovery_verdict_name(RecoveryVerdict v) noexcept {
  switch (v) {
    case RecoveryVerdict::Success: return "success";
    case RecoveryVerdict::FalseAlarm: return "false-alarm";
    case RecoveryVerdict::TransientRecovered: return "transient-recovered";
    case RecoveryVerdict::MigratedToSpare: return "migrated-to-spare";
    case RecoveryVerdict::UnsupportedSoftware: return "unsupported-software";
    case RecoveryVerdict::Unrecoverable: return "unrecoverable";
  }
  return "?";
}

Guardian::Guardian(GuardianConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.identical)
    cfg_.identical = [](const ProgramOutput& a, const ProgramOutput& b) { return a == b; };
}

std::uint64_t Guardian::watchdog_budget() const noexcept {
  // Preemptive hang detection: kill when the kernel runs hang_factor times
  // longer than its previous execution AND longer than the absolute floor.
  if (prev_cycles_ == 0) return cfg_.hang_floor;
  const double scaled = static_cast<double>(prev_cycles_) * cfg_.hang_factor;
  return std::max(cfg_.hang_floor, static_cast<std::uint64_t>(scaled));
}

Guardian::ExecResult Guardian::execute_once(Device& dev, const kir::BytecodeProgram& prog,
                                            KernelJob& job, ControlBlock& cb) {
  // CheCUDA-style recovery: a checkpoint is taken before the first launch;
  // re-executions on the same device restore the image instead of replaying
  // the host-side setup (Section VI(i)).
  ExecResult r;
  std::vector<kir::Value> args;
  if (cfg_.use_checkpoint && checkpoint_.valid() && checkpoint_dev_ == &dev) {
    checkpoint_.restore(dev);
    args = checkpoint_.args();
    r.from_checkpoint = true;
  } else {
    args = job.setup(dev);
    if (cfg_.use_checkpoint) {
      checkpoint_.capture(dev, args);
      checkpoint_dev_ = &dev;
    }
  }
  cb.reset_results();
  LaunchOptions opts;
  opts.hooks = &cb;
  opts.watchdog_instructions = watchdog_budget();
  opts.charge_control_block = true;
  r.launch = dev.launch(prog, job.config(), args, opts);
  if (r.launch.status == LaunchStatus::Ok) {
    r.output = job.read_output(dev);
    prev_cycles_ = std::max<std::uint64_t>(1, r.launch.instructions / std::max<std::uint64_t>(1, r.launch.threads));
    // Budget is per-thread; remember per-thread instruction scale.
  }
  return r;
}

RecoveryOutcome Guardian::run_protected(Device& dev, Device* spare,
                                        const kir::BytecodeProgram& ft_prog, KernelJob& job,
                                        ControlBlock& cb) {
  RecoveryOutcome out;
  checkpoint_.invalidate();  // a new job: never reuse a previous job's image
  checkpoint_dev_ = nullptr;

  auto run_failure_path = [&](Device& d) -> bool {
    // Returns true when the failure persisted (caller escalates to BIST).
    for (int attempt = 1; attempt < cfg_.max_restarts; ++attempt) {
      ++out.restarts;
      auto r = execute_once(d, ft_prog, job, cb);
      ++out.executions;
      out.checkpoint_restores += r.from_checkpoint;
      out.last_result = r.launch;
      if (r.launch.status == LaunchStatus::Ok) {
        out.output = std::move(r.output);
        return false;
      }
    }
    return true;
  };

  auto escalate_bist = [&](RecoveryVerdict healthy_verdict) {
    out.bist_ran = true;
    // BIST resets device memory, destroying the checkpointed layout.
    checkpoint_.invalidate();
    checkpoint_dev_ = nullptr;
    const BistResult b = run_bist(dev);
    if (b.fault_detected) {
      // Disable the faulty device; migrate to a spare when available.
      dev.set_disabled(true);
      out.device_disabled = true;
      if (spare != nullptr && !spare->disabled()) {
        auto r = execute_once(*spare, ft_prog, job, cb);
        ++out.executions;
        out.last_result = r.launch;
        if (r.launch.status == LaunchStatus::Ok) {
          out.output = std::move(r.output);
          out.verdict = RecoveryVerdict::MigratedToSpare;
          return;
        }
      }
      out.verdict = RecoveryVerdict::Unrecoverable;
    } else {
      // Healthy hardware: the program has a bug or is nondeterministic.
      out.verdict = healthy_verdict;
    }
  };

  // --- first execution ---
  auto first = execute_once(dev, ft_prog, job, cb);
  ++out.executions;
  out.checkpoint_restores += first.from_checkpoint;
  out.last_result = first.launch;

  if (first.launch.status != LaunchStatus::Ok) {
    // Kernel failure: guardian restarts; repeated failure => device diagnosis.
    if (!run_failure_path(dev)) {
      out.verdict = RecoveryVerdict::Success;
      return out;
    }
    escalate_bist(RecoveryVerdict::UnsupportedSoftware);
    return out;
  }

  const bool alarm1 = first.launch.sdc_alarm || cb.sdc_detected();
  if (!alarm1) {
    out.verdict = RecoveryVerdict::Success;
    out.output = std::move(first.output);
    return out;
  }

  // --- SDC alarm: diagnose by reexecution (assume false positive first) ---
  // Preserve the first run's recorded outliers for potential on-line learning.
  std::vector<std::vector<double>> outliers1;
  for (const auto& d : cb.detectors()) outliers1.push_back(d.outliers);

  auto second = execute_once(dev, ft_prog, job, cb);
  ++out.executions;
  out.checkpoint_restores += second.from_checkpoint;
  out.last_result = second.launch;

  if (second.launch.status != LaunchStatus::Ok) {
    if (!run_failure_path(dev)) {
      out.verdict = RecoveryVerdict::TransientRecovered;
      return out;
    }
    escalate_bist(RecoveryVerdict::UnsupportedSoftware);
    return out;
  }

  const bool alarm2 = second.launch.sdc_alarm || cb.sdc_detected();
  if (!alarm2) {
    // Alarm disappeared: transient or short intermittent fault; take the
    // reexecution's output.
    out.verdict = RecoveryVerdict::TransientRecovered;
    out.output = std::move(second.output);
    return out;
  }

  if (cfg_.identical(first.output, second.output)) {
    // Both executions alarm with identical outputs: false positive.
    // On-line learning: absorb the outliers into the value ranges.
    for (std::size_t d = 0; d < cb.detectors().size() && d < outliers1.size(); ++d)
      for (double v : outliers1[d]) cb.detectors()[d].ranges.absorb(v);
    cb.absorb_outliers();
    out.verdict = RecoveryVerdict::FalseAlarm;
    out.output = std::move(second.output);
    return out;
  }

  // Alarms with differing outputs: suspect long intermittent/permanent fault.
  escalate_bist(RecoveryVerdict::UnsupportedSoftware);
  if (out.verdict == RecoveryVerdict::UnsupportedSoftware) out.output = std::move(second.output);
  return out;
}

bool BackoffDaemon::tick(double now) {
  if (!dev_->disabled()) return false;
  if (now < next_due_) return false;
  ++bist_runs_;
  // Temporarily enable the device so the self-test can launch on it.
  dev_->set_disabled(false);
  const BistResult b = run_bist(*dev_);
  if (!b.fault_detected) return true;  // healthy again: leave it enabled
  dev_->set_disabled(true);
  backoff_ *= 2.0;  // exponential backoff between diagnosis attempts
  next_due_ = now + backoff_;
  return false;
}

}  // namespace hauberk::core
