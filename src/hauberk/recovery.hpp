// Retry-based error recovery (Section VI, Fig. 11).
//
// The guardian supervises instrumented GPU program runs:
//  * restarts on kernel failure; two failures of the same kernel on the same
//    input trigger BIST device diagnosis;
//  * preemptive hang detection: a kernel running longer than hang_factor x
//    its previous execution time AND longer than an absolute floor is
//    killed (mapped onto the interpreter's per-thread watchdog);
//  * SDC alarms are diagnosed by reexecution: identical outputs => false
//    alarm (ranges updated, on-line learning); clean second run => transient
//    fault; differing outputs => BIST; a detected hardware fault disables
//    the device and migrates the job to a spare;
//  * a backoff daemon periodically re-tests disabled devices with doubling
//    T_backoff and re-enables them once the (intermittent) fault clears.
//
// AlphaController implements Section VI(iii): the range-widening factor
// alpha is multiplied by 10 when the observed false-positive ratio exceeds
// 10% and divided by 10 (floor 1) when it drops below 5%.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "gpusim/device.hpp"
#include "hauberk/bist.hpp"
#include "hauberk/checkpoint.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/program.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::core {

struct GuardianConfig {
  double hang_factor = 10.0;          ///< T: multiple of previous execution time
  std::uint64_t hang_floor = 20'000'000;  ///< absolute watchdog floor (instructions)
  int max_restarts = 2;               ///< failures of same kernel+input before BIST
  bool use_checkpoint = true;         ///< restore memory image instead of full re-setup
  /// Output-identity predicate for false-alarm diagnosis.  Defaults to exact
  /// equality (deterministic programs); nondeterministic programs supply a
  /// tolerance comparator (paper: within 2x the correctness requirement).
  std::function<bool(const ProgramOutput&, const ProgramOutput&)> identical;
};

enum class RecoveryVerdict : std::uint8_t {
  Success,            ///< clean run, no alarm
  FalseAlarm,         ///< alarm on both runs, identical outputs; ranges updated
  TransientRecovered, ///< alarm then clean reexecution; second output taken
  MigratedToSpare,    ///< BIST found a device fault; job re-ran on the spare
  UnsupportedSoftware,///< differing outputs but healthy device (bug/nondeterminism)
  Unrecoverable,      ///< repeated failure and no spare available
};

[[nodiscard]] const char* recovery_verdict_name(RecoveryVerdict v) noexcept;

struct RecoveryOutcome {
  RecoveryVerdict verdict = RecoveryVerdict::Success;
  ProgramOutput output;
  gpusim::LaunchResult last_result;
  int executions = 0;
  int restarts = 0;
  bool bist_ran = false;
  bool device_disabled = false;
  int checkpoint_restores = 0;  ///< re-executions served from the checkpoint
};

class Guardian {
 public:
  explicit Guardian(GuardianConfig cfg = {});

  /// Run one job under full Fig. 11 supervision.  `spare` may be null (no
  /// migration target).  The control block must be configured (ranges) for
  /// the FT program.
  RecoveryOutcome run_protected(gpusim::Device& dev, gpusim::Device* spare,
                                const kir::BytecodeProgram& ft_prog, KernelJob& job,
                                ControlBlock& cb);

  [[nodiscard]] std::uint64_t previous_cycles() const noexcept { return prev_cycles_; }

 private:
  struct ExecResult {
    gpusim::LaunchResult launch;
    ProgramOutput output;
    bool from_checkpoint = false;
  };
  ExecResult execute_once(gpusim::Device& dev, const kir::BytecodeProgram& prog, KernelJob& job,
                          ControlBlock& cb);
  [[nodiscard]] std::uint64_t watchdog_budget() const noexcept;

  GuardianConfig cfg_;
  std::uint64_t prev_cycles_ = 0;  ///< previous instruction count (hang baseline)
  Checkpoint checkpoint_;          ///< pre-launch memory image (Section VI(i))
  gpusim::Device* checkpoint_dev_ = nullptr;  ///< device the image belongs to
};

/// Section VI(iii): adaptive control of the range-widening factor.
class AlphaController {
 public:
  AlphaController(double hi_threshold = 0.10, double lo_threshold = 0.05, double factor = 10.0)
      : hi_(hi_threshold), lo_(lo_threshold), factor_(factor) {}

  /// Feed the false-positive ratio observed since the last update.
  void update(double false_positive_ratio) {
    if (false_positive_ratio > hi_) {
      alpha_ *= factor_;
    } else if (false_positive_ratio < lo_ && alpha_ / factor_ >= 1.0) {
      alpha_ /= factor_;
    }
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  void set_alpha(double a) noexcept { alpha_ = a < 1.0 ? 1.0 : a; }

 private:
  double hi_, lo_, factor_;
  double alpha_ = 1.0;
};

/// Periodically re-tests a disabled device with exponentially growing delay
/// and re-enables it once BIST passes (Section VI(ii)(c)).  Time is a
/// simulated clock advanced by the caller.
class BackoffDaemon {
 public:
  explicit BackoffDaemon(gpusim::Device& dev, double t_backoff_initial = 1.0)
      : dev_(&dev), backoff_(t_backoff_initial) {}

  /// Advance simulated time; runs BIST when due.  Returns true if the device
  /// was re-enabled during this tick.
  bool tick(double now);

  [[nodiscard]] double current_backoff() const noexcept { return backoff_; }
  [[nodiscard]] int bist_runs() const noexcept { return bist_runs_; }

 private:
  gpusim::Device* dev_;
  double backoff_;
  double next_due_ = 0.0;
  int bist_runs_ = 0;
};

}  // namespace hauberk::core
