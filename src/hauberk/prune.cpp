#include "hauberk/prune.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "kir/analysis.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/defuse.hpp"

namespace hauberk::prune {

const SiteFacts* KernelPruneFacts::find(std::uint32_t site_id) const noexcept {
  const auto it = std::lower_bound(
      sites.begin(), sites.end(), site_id,
      [](const SiteFacts& f, std::uint32_t id) { return f.site_id < id; });
  return it != sites.end() && it->site_id == site_id ? &*it : nullptr;
}

const KernelPruneFacts* PruningPlan::find(const std::string& kernel) const noexcept {
  for (const KernelPruneFacts& k : kernels)
    if (k.kernel == kernel) return &k;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Facts builder
// ---------------------------------------------------------------------------

namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

}  // namespace

KernelPruneFacts build_kernel_prune_facts(const kir::Kernel& instrumented,
                                          const kir::BytecodeProgram& program,
                                          kir::AnalysisManager* am) {
  kir::AnalysisManager local(instrumented);
  kir::AnalysisManager& mgr = am ? *am : local;
  const kir::DefUseAnalysis& du = mgr.def_use();
  const kir::Analysis& an = mgr.analysis();

  KernelPruneFacts out;
  out.kernel = instrumented.name;
  out.program_digest = kir::program_digest(program);
  out.sites.reserve(program.fi_sites.size());
  for (const kir::FISite& site : program.fi_sites) {
    SiteFacts f;
    f.site_id = site.site_id;
    if (site.var < instrumented.vars.size()) {
      const kir::VarDefUse& v = du.var(site.var);
      // A dead-window hook fires after the variable's last semantic use in
      // the statement list of its definition: stores/branches can no longer
      // see the flip, but detectors that re-read the value at check time
      // (checksum validate, dup compare) still can — only the
      // detector-reachable bits stay live.  The window claim does not hold
      // for values that outlive that list: a loop-carried variable is read
      // again by the next iteration, and a use-before-def variable has reads
      // the placement scan cannot order against the hook.
      const bool window_closed = !v.loop_carried && !v.use_before_def;
      f.live_mask = site.dead_window && window_closed ? v.detector_observed_mask
                                                     : v.observed_mask;
      f.uniform = !v.divergent;
      const bool iterator_site = site.hw == kir::HwComponent::Scheduler ||
                                 an.facts(site.var).is_loop_iterator;
      f.occ_symmetric = du.occurrence_symmetric(site.var) && !iterator_site;
      // Fold the site-level attributes the cone hash cannot see from the
      // variable alone: hw component, dtype, loop membership, dead window.
      f.cone_sig = fnv(v.cone_sig, static_cast<std::uint64_t>(site.hw));
      f.cone_sig = fnv(f.cone_sig, static_cast<std::uint64_t>(site.type));
      f.cone_sig = fnv(f.cone_sig, (site.in_loop ? 2u : 0u) | (site.dead_window ? 1u : 0u));
    } else {
      f.live_mask = 0xffffffffu;  // unknown var: never prune
      f.cone_sig = fnv(0x6261Dull, site.site_id);
    }
    out.sites.push_back(f);
  }
  std::sort(out.sites.begin(), out.sites.end(),
            [](const SiteFacts& a, const SiteFacts& b) { return a.site_id < b.site_id; });
  return out;
}

// ---------------------------------------------------------------------------
// Serializer (canonical: fixed field order, sites sorted by id)
// ---------------------------------------------------------------------------

namespace {

constexpr int kPruneVersion = 1;

void write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

std::string hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  if (v == 0) return "0";
  char buf[16];
  int i = 16;
  while (v != 0) {
    buf[--i] = digits[v & 0xf];
    v >>= 4;
  }
  return std::string(buf + i, buf + 16);
}

}  // namespace

std::string serialize_pruning_plan(const PruningPlan& plan) {
  std::string out = "(hauberk-prune " + std::to_string(kPruneVersion);
  for (const KernelPruneFacts& k : plan.kernels) {
    out += "\n (kernel ";
    write_string(out, k.kernel);
    out += " (program " + hex(k.program_digest) + ")";
    for (const SiteFacts& f : k.sites) {
      out += "\n  (site " + std::to_string(f.site_id);
      out += " (live " + hex(f.live_mask) + ")";
      out += " (cone " + hex(f.cone_sig) + ")";
      out += std::string(" (uniform ") + (f.uniform ? "1)" : "0)");
      out += std::string(" (occsym ") + (f.occ_symmetric ? "1)" : "0)");
      out += ")";
    }
    out += ")";
  }
  out += ")\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser (same strict tokenizer dialect as hauberk/plan.cpp)
// ---------------------------------------------------------------------------

namespace {

struct Tok {
  enum Kind { LParen, RParen, Atom, Str, End } kind = End;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Tok next() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\n' || src_[pos_] == '\t' ||
            src_[pos_] == '\r'))
      ++pos_;
    if (pos_ >= src_.size()) return {Tok::End, ""};
    const char c = src_[pos_];
    if (c == '(') { ++pos_; return {Tok::LParen, "("}; }
    if (c == ')') { ++pos_; return {Tok::RParen, ")"}; }
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        char ch = src_[pos_++];
        if (ch == '\\') {
          if (pos_ >= src_.size()) fail("unterminated escape");
          const char e = src_[pos_++];
          switch (e) {
            case '"': ch = '"'; break;
            case '\\': ch = '\\'; break;
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            default: fail("bad escape");
          }
        }
        s += ch;
      }
      if (pos_ >= src_.size()) fail("unterminated string");
      ++pos_;  // closing quote
      return {Tok::Str, std::move(s)};
    }
    std::string a;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != ')' &&
           src_[pos_] != '"' && src_[pos_] != ' ' && src_[pos_] != '\n' &&
           src_[pos_] != '\t' && src_[pos_] != '\r')
      a += src_[pos_++];
    return {Tok::Atom, std::move(a)};
  }

  [[noreturn]] static void fail(const std::string& why) {
    throw std::runtime_error("hauberk-prune parse error: " + why);
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
};

class PruneParser {
 public:
  explicit PruneParser(const std::string& src) : lex_(src) { advance(); }

  PruningPlan parse() {
    expect(Tok::LParen, "plan must start with '('");
    expect_atom("hauberk-prune");
    const std::uint64_t ver = expect_hex("version");
    if (ver != static_cast<std::uint64_t>(kPruneVersion))
      Lexer::fail("unsupported version " + std::to_string(ver));
    PruningPlan plan;
    while (cur_.kind == Tok::LParen) plan.kernels.push_back(parse_kernel(plan));
    expect(Tok::RParen, "expected ')' closing hauberk-prune");
    if (cur_.kind != Tok::End) Lexer::fail("trailing garbage after plan");
    return plan;
  }

 private:
  KernelPruneFacts parse_kernel(const PruningPlan& so_far) {
    expect(Tok::LParen, "expected '(kernel ...)'");
    expect_atom("kernel");
    KernelPruneFacts k;
    if (cur_.kind != Tok::Str) Lexer::fail("kernel name must be a quoted string");
    k.kernel = cur_.text;
    advance();
    for (const KernelPruneFacts& prev : so_far.kernels)
      if (prev.kernel == k.kernel)
        Lexer::fail("duplicate kernel entry \"" + k.kernel + "\"");
    expect(Tok::LParen, "expected '(program ...)'");
    expect_atom("program");
    k.program_digest = expect_hex("program digest");
    expect(Tok::RParen, "expected ')' closing program");
    while (cur_.kind == Tok::LParen) parse_site(k);
    expect(Tok::RParen, "expected ')' closing kernel entry");
    return k;
  }

  void parse_site(KernelPruneFacts& k) {
    advance();  // consume '('
    expect_atom("site");
    SiteFacts f;
    const std::uint64_t id = expect_hex("site id");
    if (id > 0xffffffffull) Lexer::fail("site id out of range");
    f.site_id = static_cast<std::uint32_t>(id);
    if (std::any_of(k.sites.begin(), k.sites.end(),
                    [&](const SiteFacts& s) { return s.site_id == f.site_id; }))
      Lexer::fail("duplicate site entry " + std::to_string(f.site_id));
    while (cur_.kind == Tok::LParen) {
      advance();
      if (cur_.kind != Tok::Atom) Lexer::fail("expected site field name");
      const std::string field = cur_.text;
      advance();
      if (field == "live") {
        const std::uint64_t v = expect_hex("live mask");
        if (v > 0xffffffffull) Lexer::fail("live mask out of range");
        f.live_mask = static_cast<std::uint32_t>(v);
      } else if (field == "cone") {
        f.cone_sig = expect_hex("cone signature");
      } else if (field == "uniform") {
        f.uniform = expect_bit("uniform");
      } else if (field == "occsym") {
        f.occ_symmetric = expect_bit("occsym");
      } else {
        Lexer::fail("unknown site field '" + field + "'");
      }
      expect(Tok::RParen, "expected ')' closing site field");
    }
    expect(Tok::RParen, "expected ')' closing site entry");
    k.sites.push_back(f);
  }

  std::uint64_t expect_hex(const std::string& what) {
    if (cur_.kind != Tok::Atom || cur_.text.empty() || cur_.text.size() > 16)
      Lexer::fail(what + " must be a hex number");
    std::uint64_t v = 0;
    for (const char c : cur_.text) {
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
      else Lexer::fail(what + " must be a hex number");
    }
    advance();
    return v;
  }

  bool expect_bit(const std::string& what) {
    if (cur_.kind != Tok::Atom || (cur_.text != "0" && cur_.text != "1"))
      Lexer::fail(what + " must be 0 or 1");
    const bool on = cur_.text == "1";
    advance();
    return on;
  }

  void expect_atom(const std::string& word) {
    if (cur_.kind != Tok::Atom || cur_.text != word)
      Lexer::fail("expected '" + word + "'");
    advance();
  }

  void expect(Tok::Kind kd, const std::string& why) {
    if (cur_.kind != kd) Lexer::fail(why);
    advance();
  }

  void advance() { cur_ = lex_.next(); }

  Lexer lex_;
  Tok cur_;
};

}  // namespace

PruningPlan parse_pruning_plan(const std::string& text) { return PruneParser(text).parse(); }

PruningPlan load_pruning_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("hauberk-prune: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_pruning_plan(buf.str());
}

std::uint64_t pruning_plan_digest(const PruningPlan& plan) noexcept {
  if (plan.trivial()) return 0;  // prune-free campaign digests must not move
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : serialize_pruning_plan(plan)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h ? h : 1;
}

}  // namespace hauberk::prune
