#include "hauberk/pipeline.hpp"

#include <stdexcept>

namespace hauberk::core {

namespace {

/// Adapts one pipeline stage to the guardian's KernelJob interface.  setup()
/// rebuilds the stage's input state from scratch: re-stage all inputs, then
/// replay the prerequisite stages fault-free.  The guardian's checkpoint
/// makes diagnosis re-executions skip this replay (Section VI(i)).
class StageJob final : public KernelJob {
 public:
  StageJob(PipelineJob& job, const std::vector<const kir::BytecodeProgram*>& baselines,
           int stage)
      : job_(&job), baselines_(&baselines), stage_(stage) {}

  std::vector<kir::Value> setup(gpusim::Device& dev) override {
    job_->stage_inputs(dev);
    for (int s = 0; s < stage_; ++s) {
      const auto args = job_->args(s);
      const auto res = dev.launch(*(*baselines_)[static_cast<std::size_t>(s)], job_->config(s),
                                  args);
      if (res.status != gpusim::LaunchStatus::Ok)
        throw std::runtime_error("pipeline: prerequisite stage replay failed");
    }
    return job_->args(stage_);
  }

  [[nodiscard]] gpusim::LaunchConfig config() const override { return job_->config(stage_); }

  [[nodiscard]] ProgramOutput read_output(const gpusim::Device& dev) const override {
    // Intermediate stages have no host-visible output of their own; the
    // guardian's output-identity diagnosis compares the final product, so we
    // surface the program output buffer at every stage.
    return job_->read_output(dev);
  }

 private:
  PipelineJob* job_;
  const std::vector<const kir::BytecodeProgram*>* baselines_;
  int stage_;
};

}  // namespace

PipelineOutcome run_pipeline_protected(Guardian& guardian, gpusim::Device& dev,
                                       gpusim::Device* spare,
                                       const std::vector<PipelineStage>& stages,
                                       const std::vector<const kir::BytecodeProgram*>& baselines,
                                       PipelineJob& job) {
  PipelineOutcome out;
  if (stages.size() != baselines.size() ||
      static_cast<int>(stages.size()) != job.num_stages())
    throw std::invalid_argument("pipeline: stage count mismatch");

  gpusim::Device* current = &dev;
  for (int s = 0; s < job.num_stages(); ++s) {
    StageJob stage_job(job, baselines, s);
    auto r = guardian.run_protected(*current, spare,
                                    *stages[static_cast<std::size_t>(s)].program, stage_job,
                                    *stages[static_cast<std::size_t>(s)].cb);
    out.total_executions += r.executions;
    const bool ok = r.verdict != RecoveryVerdict::Unrecoverable &&
                    r.verdict != RecoveryVerdict::UnsupportedSoftware;
    // A migration moves the whole remaining pipeline to the spare device.
    if (r.verdict == RecoveryVerdict::MigratedToSpare && spare != nullptr) {
      current = spare;
      spare = nullptr;
    }
    out.stages.push_back(std::move(r));
    if (!ok) return out;
  }
  out.completed = true;
  out.output = job.read_output(*current);
  return out;
}

}  // namespace hauberk::core
