// Structured selective-hardening plans.
//
// A HardeningPlan is the first-class replacement for the stringly
// TranslateOptions::pipeline_override hook: per-kernel, per-loop, and
// per-variable decisions about which Hauberk detectors to place —
// Hauberk-L loop checks (accumulator + range + iteration invariants),
// non-loop checksum+duplication, the naive Fig. 8(b) shadow-duplication
// ablation — or nothing at all.  Plans
//
//   * serialize to / parse from a small s-expression (mirroring
//     kir::serialize_kernel's flat, strict format),
//   * carry a digest that campaign results fold into campaign_digest so a
//     stored run is bound to the exact plan that produced it, and
//   * adapt onto the existing pass framework via apply_plan() /
//     plan_to_pipeline(), so PassPipeline composition, the idempotence
//     guard, and structured PassRemarks keep working unchanged.
//
// A *trivial* plan (no kernel entry expresses a decision) is guaranteed to
// be indistinguishable from no plan: same pipeline name, same program and
// remark digests, digest 0.  That invariant is what keeps the 216 golden
// translator digests and existing campaign digests bitwise stable.
//
// The budgeted optimizer (hauberk/opt.hpp) and the kirtune CLI produce
// plans; fault_campaign/campaignd consume them via --plan=FILE.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hauberk/translator.hpp"

namespace hauberk::core {

/// Three-state switch: Default defers to the TranslateOptions the plan is
/// applied over, so a plan only overrides what it explicitly decides.
enum class Tri : std::uint8_t { Default, Off, On };

[[nodiscard]] const char* tri_name(Tri t) noexcept;

/// Decisions for one kernel (or the wildcard entry, kernel == "").
struct KernelPlan {
  std::string kernel;          ///< exact kernel name; "" matches any kernel
  int maxvar = -1;             ///< Maxvar override; -1 inherits the options
  Tri loops = Tri::Default;    ///< Hauberk-L loop detectors master switch
  Tri nonloop = Tri::Default;  ///< non-loop checksum+dup master switch
  Tri naive = Tri::Default;    ///< Fig. 8(b) naive duplication ablation
  /// Per-top-level-loop override, keyed by kir loop id.  If any entry is
  /// On, the map is an allowlist (unlisted loops are skipped); otherwise it
  /// is a denylist (Off entries are skipped, the rest instrumented).
  std::map<std::uint32_t, bool> loop_actions;
  /// Per-variable override for non-loop protection, keyed by source
  /// variable name; same allowlist/denylist rule as loop_actions.
  std::map<std::string, bool> var_actions;

  [[nodiscard]] bool trivial() const noexcept;
};

/// Is top-level loop `loop_id` / variable `name` selected for protection
/// under this kernel's plan?  (Only consulted while the corresponding pass
/// is in the pipeline at all — master Off switches remove the pass.)
[[nodiscard]] bool plan_allows_loop(const KernelPlan& kp, std::uint32_t loop_id) noexcept;
[[nodiscard]] bool plan_allows_var(const KernelPlan& kp, const std::string& name) noexcept;

struct HardeningPlan {
  std::vector<KernelPlan> kernels;

  /// Exact-name match first, then the wildcard entry, else nullptr.
  [[nodiscard]] const KernelPlan* find(const std::string& kernel_name) const noexcept;
  [[nodiscard]] bool trivial() const noexcept;
};

/// Canonical s-expression form, e.g.
///   (hauberk-plan 1
///     (kernel "mm"
///       (maxvar 2) (loops on) (nonloop off) (naive default)
///       (loop 3 on) (var "acc" off)))
/// Serialization is canonical: parse(serialize(p)) reproduces p exactly and
/// two plans serialize equal iff they decide equally.
[[nodiscard]] std::string serialize_plan(const HardeningPlan& plan);

/// Strict parser for the serialize_plan format; throws std::runtime_error
/// with a diagnostic on any malformed input (unknown atom, bad arity,
/// duplicate kernel entry, trailing garbage, out-of-range numbers).
[[nodiscard]] HardeningPlan parse_plan(const std::string& text);

/// Read and parse a plan file (the --plan=FILE form every campaign tool
/// accepts); throws std::runtime_error naming the path on I/O failure and
/// propagates parse_plan's diagnostics otherwise.
[[nodiscard]] HardeningPlan load_plan(const std::string& path);

/// Stable identity for campaign binding: 0 for a trivial plan (so digests
/// of plan-free campaigns never move), otherwise a nonzero FNV-1a over the
/// canonical serialization.
[[nodiscard]] std::uint64_t plan_digest(const HardeningPlan& plan) noexcept;

/// Resolve `plan` for one kernel: returns `opt` with the kernel's master
/// switches and Maxvar folded in and TranslateOptions::kernel_plan pointing
/// at the matched entry (which the instrumentation passes consult for
/// per-loop / per-variable decisions).  The pointer aliases `plan`, which
/// must outlive the returned options — translate() guarantees this by
/// holding the plan through TranslateOptions::plan.
[[nodiscard]] TranslateOptions apply_plan(const TranslateOptions& opt,
                                          const HardeningPlan& plan,
                                          const std::string& kernel_name);

/// Adapter onto the pass framework: the pipeline pipeline_for() composes
/// for the plan-resolved options, with a ".plan" name suffix when the
/// kernel's entry is non-trivial.  `resolved`, when given, receives the
/// apply_plan() result the pipeline was composed for (what a PassContext
/// should run with).
[[nodiscard]] PassPipeline plan_to_pipeline(const HardeningPlan& plan,
                                            const TranslateOptions& base,
                                            const std::string& kernel_name,
                                            TranslateOptions* resolved = nullptr);

}  // namespace hauberk::core
