#include "hauberk/bist.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "kir/builder.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::core {

using namespace hauberk::kir;
using gpusim::Device;
using gpusim::LaunchConfig;
using gpusim::LaunchStatus;

namespace {

/// Each test writes one word per thread; the host recomputes the expected
/// value with identical single-precision arithmetic and compares bit-exactly.
struct TestProgram {
  BytecodeProgram prog;
  std::vector<std::uint32_t> (*expected)(std::uint32_t threads);
};

constexpr int kAluSteps = 64;
constexpr int kFpuSteps = 32;
constexpr int kMovSteps = 24;

BytecodeProgram build_alu_test() {
  KernelBuilder kb("bist_alu");
  auto out = kb.param_ptr("out");
  auto x = kb.let("x", kb.thread_linear());
  kb.for_loop("k", i32c(0), i32c(kAluSteps),
              [&](ExprH) { kb.assign(x, x * i32c(3) + i32c(7)); });
  kb.store(out + kb.thread_linear(), x);
  return lower(kb.build());
}

std::vector<std::uint32_t> alu_expected(std::uint32_t threads) {
  std::vector<std::uint32_t> out(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::int32_t x = static_cast<std::int32_t>(t);
    for (int k = 0; k < kAluSteps; ++k)
      x = static_cast<std::int32_t>(static_cast<std::int64_t>(x) * 3 + 7);
    out[t] = static_cast<std::uint32_t>(x);
  }
  return out;
}

BytecodeProgram build_fpu_test() {
  KernelBuilder kb("bist_fpu");
  auto out = kb.param_ptr("out");
  auto y = kb.let("y", to_f32(kb.thread_linear()) * f32c(0.5f) + f32c(1.0f));
  kb.for_loop("k", i32c(0), i32c(kFpuSteps),
              [&](ExprH) { kb.assign(y, y * f32c(0.75f) + sqrt_(abs_(y)) - f32c(0.125f)); });
  kb.store(out + kb.thread_linear(), y);
  return lower(kb.build());
}

std::vector<std::uint32_t> fpu_expected(std::uint32_t threads) {
  std::vector<std::uint32_t> out(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    float y = static_cast<float>(t) * 0.5f + 1.0f;
    for (int k = 0; k < kFpuSteps; ++k) y = y * 0.75f + std::sqrt(std::fabs(y)) - 0.125f;
    out[t] = Value::f32(y).bits;
  }
  return out;
}

BytecodeProgram build_regfile_test() {
  KernelBuilder kb("bist_regfile");
  auto out = kb.param_ptr("out");
  // Multiplicative hash of the thread id: a flipped register bit cannot be
  // compensated by a correlated flip of the store address (a plain
  // tid^const payload would self-cancel under single-bit faults).
  ExprH cur = kb.let("r0", kb.thread_linear() * i32c(-1640531527) + i32c(0x5a5a5a5a));
  for (int k = 1; k <= kMovSteps; ++k) cur = kb.let("r" + std::to_string(k), cur);
  kb.store(out + kb.thread_linear(), cur);
  return lower(kb.build());
}

std::vector<std::uint32_t> regfile_expected(std::uint32_t threads) {
  std::vector<std::uint32_t> out(threads);
  for (std::uint32_t t = 0; t < threads; ++t)
    out[t] = static_cast<std::uint32_t>(t) * 0x9e3779b9u + 0x5a5a5a5au;
  return out;
}

/// Run one test program on every SM; returns true when output mismatches or
/// the kernel fails.
bool run_one(Device& dev, const BytecodeProgram& prog,
             std::vector<std::uint32_t> (*expected)(std::uint32_t), bool& crashed) {
  // Two blocks per SM so every simulated SM executes the kernel.
  const LaunchConfig cfg{dev.props().num_sms * 2, 1, 32, 1};
  const auto threads = static_cast<std::uint32_t>(cfg.total_threads());
  dev.reset_memory();
  const std::uint32_t buf = dev.mem().alloc(threads);
  const Value args[] = {Value::ptr(buf)};
  const auto res = dev.launch(prog, cfg, args);
  if (res.status != LaunchStatus::Ok) {
    crashed = true;
    return true;
  }
  std::vector<std::uint32_t> got(threads);
  dev.mem().copy_out(buf, got);
  return got != expected(threads);
}

}  // namespace

BistResult run_bist(Device& dev) {
  BistResult r;
  r.alu_failed = run_one(dev, build_alu_test(), alu_expected, r.crashed);
  r.fpu_failed = run_one(dev, build_fpu_test(), fpu_expected, r.crashed);
  r.regfile_failed = run_one(dev, build_regfile_test(), regfile_expected, r.crashed);
  r.fault_detected = r.alu_failed || r.fpu_failed || r.regfile_failed;
  return r;
}

}  // namespace hauberk::core
