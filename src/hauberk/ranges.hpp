// Value-range model of the Hauberk loop error detector (Section V.B).
//
// The paper's measurement (Fig. 10) shows that FP variables typically
// cluster around *three correlation points*: one negative, one near zero,
// one positive.  The profiling algorithm therefore partitions observed
// values by two symmetric thresholds (+/-t), derives a [min,max] range per
// partition, and searches t over powers of ten to minimize the total covered
// value space.  At run time a value is an outlier when it falls in none of
// the (alpha-widened) ranges; alpha recalibration trades false positives for
// false negatives (Section VI(iii), Fig. 16).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace hauberk::core {

/// One closed magnitude interval on one side of zero.
struct Interval {
  bool valid = false;
  double lo = 0.0;  ///< smallest observed value (signed)
  double hi = 0.0;  ///< largest observed value (signed)
};

/// Up to three correlation ranges: negative values, a zero band |v| <= zero_eps,
/// and positive values.
struct RangeSet {
  Interval neg;     ///< both bounds negative
  Interval pos;     ///< both bounds positive
  bool has_zero = false;
  double zero_eps = 1e-5;

  /// Membership with alpha widening: each range's magnitude bounds are
  /// widened to [min/alpha, max*alpha] (the paper widens positive bounds
  /// multiplicatively; we apply the same rule to magnitudes on both sides).
  [[nodiscard]] bool contains(double v, double alpha = 1.0) const noexcept;

  /// On-line learning: absorb an observed legitimate value so future checks
  /// accept it (Section VI: updated ranges stored after a false alarm).
  void absorb(double v);

  /// Total covered value space in decades, the objective minimized by the
  /// threshold search.
  [[nodiscard]] double space_decades() const noexcept;

  [[nodiscard]] bool empty() const noexcept { return !neg.valid && !pos.valid && !has_zero; }
  [[nodiscard]] std::string to_string() const;
};

/// Derive a RangeSet from profiled samples using the paper's threshold
/// search: start at t = 1e-5, move t by factors of 10 while the total value
/// space shrinks.
[[nodiscard]] RangeSet derive_ranges(std::span<const double> samples);

/// Partition samples at a fixed threshold (exposed for tests/ablation).
[[nodiscard]] RangeSet derive_ranges_fixed_threshold(std::span<const double> samples,
                                                     double threshold);

// Serialization (the paper's profiler stores value ranges to a file at
// main() exit; the FT build loads them at main() entry).
void save_ranges(std::ostream& os, std::span<const RangeSet> sets);
[[nodiscard]] std::vector<RangeSet> load_ranges(std::istream& is);

}  // namespace hauberk::core
