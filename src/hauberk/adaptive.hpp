// On-line adaptive protection (Section VI(iii)): "this false alarm diagnosis
// can calculate the false positive ratio.  If the current false positive
// ratio of a Hauberk loop error detector is higher than a threshold (e.g.
// 10%), the recovery engine increases the parameter alpha (e.g. by
// multiplying 10).  If the false positive ratio is smaller than another
// threshold (e.g. 5%), it reduces the alpha ... as far as alpha is larger
// than or equal to 1."
//
// AdaptiveProtection is the long-running service view of Hauberk: it owns a
// guardian, a configured control block and an AlphaController, runs incoming
// jobs under protection, counts guardian-diagnosed false alarms over a
// sliding window, and recalibrates alpha after every window.
#pragma once

#include <cstdint>
#include <deque>

#include "hauberk/recovery.hpp"

namespace hauberk::core {

class AdaptiveProtection {
 public:
  struct Config {
    std::size_t window = 10;       ///< runs per recalibration window
    double hi_threshold = 0.10;    ///< FP ratio above which alpha grows
    double lo_threshold = 0.05;    ///< FP ratio below which alpha shrinks
    double factor = 10.0;
    GuardianConfig guardian;
  };

  explicit AdaptiveProtection(ControlBlock& cb) : AdaptiveProtection(cb, Config{}) {}
  AdaptiveProtection(ControlBlock& cb, Config cfg)
      : cb_(&cb), cfg_(cfg), guardian_(cfg.guardian),
        alpha_(cfg.hi_threshold, cfg.lo_threshold, cfg.factor) {
    cb_->set_alpha(alpha_.alpha());
  }

  /// Run one job under protection; updates the false-positive statistics
  /// and, at window boundaries, the alpha configured into the control block.
  RecoveryOutcome run(gpusim::Device& dev, gpusim::Device* spare,
                      const kir::BytecodeProgram& ft_prog, KernelJob& job) {
    auto out = guardian_.run_protected(dev, spare, ft_prog, job, *cb_);
    recent_.push_back(out.verdict == RecoveryVerdict::FalseAlarm);
    ++runs_;
    false_alarms_ += recent_.back();
    if (recent_.size() >= cfg_.window) {
      const double ratio = window_fp_ratio();
      alpha_.update(ratio);
      cb_->set_alpha(alpha_.alpha());
      recent_.clear();
    }
    return out;
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_.alpha(); }
  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
  [[nodiscard]] std::uint64_t total_false_alarms() const noexcept { return false_alarms_; }
  [[nodiscard]] double window_fp_ratio() const noexcept {
    if (recent_.empty()) return 0.0;
    std::size_t fp = 0;
    for (bool b : recent_) fp += b;
    return static_cast<double>(fp) / static_cast<double>(recent_.size());
  }

 private:
  ControlBlock* cb_;
  Config cfg_;
  Guardian guardian_;
  AlphaController alpha_;
  std::deque<bool> recent_;
  std::uint64_t runs_ = 0;
  std::uint64_t false_alarms_ = 0;
};

}  // namespace hauberk::core
