// Built-in self-test (Section VI(ii)(c)): a GPU program "specifically
// designed to produce multiple sets of output data by examining various
// parts of GPU hardware".  The guardian runs it when reexecution cannot
// attribute an SDC alarm to a transient fault; a positive result disables
// the device and triggers migration.
#pragma once

#include "gpusim/device.hpp"

namespace hauberk::core {

struct BistResult {
  bool fault_detected = false;
  bool alu_failed = false;
  bool fpu_failed = false;
  bool regfile_failed = false;
  bool crashed = false;
};

/// Run the self-test suite across all SMs of the device.  Each test kernel
/// computes values with known closed-form results per thread using a
/// distinct hardware component mix (integer ALU chains, FP arithmetic,
/// register move chains) and writes pass/fail flags.
[[nodiscard]] BistResult run_bist(gpusim::Device& dev);

}  // namespace hauberk::core
