#include "hauberk/translator.hpp"

#include "kir/bytecode.hpp"

#include <chrono>
#include <functional>
#include <stdexcept>

namespace hauberk::core {

using namespace hauberk::kir;

const char* lib_mode_name(LibMode m) noexcept {
  switch (m) {
    case LibMode::None: return "baseline";
    case LibMode::Profiler: return "profiler";
    case LibMode::FT: return "ft";
    case LibMode::FI: return "fi";
    case LibMode::FIFT: return "fi+ft";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Small AST helpers
// ---------------------------------------------------------------------------

bool expr_uses(const ExprPtr& e, VarId v) { return Analysis::expr_reads(e, v); }

/// Does the statement (recursively) read variable v?  Hauberk-internal
/// statements are ignored: instrumentation never extends a variable's
/// semantic live range.
bool stmt_uses(const StmtPtr& s, VarId v) {
  if (s->hauberk_internal) return false;
  if (expr_uses(s->value, v) || expr_uses(s->addr, v) || expr_uses(s->rhs, v) ||
      expr_uses(s->init, v) || expr_uses(s->limit, v) || expr_uses(s->step, v))
    return true;
  for (const auto& c : s->body)
    if (stmt_uses(c, v)) return true;
  for (const auto& c : s->else_body)
    if (stmt_uses(c, v)) return true;
  return false;
}

/// Does the statement (a loop or conditional subtree) re-define v?
bool stmt_redefines(const StmtPtr& s, VarId v) {
  if (s->hauberk_internal) return false;
  if ((s->kind == StmtKind::Assign || s->kind == StmtKind::Let) && s->var == v) return true;
  if (s->kind == StmtKind::For && s->var == v) return true;
  for (const auto& c : s->body)
    if (stmt_redefines(c, v)) return true;
  for (const auto& c : s->else_body)
    if (stmt_redefines(c, v)) return true;
  return false;
}

ExprPtr var_ref(const Kernel& k, VarId v) { return Expr::make_var(v, k.vars[v].type); }

StmtPtr internal(StmtPtr s) {
  s->hauberk_internal = true;
  return s;
}

StmtPtr make_checksum_xor(const Kernel& k, VarId v) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::ChecksumXor;
  s->value = var_ref(k, v);
  return internal(std::move(s));
}

StmtPtr make_checksum_xor_param(const Kernel& k, std::uint32_t p) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::ChecksumXor;
  s->value = Expr::make_param(p, k.params[p].type);
  return internal(std::move(s));
}

// ---------------------------------------------------------------------------
// Translator
// ---------------------------------------------------------------------------

class Translator {
 public:
  Translator(Kernel k, const TranslateOptions& opt, TranslateReport& rep)
      : k_(std::move(k)), opt_(opt), rep_(rep) {}

  Kernel run() {
    // Site enumeration happens on the pristine clone so that Profiler and
    // FI builds of the same kernel agree on site ids (Section VII).
    enumerate_sites(k_.body, /*loop_iter_scope=*/false);

    const bool want_ft = opt_.mode == LibMode::FT || opt_.mode == LibMode::FIFT;
    const bool want_profile = opt_.mode == LibMode::Profiler;
    if ((want_ft || want_profile) && opt_.protect_loop) instrument_loops(want_profile);
    if (want_ft && opt_.protect_nonloop) instrument_nonloop();
    if (opt_.mode == LibMode::FI || opt_.mode == LibMode::FIFT) insert_fi_hooks();
    if (want_profile) insert_count_exec();
    rep_.fi_sites = static_cast<int>(sites_.size());
    return std::move(k_);
  }

 private:
  struct Site {
    std::uint32_t id;
    const Stmt* stmt;   ///< the definition statement (or For for iterators)
    VarId var;
    HwComponent hw;
    bool is_iterator;
    /// Late-window site: the hook goes after the variable's last use in the
    /// definition's statement list, approximating the paper's time-random
    /// injections over a variable's whole lifetime (faults striking after
    /// the last use are architecturally masked).
    bool late = false;
  };

  // --- site enumeration ---

  void enumerate_sites(const StmtList& body, bool) {
    for (const auto& s : body) {
      if (s->hauberk_internal) continue;
      switch (s->kind) {
        case StmtKind::Let:
        case StmtKind::Assign: {
          sites_.push_back({next_site_++, s.get(), s->var, hw_of_def(*s), false, false});
          sites_.push_back(
              {next_site_++, s.get(), s->var, HwComponent::RegisterFile, false, true});
          break;
        }
        case StmtKind::For:
          if (opt_.fi_target_iterators)
            sites_.push_back({next_site_++, s.get(), s->var, HwComponent::Scheduler, true, false});
          enumerate_sites(s->body, true);
          break;
        case StmtKind::While:
          enumerate_sites(s->body, true);
          break;
        case StmtKind::If:
          enumerate_sites(s->body, false);
          enumerate_sites(s->else_body, false);
          break;
        default:
          break;
      }
    }
  }

  /// The paper statically derives the hardware components a statement
  /// exercises from its operation types (Section VII(i)).
  HwComponent hw_of_def(const Stmt& s) const {
    int ops = 0, loads = 0;
    Analysis::count_nodes(s.value, ops, loads);
    if (ops == 0 && loads > 0) return HwComponent::Memory;
    return k_.vars[s.var].type == DType::F32 ? HwComponent::FPU : HwComponent::ALU;
  }

  // --- loop detectors (Section V.B) ---

  void instrument_loops(bool profile_mode) {
    Analysis an(k_);
    // Instrument each top-level loop (the paper's translator treats each
    // outermost loop of the kernel as one protection target; nested loops
    // are part of the outer loop's dataflow graph).
    for (const auto& ln : an.loops()) {
      if (ln.parent != kNoLoop) continue;
      auto plan = an.plan_loop_protection(ln.id, opt_.maxvar);
      if (plan.selected.empty()) continue;

      auto [list, idx] = locate(ln.stmt);
      StmtPtr loop_stmt = (*list)[idx];

      // Shared accumulation counter (one per loop; the paper merges counters
      // with identical control paths).
      const VarId counter = declare("__hbk_iter" + std::to_string(ln.id), DType::I32);
      auto counter_init = internal(Stmt::let(counter, Expr::make_const(Value::i32(0))));
      counter_init->extra_flags = kInstrDetectorAux;
      list->insert(list->begin() + static_cast<long>(idx), std::move(counter_init));
      ++idx;  // loop statement shifted right
      // counter++ as the last statement of the loop body: counts iterations
      // and doubles as the loop-control-flow error detector.
      auto counter_inc = internal(Stmt::assign(
          counter, Expr::make_binary(BinOp::Add, var_ref(k_, counter),
                                     Expr::make_const(Value::i32(1)))));
      counter_inc->extra_flags = kInstrDetectorAux;
      loop_stmt->body.push_back(std::move(counter_inc));

      std::size_t insert_after = idx;  // position after the loop for checks
      for (VarId p : plan.selected) {
        LoopDetectorInfo info;
        info.loop_id = ln.id;
        info.var = p;
        info.value_detector = next_detector_++;
        info.self_accumulating = plan.self_accumulating.count(p) != 0;

        const DType pt = k_.vars[p].type;
        ExprPtr checked;  // averaged accumulated value
        if (info.self_accumulating) {
          // The protected variable is its own accumulator; no in-loop code.
          checked = var_ref(k_, p);
        } else {
          const VarId accum = declare("__hbk_acc_" + k_.vars[p].name, pt);
          const Value zero = pt == DType::F32 ? Value::f32(0.0f) : Value::i32(0);
          auto accum_init = internal(Stmt::let(accum, Expr::make_const(zero)));
          accum_init->extra_flags = kInstrDetectorAux;
          list->insert(list->begin() + static_cast<long>(idx), std::move(accum_init));
          ++idx;
          ++insert_after;
          // accumulator += p right after every definition of p in the loop.
          add_accumulation(loop_stmt->body, p, accum);
          checked = var_ref(k_, accum);
        }
        // averaged value = accumulated / counter (promoted for FP).
        ExprPtr cnt = var_ref(k_, counter);
        if (pt == DType::F32) cnt = Expr::make_unary(UnOp::CastF32, std::move(cnt));
        ExprPtr avg = Expr::make_binary(BinOp::Div, std::move(checked), std::move(cnt));

        // if (counter > 0) Check/Profile(avg)  -- guards division by zero
        // when the loop body never ran.
        auto chk = std::make_shared<Stmt>();
        chk->kind = profile_mode ? StmtKind::ProfileValue : StmtKind::RangeCheck;
        chk->detector_id = info.value_detector;
        chk->value = std::move(avg);
        chk->label = k_.vars[p].name;
        auto guard = Stmt::if_stmt(
            Expr::make_binary(BinOp::Gt, var_ref(k_, counter), Expr::make_const(Value::i32(0))),
            {internal(std::move(chk))});
        guard->extra_flags = kInstrDetectorAux;
        list->insert(list->begin() + static_cast<long>(insert_after) + 1,
                     internal(std::move(guard)));
        ++insert_after;

        rep_.loop_detectors.push_back(info);
      }

      // Iteration-count invariant (HauberkCheckEqual): emitted once per loop
      // when the trip count is derivable.  The detector id is allocated in
      // every mode so Profiler and FT detector id spaces stay aligned.

      if (plan.trip_count) {
        const int iter_det = next_detector_++;
        for (auto& d : rep_.loop_detectors)
          if (d.loop_id == ln.id) d.iter_detector = iter_det;
        if (!profile_mode) {
          auto eq = std::make_shared<Stmt>();
          eq->kind = StmtKind::EqualCheck;
          eq->detector_id = iter_det;
          eq->value = var_ref(k_, counter);
          eq->rhs = clone_expr(plan.trip_count);
          eq->label = "__iter_check_loop" + std::to_string(ln.id);
          list->insert(list->begin() + static_cast<long>(insert_after) + 1,
                       internal(std::move(eq)));
        }
      }
    }
  }

  /// Insert `accum += p` after every (non-internal) definition of p inside
  /// the loop body, recursing into nested control flow.
  void add_accumulation(StmtList& body, VarId p, VarId accum) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      StmtPtr s = body[i];
      if (s->hauberk_internal) continue;
      if ((s->kind == StmtKind::Let || s->kind == StmtKind::Assign) && s->var == p) {
        auto add = internal(Stmt::assign(
            accum, Expr::make_binary(BinOp::Add, var_ref(k_, accum), var_ref(k_, p))));
        add->extra_flags = kInstrDetectorAux;
        body.insert(body.begin() + static_cast<long>(i) + 1, std::move(add));
        ++i;
      } else if (s->kind == StmtKind::For || s->kind == StmtKind::While ||
                 s->kind == StmtKind::If) {
        add_accumulation(s->body, p, accum);
        add_accumulation(s->else_body, p, accum);
      }
    }
  }

  // --- non-loop detectors (Section V.A, Fig. 8(c)) ---

  void instrument_nonloop() {
    // (i) parameters: checksum-only protection at kernel entry and exit
    // (the naive Fig. 8(b) ablation has no checksum and leaves parameters
    // unprotected).
    if (!opt_.naive_duplication) {
      StmtList entry;
      for (std::uint32_t p = 0; p < k_.params.size(); ++p)
        entry.push_back(make_checksum_xor_param(k_, p));
      k_.body.insert(k_.body.begin(), entry.begin(), entry.end());
      rep_.params_protected = static_cast<int>(k_.params.size());
    }

    // (ii) virtual variables defined in non-loop code, in every depth-0 scope.
    protect_scope(k_.body);

    // (iii) close parameter windows and validate at kernel exit.
    if (!opt_.naive_duplication) {
      for (std::uint32_t p = 0; p < k_.params.size(); ++p)
        k_.body.push_back(make_checksum_xor_param(k_, p));
      auto validate = std::make_shared<Stmt>();
      validate->kind = StmtKind::ChecksumValidate;
      k_.body.push_back(internal(std::move(validate)));
    }
  }

  void protect_scope(StmtList& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      StmtPtr s = list[i];
      if (s->hauberk_internal) continue;
      if (s->kind == StmtKind::If) {
        protect_scope(s->body);
        protect_scope(s->else_body);
        continue;
      }
      if (s->kind != StmtKind::Let && s->kind != StmtKind::Assign) continue;

      const VarId v = s->var;
      // A self-referencing update (v = f(v)) cannot be re-computed after the
      // fact — the paper treats the updated value as a fresh virtual
      // variable; we keep the checksum protection and skip the duplication.
      const bool self_ref = s->kind == StmtKind::Assign && expr_uses(s->value, v);
      StmtList inserted;
      VarId shadow = kInvalidVar;
      if (opt_.naive_duplication) {
        // Fig. 8(b): keep the duplicate in a *named* shadow register that
        // stays live until the last use — the register-pressure-heavy scheme
        // the paper rejects.  No checksum in this scheme.
        if (!self_ref) {
          shadow = declare(k_.vars[v].name + "__shadow", k_.vars[v].type);
          auto dup_def = Stmt::let(shadow, clone_expr(s->value));
          internal(dup_def);
          inserted.push_back(std::move(dup_def));
        }
      } else {
        // Step (i): first checksum update right after the definition.
        // Step (ii)+(iii): duplicated computation + immediate comparison.
        inserted.push_back(make_checksum_xor(k_, v));
        if (!self_ref) {
          auto dup = std::make_shared<Stmt>();
          dup->kind = StmtKind::DupCheck;
          dup->var = v;
          dup->value = clone_expr(s->value);
          dup->extra_flags = kInstrHauberkDup;
          inserted.push_back(internal(std::move(dup)));
        }
      }
      list.insert(list.begin() + static_cast<long>(i) + 1, inserted.begin(), inserted.end());
      ++rep_.nonloop_protected;
      const std::size_t after_dup = i + inserted.size();

      // Step (iv): second checksum update.  Scan the remainder of the scope:
      //  - v re-defined (Assign, or a loop that assigns it): close *before*
      //    that statement (the paper's "uncovered window" case);
      //  - otherwise after the last statement using v;
      //  - no later use: immediately after the dup-check.
      std::size_t close_before = list.size() + 1;  // sentinel: not found
      std::size_t last_use = after_dup;
      for (std::size_t j = after_dup + 1; j < list.size(); ++j) {
        if (stmt_redefines(list[j], v)) {
          close_before = j;
          break;
        }
        if (stmt_uses(list[j], v)) last_use = j;
      }
      const std::size_t pos = close_before <= list.size() ? close_before : last_use + 1;
      if (opt_.naive_duplication) {
        if (shadow != kInvalidVar) {
          // Compare original and shadow after the last use (Fig. 8(b)).
          auto chk = std::make_shared<Stmt>();
          chk->kind = StmtKind::DupCheck;
          chk->var = v;
          chk->value = var_ref(k_, shadow);
          list.insert(list.begin() + static_cast<long>(pos), internal(std::move(chk)));
        }
      } else {
        list.insert(list.begin() + static_cast<long>(pos), make_checksum_xor(k_, v));
      }
      i = after_dup;  // continue after the dup of this definition
    }
  }

  // --- FI / profiler hook insertion ---

  void insert_fi_hooks() { insert_hooks(StmtKind::FIHook); }
  void insert_count_exec() { insert_hooks(StmtKind::CountExec); }

  void insert_hooks(StmtKind kind) {
    for (std::size_t si = 0; si < sites_.size(); ++si) {
      const Site& site = sites_[si];
      auto [list, idx] = locate(site.stmt);
      auto hook = std::make_shared<Stmt>();
      hook->kind = kind;
      hook->site = site.id;
      hook->var = site.var;
      hook->hw = site.hw;
      internal(hook);
      hook->fi_dead_window = site.late;
      if (site.is_iterator) {
        // Hook at the top of the loop body (fires once per iteration).
        (*list)[idx]->body.insert((*list)[idx]->body.begin(), std::move(hook));
      } else if (site.late) {
        // After the last statement using the variable in its own list.
        std::size_t pos = idx;
        for (std::size_t j = idx + 1; j < list->size(); ++j)
          if (stmt_uses((*list)[j], site.var)) pos = j;
        list->insert(list->begin() + static_cast<long>(pos) + 1, std::move(hook));
      } else {
        list->insert(list->begin() + static_cast<long>(idx) + 1, std::move(hook));
      }
    }
  }

  // --- utilities ---

  VarId declare(const std::string& name, DType t) {
    k_.vars.push_back({name, t});
    return static_cast<VarId>(k_.vars.size() - 1);
  }

  /// Locate the list and index currently holding `target`.
  std::pair<StmtList*, std::size_t> locate(const Stmt* target) {
    std::pair<StmtList*, std::size_t> found{nullptr, 0};
    std::function<bool(StmtList&)> search = [&](StmtList& list) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].get() == target) {
          found = {&list, i};
          return true;
        }
        if (search(list[i]->body) || search(list[i]->else_body)) return true;
      }
      return false;
    };
    if (!search(k_.body)) throw std::logic_error("translator: statement vanished");
    return found;
  }

  Kernel k_;
  const TranslateOptions& opt_;
  TranslateReport& rep_;
  std::vector<Site> sites_;
  std::uint32_t next_site_ = 0;
  int next_detector_ = 0;
};

}  // namespace

Kernel translate(const Kernel& input, const TranslateOptions& opt, TranslateReport* report) {
  const auto t0 = std::chrono::steady_clock::now();
  TranslateReport local;
  TranslateReport& rep = report ? *report : local;
  Translator tr(clone_kernel(input), opt, rep);
  Kernel out = tr.run();
  rep.transform_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

}  // namespace hauberk::core
