#include "hauberk/translator.hpp"

#include <chrono>
#include <stdexcept>

#include "hauberk/cost.hpp"
#include "hauberk/passes/pass_manager.hpp"
#include "hauberk/plan.hpp"

namespace hauberk::core {

using namespace hauberk::kir;

const char* lib_mode_name(LibMode m) noexcept {
  switch (m) {
    case LibMode::None: return "baseline";
    case LibMode::Profiler: return "profiler";
    case LibMode::FT: return "ft";
    case LibMode::FI: return "fi";
    case LibMode::FIFT: return "fi+ft";
  }
  return "?";
}

namespace {

bool any_internal(const StmtList& body) {
  for (const auto& s : body) {
    if (s->hauberk_internal) return true;
    if (any_internal(s->body) || any_internal(s->else_body)) return true;
  }
  return false;
}

void fnv(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
}

void fnv_str(std::uint64_t& h, const std::string& s) noexcept {
  const std::uint64_t len = s.size();
  fnv(h, &len, sizeof len);
  fnv(h, s.data(), s.size());
}

}  // namespace

bool is_instrumented(const Kernel& k) { return any_internal(k.body); }

std::uint64_t remark_digest(const TranslateReport& report) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  fnv_str(h, report.pipeline);
  for (const PassRemark& r : report.remarks) {
    fnv_str(h, r.pass);
    fnv_str(h, r.message);
    fnv(h, &r.loop_id, sizeof r.loop_id);
    fnv(h, &r.var, sizeof r.var);
    fnv(h, &r.detector, sizeof r.detector);
  }
  return h;
}

std::string format_remarks(const TranslateReport& report) {
  std::string out;
  for (const PassRemark& r : report.remarks) {
    out += "[";
    out += r.pass;
    out += "] ";
    out += r.message;
    out += "\n";
  }
  return out;
}

Kernel translate(const Kernel& input, const TranslateOptions& opt, TranslateReport* report) {
  const auto t0 = std::chrono::steady_clock::now();
  if (is_instrumented(input))
    throw std::invalid_argument("hauberk: kernel '" + input.name +
                                "' already carries Hauberk instrumentation; "
                                "re-instrumenting would double-place detectors");
  TranslateReport local;
  TranslateReport& rep = report ? *report : local;
  // Resolve the structured hardening plan (if any) into effective options
  // before the pipeline is composed; the deprecated pipeline_override shim
  // still runs afterwards so legacy callers keep working.
  TranslateOptions eff = opt;
  PassPipeline pipeline;
  if (opt.plan) {
    pipeline = plan_to_pipeline(*opt.plan, opt, input.name, &eff);
  } else {
    pipeline = pipeline_for(opt.mode, opt);
  }
  if (opt.pipeline_override) opt.pipeline_override(input.name, pipeline);
  PassContext ctx(clone_kernel(input), eff, rep);
  PassManager().run(pipeline, ctx);
  rep.cost = cost::kernel_static_breakdown(ctx.kernel, ctx.am);
  rep.analysis_cache = ctx.am.stats();
  rep.transform_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return std::move(ctx.kernel);
}

}  // namespace hauberk::core
