#include "hauberk/device_pool.hpp"

namespace hauberk::core {

DevicePool::DevicePool(std::size_t n, gpusim::DeviceProps props, double t_backoff_initial) {
  devices_.reserve(n);
  daemons_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    devices_.push_back(std::make_unique<gpusim::Device>(props));
  for (std::size_t i = 0; i < n; ++i)
    daemons_.emplace_back(*devices_[i], t_backoff_initial);
}

std::size_t DevicePool::healthy_count() const {
  std::size_t n = 0;
  for (const auto& d : devices_) n += !d->disabled();
  return n;
}

gpusim::Device* DevicePool::acquire() {
  for (std::size_t probe = 0; probe < devices_.size(); ++probe) {
    gpusim::Device* d = devices_[(next_ + probe) % devices_.size()].get();
    if (!d->disabled()) {
      next_ = (next_ + probe + 1) % devices_.size();
      return d;
    }
  }
  return nullptr;
}

gpusim::Device* DevicePool::spare_for(const gpusim::Device* primary) {
  for (auto& d : devices_)
    if (d.get() != primary && !d->disabled()) return d.get();
  return nullptr;
}

RecoveryOutcome DevicePool::run_protected(Guardian& guardian,
                                          const kir::BytecodeProgram& ft_prog, KernelJob& job,
                                          ControlBlock& cb) {
  gpusim::Device* primary = acquire();
  if (primary == nullptr) {
    RecoveryOutcome out;
    out.verdict = RecoveryVerdict::Unrecoverable;  // whole node unhealthy
    return out;
  }
  return guardian.run_protected(*primary, spare_for(primary), ft_prog, job, cb);
}

int DevicePool::tick(double now) {
  int reenabled = 0;
  for (auto& daemon : daemons_) reenabled += daemon.tick(now);
  return reenabled;
}

}  // namespace hauberk::core
