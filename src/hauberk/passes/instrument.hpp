// The discrete Hauberk instrumentation passes (Table I).
//
// Each pass transliterates one transformation of the paper's translator:
//
//   SiteEnumerationPass   — Fig. 12 fault-site enumeration (Section VII)
//   LoopAccumulatorPass   — loop accumulators + shared iteration counters
//                           (Section V.B; plans via the cached Fig. 9 graph)
//   LoopCheckPass         — range checks / profile hooks + iteration-count
//                           invariants over the accumulator products
//   NonLoopChecksumPass   — Fig. 8(c) duplication + shared checksum
//   NaiveDuplicationPass  — Fig. 8(b) shadow-variable ablation (swappable
//                           with NonLoopChecksumPass in a pipeline)
//   FIHookPass            — FI hook after every enumerated site (Fig. 12)
//   CountExecPass         — profiler execution-count hooks at the same sites
//   ControlLayoutPass     — finalizes the control-block facing report fields
//
// Composition into LibMode pipelines happens in pass_manager.hpp
// (pipeline_for); the passes themselves are mode-agnostic and individually
// testable.
#pragma once

#include "hauberk/passes/pass.hpp"

namespace hauberk::core::passes {

/// Enumerate fault-injection sites over the pristine kernel.  Runs first in
/// every pipeline so Profiler and FI builds agree on site ids; never mutates.
class SiteEnumerationPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "site-enum"; }
  bool run(PassContext& ctx) override;
};

/// Insert the per-loop iteration counter and per-variable accumulators for
/// every top-level loop whose protection plan (Maxvar-budgeted, cached in the
/// AnalysisManager) selects at least one variable.  Records a
/// LoopProtectProduct per instrumented loop for LoopCheckPass.
class LoopAccumulatorPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "loop-accum"; }
  bool run(PassContext& ctx) override;
};

/// Place the post-loop detectors over the accumulator products: one guarded
/// RangeCheck (or ProfileValue in profile mode) per protected variable, plus
/// the iteration-count EqualCheck when the trip count is derivable.  Detector
/// ids are allocated here, in product order, identically in both modes so the
/// Profiler and FT detector id spaces stay aligned.
class LoopCheckPass final : public Pass {
 public:
  explicit LoopCheckPass(bool profile_mode) : profile_mode_(profile_mode) {}
  [[nodiscard]] std::string_view name() const override {
    return profile_mode_ ? "loop-profile" : "loop-check";
  }
  bool run(PassContext& ctx) override;

 private:
  bool profile_mode_;
};

/// Non-loop protection, Fig. 8(c): parameter checksums at entry/exit,
/// per-definition duplicated computation + immediate comparison, checksum
/// window closed at the last use, one ChecksumValidate at kernel exit.
class NonLoopChecksumPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "nonloop-checksum"; }
  bool run(PassContext& ctx) override;
};

/// Non-loop protection ablation, Fig. 8(b): named shadow registers alive
/// until the last use, compared there; no checksum, parameters unprotected.
class NaiveDuplicationPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "nonloop-naive-dup"; }
  bool run(PassContext& ctx) override;
};

/// Insert a FIHook at every enumerated site (Fig. 12).
class FIHookPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "fi-hooks"; }
  bool run(PassContext& ctx) override;
};

/// Insert a CountExec profiler hook at every enumerated site.
class CountExecPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "count-exec"; }
  bool run(PassContext& ctx) override;
};

/// Terminal pass of every pipeline: publishes the control-block facing
/// summary (fi_sites) into the report.  Never mutates.
class ControlLayoutPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "control-layout"; }
  bool run(PassContext& ctx) override;
};

/// Static analysis stage (gated by TranslateOptions::lint): runs the
/// hauberk::lint suite over the instrumented kernel under
/// TranslateOptions::lint_env, publishes the LintReport into the translate
/// report, and emits one summary remark.  Never mutates.
class LintPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "lint"; }
  bool run(PassContext& ctx) override;
};

}  // namespace hauberk::core::passes
