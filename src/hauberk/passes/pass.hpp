// The Hauberk instrumentation pass framework.
//
// The paper's translator is a CETUS pass pipeline (Fig. 7); this layer gives
// the reproduction the same shape.  Each Table I transformation is one
// discrete Pass over the kernel AST; a PassContext carries the kernel being
// instrumented, the TranslateOptions/TranslateReport pair, the shared
// kir::AnalysisManager cache, and the cross-pass products (enumerated FI
// sites, loop-protection products, detector/site id counters).  Passes
// report whether they mutated the AST so the pass manager can invalidate the
// analysis cache exactly when needed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hauberk/translator.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/ast.hpp"

namespace hauberk::core {

/// One enumerated fault-injection site (Fig. 12).  Enumeration happens on
/// the pristine kernel so Profiler and FI builds of the same kernel agree on
/// site ids (Section VII); the Stmt pointers stay valid across passes
/// because instrumentation inserts statements but never replaces them.
struct FiSitePlan {
  std::uint32_t id = 0;
  const kir::Stmt* stmt = nullptr;  ///< the definition statement (or For for iterators)
  kir::VarId var = kir::kInvalidVar;
  kir::HwComponent hw = kir::HwComponent::ALU;
  bool is_iterator = false;
  /// Late-window site: the hook goes after the variable's last use in the
  /// definition's statement list, approximating the paper's time-random
  /// injections over a variable's whole lifetime (faults striking after
  /// the last use are architecturally masked).
  bool late = false;
};

/// Per-loop product of the accumulator pass, consumed by the check pass:
/// which variables were planned for protection and the scaffolding variables
/// inserted for them.  Captured while the kernel was pristine, so the check
/// pass never re-runs analyses over the mutated AST.
struct LoopProtectProduct {
  std::uint32_t loop_id = 0;
  const kir::Stmt* loop_stmt = nullptr;
  kir::VarId counter = kir::kInvalidVar;  ///< shared iteration counter
  kir::ExprPtr trip_count;                ///< derivable trip count, or null
  struct Var {
    kir::VarId var = kir::kInvalidVar;
    kir::VarId accum = kir::kInvalidVar;  ///< kInvalidVar for self-accumulators
    bool self_accumulating = false;
  };
  std::vector<Var> vars;  ///< in selection order
};

/// Mutable state threaded through one pipeline run.
struct PassContext {
  PassContext(kir::Kernel k, const TranslateOptions& o, TranslateReport& r)
      : kernel(std::move(k)), opt(&o), report(&r), am(kernel) {}

  PassContext(const PassContext&) = delete;
  PassContext& operator=(const PassContext&) = delete;

  kir::Kernel kernel;           ///< instrumented in place
  const TranslateOptions* opt;
  TranslateReport* report;
  kir::AnalysisManager am;      ///< bound to `kernel`

  // Cross-pass products.
  std::vector<FiSitePlan> sites;
  std::vector<LoopProtectProduct> loop_products;
  std::uint32_t next_site = 0;
  int next_detector = 0;

  /// Append a structured remark attributed to `pass`.
  void remark(std::string_view pass, std::string message,
              std::uint32_t loop_id = 0xffffffffu, kir::VarId var = kir::kInvalidVar,
              int detector = -1) {
    report->remarks.push_back(
        {std::string(pass), std::move(message), loop_id, var, detector});
  }

  /// Declare a fresh translator-internal variable.
  kir::VarId declare(const std::string& name, kir::DType t) {
    kernel.vars.push_back({name, t});
    return static_cast<kir::VarId>(kernel.vars.size() - 1);
  }
};

/// One instrumentation pass.  Passes are stateless between runs — all
/// per-run state lives in the PassContext — so a PassPipeline can be reused
/// across kernels and shared between threads.
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Perform the transformation.  Returns true iff the kernel AST was
  /// mutated (the pass manager then invalidates cached analyses).
  virtual bool run(PassContext& ctx) = 0;
};

namespace passes {

/// Locate the statement list and index currently holding `target` inside
/// `body` (searched recursively).  Throws std::logic_error if absent.
[[nodiscard]] std::pair<kir::StmtList*, std::size_t> locate(kir::StmtList& body,
                                                            const kir::Stmt* target);

/// Does the statement (recursively) read variable v?  Hauberk-internal
/// statements are ignored: instrumentation never extends a variable's
/// semantic live range.
[[nodiscard]] bool stmt_uses(const kir::StmtPtr& s, kir::VarId v);

/// Does the statement (a loop or conditional subtree) re-define v?
[[nodiscard]] bool stmt_redefines(const kir::StmtPtr& s, kir::VarId v);

/// Mark a statement as translator-inserted and return it.
kir::StmtPtr internal(kir::StmtPtr s);

}  // namespace passes

}  // namespace hauberk::core
