// Pass composition and execution.
//
// A PassPipeline is a named, ordered list of instrumentation passes;
// pipeline_for() builds the canonical composition for each LibMode (and the
// Hauberk-L / Hauberk-NL / naive-duplication ablations become differently
// named compositions of the same pass set).  The PassManager runs a pipeline
// over one PassContext, invalidating the cached analyses whenever a pass
// reports an AST mutation, and can trace the kernel before/after each pass
// for `inspect --dump-passes`.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hauberk/passes/pass.hpp"

namespace hauberk::core {

class PassPipeline {
 public:
  PassPipeline() = default;
  explicit PassPipeline(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  PassPipeline& add(std::shared_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  /// Remove every pass with the given name; returns true if any was removed.
  bool remove(std::string_view pass_name);

  /// Insert `pass` before the first pass named `before`; returns false (and
  /// does not insert) when no such pass exists.
  bool insert_before(std::string_view before, std::shared_ptr<Pass> pass);

  [[nodiscard]] bool has(std::string_view pass_name) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return passes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return passes_.empty(); }
  [[nodiscard]] const std::vector<std::shared_ptr<Pass>>& passes() const noexcept {
    return passes_;
  }
  /// Pass names in execution order (for --print-passes and tests).
  [[nodiscard]] std::vector<std::string> pass_names() const;

 private:
  std::string name_;
  std::vector<std::shared_ptr<Pass>> passes_;
};

/// Observer invoked around each pass: once with stage="input" before the
/// first pass, then once per pass with stage=<pass name> after it ran
/// (`mutated` reports what the pass returned).
using PassTraceFn =
    std::function<void(std::string_view stage, const kir::Kernel& kernel, bool mutated)>;

class PassManager {
 public:
  PassManager() = default;
  explicit PassManager(PassTraceFn trace) : trace_(std::move(trace)) {}

  /// Run every pass of `pipeline` over `ctx` in order.  Cached analyses are
  /// invalidated after each mutating pass; the pipeline name and the final
  /// analysis-cache stats are published into the context's report.
  void run(const PassPipeline& pipeline, PassContext& ctx) const;

 private:
  PassTraceFn trace_;
};

/// The canonical pass composition for a LibMode + ablation flags.  Pipeline
/// names: "baseline", "profiler", "ft", "fi", "fi+ft", with ".hauberk-l" /
/// ".hauberk-nl" / ".noprotect" and ".naive" suffixes for the ablations.
[[nodiscard]] PassPipeline pipeline_for(LibMode mode, const TranslateOptions& opt);

}  // namespace hauberk::core
