#include "hauberk/passes/instrument.hpp"

#include "hauberk/plan.hpp"
#include "kir/bytecode.hpp"

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hauberk::core::passes {

using namespace hauberk::kir;

// ---------------------------------------------------------------------------
// Shared AST helpers (declared in pass.hpp)
// ---------------------------------------------------------------------------

namespace {

bool expr_uses(const ExprPtr& e, VarId v) { return Analysis::expr_reads(e, v); }

ExprPtr var_ref(const Kernel& k, VarId v) { return Expr::make_var(v, k.vars[v].type); }

StmtPtr make_checksum_xor(const Kernel& k, VarId v) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::ChecksumXor;
  s->value = var_ref(k, v);
  return internal(std::move(s));
}

StmtPtr make_checksum_xor_param(const Kernel& k, std::uint32_t p) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::ChecksumXor;
  s->value = Expr::make_param(p, k.params[p].type);
  return internal(std::move(s));
}

/// The paper statically derives the hardware components a statement
/// exercises from its operation types (Section VII(i)).
HwComponent hw_of_def(const Kernel& k, const Stmt& s) {
  int ops = 0, loads = 0;
  Analysis::count_nodes(s.value, ops, loads);
  if (ops == 0 && loads > 0) return HwComponent::Memory;
  return k.vars[s.var].type == DType::F32 ? HwComponent::FPU : HwComponent::ALU;
}

std::string quoted(const Kernel& k, VarId v) { return "'" + k.vars[v].name + "'"; }

}  // namespace

std::pair<StmtList*, std::size_t> locate(StmtList& body, const Stmt* target) {
  std::pair<StmtList*, std::size_t> found{nullptr, 0};
  std::function<bool(StmtList&)> search = [&](StmtList& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].get() == target) {
        found = {&list, i};
        return true;
      }
      if (search(list[i]->body) || search(list[i]->else_body)) return true;
    }
    return false;
  };
  if (!search(body)) throw std::logic_error("translator: statement vanished");
  return found;
}

bool stmt_uses(const StmtPtr& s, VarId v) {
  if (s->hauberk_internal) return false;
  if (expr_uses(s->value, v) || expr_uses(s->addr, v) || expr_uses(s->rhs, v) ||
      expr_uses(s->init, v) || expr_uses(s->limit, v) || expr_uses(s->step, v))
    return true;
  for (const auto& c : s->body)
    if (stmt_uses(c, v)) return true;
  for (const auto& c : s->else_body)
    if (stmt_uses(c, v)) return true;
  return false;
}

bool stmt_redefines(const StmtPtr& s, VarId v) {
  if (s->hauberk_internal) return false;
  if ((s->kind == StmtKind::Assign || s->kind == StmtKind::Let) && s->var == v) return true;
  if (s->kind == StmtKind::For && s->var == v) return true;
  for (const auto& c : s->body)
    if (stmt_redefines(c, v)) return true;
  for (const auto& c : s->else_body)
    if (stmt_redefines(c, v)) return true;
  return false;
}

StmtPtr internal(StmtPtr s) {
  s->hauberk_internal = true;
  return s;
}

// ---------------------------------------------------------------------------
// SiteEnumerationPass
// ---------------------------------------------------------------------------

namespace {

void enumerate_sites(PassContext& ctx, const StmtList& body) {
  for (const auto& s : body) {
    if (s->hauberk_internal) continue;
    switch (s->kind) {
      case StmtKind::Let:
      case StmtKind::Assign: {
        ctx.sites.push_back(
            {ctx.next_site++, s.get(), s->var, hw_of_def(ctx.kernel, *s), false, false});
        ctx.sites.push_back(
            {ctx.next_site++, s.get(), s->var, HwComponent::RegisterFile, false, true});
        break;
      }
      case StmtKind::For:
        if (ctx.opt->fi_target_iterators)
          ctx.sites.push_back(
              {ctx.next_site++, s.get(), s->var, HwComponent::Scheduler, true, false});
        enumerate_sites(ctx, s->body);
        break;
      case StmtKind::While:
        enumerate_sites(ctx, s->body);
        break;
      case StmtKind::If:
        enumerate_sites(ctx, s->body);
        enumerate_sites(ctx, s->else_body);
        break;
      default:
        break;
    }
  }
}

}  // namespace

bool SiteEnumerationPass::run(PassContext& ctx) {
  enumerate_sites(ctx, ctx.kernel.body);
  ctx.remark(name(), "enumerated " + std::to_string(ctx.sites.size()) + " fault sites");
  return false;  // analysis only
}

// ---------------------------------------------------------------------------
// LoopAccumulatorPass (Section V.B scaffolding)
// ---------------------------------------------------------------------------

namespace {

/// Insert `accum += p` after every (non-internal) definition of p inside the
/// loop body, recursing into nested control flow.
void add_accumulation(const Kernel& k, StmtList& body, VarId p, VarId accum) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    StmtPtr s = body[i];
    if (s->hauberk_internal) continue;
    if ((s->kind == StmtKind::Let || s->kind == StmtKind::Assign) && s->var == p) {
      auto add = internal(Stmt::assign(
          accum, Expr::make_binary(BinOp::Add, var_ref(k, accum), var_ref(k, p))));
      add->extra_flags = kInstrDetectorAux;
      body.insert(body.begin() + static_cast<long>(i) + 1, std::move(add));
      ++i;
    } else if (s->kind == StmtKind::For || s->kind == StmtKind::While ||
               s->kind == StmtKind::If) {
      add_accumulation(k, s->body, p, accum);
      add_accumulation(k, s->else_body, p, accum);
    }
  }
}

}  // namespace

bool LoopAccumulatorPass::run(PassContext& ctx) {
  const Analysis& an = ctx.am.analysis();
  bool mutated = false;
  // Instrument each top-level loop (the paper's translator treats each
  // outermost loop of the kernel as one protection target; nested loops are
  // part of the outer loop's dataflow graph).
  for (const auto& ln : an.loops()) {
    if (ln.parent != kNoLoop) continue;
    if (ctx.opt->kernel_plan && !plan_allows_loop(*ctx.opt->kernel_plan, ln.id)) {
      ctx.remark(name(), "loop " + std::to_string(ln.id) + ": excluded by hardening plan",
                 ln.id);
      continue;
    }
    const LoopProtectionPlan& plan = ctx.am.loop_plan(ln.id, ctx.opt->maxvar);
    if (plan.selected.empty()) {
      ctx.remark(name(), "loop " + std::to_string(ln.id) +
                             ": no protectable variables; skipped",
                 ln.id);
      continue;
    }

    auto [list, idx] = locate(ctx.kernel.body, ln.stmt);
    StmtPtr loop_stmt = (*list)[idx];

    // Shared accumulation counter (one per loop; the paper merges counters
    // with identical control paths).
    const VarId counter = ctx.declare("__hbk_iter" + std::to_string(ln.id), DType::I32);
    auto counter_init = internal(Stmt::let(counter, Expr::make_const(Value::i32(0))));
    counter_init->extra_flags = kInstrDetectorAux;
    list->insert(list->begin() + static_cast<long>(idx), std::move(counter_init));
    ++idx;  // loop statement shifted right
    // counter++ as the last statement of the loop body: counts iterations
    // and doubles as the loop-control-flow error detector.
    auto counter_inc = internal(Stmt::assign(
        counter, Expr::make_binary(BinOp::Add, var_ref(ctx.kernel, counter),
                                   Expr::make_const(Value::i32(1)))));
    counter_inc->extra_flags = kInstrDetectorAux;
    loop_stmt->body.push_back(std::move(counter_inc));

    LoopProtectProduct prod;
    prod.loop_id = ln.id;
    prod.loop_stmt = ln.stmt;
    prod.counter = counter;
    prod.trip_count = plan.trip_count;  // shared_ptr copy outlives the cache

    for (VarId p : plan.selected) {
      LoopProtectProduct::Var pv;
      pv.var = p;
      pv.self_accumulating = plan.self_accumulating.count(p) != 0;
      if (pv.self_accumulating) {
        // The protected variable is its own accumulator; no in-loop code.
        ctx.remark(name(),
                   "loop " + std::to_string(ln.id) + ": " + quoted(ctx.kernel, p) +
                       " is self-accumulating; no in-loop accumulation needed",
                   ln.id, p);
      } else {
        pv.accum = ctx.declare("__hbk_acc_" + ctx.kernel.vars[p].name,
                               ctx.kernel.vars[p].type);
        const Value zero = ctx.kernel.vars[p].type == DType::F32 ? Value::f32(0.0f)
                                                                 : Value::i32(0);
        auto accum_init = internal(Stmt::let(pv.accum, Expr::make_const(zero)));
        accum_init->extra_flags = kInstrDetectorAux;
        list->insert(list->begin() + static_cast<long>(idx), std::move(accum_init));
        ++idx;
        // accumulator += p right after every definition of p in the loop.
        add_accumulation(ctx.kernel, loop_stmt->body, p, pv.accum);
        ctx.remark(name(),
                   "loop " + std::to_string(ln.id) + ": accumulator " +
                       quoted(ctx.kernel, pv.accum) + " inserted for " +
                       quoted(ctx.kernel, p),
                   ln.id, p);
      }
      prod.vars.push_back(pv);
    }
    for (VarId w : plan.covered)
      ctx.remark(name(),
                 "loop " + std::to_string(ln.id) + ": " + quoted(ctx.kernel, w) +
                     " covered by backward dependency of a selected variable",
                 ln.id, w);
    for (VarId w : plan.evicted)
      ctx.remark(name(),
                 "loop " + std::to_string(ln.id) + ": " + quoted(ctx.kernel, w) +
                     " evicted by Maxvar budget (maxvar=" +
                     std::to_string(ctx.opt->maxvar) + ")",
                 ln.id, w);
    ctx.loop_products.push_back(std::move(prod));
    mutated = true;
  }
  return mutated;
}

// ---------------------------------------------------------------------------
// LoopCheckPass (Section V.B detectors)
// ---------------------------------------------------------------------------

bool LoopCheckPass::run(PassContext& ctx) {
  bool mutated = false;
  for (const LoopProtectProduct& prod : ctx.loop_products) {
    auto [list, idx] = locate(ctx.kernel.body, prod.loop_stmt);
    std::size_t insert_after = idx;  // position after the loop for checks

    for (const LoopProtectProduct::Var& pv : prod.vars) {
      LoopDetectorInfo info;
      info.loop_id = prod.loop_id;
      info.var = pv.var;
      info.value_detector = ctx.next_detector++;
      info.self_accumulating = pv.self_accumulating;

      const DType pt = ctx.kernel.vars[pv.var].type;
      // averaged value = accumulated / counter (promoted for FP).
      ExprPtr checked = var_ref(ctx.kernel, pv.self_accumulating ? pv.var : pv.accum);
      ExprPtr cnt = var_ref(ctx.kernel, prod.counter);
      if (pt == DType::F32) cnt = Expr::make_unary(UnOp::CastF32, std::move(cnt));
      ExprPtr avg = Expr::make_binary(BinOp::Div, std::move(checked), std::move(cnt));

      // if (counter > 0) Check/Profile(avg)  -- guards division by zero
      // when the loop body never ran.
      auto chk = std::make_shared<Stmt>();
      chk->kind = profile_mode_ ? StmtKind::ProfileValue : StmtKind::RangeCheck;
      chk->detector_id = info.value_detector;
      chk->value = std::move(avg);
      chk->label = ctx.kernel.vars[pv.var].name;
      auto guard = Stmt::if_stmt(
          Expr::make_binary(BinOp::Gt, var_ref(ctx.kernel, prod.counter),
                            Expr::make_const(Value::i32(0))),
          {internal(std::move(chk))});
      guard->extra_flags = kInstrDetectorAux;
      list->insert(list->begin() + static_cast<long>(insert_after) + 1,
                   internal(std::move(guard)));
      ++insert_after;
      mutated = true;

      ctx.report->loop_detectors.push_back(info);
      ctx.remark(name(),
                 "loop " + std::to_string(prod.loop_id) + ": " +
                     (profile_mode_ ? "profile hook" : "range check") + " placed on " +
                     quoted(ctx.kernel, pv.var) + " (detector " +
                     std::to_string(info.value_detector) + ")",
                 prod.loop_id, pv.var, info.value_detector);
    }

    // Iteration-count invariant (HauberkCheckEqual): emitted once per loop
    // when the trip count is derivable.  The detector id is allocated in
    // every mode so Profiler and FT detector id spaces stay aligned.
    if (prod.trip_count) {
      const int iter_det = ctx.next_detector++;
      for (auto& d : ctx.report->loop_detectors)
        if (d.loop_id == prod.loop_id) d.iter_detector = iter_det;
      if (!profile_mode_) {
        auto eq = std::make_shared<Stmt>();
        eq->kind = StmtKind::EqualCheck;
        eq->detector_id = iter_det;
        eq->value = var_ref(ctx.kernel, prod.counter);
        eq->rhs = clone_expr(prod.trip_count);
        eq->label = "__iter_check_loop" + std::to_string(prod.loop_id);
        list->insert(list->begin() + static_cast<long>(insert_after) + 1,
                     internal(std::move(eq)));
        mutated = true;
      }
      ctx.remark(name(),
                 "loop " + std::to_string(prod.loop_id) +
                     (profile_mode_
                          ? ": iteration-count detector id reserved (profile mode)"
                          : ": iteration-count invariant placed") +
                     " (detector " + std::to_string(iter_det) + ")",
                 prod.loop_id, kInvalidVar, iter_det);
    } else {
      ctx.remark(name(),
                 "loop " + std::to_string(prod.loop_id) +
                     ": trip count not derivable; iteration-count invariant skipped",
                 prod.loop_id);
    }
  }
  return mutated;
}

// ---------------------------------------------------------------------------
// Non-loop protection (Section V.A)
// ---------------------------------------------------------------------------

namespace {

/// Shared body of the Fig. 8(b)/(c) scope walk; `naive` selects the scheme.
/// Returns the number of statements inserted.
std::size_t protect_scope(PassContext& ctx, StmtList& list, bool naive,
                          std::string_view pass_name) {
  Kernel& k = ctx.kernel;
  std::size_t total_inserted = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    StmtPtr s = list[i];
    if (s->hauberk_internal) continue;
    if (s->kind == StmtKind::If) {
      total_inserted += protect_scope(ctx, s->body, naive, pass_name);
      total_inserted += protect_scope(ctx, s->else_body, naive, pass_name);
      continue;
    }
    if (s->kind != StmtKind::Let && s->kind != StmtKind::Assign) continue;

    const VarId v = s->var;
    if (ctx.opt->kernel_plan && !plan_allows_var(*ctx.opt->kernel_plan, k.vars[v].name)) {
      ctx.remark(pass_name, quoted(k, v) + " excluded by hardening plan", 0xffffffffu, v);
      continue;
    }
    // A self-referencing update (v = f(v)) cannot be re-computed after the
    // fact — the paper treats the updated value as a fresh virtual
    // variable; we keep the checksum protection and skip the duplication.
    const bool self_ref = s->kind == StmtKind::Assign && expr_uses(s->value, v);
    StmtList inserted;
    VarId shadow = kInvalidVar;
    if (naive) {
      // Fig. 8(b): keep the duplicate in a *named* shadow register that
      // stays live until the last use — the register-pressure-heavy scheme
      // the paper rejects.  No checksum in this scheme.
      if (!self_ref) {
        shadow = ctx.declare(k.vars[v].name + "__shadow", k.vars[v].type);
        auto dup_def = Stmt::let(shadow, clone_expr(s->value));
        internal(dup_def);
        inserted.push_back(std::move(dup_def));
        ctx.remark(pass_name,
                   "shadow " + quoted(k, shadow) + " placed for " + quoted(k, v),
                   0xffffffffu, v);
      } else {
        ctx.remark(pass_name,
                   quoted(k, v) + " is self-referencing; shadow duplication skipped",
                   0xffffffffu, v);
      }
    } else {
      // Step (i): first checksum update right after the definition.
      // Step (ii)+(iii): duplicated computation + immediate comparison.
      inserted.push_back(make_checksum_xor(k, v));
      if (!self_ref) {
        auto dup = std::make_shared<Stmt>();
        dup->kind = StmtKind::DupCheck;
        dup->var = v;
        dup->value = clone_expr(s->value);
        dup->extra_flags = kInstrHauberkDup;
        inserted.push_back(internal(std::move(dup)));
        ctx.remark(pass_name, "checksum + duplicated computation placed for " + quoted(k, v),
                   0xffffffffu, v);
      } else {
        ctx.remark(pass_name,
                   quoted(k, v) + " is self-referencing; checksum only (no duplication)",
                   0xffffffffu, v);
      }
    }
    list.insert(list.begin() + static_cast<long>(i) + 1, inserted.begin(), inserted.end());
    ++ctx.report->nonloop_protected;
    total_inserted += inserted.size();
    const std::size_t after_dup = i + inserted.size();

    // Step (iv): second checksum update.  Scan the remainder of the scope:
    //  - v re-defined (Assign, or a loop that assigns it): close *before*
    //    that statement (the paper's "uncovered window" case);
    //  - otherwise after the last statement using v;
    //  - no later use: immediately after the dup-check.
    std::size_t close_before = list.size() + 1;  // sentinel: not found
    std::size_t last_use = after_dup;
    for (std::size_t j = after_dup + 1; j < list.size(); ++j) {
      if (stmt_redefines(list[j], v)) {
        close_before = j;
        break;
      }
      if (stmt_uses(list[j], v)) last_use = j;
    }
    const std::size_t pos = close_before <= list.size() ? close_before : last_use + 1;
    if (naive) {
      if (shadow != kInvalidVar) {
        // Compare original and shadow after the last use (Fig. 8(b)).
        auto chk = std::make_shared<Stmt>();
        chk->kind = StmtKind::DupCheck;
        chk->var = v;
        chk->value = var_ref(k, shadow);
        list.insert(list.begin() + static_cast<long>(pos), internal(std::move(chk)));
        ++total_inserted;
      }
    } else {
      list.insert(list.begin() + static_cast<long>(pos), make_checksum_xor(k, v));
      ++total_inserted;
    }
    i = after_dup;  // continue after the dup of this definition
  }
  return total_inserted;
}

}  // namespace

bool NonLoopChecksumPass::run(PassContext& ctx) {
  Kernel& k = ctx.kernel;
  // (i) parameters: checksum-only protection at kernel entry and exit.
  StmtList entry;
  for (std::uint32_t p = 0; p < k.params.size(); ++p)
    entry.push_back(make_checksum_xor_param(k, p));
  k.body.insert(k.body.begin(), entry.begin(), entry.end());
  ctx.report->params_protected = static_cast<int>(k.params.size());
  ctx.remark(name(), "protected " + std::to_string(k.params.size()) +
                         " parameters with entry/exit checksums");

  // (ii) virtual variables defined in non-loop code, in every depth-0 scope.
  protect_scope(ctx, k.body, /*naive=*/false, name());

  // (iii) close parameter windows and validate at kernel exit.
  for (std::uint32_t p = 0; p < k.params.size(); ++p)
    k.body.push_back(make_checksum_xor_param(k, p));
  auto validate = std::make_shared<Stmt>();
  validate->kind = StmtKind::ChecksumValidate;
  k.body.push_back(internal(std::move(validate)));
  return true;  // the exit ChecksumValidate is emitted unconditionally
}

bool NaiveDuplicationPass::run(PassContext& ctx) {
  // The Fig. 8(b) ablation has no checksum and leaves parameters unprotected.
  return protect_scope(ctx, ctx.kernel.body, /*naive=*/true, name()) > 0;
}

// ---------------------------------------------------------------------------
// Hook insertion (FI, Fig. 12 / profiler CountExec)
// ---------------------------------------------------------------------------

namespace {

std::size_t insert_hooks(PassContext& ctx, StmtKind kind) {
  for (const FiSitePlan& site : ctx.sites) {
    auto [list, idx] = locate(ctx.kernel.body, site.stmt);
    auto hook = std::make_shared<Stmt>();
    hook->kind = kind;
    hook->site = site.id;
    hook->var = site.var;
    hook->hw = site.hw;
    internal(hook);
    hook->fi_dead_window = site.late;
    if (site.is_iterator) {
      // Hook at the top of the loop body (fires once per iteration).
      (*list)[idx]->body.insert((*list)[idx]->body.begin(), std::move(hook));
    } else if (site.late) {
      // After the last statement using the variable in its own list.
      std::size_t pos = idx;
      for (std::size_t j = idx + 1; j < list->size(); ++j)
        if (stmt_uses((*list)[j], site.var)) pos = j;
      list->insert(list->begin() + static_cast<long>(pos) + 1, std::move(hook));
    } else {
      list->insert(list->begin() + static_cast<long>(idx) + 1, std::move(hook));
    }
  }
  return ctx.sites.size();
}

}  // namespace

bool FIHookPass::run(PassContext& ctx) {
  const std::size_t n = insert_hooks(ctx, StmtKind::FIHook);
  ctx.remark(name(), "inserted " + std::to_string(n) + " fault-injection hooks");
  return n > 0;
}

bool CountExecPass::run(PassContext& ctx) {
  const std::size_t n = insert_hooks(ctx, StmtKind::CountExec);
  ctx.remark(name(), "inserted " + std::to_string(n) + " execution-count hooks");
  return n > 0;
}

// ---------------------------------------------------------------------------
// ControlLayoutPass
// ---------------------------------------------------------------------------

bool ControlLayoutPass::run(PassContext& ctx) {
  ctx.report->fi_sites = static_cast<int>(ctx.sites.size());
  ctx.remark(name(), "layout finalized: " + std::to_string(ctx.sites.size()) +
                         " fi sites, " + std::to_string(ctx.next_detector) +
                         " detectors");
  return false;
}

}  // namespace hauberk::core::passes
