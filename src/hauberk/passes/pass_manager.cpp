#include "hauberk/passes/pass_manager.hpp"

#include <algorithm>

#include "hauberk/passes/instrument.hpp"

namespace hauberk::core {

bool PassPipeline::remove(std::string_view pass_name) {
  const auto before = passes_.size();
  passes_.erase(std::remove_if(passes_.begin(), passes_.end(),
                               [&](const std::shared_ptr<Pass>& p) {
                                 return p->name() == pass_name;
                               }),
                passes_.end());
  return passes_.size() != before;
}

bool PassPipeline::insert_before(std::string_view before, std::shared_ptr<Pass> pass) {
  for (auto it = passes_.begin(); it != passes_.end(); ++it) {
    if ((*it)->name() == before) {
      passes_.insert(it, std::move(pass));
      return true;
    }
  }
  return false;
}

bool PassPipeline::has(std::string_view pass_name) const noexcept {
  return std::any_of(passes_.begin(), passes_.end(), [&](const std::shared_ptr<Pass>& p) {
    return p->name() == pass_name;
  });
}

std::vector<std::string> PassPipeline::pass_names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.emplace_back(p->name());
  return out;
}

void PassManager::run(const PassPipeline& pipeline, PassContext& ctx) const {
  if (trace_) trace_("input", ctx.kernel, false);
  for (const auto& pass : pipeline.passes()) {
    const bool mutated = pass->run(ctx);
    if (mutated) ctx.am.invalidate();
    if (trace_) trace_(pass->name(), ctx.kernel, mutated);
  }
  ctx.report->pipeline = pipeline.name();
  ctx.report->analysis_cache = ctx.am.stats();
}

PassPipeline pipeline_for(LibMode mode, const TranslateOptions& opt) {
  using namespace passes;
  const bool want_ft = mode == LibMode::FT || mode == LibMode::FIFT;
  const bool want_profile = mode == LibMode::Profiler;

  std::string name = lib_mode_name(mode);
  if (want_ft || want_profile) {
    if (!opt.protect_loop && !(want_ft && opt.protect_nonloop))
      name += ".noprotect";
    else if (want_ft && !opt.protect_nonloop)
      name += ".hauberk-l";  // loop detectors only
    else if (!opt.protect_loop)
      name += ".hauberk-nl";  // non-loop detectors only
  }
  if (want_ft && opt.protect_nonloop && opt.naive_duplication) name += ".naive";
  if (opt.lint) name += ".lint";

  PassPipeline pipe(std::move(name));
  pipe.add(std::make_shared<SiteEnumerationPass>());
  if ((want_ft || want_profile) && opt.protect_loop) {
    pipe.add(std::make_shared<LoopAccumulatorPass>());
    pipe.add(std::make_shared<LoopCheckPass>(want_profile));
  }
  if (want_ft && opt.protect_nonloop) {
    if (opt.naive_duplication)
      pipe.add(std::make_shared<NaiveDuplicationPass>());
    else
      pipe.add(std::make_shared<NonLoopChecksumPass>());
  }
  if (mode == LibMode::FI || mode == LibMode::FIFT) pipe.add(std::make_shared<FIHookPass>());
  if (want_profile) pipe.add(std::make_shared<CountExecPass>());
  pipe.add(std::make_shared<ControlLayoutPass>());
  if (opt.lint) pipe.add(std::make_shared<LintPass>());
  return pipe;
}

}  // namespace hauberk::core
