#include <cstdio>

#include "hauberk/lint.hpp"
#include "hauberk/passes/instrument.hpp"

namespace hauberk::core::passes {

bool LintPass::run(PassContext& ctx) {
  lint::LintOptions lo;
  lo.env = ctx.opt->lint_env;
  // Lower once for pc/site provenance; the pass runs last, so this is the
  // same bytecode the launch engine will execute.
  const kir::BytecodeProgram program = kir::lower(ctx.kernel);
  lo.program = &program;
  // Grade coverage against the active hardening plan: deliberately excluded
  // variables/loops surface as ExcludedByPlan remarks, not warnings.
  lo.plan = ctx.opt->plan.get();
  ctx.report->lint = lint::run_lint(ctx.kernel, lo, &ctx.am);
  const auto& rep = ctx.report->lint;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%d error(s), %d warning(s), %d remark(s); coverage %d/%d vars %d/%d edges",
                rep.errors, rep.warnings, rep.remarks, rep.coverage.covered_vars,
                rep.coverage.total_vars, rep.coverage.covered_edges, rep.coverage.total_edges);
  ctx.remark(name(), buf);
  return false;
}

}  // namespace hauberk::core::passes
