// Static fault-site pruning facts.
//
// A PruningPlan records, per kernel and per fault-injection site, the
// environment-free facts the campaign pruner needs to skip provably
// redundant SWIFI trials:
//
//   * `live` — the bit-liveness mask from kir::DefUseAnalysis.  A flip whose
//     mask lands entirely outside `live` is killed by downstream masking
//     (and/or/shift constants, dead windows, dead destinations) before it
//     can influence any observable behaviour: it is *statically Benign* and
//     its ground-truth outcome must be Masked (or NotActivated).
//   * `cone` — a structural signature of the site's def-use propagation
//     cone (variable identities and constant values erased, op structure,
//     dtype, hardware component, loop membership and dead-window status
//     kept).  Sites with equal signatures have isomorphic propagation cones:
//     thread-uniform code, structurally identical loop iterations, and
//     symmetric register lanes all collapse onto one signature.
//   * `uniform` / `occsym` — whether the site's value is thread-uniform and
//     whether faults in different dynamic occurrences are interchangeable
//     (not loop-carried, not control-steering, not a scheduler/iterator
//     site).
//
// Plans serialize to the same strict s-expression dialect as HardeningPlan
// (hauberk/plan.hpp), round-trip exactly, and carry a digest that
// swifi::campaign_digest folds in so stored campaign results are bound to
// the exact pruning decisions that produced them.  Each kernel entry also
// pins the bytecode program digest it was derived from; consumers reject a
// plan applied to a different build of the kernel.
//
// The partitioner that turns these facts into equivalence classes over
// concrete FaultSpecs lives in swifi/prune.hpp (it needs the campaign
// types); the kirprune CLI emits plan files; fault_campaign / campaignd /
// benches consume them via --prune=FILE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kir/ast.hpp"
#include "kir/bytecode.hpp"

namespace hauberk::kir {
class AnalysisManager;
}  // namespace hauberk::kir

namespace hauberk::prune {

/// Static facts for one fault-injection site.
struct SiteFacts {
  std::uint32_t site_id = 0;
  /// Bits whose corruption can reach an observable root; 0 = dead site.
  std::uint32_t live_mask = 0;
  /// Structural propagation-cone signature (see file comment).
  std::uint64_t cone_sig = 0;
  /// Value is provably identical across threads.
  bool uniform = false;
  /// Faults in different dynamic occurrences are interchangeable.
  bool occ_symmetric = false;
};

/// Facts for every site of one lowered kernel build.
struct KernelPruneFacts {
  std::string kernel;
  /// Digest of the kir::BytecodeProgram the facts were computed over; a
  /// plan never applies to a differently-built program.
  std::uint64_t program_digest = 0;
  std::vector<SiteFacts> sites;  ///< sorted by site_id

  [[nodiscard]] const SiteFacts* find(std::uint32_t site_id) const noexcept;
};

struct PruningPlan {
  std::vector<KernelPruneFacts> kernels;

  [[nodiscard]] const KernelPruneFacts* find(const std::string& kernel) const noexcept;
  [[nodiscard]] bool trivial() const noexcept { return kernels.empty(); }
};

/// Is a flip of `mask` at this site statically Benign?
[[nodiscard]] inline bool statically_benign(const SiteFacts& f, std::uint32_t mask) noexcept {
  return (mask & f.live_mask) == 0;
}

/// Compute facts for one instrumented kernel (the FI or FIFT translation —
/// site ids must match `program`'s FISite table, which lower() guarantees
/// when `instrumented` is the AST that produced it).  `am`, when given,
/// caches/reuses the DefUseAnalysis.
[[nodiscard]] KernelPruneFacts build_kernel_prune_facts(const kir::Kernel& instrumented,
                                                        const kir::BytecodeProgram& program,
                                                        kir::AnalysisManager* am = nullptr);

/// Canonical s-expression form, e.g.
///   (hauberk-prune 1
///     (kernel "CP" (program 1f2e3d4c5b6a7988)
///       (site 0 (live ffffffff) (cone a1b2c3d4e5f60718) (uniform 0) (occsym 1))))
[[nodiscard]] std::string serialize_pruning_plan(const PruningPlan& plan);

/// Strict parser; throws std::runtime_error on malformed input (unknown
/// atom, bad arity, duplicate kernel/site entry, trailing garbage).
[[nodiscard]] PruningPlan parse_pruning_plan(const std::string& text);

/// Read and parse a plan file (--prune=FILE); throws naming the path.
[[nodiscard]] PruningPlan load_pruning_plan(const std::string& path);

/// 0 for a trivial plan (prune-free campaign digests never move), else a
/// nonzero FNV-1a over the canonical serialization.
[[nodiscard]] std::uint64_t pruning_plan_digest(const PruningPlan& plan) noexcept;

}  // namespace hauberk::prune
